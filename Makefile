GO ?= go

.PHONY: check fmt vet build test race bench bench-json bench-compare

check: ## gofmt + vet + build + race-enabled tests (what CI runs)
	./ci.sh

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -v .

# One machine-readable perf datapoint per day: campaign headline metrics
# plus the geometry fast-path microbenchmarks. Commit the file to extend
# the perf trajectory.
BENCH_JSON ?= BENCH_$(shell date +%Y%m%d).json
bench-json:
	$(GO) run ./cmd/starlink-bench -quick -bench.json $(BENCH_JSON)

# Diff the metrics sections of two trajectory datapoints with per-key
# percent deltas: make bench-compare OLD=BENCH_20260805.json NEW=BENCH_20260808.json
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" || { echo "usage: make bench-compare OLD=a.json NEW=b.json" >&2; exit 2; }
	$(GO) run ./cmd/bench-compare $(OLD) $(NEW)
