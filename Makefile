GO ?= go

.PHONY: check fmt vet build test race bench

check: ## gofmt + vet + build + race-enabled tests (what CI runs)
	./ci.sh

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -v .
