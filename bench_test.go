package starlinkperf

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each Benchmark* corresponds to one artifact (see the
// per-experiment index in DESIGN.md); the rendered rows/series are
// emitted through b.Log so `go test -bench . -v` shows them, and headline
// values are reported as custom benchmark metrics so regressions are
// machine-comparable.
//
// Campaign sizes are scaled so each bench completes in tens of seconds of
// wall time; cmd/starlink-bench runs the full-scale version. Absolute
// numbers come from a simulator, so the comparison with the paper is
// about shape: who wins, by what factor, where the orderings fall
// (EXPERIMENTS.md records both sides).

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/web"
)

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		var out strings.Builder
		core.RenderTable1(&out, 150*24*time.Hour, 107*24*time.Hour, 107*24*time.Hour,
			150*24*time.Hour, len(tb.Anchors), len(tb.Sites))
		if i == 0 {
			b.Log("\n" + out.String())
		}
	}
}

func BenchmarkFigure1AnchorRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		lat := tb.RunLatencyCampaign(48*time.Hour, 5*time.Minute)
		rows := core.Figure1(lat, tb.Anchors)
		var out strings.Builder
		core.RenderFigure1(&out, rows)
		if i == 0 {
			b.Log("\n" + out.String())
			b.ReportMetric(rows[0].Summary.P50, "BE1-med-ms")
			b.ReportMetric(rows[6].Summary.Min, "DE1-min-ms")
			b.ReportMetric(rows[9].Summary.P50, "fremont-med-ms")
			b.ReportMetric(rows[10].Summary.P50, "sin-med-ms")
		}
	}
}

func BenchmarkFigure2RTTTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		// The paper's five-month window with the Feb-11 fleet-growth
		// step and the late-April load episode.
		cfg.InitialShellFraction = 0.86
		cfg.FleetGrowthAt = 53 * 24 * time.Hour
		cfg.Load = core.LoadEpisode{
			Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour,
			ExtraOneWay: 4 * time.Millisecond,
		}
		tb := core.NewTestbed(cfg)
		lat := tb.RunLatencyCampaign(150*24*time.Hour, 30*time.Minute)
		bins := core.Figure2(lat)
		if i == 0 {
			var out strings.Builder
			core.RenderFigure2(&out, bins[:min(8, len(bins))])
			out.WriteString("  ...\n")
			core.RenderFigure2(&out, bins[max(0, len(bins)-8):])
			b.Log("\n" + out.String())
			// The step: median before day 53 vs after.
			eu := lat.EuropeanSeries()
			before := stats.Median(eu.Window(30*24*time.Hour, 53*24*time.Hour))
			after := stats.Median(eu.Window(53*24*time.Hour, 80*24*time.Hour))
			busy := stats.Median(eu.Window(125*24*time.Hour, 139*24*time.Hour))
			b.ReportMetric(before, "med-before-growth-ms")
			b.ReportMetric(after, "med-after-growth-ms")
			b.ReportMetric(busy, "med-load-episode-ms")
		}
	}
}

func BenchmarkFigure3RTTUnderLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		down := tb.RunH3Campaign(6, 100<<20, true, 20*time.Second)
		up := tb.RunH3Campaign(4, 100<<20, false, 20*time.Second)
		f := core.MakeFigure3(down, up)
		if i == 0 {
			var out strings.Builder
			core.RenderFigure3(&out, f)
			b.Log("\n" + out.String())
			b.ReportMetric(f.Download.P50, "down-p50-ms")
			b.ReportMetric(f.Download.P95, "down-p95-ms")
			b.ReportMetric(f.Upload.P50, "up-p50-ms")
			b.ReportMetric(f.Upload.P95, "up-p95-ms")
		}
	}
}

func BenchmarkTable2LossRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		h3d := tb.RunH3Campaign(5, 100<<20, true, 15*time.Second)
		h3u := tb.RunH3Campaign(3, 100<<20, false, 15*time.Second)
		md := tb.RunMessagesCampaign(6, 2*time.Minute, true)
		mu := tb.RunMessagesCampaign(6, 2*time.Minute, false)
		t2 := core.MakeTable2(h3d, h3u, md, mu)
		if i == 0 {
			var out strings.Builder
			core.RenderTable2(&out, t2)
			b.Log("\n" + out.String())
			b.ReportMetric(100*t2.H3Down, "h3-down-loss-pct")
			b.ReportMetric(100*t2.H3Up, "h3-up-loss-pct")
			b.ReportMetric(100*t2.MsgDown, "msg-down-loss-pct")
			b.ReportMetric(100*t2.MsgUp, "msg-up-loss-pct")
		}
	}
}

func BenchmarkFigure4aLossBurstsH3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		down := tb.RunH3Campaign(5, 100<<20, true, 15*time.Second)
		up := tb.RunH3Campaign(3, 100<<20, false, 15*time.Second)
		f := core.MakeFigure4("H3 transfers", down.BurstLengths(), up.BurstLengths())
		if i == 0 {
			var out strings.Builder
			core.RenderFigure4(&out, f)
			b.Log("\n" + out.String())
			b.ReportMetric(100*f.MultiPacketFracDown, "down-multipkt-pct")
			b.ReportMetric(100*f.SinglePacketFracUp, "up-singlepkt-pct")
		}
	}
}

func BenchmarkFigure4bLossBurstsMsgs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		md := tb.RunMessagesCampaign(8, 2*time.Minute, true)
		mu := tb.RunMessagesCampaign(8, 2*time.Minute, false)
		f := core.MakeFigure4("messaging transfers", md.BurstLengths(), mu.BurstLengths())
		if i == 0 {
			var out strings.Builder
			core.RenderFigure4(&out, f)
			b.Log("\n" + out.String())
		}
	}
}

func BenchmarkLossEventDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		down := tb.RunH3Campaign(5, 100<<20, true, 15*time.Second)
		md := tb.RunMessagesCampaign(6, 2*time.Minute, true)
		if i == 0 {
			var out strings.Builder
			core.LossDurations(&out, "H3 downloads", down.EventDurations())
			core.LossDurations(&out, "message downloads", md.EventDurations())
			b.Log("\n" + out.String())
			s := stats.Summarize(down.EventDurations())
			b.ReportMetric(s.P50*1e6, "h3-down-p50-us")
			b.ReportMetric(s.P99*1e3, "h3-down-p99-ms")
		}
	}
}

func BenchmarkWiredBaselineLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		// The paper's sanity check: downloads to a wired machine near
		// the exit point see essentially zero loss, proving the losses
		// live inside the access network.
		camp := tb.RunH3CampaignFrom(tb.PCWired, 4, 100<<20, true, 5*time.Second, tb.QUICConf)
		if i == 0 {
			var sent, lost uint64
			for _, r := range camp.Records {
				sent += r.Loss.PacketsSent
				lost += r.Loss.PacketsLost
			}
			b.Logf("wired baseline: %d packets sent, %d lost", sent, lost)
			b.ReportMetric(float64(lost), "lost-packets")
			b.ReportMetric(float64(sent), "sent-packets")
		}
	}
}

func BenchmarkFigure5Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		sl := tb.RunSpeedtestCampaign(core.TechStarlink, 24, 30*time.Minute)
		sc := tb.RunSpeedtestCampaign(core.TechSatCom, 10, 30*time.Minute)
		h3d := tb.RunH3Campaign(5, 100<<20, true, 15*time.Second)
		h3u := tb.RunH3Campaign(3, 100<<20, false, 15*time.Second)
		f := core.MakeFigure5(sl, sc, h3d, h3u)
		if i == 0 {
			var out strings.Builder
			core.RenderFigure5(&out, f)
			b.Log("\n" + out.String())
			b.ReportMetric(f.StarlinkDown.P50, "sl-ookla-down-med")
			b.ReportMetric(f.StarlinkUp.P50, "sl-ookla-up-med")
			b.ReportMetric(f.SatComDown.P50, "sc-ookla-down-med")
			b.ReportMetric(f.SatComUp.P50, "sc-ookla-up-med")
			b.ReportMetric(f.H3Down.P50, "sl-h3-down-med")
		}
	}
}

func benchWebFigure(b *testing.B, metric func(web.VisitResult) float64, unit string) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		visits := map[string][]web.VisitResult{
			"starlink": tb.RunWebCampaign(core.TechStarlink, 60, 2*time.Second),
			"satcom":   tb.RunWebCampaign(core.TechSatCom, 60, 2*time.Second),
			"wired":    tb.RunWebCampaign(core.TechWired, 60, 2*time.Second),
		}
		f := core.MakeFigure6(visits)
		if i == 0 {
			var out strings.Builder
			core.RenderFigure6(&out, f)
			b.Log("\n" + out.String())
			for tech, vs := range visits {
				var xs []float64
				for _, v := range vs {
					if !v.Failed {
						xs = append(xs, metric(v))
					}
				}
				b.ReportMetric(stats.Median(xs), tech+"-"+unit)
			}
		}
	}
}

func BenchmarkFigure6aOnLoad(b *testing.B) {
	benchWebFigure(b, func(v web.VisitResult) float64 { return v.OnLoad.Seconds() }, "onload-med-s")
}

func BenchmarkFigure6bSpeedIndex(b *testing.B) {
	benchWebFigure(b, func(v web.VisitResult) float64 { return v.SpeedIndex.Seconds() }, "si-med-s")
}

func BenchmarkMiddleboxDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		sl := tb.RunMiddleboxAudit(core.TechStarlink)
		tb2 := core.NewTestbed(core.DefaultConfig())
		sc := tb2.RunMiddleboxAudit(core.TechSatCom)
		if i == 0 {
			var out strings.Builder
			core.RenderMiddleboxAudit(&out, "starlink", sl)
			core.RenderMiddleboxAudit(&out, "satcom", sc)
			b.Log("\n" + out.String())
			b.ReportMetric(float64(sl.NATLevels), "starlink-nat-levels")
			b.ReportMetric(boolMetric(sl.PEP.ProxyDetected()), "starlink-pep")
			b.ReportMetric(boolMetric(sc.PEP.ProxyDetected()), "satcom-pep")
		}
	}
}

func BenchmarkTrafficDiscrimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		ds := tb.RunWeheAudit(core.TechStarlink, 2)
		if i == 0 {
			var out strings.Builder
			core.RenderWehe(&out, "starlink", ds)
			b.Log("\n" + out.String())
			diff := 0
			for _, d := range ds {
				if d.Differentiated {
					diff++
				}
			}
			b.ReportMetric(float64(diff), "differentiated-services")
		}
	}
}

func BenchmarkMessageRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		md := tb.RunMessagesCampaign(5, 2*time.Minute, true)
		mu := tb.RunMessagesCampaign(5, 2*time.Minute, false)
		if i == 0 {
			d := stats.Summarize(md.RTTsMs)
			u := stats.Summarize(mu.RTTsMs)
			b.Logf("messages RTT down p50/p95/p99 = %.0f/%.0f/%.0f ms (paper 50/71/87)", d.P50, d.P95, d.P99)
			b.Logf("messages RTT up   p50/p95/p99 = %.0f/%.0f/%.0f ms (paper 66/87/143)", u.P50, u.P95, u.P99)
			b.ReportMetric(d.P50, "down-p50-ms")
			b.ReportMetric(u.P50, "up-p50-ms")
		}
	}
}

func BenchmarkConnectionSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		sl := tb.RunWebCampaign(core.TechStarlink, 15, time.Second)
		sc := tb.RunWebCampaign(core.TechSatCom, 15, time.Second)
		if i == 0 {
			mSL := core.ConnSetupStats(sl).Mean
			mSC := core.ConnSetupStats(sc).Mean
			b.Logf("connection setup (TCP+TLS): starlink %.0fms, satcom %.0fms (paper 167 vs 2030)", mSL, mSC)
			b.ReportMetric(mSL, "starlink-setup-ms")
			b.ReportMetric(mSC, "satcom-setup-ms")
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) -------------------

func BenchmarkAblationPacing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		unpaced := tb.RunMessagesCampaign(4, 2*time.Minute, false)
		paced := quic.DefaultConfig()
		paced.EnablePacing = true
		withPacing := tb.RunMessagesCampaignCfg(4, 2*time.Minute, false, paced)
		if i == 0 {
			u := stats.Summarize(unpaced.RTTsMs)
			p := stats.Summarize(withPacing.RTTsMs)
			b.Logf("upload message RTT p99: unpaced %.0fms vs paced %.0fms (paper attributes the upload inflation to quiche's missing pacing)", u.P99, p.P99)
			b.ReportMetric(u.P99, "unpaced-p99-ms")
			b.ReportMetric(p.P99, "paced-p99-ms")
		}
	}
}

func BenchmarkAblationParallelConns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := map[int]float64{}
		for _, conns := range []int{1, 4, 8} {
			tb := core.NewTestbed(core.DefaultConfig())
			prober := measure.NewProber(tb.PCStarlink)
			cfg := measure.DefaultSpeedtestConfig()
			cfg.Connections = conns
			var down float64
			measure.RunSpeedtest(prober, tb.OoklaServers, cfg, func(r measure.SpeedtestResult) {
				down = r.DownloadMbps
			})
			tb.Sched.RunFor(2 * time.Minute)
			results[conns] = down
		}
		if i == 0 {
			b.Logf("speedtest download by connection count: 1=%.0f 4=%.0f 8=%.0f Mbit/s (the Ookla-vs-single-QUIC gap)",
				results[1], results[4], results[8])
			b.ReportMetric(results[1], "conns1-mbps")
			b.ReportMetric(results[4], "conns4-mbps")
			b.ReportMetric(results[8], "conns8-mbps")
		}
	}
}

func BenchmarkAblationPEP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := core.NewTestbed(core.DefaultConfig())
		cfgNo := core.DefaultConfig()
		cfgNo.DisableSatComPEP = true
		without := core.NewTestbed(cfgNo)
		vWith := with.RunWebCampaign(core.TechSatCom, 15, time.Second)
		vWithout := without.RunWebCampaign(core.TechSatCom, 15, time.Second)
		stWith := with.RunSpeedtestCampaign(core.TechSatCom, 3, 30*time.Second)
		stWithout := without.RunSpeedtestCampaign(core.TechSatCom, 3, 30*time.Second)
		if i == 0 {
			dl := func(rs []measure.SpeedtestResult) (med float64) {
				var xs []float64
				for _, r := range rs {
					xs = append(xs, r.DownloadMbps)
				}
				return stats.Median(xs)
			}
			b.Logf("SatCom with PEP: onLoad %.1fs, ookla down %.0f; without PEP: onLoad %.1fs, down %.0f",
				medOnLoad(vWith), dl(stWith), medOnLoad(vWithout), dl(stWithout))
			b.ReportMetric(medOnLoad(vWith), "pep-onload-s")
			b.ReportMetric(medOnLoad(vWithout), "nopep-onload-s")
			b.ReportMetric(dl(stWith), "pep-down-mbps")
			b.ReportMetric(dl(stWithout), "nopep-down-mbps")
		}
	}
}

func BenchmarkAblationISL(b *testing.B) {
	// The paper found ISLs disabled (bent pipe, European exits even for
	// Singapore) and anticipated their activation. This ablation compares
	// the measured bent-pipe RTT to Singapore with the +Grid ISL path the
	// constellation could offer.
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		lat := tb.RunLatencyCampaign(6*time.Hour, 5*time.Minute)
		bent := stats.Median(lat.PerAnchor["sin-anchor"].Values())

		con := leo.NewConstellation(leo.NewShell(leo.StarlinkGen1()))
		router := leo.NewISLRouter(con, 0)
		louvain := geo.LatLon{LatDeg: 50.67, LonDeg: 4.61}
		singapore := geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}
		var sumMs float64
		n := 0
		for ep := 0; ep < 20; ep++ {
			at := tb.Sched.Now().Add(-time.Duration(ep) * 15 * time.Minute)
			if at < 0 {
				break
			}
			if d, _, ok := router.PathDelay(at, louvain, singapore, 25); ok {
				sumMs += 2 * d.Seconds() * 1000
				n++
			}
		}
		if i == 0 && n > 0 {
			isl := sumMs / float64(n)
			b.Logf("Louvain->Singapore RTT: bent-pipe (measured) %.0fms vs ISL path (geometric) %.0fms", bent, isl)
			b.ReportMetric(bent, "bentpipe-rtt-ms")
			b.ReportMetric(isl, "isl-rtt-ms")
		}
	}
}

func BenchmarkAblationRwnd(b *testing.B) {
	// §3.3: the authors re-ran downloads with a 150MB receive window to
	// rule out flow-control limits — results were unchanged.
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.DefaultConfig())
		small := tb.RunH3Campaign(3, 100<<20, true, 15*time.Second)
		big := quic.DefaultConfig()
		big.InitialMaxData = 150 << 20
		big.InitialMaxStreamData = 150 << 20
		big.MaxReceiveWindow = 300 << 20
		bigCamp := tb.RunH3CampaignFrom(tb.PCStarlink, 3, 100<<20, true, 15*time.Second, big)
		if i == 0 {
			s := stats.Median(small.Goodputs())
			l := stats.Median(bigCamp.Goodputs())
			b.Logf("H3 download goodput: 10MB rwnd %.0f Mbit/s vs 150MB rwnd %.0f Mbit/s (paper: unchanged)", s, l)
			b.ReportMetric(s, "rwnd10MB-mbps")
			b.ReportMetric(l, "rwnd150MB-mbps")
		}
	}
}

// --- parallel campaign runner ------------------------------------------

// benchLatencyReps runs the same 8-repetition latency campaign with a
// fixed worker count; comparing the Sequential and Parallel variants
// (e.g. with benchstat) measures the speedup of the sharded runner. The
// result is worker-count invariant, so the two variants do identical
// work — on a multi-core machine the parallel one should be >=2x faster
// with 4+ workers, while on a single CPU it only measures pool overhead.
func benchLatencyReps(b *testing.B, workers int) *core.LatencyData {
	var lat *core.LatencyData
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lat = core.RunLatencyCampaignParallel(core.DefaultConfig(), 8, 12*time.Hour, 5*time.Minute,
			core.Options{Workers: workers, Seed: 1})
	}
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(lat.Sent), "probes")
	return lat
}

func BenchmarkLatencyCampaignSequential(b *testing.B) {
	benchLatencyReps(b, 1)
}

func BenchmarkLatencyCampaignParallel(b *testing.B) {
	seq := benchLatencyReps(b, max(4, runtime.GOMAXPROCS(0)))
	b.StopTimer()
	if lone := benchOnce(); seq.Sent != lone.Sent || seq.Lost != lone.Lost {
		b.Fatalf("parallel run diverged from 1-worker run: %d/%d vs %d/%d",
			seq.Sent, seq.Lost, lone.Sent, lone.Lost)
	}
}

// benchOnce reruns the campaign on one worker for the invariance check.
func benchOnce() *core.LatencyData {
	return core.RunLatencyCampaignParallel(core.DefaultConfig(), 8, 12*time.Hour, 5*time.Minute,
		core.Options{Workers: 1, Seed: 1})
}

// --- helpers -----------------------------------------------------------

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func medOnLoad(vs []web.VisitResult) float64 {
	var xs []float64
	for _, v := range vs {
		if !v.Failed {
			xs = append(xs, v.OnLoad.Seconds())
		}
	}
	return stats.Median(xs)
}
