#!/bin/sh
# ci.sh — the full gate: formatting, vet, build, and the test suite under
# the race detector (the parallel campaign runner's tests force Workers=4
# so the concurrent path is exercised even on a single-CPU machine).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== starlink-bench smoke (quick campaigns + bench.json schema)"
bench_json=$(mktemp /tmp/bench_ci.XXXXXX.json)
trap 'rm -f "$bench_json"' EXIT
go run ./cmd/starlink-bench -quick -workers 2 -bench.json "$bench_json" >/dev/null
go run ./cmd/starlink-bench -validate "$bench_json"

echo "CI: all green"
