#!/bin/sh
# ci.sh — the full gate: formatting, vet, build, and the test suite under
# the race detector (the parallel campaign runner's tests force Workers=4
# so the concurrent path is exercised even on a single-CPU machine).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== packet datapath allocation gate (0 allocs/packet, no race detector)"
# testing.AllocsPerRun under -race counts instrumentation allocations, so
# the zero-allocation gates run in a plain pass. Any regression that puts
# an allocation back on the send->route->deliver, echo-responder, or
# transit-forward path fails here.
go test ./internal/netem -run 'TestAllocGate' -count=1

echo "== fleet reassignment allocation gate (0 allocs/epoch, no race detector)"
# Same idea for the planet-scale fleet: the per-epoch cell-indexed
# reassignment (snapshot lookup, candidate build, terminal scan, beam
# accounting) must stay allocation-free in steady state — including the
# 100k-terminal pooled epoch path (TestAllocGateFleetEpoch100k), the
# regime the 1M bench sweep scales from.
go test ./internal/fleet -run 'TestAllocGate' -count=1

echo "== starlink-bench smoke (quick campaigns + bench.json schema)"
ci_tmp=$(mktemp -d /tmp/bench_ci.XXXXXX)
trap 'rm -rf "$ci_tmp"' EXIT
go run ./cmd/starlink-bench -quick -workers 2 -bench.json "$ci_tmp/bench.json" >/dev/null
go run ./cmd/starlink-bench -validate "$ci_tmp/bench.json"

echo "== observability determinism (triple run, byte-diffed exports)"
# Same quick campaign three times with different worker AND PDES
# scenario-worker counts: the metrics registry and the binary event
# trace must come out byte-identical, or the sim has a nondeterminism
# leak. Every quick run includes the 10k-terminal fleet scenario and the
# packet-level traffic scenario on the conservative PDES engine, so this
# byte-diffs the fleet's per-region metrics, the traffic scenario's
# probe counters and RTT histograms, the epoch trace, and the figures
# table across -scenario.workers 1/2/8.
go run ./cmd/starlink-bench -quick -workers 1 -scenario.workers 1 \
    -trace "$ci_tmp/trace1.bin" -metrics.json "$ci_tmp/metrics1.json" >"$ci_tmp/figures1.txt"
go run ./cmd/starlink-bench -quick -workers 4 -scenario.workers 2 \
    -trace "$ci_tmp/trace2.bin" -metrics.json "$ci_tmp/metrics2.json" >"$ci_tmp/figures2.txt"
go run ./cmd/starlink-bench -quick -workers 8 -scenario.workers 8 \
    -trace "$ci_tmp/trace3.bin" -metrics.json "$ci_tmp/metrics3.json" >"$ci_tmp/figures3.txt"
cmp "$ci_tmp/trace1.bin" "$ci_tmp/trace2.bin"
cmp "$ci_tmp/trace1.bin" "$ci_tmp/trace3.bin"
cmp "$ci_tmp/metrics1.json" "$ci_tmp/metrics2.json"
cmp "$ci_tmp/metrics1.json" "$ci_tmp/metrics3.json"
cmp "$ci_tmp/figures1.txt" "$ci_tmp/figures2.txt"
cmp "$ci_tmp/figures1.txt" "$ci_tmp/figures3.txt"

echo "== transport paper-profile identity (-transport paper vs default, byte-diffed)"
# Explicitly selecting the paper transport profile must be a no-op: the
# profile plumbing touches every endpoint configuration (QUIC and TCP),
# so the figures must come out byte-identical to runs 1 and 3 above,
# at both worker counts. (The modern profile's own determinism is pinned
# by TestTransportModernWorkerInvariance and TestBBRDeterminism in the
# -race suite above, and the paper-vs-modern delta section rides the
# bench.json smoke through -validate.)
go run ./cmd/starlink-bench -quick -workers 1 -scenario.workers 1 -transport paper \
    >"$ci_tmp/figures_paper1.txt"
go run ./cmd/starlink-bench -quick -workers 8 -scenario.workers 8 -transport paper \
    >"$ci_tmp/figures_paper8.txt"
cmp "$ci_tmp/figures1.txt" "$ci_tmp/figures_paper1.txt"
cmp "$ci_tmp/figures1.txt" "$ci_tmp/figures_paper8.txt"

echo "== modern-transport determinism under the race detector"
# BBR + pacing + 0-RTT must stay a pure function of (config, seed):
# bit-identical across worker counts, stable across repeat runs, and
# free of data races in the sharded campaign runner.
go test -race ./internal/cc -run 'TestBBRDeterminism' -count=1
go test -race ./internal/core -run 'TestTransportModernWorkerInvariance' -count=1

echo "== fidelity equivalence (full emulation vs tiers + fast-forward, byte-diffed)"
# Runs 1-3 above use the default -fidelity auto (link tiers + analytic
# fast-forward). This run forces the complete reference datapath under
# every packet and must produce byte-identical traces, metrics and
# figures: the fast path is only allowed to change wall-clock time.
# (The >= 3x wall-clock gate itself rides the bench.json fidelity
# section through -validate in the smoke step.)
go run ./cmd/starlink-bench -quick -workers 1 -scenario.workers 1 -fidelity full \
    -trace "$ci_tmp/trace4.bin" -metrics.json "$ci_tmp/metrics4.json" >"$ci_tmp/figures4.txt"
cmp "$ci_tmp/trace1.bin" "$ci_tmp/trace4.bin"
cmp "$ci_tmp/metrics1.json" "$ci_tmp/metrics4.json"
cmp "$ci_tmp/figures1.txt" "$ci_tmp/figures4.txt"

echo "== partitioned epoch campaign at 100k terminals (1/2/8 workers, byte-diffed)"
# The fleet scale tentpole: the same quick campaign with the fleet
# scenario scaled to 100k terminals, run with 1 (sequential reference),
# 2 and 8 epoch-campaign workers. The pooled fork/join path with
# per-worker scratch and ordered merge must produce byte-identical
# results, metrics and traces — determinism at the scale the 1M sweep
# extrapolates from.
go run ./cmd/starlink-bench -quick -fleet.terminals 100000 -workers 1 -scenario.workers 1 \
    -trace "$ci_tmp/trace100k_1.bin" -metrics.json "$ci_tmp/metrics100k_1.json" >"$ci_tmp/figures100k_1.txt"
go run ./cmd/starlink-bench -quick -fleet.terminals 100000 -workers 2 -scenario.workers 2 \
    -trace "$ci_tmp/trace100k_2.bin" -metrics.json "$ci_tmp/metrics100k_2.json" >"$ci_tmp/figures100k_2.txt"
go run ./cmd/starlink-bench -quick -fleet.terminals 100000 -workers 8 -scenario.workers 8 \
    -trace "$ci_tmp/trace100k_8.bin" -metrics.json "$ci_tmp/metrics100k_8.json" >"$ci_tmp/figures100k_8.txt"
cmp "$ci_tmp/trace100k_1.bin" "$ci_tmp/trace100k_2.bin"
cmp "$ci_tmp/trace100k_1.bin" "$ci_tmp/trace100k_8.bin"
cmp "$ci_tmp/metrics100k_1.json" "$ci_tmp/metrics100k_2.json"
cmp "$ci_tmp/metrics100k_1.json" "$ci_tmp/metrics100k_8.json"
cmp "$ci_tmp/figures100k_1.txt" "$ci_tmp/figures100k_2.txt"
cmp "$ci_tmp/figures100k_1.txt" "$ci_tmp/figures100k_8.txt"

echo "CI: all green"
