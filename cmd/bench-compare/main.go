// Command bench-compare diffs the metrics sections of two
// starlink-bench reports (BENCH_<date>.json), printing one row per
// metric with the old value, the new value and the percent delta — the
// quick way to see what a PR moved in the committed perf trajectory:
//
//	make bench-compare OLD=BENCH_20260805.json NEW=BENCH_20260808.json
//
// Keys present in only one report are marked added/removed rather than
// failing, so the tool stays useful across schema growth.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// compareReport is the slice of the starlink-bench schema this tool
// reads: the flat metrics map plus enough header to label the columns.
type compareReport struct {
	Schema      string             `json:"schema"`
	Date        string             `json:"date"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

func load(path string) (compareReport, error) {
	var rep compareReport
	blob, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Metrics == nil {
		return rep, fmt.Errorf("%s: no metrics section", path)
	}
	return rep, nil
}

func run(args []string, w io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: bench-compare OLD.json NEW.json")
	}
	oldRep, err := load(args[0])
	if err != nil {
		return err
	}
	newRep, err := load(args[1])
	if err != nil {
		return err
	}

	keys := make(map[string]bool, len(oldRep.Metrics)+len(newRep.Metrics))
	for k := range oldRep.Metrics {
		keys[k] = true
	}
	for k := range newRep.Metrics {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "old: %s (%s)\nnew: %s (%s)\n\n", args[0], oldRep.Date, args[1], newRep.Date)
	fmt.Fprintf(w, "%-40s %14s %14s %10s\n", "metric", "old", "new", "delta")
	for _, k := range sorted {
		o, inOld := oldRep.Metrics[k]
		n, inNew := newRep.Metrics[k]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-40s %14s %14.4g %10s\n", k, "-", n, "added")
		case !inNew:
			fmt.Fprintf(w, "%-40s %14.4g %14s %10s\n", k, o, "-", "removed")
		case o == n:
			fmt.Fprintf(w, "%-40s %14.4g %14.4g %10s\n", k, o, n, "=")
		case o == 0:
			fmt.Fprintf(w, "%-40s %14.4g %14.4g %10s\n", k, o, n, "n/a")
		default:
			fmt.Fprintf(w, "%-40s %14.4g %14.4g %+9.2f%%\n", k, o, n, 100*(n-o)/o)
		}
	}
	if oldRep.WallSeconds > 0 && newRep.WallSeconds > 0 {
		fmt.Fprintf(w, "\nwall_seconds: %.2f -> %.2f (%+.2f%%)\n",
			oldRep.WallSeconds, newRep.WallSeconds,
			100*(newRep.WallSeconds-oldRep.WallSeconds)/oldRep.WallSeconds)
	}
	return nil
}
