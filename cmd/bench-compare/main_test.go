package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name, blob string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareReports(t *testing.T) {
	oldPath := writeReport(t, "old.json", `{
		"schema": "starlink-bench/v1", "date": "2026-08-05T00:00:00Z",
		"wall_seconds": 10.0,
		"metrics": {"latency_samples": 100, "loss_h3_down_pct": 0.5, "gone_metric": 7}
	}`)
	newPath := writeReport(t, "new.json", `{
		"schema": "starlink-bench/v1", "date": "2026-08-08T00:00:00Z",
		"wall_seconds": 8.0,
		"metrics": {"latency_samples": 100, "loss_h3_down_pct": 0.4, "fresh_metric": 3}
	}`)
	var out strings.Builder
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"2026-08-05", "2026-08-08",
		"latency_samples",
		"=",       // unchanged metric
		"-20.00%", // 0.5 -> 0.4
		"added",   // fresh_metric
		"removed", // gone_metric
		"wall_seconds: 10.00 -> 8.00 (-20.00%)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"only-one.json"}, &out); err == nil {
		t.Error("single argument accepted")
	}
	good := writeReport(t, "good.json", `{"metrics": {"a": 1}}`)
	if err := run([]string{good, filepath.Join(t.TempDir(), "absent.json")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	garbage := writeReport(t, "garbage.json", "not json")
	if err := run([]string{good, garbage}, &out); err == nil {
		t.Error("unparseable file accepted")
	}
	noMetrics := writeReport(t, "nometrics.json", `{"schema": "starlink-bench/v1"}`)
	if err := run([]string{good, noMetrics}, &out); err == nil {
		t.Error("report without metrics accepted")
	}
}
