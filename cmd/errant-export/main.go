// Command errant-export fits data-driven emulator profiles (the paper's
// released artifact format) from a fresh campaign on the emulated testbed
// and writes them as JSON, alongside the built-in comparison profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/errant"
)

func main() {
	outPath := flag.String("o", "errant-profiles.json", "output file")
	tests := flag.Int("tests", 12, "speedtests per technology to fit from")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)

	fmt.Fprintln(os.Stderr, "measuring starlink...")
	lat := tb.RunLatencyCampaign(12*time.Hour, 10*time.Minute)
	var rtts []float64
	for _, s := range lat.EuropeanSeries().Samples() {
		rtts = append(rtts, s.Value)
	}
	sl := tb.RunSpeedtestCampaign(core.TechStarlink, *tests, 30*time.Minute)
	var down, up []float64
	for _, r := range sl {
		down = append(down, r.DownloadMbps)
		up = append(up, r.UploadMbps)
	}
	msgs := tb.RunMessagesCampaign(4, 2*time.Minute, true)

	profiles := errant.Builtin()
	profiles["starlink-fitted"] = errant.Fit("starlink-fitted", down, up, rtts,
		7, 100*msgs.LossRatio())

	data, err := errant.MarshalProfiles(profiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d profiles to %s\n", len(profiles), *outPath)
	for name, p := range profiles {
		fmt.Printf("  %-16s down~%.0f up~%.1f rtt~%.0fms loss=%.2f%%\n",
			name, p.DownMbps.Median(), p.UpMbps.Median(), p.RTTms.Median(), p.LossPct)
	}
}
