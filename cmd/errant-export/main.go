// Command errant-export fits data-driven emulator profiles (the paper's
// released artifact format) from a fresh campaign on the emulated testbed
// and writes them as JSON, alongside the built-in comparison profiles.
// The three source campaigns are independent, so they fan out across
// -workers goroutines via the deterministic sweep runner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/errant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("errant-export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "errant-profiles.json", "output file")
	tests := fs.Int("tests", 12, "speedtests per technology to fit from")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tests < 1 {
		return fmt.Errorf("tests must be >= 1")
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed

	fmt.Fprintln(stderr, "measuring starlink...")
	var (
		rtts, down, up []float64
		lossPct        float64
		stOK           int
	)
	jobs := []core.SweepJob{
		{Name: "latency", Cfg: cfg, Run: func(tb *core.Testbed) any {
			lat := tb.RunLatencyCampaign(12*time.Hour, 10*time.Minute)
			for _, s := range lat.EuropeanSeries().Samples() {
				rtts = append(rtts, s.Value)
			}
			return nil
		}},
		{Name: "speedtest", Cfg: cfg, Run: func(tb *core.Testbed) any {
			for _, r := range tb.RunSpeedtestCampaign(core.TechStarlink, *tests, 30*time.Minute) {
				// A test whose server selection failed (all probe pings
				// lost, e.g. during an outage) reports zero throughput;
				// it must not enter the fit.
				if r.DownloadMbps <= 0 {
					continue
				}
				down = append(down, r.DownloadMbps)
				up = append(up, r.UploadMbps)
				stOK++
			}
			return nil
		}},
		{Name: "messages", Cfg: cfg, Run: func(tb *core.Testbed) any {
			lossPct = 100 * tb.RunMessagesCampaign(4, 2*time.Minute, true).LossRatio()
			return nil
		}},
	}
	core.RunSweep(jobs, core.Options{Workers: *workers, Seed: *seed})
	fmt.Fprintf(stderr, "speedtest: %d/%d tests succeeded\n", stOK, *tests)

	profiles := errant.Builtin()
	profiles["starlink-fitted"] = errant.Fit("starlink-fitted", down, up, rtts, 7, lossPct)

	data, err := errant.MarshalProfiles(profiles)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d profiles to %s\n", len(profiles), *outPath)
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	var werr error
	for _, name := range names {
		p := profiles[name]
		if _, err := fmt.Fprintf(stdout, "  %-16s down~%.0f up~%.1f rtt~%.0fms loss=%.2f%%\n",
			name, p.DownMbps.Median(), p.UpMbps.Median(), p.RTTms.Median(), p.LossPct); err != nil {
			werr = err
		}
	}
	return werr
}
