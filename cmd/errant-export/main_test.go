package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesProfiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	var out, errOut strings.Builder
	if err := run([]string{"-tests", "1", "-o", path, "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote") || !strings.Contains(out.String(), "starlink-fitted") {
		t.Errorf("summary output incomplete:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profiles not written: %v", err)
	}
	var profiles map[string]json.RawMessage
	if err := json.Unmarshal(data, &profiles); err != nil {
		t.Fatalf("output is not a JSON profile map: %v", err)
	}
	if _, ok := profiles["starlink-fitted"]; !ok {
		t.Errorf("starlink-fitted profile missing; have %d profiles", len(profiles))
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-tests", "0"}, &out, &errOut); err == nil {
		t.Error("tests 0 accepted")
	}
}
