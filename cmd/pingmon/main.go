// Command pingmon runs the anchor latency monitor (Figures 1 and 2): it
// pings the 11-anchor fleet from PC-Starlink on the paper's cadence and
// prints the per-anchor distributions and the European timeline. With
// -reps > 1 it merges several independent repetitions, sharded across
// -workers goroutines with deterministic per-shard seeds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"starlinkperf/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pingmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	days := fs.Int("days", 7, "campaign length in days")
	interval := fs.Duration("interval", 5*time.Minute, "probe round interval")
	seed := fs.Uint64("seed", 1, "simulation seed")
	growth := fs.Bool("scenario", false, "include the fleet-growth and load-episode scenario events")
	reps := fs.Int("reps", 1, "independent campaign repetitions to merge")
	workers := fs.Int("workers", 0, "parallel workers for -reps > 1 (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 || *reps < 1 {
		return fmt.Errorf("days and reps must be >= 1")
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	if *growth {
		cfg.InitialShellFraction = 0.86
		cfg.FleetGrowthAt = 53 * 24 * time.Hour
		cfg.Load = core.LoadEpisode{
			Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour,
			ExtraOneWay: 4 * time.Millisecond,
		}
	}
	dur := time.Duration(*days) * 24 * time.Hour

	var lat *core.LatencyData
	var anchors []core.Anchor
	if *reps > 1 {
		opts := core.Options{Workers: *workers, Seed: *seed}
		lat = core.RunLatencyCampaignParallel(cfg, *reps, dur, *interval, opts)
		anchors = core.NewTestbed(cfg).Anchors
	} else {
		tb := core.NewTestbed(cfg)
		lat = tb.RunLatencyCampaign(dur, *interval)
		anchors = tb.Anchors
	}

	var out strings.Builder
	core.RenderFigure1(&out, core.Figure1(lat, anchors))
	out.WriteString("\n")
	core.RenderFigure2(&out, core.Figure2(lat))
	_, err := fmt.Fprintf(stdout, "%s\nprobes sent=%d lost=%d (%.2f%%)\n",
		out.String(), lat.Sent, lat.Lost, 100*float64(lat.Lost)/float64(lat.Sent))
	return err
}
