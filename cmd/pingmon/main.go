// Command pingmon runs the anchor latency monitor (Figures 1 and 2): it
// pings the 11-anchor fleet from PC-Starlink on the paper's cadence and
// prints the per-anchor distributions and the European timeline.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"starlinkperf/internal/core"
)

func main() {
	days := flag.Int("days", 7, "campaign length in days")
	interval := flag.Duration("interval", 5*time.Minute, "probe round interval")
	seed := flag.Uint64("seed", 1, "simulation seed")
	growth := flag.Bool("scenario", false, "include the fleet-growth and load-episode scenario events")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	if *growth {
		cfg.InitialShellFraction = 0.86
		cfg.FleetGrowthAt = 53 * 24 * time.Hour
		cfg.Load = core.LoadEpisode{
			Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour,
			ExtraOneWay: 4 * time.Millisecond,
		}
	}
	tb := core.NewTestbed(cfg)
	lat := tb.RunLatencyCampaign(time.Duration(*days)*24*time.Hour, *interval)

	var out strings.Builder
	core.RenderFigure1(&out, core.Figure1(lat, tb.Anchors))
	out.WriteString("\n")
	core.RenderFigure2(&out, core.Figure2(lat))
	fmt.Printf("%s\nprobes sent=%d lost=%d (%.2f%%)\n",
		out.String(), lat.Sent, lat.Lost, 100*float64(lat.Lost)/float64(lat.Sent))
}
