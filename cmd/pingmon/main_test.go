package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-days", "1", "-interval", "2h"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 1", "Figure 2", "probes sent="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRepsParallelMatchesSingleWorker(t *testing.T) {
	render := func(workers string) string {
		var out, errOut strings.Builder
		if err := run([]string{"-days", "1", "-interval", "2h", "-reps", "3", "-workers", workers}, &out, &errOut); err != nil {
			t.Fatalf("run(workers=%s): %v", workers, err)
		}
		return out.String()
	}
	if a, b := render("1"), render("4"); a != b {
		t.Errorf("merged output differs between 1 and 4 workers:\n--- 1\n%s\n--- 4\n%s", a, b)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-days", "0"}, &out, &errOut); err == nil {
		t.Error("days 0 accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}
