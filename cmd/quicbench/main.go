// Command quicbench runs the paper's QUIC workloads from PC-Starlink —
// bulk H3-like transfers or the 25-messages-per-second session — and
// reports RTT distributions and capture-based loss accounting. With
// -pcap it also writes the receiver capture as a libpcap file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/trace"
)

func main() {
	mode := flag.String("mode", "h3", "workload: h3 | messages")
	dir := flag.String("dir", "down", "direction: down | up")
	n := flag.Int("n", 5, "transfers or sessions")
	sizeMB := flag.Int("size", 100, "transfer size in MB (h3 mode)")
	pcapPath := flag.String("pcap", "", "write the receiver capture of the first transfer to this pcap file")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	download := *dir == "down"
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)
	var out strings.Builder

	switch *mode {
	case "h3":
		camp := tb.RunH3Campaign(*n, *sizeMB<<20, download, 15*time.Second)
		r := stats.Summarize(camp.RTTSamplesMs())
		g := stats.Summarize(camp.Goodputs())
		fmt.Fprintf(&out, "H3 %s: %d x %dMB transfers\n", *dir, len(camp.Records), *sizeMB)
		fmt.Fprintf(&out, "  goodput: med=%.1f p25=%.1f p75=%.1f Mbit/s\n", g.P50, g.P25, g.P75)
		fmt.Fprintf(&out, "  RTT: n=%d p50=%.0f p95=%.0f p99=%.0f ms\n", r.N, r.P50, r.P95, r.P99)
		fmt.Fprintf(&out, "  loss: %.2f%% in %d events\n", 100*camp.LossRatio(), len(camp.BurstLengths()))
		core.LossDurations(&out, "loss events", camp.EventDurations())
		if *pcapPath != "" && len(camp.Records) > 0 {
			f, err := os.Create(*pcapPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w := trace.NewPcapWriter(f)
			if err := w.WriteCapture(camp.Records[0].Result.ReceiverCapture); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(&out, "  wrote %d capture records to %s\n", w.Packets, *pcapPath)
		}
	case "messages":
		camp := tb.RunMessagesCampaign(*n, 2*time.Minute, download)
		r := stats.Summarize(camp.RTTsMs)
		fmt.Fprintf(&out, "messages %s: %d sessions of 2min at 25 msg/s (5-25kB)\n", *dir, *n)
		fmt.Fprintf(&out, "  RTT: n=%d p50=%.0f p95=%.0f p99=%.0f ms\n", r.N, r.P50, r.P95, r.P99)
		fmt.Fprintf(&out, "  loss: %.2f%% (bursts: %v...)\n", 100*camp.LossRatio(), head(camp.BurstLengths(), 12))
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	fmt.Print(out.String())
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
