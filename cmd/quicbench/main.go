// Command quicbench runs the paper's QUIC workloads from PC-Starlink —
// bulk H3-like transfers or the 25-messages-per-second session — and
// reports RTT distributions and capture-based loss accounting. With
// -pcap it also writes the receiver capture as a libpcap file.
// Transfers and sessions shard across -workers goroutines, each on its
// own deterministically seeded testbed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("quicbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "h3", "workload: h3 | messages")
	dir := fs.String("dir", "down", "direction: down | up")
	n := fs.Int("n", 5, "transfers or sessions")
	sizeMB := fs.Int("size", 100, "transfer size in MB (h3 mode)")
	msgDur := fs.Duration("dur", 2*time.Minute, "session length (messages mode)")
	pcapPath := fs.String("pcap", "", "write the receiver capture of the first transfer to this pcap file")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	transport := fs.String("transport", "paper", "transport profile: paper | modern | toggle list (bbr,pacing,zerortt,migration,minrtt,idledecay)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n must be >= 1")
	}

	download := *dir == "down"
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	profile, err := core.ParseTransport(*transport)
	if err != nil {
		return err
	}
	cfg.Transport = profile
	opts := core.Options{Workers: *workers, Seed: *seed}
	var out strings.Builder

	switch *mode {
	case "h3":
		camp := core.RunH3CampaignParallel(cfg, *n, *sizeMB<<20, download, 15*time.Second, opts)
		r := stats.Summarize(camp.RTTSamplesMs())
		g := stats.Summarize(camp.Goodputs())
		fmt.Fprintf(&out, "H3 %s: %d x %dMB transfers\n", *dir, len(camp.Records), *sizeMB)
		fmt.Fprintf(&out, "  goodput: med=%.1f p25=%.1f p75=%.1f Mbit/s\n", g.P50, g.P25, g.P75)
		fmt.Fprintf(&out, "  RTT: n=%d p50=%.0f p95=%.0f p99=%.0f ms\n", r.N, r.P50, r.P95, r.P99)
		fmt.Fprintf(&out, "  loss: %.2f%% in %d events\n", 100*camp.LossRatio(), len(camp.BurstLengths()))
		core.LossDurations(&out, "loss events", camp.EventDurations())
		if *pcapPath != "" && len(camp.Records) > 0 {
			f, err := os.Create(*pcapPath)
			if err != nil {
				return err
			}
			w := trace.NewPcapWriter(f)
			if err := w.WriteCapture(camp.Records[0].Result.ReceiverCapture); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(&out, "  wrote %d capture records to %s\n", w.Packets, *pcapPath)
		}
	case "messages":
		camp := core.RunMessagesCampaignParallel(cfg, *n, *msgDur, download, opts)
		r := stats.Summarize(camp.RTTsMs)
		fmt.Fprintf(&out, "messages %s: %d sessions of %s at 25 msg/s (5-25kB)\n", *dir, *n, *msgDur)
		fmt.Fprintf(&out, "  RTT: n=%d p50=%.0f p95=%.0f p99=%.0f ms\n", r.N, r.P50, r.P95, r.P99)
		fmt.Fprintf(&out, "  loss: %.2f%% (bursts: %v...)\n", 100*camp.LossRatio(), head(camp.BurstLengths(), 12))
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	_, err = io.WriteString(stdout, out.String())
	return err
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
