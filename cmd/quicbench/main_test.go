package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunH3WithPcap(t *testing.T) {
	pcap := filepath.Join(t.TempDir(), "first.pcap")
	var out, errOut strings.Builder
	if err := run([]string{"-mode", "h3", "-n", "1", "-size", "5", "-pcap", pcap}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"H3 down: 1 x 5MB transfers", "goodput:", "RTT:", "loss:", "capture records to"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}
	info, err := os.Stat(pcap)
	if err != nil {
		t.Fatalf("pcap not written: %v", err)
	}
	if info.Size() <= 24 {
		t.Errorf("pcap has no packet records (size=%d)", info.Size())
	}
}

func TestRunMessages(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-mode", "messages", "-n", "1", "-dur", "30s", "-dir", "up"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"messages up: 1 sessions of 30s", "RTT:", "loss:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-mode", "ftp"}, &out, &errOut); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-n", "0"}, &out, &errOut); err == nil {
		t.Error("n 0 accepted")
	}
}
