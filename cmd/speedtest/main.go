// Command speedtest runs Ookla-style measurements (closest-server
// selection, parallel TCP connections) from one of the three vantage
// points. With the default connection count the tests fan out across
// -workers goroutines, one deterministically seeded testbed per shard.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("speedtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techName := fs.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	count := fs.Int("count", 10, "number of tests")
	gap := fs.Duration("gap", 30*time.Minute, "virtual time between tests")
	conns := fs.Int("conns", 4, "parallel TCP connections")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	transport := fs.String("transport", "paper", "transport profile: paper | modern | toggle list (bbr,pacing,zerortt,migration,minrtt,idledecay)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tech, ok := parseTech(*techName)
	if !ok {
		return fmt.Errorf("unknown tech %q", *techName)
	}
	if *count < 1 {
		return fmt.Errorf("count must be >= 1")
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	profile, err := core.ParseTransport(*transport)
	if err != nil {
		return err
	}
	cfg.Transport = profile

	node := map[core.Tech]string{core.TechStarlink: "pc-starlink", core.TechSatCom: "pc-satcom", core.TechWired: "pc-wired"}[tech]
	fmt.Fprintf(stdout, "speedtest from %s (%d tests, %d connections):\n", node, *count, *conns)

	var results []measure.SpeedtestResult
	if *conns == measure.DefaultSpeedtestConfig().Connections {
		opts := core.Options{Workers: *workers, Seed: *seed}
		results = core.RunSpeedtestCampaignParallel(cfg, tech, *count, *gap, opts)
	} else {
		results = runCustomConns(core.NewTestbed(cfg), tech, *count, *gap, *conns)
	}
	var down, up []float64
	for i, r := range results {
		fmt.Fprintf(stdout, "  #%02d  server=%-14s ping=%-8s down=%7.1f Mbit/s  up=%6.1f Mbit/s\n",
			i+1, r.Server, r.PingRTT.Round(100*time.Microsecond), r.DownloadMbps, r.UploadMbps)
		down = append(down, r.DownloadMbps)
		up = append(up, r.UploadMbps)
	}
	d, u := stats.Summarize(down), stats.Summarize(up)
	fmt.Fprintf(stdout, "download: med=%.1f p25=%.1f p75=%.1f max=%.1f Mbit/s\n", d.P50, d.P25, d.P75, d.Max)
	_, err = fmt.Fprintf(stdout, "upload:   med=%.1f p25=%.1f p75=%.1f max=%.1f Mbit/s\n", u.P50, u.P25, u.P75, u.Max)
	return err
}

func parseTech(s string) (core.Tech, bool) {
	switch s {
	case "starlink":
		return core.TechStarlink, true
	case "satcom":
		return core.TechSatCom, true
	case "wired":
		return core.TechWired, true
	}
	return 0, false
}

// runCustomConns drives measure directly for a non-default connection
// count, sequentially on one testbed. The testbed's SpeedtestConfig
// carries the transport profile overlay.
func runCustomConns(tb *core.Testbed, tech core.Tech, n int, gap time.Duration, conns int) []measure.SpeedtestResult {
	var out []measure.SpeedtestResult
	prober := measure.NewProber(vantageNode(tb, tech))
	cfg := tb.SpeedtestConfig()
	cfg.Connections = conns
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		measure.RunSpeedtest(prober, tb.OoklaServers, cfg, func(r measure.SpeedtestResult) {
			out = append(out, r)
			tb.Sched.After(gap, func() { runOne(i + 1) })
		})
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(n) * (gap + time.Minute))
	return out
}

func vantageNode(tb *core.Testbed, tech core.Tech) *netem.Node {
	switch tech {
	case core.TechSatCom:
		return tb.PCSatCom
	case core.TechWired:
		return tb.PCWired
	default:
		return tb.PCStarlink
	}
}
