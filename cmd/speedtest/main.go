// Command speedtest runs Ookla-style measurements (closest-server
// selection, parallel TCP connections) from one of the three vantage
// points.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/stats"
)

func main() {
	techName := flag.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	count := flag.Int("count", 10, "number of tests")
	gap := flag.Duration("gap", 30*time.Minute, "virtual time between tests")
	conns := flag.Int("conns", 4, "parallel TCP connections")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	tech, ok := parseTech(*techName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown tech %q\n", *techName)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)

	node := map[core.Tech]string{core.TechStarlink: "pc-starlink", core.TechSatCom: "pc-satcom", core.TechWired: "pc-wired"}[tech]
	fmt.Printf("speedtest from %s (%d tests, %d connections):\n", node, *count, *conns)

	results := runCampaign(tb, tech, *count, *gap, *conns)
	var down, up []float64
	for i, r := range results {
		fmt.Printf("  #%02d  server=%-14s ping=%-8s down=%7.1f Mbit/s  up=%6.1f Mbit/s\n",
			i+1, r.Server, r.PingRTT.Round(100*time.Microsecond), r.DownloadMbps, r.UploadMbps)
		down = append(down, r.DownloadMbps)
		up = append(up, r.UploadMbps)
	}
	d, u := stats.Summarize(down), stats.Summarize(up)
	fmt.Printf("download: med=%.1f p25=%.1f p75=%.1f max=%.1f Mbit/s\n", d.P50, d.P25, d.P75, d.Max)
	fmt.Printf("upload:   med=%.1f p25=%.1f p75=%.1f max=%.1f Mbit/s\n", u.P50, u.P25, u.P75, u.Max)
}

func parseTech(s string) (core.Tech, bool) {
	switch s {
	case "starlink":
		return core.TechStarlink, true
	case "satcom":
		return core.TechSatCom, true
	case "wired":
		return core.TechWired, true
	}
	return 0, false
}

func runCampaign(tb *core.Testbed, tech core.Tech, n int, gap time.Duration, conns int) []measure.SpeedtestResult {
	if conns == 4 {
		return tb.RunSpeedtestCampaign(tech, n, gap)
	}
	// Custom connection count: drive measure directly.
	var out []measure.SpeedtestResult
	prober := measure.NewProber(vantageNode(tb, tech))
	cfg := measure.DefaultSpeedtestConfig()
	cfg.Connections = conns
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		measure.RunSpeedtest(prober, tb.OoklaServers, cfg, func(r measure.SpeedtestResult) {
			out = append(out, r)
			tb.Sched.After(gap, func() { runOne(i + 1) })
		})
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(n) * (gap + time.Minute))
	return out
}

func vantageNode(tb *core.Testbed, tech core.Tech) *netem.Node {
	switch tech {
	case core.TechSatCom:
		return tb.PCSatCom
	case core.TechWired:
		return tb.PCWired
	default:
		return tb.PCStarlink
	}
}
