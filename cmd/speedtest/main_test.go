package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-count", "1", "-gap", "1s"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"speedtest from pc-starlink", "#01", "download:", "upload:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCustomConns(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-count", "1", "-gap", "1s", "-conns", "2", "-tech", "wired"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "1 tests, 2 connections") {
		t.Errorf("custom connection count not reflected in output:\n%s", out.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-tech", "dialup"}, &out, &errOut); err == nil {
		t.Error("unknown tech accepted")
	}
	if err := run([]string{"-count", "0"}, &out, &errOut); err == nil {
		t.Error("count 0 accepted")
	}
}
