package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"starlinkperf/internal/fleet"
)

// fidelityReport is the bench.json section for the link-fidelity tiers
// and the analytic fast-forward: one traffic campaign timed under each
// fidelity mode. The modes are bit-identical on every output (the
// equivalence suites and ci.sh's byte-diff hold them to it), so the only
// legitimate differences here are wall clock and event counts — which is
// exactly what the section reports and the validator gates.
type fidelityReport struct {
	Terminals       int     `json:"terminals"`
	Partitions      int     `json:"partitions"`
	ProbeIntervalMs float64 `json:"probe_interval_ms"`
	// Link tier census after auto-selection (the full/tiers runs keep
	// every link at full fidelity by construction).
	LinksFull      int `json:"links_full"`
	LinksDelayOnly int `json:"links_delay_only"`
	LinksFast      int `json:"links_fast"`
	// Best-of-rounds run-phase walls under each mode.
	WallFullSeconds  float64 `json:"wall_full_seconds"`
	WallTiersSeconds float64 `json:"wall_tiers_seconds"`
	WallAutoSeconds  float64 `json:"wall_auto_seconds"`
	// Executed scheduler events per mode, plus the events the
	// fast-forward displaced (auto mode's executed + skipped is the
	// work a per-event engine would have done).
	EventsFull    uint64 `json:"events_full"`
	EventsTiers   uint64 `json:"events_tiers"`
	EventsAuto    uint64 `json:"events_auto"`
	EventsSkipped uint64 `json:"events_skipped"`
	// FastForwarded counts probe fires absorbed in closed form;
	// AbsorbedSharePct is that count over every probe fire the campaign
	// scheduled (sent + outage skips). PR 8's intra-partition-only
	// absorber topped out near 70% on this workload because every train
	// homed to a remote-partition gateway fell back to emulation; with
	// cross-partition absorption the share is gated at >= 85.
	FastForwarded    int64   `json:"fast_forwarded_probes"`
	AbsorbedSharePct float64 `json:"absorbed_share_pct"`
	// SpeedupTiers is wall_full/wall_tiers (the tier downgrade alone);
	// SpeedupTotal is wall_full/wall_auto (tiers + fast-forward), the
	// headline the >= 3x CI gate holds.
	SpeedupTiers float64 `json:"speedup_tiers"`
	SpeedupTotal float64 `json:"speedup_total"`
	// ResultsMatch is true iff every mode's result equaled full
	// emulation's after scrubbing the engine-dependent fields. A false
	// here is a correctness bug, not a perf regression.
	ResultsMatch bool `json:"results_match"`
}

// fidelityMicrobench times the same traffic campaign under full, tiers
// and auto fidelity. The probe interval is shortened to 250 ms — every
// bent-pipe RTT fits under it, so the fast-forward's steady-state
// absorption (not its emulated fallback) is what gets timed, and the
// per-probe event load dominates the shared epoch-reassignment cost.
// Like the PDES microbench, every mode runs in five interleaved rounds
// keeping the best wall, so a background hiccup lands on all modes
// instead of biasing one ratio.
func fidelityMicrobench(quick bool, seed uint64) fidelityReport {
	terms, horizon, epoch := 10000, 30*time.Second, 15*time.Second
	if quick {
		terms, horizon, epoch = 2000, 10*time.Second, 5*time.Second
	}
	modes := []fleet.FidelityMode{fleet.FidelityFull, fleet.FidelityTiers, fleet.FidelityAuto}
	mk := func(mode fleet.FidelityMode) fleet.TrafficConfig {
		return fleet.TrafficConfig{
			Fleet:           fleet.Config{Seed: seed, Terminals: terms, Horizon: horizon, Epoch: epoch, Workers: 1},
			Interval:        250 * time.Millisecond,
			Partitions:      16,
			ScenarioWorkers: 1,
			Fidelity:        mode,
		}
	}
	walls := make([]float64, len(modes))
	results := make([]*fleet.TrafficResult, len(modes))
	rep := fidelityReport{ProbeIntervalMs: 250}
	for round := 0; round < 5; round++ {
		for i, mode := range modes {
			tr := fleet.NewTraffic(mk(mode))
			runtime.GC() // settle build debt outside the timed region
			start := time.Now()
			r := tr.Run()
			wall := time.Since(start).Seconds()
			if results[i] == nil || wall < walls[i] {
				walls[i], results[i] = wall, r
			}
			if round == 0 && mode == fleet.FidelityAuto {
				rep.LinksFull, rep.LinksDelayOnly, rep.LinksFast = tr.LinkTiers()
				rep.FastForwarded = tr.FastForwarded()
				rep.EventsSkipped = tr.EventsSkipped()
			}
		}
	}
	full, tiers, auto := results[0], results[1], results[2]
	rep.Terminals = full.Terminals
	rep.Partitions = full.Partitions
	rep.WallFullSeconds, rep.WallTiersSeconds, rep.WallAutoSeconds = walls[0], walls[1], walls[2]
	rep.EventsFull, rep.EventsTiers, rep.EventsAuto = full.Events, tiers.Events, auto.Events
	rep.SpeedupTiers = walls[0] / walls[1]
	rep.SpeedupTotal = walls[0] / walls[2]
	if total := auto.ProbesSent + auto.ProbesSkipped; total > 0 {
		rep.AbsorbedSharePct = 100 * float64(rep.FastForwarded) / float64(total)
	}
	want := pdesScrub(full)
	rep.ResultsMatch = reflect.DeepEqual(pdesScrub(tiers), want) &&
		reflect.DeepEqual(pdesScrub(auto), want)
	return rep
}

// renderFidelity prints the fidelity sweep for the human-readable
// report.
func renderFidelity(w io.Writer, rep fidelityReport) {
	fmt.Fprintf(w, "\n=== link fidelity tiers + analytic fast-forward ===\n")
	fmt.Fprintf(w, "%d terminals / %d partitions / %.0fms probe interval; links: %d full, %d delay-only, %d fast\n",
		rep.Terminals, rep.Partitions, rep.ProbeIntervalMs, rep.LinksFull, rep.LinksDelayOnly, rep.LinksFast)
	fmt.Fprintf(w, "full emulation: %.3fs (%d events)\n", rep.WallFullSeconds, rep.EventsFull)
	fmt.Fprintf(w, "tiers only:     %.3fs (%d events, %.2fx)\n", rep.WallTiersSeconds, rep.EventsTiers, rep.SpeedupTiers)
	fmt.Fprintf(w, "tiers + ff:     %.3fs (%d events + %d skipped, %.2fx; %d probes absorbed = %.1f%% of fires)\n",
		rep.WallAutoSeconds, rep.EventsAuto, rep.EventsSkipped, rep.SpeedupTotal, rep.FastForwarded, rep.AbsorbedSharePct)
	fmt.Fprintf(w, "results match full emulation: %v\n", rep.ResultsMatch)
}

// validateFidelityReport gates the tentpole's two claims: the fast modes
// changed nothing (ResultsMatch) and bought real wall-clock — at least
// 3x end to end, with the event ledger showing where it came from.
func validateFidelityReport(rep fidelityReport) error {
	if rep.Terminals == 0 || rep.Partitions == 0 {
		return fmt.Errorf("fidelity section missing")
	}
	if !rep.ResultsMatch {
		return fmt.Errorf("fidelity results_match = false: a fast mode diverged from full emulation")
	}
	if rep.WallFullSeconds <= 0 || rep.WallTiersSeconds <= 0 || rep.WallAutoSeconds <= 0 {
		return fmt.Errorf("fidelity walls incomplete: %+v", rep)
	}
	if rep.LinksDelayOnly == 0 || rep.LinksFast == 0 {
		return fmt.Errorf("fidelity auto-selection downgraded no links (%d delay-only, %d fast)",
			rep.LinksDelayOnly, rep.LinksFast)
	}
	if rep.EventsTiers >= rep.EventsFull || rep.EventsAuto >= rep.EventsTiers {
		return fmt.Errorf("fidelity event counts not strictly decreasing: full %d, tiers %d, auto %d",
			rep.EventsFull, rep.EventsTiers, rep.EventsAuto)
	}
	if rep.FastForwarded <= 0 || rep.EventsSkipped == 0 {
		return fmt.Errorf("fidelity fast-forward absorbed nothing (%d probes, %d events)",
			rep.FastForwarded, rep.EventsSkipped)
	}
	if rep.AbsorbedSharePct < 85 || rep.AbsorbedSharePct > 100 {
		return fmt.Errorf("fidelity absorbed_share_pct = %.1f, want in [85, 100]: cross-partition trains should absorb too",
			rep.AbsorbedSharePct)
	}
	if rep.SpeedupTotal < 3 {
		return fmt.Errorf("fidelity speedup_total = %.2f, want >= 3", rep.SpeedupTotal)
	}
	return nil
}
