package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/sim"
)

// fleetReport is the bench.json section for the planet-scale terminal
// fleet scenario: the campaign's per-region distributions plus a
// microbench pitting the spatial cell index against the naive O(N×M)
// reference scan kept in-tree. Tracking both keeps the index's speedup
// and zero-allocation claims honest across PRs.
type fleetReport struct {
	Terminals       int     `json:"terminals"`
	Epochs          int     `json:"epochs"`
	Cells           int     `json:"cells"`
	Satellites      int     `json:"satellites"`
	OutagePct       float64 `json:"outage_pct"`
	CellNsPerEpoch  float64 `json:"cell_ns_per_epoch"`
	RefNsPerEpoch   float64 `json:"ref_ns_per_epoch"`
	ReassignSpeedup float64 `json:"reassign_speedup"`
	AllocsPerEpoch  float64 `json:"allocs_per_epoch"`

	Regions []fleetRegionReport `json:"regions"`

	// Scale is the partitioned epoch campaign's terminal-count sweep:
	// 10k/100k/1M-terminal epochs through the pooled fork/join path and
	// the in-tree sequential reference, each held to zero steady-state
	// allocations.
	Scale fleetScaleReport `json:"scale"`
}

// fleetScalePoint is one row of the terminal-count sweep: steady-state
// epoch cost (pooled and sequential) and allocations at one fleet size.
type fleetScalePoint struct {
	Terminals     int     `json:"terminals"`
	Workers       int     `json:"workers"`
	NsPerEpoch    float64 `json:"ns_per_epoch"`
	SeqNsPerEpoch float64 `json:"seq_ns_per_epoch"`
	// ParallelSpeedup is seq/pooled wall per epoch. Only meaningful on a
	// machine with cores behind the workers; the validator gates it at
	// the 1M point only when speedup_gate_armed.
	ParallelSpeedup float64 `json:"parallel_speedup"`
	AllocsPerEpoch  float64 `json:"allocs_per_epoch"`
}

// fleetScaleReport is the bench.json section for the partitioned epoch
// campaign at scale. ResultsMatch compares a full multi-worker
// 100k-terminal campaign against the single-worker reference
// (reflect.DeepEqual on the campaign result; ci.sh byte-diffs the
// exports on top of this).
type fleetScaleReport struct {
	Points           []fleetScalePoint `json:"points"`
	ResultsMatch     bool              `json:"results_match"`
	SpeedupGateArmed bool              `json:"speedup_gate_armed"`
}

// fleetScaleSizes is the sweep axis; the validator requires exactly
// these sizes so a trajectory file can never silently drop the 1M point.
var fleetScaleSizes = [3]int{10000, 100000, 1000000}

// fleetScaleSweep times steady-state epochs at each fleet size. Instants
// cycle the constellation's 8-slot snapshot ring after a warmup (as in
// fleetMicrobench), so the measured epochs never recompute positions and
// allocs/epoch comes from the cumulative malloc counter — the pooled
// path genuinely reads zero at every size, which is what makes the 1M
// point affordable even in the quick profile.
func fleetScaleSweep(seed uint64) fleetScaleReport {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		// Always exercise the pooled fork/join path: on a small box the
		// sweep still proves determinism and zero allocation, it just
		// cannot express a speedup (the gate stays disarmed).
		workers = 2
	}
	rep := fleetScaleReport{SpeedupGateArmed: speedupGatesArmed()}
	var instants [8]sim.Time
	for i := range instants {
		instants[i] = sim.Time(int64(i) * int64(15*time.Second))
	}
	for _, terms := range fleetScaleSizes {
		warm, measureN, seqN := 2, 8, 4
		if terms >= 1000000 {
			warm, measureN, seqN = 1, 4, 2
		}
		fl := fleet.New(fleet.Config{Seed: seed, Terminals: terms, Workers: workers})
		for r := 0; r < warm; r++ {
			for e, at := range instants {
				fl.RunEpoch(e, at)
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < measureN; i++ {
			fl.RunEpoch(i%len(instants), instants[i%len(instants)])
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		pt := fleetScalePoint{
			Terminals:      terms,
			Workers:        workers,
			NsPerEpoch:     float64(elapsed.Nanoseconds()) / float64(measureN),
			AllocsPerEpoch: float64(ms1.Mallocs-ms0.Mallocs) / float64(measureN),
		}
		fl.RunEpochSequential(0, instants[0])
		start = time.Now()
		for i := 0; i < seqN; i++ {
			fl.RunEpochSequential(i%len(instants), instants[i%len(instants)])
		}
		pt.SeqNsPerEpoch = float64(time.Since(start).Nanoseconds()) / float64(seqN)
		pt.ParallelSpeedup = pt.SeqNsPerEpoch / pt.NsPerEpoch
		fl.Close()
		rep.Points = append(rep.Points, pt)
	}
	// Determinism at scale: a whole 100k-terminal campaign (eight
	// epochs) pooled vs single-worker must agree exactly.
	cfg := fleet.Config{Seed: seed, Terminals: 100000, Horizon: 2 * time.Minute, Workers: workers}
	pooled := fleet.Run(cfg)
	cfg.Workers = 1
	single := fleet.Run(cfg)
	rep.ResultsMatch = reflect.DeepEqual(pooled, single)
	return rep
}

// renderFleetScale prints the terminal-count sweep for the
// human-readable report.
func renderFleetScale(w io.Writer, rep fleetScaleReport) {
	fmt.Fprintf(w, "\n=== fleet scale sweep (partitioned epoch campaign) ===\n")
	for _, pt := range rep.Points {
		fmt.Fprintf(w, "%8d terminals: %8.2f ms/epoch on %d workers (sequential %8.2f ms, %.2fx, %.2f allocs/epoch)\n",
			pt.Terminals, pt.NsPerEpoch/1e6, pt.Workers, pt.SeqNsPerEpoch/1e6, pt.ParallelSpeedup, pt.AllocsPerEpoch)
	}
	gate := "skipped (needs >= 8-way parallelism)"
	if rep.SpeedupGateArmed {
		gate = "armed"
	}
	fmt.Fprintf(w, "speedup gate %s; 100k campaign matches single-worker reference: %v\n", gate, rep.ResultsMatch)
}

// validateFleetScale checks the scale section: all three sizes present
// in order, every point timed and allocation-free, the 100k campaign
// equivalence holding, and — only on machines that armed the gate — a
// real parallel speedup at the 1M point.
func validateFleetScale(s fleetScaleReport) error {
	if len(s.Points) != len(fleetScaleSizes) {
		return fmt.Errorf("fleet scale sweep has %d points, want %d", len(s.Points), len(fleetScaleSizes))
	}
	for i, pt := range s.Points {
		if pt.Terminals != fleetScaleSizes[i] {
			return fmt.Errorf("fleet scale point %d has %d terminals, want %d", i, pt.Terminals, fleetScaleSizes[i])
		}
		if pt.Workers < 2 || pt.NsPerEpoch <= 0 || pt.SeqNsPerEpoch <= 0 {
			return fmt.Errorf("fleet scale point incomplete: %+v", pt)
		}
		if pt.AllocsPerEpoch < 0 || pt.AllocsPerEpoch >= 1 {
			return fmt.Errorf("fleet scale %d-terminal allocs_per_epoch = %v, want < 1", pt.Terminals, pt.AllocsPerEpoch)
		}
	}
	if !s.ResultsMatch {
		return fmt.Errorf("fleet scale results_match = false: pooled campaign diverged from single-worker reference")
	}
	if s.SpeedupGateArmed {
		if last := s.Points[len(s.Points)-1]; last.ParallelSpeedup < 1.5 {
			return fmt.Errorf("fleet scale 1M parallel_speedup = %.2f with the gate armed, want >= 1.5", last.ParallelSpeedup)
		}
	}
	return nil
}

// fleetRegionReport flattens one region's campaign distributions.
type fleetRegionReport struct {
	Region         string  `json:"region"`
	Terminals      int     `json:"terminals"`
	OutagePct      float64 `json:"outage_pct"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP95Ms   float64 `json:"latency_p95_ms"`
	Handovers      int64   `json:"handovers"`
	PeakMbpsP50    float64 `json:"peak_mbps_p50"`
	OffPeakMbpsP50 float64 `json:"offpeak_mbps_p50"`
	PeakDipPct     float64 `json:"peak_dip_pct"`
}

func makeFleetReport(res *fleet.Result, quick bool) fleetReport {
	rep := fleetReport{
		Terminals:  res.Terminals,
		Epochs:     res.Epochs,
		Cells:      res.Cells,
		Satellites: res.Satellites,
	}
	outages := int64(0)
	for _, rr := range res.Regions {
		outages += rr.OutageTermEpochs
		rep.Regions = append(rep.Regions, fleetRegionReport{
			Region:         rr.Region,
			Terminals:      rr.Terminals,
			OutagePct:      rr.OutagePct,
			LatencyP50Ms:   rr.LatencyP50Ms,
			LatencyP95Ms:   rr.LatencyP95Ms,
			Handovers:      rr.Handovers,
			PeakMbpsP50:    rr.PeakMbpsP50,
			OffPeakMbpsP50: rr.OffPeakMbpsP50,
			PeakDipPct:     rr.PeakDipPct,
		})
	}
	if res.Terminals > 0 && res.Epochs > 0 {
		rep.OutagePct = 100 * float64(outages) / (float64(res.Terminals) * float64(res.Epochs))
	}
	rep.CellNsPerEpoch, rep.RefNsPerEpoch, rep.AllocsPerEpoch = fleetMicrobench(quick)
	rep.ReassignSpeedup = rep.RefNsPerEpoch / rep.CellNsPerEpoch
	return rep
}

// fleetMicrobench times one reassignment epoch through the cell index
// and through the reference scan on the same fleet. Instants cycle the
// constellation's 8-slot snapshot ring after a warmup, so the measured
// steady state never recomputes positions — allocs/epoch comes from the
// runtime's cumulative malloc counter and genuinely reads zero.
func fleetMicrobench(quick bool) (cellNs, refNs, allocsPerEpoch float64) {
	terms, cellN, refN := 10000, 192, 16
	if quick {
		terms, cellN, refN = 4000, 64, 6
	}
	fl := fleet.New(fleet.Config{Seed: 1, Terminals: terms, Workers: 1})
	var instants [8]sim.Time
	for i := range instants {
		instants[i] = sim.Time(int64(i) * int64(15*time.Second))
	}
	for r := 0; r < 2; r++ {
		for _, at := range instants {
			fl.ReassignAt(at)
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < cellN; i++ {
		fl.ReassignAt(instants[i%len(instants)])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	cellNs = float64(elapsed.Nanoseconds()) / float64(cellN)
	allocsPerEpoch = float64(ms1.Mallocs-ms0.Mallocs) / float64(cellN)

	start = time.Now()
	for i := 0; i < refN; i++ {
		fl.ReferenceReassignAt(instants[i%len(instants)])
	}
	refNs = float64(time.Since(start).Nanoseconds()) / float64(refN)
	return cellNs, refNs, allocsPerEpoch
}

// renderFleet prints the per-region distribution table of the fleet
// scenario — the global-coverage story (latency by region, high-latitude
// outage, peak-hour dip) the paper's single-vantage campaigns cannot
// show.
func renderFleet(w io.Writer, res *fleet.Result) {
	fmt.Fprintf(w, "=== starlink-fleet scenario ===\n")
	fmt.Fprintf(w, "%d terminals, %d epochs, %d cells, %d satellites\n\n",
		res.Terminals, res.Epochs, res.Cells, res.Satellites)
	fmt.Fprintf(w, "%-14s %6s %8s %7s %7s %9s %9s %8s %6s\n",
		"region", "terms", "outage%", "p50ms", "p95ms", "handovers", "peak p50", "off p50", "dip%")
	for _, rr := range res.Regions {
		fmt.Fprintf(w, "%-14s %6d %8.2f %7.1f %7.1f %9d %9.1f %8.1f %6.1f\n",
			rr.Region, rr.Terminals, rr.OutagePct, rr.LatencyP50Ms, rr.LatencyP95Ms,
			rr.Handovers, rr.PeakMbpsP50, rr.OffPeakMbpsP50, rr.PeakDipPct)
	}
}

// validateFleetReport checks the fleet section of a bench.json: the
// campaign must have covered a real fleet and the cell index must beat
// the reference scan by the floor without allocating.
func validateFleetReport(f fleetReport) error {
	if f.Terminals <= 0 || f.Epochs <= 0 || f.Cells <= 0 || f.Satellites <= 0 {
		return fmt.Errorf("fleet section incomplete: %+v", f)
	}
	if f.OutagePct < 0 || f.OutagePct > 100 {
		return fmt.Errorf("fleet outage_pct = %v, want in [0, 100]", f.OutagePct)
	}
	if f.CellNsPerEpoch <= 0 || f.RefNsPerEpoch <= 0 {
		return fmt.Errorf("fleet microbench timings missing: %+v", f)
	}
	if f.ReassignSpeedup < 3 {
		return fmt.Errorf("fleet reassign_speedup = %.2f, want >= 3", f.ReassignSpeedup)
	}
	if f.AllocsPerEpoch < 0 || f.AllocsPerEpoch >= 1 {
		return fmt.Errorf("fleet allocs_per_epoch = %v, want < 1", f.AllocsPerEpoch)
	}
	if len(f.Regions) == 0 {
		return fmt.Errorf("fleet regions missing")
	}
	for _, rr := range f.Regions {
		if rr.Region == "" || rr.Terminals <= 0 {
			return fmt.Errorf("fleet region entry incomplete: %+v", rr)
		}
		if rr.OutagePct < 0 || rr.OutagePct > 100 {
			return fmt.Errorf("fleet region %s outage_pct = %v", rr.Region, rr.OutagePct)
		}
	}
	return validateFleetScale(f.Scale)
}
