package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/sim"
)

// fleetReport is the bench.json section for the planet-scale terminal
// fleet scenario: the campaign's per-region distributions plus a
// microbench pitting the spatial cell index against the naive O(N×M)
// reference scan kept in-tree. Tracking both keeps the index's speedup
// and zero-allocation claims honest across PRs.
type fleetReport struct {
	Terminals       int     `json:"terminals"`
	Epochs          int     `json:"epochs"`
	Cells           int     `json:"cells"`
	Satellites      int     `json:"satellites"`
	OutagePct       float64 `json:"outage_pct"`
	CellNsPerEpoch  float64 `json:"cell_ns_per_epoch"`
	RefNsPerEpoch   float64 `json:"ref_ns_per_epoch"`
	ReassignSpeedup float64 `json:"reassign_speedup"`
	AllocsPerEpoch  float64 `json:"allocs_per_epoch"`

	Regions []fleetRegionReport `json:"regions"`
}

// fleetRegionReport flattens one region's campaign distributions.
type fleetRegionReport struct {
	Region         string  `json:"region"`
	Terminals      int     `json:"terminals"`
	OutagePct      float64 `json:"outage_pct"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP95Ms   float64 `json:"latency_p95_ms"`
	Handovers      int64   `json:"handovers"`
	PeakMbpsP50    float64 `json:"peak_mbps_p50"`
	OffPeakMbpsP50 float64 `json:"offpeak_mbps_p50"`
	PeakDipPct     float64 `json:"peak_dip_pct"`
}

func makeFleetReport(res *fleet.Result, quick bool) fleetReport {
	rep := fleetReport{
		Terminals:  res.Terminals,
		Epochs:     res.Epochs,
		Cells:      res.Cells,
		Satellites: res.Satellites,
	}
	outages := int64(0)
	for _, rr := range res.Regions {
		outages += rr.OutageTermEpochs
		rep.Regions = append(rep.Regions, fleetRegionReport{
			Region:         rr.Region,
			Terminals:      rr.Terminals,
			OutagePct:      rr.OutagePct,
			LatencyP50Ms:   rr.LatencyP50Ms,
			LatencyP95Ms:   rr.LatencyP95Ms,
			Handovers:      rr.Handovers,
			PeakMbpsP50:    rr.PeakMbpsP50,
			OffPeakMbpsP50: rr.OffPeakMbpsP50,
			PeakDipPct:     rr.PeakDipPct,
		})
	}
	if res.Terminals > 0 && res.Epochs > 0 {
		rep.OutagePct = 100 * float64(outages) / (float64(res.Terminals) * float64(res.Epochs))
	}
	rep.CellNsPerEpoch, rep.RefNsPerEpoch, rep.AllocsPerEpoch = fleetMicrobench(quick)
	rep.ReassignSpeedup = rep.RefNsPerEpoch / rep.CellNsPerEpoch
	return rep
}

// fleetMicrobench times one reassignment epoch through the cell index
// and through the reference scan on the same fleet. Instants cycle the
// constellation's 8-slot snapshot ring after a warmup, so the measured
// steady state never recomputes positions — allocs/epoch comes from the
// runtime's cumulative malloc counter and genuinely reads zero.
func fleetMicrobench(quick bool) (cellNs, refNs, allocsPerEpoch float64) {
	terms, cellN, refN := 10000, 192, 16
	if quick {
		terms, cellN, refN = 4000, 64, 6
	}
	fl := fleet.New(fleet.Config{Seed: 1, Terminals: terms, Workers: 1})
	var instants [8]sim.Time
	for i := range instants {
		instants[i] = sim.Time(int64(i) * int64(15*time.Second))
	}
	for r := 0; r < 2; r++ {
		for _, at := range instants {
			fl.ReassignAt(at)
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < cellN; i++ {
		fl.ReassignAt(instants[i%len(instants)])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	cellNs = float64(elapsed.Nanoseconds()) / float64(cellN)
	allocsPerEpoch = float64(ms1.Mallocs-ms0.Mallocs) / float64(cellN)

	start = time.Now()
	for i := 0; i < refN; i++ {
		fl.ReferenceReassignAt(instants[i%len(instants)])
	}
	refNs = float64(time.Since(start).Nanoseconds()) / float64(refN)
	return cellNs, refNs, allocsPerEpoch
}

// renderFleet prints the per-region distribution table of the fleet
// scenario — the global-coverage story (latency by region, high-latitude
// outage, peak-hour dip) the paper's single-vantage campaigns cannot
// show.
func renderFleet(w io.Writer, res *fleet.Result) {
	fmt.Fprintf(w, "=== starlink-fleet scenario ===\n")
	fmt.Fprintf(w, "%d terminals, %d epochs, %d cells, %d satellites\n\n",
		res.Terminals, res.Epochs, res.Cells, res.Satellites)
	fmt.Fprintf(w, "%-14s %6s %8s %7s %7s %9s %9s %8s %6s\n",
		"region", "terms", "outage%", "p50ms", "p95ms", "handovers", "peak p50", "off p50", "dip%")
	for _, rr := range res.Regions {
		fmt.Fprintf(w, "%-14s %6d %8.2f %7.1f %7.1f %9d %9.1f %8.1f %6.1f\n",
			rr.Region, rr.Terminals, rr.OutagePct, rr.LatencyP50Ms, rr.LatencyP95Ms,
			rr.Handovers, rr.PeakMbpsP50, rr.OffPeakMbpsP50, rr.PeakDipPct)
	}
}

// validateFleetReport checks the fleet section of a bench.json: the
// campaign must have covered a real fleet and the cell index must beat
// the reference scan by the floor without allocating.
func validateFleetReport(f fleetReport) error {
	if f.Terminals <= 0 || f.Epochs <= 0 || f.Cells <= 0 || f.Satellites <= 0 {
		return fmt.Errorf("fleet section incomplete: %+v", f)
	}
	if f.OutagePct < 0 || f.OutagePct > 100 {
		return fmt.Errorf("fleet outage_pct = %v, want in [0, 100]", f.OutagePct)
	}
	if f.CellNsPerEpoch <= 0 || f.RefNsPerEpoch <= 0 {
		return fmt.Errorf("fleet microbench timings missing: %+v", f)
	}
	if f.ReassignSpeedup < 3 {
		return fmt.Errorf("fleet reassign_speedup = %.2f, want >= 3", f.ReassignSpeedup)
	}
	if f.AllocsPerEpoch < 0 || f.AllocsPerEpoch >= 1 {
		return fmt.Errorf("fleet allocs_per_epoch = %v, want < 1", f.AllocsPerEpoch)
	}
	if len(f.Regions) == 0 {
		return fmt.Errorf("fleet regions missing")
	}
	for _, rr := range f.Regions {
		if rr.Region == "" || rr.Terminals <= 0 {
			return fmt.Errorf("fleet region entry incomplete: %+v", rr)
		}
		if rr.OutagePct < 0 || rr.OutagePct > 100 {
			return fmt.Errorf("fleet region %s outage_pct = %v", rr.Region, rr.OutagePct)
		}
	}
	return nil
}
