// Command starlink-bench runs the full measurement campaign against the
// emulated testbed and prints every table and figure the paper reports.
//
// Scale is controlled by -scale: 1 is a quick pass (~1 minute of wall
// time), larger values lengthen campaigns towards the paper's sample
// sizes (RTT-sample counts in the millions need -scale 8 and some
// patience).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/web"
)

func main() {
	scale := flag.Int("scale", 1, "campaign scale factor")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()
	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "scale must be >= 1")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	var out strings.Builder

	// Table 1 + Figures 1-2 share one long latency campaign with the
	// paper's scenario events.
	latCfg := cfg
	latCfg.InitialShellFraction = 0.86
	latCfg.FleetGrowthAt = 53 * 24 * time.Hour
	latCfg.Load = core.LoadEpisode{Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour, ExtraOneWay: 4 * time.Millisecond}
	latTB := core.NewTestbed(latCfg)
	latDays := time.Duration(min(150, 10**scale)) * 24 * time.Hour
	interval := 30 * time.Minute
	if *scale >= 4 {
		interval = 5 * time.Minute
	}
	fmt.Fprintf(os.Stderr, "latency campaign: %s at %s cadence...\n", latDays, interval)
	lat := latTB.RunLatencyCampaign(latDays, interval)

	core.RenderTable1(&out, latDays, latDays, latDays, latDays, len(latTB.Anchors), len(latTB.Sites))
	out.WriteString("\n")
	core.RenderFigure1(&out, core.Figure1(lat, latTB.Anchors))
	out.WriteString("\n")
	bins := core.Figure2(lat)
	step := max(1, len(bins)/24)
	var shown []core.Figure2Bin
	for i := 0; i < len(bins); i += step {
		shown = append(shown, bins[i])
	}
	core.RenderFigure2(&out, shown)
	out.WriteString("\n")

	// QUIC campaigns on a fresh testbed.
	tb := core.NewTestbed(cfg)
	fmt.Fprintln(os.Stderr, "H3 bulk campaigns...")
	h3d := tb.RunH3Campaign(6**scale, 100<<20, true, 20*time.Second)
	h3u := tb.RunH3Campaign(4**scale, 100<<20, false, 20*time.Second)
	fmt.Fprintln(os.Stderr, "message campaigns...")
	md := tb.RunMessagesCampaign(4**scale, 2*time.Minute, true)
	mu := tb.RunMessagesCampaign(4**scale, 2*time.Minute, false)

	core.RenderFigure3(&out, core.MakeFigure3(h3d, h3u))
	out.WriteString("\n")
	core.RenderTable2(&out, core.MakeTable2(h3d, h3u, md, mu))
	out.WriteString("\n")
	core.RenderFigure4(&out, core.MakeFigure4("H3 transfers", h3d.BurstLengths(), h3u.BurstLengths()))
	core.RenderFigure4(&out, core.MakeFigure4("messaging transfers", md.BurstLengths(), mu.BurstLengths()))
	core.LossDurations(&out, "H3 downloads", h3d.EventDurations())
	core.LossDurations(&out, "message downloads", md.EventDurations())
	out.WriteString("\n")

	fmt.Fprintln(os.Stderr, "speedtest campaigns...")
	sl := tb.RunSpeedtestCampaign(core.TechStarlink, 16**scale, 30*time.Minute)
	sc := tb.RunSpeedtestCampaign(core.TechSatCom, 8**scale, 30*time.Minute)
	core.RenderFigure5(&out, core.MakeFigure5(sl, sc, h3d, h3u))
	out.WriteString("\n")

	fmt.Fprintln(os.Stderr, "web campaigns...")
	visits := map[string][]web.VisitResult{
		"starlink": tb.RunWebCampaign(core.TechStarlink, 40**scale, 2*time.Second),
		"satcom":   tb.RunWebCampaign(core.TechSatCom, 40**scale, 2*time.Second),
		"wired":    tb.RunWebCampaign(core.TechWired, 40**scale, 2*time.Second),
	}
	core.RenderFigure6(&out, core.MakeFigure6(visits))
	out.WriteString("\n")

	fmt.Fprintln(os.Stderr, "middlebox + traffic-discrimination audits...")
	mbSL := core.NewTestbed(cfg)
	core.RenderMiddleboxAudit(&out, "starlink", mbSL.RunMiddleboxAudit(core.TechStarlink))
	mbSC := core.NewTestbed(cfg)
	core.RenderMiddleboxAudit(&out, "satcom", mbSC.RunMiddleboxAudit(core.TechSatCom))
	out.WriteString("\n")
	wtb := core.NewTestbed(cfg)
	core.RenderWehe(&out, "starlink", wtb.RunWeheAudit(core.TechStarlink, min(10, 2**scale)))

	// Wired-baseline loss check (§3.2).
	base := core.NewTestbed(cfg)
	bc := base.RunH3CampaignFrom(base.PCWired, 4, 100<<20, true, 5*time.Second, base.QUICConf)
	var sent, lost uint64
	for _, r := range bc.Records {
		sent += r.Loss.PacketsSent
		lost += r.Loss.PacketsLost
	}
	fmt.Fprintf(&out, "\nWired-baseline H3 downloads: %d packets sent, %d lost (paper: 10 of 5.8M)\n", sent, lost)

	fmt.Print(out.String())
}
