// Command starlink-bench runs the full measurement campaign against the
// emulated testbed and prints every table and figure the paper reports.
//
// Scale is controlled by -scale: 1 is a quick pass (~1 minute of wall
// time), larger values lengthen campaigns towards the paper's sample
// sizes (RTT-sample counts in the millions need -scale 8 and some
// patience). The independent campaigns fan out over -workers goroutines,
// each on its own deterministically seeded testbed, so the output is
// identical for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/fleet"
	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/web"
	"starlinkperf/internal/wehe"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// sizes fixes every campaign dimension of one bench run.
type sizes struct {
	latDays      time.Duration
	latInterval  time.Duration
	h3Down       int
	h3Up         int
	h3Size       int
	msgSessions  int
	msgDur       time.Duration
	stStarlink   int
	stSatCom     int
	webVisits    int
	weheRepeats  int
	baseline     int
	fleetTerms   int
	fleetSpan    time.Duration
	trafficTerms int
	trafficSpan  time.Duration
}

func sizesFor(scale int, quick bool) sizes {
	if quick {
		return sizes{
			latDays: 6 * time.Hour, latInterval: 30 * time.Minute,
			h3Down: 1, h3Up: 1, h3Size: 10 << 20,
			msgSessions: 1, msgDur: time.Minute,
			stStarlink: 2, stSatCom: 2,
			webVisits: 4, weheRepeats: 1, baseline: 1,
			fleetTerms: 10000, fleetSpan: 2 * time.Hour,
			trafficTerms: 4000, trafficSpan: 30 * time.Second,
		}
	}
	latInterval := 30 * time.Minute
	if scale >= 4 {
		latInterval = 5 * time.Minute
	}
	return sizes{
		latDays: time.Duration(min(150, 10*scale)) * 24 * time.Hour, latInterval: latInterval,
		h3Down: 6 * scale, h3Up: 4 * scale, h3Size: 100 << 20,
		msgSessions: 4 * scale, msgDur: 2 * time.Minute,
		stStarlink: 16 * scale, stSatCom: 8 * scale,
		webVisits: 40 * scale, weheRepeats: min(10, 2*scale), baseline: 4,
		fleetTerms: 20000, fleetSpan: time.Duration(min(24, 6*scale)) * time.Hour,
		trafficTerms: 10000, trafficSpan: time.Duration(min(8, 2*scale)) * time.Minute,
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("starlink-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "campaign scale factor")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	scenarioWorkers := fs.Int("scenario.workers", 0, "PDES workers inside the fleet traffic scenario (0 = GOMAXPROCS); never changes results")
	fidelity := fs.String("fidelity", "auto", "fleet traffic emulation fidelity: auto (tiers + fast-forward), tiers, or full; never changes results, only wall clock")
	transport := fs.String("transport", "paper", "transport profile for the campaigns: paper | modern | toggle list (bbr,pacing,zerortt,migration,minrtt,idledecay)")
	quick := fs.Bool("quick", false, "tiny smoke-sized campaigns for CI (ignores -scale)")
	fleetTerminals := fs.Int("fleet.terminals", 0, "override the fleet scenario's terminal count (0 = profile default); the partitioned epoch campaign is bit-identical for any worker count at any size")
	benchJSON := fs.String("bench.json", "", "write headline metrics as JSON to this file")
	tracePath := fs.String("trace", "", "write the event trace here (.jsonl extension selects JSON Lines, anything else the OTR1 binary format)")
	metricsJSON := fs.String("metrics.json", "", "write the per-shard + merged metrics registry as JSON to this file")
	validate := fs.String("validate", "", "validate an existing bench.json against the schema and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaigns to this file")
	memProfile := fs.String("memprofile", "", "write a post-run heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate != "" {
		if err := validateBenchJSON(*validate); err != nil {
			return fmt.Errorf("validate %s: %w", *validate, err)
		}
		fmt.Fprintf(stdout, "%s: valid %s report\n", *validate, benchSchema)
		return nil
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be >= 1")
	}
	var fidelityMode fleet.FidelityMode
	switch *fidelity {
	case "auto":
		fidelityMode = fleet.FidelityAuto
	case "tiers":
		fidelityMode = fleet.FidelityTiers
	case "full":
		fidelityMode = fleet.FidelityFull
	default:
		return fmt.Errorf("fidelity must be auto, tiers or full, got %q", *fidelity)
	}
	sz := sizesFor(*scale, *quick)
	if *fleetTerminals > 0 {
		sz.fleetTerms = *fleetTerminals
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	profile, err := core.ParseTransport(*transport)
	if err != nil {
		return err
	}
	cfg.Transport = profile
	// Table 1 + Figures 1-2 use one long latency campaign with the
	// paper's scenario events.
	latCfg := cfg
	latCfg.InitialShellFraction = 0.86
	latCfg.FleetGrowthAt = 53 * 24 * time.Hour
	latCfg.Load = core.LoadEpisode{Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour, ExtraOneWay: 4 * time.Millisecond}

	// Every campaign below is independent: each runs on its own testbed
	// seeded per job, so the sweep fans them out across the worker pool
	// and the merge order (and thus the report) is worker-count
	// invariant.
	var (
		lat                 *core.LatencyData
		latAnchors          []core.Anchor
		latSites            int
		h3d, h3u            *core.H3Campaign
		md, mu              *core.MsgCampaign
		sl, sc              []measure.SpeedtestResult
		webSL, webSC, webWD []web.VisitResult
		mbSL, mbSC          core.MiddleboxAudit
		weheDs              []wehe.Detection
		baseSent, baseLost  uint64
	)
	jobs := []core.SweepJob{
		{Name: "latency", Cfg: latCfg, Run: func(tb *core.Testbed) any {
			lat = tb.RunLatencyCampaign(sz.latDays, sz.latInterval)
			latAnchors = tb.Anchors
			latSites = len(tb.Sites)
			return nil
		}},
		{Name: "h3-down", Cfg: cfg, Run: func(tb *core.Testbed) any {
			h3d = tb.RunH3Campaign(sz.h3Down, sz.h3Size, true, 20*time.Second)
			return nil
		}},
		{Name: "h3-up", Cfg: cfg, Run: func(tb *core.Testbed) any {
			h3u = tb.RunH3Campaign(sz.h3Up, sz.h3Size, false, 20*time.Second)
			return nil
		}},
		{Name: "messages-down", Cfg: cfg, Run: func(tb *core.Testbed) any {
			md = tb.RunMessagesCampaign(sz.msgSessions, sz.msgDur, true)
			return nil
		}},
		{Name: "messages-up", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mu = tb.RunMessagesCampaign(sz.msgSessions, sz.msgDur, false)
			return nil
		}},
		{Name: "speedtest-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			sl = tb.RunSpeedtestCampaign(core.TechStarlink, sz.stStarlink, 30*time.Minute)
			return nil
		}},
		{Name: "speedtest-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			sc = tb.RunSpeedtestCampaign(core.TechSatCom, sz.stSatCom, 30*time.Minute)
			return nil
		}},
		{Name: "web-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webSL = tb.RunWebCampaign(core.TechStarlink, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "web-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webSC = tb.RunWebCampaign(core.TechSatCom, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "web-wired", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webWD = tb.RunWebCampaign(core.TechWired, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "middlebox-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mbSL = tb.RunMiddleboxAudit(core.TechStarlink)
			return nil
		}},
		{Name: "middlebox-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mbSC = tb.RunMiddleboxAudit(core.TechSatCom)
			return nil
		}},
		{Name: "wehe", Cfg: cfg, Run: func(tb *core.Testbed) any {
			weheDs = tb.RunWeheAudit(core.TechStarlink, sz.weheRepeats)
			return nil
		}},
		{Name: "wired-baseline", Cfg: cfg, Run: func(tb *core.Testbed) any {
			bc := tb.RunH3CampaignFrom(tb.PCWired, sz.baseline, sz.h3Size, true, 5*time.Second, tb.QUICConf)
			for _, r := range bc.Records {
				baseSent += r.Loss.PacketsSent
				baseLost += r.Loss.PacketsLost
			}
			return nil
		}},
	}
	// Observability is collected only when something will consume it —
	// an export flag or the bench report — so plain runs keep the
	// disabled single-branch fast path.
	var collector *obs.Collector
	if *tracePath != "" || *metricsJSON != "" || *benchJSON != "" {
		collector = obs.NewCollector()
	}
	opts := core.Options{
		Workers:         *workers,
		ScenarioWorkers: *scenarioWorkers,
		Seed:            *seed,
		Fidelity:        fidelityMode,
		Obs:             collector,
		Progress: func(done, total int) {
			fmt.Fprintf(stderr, "campaigns: %d/%d done\n", done, total)
		},
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	// The PDES engine microbench runs first, before the campaign sweep
	// and fleet scenarios fill the heap: its validator gates reason about
	// engine-intrinsic run-phase cost, and GC pacing scales with the
	// surrounding live heap, not with the engine — timing it in a quiet
	// process state keeps that bias out of the overhead measurement.
	var pdesRep pdesReport
	var fidelityRep fidelityReport
	var transportRep transportReport
	var scaleRep fleetScaleReport
	if *benchJSON != "" {
		fmt.Fprintf(stderr, "pdes microbench: reference + 1/2/4/8-worker sweep...\n")
		pdesRep = pdesMicrobench(*quick, *seed)
		fmt.Fprintf(stderr, "fidelity microbench: full vs tiers vs tiers+fast-forward...\n")
		fidelityRep = fidelityMicrobench(*quick, *seed)
		fmt.Fprintf(stderr, "transport microbench: paper vs modern profiles...\n")
		transportRep = transportMicrobench(*quick, *seed)
		fmt.Fprintf(stderr, "fleet scale sweep: 10k/100k/1M-terminal epochs...\n")
		scaleRep = fleetScaleSweep(*seed)
	}
	fmt.Fprintf(stderr, "running %d campaigns on %d workers...\n", len(jobs), nw)
	started := time.Now()
	core.RunSweep(jobs, opts)

	// The fleet scenario runs after the sweep on the same options: seed
	// and worker count flow through, and its per-region metrics/trace
	// join the collector as the "fleet/0000" source.
	fmt.Fprintf(stderr, "fleet: %d terminals over %v...\n", sz.fleetTerms, sz.fleetSpan)
	fleetRes := core.RunFleetScenario(fleet.Config{Terminals: sz.fleetTerms, Horizon: sz.fleetSpan}, opts)

	// The packet-level traffic scenario exercises the conservative-PDES
	// engine: the same fleet, but every terminal actually probing its
	// gateway through the emulated network, partitioned spatially and
	// driven by -scenario.workers goroutines. Output is bit-identical for
	// any worker count (ci.sh byte-diffs it).
	fmt.Fprintf(stderr, "traffic: %d terminals over %v (PDES)...\n", sz.trafficTerms, sz.trafficSpan)
	trafficRes := core.RunFleetTraffic(fleet.TrafficConfig{
		Fleet: fleet.Config{Terminals: sz.trafficTerms, Horizon: sz.trafficSpan, Epoch: 15 * time.Second},
	}, opts)
	wall := time.Since(started)

	fig1 := core.Figure1(lat, latAnchors)
	t2 := core.MakeTable2(h3d, h3u, md, mu)
	fig5 := core.MakeFigure5(sl, sc, h3d, h3u)

	var out strings.Builder
	core.RenderTable1(&out, sz.latDays, sz.latDays, sz.latDays, sz.latDays, len(latAnchors), latSites)
	out.WriteString("\n")
	core.RenderFigure1(&out, fig1)
	out.WriteString("\n")
	bins := core.Figure2(lat)
	step := max(1, len(bins)/24)
	var shown []core.Figure2Bin
	for i := 0; i < len(bins); i += step {
		shown = append(shown, bins[i])
	}
	core.RenderFigure2(&out, shown)
	out.WriteString("\n")

	core.RenderFigure3(&out, core.MakeFigure3(h3d, h3u))
	out.WriteString("\n")
	core.RenderTable2(&out, t2)
	out.WriteString("\n")
	core.RenderFigure4(&out, core.MakeFigure4("H3 transfers", h3d.BurstLengths(), h3u.BurstLengths()))
	core.RenderFigure4(&out, core.MakeFigure4("messaging transfers", md.BurstLengths(), mu.BurstLengths()))
	core.LossDurations(&out, "H3 downloads", h3d.EventDurations())
	core.LossDurations(&out, "message downloads", md.EventDurations())
	out.WriteString("\n")

	core.RenderFigure5(&out, fig5)
	out.WriteString("\n")

	visits := map[string][]web.VisitResult{"starlink": webSL, "satcom": webSC, "wired": webWD}
	core.RenderFigure6(&out, core.MakeFigure6(visits))
	out.WriteString("\n")

	core.RenderMiddleboxAudit(&out, "starlink", mbSL)
	core.RenderMiddleboxAudit(&out, "satcom", mbSC)
	out.WriteString("\n")
	core.RenderWehe(&out, "starlink", weheDs)
	out.WriteString("\n")
	renderFleet(&out, fleetRes)
	out.WriteString("\n")
	renderTraffic(&out, trafficRes)

	fmt.Fprintf(&out, "\nWired-baseline H3 downloads: %d packets sent, %d lost (paper: 10 of 5.8M)\n", baseSent, baseLost)

	if _, err := io.WriteString(stdout, out.String()); err != nil {
		return err
	}

	if *tracePath != "" {
		blob := collector.ExportTraceJSONL()
		if !strings.HasSuffix(*tracePath, ".jsonl") {
			blob = collector.ExportTraceBinary()
		}
		if err := os.WriteFile(*tracePath, blob, 0o644); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", *tracePath, len(blob))
	}
	if *metricsJSON != "" {
		if err := os.WriteFile(*metricsJSON, collector.ExportMetricsJSON(), 0o644); err != nil {
			return fmt.Errorf("metrics.json: %w", err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", *metricsJSON)
	}

	if *benchJSON != "" {
		rep := makeBenchReport(*scale, *quick, nw, *seed, wall, fig1, t2, fig5)
		rep.Fleet = makeFleetReport(fleetRes, *quick)
		rep.Fleet.Scale = scaleRep
		rep.Pdes = pdesRep
		rep.Fidelity = fidelityRep
		rep.Transport = transportRep
		renderPdes(stdout, rep.Pdes)
		renderFidelity(stdout, rep.Fidelity)
		renderTransport(stdout, rep.Transport)
		renderFleetScale(stdout, rep.Fleet.Scale)
		rep.Obs = collector.Snapshot()
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("bench.json: %w", err)
		}
		if err := os.WriteFile(*benchJSON, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench.json: %w", err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", *benchJSON)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC() // materialize final live-set statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// benchReport is the machine-readable datapoint one bench run appends to
// the repo's perf trajectory (BENCH_<date>.json). Metrics is a flat
// name → value map so new headline numbers can be added without a schema
// bump; json.Marshal emits map keys sorted, keeping diffs stable.
type benchReport struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	Scale     int    `json:"scale"`
	Quick     bool   `json:"quick"`
	Workers   int    `json:"workers"`
	// Cores is the machine's logical CPU count and GoMaxProcs the
	// scheduler's parallelism at run time; SpeedupGatesArmed records
	// whether the cores-conditional speedup gates (pdes speedup_8w, the
	// fleet scale sweep's parallel_speedup floor) were armed or skipped
	// on the machine that produced this report — so a trajectory file
	// from a small box is never mistaken for a passed parallelism gate.
	Cores             int                `json:"cores"`
	GoMaxProcs        int                `json:"gomaxprocs"`
	SpeedupGatesArmed bool               `json:"speedup_gates_armed"`
	Seed              uint64             `json:"seed"`
	WallSeconds       float64            `json:"wall_seconds"`
	Metrics           map[string]float64 `json:"metrics"`
	// Obs is the merged observability registry flattened to name → value
	// (counters as counts, gauges as maxima, histograms as .count/.sum).
	// It is deterministic for a given (config, seed), so trajectory diffs
	// across PRs stay meaningful.
	Obs        map[string]float64 `json:"obs,omitempty"`
	Geometry   geometryReport     `json:"geometry"`
	Scheduler  schedulerReport    `json:"scheduler"`
	PacketPath packetPathReport   `json:"packet_path"`
	Fleet      fleetReport        `json:"fleet"`
	Pdes       pdesReport         `json:"pdes"`
	Fidelity   fidelityReport     `json:"fidelity"`
	Transport  transportReport    `json:"transport"`
}

const benchSchema = "starlink-bench/v1"

// speedupGatesArmed reports whether this machine has the parallelism to
// back the cores-conditional speedup floors. It keys on GOMAXPROCS, not
// NumCPU: the gates time goroutine scaling, and a 16-core box pinned to
// GOMAXPROCS=1 can express none of it.
func speedupGatesArmed() bool {
	return runtime.GOMAXPROCS(0) >= 8
}

// geometryReport times the serving-satellite hot loop both ways: the
// ECEF/pruned/snapshot fast path versus the naive full scan kept in-tree
// as the reference. Tracking both keeps the speedup honest across PRs.
type geometryReport struct {
	FastEpochs        int     `json:"fast_epochs"`
	NaiveEpochs       int     `json:"naive_epochs"`
	FastNsPerEpoch    float64 `json:"fast_ns_per_epoch"`
	NaiveNsPerEpoch   float64 `json:"naive_ns_per_epoch"`
	AssignmentSpeedup float64 `json:"assignment_speedup"`
	DelayNsPerCall    float64 `json:"delay_ns_per_call"`
	ISLPathNsPerCall  float64 `json:"isl_path_ns_per_call"`
	ISLPathInstants   int     `json:"isl_path_instants"`
	// ISLPathMemoNsPerCall times PathDelay at a repeated instant, where
	// the per-snapshot route memo answers without re-running Dijkstra —
	// the pattern the PDES traffic scenario hits when every terminal in a
	// partition routes within the same position epoch.
	ISLPathMemoNsPerCall float64 `json:"isl_path_memo_ns_per_call"`
}

func makeBenchReport(scale int, quick bool, workers int, seed uint64, wall time.Duration, fig1 []core.Figure1Row, t2 core.Table2, fig5 core.Figure5) benchReport {
	m := map[string]float64{
		"loss_h3_down_pct":  100 * t2.H3Down,
		"loss_h3_up_pct":    100 * t2.H3Up,
		"loss_msg_down_pct": 100 * t2.MsgDown,
		"loss_msg_up_pct":   100 * t2.MsgUp,

		"speedtest_starlink_down_p50_mbps": fig5.StarlinkDown.P50,
		"speedtest_starlink_up_p50_mbps":   fig5.StarlinkUp.P50,
		"speedtest_satcom_down_p50_mbps":   fig5.SatComDown.P50,
		"speedtest_satcom_up_p50_mbps":     fig5.SatComUp.P50,
		"h3_starlink_down_p50_mbps":        fig5.H3Down.P50,
		"h3_starlink_up_p50_mbps":          fig5.H3Up.P50,
	}
	samples := 0
	for _, row := range fig1 {
		key := "latency_" + metricKey(row.Anchor)
		m[key+"_p50_ms"] = row.Summary.P50
		m[key+"_mean_ms"] = row.Summary.Mean
		samples += row.Summary.N
	}
	m["latency_samples"] = float64(samples)

	return benchReport{
		Schema:            benchSchema,
		Date:              time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		Scale:             scale,
		Quick:             quick,
		Workers:           workers,
		Cores:             runtime.NumCPU(),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		SpeedupGatesArmed: speedupGatesArmed(),
		Seed:              seed,
		WallSeconds:       wall.Seconds(),
		Metrics:           m,
		Geometry:          geometryMicrobench(quick),
		Scheduler:         schedulerMicrobench(quick),
		PacketPath:        packetPathMicrobench(quick),
	}
}

// metricKey lowercases an anchor name into a JSON-metric-friendly slug.
func metricKey(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, name)
}

// geometryMicrobench measures assignment, delay and ISL-path costs on a
// fresh Gen1 shell from the paper's mid-latitude vantage. Every iteration
// uses a distinct epoch/quantum, so memos and the snapshot ring cannot
// short-circuit the measured work (matching BenchmarkAssignmentEpoch et
// al. in internal/leo).
func geometryMicrobench(quick bool) geometryReport {
	pos := geo.LatLon{LatDeg: 50.67, LonDeg: 4.61}
	gws := []leo.Gateway{
		{Name: "ams-gw", Pos: geo.LatLon{LatDeg: 52.31, LonDeg: 4.76}, PoP: "AMS"},
		{Name: "fra-gw", Pos: geo.LatLon{LatDeg: 50.03, LonDeg: 8.57}, PoP: "FRA"},
	}
	con := leo.NewConstellation(leo.NewShell(leo.StarlinkGen1()))
	term := leo.NewTerminal(leo.DefaultTerminalConfig(pos), con, gws)
	epoch := int64(15 * time.Second)

	fastN, naiveN, delayN, islN := 5000, 300, 100000, 50
	if quick {
		fastN, naiveN, delayN, islN = 1000, 60, 20000, 10
	}

	start := time.Now()
	for i := 0; i < fastN; i++ {
		term.AssignmentAt(sim.Time(int64(i) * epoch))
	}
	fastNs := float64(time.Since(start).Nanoseconds()) / float64(fastN)

	start = time.Now()
	for i := 0; i < naiveN; i++ {
		term.ReferenceAssignmentAt(sim.Time(int64(i) * epoch))
	}
	naiveNs := float64(time.Since(start).Nanoseconds()) / float64(naiveN)

	start = time.Now()
	for i := 0; i < delayN; i++ {
		term.DelayAt(sim.Time(int64(i) * int64(10*time.Millisecond)))
	}
	delayNs := float64(time.Since(start).Nanoseconds()) / float64(delayN)

	router := leo.NewISLRouter(con, 0)
	singapore := geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}
	start = time.Now()
	for i := 0; i < islN; i++ {
		router.PathDelay(sim.Time(int64(i)*int64(time.Minute)), pos, singapore, 25)
	}
	islNs := float64(time.Since(start).Nanoseconds()) / float64(islN)

	// Memo path: hammer one already-cached (instant, endpoints, mask)
	// tuple. The first call primes the ring; the loop then measures pure
	// hits.
	memoN := islN * 1000
	memoAt := sim.Time(int64(islN-1) * int64(time.Minute))
	router.PathDelay(memoAt, pos, singapore, 25)
	start = time.Now()
	for i := 0; i < memoN; i++ {
		router.PathDelay(memoAt, pos, singapore, 25)
	}
	memoNs := float64(time.Since(start).Nanoseconds()) / float64(memoN)

	return geometryReport{
		FastEpochs:           fastN,
		NaiveEpochs:          naiveN,
		FastNsPerEpoch:       fastNs,
		NaiveNsPerEpoch:      naiveNs,
		AssignmentSpeedup:    naiveNs / fastNs,
		DelayNsPerCall:       delayNs,
		ISLPathNsPerCall:     islNs,
		ISLPathInstants:      islN,
		ISLPathMemoNsPerCall: memoNs,
	}
}

// schedulerReport times the event loop both ways: the typed 4-ary heap
// with pooled timers versus the seed container/heap queue kept in-tree as
// the reference. The workload is the retransmit churn pattern (stop the
// old timer, re-arm it, schedule the next event) that dominates scheduler
// traffic in the transfer campaigns.
type schedulerReport struct {
	Events            uint64  `json:"events"`
	NsPerEvent        float64 `json:"ns_per_event"`
	AllocsPerEvent    float64 `json:"allocs_per_event"`
	EventsPerSec      float64 `json:"events_per_sec"`
	RefNsPerEvent     float64 `json:"ref_ns_per_event"`
	RefAllocsPerEvent float64 `json:"ref_allocs_per_event"`
	AllocReduction    float64 `json:"alloc_reduction"`
	EventSpeedup      float64 `json:"event_speedup"`
}

// benchChurn mirrors churnConn in internal/sim's benchmarks: a TCP
// sender's timer life cycle driven through package-level EventFuncs.
type benchChurn struct {
	s      *sim.Scheduler
	retx   sim.TimerHandle
	left   int
	period sim.Duration
}

func benchChurnNop(arg any) {}

func benchChurnFire(arg any) {
	c := arg.(*benchChurn)
	c.retx.Stop()
	c.retx = c.s.AfterFunc(10*c.period, benchChurnNop, c)
	if c.left > 0 {
		c.left--
		c.s.AfterFunc(c.period, benchChurnFire, c)
	}
}

// measureChurn runs n churn rounds on s after a warmup and returns
// ns/event and allocs/event, the latter from the runtime's cumulative
// malloc counter so pooled (non-allocating) timers genuinely read zero.
func measureChurn(s *sim.Scheduler, n int) (nsPerEvent, allocsPerEvent float64, events uint64) {
	c := &benchChurn{s: s, period: sim.Duration(time.Millisecond)}
	c.left = 1024 // warm the freelist so the measurement sees steady state
	s.AfterFunc(c.period, benchChurnFire, c)
	s.Run()
	before := s.Processed
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	c.left = n
	s.AfterFunc(c.period, benchChurnFire, c)
	s.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	events = s.Processed - before
	nsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
	allocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	return nsPerEvent, allocsPerEvent, events
}

func schedulerMicrobench(quick bool) schedulerReport {
	n := 200000
	if quick {
		n = 40000
	}
	ns, allocs, events := measureChurn(sim.NewScheduler(1), n)
	refNs, refAllocs, _ := measureChurn(sim.NewReferenceScheduler(1), n)
	// The fast path measures 0 allocs/event; floor the denominator at one
	// allocation across the whole run so the reduction stays finite.
	floor := allocs
	if floor < 1/float64(events) {
		floor = 1 / float64(events)
	}
	return schedulerReport{
		Events:            events,
		NsPerEvent:        ns,
		AllocsPerEvent:    allocs,
		EventsPerSec:      1e9 / ns,
		RefNsPerEvent:     refNs,
		RefAllocsPerEvent: refAllocs,
		AllocReduction:    refAllocs / floor,
		EventSpeedup:      refNs / ns,
	}
}

// packetPathReport times one packet's end-to-end traversal of a 3-node
// chain (send, flat-FIB route, transit forward, deliver, release) both
// ways: the pooled datapath versus the seed allocate-per-packet path kept
// in-tree as the reference. Tracking both keeps the zero-allocation claim
// honest across PRs.
type packetPathReport struct {
	Packets            uint64  `json:"packets"`
	NsPerPacket        float64 `json:"ns_per_packet"`
	AllocsPerPacket    float64 `json:"allocs_per_packet"`
	PacketsPerSec      float64 `json:"packets_per_sec"`
	RefNsPerPacket     float64 `json:"ref_ns_per_packet"`
	RefAllocsPerPacket float64 `json:"ref_allocs_per_packet"`
	AllocReduction     float64 `json:"alloc_reduction"`
	PacketSpeedup      float64 `json:"packet_speedup"`
	PoolHitRate        float64 `json:"pool_hit_rate"`
}

// measurePacketPath runs n UDP packets through a 3-node chain after a
// warmup that fills the packet/event freelists, returning ns/packet,
// allocs/packet (cumulative-malloc delta, so the pooled path genuinely
// reads zero), and the packet-pool hit rate.
func measurePacketPath(reference bool, n int) (nsPerPacket, allocsPerPacket, hitRate float64) {
	s := sim.NewScheduler(1)
	nw := netem.New(s)
	nw.SetReference(reference)
	a := nw.NewNode("a", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", netem.MustParseAddr("10.0.0.2"))
	c := nw.NewNode("c", netem.MustParseAddr("10.0.0.3"))
	ab, ba := nw.Connect(a, b, netem.LinkConfig{Delay: netem.ConstantDelay(time.Millisecond)})
	bc, _ := nw.Connect(b, c, netem.LinkConfig{Delay: netem.ConstantDelay(time.Millisecond)})
	a.SetDefaultRoute(ab)
	b.AddRoute(c.Addr(), bc)
	b.AddRoute(a.Addr(), ba)
	c.Bind(netem.ProtoUDP, 9, func(*netem.Packet) {})
	send := func() {
		pkt := nw.NewPacket()
		pkt.Dst = c.Addr()
		pkt.DstPort = 9
		pkt.Proto = netem.ProtoUDP
		pkt.Size = 100
		a.Send(pkt)
		s.Run()
	}
	for i := 0; i < 1024; i++ {
		send()
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < n; i++ {
		send()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	nsPerPacket = float64(elapsed.Nanoseconds()) / float64(n)
	allocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	return nsPerPacket, allocsPerPacket, nw.PoolStats().HitRate()
}

func packetPathMicrobench(quick bool) packetPathReport {
	n := 200000
	if quick {
		n = 40000
	}
	ns, allocs, hit := measurePacketPath(false, n)
	refNs, refAllocs, _ := measurePacketPath(true, n)
	// As in the scheduler section: the fast path measures 0 allocs/packet,
	// so floor the denominator at one allocation across the whole run.
	floor := allocs
	if floor < 1/float64(n) {
		floor = 1 / float64(n)
	}
	return packetPathReport{
		Packets:            uint64(n),
		NsPerPacket:        ns,
		AllocsPerPacket:    allocs,
		PacketsPerSec:      1e9 / ns,
		RefNsPerPacket:     refNs,
		RefAllocsPerPacket: refAllocs,
		AllocReduction:     refAllocs / floor,
		PacketSpeedup:      refNs / ns,
		PoolHitRate:        hit,
	}
}

// validateBenchJSON checks that a bench.json written by this (or an
// earlier) binary conforms to the starlink-bench/v1 schema, so ci.sh can
// fail fast when a section goes missing or a timing degenerates to zero.
func validateBenchJSON(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return err
	}
	if rep.Schema != benchSchema {
		return fmt.Errorf("schema = %q, want %q", rep.Schema, benchSchema)
	}
	if _, err := time.Parse(time.RFC3339, rep.Date); err != nil {
		return fmt.Errorf("date: %w", err)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("go_version missing")
	}
	if rep.WallSeconds <= 0 {
		return fmt.Errorf("wall_seconds = %v, want > 0", rep.WallSeconds)
	}
	if rep.Cores <= 0 || rep.GoMaxProcs <= 0 {
		return fmt.Errorf("cores = %d, gomaxprocs = %d, want both > 0", rep.Cores, rep.GoMaxProcs)
	}
	if rep.SpeedupGatesArmed != (rep.GoMaxProcs >= 8) {
		return fmt.Errorf("speedup_gates_armed = %v with gomaxprocs = %d; the flag must record whether the parallelism gates could run",
			rep.SpeedupGatesArmed, rep.GoMaxProcs)
	}
	for _, key := range []string{
		"latency_samples", "loss_h3_down_pct", "loss_msg_down_pct",
		"speedtest_starlink_down_p50_mbps", "h3_starlink_down_p50_mbps",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			return fmt.Errorf("metrics[%q] missing", key)
		}
	}
	// The obs section is optional (plain runs may skip collection), but
	// when present it must carry the campaign's footprint: a run that
	// sent no packets through an instrumented link produced nothing.
	if rep.Obs != nil {
		for _, key := range []string{"net.link.sent", "net.link.delivered", "probe.echo_sent"} {
			if rep.Obs[key] <= 0 {
				return fmt.Errorf("obs[%q] = %v, want > 0", key, rep.Obs[key])
			}
		}
	}
	g := rep.Geometry
	if g.FastNsPerEpoch <= 0 || g.NaiveNsPerEpoch <= 0 || g.DelayNsPerCall <= 0 || g.ISLPathNsPerCall <= 0 {
		return fmt.Errorf("geometry section incomplete: %+v", g)
	}
	if g.ISLPathMemoNsPerCall <= 0 || g.ISLPathMemoNsPerCall >= g.ISLPathNsPerCall {
		return fmt.Errorf("geometry isl_path_memo_ns_per_call = %v, want in (0, %v): memo should beat the full search",
			g.ISLPathMemoNsPerCall, g.ISLPathNsPerCall)
	}
	s := rep.Scheduler
	if s.Events == 0 || s.NsPerEvent <= 0 || s.EventsPerSec <= 0 || s.RefNsPerEvent <= 0 || s.RefAllocsPerEvent <= 0 {
		return fmt.Errorf("scheduler section incomplete: %+v", s)
	}
	if s.AllocsPerEvent < 0 || s.AllocsPerEvent >= s.RefAllocsPerEvent {
		return fmt.Errorf("scheduler allocs_per_event = %v, reference = %v; pooled path should allocate less",
			s.AllocsPerEvent, s.RefAllocsPerEvent)
	}
	if s.AllocReduction < 5 {
		return fmt.Errorf("scheduler alloc_reduction = %.2f, want >= 5", s.AllocReduction)
	}
	p := rep.PacketPath
	if p.Packets == 0 || p.NsPerPacket <= 0 || p.PacketsPerSec <= 0 || p.RefNsPerPacket <= 0 || p.RefAllocsPerPacket <= 0 {
		return fmt.Errorf("packet_path section incomplete: %+v", p)
	}
	if p.AllocsPerPacket < 0 || p.AllocsPerPacket >= p.RefAllocsPerPacket {
		return fmt.Errorf("packet_path allocs_per_packet = %v, reference = %v; pooled path should allocate less",
			p.AllocsPerPacket, p.RefAllocsPerPacket)
	}
	if p.PoolHitRate <= 0 || p.PoolHitRate > 1 {
		return fmt.Errorf("packet_path pool_hit_rate = %v, want in (0, 1]", p.PoolHitRate)
	}
	if err := validateFleetReport(rep.Fleet); err != nil {
		return err
	}
	if err := validatePdesReport(rep.Pdes); err != nil {
		return err
	}
	if err := validateFidelityReport(rep.Fidelity); err != nil {
		return err
	}
	return validateTransportReport(rep.Transport)
}
