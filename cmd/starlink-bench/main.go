// Command starlink-bench runs the full measurement campaign against the
// emulated testbed and prints every table and figure the paper reports.
//
// Scale is controlled by -scale: 1 is a quick pass (~1 minute of wall
// time), larger values lengthen campaigns towards the paper's sample
// sizes (RTT-sample counts in the millions need -scale 8 and some
// patience). The independent campaigns fan out over -workers goroutines,
// each on its own deterministically seeded testbed, so the output is
// identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/web"
	"starlinkperf/internal/wehe"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// sizes fixes every campaign dimension of one bench run.
type sizes struct {
	latDays     time.Duration
	latInterval time.Duration
	h3Down      int
	h3Up        int
	h3Size      int
	msgSessions int
	msgDur      time.Duration
	stStarlink  int
	stSatCom    int
	webVisits   int
	weheRepeats int
	baseline    int
}

func sizesFor(scale int, quick bool) sizes {
	if quick {
		return sizes{
			latDays: 6 * time.Hour, latInterval: 30 * time.Minute,
			h3Down: 1, h3Up: 1, h3Size: 10 << 20,
			msgSessions: 1, msgDur: time.Minute,
			stStarlink: 2, stSatCom: 2,
			webVisits: 4, weheRepeats: 1, baseline: 1,
		}
	}
	latInterval := 30 * time.Minute
	if scale >= 4 {
		latInterval = 5 * time.Minute
	}
	return sizes{
		latDays: time.Duration(min(150, 10*scale)) * 24 * time.Hour, latInterval: latInterval,
		h3Down: 6 * scale, h3Up: 4 * scale, h3Size: 100 << 20,
		msgSessions: 4 * scale, msgDur: 2 * time.Minute,
		stStarlink: 16 * scale, stSatCom: 8 * scale,
		webVisits: 40 * scale, weheRepeats: min(10, 2*scale), baseline: 4,
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("starlink-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "campaign scale factor")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	quick := fs.Bool("quick", false, "tiny smoke-sized campaigns for CI (ignores -scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be >= 1")
	}
	sz := sizesFor(*scale, *quick)

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	// Table 1 + Figures 1-2 use one long latency campaign with the
	// paper's scenario events.
	latCfg := cfg
	latCfg.InitialShellFraction = 0.86
	latCfg.FleetGrowthAt = 53 * 24 * time.Hour
	latCfg.Load = core.LoadEpisode{Start: 125 * 24 * time.Hour, End: 139 * 24 * time.Hour, ExtraOneWay: 4 * time.Millisecond}

	// Every campaign below is independent: each runs on its own testbed
	// seeded per job, so the sweep fans them out across the worker pool
	// and the merge order (and thus the report) is worker-count
	// invariant.
	var (
		lat                 *core.LatencyData
		latAnchors          []core.Anchor
		latSites            int
		h3d, h3u            *core.H3Campaign
		md, mu              *core.MsgCampaign
		sl, sc              []measure.SpeedtestResult
		webSL, webSC, webWD []web.VisitResult
		mbSL, mbSC          core.MiddleboxAudit
		weheDs              []wehe.Detection
		baseSent, baseLost  uint64
	)
	jobs := []core.SweepJob{
		{Name: "latency", Cfg: latCfg, Run: func(tb *core.Testbed) any {
			lat = tb.RunLatencyCampaign(sz.latDays, sz.latInterval)
			latAnchors = tb.Anchors
			latSites = len(tb.Sites)
			return nil
		}},
		{Name: "h3-down", Cfg: cfg, Run: func(tb *core.Testbed) any {
			h3d = tb.RunH3Campaign(sz.h3Down, sz.h3Size, true, 20*time.Second)
			return nil
		}},
		{Name: "h3-up", Cfg: cfg, Run: func(tb *core.Testbed) any {
			h3u = tb.RunH3Campaign(sz.h3Up, sz.h3Size, false, 20*time.Second)
			return nil
		}},
		{Name: "messages-down", Cfg: cfg, Run: func(tb *core.Testbed) any {
			md = tb.RunMessagesCampaign(sz.msgSessions, sz.msgDur, true)
			return nil
		}},
		{Name: "messages-up", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mu = tb.RunMessagesCampaign(sz.msgSessions, sz.msgDur, false)
			return nil
		}},
		{Name: "speedtest-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			sl = tb.RunSpeedtestCampaign(core.TechStarlink, sz.stStarlink, 30*time.Minute)
			return nil
		}},
		{Name: "speedtest-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			sc = tb.RunSpeedtestCampaign(core.TechSatCom, sz.stSatCom, 30*time.Minute)
			return nil
		}},
		{Name: "web-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webSL = tb.RunWebCampaign(core.TechStarlink, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "web-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webSC = tb.RunWebCampaign(core.TechSatCom, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "web-wired", Cfg: cfg, Run: func(tb *core.Testbed) any {
			webWD = tb.RunWebCampaign(core.TechWired, sz.webVisits, 2*time.Second)
			return nil
		}},
		{Name: "middlebox-starlink", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mbSL = tb.RunMiddleboxAudit(core.TechStarlink)
			return nil
		}},
		{Name: "middlebox-satcom", Cfg: cfg, Run: func(tb *core.Testbed) any {
			mbSC = tb.RunMiddleboxAudit(core.TechSatCom)
			return nil
		}},
		{Name: "wehe", Cfg: cfg, Run: func(tb *core.Testbed) any {
			weheDs = tb.RunWeheAudit(core.TechStarlink, sz.weheRepeats)
			return nil
		}},
		{Name: "wired-baseline", Cfg: cfg, Run: func(tb *core.Testbed) any {
			bc := tb.RunH3CampaignFrom(tb.PCWired, sz.baseline, sz.h3Size, true, 5*time.Second, tb.QUICConf)
			for _, r := range bc.Records {
				baseSent += r.Loss.PacketsSent
				baseLost += r.Loss.PacketsLost
			}
			return nil
		}},
	}
	opts := core.Options{
		Workers: *workers,
		Seed:    *seed,
		Progress: func(done, total int) {
			fmt.Fprintf(stderr, "campaigns: %d/%d done\n", done, total)
		},
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stderr, "running %d campaigns on %d workers...\n", len(jobs), nw)
	core.RunSweep(jobs, opts)

	var out strings.Builder
	core.RenderTable1(&out, sz.latDays, sz.latDays, sz.latDays, sz.latDays, len(latAnchors), latSites)
	out.WriteString("\n")
	core.RenderFigure1(&out, core.Figure1(lat, latAnchors))
	out.WriteString("\n")
	bins := core.Figure2(lat)
	step := max(1, len(bins)/24)
	var shown []core.Figure2Bin
	for i := 0; i < len(bins); i += step {
		shown = append(shown, bins[i])
	}
	core.RenderFigure2(&out, shown)
	out.WriteString("\n")

	core.RenderFigure3(&out, core.MakeFigure3(h3d, h3u))
	out.WriteString("\n")
	core.RenderTable2(&out, core.MakeTable2(h3d, h3u, md, mu))
	out.WriteString("\n")
	core.RenderFigure4(&out, core.MakeFigure4("H3 transfers", h3d.BurstLengths(), h3u.BurstLengths()))
	core.RenderFigure4(&out, core.MakeFigure4("messaging transfers", md.BurstLengths(), mu.BurstLengths()))
	core.LossDurations(&out, "H3 downloads", h3d.EventDurations())
	core.LossDurations(&out, "message downloads", md.EventDurations())
	out.WriteString("\n")

	core.RenderFigure5(&out, core.MakeFigure5(sl, sc, h3d, h3u))
	out.WriteString("\n")

	visits := map[string][]web.VisitResult{"starlink": webSL, "satcom": webSC, "wired": webWD}
	core.RenderFigure6(&out, core.MakeFigure6(visits))
	out.WriteString("\n")

	core.RenderMiddleboxAudit(&out, "starlink", mbSL)
	core.RenderMiddleboxAudit(&out, "satcom", mbSC)
	out.WriteString("\n")
	core.RenderWehe(&out, "starlink", weheDs)

	fmt.Fprintf(&out, "\nWired-baseline H3 downloads: %d packets sent, %d lost (paper: 10 of 5.8M)\n", baseSent, baseLost)

	_, err := io.WriteString(stdout, out.String())
	return err
}
