package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench run still takes ~10s")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	args := []string{"-quick", "-workers", "2",
		"-bench.json", jsonPath, "-cpuprofile", cpuPath, "-memprofile", memPath}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench.json not written: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bench.json not parseable: %v", err)
	}
	if rep.Schema != "starlink-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if !rep.Quick || rep.Workers != 2 || rep.Seed != 1 {
		t.Errorf("run parameters not recorded: %+v", rep)
	}
	if rep.WallSeconds <= 0 {
		t.Error("wall_seconds not recorded")
	}
	for _, key := range []string{
		"latency_samples", "loss_h3_down_pct", "speedtest_starlink_down_p50_mbps",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	g := rep.Geometry
	if g.FastNsPerEpoch <= 0 || g.NaiveNsPerEpoch <= 0 || g.DelayNsPerCall <= 0 || g.ISLPathNsPerCall <= 0 {
		t.Errorf("geometry microbench timings missing: %+v", g)
	}
	if g.AssignmentSpeedup < 5 {
		t.Errorf("assignment speedup %.1fx below the 5x floor", g.AssignmentSpeedup)
	}

	for name, p := range map[string]string{"cpuprofile": cpuPath, "memprofile": memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3", "Table 2",
		"Figure 5", "Figure 6", "Wired-baseline H3 downloads",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(errOut.String(), "campaigns:") {
		t.Error("progress lines missing from stderr")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "0"}, &out, &errOut); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
	// The profile file opens before any campaign runs, so this fails fast.
	if err := run([]string{"-cpuprofile", "/no/such/dir/cpu.pprof"}, &out, &errOut); err == nil {
		t.Error("unwritable cpuprofile accepted")
	}
}
