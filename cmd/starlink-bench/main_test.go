package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench run still takes ~10s")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	args := []string{"-quick", "-workers", "2",
		"-bench.json", jsonPath, "-cpuprofile", cpuPath, "-memprofile", memPath}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench.json not written: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bench.json not parseable: %v", err)
	}
	if rep.Schema != "starlink-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if !rep.Quick || rep.Workers != 2 || rep.Seed != 1 {
		t.Errorf("run parameters not recorded: %+v", rep)
	}
	if rep.WallSeconds <= 0 {
		t.Error("wall_seconds not recorded")
	}
	for _, key := range []string{
		"latency_samples", "loss_h3_down_pct", "speedtest_starlink_down_p50_mbps",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	g := rep.Geometry
	if g.FastNsPerEpoch <= 0 || g.NaiveNsPerEpoch <= 0 || g.DelayNsPerCall <= 0 || g.ISLPathNsPerCall <= 0 {
		t.Errorf("geometry microbench timings missing: %+v", g)
	}
	if g.AssignmentSpeedup < 5 {
		t.Errorf("assignment speedup %.1fx below the 5x floor", g.AssignmentSpeedup)
	}
	s := rep.Scheduler
	if s.Events == 0 || s.NsPerEvent <= 0 || s.EventsPerSec <= 0 || s.RefNsPerEvent <= 0 {
		t.Errorf("scheduler microbench timings missing: %+v", s)
	}
	if s.AllocReduction < 5 {
		t.Errorf("scheduler alloc reduction %.1fx below the 5x floor", s.AllocReduction)
	}
	fl := rep.Fleet
	if fl.Terminals != 10000 || fl.Epochs != 480 || len(fl.Regions) == 0 {
		t.Errorf("fleet campaign shape wrong: %+v", fl)
	}
	if fl.ReassignSpeedup < 3 {
		t.Errorf("fleet reassign speedup %.1fx below the 3x floor", fl.ReassignSpeedup)
	}
	if fl.AllocsPerEpoch >= 1 {
		t.Errorf("fleet reassignment allocates %.2f per epoch", fl.AllocsPerEpoch)
	}

	// The report the binary just wrote must pass its own validator.
	var vOut, vErr strings.Builder
	if err := run([]string{"-validate", jsonPath}, &vOut, &vErr); err != nil {
		t.Errorf("-validate rejected a fresh report: %v", err)
	}
	if !strings.Contains(vOut.String(), "valid starlink-bench/v1 report") {
		t.Errorf("-validate output = %q", vOut.String())
	}

	for name, p := range map[string]string{"cpuprofile": cpuPath, "memprofile": memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3", "Table 2",
		"Figure 5", "Figure 6", "Wired-baseline H3 downloads",
		"starlink-fleet scenario", "high-north",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(errOut.String(), "campaigns:") {
		t.Error("progress lines missing from stderr")
	}
}

// TestValidateBenchJSON exercises the validator on synthetic reports so
// the schema checks are covered without a second campaign run.
func TestValidateBenchJSON(t *testing.T) {
	valid := benchReport{
		Schema:            benchSchema,
		Date:              "2026-08-05T00:00:00Z",
		GoVersion:         "go1.22",
		Scale:             1,
		Quick:             true,
		Workers:           2,
		Cores:             8,
		GoMaxProcs:        8,
		SpeedupGatesArmed: true,
		Seed:              1,
		WallSeconds:       9.5,
		Metrics: map[string]float64{
			"latency_samples": 1, "loss_h3_down_pct": 0.1, "loss_msg_down_pct": 0.1,
			"speedtest_starlink_down_p50_mbps": 100, "h3_starlink_down_p50_mbps": 50,
		},
		Geometry: geometryReport{
			FastNsPerEpoch: 1000, NaiveNsPerEpoch: 50000,
			DelayNsPerCall: 100, ISLPathNsPerCall: 1e6, ISLPathMemoNsPerCall: 50,
		},
		Scheduler: schedulerReport{
			Events: 1 << 20, NsPerEvent: 70, AllocsPerEvent: 0, EventsPerSec: 1.4e7,
			RefNsPerEvent: 250, RefAllocsPerEvent: 2, AllocReduction: 1e6, EventSpeedup: 3.5,
		},
		PacketPath: packetPathReport{
			Packets: 200000, NsPerPacket: 160, AllocsPerPacket: 0, PacketsPerSec: 6e6,
			RefNsPerPacket: 280, RefAllocsPerPacket: 2, AllocReduction: 4e5,
			PacketSpeedup: 1.7, PoolHitRate: 0.9999,
		},
		Fleet: fleetReport{
			Terminals: 10000, Epochs: 480, Cells: 4000, Satellites: 1584,
			OutagePct: 4.2, CellNsPerEpoch: 6e6, RefNsPerEpoch: 9e7,
			ReassignSpeedup: 15, AllocsPerEpoch: 0,
			Regions: []fleetRegionReport{
				{Region: "europe", Terminals: 2500, OutagePct: 1.1, LatencyP50Ms: 35,
					LatencyP95Ms: 60, Handovers: 12000, PeakMbpsP50: 40, OffPeakMbpsP50: 70, PeakDipPct: 42},
			},
			Scale: fleetScaleReport{
				Points: []fleetScalePoint{
					{Terminals: 10000, Workers: 8, NsPerEpoch: 4e5, SeqNsPerEpoch: 2e6, ParallelSpeedup: 5, AllocsPerEpoch: 0},
					{Terminals: 100000, Workers: 8, NsPerEpoch: 4e6, SeqNsPerEpoch: 2e7, ParallelSpeedup: 5, AllocsPerEpoch: 0},
					{Terminals: 1000000, Workers: 8, NsPerEpoch: 4e7, SeqNsPerEpoch: 2e8, ParallelSpeedup: 5, AllocsPerEpoch: 0},
				},
				ResultsMatch:     true,
				SpeedupGateArmed: true,
			},
		},
		Pdes: pdesReport{
			Terminals: 2000, Partitions: 16, ProbesSent: 20000, ProbesRecv: 19000,
			Windows: 2700, Events: 500000, Cores: 8,
			RefWallSeconds: 1.0,
			WorkerSweep: []pdesWorkerPoint{
				{Workers: 1, WallSeconds: 1.05, Speedup: 0.95},
				{Workers: 2, WallSeconds: 0.6, Speedup: 1.67},
				{Workers: 4, WallSeconds: 0.35, Speedup: 2.86},
				{Workers: 8, WallSeconds: 0.3, Speedup: 3.33},
			},
			Speedup8W: 3.33, OneWorkerOverheadPct: 5, ResultsMatch: true,
		},
		Fidelity: fidelityReport{
			Terminals: 2000, Partitions: 16, ProbeIntervalMs: 250,
			LinksFull: 0, LinksDelayOnly: 4000, LinksFast: 304,
			WallFullSeconds: 0.18, WallTiersSeconds: 0.13, WallAutoSeconds: 0.045,
			EventsFull: 1000000, EventsTiers: 550000, EventsAuto: 180000,
			EventsSkipped: 370000, FastForwarded: 54000, AbsorbedSharePct: 93.5,
			SpeedupTiers: 1.38, SpeedupTotal: 4.0, ResultsMatch: true,
		},
		Transport: transportReport{
			PaperName: "paper", ModernName: "modern",
			MsgUpP50PaperMs: 62, MsgUpP95PaperMs: 110,
			MsgUpP50ModernMs: 58, MsgUpP95ModernMs: 95,
			H3DownPaperMbps: 110, H3DownModernMbps: 120,
			MsgUpLossPaperPct: 0.4, MsgUpLossModernPct: 0.3,
			PaperIdentical: true, ModernDiffers: true,
		},
	}
	write := func(t *testing.T, rep benchReport) string {
		t.Helper()
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "bench.json")
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := validateBenchJSON(write(t, valid)); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}

	broken := map[string]func(*benchReport){
		"wrong schema":         func(r *benchReport) { r.Schema = "starlink-bench/v0" },
		"bad date":             func(r *benchReport) { r.Date = "yesterday" },
		"missing metric":       func(r *benchReport) { delete(r.Metrics, "latency_samples") },
		"no geometry":          func(r *benchReport) { r.Geometry = geometryReport{} },
		"no scheduler":         func(r *benchReport) { r.Scheduler = schedulerReport{} },
		"alloc regression":     func(r *benchReport) { r.Scheduler.AllocsPerEvent = 3 },
		"reduction below 5x":   func(r *benchReport) { r.Scheduler.AllocReduction = 4.5 },
		"zero wall":            func(r *benchReport) { r.WallSeconds = 0 },
		"scheduler ns missing": func(r *benchReport) { r.Scheduler.NsPerEvent = 0 },
		"no packet_path":       func(r *benchReport) { r.PacketPath = packetPathReport{} },
		"packet alloc regression": func(r *benchReport) {
			r.PacketPath.AllocsPerPacket = r.PacketPath.RefAllocsPerPacket
		},
		"pool hit rate zero":    func(r *benchReport) { r.PacketPath.PoolHitRate = 0 },
		"pool hit rate above 1": func(r *benchReport) { r.PacketPath.PoolHitRate = 1.5 },
		"no fleet":              func(r *benchReport) { r.Fleet = fleetReport{} },
		"fleet speedup below 3": func(r *benchReport) { r.Fleet.ReassignSpeedup = 2.5 },
		"fleet alloc regression": func(r *benchReport) {
			r.Fleet.AllocsPerEpoch = 1
		},
		"fleet no regions":      func(r *benchReport) { r.Fleet.Regions = nil },
		"fleet bad outage":      func(r *benchReport) { r.Fleet.OutagePct = 101 },
		"fleet timings missing": func(r *benchReport) { r.Fleet.CellNsPerEpoch = 0 },
		"memo timing missing":   func(r *benchReport) { r.Geometry.ISLPathMemoNsPerCall = 0 },
		"memo slower than full search": func(r *benchReport) {
			r.Geometry.ISLPathMemoNsPerCall = r.Geometry.ISLPathNsPerCall
		},
		"no pdes":                func(r *benchReport) { r.Pdes = pdesReport{} },
		"pdes results mismatch":  func(r *benchReport) { r.Pdes.ResultsMatch = false },
		"pdes 1w overhead >=10%": func(r *benchReport) { r.Pdes.OneWorkerOverheadPct = 12 },
		"pdes sweep truncated":   func(r *benchReport) { r.Pdes.WorkerSweep = r.Pdes.WorkerSweep[:2] },
		"pdes speedup below floor on 8 cores": func(r *benchReport) {
			r.Pdes.Cores = 8
			r.Pdes.Speedup8W = 2.0
		},
		"no fidelity":               func(r *benchReport) { r.Fidelity = fidelityReport{} },
		"fidelity results mismatch": func(r *benchReport) { r.Fidelity.ResultsMatch = false },
		"fidelity speedup below 3x": func(r *benchReport) { r.Fidelity.SpeedupTotal = 2.5 },
		"fidelity nothing downgraded": func(r *benchReport) {
			r.Fidelity.LinksDelayOnly, r.Fidelity.LinksFast = 0, 0
		},
		"fidelity events not decreasing": func(r *benchReport) {
			r.Fidelity.EventsAuto = r.Fidelity.EventsTiers
		},
		"fidelity ff absorbed nothing": func(r *benchReport) {
			r.Fidelity.FastForwarded, r.Fidelity.EventsSkipped = 0, 0
		},
		"fidelity absorbed share at PR8 baseline": func(r *benchReport) {
			r.Fidelity.AbsorbedSharePct = 69.8
		},
		"fidelity absorbed share above 100": func(r *benchReport) {
			r.Fidelity.AbsorbedSharePct = 101
		},
		"cores missing":      func(r *benchReport) { r.Cores = 0 },
		"gomaxprocs missing": func(r *benchReport) { r.GoMaxProcs = 0 },
		"speedup gate flag inconsistent": func(r *benchReport) {
			r.GoMaxProcs, r.SpeedupGatesArmed = 2, true
		},
		"fleet scale missing 1M point": func(r *benchReport) {
			r.Fleet.Scale.Points = r.Fleet.Scale.Points[:2]
		},
		"fleet scale wrong size": func(r *benchReport) {
			pts := make([]fleetScalePoint, len(r.Fleet.Scale.Points))
			copy(pts, r.Fleet.Scale.Points)
			pts[2].Terminals = 500000
			r.Fleet.Scale.Points = pts
		},
		"fleet scale alloc regression": func(r *benchReport) {
			pts := make([]fleetScalePoint, len(r.Fleet.Scale.Points))
			copy(pts, r.Fleet.Scale.Points)
			pts[1].AllocsPerEpoch = 2
			r.Fleet.Scale.Points = pts
		},
		"fleet scale results mismatch": func(r *benchReport) {
			r.Fleet.Scale.ResultsMatch = false
		},
		"fleet scale speedup below floor when armed": func(r *benchReport) {
			pts := make([]fleetScalePoint, len(r.Fleet.Scale.Points))
			copy(pts, r.Fleet.Scale.Points)
			pts[2].ParallelSpeedup = 1.1
			r.Fleet.Scale.Points = pts
		},
		"no transport":             func(r *benchReport) { r.Transport = transportReport{} },
		"transport paper diverged": func(r *benchReport) { r.Transport.PaperIdentical = false },
		"transport modern no-op":   func(r *benchReport) { r.Transport.ModernDiffers = false },
		"transport incomplete":     func(r *benchReport) { r.Transport.H3DownModernMbps = 0 },
	}
	for name, mutate := range broken {
		rep := valid
		rep.Metrics = make(map[string]float64, len(valid.Metrics))
		for k, v := range valid.Metrics {
			rep.Metrics[k] = v
		}
		mutate(&rep)
		if err := validateBenchJSON(write(t, rep)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := validateBenchJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(p, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateBenchJSON(p); err == nil {
		t.Error("unparseable file accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "0"}, &out, &errOut); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
	// The profile file opens before any campaign runs, so this fails fast.
	if err := run([]string{"-cpuprofile", "/no/such/dir/cpu.pprof"}, &out, &errOut); err == nil {
		t.Error("unwritable cpuprofile accepted")
	}
}
