package main

import (
	"strings"
	"testing"
)

func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench run still takes ~10s")
	}
	var out, errOut strings.Builder
	if err := run([]string{"-quick", "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3", "Table 2",
		"Figure 5", "Figure 6", "Wired-baseline H3 downloads",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(errOut.String(), "campaigns:") {
		t.Error("progress lines missing from stderr")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "0"}, &out, &errOut); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}
