package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"starlinkperf/internal/fleet"
)

// pdesWorkerPoint is one row of the worker sweep: the same partitioned
// scenario driven by a different number of goroutines. Results are
// bit-identical across rows; only wall-clock moves.
type pdesWorkerPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup"`
}

// pdesReport is the bench.json section for the conservative-PDES engine:
// the packet-level fleet scenario run once on the single-scheduler
// reference path and then on the partitioned driver at 1/2/4/8 workers,
// with every run's (scrubbed) result compared against the reference.
// speedup_8w only means anything on a machine with the cores to back it,
// so cores is recorded and the validator gates on it.
type pdesReport struct {
	Terminals  int    `json:"terminals"`
	Partitions int    `json:"partitions"`
	ProbesSent int64  `json:"probes_sent"`
	ProbesRecv int64  `json:"probes_recv"`
	Windows    uint64 `json:"windows"`
	Events     uint64 `json:"events"`
	Cores      int    `json:"cores"`

	RefWallSeconds       float64           `json:"ref_wall_seconds"`
	WorkerSweep          []pdesWorkerPoint `json:"worker_sweep"`
	Speedup8W            float64           `json:"speedup_8w"`
	OneWorkerOverheadPct float64           `json:"one_worker_overhead_pct"`
	// ResultsMatch is true iff every partitioned run's result equaled the
	// reference run's after scrubbing the engine-dependent fields
	// (Windows, Events, Partitions). A false here is a correctness bug,
	// not a perf regression.
	ResultsMatch bool `json:"results_match"`
}

// pdesScrub zeroes the fields documented as engine-dependent so results
// from the reference path and any partition count compare equal.
func pdesScrub(r *fleet.TrafficResult) *fleet.TrafficResult {
	c := *r
	c.Windows, c.Events, c.Partitions = 0, 0, 0
	return &c
}

// pdesMicrobench runs the packet-level fleet scenario end to end on the
// reference path and on the PDES engine at 1/2/4/8 workers, timing each
// and checking result equivalence. Fleet.Workers is pinned to 1 so the
// only parallelism being measured is the PDES window execution itself.
func pdesMicrobench(quick bool, seed uint64) pdesReport {
	terms, horizon, epoch := 10000, 30*time.Second, 15*time.Second
	if quick {
		terms, horizon, epoch = 2000, 10*time.Second, 5*time.Second
	}
	mk := func(workers int, reference bool) fleet.TrafficConfig {
		return fleet.TrafficConfig{
			Fleet:                 fleet.Config{Seed: seed, Terminals: terms, Horizon: horizon, Epoch: epoch, Workers: 1},
			Partitions:            16,
			ScenarioWorkers:       workers,
			ReferencePartitioning: reference,
			// Pinned to the full-emulation reference datapath: this
			// microbench gates the PDES engine's per-event overhead and
			// scaling, and the fast-forward would absorb the very events
			// being measured (the fidelity microbench covers that axis).
			Fidelity: fleet.FidelityFull,
		}
	}
	// Timed region: the engine's Run phase only. Building the scenario
	// (networks, routers, FIBs) allocates heavily and its GC cost depends
	// on how much live heap the surrounding process carries — timing it
	// would measure the allocator, not the engine. The run phase rides
	// the pooled zero-allocation datapath, so it is the stable,
	// engine-shaped quantity the overhead/speedup gates reason about.
	// Even so, one-shot walls on a busy machine are noisy: every
	// configuration is timed five times in interleaved rounds (so a
	// slow phase lands on all of them rather than biasing one) and keeps
	// its best wall. Results are checked on every single run.
	configs := []fleet.TrafficConfig{mk(1, true), mk(1, false), mk(2, false), mk(4, false), mk(8, false)}
	walls := make([]float64, len(configs))
	results := make([]*fleet.TrafficResult, len(configs))
	// The 1-worker overhead gate compares the reference and the 1-worker
	// runs of the SAME round (they execute back to back), and keeps the
	// best ratio across rounds: a machine hiccup landing on one run then
	// reads as that round's outlier ratio instead of masquerading as
	// engine cost, while a real regression inflates every round's pair.
	overhead := 0.0
	for round := 0; round < 5; round++ {
		var roundWalls [2]float64
		for i, cfg := range configs {
			tr := fleet.NewTraffic(cfg)
			runtime.GC() // settle build debt outside the timed region
			start := time.Now()
			r := tr.Run()
			wall := time.Since(start).Seconds()
			if results[i] == nil || wall < walls[i] {
				walls[i], results[i] = wall, r
			}
			if i < 2 {
				roundWalls[i] = wall
			}
		}
		pct := 100 * (roundWalls[1] - roundWalls[0]) / roundWalls[0]
		if round == 0 || pct < overhead {
			overhead = pct
		}
	}
	refWall, refRes := walls[0], results[0]

	rep := pdesReport{
		Terminals:      refRes.Terminals,
		Cores:          runtime.GOMAXPROCS(0),
		RefWallSeconds: refWall,
		ResultsMatch:   true,
	}
	want := pdesScrub(refRes)
	for i, w := range []int{1, 2, 4, 8} {
		wall, res := walls[i+1], results[i+1]
		rep.WorkerSweep = append(rep.WorkerSweep, pdesWorkerPoint{
			Workers:     w,
			WallSeconds: wall,
			Speedup:     refWall / wall,
		})
		if !reflect.DeepEqual(pdesScrub(res), want) {
			rep.ResultsMatch = false
		}
		switch w {
		case 1:
			rep.Partitions = res.Partitions
			rep.ProbesSent = res.ProbesSent
			rep.ProbesRecv = res.ProbesRecv
			rep.Windows = res.Windows
			rep.Events = res.Events
			rep.OneWorkerOverheadPct = overhead
		case 8:
			rep.Speedup8W = refWall / wall
		}
	}
	return rep
}

// renderTraffic prints the per-region probe table of the packet-level
// fleet scenario — measured RTT distributions from actual ICMP exchanges
// through the emulated bent-pipe network, as opposed to the analytic
// latency model of the epoch campaign.
func renderTraffic(w io.Writer, res *fleet.TrafficResult) {
	fmt.Fprintf(w, "=== starlink-fleet traffic scenario (conservative PDES) ===\n")
	fmt.Fprintf(w, "%d terminals, %d partitions, %d probes sent, %d received, %d skipped (outage)\n\n",
		res.Terminals, res.Partitions, res.ProbesSent, res.ProbesRecv, res.ProbesSkipped)
	fmt.Fprintf(w, "%-14s %9s %9s %9s %7s %8s %8s\n",
		"region", "sent", "recv", "skipped", "loss%", "rtt p50", "rtt p95")
	for _, rr := range res.Regions {
		fmt.Fprintf(w, "%-14s %9d %9d %9d %7.2f %8.1f %8.1f\n",
			rr.Region, rr.Sent, rr.Recv, rr.Skipped, rr.LossPct, rr.RTTP50Ms, rr.RTTP95Ms)
	}
}

// renderPdes prints the engine timing sweep for the human-readable
// report.
func renderPdes(w io.Writer, rep pdesReport) {
	fmt.Fprintf(w, "\n=== conservative PDES engine ===\n")
	fmt.Fprintf(w, "%d terminals / %d partitions / %d probes / %d windows on %d core(s)\n",
		rep.Terminals, rep.Partitions, rep.ProbesSent, rep.Windows, rep.Cores)
	fmt.Fprintf(w, "reference (single scheduler): %.3fs\n", rep.RefWallSeconds)
	for _, pt := range rep.WorkerSweep {
		fmt.Fprintf(w, "pdes %d worker(s): %.3fs (%.2fx vs reference)\n",
			pt.Workers, pt.WallSeconds, pt.Speedup)
	}
	fmt.Fprintf(w, "results match reference: %v\n", rep.ResultsMatch)
}

// validatePdesReport checks the pdes section of a bench.json. The
// equivalence bit must always hold; the speedup floor applies only on
// machines with enough cores to express it, and the single-worker engine
// must stay within 10%% of the plain scheduler so the partitioned path
// is never a tax when parallelism is unavailable.
func validatePdesReport(p pdesReport) error {
	if p.Terminals <= 0 || p.Partitions <= 0 || p.ProbesSent <= 0 || p.ProbesRecv <= 0 {
		return fmt.Errorf("pdes section incomplete: %+v", p)
	}
	if p.Windows == 0 || p.Events == 0 || p.Cores <= 0 {
		return fmt.Errorf("pdes engine counters missing: %+v", p)
	}
	if p.RefWallSeconds <= 0 {
		return fmt.Errorf("pdes ref_wall_seconds = %v, want > 0", p.RefWallSeconds)
	}
	want := []int{1, 2, 4, 8}
	if len(p.WorkerSweep) != len(want) {
		return fmt.Errorf("pdes worker_sweep has %d points, want %d", len(p.WorkerSweep), len(want))
	}
	for i, pt := range p.WorkerSweep {
		if pt.Workers != want[i] || pt.WallSeconds <= 0 {
			return fmt.Errorf("pdes worker_sweep[%d] = %+v, want workers=%d with positive wall", i, pt, want[i])
		}
	}
	if !p.ResultsMatch {
		return fmt.Errorf("pdes results_match = false: partitioned runs diverged from the reference path")
	}
	if p.OneWorkerOverheadPct >= 10 {
		return fmt.Errorf("pdes one_worker_overhead_pct = %.1f, want < 10", p.OneWorkerOverheadPct)
	}
	// The speedup target needs real cores behind the workers; on smaller
	// machines the sweep still runs (and must stay correct), but the
	// wall-clock floor is unenforceable.
	if p.Cores >= 8 && p.Speedup8W < 2.5 {
		return fmt.Errorf("pdes speedup_8w = %.2f on %d cores, want >= 2.5", p.Speedup8W, p.Cores)
	}
	return nil
}
