package main

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
)

// transportReport is the bench.json section for the transport profiles:
// the same message and H3 campaigns run once under the paper profile and
// once under the modern stack (BBR + pacing + 0-RTT + migration), so the
// trajectory records what the post-paper transport buys on the emulated
// Starlink path. Two boolean gates ride along: the paper profile must be
// bit-identical to the default configuration (the profile plumbing is a
// no-op when every toggle is off), and the modern profile must actually
// change the output (the plumbing reaches the endpoints).
type transportReport struct {
	PaperName  string `json:"paper_name"`
	ModernName string `json:"modern_name"`
	// Message-session upload RTTs (the paper's 25 msg/s workload), most
	// sensitive to pacing and congestion-controller choice.
	MsgUpP50PaperMs  float64 `json:"msg_up_p50_paper_ms"`
	MsgUpP95PaperMs  float64 `json:"msg_up_p95_paper_ms"`
	MsgUpP50ModernMs float64 `json:"msg_up_p50_modern_ms"`
	MsgUpP95ModernMs float64 `json:"msg_up_p95_modern_ms"`
	// Bulk H3 download goodput under each stack.
	H3DownPaperMbps  float64 `json:"h3_down_paper_mbps"`
	H3DownModernMbps float64 `json:"h3_down_modern_mbps"`
	// Loss ratios for the message sessions (percent).
	MsgUpLossPaperPct  float64 `json:"msg_up_loss_paper_pct"`
	MsgUpLossModernPct float64 `json:"msg_up_loss_modern_pct"`
	// PaperIdentical is true iff the paper profile's message campaign was
	// bit-identical to the default (zero-value) configuration's.
	PaperIdentical bool `json:"paper_identical"`
	// ModernDiffers is true iff the modern profile produced a different
	// RTT series than paper — a false means the profile never reached the
	// transport endpoints.
	ModernDiffers bool `json:"modern_differs"`
}

// transportMicrobench runs the paper-vs-modern comparison on single-worker
// campaigns (worker invariance is pinned separately by the core tests and
// ci.sh's -race gate; here one worker keeps the section cheap).
func transportMicrobench(quick bool, seed uint64) transportReport {
	sessions, dur := 2, time.Minute
	h3n, h3size := 2, 20<<20
	if quick {
		sessions, dur = 1, 30*time.Second
		h3n, h3size = 1, 5<<20
	}
	opts := core.Options{Workers: 1, Seed: seed}

	base := core.DefaultConfig()
	base.Seed = seed
	paperCfg := base
	paperCfg.Transport = core.PaperTransport()
	modernCfg := base
	modernCfg.Transport = core.ModernTransport()

	defMsg := core.RunMessagesCampaignParallel(base, sessions, dur, false, opts)
	paperMsg := core.RunMessagesCampaignParallel(paperCfg, sessions, dur, false, opts)
	modernMsg := core.RunMessagesCampaignParallel(modernCfg, sessions, dur, false, opts)
	paperH3 := core.RunH3CampaignParallel(paperCfg, h3n, h3size, true, 15*time.Second, opts)
	modernH3 := core.RunH3CampaignParallel(modernCfg, h3n, h3size, true, 15*time.Second, opts)

	pr := stats.Summarize(paperMsg.RTTsMs)
	mr := stats.Summarize(modernMsg.RTTsMs)
	return transportReport{
		PaperName:          paperCfg.Transport.Name,
		ModernName:         modernCfg.Transport.Name,
		MsgUpP50PaperMs:    pr.P50,
		MsgUpP95PaperMs:    pr.P95,
		MsgUpP50ModernMs:   mr.P50,
		MsgUpP95ModernMs:   mr.P95,
		H3DownPaperMbps:    stats.Summarize(paperH3.Goodputs()).P50,
		H3DownModernMbps:   stats.Summarize(modernH3.Goodputs()).P50,
		MsgUpLossPaperPct:  100 * paperMsg.LossRatio(),
		MsgUpLossModernPct: 100 * modernMsg.LossRatio(),
		PaperIdentical:     reflect.DeepEqual(defMsg.RTTsMs, paperMsg.RTTsMs),
		ModernDiffers:      !reflect.DeepEqual(paperMsg.RTTsMs, modernMsg.RTTsMs),
	}
}

// renderTransport prints the paper-vs-modern table for the human-readable
// report.
func renderTransport(w io.Writer, rep transportReport) {
	fmt.Fprintf(w, "\n=== transport profiles: %s vs %s ===\n", rep.PaperName, rep.ModernName)
	fmt.Fprintf(w, "%-26s %10s %10s\n", "metric", rep.PaperName, rep.ModernName)
	fmt.Fprintf(w, "%-26s %10.1f %10.1f\n", "msg up RTT p50 (ms)", rep.MsgUpP50PaperMs, rep.MsgUpP50ModernMs)
	fmt.Fprintf(w, "%-26s %10.1f %10.1f\n", "msg up RTT p95 (ms)", rep.MsgUpP95PaperMs, rep.MsgUpP95ModernMs)
	fmt.Fprintf(w, "%-26s %10.1f %10.1f\n", "H3 down goodput (Mbit/s)", rep.H3DownPaperMbps, rep.H3DownModernMbps)
	fmt.Fprintf(w, "%-26s %10.2f %10.2f\n", "msg up loss (%)", rep.MsgUpLossPaperPct, rep.MsgUpLossModernPct)
	fmt.Fprintf(w, "paper identical to default: %v; modern changes output: %v\n",
		rep.PaperIdentical, rep.ModernDiffers)
}

// validateTransportReport gates the profile plumbing's two invariants and
// the section's completeness.
func validateTransportReport(rep transportReport) error {
	if rep.PaperName == "" || rep.ModernName == "" {
		return fmt.Errorf("transport section missing")
	}
	if !rep.PaperIdentical {
		return fmt.Errorf("transport paper_identical = false: the paper profile diverged from the default configuration")
	}
	if !rep.ModernDiffers {
		return fmt.Errorf("transport modern_differs = false: the modern profile never reached the endpoints")
	}
	if rep.MsgUpP50PaperMs <= 0 || rep.MsgUpP50ModernMs <= 0 ||
		rep.H3DownPaperMbps <= 0 || rep.H3DownModernMbps <= 0 {
		return fmt.Errorf("transport section incomplete: %+v", rep)
	}
	return nil
}
