// Command tracebox runs the §3.5 middlebox audit — traceroute, header
// diffing against ICMP quotes, NAT-level counting, and split-proxy
// detection — from a chosen vantage point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"starlinkperf/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracebox", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techName := fs.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tech core.Tech
	switch *techName {
	case "starlink":
		tech = core.TechStarlink
	case "satcom":
		tech = core.TechSatCom
	case "wired":
		tech = core.TechWired
	default:
		return fmt.Errorf("unknown tech %q", *techName)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)
	audit := tb.RunMiddleboxAudit(tech)
	var out strings.Builder
	core.RenderMiddleboxAudit(&out, *techName, audit)
	_, err := io.WriteString(stdout, out.String())
	return err
}
