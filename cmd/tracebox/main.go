// Command tracebox runs the §3.5 middlebox audit — traceroute, header
// diffing against ICMP quotes, NAT-level counting, and split-proxy
// detection — from a chosen vantage point.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"starlinkperf/internal/core"
)

func main() {
	techName := flag.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var tech core.Tech
	switch *techName {
	case "starlink":
		tech = core.TechStarlink
	case "satcom":
		tech = core.TechSatCom
	case "wired":
		tech = core.TechWired
	default:
		fmt.Fprintf(os.Stderr, "unknown tech %q\n", *techName)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)
	audit := tb.RunMiddleboxAudit(tech)
	var out strings.Builder
	core.RenderMiddleboxAudit(&out, *techName, audit)
	fmt.Print(out.String())
}
