package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "starlink") {
		t.Errorf("audit output missing vantage name:\n%s", out.String())
	}
	var wired strings.Builder
	if err := run([]string{"-tech", "wired"}, &wired, &errOut); err != nil {
		t.Fatalf("run wired: %v", err)
	}
	if wired.String() == out.String() {
		t.Error("wired audit identical to starlink audit")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-tech", "dialup"}, &out, &errOut); err == nil {
		t.Error("unknown tech accepted")
	}
}
