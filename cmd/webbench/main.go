// Command webbench runs BrowserTime-like page visits over the website
// corpus from a chosen vantage point and reports onLoad and SpeedIndex
// distributions (Figure 6).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
)

func main() {
	techName := flag.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	visits := flag.Int("visits", 60, "number of page visits")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "print per-visit rows")
	flag.Parse()

	var tech core.Tech
	switch *techName {
	case "starlink":
		tech = core.TechStarlink
	case "satcom":
		tech = core.TechSatCom
	case "wired":
		tech = core.TechWired
	default:
		fmt.Fprintf(os.Stderr, "unknown tech %q\n", *techName)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	tb := core.NewTestbed(cfg)
	results := tb.RunWebCampaign(tech, *visits, 2*time.Second)

	var onload, si, setup []float64
	fails := 0
	for i, v := range results {
		if v.Failed {
			fails++
			continue
		}
		if *verbose {
			fmt.Printf("  visit %3d site-rank=%3d objects=%3d conns=%2d onLoad=%6.2fs SI=%6.2fs\n",
				i+1, v.Site.Rank, len(v.Site.Objects), v.Connections, v.OnLoad.Seconds(), v.SpeedIndex.Seconds())
		}
		onload = append(onload, v.OnLoad.Seconds())
		si = append(si, v.SpeedIndex.Seconds())
		for _, d := range v.ConnSetupTimes {
			setup = append(setup, d.Seconds()*1000)
		}
	}
	o, s, st := stats.Summarize(onload), stats.Summarize(si), stats.Summarize(setup)
	fmt.Printf("%s: %d visits (%d failed)\n", *techName, len(results), fails)
	fmt.Printf("  onLoad:     med=%.2fs IQR=[%.2f, %.2f]s\n", o.P50, o.P25, o.P75)
	fmt.Printf("  SpeedIndex: med=%.2fs IQR=[%.2f, %.2f]s\n", s.P50, s.P25, s.P75)
	fmt.Printf("  conn setup: mean=%.0fms med=%.0fms (n=%d)\n", st.Mean, st.P50, st.N)
}
