// Command webbench runs BrowserTime-like page visits over the website
// corpus from a chosen vantage point and reports onLoad and SpeedIndex
// distributions (Figure 6). Visits shard across -workers goroutines,
// each on its own deterministically seeded testbed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("webbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techName := fs.String("tech", "starlink", "vantage point: starlink | satcom | wired")
	visits := fs.Int("visits", 60, "number of page visits")
	seed := fs.Uint64("seed", 1, "simulation seed")
	verbose := fs.Bool("v", false, "print per-visit rows")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
	transport := fs.String("transport", "paper", "transport profile: paper | modern | toggle list (bbr,pacing,zerortt,migration,minrtt,idledecay)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tech core.Tech
	switch *techName {
	case "starlink":
		tech = core.TechStarlink
	case "satcom":
		tech = core.TechSatCom
	case "wired":
		tech = core.TechWired
	default:
		return fmt.Errorf("unknown tech %q", *techName)
	}
	if *visits < 1 {
		return fmt.Errorf("visits must be >= 1")
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	profile, err := core.ParseTransport(*transport)
	if err != nil {
		return err
	}
	cfg.Transport = profile
	opts := core.Options{Workers: *workers, Seed: *seed}
	results := core.RunWebCampaignParallel(cfg, tech, *visits, 2*time.Second, opts)

	var onload, si, setup []float64
	fails := 0
	for i, v := range results {
		if v.Failed {
			fails++
			continue
		}
		if *verbose {
			fmt.Fprintf(stdout, "  visit %3d site-rank=%3d objects=%3d conns=%2d onLoad=%6.2fs SI=%6.2fs\n",
				i+1, v.Site.Rank, len(v.Site.Objects), v.Connections, v.OnLoad.Seconds(), v.SpeedIndex.Seconds())
		}
		onload = append(onload, v.OnLoad.Seconds())
		si = append(si, v.SpeedIndex.Seconds())
		for _, d := range v.ConnSetupTimes {
			setup = append(setup, d.Seconds()*1000)
		}
	}
	o, s, st := stats.Summarize(onload), stats.Summarize(si), stats.Summarize(setup)
	fmt.Fprintf(stdout, "%s: %d visits (%d failed)\n", *techName, len(results), fails)
	fmt.Fprintf(stdout, "  onLoad:     med=%.2fs IQR=[%.2f, %.2f]s\n", o.P50, o.P25, o.P75)
	fmt.Fprintf(stdout, "  SpeedIndex: med=%.2fs IQR=[%.2f, %.2f]s\n", s.P50, s.P25, s.P75)
	_, err = fmt.Fprintf(stdout, "  conn setup: mean=%.0fms med=%.0fms (n=%d)\n", st.Mean, st.P50, st.N)
	return err
}
