package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-visits", "2", "-tech", "wired", "-v"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"visit   1", "wired: 2 visits", "onLoad:", "SpeedIndex:", "conn setup:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-tech", "dialup"}, &out, &errOut); err == nil {
		t.Error("unknown tech accepted")
	}
	if err := run([]string{"-visits", "0"}, &out, &errOut); err == nil {
		t.Error("visits 0 accepted")
	}
}
