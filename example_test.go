package starlinkperf_test

import (
	"fmt"
	"time"

	"starlinkperf"
)

// Example demonstrates the minimal measurement loop: build the emulated
// testbed and ping the anchor fleet for an hour of virtual time.
func Example() {
	cfg := starlinkperf.DefaultConfig()
	cfg.Seed = 42
	tb := starlinkperf.NewTestbed(cfg)

	lat := tb.RunLatencyCampaign(time.Hour, 10*time.Minute)
	rows := starlinkperf.Figure1(lat, tb.Anchors)
	fmt.Printf("%d anchors measured; first anchor: %s (%s)\n",
		len(rows), rows[0].Anchor, rows[0].Region)
	// Output:
	// 11 anchors measured; first anchor: be-probe-1 (BE)
}
