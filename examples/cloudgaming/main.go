// Cloud gaming feasibility: the paper argues Starlink's latency allows
// latency-sensitive services, citing GeForce Now's 80 ms requirement.
// This example measures the RTT budget to the nearest European ingest
// points while a household mix of background traffic runs, and reports
// how often the 80 ms budget holds.
package main

import (
	"fmt"
	"time"

	"starlinkperf"
	"starlinkperf/internal/stats"
)

const gamingBudgetMs = 80 // NVIDIA GeForce Now requirement

func main() {
	tb := starlinkperf.NewTestbed(starlinkperf.DefaultConfig())

	// Idle link first.
	idle := tb.RunLatencyCampaign(time.Hour, time.Minute)
	idleEU := stats.Summarize(idle.EuropeanSeries().Values())

	// Now with a messaging session running (a video call in the house)
	// — the gaming-relevant low-load regime.
	msg := tb.RunMessagesCampaign(2, 2*time.Minute, true)
	loaded := stats.Summarize(msg.RTTsMs)

	// And during a bulk download (someone updating a game).
	bulk := tb.RunH3Campaign(2, 100<<20, true, 5*time.Second)
	heavy := stats.Summarize(bulk.RTTSamplesMs())

	report := func(label string, s stats.Summary) {
		verdict := "OK for cloud gaming"
		if s.P95 > gamingBudgetMs {
			verdict = fmt.Sprintf("misses the %dms budget at p95", gamingBudgetMs)
		}
		fmt.Printf("%-28s p50=%5.1fms p95=%5.1fms -> %s\n", label, s.P50, s.P95, verdict)
	}
	fmt.Printf("RTT to European servers vs the %d ms GeForce Now budget:\n", gamingBudgetMs)
	report("idle link", idleEU)
	report("with a video call", loaded)
	report("during a bulk download", heavy)
}
