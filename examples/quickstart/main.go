// Quickstart: build the emulated testbed, ping an anchor, download a file
// over QUIC, and print what a Starlink subscriber would see. Everything
// runs on a virtual clock — the whole program finishes in well under a
// second of wall time.
package main

import (
	"fmt"
	"time"

	"starlinkperf"
	"starlinkperf/internal/stats"
)

func main() {
	tb := starlinkperf.NewTestbed(starlinkperf.DefaultConfig())

	// A short ping campaign against the paper's 11 anchors.
	lat := tb.RunLatencyCampaign(2*time.Hour, 5*time.Minute)
	fmt.Println("idle RTT after 2h of pings:")
	for _, row := range starlinkperf.Figure1(lat, tb.Anchors) {
		fmt.Printf("  %-16s median %5.1f ms (min %.1f)\n",
			row.Anchor, row.Summary.P50, row.Summary.Min)
	}

	// One 100 MB HTTP/3-style download from the campus server.
	camp := tb.RunH3Campaign(1, 100<<20, true, 0)
	rec := camp.Records[0]
	rtt := stats.Summarize(rec.Result.RTTs.Milliseconds())
	fmt.Printf("\n100MB QUIC download: %.0f Mbit/s goodput\n", rec.Result.GoodputMbps)
	fmt.Printf("  RTT under load: p50=%.0fms p95=%.0fms\n", rtt.P50, rtt.P95)
	fmt.Printf("  packets lost on the way down: %d of %d (%.2f%%)\n",
		rec.Loss.PacketsLost, rec.Loss.PacketsSent, 100*rec.Loss.LossRate())
}
