// Video streaming headroom: §3.3 notes that Starlink's throughput covers
// Netflix 4K (15 Mbit/s) and Disney+ (25 Mbit/s) recommendations. This
// example emulates a steady 4K-like stream while sampling the remaining
// download capacity with periodic speedtests, and checks rebuffer-free
// delivery.
package main

import (
	"fmt"
	"time"

	"starlinkperf"
	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
)

func main() {
	tb := starlinkperf.NewTestbed(starlinkperf.DefaultConfig())

	// The messaging workload at 25 msg/s of ~25kB is ~5 Mbit/s; run a
	// heavier stream profile by measuring sustained H3 goodput instead:
	// a 4K stream needs its segment rate to stay above realtime.
	const segmentMB = 8 // 4s segment at ~16 Mbit/s
	const segments = 20
	deadline := 4 * time.Second // realtime budget per segment

	camp := tb.RunH3Campaign(segments, segmentMB<<20, true, 500*time.Millisecond)
	late := 0
	var times []float64
	for _, rec := range camp.Records {
		d := rec.Result.End.Sub(rec.Result.Start)
		times = append(times, d.Seconds())
		if d > deadline {
			late++
		}
	}
	s := stats.Summarize(times)
	fmt.Printf("4K-like stream: %d segments of %dMB (budget %s each)\n", segments, segmentMB, deadline)
	fmt.Printf("  segment fetch: med=%.2fs p95=%.2fs\n", s.P50, s.P95)
	fmt.Printf("  late segments (rebuffer risk): %d/%d\n", late, segments)

	// Headroom: what a speedtest sees on the same link.
	st := tb.RunSpeedtestCampaign(core.TechStarlink, 3, time.Minute)
	var down []float64
	for _, r := range st {
		down = append(down, r.DownloadMbps)
	}
	fmt.Printf("  link capacity during the session: ~%.0f Mbit/s (Netflix 4K needs 15, Disney+ 25)\n",
		stats.Median(down))
}
