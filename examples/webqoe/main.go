// Web QoE comparison: the paper's headline user-facing result is that
// Starlink browsing is 75-80% faster than GEO SatCom and close to wired.
// This example visits the same sites from all three vantage points and
// prints the side-by-side QoE metrics.
package main

import (
	"fmt"
	"time"

	"starlinkperf"
	"starlinkperf/internal/core"
	"starlinkperf/internal/stats"
)

func main() {
	tb := starlinkperf.NewTestbed(starlinkperf.DefaultConfig())
	const visits = 25

	techs := []struct {
		name string
		tech core.Tech
	}{
		{"wired", core.TechWired},
		{"starlink", core.TechStarlink},
		{"satcom", core.TechSatCom},
	}
	medians := map[string]float64{}
	fmt.Printf("%-10s %12s %14s %14s\n", "access", "onLoad med", "SpeedIndex med", "conn setup")
	for _, t := range techs {
		results := tb.RunWebCampaign(t.tech, visits, 2*time.Second)
		var ol, si []float64
		for _, v := range results {
			if v.Failed {
				continue
			}
			ol = append(ol, v.OnLoad.Seconds())
			si = append(si, v.SpeedIndex.Seconds())
		}
		setup := core.ConnSetupStats(results)
		medians[t.name] = stats.Median(ol)
		fmt.Printf("%-10s %11.2fs %13.2fs %12.0fms\n",
			t.name, stats.Median(ol), stats.Median(si), setup.Mean)
	}
	speedup := 1 - medians["starlink"]/medians["satcom"]
	fmt.Printf("\nStarlink loads pages %.0f%% faster than GEO SatCom (paper: 75-80%%)\n", 100*speedup)
}
