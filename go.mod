module starlinkperf

go 1.22
