package cc

import (
	"time"

	"starlinkperf/internal/sim"
)

// BBR constants, following the BBRv1 draft values.
const (
	// bbrHighGain is the startup pacing/cwnd gain (2/ln 2).
	bbrHighGain  = 2.885
	bbrDrainGain = 1.0 / bbrHighGain
	// bbrCwndGain scales the BDP into the steady-state congestion window.
	bbrCwndGain = 2.0
	// bbrBWFilterLen is the windowed-max bandwidth filter length, in
	// round trips.
	bbrBWFilterLen = 10
	// bbrFullBWThresh / bbrFullBWRounds: startup ends when the bottleneck
	// estimate has not grown by 25% for 3 consecutive rounds.
	bbrFullBWThresh = 1.25
	bbrFullBWRounds = 3
	// bbrProbeRTTInterval / bbrProbeRTTDuration: every 10 s the window
	// collapses to bbrMinWindowPackets for 200 ms to drain the queue and
	// revalidate min RTT.
	bbrProbeRTTInterval = 10 * time.Second
	bbrProbeRTTDuration = 200 * time.Millisecond
	bbrMinWindowPackets = 4
	// bbrDrainRoundLimit bounds the drain phase: the inflight estimate is
	// reconstructed from sent/acked deltas (the controller interface has
	// no ground-truth inflight), so a drift must not strand the state
	// machine in drain forever.
	bbrDrainRoundLimit = 8
)

// bbrPacingGainCycle is the probe-bw gain cycle: probe up, drain the
// probe, then cruise. BBRv1 randomizes the entry phase; this model pins it
// for determinism (output must be a pure function of config and seed).
var bbrPacingGainCycle = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type bbrState uint8

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe-bw"
	case bbrProbeRTT:
		return "probe-rtt"
	default:
		return "bbr?"
	}
}

type bwSample struct {
	round uint64
	bw    float64 // bytes per second
}

// BBR is a deterministic BBR-style (v1) model-based controller: it builds
// a bottleneck-bandwidth estimate from per-round delivery-rate samples
// (windowed max over bbrBWFilterLen rounds) and a propagation-delay
// estimate from the RTT estimator's min filter, then walks the
// startup → drain → probe-bw ⇄ probe-rtt state machine, sizing the window
// to a gain times the bandwidth-delay product instead of reacting to loss.
//
// It fits behind the CongestionController interface the connections
// already use: rounds are delimited by the cumulative delivered counter
// (a round ends when everything that was in flight at its start has been
// acked), and inflight is the sent-minus-acked estimate, clamped each
// round so estimation drift from untracked losses stays bounded. Pair it
// with an RTTEstimator whose MinWindow is set, or the prop-delay term
// never expires (the exact bug the windowed min filter fixes).
//
// Loss response is deliberately BBRv1-faithful: a congestion event only
// trims the inflight estimate and applies packet conservation for the
// episode; the model, not the loss, sets the window.
type BBR struct {
	mss  int
	cwnd int

	inflight int // sent-but-unacked bytes (estimate)

	delivered      uint64 // cumulative acked bytes
	round          uint64 // round-trip counter
	roundStart     sim.Time
	roundDelivered uint64 // delivered at round start
	roundTarget    uint64 // delivered count that ends the round
	haveRound      bool

	bwFilter [bbrBWFilterLen]bwSample

	state     bbrState
	fullBW    float64
	fullBWCnt int
	filled    bool

	cycleIdx   int
	cycleStart sim.Time

	drainRounds  int
	lastProbeRTT sim.Time
	probeRTTDone sim.Time
	priorCwnd    int

	recovery   sim.Time
	inRecovery bool
}

// NewBBR returns a BBR controller with the standard initial window for
// the given maximum segment size.
func NewBBR(mss int) *BBR {
	return &BBR{
		mss:   mss,
		cwnd:  InitialWindowPackets * mss,
		state: bbrStartup,
	}
}

// Name implements CongestionController.
func (b *BBR) Name() string { return "bbr" }

// State returns the current state-machine phase, for tests and reporting.
func (b *BBR) State() string { return b.state.String() }

// Window implements CongestionController.
func (b *BBR) Window() int {
	if min := b.minCwnd(); b.cwnd < min {
		return min
	}
	return b.cwnd
}

// InSlowStart implements CongestionController. Startup is BBR's
// exponential phase, which is what callers (Hystart, stats) mean by it.
func (b *BBR) InSlowStart() bool { return b.state == bbrStartup }

func (b *BBR) minCwnd() int { return bbrMinWindowPackets * b.mss }

// OnPacketSent implements CongestionController.
func (b *BBR) OnPacketSent(now sim.Time, bytes int) {
	b.inflight += bytes
}

// OnPacketAcked implements CongestionController.
func (b *BBR) OnPacketAcked(now sim.Time, bytes int, rtt *RTTEstimator) {
	b.delivered += uint64(bytes)
	b.inflight -= bytes
	if b.inflight < 0 {
		b.inflight = 0
	}
	if b.inRecovery && now.Sub(b.recovery) > rtt.Smoothed() {
		b.inRecovery = false
	}
	if b.state == bbrStartup {
		b.cwnd += bytes
	}
	if !b.haveRound {
		b.startRound(now)
	} else if b.delivered >= b.roundTarget {
		b.endRound(now, rtt)
		b.startRound(now)
	}
	b.tick(now, rtt)
	b.updateCwnd(rtt)
}

func (b *BBR) startRound(now sim.Time) {
	b.haveRound = true
	b.roundStart = now
	b.roundDelivered = b.delivered
	b.roundTarget = b.delivered + uint64(b.inflight)
	if b.roundTarget == b.delivered {
		b.roundTarget++
	}
}

// endRound closes a round trip: take one delivery-rate sample, advance
// the startup full-pipe detector, and re-anchor the inflight estimate.
func (b *BBR) endRound(now sim.Time, rtt *RTTEstimator) {
	dur := now.Sub(b.roundStart)
	b.round++
	if dur > 0 {
		bw := float64(b.delivered-b.roundDelivered) / dur.Seconds()
		b.recordBW(bw)
	}
	// Bound inflight drift: losses the interface never itemizes leak
	// into the sent-minus-acked estimate, so clamp it to a generous
	// multiple of the window once per round.
	if lim := 2*b.Window() + 16*b.mss; b.inflight > lim {
		b.inflight = lim
	}
	switch b.state {
	case bbrStartup:
		b.checkFullPipe()
	case bbrDrain:
		b.drainRounds++
		if b.drainRounds >= bbrDrainRoundLimit {
			b.enterProbeBW(now)
		}
	}
}

func (b *BBR) recordBW(bw float64) {
	i := int(b.round % bbrBWFilterLen)
	if b.bwFilter[i].round == b.round {
		if bw > b.bwFilter[i].bw {
			b.bwFilter[i].bw = bw
		}
		return
	}
	b.bwFilter[i] = bwSample{round: b.round, bw: bw}
}

// maxBW returns the windowed-max bottleneck bandwidth estimate in
// bytes/second, 0 before the first sample.
func (b *BBR) maxBW() float64 {
	var m float64
	for _, s := range b.bwFilter {
		if s.bw > 0 && s.round+bbrBWFilterLen > b.round && s.bw > m {
			m = s.bw
		}
	}
	return m
}

// checkFullPipe is the startup exit: three rounds without 25% bandwidth
// growth means the pipe is full.
func (b *BBR) checkFullPipe() {
	bw := b.maxBW()
	if bw >= b.fullBW*bbrFullBWThresh {
		b.fullBW = bw
		b.fullBWCnt = 0
		return
	}
	b.fullBWCnt++
	if b.fullBWCnt >= bbrFullBWRounds {
		b.filled = true
		b.state = bbrDrain
		b.drainRounds = 0
	}
}

// tick runs the time-driven transitions: drain exit, probe-bw gain
// cycling, and probe-rtt entry/exit.
func (b *BBR) tick(now sim.Time, rtt *RTTEstimator) {
	switch b.state {
	case bbrDrain:
		if b.inflight <= b.bdp(rtt, 1.0) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		if now.Sub(b.cycleStart) >= b.minRTT(rtt) {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrPacingGainCycle)
			b.cycleStart = now
		}
		if now.Sub(b.lastProbeRTT) >= bbrProbeRTTInterval {
			b.state = bbrProbeRTT
			b.priorCwnd = b.cwnd
			d := b.minRTT(rtt)
			if d < bbrProbeRTTDuration {
				d = bbrProbeRTTDuration
			}
			b.probeRTTDone = now.Add(d)
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			b.cwnd = b.priorCwnd
			b.lastProbeRTT = now
			b.enterProbeBW(now)
		}
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	if b.state != bbrProbeRTT {
		// First steady-state entry: start the probe-rtt clock here, not
		// at connection birth, so short flows never collapse their
		// window.
		b.lastProbeRTT = now
	}
	b.state = bbrProbeBW
	b.cycleIdx = 0
	b.cycleStart = now
}

// updateCwnd sizes the window from the model. Startup grows additively
// per acked byte (exponential per round, done in OnPacketAcked); the
// model phases set cwnd directly from the BDP.
func (b *BBR) updateCwnd(rtt *RTTEstimator) {
	if b.state == bbrProbeRTT {
		b.cwnd = b.minCwnd()
		return
	}
	target := b.bdp(rtt, bbrCwndGain)
	if target <= 0 {
		return // no bandwidth estimate yet: keep the growing window
	}
	if b.inRecovery {
		// Packet conservation during a loss episode: do not grow past
		// what the network is currently holding plus one window.
		if lim := b.inflight + b.Window(); target > lim {
			target = lim
		}
	}
	switch b.state {
	case bbrStartup:
		if b.cwnd < target {
			b.cwnd = target
		}
	default:
		b.cwnd = target
	}
	if b.cwnd < b.minCwnd() {
		b.cwnd = b.minCwnd()
	}
}

// bdp returns gain × estimated bandwidth-delay product in bytes, 0 while
// no bandwidth sample exists.
func (b *BBR) bdp(rtt *RTTEstimator, gain float64) int {
	bw := b.maxBW()
	if bw <= 0 {
		return 0
	}
	return int(gain * bw * b.minRTT(rtt).Seconds())
}

func (b *BBR) minRTT(rtt *RTTEstimator) time.Duration {
	if m := rtt.Min(); m > 0 {
		return m
	}
	return InitialRTT
}

// OnCongestionEvent implements CongestionController. BBR's model, not the
// loss, sets the window: a loss only trims the inflight estimate (the
// lost packet left the network) and opens a packet-conservation episode.
func (b *BBR) OnCongestionEvent(now sim.Time, sentAt sim.Time) {
	b.inflight -= b.mss
	if b.inflight < 0 {
		b.inflight = 0
	}
	if b.inRecovery && sentAt <= b.recovery {
		return
	}
	b.inRecovery = true
	b.recovery = now
}

// PacingRate implements PacingRater: the state's pacing gain times the
// bottleneck bandwidth estimate, falling back to startup-gain × initial
// window over the observed RTT before any bandwidth sample exists.
func (b *BBR) PacingRate(rtt *RTTEstimator) float64 {
	bw := b.maxBW()
	if bw <= 0 {
		srtt := rtt.Smoothed()
		if srtt <= 0 {
			srtt = InitialRTT
		}
		return bbrHighGain * float64(b.Window()) / srtt.Seconds()
	}
	return b.pacingGain() * bw
}

func (b *BBR) pacingGain() float64 {
	switch b.state {
	case bbrStartup:
		return bbrHighGain
	case bbrDrain:
		return bbrDrainGain
	case bbrProbeRTT:
		return 1
	default:
		return bbrPacingGainCycle[b.cycleIdx]
	}
}
