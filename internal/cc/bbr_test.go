package cc

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// bbrLinkResult is the observable outcome of one synthetic-link run, used
// both for behavior assertions and for bit-determinism comparison.
type bbrLinkResult struct {
	statesSeen map[string]bool
	finalState string
	finalCwnd  int
	acked      int
	minRTT     time.Duration
}

// runBBRLink drives a BBR controller over a synthetic FIFO bottleneck
// (rate bytes/s, prop one-way delay) for dur of sim time: send while the
// window allows, ack in FIFO order with the queueing-inflated RTT sample.
// Everything is integer/float arithmetic on deterministic inputs — two
// runs must match bit for bit.
func runBBRLink(rate float64, prop time.Duration, dur time.Duration) bbrLinkResult {
	const mss = 1200
	b := NewBBR(mss)
	var est RTTEstimator
	est.MinWindow = 10 * time.Second

	type inFlight struct {
		ackAt  sim.Time
		sample time.Duration
	}
	var q []inFlight
	var linkFree sim.Time
	now := sim.Time(0)
	end := sim.Time(dur)
	res := bbrLinkResult{statesSeen: map[string]bool{b.State(): true}}
	outstanding := 0

	for now < end {
		for outstanding+mss <= b.Window() {
			depart := now
			if linkFree > depart {
				depart = linkFree
			}
			txDone := depart.Add(time.Duration(float64(mss*8) / (rate * 8) * float64(time.Second)))
			linkFree = txDone
			ackAt := txDone.Add(prop * 2)
			b.OnPacketSent(now, mss)
			outstanding += mss
			q = append(q, inFlight{ackAt: ackAt, sample: ackAt.Sub(now)})
		}
		if len(q) == 0 {
			// Window smaller than one packet cannot happen (4*mss floor),
			// but guard against a stall instead of spinning.
			break
		}
		nxt := q[0]
		q = q[:copy(q, q[1:])]
		now = nxt.ackAt
		outstanding -= mss
		est.UpdateAt(now, nxt.sample, 0)
		b.OnPacketAcked(now, mss, &est)
		res.statesSeen[b.State()] = true
		res.acked++
	}
	res.finalState = b.State()
	res.finalCwnd = b.Window()
	res.minRTT = est.Min()
	return res
}

// TestBBRStateMachineTraversal drives the controller over a 10 Mbps /
// 40 ms RTT bottleneck for 25 s and checks the full state machine runs:
// startup exits once bandwidth stops growing, drain empties the startup
// queue, probe-bw cruises, and probe-rtt fires on its 10 s cadence.
func TestBBRStateMachineTraversal(t *testing.T) {
	res := runBBRLink(1.25e6, 20*time.Millisecond, 25*time.Second)
	for _, st := range []string{"startup", "drain", "probe-bw", "probe-rtt"} {
		if !res.statesSeen[st] {
			t.Errorf("state %q never entered (seen: %v)", st, res.statesSeen)
		}
	}
	// Steady state: window between 1x and 4x the true BDP (1.25 MB/s x
	// 40 ms = 50 kB); far outside means the model estimate is broken.
	bdp := 50000
	if res.finalCwnd < bdp/2 || res.finalCwnd > 4*bdp {
		t.Errorf("final cwnd %d outside [%d, %d] around the true BDP", res.finalCwnd, bdp/2, 4*bdp)
	}
	if res.acked == 0 {
		t.Fatal("no packets acked")
	}
}

// TestBBRDeterminism pins bit-determinism: the controller's trajectory is
// a pure function of its inputs. ci.sh runs this under -race alongside
// the core modern-profile determinism suite.
func TestBBRDeterminism(t *testing.T) {
	a := runBBRLink(1.25e6, 20*time.Millisecond, 12*time.Second)
	b := runBBRLink(1.25e6, 20*time.Millisecond, 12*time.Second)
	if a.finalState != b.finalState || a.finalCwnd != b.finalCwnd ||
		a.acked != b.acked || a.minRTT != b.minRTT {
		t.Errorf("two identical runs diverged: %+v vs %+v", a, b)
	}
}

// TestBBRStartupExitsOnPlateau: on a slow link the exponential phase must
// end within a handful of round trips of the bandwidth plateauing, not
// run unbounded like pre-Hystart slow start.
func TestBBRStartupExitsOnPlateau(t *testing.T) {
	res := runBBRLink(250e3, 25*time.Millisecond, 5*time.Second)
	if res.statesSeen["startup"] && res.finalState == "startup" {
		t.Error("still in startup after 5s on a 2 Mbps link")
	}
}

// TestBBRProbeRTTCollapsesWindow: during probe-rtt the window must sit at
// the 4-packet floor so the queue drains and min RTT revalidates.
func TestBBRProbeRTTCollapsesWindow(t *testing.T) {
	const mss = 1200
	b := NewBBR(mss)
	var est RTTEstimator
	// Force the machinery directly: give it a bandwidth estimate and walk
	// it into probe-rtt via the 10 s interval.
	est.UpdateAt(at(0.1), 40*time.Millisecond, 0)
	b.state = bbrProbeBW
	b.lastProbeRTT = at(0.1)
	b.cycleStart = at(0.1)
	b.recordBW(1e6)
	b.OnPacketSent(at(11), mss)
	b.OnPacketAcked(at(11), mss, &est)
	if b.State() != "probe-rtt" {
		t.Fatalf("state %q after probe-rtt interval elapsed, want probe-rtt", b.State())
	}
	if b.Window() != 4*mss {
		t.Errorf("probe-rtt window = %d, want %d", b.Window(), 4*mss)
	}
	// 250 ms later it must be back in probe-bw with the window restored.
	b.OnPacketSent(at(11.3), mss)
	b.OnPacketAcked(at(11.3), mss, &est)
	if b.State() != "probe-bw" {
		t.Errorf("state %q after probe-rtt duration, want probe-bw", b.State())
	}
	if b.Window() <= 4*mss {
		t.Errorf("window %d not restored after probe-rtt", b.Window())
	}
}

// TestBBRWindowedMinRTTAfterHandover ties the two new pieces together:
// with a windowed estimator, a handover that raises the path RTT grows
// the BDP-derived window once the stale min expires — the exact
// interaction the all-time min filter broke.
func TestBBRWindowedMinRTTAfterHandover(t *testing.T) {
	const mss = 1200
	mkEst := func(window time.Duration) *RTTEstimator {
		e := &RTTEstimator{MinWindow: window}
		for s := 0.0; s < 5; s += 0.25 {
			e.UpdateAt(at(s), 20*time.Millisecond, 0)
		}
		for s := 5.0; s < 25; s += 0.25 {
			e.UpdateAt(at(s), 60*time.Millisecond, 0)
		}
		return e
	}
	b := NewBBR(mss)
	b.recordBW(1e6)
	stale := mkEst(0)
	fresh := mkEst(10 * time.Second)
	if got := b.bdp(stale, 1.0); got != 20000 {
		t.Errorf("all-time-min BDP = %d, want 20000 (stale 20ms min)", got)
	}
	if got := b.bdp(fresh, 1.0); got != 60000 {
		t.Errorf("windowed-min BDP = %d, want 60000 (post-handover 60ms)", got)
	}
}
