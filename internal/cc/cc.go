// Package cc implements the congestion controllers and round-trip-time
// estimation shared by the QUIC and TCP transports: CUBIC (RFC 8312, the
// algorithm both the paper's quiche build and the Linux testbed kernels
// used), NewReno as an ablation baseline, and an optional pacer.
package cc

import (
	"math"
	"time"

	"starlinkperf/internal/sim"
)

// CongestionController is the sender-side congestion control interface.
// All sizes are in bytes.
type CongestionController interface {
	// Window returns the current congestion window.
	Window() int
	// OnPacketSent informs the controller of bytes leaving.
	OnPacketSent(now sim.Time, bytes int)
	// OnPacketAcked informs the controller of newly acknowledged bytes.
	OnPacketAcked(now sim.Time, bytes int, rtt *RTTEstimator)
	// OnCongestionEvent reacts to a loss of a packet sent at sentAt.
	// Losses inside an ongoing recovery episode are ignored.
	OnCongestionEvent(now sim.Time, sentAt sim.Time)
	// InSlowStart reports whether the controller is in slow start.
	InSlowStart() bool
	// Name identifies the algorithm for reporting.
	Name() string
}

// PacingRater is implemented by controllers that own their pacing rate
// (BBR): the pacer consults it instead of deriving a rate from cwnd/SRTT.
// The rate is in bytes per second.
type PacingRater interface {
	PacingRate(rtt *RTTEstimator) float64
}

// Default CUBIC constants (RFC 8312), matching quiche.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
	// MinWindowPackets is the floor of the congestion window.
	MinWindowPackets = 2
	// InitialWindowPackets is the RFC 9002 initial window.
	InitialWindowPackets = 10
)

// Cubic implements the CUBIC congestion controller with the standard
// TCP-friendly (Reno-estimate) region and fast convergence, operating in
// bytes with an MSS of MaxPayloadSize.
type Cubic struct {
	mss        int
	cwnd       int
	ssthresh   int
	recovery   sim.Time // sent-time threshold of current recovery episode
	inRecovery bool

	// CUBIC state.
	wMax       float64 // window before last reduction, in MSS units
	k          float64 // seconds until the cubic reaches wMax again
	epochStart sim.Time
	haveEpoch  bool
	ackedBytes int // bytes acked since epoch start, for Reno estimate
	wEst       float64

	// HyStart state: per-round minimum RTT (a round is one cwnd of
	// acknowledged bytes), which filters per-packet jitter out of the
	// delay signal.
	hsRoundBytes   int
	hsRoundMin     time.Duration
	hsRoundSamples int

	// IdleDecay enables RFC 7661-style congestion window validation: a
	// flow that idles (no sends, no acks) through an outage halves its
	// window per idle RTO instead of bursting the stale pre-outage cwnd
	// into the freshly restored link. Off by default — the paper's
	// quiche build had no CWV, and the reproduction profile keeps its
	// post-idle line-rate burst.
	IdleDecay   bool
	lastActive  sim.Time
	activeValid bool
	idleSRTT    time.Duration
}

// NewCubic returns a CUBIC controller with the standard initial window
// for the given maximum segment size.
func NewCubic(mss int) *Cubic {
	return &Cubic{
		mss:      mss,
		cwnd:     InitialWindowPackets * mss,
		ssthresh: math.MaxInt32,
	}
}

// Name implements CongestionController.
func (c *Cubic) Name() string { return "cubic" }

// Window implements CongestionController.
func (c *Cubic) Window() int { return c.cwnd }

// InSlowStart implements CongestionController.
func (c *Cubic) InSlowStart() bool { return c.cwnd < c.ssthresh }

// DebugSSThresh exposes ssthresh for calibration tooling.
func (c *Cubic) DebugSSThresh() int { return c.ssthresh }

// OnPacketSent implements CongestionController. With IdleDecay enabled it
// is also the idle detector: the first send after an idle period longer
// than the restart timeout decays the window before any data leaves.
func (c *Cubic) OnPacketSent(now sim.Time, _ int) {
	if !c.IdleDecay {
		return
	}
	if c.activeValid {
		c.decayAfterIdle(now.Sub(c.lastActive))
	}
	c.lastActive = now
	c.activeValid = true
}

// decayAfterIdle applies RFC 7661 semantics, simplified to this
// simulator's controller granularity: per full restart timeout of idle
// the window halves toward the initial window, ssthresh is raised so the
// flow can ramp back in slow start, and the cubic epoch restarts so the
// next congestion-avoidance phase grows from the decayed point instead of
// the stale pre-idle curve.
func (c *Cubic) decayAfterIdle(idle time.Duration) {
	rto := 2 * c.idleSRTT
	if rto < 200*time.Millisecond {
		rto = 200 * time.Millisecond
	}
	if idle < rto {
		return
	}
	floor := InitialWindowPackets * c.mss
	if c.cwnd <= floor {
		return
	}
	if half := c.cwnd * 3 / 4; c.ssthresh < half {
		c.ssthresh = half
	}
	for ; idle >= rto && c.cwnd > floor; idle -= rto {
		c.cwnd /= 2
	}
	if c.cwnd < floor {
		c.cwnd = floor
	}
	c.haveEpoch = false
	c.hsRoundBytes, c.hsRoundSamples, c.hsRoundMin = 0, 0, 0
}

// OnPacketAcked implements CongestionController.
func (c *Cubic) OnPacketAcked(now sim.Time, bytes int, rtt *RTTEstimator) {
	if c.IdleDecay {
		c.lastActive = now
		c.activeValid = true
		c.idleSRTT = rtt.Smoothed()
	}
	if c.inRecovery {
		// Still draining the episode: window frozen until a packet sent
		// after the recovery point is acked, which the connection
		// signals by calling OnCongestionEvent/exitRecovery. To keep
		// the controller self-contained we exit recovery lazily on the
		// first ack after one RTT.
		if now.Sub(c.recovery) > rtt.Smoothed() {
			c.inRecovery = false
		} else {
			return
		}
	}
	if c.InSlowStart() {
		c.cwnd += bytes
		c.hystart(bytes, rtt)
		return
	}
	c.congestionAvoidance(now, bytes, rtt)
}

// hystart implements the delay-based slow-start exit (enabled by default
// in both Linux CUBIC and quiche): once the *round minimum* RTT — robust
// against per-packet jitter — rises a threshold above the global minimum,
// the queue is building and slow start ends before the overflow burst.
func (c *Cubic) hystart(bytes int, rtt *RTTEstimator) {
	if l := rtt.Latest(); c.hsRoundMin == 0 || l < c.hsRoundMin {
		c.hsRoundMin = l
	}
	c.hsRoundBytes += bytes
	c.hsRoundSamples++
	thresh := rtt.Min() / 8
	if thresh < 8*time.Millisecond {
		thresh = 8 * time.Millisecond
	}
	roundDone := c.hsRoundBytes >= c.cwnd
	// Emergency mid-round exit for fast-growing rounds.
	if !roundDone && c.hsRoundSamples >= 32 && c.hsRoundMin > rtt.Min()+3*thresh {
		c.ssthresh = c.cwnd
		return
	}
	if roundDone {
		// Small rounds carry too few samples for the jitter-filtered
		// minimum to be trustworthy; skip the check and keep growing.
		if c.hsRoundSamples >= 16 && c.hsRoundMin > rtt.Min()+thresh {
			c.ssthresh = c.cwnd
		}
		c.hsRoundBytes = 0
		c.hsRoundSamples = 0
		c.hsRoundMin = 0
	}
}

func (c *Cubic) congestionAvoidance(now sim.Time, bytes int, rtt *RTTEstimator) {
	if !c.haveEpoch {
		c.epochStart = now
		c.haveEpoch = true
		c.ackedBytes = 0
		cwndMSS := float64(c.cwnd) / float64(c.mss)
		if cwndMSS < c.wMax {
			c.k = math.Cbrt((c.wMax - cwndMSS) / cubicC)
		} else {
			c.k = 0
			c.wMax = cwndMSS
		}
		c.wEst = cwndMSS
	}
	c.ackedBytes += bytes

	t := now.Sub(c.epochStart).Seconds() + rtt.Smoothed().Seconds()
	wCubic := cubicC*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region (RFC 8312 §4.2): grow a Reno estimate by
	// 3(1-beta)/(1+beta) MSS per cwnd of acknowledged bytes and never
	// fall below it.
	const renoAlpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
	c.wEst += renoAlpha * float64(bytes) / float64(c.cwnd)

	target := wCubic
	if c.wEst > target {
		target = c.wEst
	}
	cwndMSS := float64(c.cwnd) / float64(c.mss)
	// Growth cap: implementations clamp the cubic target to 1.5x the
	// current window per RTT so deep-convex phases do not blast the
	// bottleneck queue.
	if target > 1.5*cwndMSS {
		target = 1.5 * cwndMSS
	}
	if target > cwndMSS {
		// Increase by (target-cwnd)/cwnd per ACK, as RFC 8312 §4.1.
		inc := (target - cwndMSS) / cwndMSS * float64(bytes)
		c.cwnd += int(inc)
	} else {
		// Minimal growth to stay responsive.
		c.cwnd += int(float64(bytes) * 0.01)
	}
}

// OnCongestionEvent implements CongestionController.
func (c *Cubic) OnCongestionEvent(now sim.Time, sentAt sim.Time) {
	if c.inRecovery && sentAt <= c.recovery {
		return // loss belongs to the current episode
	}
	c.inRecovery = true
	c.recovery = now

	cwndMSS := float64(c.cwnd) / float64(c.mss)
	// Fast convergence (RFC 8312 §4.6).
	if cwndMSS < c.wMax {
		c.wMax = cwndMSS * (1 + cubicBeta) / 2
	} else {
		c.wMax = cwndMSS
	}
	c.cwnd = int(float64(c.cwnd) * cubicBeta)
	if min := MinWindowPackets * c.mss; c.cwnd < min {
		c.cwnd = min
	}
	c.ssthresh = c.cwnd
	c.haveEpoch = false
}

// NewReno implements the RFC 9002 baseline controller, available for
// ablation comparisons.
type NewReno struct {
	mss        int
	cwnd       int
	ssthresh   int
	recovery   sim.Time
	inRecovery bool
	acked      int
}

// NewNewReno returns a NewReno controller for the given maximum segment
// size.
func NewNewReno(mss int) *NewReno {
	return &NewReno{mss: mss, cwnd: InitialWindowPackets * mss, ssthresh: math.MaxInt32}
}

// Name implements CongestionController.
func (n *NewReno) Name() string { return "newreno" }

// Window implements CongestionController.
func (n *NewReno) Window() int { return n.cwnd }

// InSlowStart implements CongestionController.
func (n *NewReno) InSlowStart() bool { return n.cwnd < n.ssthresh }

// OnPacketSent implements CongestionController.
func (n *NewReno) OnPacketSent(sim.Time, int) {}

// OnPacketAcked implements CongestionController.
func (n *NewReno) OnPacketAcked(now sim.Time, bytes int, rtt *RTTEstimator) {
	if n.inRecovery {
		if now.Sub(n.recovery) > rtt.Smoothed() {
			n.inRecovery = false
		} else {
			return
		}
	}
	if n.InSlowStart() {
		n.cwnd += bytes
		return
	}
	n.acked += bytes
	if n.acked >= n.cwnd {
		n.acked -= n.cwnd
		n.cwnd += n.mss
	}
}

// OnCongestionEvent implements CongestionController.
func (n *NewReno) OnCongestionEvent(now sim.Time, sentAt sim.Time) {
	if n.inRecovery && sentAt <= n.recovery {
		return
	}
	n.inRecovery = true
	n.recovery = now
	n.cwnd /= 2
	if min := MinWindowPackets * n.mss; n.cwnd < min {
		n.cwnd = min
	}
	n.ssthresh = n.cwnd
}

// DefaultBurstPackets is the pacer's default max-burst allowance: after
// an idle period at most this many packet-sized grants leave back to
// back before spacing resumes (Linux fq and quiche use ~10 too).
const DefaultBurstPackets = 10

// Pacer schedules packet departures at the pacing rate when enabled.
// quiche at the paper's commit did not pace, which the paper identifies
// as the cause of the elevated upload RTTs for 25 kB messages — so pacing
// defaults to off and exists for the modern transport profile and the
// ablation bench.
//
// The implementation is a token bucket holding at most BurstPackets
// packets' worth of bytes: tokens refill at the pacing rate, a grant
// consumes the packet's size, and a deferred packet consumes nothing — so
// retrying after the returned delay is charged exactly once. (The
// previous arrival-spacing implementation advanced its departure clock on
// every call, double-charging packets the caller deferred and re-offered,
// which paced deferred flows at half the configured rate.)
type Pacer struct {
	Enabled bool
	// Gain scales the cwnd/SRTT-derived pacing rate; 1.25 is the common
	// choice. Ignored when the controller provides its own rate.
	Gain float64
	// BurstPackets caps the bucket depth — the number of back-to-back
	// full-size departures allowed after idle (and right after
	// slow-start-exit cwnd spurts). Zero means DefaultBurstPackets.
	BurstPackets int

	tokens     float64 // bytes available for immediate departure
	lastRefill sim.Time
	primed     bool
}

// Delay returns how long after now the next packet of the given size may
// leave, pacing at Gain × cwnd/SRTT.
func (p *Pacer) Delay(now sim.Time, size, cwnd int, rtt *RTTEstimator) time.Duration {
	if !p.Enabled {
		return 0
	}
	srtt := rtt.Smoothed()
	if srtt <= 0 || cwnd <= 0 {
		return 0
	}
	gain := p.Gain
	if gain <= 0 {
		gain = 1.25
	}
	return p.DelayRate(now, size, gain*float64(cwnd)/srtt.Seconds())
}

// DelayFor is the profile-aware entry point shared by the QUIC and TCP
// send paths: controllers that own a pacing rate (BBR) are consulted via
// PacingRater, everything else paces at Gain × cwnd/SRTT.
func (p *Pacer) DelayFor(now sim.Time, size int, ctl CongestionController, rtt *RTTEstimator) time.Duration {
	if !p.Enabled {
		return 0
	}
	if pr, ok := ctl.(PacingRater); ok {
		return p.DelayRate(now, size, pr.PacingRate(rtt))
	}
	return p.Delay(now, size, ctl.Window(), rtt)
}

// DelayRate returns how long after now the next packet of the given size
// may leave at an explicit rate in bytes per second. A zero return grants
// the departure (and consumes its tokens); a positive return defers it
// without consuming anything.
func (p *Pacer) DelayRate(now sim.Time, size int, rate float64) time.Duration {
	if !p.Enabled || rate <= 0 || size <= 0 {
		return 0
	}
	burst := p.BurstPackets
	if burst <= 0 {
		burst = DefaultBurstPackets
	}
	depth := float64(burst * size)
	if !p.primed {
		p.primed = true
		p.tokens = depth
		p.lastRefill = now
	} else if now > p.lastRefill {
		p.tokens += now.Sub(p.lastRefill).Seconds() * rate
		p.lastRefill = now
	}
	if p.tokens > depth {
		p.tokens = depth
	}
	// The grant comparison tolerates a nanobyte of float error and the
	// deferral rounds up to whole nanoseconds, so a caller that waits
	// exactly the returned delay is always granted on retry instead of
	// spinning on a sub-nanosecond deficit.
	if p.tokens >= float64(size)-1e-6 {
		p.tokens -= float64(size)
		if p.tokens < 0 {
			p.tokens = 0
		}
		return 0
	}
	return time.Duration(math.Ceil((float64(size) - p.tokens) / rate * float64(time.Second)))
}

// Fixed is a constant-window controller used by satellite PEPs on the
// provisioned space segment: the operator knows the link rate, so the
// proxy clamps its window to the provisioned bandwidth-delay product and
// ignores loss (capacity is guaranteed by admission control, and the
// per-subscriber shaper enforces fairness).
type Fixed struct{ w int }

// NewFixed returns a controller with a constant window of w bytes.
func NewFixed(w int) *Fixed { return &Fixed{w: w} }

// Name implements CongestionController.
func (f *Fixed) Name() string { return "fixed" }

// Window implements CongestionController.
func (f *Fixed) Window() int { return f.w }

// OnPacketSent implements CongestionController.
func (f *Fixed) OnPacketSent(sim.Time, int) {}

// OnPacketAcked implements CongestionController.
func (f *Fixed) OnPacketAcked(sim.Time, int, *RTTEstimator) {}

// OnCongestionEvent implements CongestionController.
func (f *Fixed) OnCongestionEvent(sim.Time, sim.Time) {}

// InSlowStart implements CongestionController.
func (f *Fixed) InSlowStart() bool { return false }
