package cc

import (
	"testing"
	"testing/quick"
	"time"

	"starlinkperf/internal/sim"
)

const testMSS = 1460

func at(sec float64) sim.Time { return sim.Time(sec * float64(time.Second)) }

func TestCubicInitialWindow(t *testing.T) {
	c := NewCubic(testMSS)
	if c.Window() != InitialWindowPackets*testMSS {
		t.Errorf("initial window = %d", c.Window())
	}
	if c.Name() != "cubic" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCubicWindowNeverBelowFloor(t *testing.T) {
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	for i := 0; i < 50; i++ {
		c.OnCongestionEvent(at(float64(i)), at(float64(i)))
	}
	if c.Window() < MinWindowPackets*testMSS {
		t.Errorf("window %d below floor", c.Window())
	}
}

func TestCubicGrowthBetweenLossesIsMonotone(t *testing.T) {
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	// Leave slow start.
	c.OnCongestionEvent(at(0.1), at(0.05))
	prev := c.Window()
	now := 0.2
	for i := 0; i < 500; i++ {
		now += 0.01
		c.OnPacketAcked(at(now), testMSS, &r)
		if w := c.Window(); w < prev {
			t.Fatalf("window shrank without loss: %d -> %d at step %d", prev, w, i)
		} else {
			prev = w
		}
	}
	if prev <= MinWindowPackets*testMSS {
		t.Error("window never grew in congestion avoidance")
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	// After a loss the window should approach wMax slowly (concave) then
	// accelerate past it (convex): growth in the first second after
	// reaching wMax should exceed growth in the second before it.
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	// Grow to a meaningful window in slow start, then lose.
	for i := 0; i < 200; i++ {
		c.OnPacketAcked(at(0.001*float64(i)), testMSS, &r)
	}
	c.OnCongestionEvent(at(1), at(0.9))
	start := c.Window()

	window := func(from, to float64) int {
		w0 := c.Window()
		for ts := from; ts < to; ts += 0.005 {
			c.OnPacketAcked(at(ts), testMSS, &r)
		}
		return c.Window() - w0
	}
	early := window(1.3, 2.3)
	late := window(6.0, 7.0)
	if late <= early {
		t.Logf("early growth %d, late growth %d (start %d)", early, late, start)
		t.Error("cubic should accelerate after the plateau")
	}
}

func TestNewRenoHalvesOnLoss(t *testing.T) {
	n := NewNewReno(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	for i := 0; i < 100; i++ {
		n.OnPacketAcked(at(0.001*float64(i)), testMSS, &r)
	}
	w := n.Window()
	n.OnCongestionEvent(at(1), at(0.9))
	if n.Window() != w/2 {
		t.Errorf("post-loss window = %d, want %d", n.Window(), w/2)
	}
	if n.InSlowStart() {
		t.Error("should have exited slow start")
	}
}

func TestCCSameEpochLossIgnored(t *testing.T) {
	for _, ctl := range []CongestionController{NewCubic(testMSS), NewNewReno(testMSS)} {
		ctl.OnCongestionEvent(at(1), at(0.5))
		w := ctl.Window()
		ctl.OnCongestionEvent(at(1.01), at(0.9)) // sent before recovery start
		if ctl.Window() != w {
			t.Errorf("%s: same-episode loss reduced window", ctl.Name())
		}
		ctl.OnCongestionEvent(at(2), at(1.5)) // sent after recovery start
		if ctl.Window() >= w {
			t.Errorf("%s: new-episode loss did not reduce window", ctl.Name())
		}
	}
}

// growCubic drives a controller to a large window with a steady ack clock.
func growCubic(c *Cubic, r *RTTEstimator, acks int) {
	for i := 0; i < acks; i++ {
		now := at(0.001 * float64(i))
		c.OnPacketSent(now, testMSS)
		c.OnPacketAcked(now, testMSS, r)
	}
}

// TestCubicIdleDecayOutageResume is the regression test for the missing
// congestion-window validation: a flow that idles through an outage must
// not resume with its full pre-outage window (the RFC 7661 behavior the
// IdleDecay flag adds). The default controller keeps the seed's burst
// behavior, asserted alongside.
func TestCubicIdleDecayOutageResume(t *testing.T) {
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)

	legacy := NewCubic(testMSS)
	fixed := NewCubic(testMSS)
	fixed.IdleDecay = true
	growCubic(legacy, &r, 400)
	growCubic(fixed, &r, 400)
	if legacy.Window() != fixed.Window() {
		t.Fatalf("controllers diverged while active: %d vs %d", legacy.Window(), fixed.Window())
	}
	pre := fixed.Window()
	if pre <= 2*InitialWindowPackets*testMSS {
		t.Fatalf("window %d too small for the test to be meaningful", pre)
	}

	// 15 s outage: no sends, no acks. The first send after the link comes
	// back is where validation must bite.
	resume := at(0.4 + 15)
	legacy.OnPacketSent(resume, testMSS)
	fixed.OnPacketSent(resume, testMSS)

	if legacy.Window() != pre {
		t.Errorf("seed-profile controller changed window on idle: %d -> %d", pre, legacy.Window())
	}
	if fixed.Window() >= pre {
		t.Errorf("IdleDecay window %d did not decay from %d after 15s idle", fixed.Window(), pre)
	}
	if floor := InitialWindowPackets * testMSS; fixed.Window() < floor {
		t.Errorf("IdleDecay window %d fell below the restart floor %d", fixed.Window(), floor)
	}
}

// TestCubicIdleDecayShortGapUntouched: pauses shorter than the restart
// timeout (normal ack clocking) must not decay anything.
func TestCubicIdleDecayShortGapUntouched(t *testing.T) {
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	c := NewCubic(testMSS)
	c.IdleDecay = true
	growCubic(c, &r, 400)
	pre := c.Window()
	c.OnPacketSent(at(0.4+0.15), testMSS) // 150ms gap < 200ms restart timeout
	if c.Window() != pre {
		t.Errorf("window %d changed after a sub-RTO pause (pre %d)", c.Window(), pre)
	}
}

func TestPacerDisabledIsZero(t *testing.T) {
	p := Pacer{}
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	if d := p.Delay(0, 1500, 100000, &r); d != 0 {
		t.Errorf("disabled pacer delay = %v", d)
	}
}

func TestPacerSpacesPackets(t *testing.T) {
	p := Pacer{Enabled: true, Gain: 1, BurstPackets: 1}
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	cwnd := 10 * 1500 // 15 kB per 100ms = 150 kB/s
	// First packet immediate, subsequent spaced at size/rate = 10ms.
	if d := p.Delay(0, 1500, cwnd, &r); d != 0 {
		t.Fatalf("first packet delayed %v", d)
	}
	d := p.Delay(0, 1500, cwnd, &r)
	if d != 10*time.Millisecond {
		t.Errorf("second packet delay = %v, want 10ms", d)
	}
}

func TestPacerMaxBurstAllowance(t *testing.T) {
	// After idle the bucket holds exactly BurstPackets packets: that many
	// leave back to back, then spacing resumes — a cwnd-growth spurt right
	// after slow-start exit cannot emit an unbounded unpaced burst.
	p := Pacer{Enabled: true, Gain: 1, BurstPackets: 4}
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	cwnd := 10 * 1500 // 150 kB/s -> 10ms per 1500B packet
	granted := 0
	for i := 0; i < 20; i++ {
		if d := p.Delay(at(5), 1500, cwnd, &r); d == 0 {
			granted++
		} else {
			break
		}
	}
	if granted != 4 {
		t.Errorf("burst after idle granted %d packets, want 4", granted)
	}
	if d := p.Delay(at(5), 1500, cwnd, &r); d != 10*time.Millisecond {
		t.Errorf("post-burst delay = %v, want 10ms", d)
	}
}

func TestPacerDeferredPacketChargedOnce(t *testing.T) {
	// Regression: the pre-token-bucket pacer advanced its departure clock
	// on every Delay call, so a packet the caller deferred (d > 0) and
	// re-offered after the wait was charged twice, pacing the flow at half
	// the configured rate. Emulate the real send path — on a positive
	// delay, wait it out and retry — and check the achieved rate.
	p := Pacer{Enabled: true, Gain: 1, BurstPackets: 1}
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	cwnd := 10 * 1500 // 150 kB/s -> 10ms per 1500B packet
	now := sim.Time(0)
	const packets = 100
	for i := 0; i < packets; i++ {
		d := p.Delay(now, 1500, cwnd, &r)
		if d > 0 {
			now = now.Add(d)
			if d2 := p.Delay(now, 1500, cwnd, &r); d2 != 0 {
				t.Fatalf("packet %d still deferred %v after waiting the returned delay", i, d2)
			}
		}
	}
	// 100 packets at 10ms spacing with a 1-packet burst: the last leaves
	// at 990ms. The double-charging bug put it near 1980ms.
	want := 990 * time.Millisecond
	got := time.Duration(now)
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("last departure at %v, want %v (+-1ms)", got, want)
	}
}

func TestPacerInterDepartureSpacingTrace(t *testing.T) {
	// Trace-based spacing check: drive a synthetic send loop through the
	// pacer, record every departure instant, and assert (a) no run of
	// back-to-back departures longer than the burst allowance, (b) every
	// gap after a burst respects the per-packet interval.
	p := Pacer{Enabled: true, Gain: 1, BurstPackets: 3}
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	cwnd := 10 * 1500 // 150 kB/s -> 10ms per 1500B packet
	interval := 10 * time.Millisecond
	now := sim.Time(0)
	var departures []sim.Time
	for len(departures) < 60 {
		d := p.Delay(now, 1500, cwnd, &r)
		if d > 0 {
			now = now.Add(d)
			continue
		}
		departures = append(departures, now)
	}
	run := 1
	for i := 1; i < len(departures); i++ {
		gap := departures[i].Sub(departures[i-1])
		if gap == 0 {
			run++
			if run > 3 {
				t.Fatalf("departure %d: back-to-back run of %d exceeds burst allowance 3", i, run)
			}
			continue
		}
		run = 1
		if gap < interval-time.Microsecond {
			t.Fatalf("departure %d: gap %v below pacing interval %v", i, gap, interval)
		}
	}
}

func TestPacerPropertyNonNegative(t *testing.T) {
	p := Pacer{Enabled: true}
	var r RTTEstimator
	r.Update(30*time.Millisecond, 0)
	f := func(sz uint16, w uint32) bool {
		d := p.Delay(at(1), int(sz%9000)+1, int(w%1000000)+1500, &r)
		return d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
