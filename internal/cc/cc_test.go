package cc

import (
	"testing"
	"testing/quick"
	"time"

	"starlinkperf/internal/sim"
)

const testMSS = 1460

func at(sec float64) sim.Time { return sim.Time(sec * float64(time.Second)) }

func TestCubicInitialWindow(t *testing.T) {
	c := NewCubic(testMSS)
	if c.Window() != InitialWindowPackets*testMSS {
		t.Errorf("initial window = %d", c.Window())
	}
	if c.Name() != "cubic" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCubicWindowNeverBelowFloor(t *testing.T) {
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	for i := 0; i < 50; i++ {
		c.OnCongestionEvent(at(float64(i)), at(float64(i)))
	}
	if c.Window() < MinWindowPackets*testMSS {
		t.Errorf("window %d below floor", c.Window())
	}
}

func TestCubicGrowthBetweenLossesIsMonotone(t *testing.T) {
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	// Leave slow start.
	c.OnCongestionEvent(at(0.1), at(0.05))
	prev := c.Window()
	now := 0.2
	for i := 0; i < 500; i++ {
		now += 0.01
		c.OnPacketAcked(at(now), testMSS, &r)
		if w := c.Window(); w < prev {
			t.Fatalf("window shrank without loss: %d -> %d at step %d", prev, w, i)
		} else {
			prev = w
		}
	}
	if prev <= MinWindowPackets*testMSS {
		t.Error("window never grew in congestion avoidance")
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	// After a loss the window should approach wMax slowly (concave) then
	// accelerate past it (convex): growth in the first second after
	// reaching wMax should exceed growth in the second before it.
	c := NewCubic(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	// Grow to a meaningful window in slow start, then lose.
	for i := 0; i < 200; i++ {
		c.OnPacketAcked(at(0.001*float64(i)), testMSS, &r)
	}
	c.OnCongestionEvent(at(1), at(0.9))
	start := c.Window()

	window := func(from, to float64) int {
		w0 := c.Window()
		for ts := from; ts < to; ts += 0.005 {
			c.OnPacketAcked(at(ts), testMSS, &r)
		}
		return c.Window() - w0
	}
	early := window(1.3, 2.3)
	late := window(6.0, 7.0)
	if late <= early {
		t.Logf("early growth %d, late growth %d (start %d)", early, late, start)
		t.Error("cubic should accelerate after the plateau")
	}
}

func TestNewRenoHalvesOnLoss(t *testing.T) {
	n := NewNewReno(testMSS)
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	for i := 0; i < 100; i++ {
		n.OnPacketAcked(at(0.001*float64(i)), testMSS, &r)
	}
	w := n.Window()
	n.OnCongestionEvent(at(1), at(0.9))
	if n.Window() != w/2 {
		t.Errorf("post-loss window = %d, want %d", n.Window(), w/2)
	}
	if n.InSlowStart() {
		t.Error("should have exited slow start")
	}
}

func TestCCSameEpochLossIgnored(t *testing.T) {
	for _, ctl := range []CongestionController{NewCubic(testMSS), NewNewReno(testMSS)} {
		ctl.OnCongestionEvent(at(1), at(0.5))
		w := ctl.Window()
		ctl.OnCongestionEvent(at(1.01), at(0.9)) // sent before recovery start
		if ctl.Window() != w {
			t.Errorf("%s: same-episode loss reduced window", ctl.Name())
		}
		ctl.OnCongestionEvent(at(2), at(1.5)) // sent after recovery start
		if ctl.Window() >= w {
			t.Errorf("%s: new-episode loss did not reduce window", ctl.Name())
		}
	}
}

func TestPacerDisabledIsZero(t *testing.T) {
	p := Pacer{}
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	if d := p.Delay(0, 1500, 100000, &r); d != 0 {
		t.Errorf("disabled pacer delay = %v", d)
	}
}

func TestPacerSpacesPackets(t *testing.T) {
	p := Pacer{Enabled: true, Gain: 1}
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	cwnd := 10 * 1500 // 15 kB per 100ms = 150 kB/s
	// First packet immediate, subsequent spaced at size/rate = 10ms.
	if d := p.Delay(0, 1500, cwnd, &r); d != 0 {
		t.Fatalf("first packet delayed %v", d)
	}
	d := p.Delay(0, 1500, cwnd, &r)
	if d != 10*time.Millisecond {
		t.Errorf("second packet delay = %v, want 10ms", d)
	}
}

func TestPacerPropertyNonNegative(t *testing.T) {
	p := Pacer{Enabled: true}
	var r RTTEstimator
	r.Update(30*time.Millisecond, 0)
	f := func(sz uint16, w uint32) bool {
		d := p.Delay(at(1), int(sz%9000)+1, int(w%1000000)+1500, &r)
		return d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
