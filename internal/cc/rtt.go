package cc

import (
	"time"

	"starlinkperf/internal/sim"
)

// RTTEstimator maintains the RFC 9002 §5 round-trip time state.
//
// The minimum filter has two modes. With MinWindow == 0 (the default, and
// what the paper-reproduction profile uses) the minimum is all-time, which
// is what the seed shipped. With MinWindow > 0 the minimum is taken over a
// sliding window of simulated time, so a handover that permanently raises
// the path RTT stops poisoning Hystart exits and BBR's ProbeRTT once the
// pre-handover samples age out. Windowed callers must feed samples through
// UpdateAt (Update has no clock and keeps every sample forever).
type RTTEstimator struct {
	latest   time.Duration
	min      time.Duration
	smoothed time.Duration
	variance time.Duration
	samples  int

	// MinWindow, when positive, bounds how long a min-RTT sample is
	// trusted: Min returns the minimum over the last MinWindow of sim
	// time (as of the latest UpdateAt) instead of the all-time minimum.
	MinWindow time.Duration
	// minQ is the monotonic deque backing the windowed minimum: entries
	// ascend in both timestamp and value, so the front is the windowed
	// minimum and each sample is pushed/popped at most once.
	minQ []minSample
}

type minSample struct {
	at  sim.Time
	rtt time.Duration
}

// InitialRTT is the pre-handshake RTT assumption (RFC 9002 §6.2.2).
const InitialRTT = 333 * time.Millisecond

// Update folds an RTT sample in, subtracting ackDelay per RFC 9002 §5.3
// when it does not underrun the minimum. It is the clockless form of
// UpdateAt and only maintains the all-time minimum; estimators with
// MinWindow set must use UpdateAt.
func (r *RTTEstimator) Update(sample, ackDelay time.Duration) {
	r.UpdateAt(0, sample, ackDelay)
}

// UpdateAt folds an RTT sample observed at sim-time now. With MinWindow
// == 0 it is byte-for-byte equivalent to Update.
func (r *RTTEstimator) UpdateAt(now sim.Time, sample, ackDelay time.Duration) {
	if sample <= 0 {
		return
	}
	r.latest = sample
	if r.MinWindow > 0 {
		r.foldMin(now, sample)
	}
	if r.samples == 0 {
		r.min = sample
		r.smoothed = sample
		r.variance = sample / 2
		r.samples = 1
		return
	}
	r.samples++
	if sample < r.min {
		r.min = sample
	}
	adjusted := sample
	if adjusted-ackDelay >= r.Min() {
		adjusted -= ackDelay
	}
	d := r.smoothed - adjusted
	if d < 0 {
		d = -d
	}
	r.variance = (3*r.variance + d) / 4
	r.smoothed = (7*r.smoothed + adjusted) / 8
}

// foldMin maintains the windowed-min deque: expire entries older than the
// window, drop entries the new sample dominates, append.
func (r *RTTEstimator) foldMin(now sim.Time, sample time.Duration) {
	cutoff := now.Add(-r.MinWindow)
	drop := 0
	for drop < len(r.minQ) && r.minQ[drop].at < cutoff {
		drop++
	}
	if drop > 0 {
		r.minQ = r.minQ[:copy(r.minQ, r.minQ[drop:])]
	}
	for len(r.minQ) > 0 && r.minQ[len(r.minQ)-1].rtt >= sample {
		r.minQ = r.minQ[:len(r.minQ)-1]
	}
	r.minQ = append(r.minQ, minSample{at: now, rtt: sample})
}

// Latest returns the most recent sample.
func (r *RTTEstimator) Latest() time.Duration { return r.latest }

// Min returns the minimum observed RTT: all-time when MinWindow == 0,
// otherwise the minimum over the trailing MinWindow of sim time as of the
// latest UpdateAt.
func (r *RTTEstimator) Min() time.Duration {
	if r.MinWindow > 0 && len(r.minQ) > 0 {
		return r.minQ[0].rtt
	}
	return r.min
}

// Smoothed returns the smoothed RTT, or InitialRTT before any sample.
func (r *RTTEstimator) Smoothed() time.Duration {
	if r.samples == 0 {
		return InitialRTT
	}
	return r.smoothed
}

// Variance returns the RTT variance estimate.
func (r *RTTEstimator) Variance() time.Duration {
	if r.samples == 0 {
		return InitialRTT / 2
	}
	return r.variance
}

// Samples returns the number of samples folded in.
func (r *RTTEstimator) Samples() int { return r.samples }

// PTO returns the probe timeout period: smoothed + max(4*var, 1ms) +
// maxAckDelay (RFC 9002 §6.2.1).
func (r *RTTEstimator) PTO(maxAckDelay time.Duration) time.Duration {
	v := 4 * r.Variance()
	if v < time.Millisecond {
		v = time.Millisecond
	}
	return r.Smoothed() + v + maxAckDelay
}

// LossDelay returns the time-threshold loss delay: 9/8 * max(smoothed,
// latest), floored at 1 ms (RFC 9002 §6.1.2).
func (r *RTTEstimator) LossDelay() time.Duration {
	m := r.Smoothed()
	if r.latest > m {
		m = r.latest
	}
	d := m * 9 / 8
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
