package cc

import "time"

// RTTEstimator maintains the RFC 9002 §5 round-trip time state.
type RTTEstimator struct {
	latest   time.Duration
	min      time.Duration
	smoothed time.Duration
	variance time.Duration
	samples  int
}

// InitialRTT is the pre-handshake RTT assumption (RFC 9002 §6.2.2).
const InitialRTT = 333 * time.Millisecond

// Update folds an RTT sample in, subtracting ackDelay per RFC 9002 §5.3
// when it does not underrun the minimum.
func (r *RTTEstimator) Update(sample, ackDelay time.Duration) {
	if sample <= 0 {
		return
	}
	r.latest = sample
	if r.samples == 0 {
		r.min = sample
		r.smoothed = sample
		r.variance = sample / 2
		r.samples = 1
		return
	}
	r.samples++
	if sample < r.min {
		r.min = sample
	}
	adjusted := sample
	if adjusted-ackDelay >= r.min {
		adjusted -= ackDelay
	}
	d := r.smoothed - adjusted
	if d < 0 {
		d = -d
	}
	r.variance = (3*r.variance + d) / 4
	r.smoothed = (7*r.smoothed + adjusted) / 8
}

// Latest returns the most recent sample.
func (r *RTTEstimator) Latest() time.Duration { return r.latest }

// Min returns the minimum observed RTT.
func (r *RTTEstimator) Min() time.Duration { return r.min }

// Smoothed returns the smoothed RTT, or InitialRTT before any sample.
func (r *RTTEstimator) Smoothed() time.Duration {
	if r.samples == 0 {
		return InitialRTT
	}
	return r.smoothed
}

// Variance returns the RTT variance estimate.
func (r *RTTEstimator) Variance() time.Duration {
	if r.samples == 0 {
		return InitialRTT / 2
	}
	return r.variance
}

// Samples returns the number of samples folded in.
func (r *RTTEstimator) Samples() int { return r.samples }

// PTO returns the probe timeout period: smoothed + max(4*var, 1ms) +
// maxAckDelay (RFC 9002 §6.2.1).
func (r *RTTEstimator) PTO(maxAckDelay time.Duration) time.Duration {
	v := 4 * r.Variance()
	if v < time.Millisecond {
		v = time.Millisecond
	}
	return r.Smoothed() + v + maxAckDelay
}

// LossDelay returns the time-threshold loss delay: 9/8 * max(smoothed,
// latest), floored at 1 ms (RFC 9002 §6.1.2).
func (r *RTTEstimator) LossDelay() time.Duration {
	m := r.Smoothed()
	if r.latest > m {
		m = r.latest
	}
	d := m * 9 / 8
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
