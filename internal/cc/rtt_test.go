package cc

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// TestRTTMinWindowHandoverStep is the regression test for the stale-min
// bug: a handover permanently raising the path RTT from 40 ms to 60 ms
// must eventually raise the reported minimum too. The all-time filter
// (MinWindow == 0, the seed behavior) keeps 40 ms forever; the windowed
// filter forgets it once the window slides past the handover.
func TestRTTMinWindowHandoverStep(t *testing.T) {
	var allTime, windowed RTTEstimator
	windowed.MinWindow = 10 * time.Second

	feed := func(r *RTTEstimator, from, to float64, rtt time.Duration) {
		for s := from; s < to; s += 0.25 {
			r.UpdateAt(at(s), rtt, 0)
		}
	}
	// 5 s of pre-handover samples at 40 ms, then the handover steps the
	// path RTT to 60 ms for 20 s.
	for _, r := range []*RTTEstimator{&allTime, &windowed} {
		feed(r, 0, 5, 40*time.Millisecond)
		feed(r, 5, 25, 60*time.Millisecond)
	}

	if got := allTime.Min(); got != 40*time.Millisecond {
		t.Errorf("all-time min = %v, want the stale 40ms (seed semantics)", got)
	}
	if got := windowed.Min(); got != 60*time.Millisecond {
		t.Errorf("windowed min = %v, want 60ms once pre-handover samples aged out", got)
	}
}

// TestRTTMinWindowTracksImprovement checks the other direction: a
// handover lowering the RTT must be picked up immediately in both modes.
func TestRTTMinWindowTracksImprovement(t *testing.T) {
	var r RTTEstimator
	r.MinWindow = 10 * time.Second
	r.UpdateAt(at(1), 60*time.Millisecond, 0)
	r.UpdateAt(at(2), 35*time.Millisecond, 0)
	if got := r.Min(); got != 35*time.Millisecond {
		t.Errorf("min = %v, want 35ms", got)
	}
}

// TestRTTMinWindowInsideWindowKeepsMin: while the low sample is still
// inside the window it must keep winning over higher recent samples.
func TestRTTMinWindowInsideWindowKeepsMin(t *testing.T) {
	var r RTTEstimator
	r.MinWindow = 10 * time.Second
	r.UpdateAt(at(1), 40*time.Millisecond, 0)
	for s := 2.0; s < 10; s++ {
		r.UpdateAt(at(s), 60*time.Millisecond, 0)
	}
	if got := r.Min(); got != 40*time.Millisecond {
		t.Errorf("min = %v, want 40ms while still in window", got)
	}
}

// TestRTTUpdateAtZeroWindowMatchesUpdate pins the bit-identity contract:
// with MinWindow unset, UpdateAt and Update produce identical estimator
// state, which is what keeps the paper transport profile byte-identical
// to the seed.
func TestRTTUpdateAtZeroWindowMatchesUpdate(t *testing.T) {
	var a, b RTTEstimator
	samples := []struct {
		rtt, ackDelay time.Duration
	}{
		{40 * time.Millisecond, 0},
		{55 * time.Millisecond, 5 * time.Millisecond},
		{38 * time.Millisecond, 2 * time.Millisecond},
		{90 * time.Millisecond, 25 * time.Millisecond},
		{41 * time.Millisecond, 0},
	}
	for i, s := range samples {
		a.Update(s.rtt, s.ackDelay)
		b.UpdateAt(sim.Time(i)*sim.Time(time.Second), s.rtt, s.ackDelay)
	}
	if a.Min() != b.Min() || a.Smoothed() != b.Smoothed() ||
		a.Variance() != b.Variance() || a.Latest() != b.Latest() ||
		a.Samples() != b.Samples() {
		t.Errorf("UpdateAt with MinWindow=0 diverged from Update: %+v vs %+v", a, b)
	}
}
