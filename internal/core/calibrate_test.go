package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"starlinkperf/internal/stats"
)

// TestCalibrationReport prints the key observables against the paper's
// values. Run with -run TestCalibrationReport -v while tuning.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("CALIBRATE") == "" {
		t.Skip("set CALIBRATE=1 to run the calibration report")
	}
	tb := NewTestbed(DefaultConfig())

	// Idle latency: 6h of pings at 5-minute cadence.
	lat := tb.RunLatencyCampaign(6*time.Hour, 5*time.Minute)
	fmt.Println("== Figure 1: idle RTT per anchor (paper: BE 46-52 med / min 24-28; DE 42 med / min 20.5; NL ~ BE; Fremont 184; SIN 270)")
	for _, a := range tb.Anchors {
		s := stats.Summarize(lat.PerAnchor[a.Name].Values())
		fmt.Printf("  %-16s %-8s med=%5.1f min=%5.1f p95=%5.1f\n", a.Name, a.Region, s.P50, s.Min, s.P95)
	}
	fmt.Printf("  probes sent=%d lost=%d (%.2f%%)\n", lat.Sent, lat.Lost, 100*float64(lat.Lost)/float64(lat.Sent))

	// H3 transfers.
	down := tb.RunH3Campaign(6, 100<<20, true, 20*time.Second)
	up := tb.RunH3Campaign(4, 100<<20, false, 20*time.Second)
	dr := stats.Summarize(down.RTTSamplesMs())
	ur := stats.Summarize(up.RTTSamplesMs())
	fmt.Println("== Figure 3: RTT under load (paper: down 95/175/210; up 104/237/310 p50/p95/p99)")
	fmt.Printf("  down n=%d p50=%.0f p95=%.0f p99=%.0f\n", dr.N, dr.P50, dr.P95, dr.P99)
	fmt.Printf("  up   n=%d p50=%.0f p95=%.0f p99=%.0f\n", ur.N, ur.P50, ur.P95, ur.P99)
	fmt.Println("== Table 2 H3 loss (paper: down 1.56% up 1.96%)")
	fmt.Printf("  down %.2f%%  up %.2f%%\n", 100*down.LossRatio(), 100*up.LossRatio())
	gd := stats.Summarize(down.Goodputs())
	gu := stats.Summarize(up.Goodputs())
	fmt.Printf("== H3 goodput (paper: down 100-150, up ~17): down med %.0f, up med %.1f\n", gd.P50, gu.P50)
	db := stats.Summarize(floatify(down.BurstLengths()))
	fmt.Printf("  down bursts: med=%.0f p75=%.0f (paper: >75%% multi-packet)\n", db.P50, db.P75)
	dd := stats.Summarize(down.EventDurations())
	fmt.Printf("  down loss-event durations: p50=%.2gs p95=%.2gs p99=%.2gs (paper: 49us/1.5ms/7.5ms)\n", dd.P50, dd.P95, dd.P99)

	// Messages.
	md := tb.RunMessagesCampaign(3, 2*time.Minute, true)
	mu := tb.RunMessagesCampaign(3, 2*time.Minute, false)
	mdr := stats.Summarize(md.RTTsMs)
	mur := stats.Summarize(mu.RTTsMs)
	fmt.Println("== Messages RTT (paper: down 50/71/87, up 66/87/143 p50/p95/p99)")
	fmt.Printf("  down p50=%.0f p95=%.0f p99=%.0f\n", mdr.P50, mdr.P95, mdr.P99)
	fmt.Printf("  up   p50=%.0f p95=%.0f p99=%.0f\n", mur.P50, mur.P95, mur.P99)
	fmt.Println("== Table 2 messages loss (paper: down 0.40% up 0.45%)")
	fmt.Printf("  down %.2f%%  up %.2f%%\n", 100*md.LossRatio(), 100*mu.LossRatio())
	mb := stats.Summarize(floatify(md.BurstLengths()))
	fmt.Printf("  msg burst med=%.0f p75=%.0f\n", mb.P50, mb.P75)

	// Speedtests.
	st := tb.RunSpeedtestCampaign(TechStarlink, 8, 30*time.Second)
	var dm, um []float64
	for _, r := range st {
		dm = append(dm, r.DownloadMbps)
		um = append(um, r.UploadMbps)
	}
	sd := stats.Summarize(dm)
	su := stats.Summarize(um)
	fmt.Println("== Figure 5 speedtest Starlink (paper: down med 178 max 386; up med 17 max 64)")
	fmt.Printf("  down med=%.0f max=%.0f  up med=%.1f max=%.1f\n", sd.P50, sd.Max, su.P50, su.Max)

	sts := tb.RunSpeedtestCampaign(TechSatCom, 4, 30*time.Second)
	dm, um = nil, nil
	for _, r := range sts {
		dm = append(dm, r.DownloadMbps)
		um = append(um, r.UploadMbps)
	}
	fmt.Printf("== SatCom speedtest (paper: down med 82, up med 4.5): down med=%.0f up med=%.1f\n",
		stats.Median(dm), stats.Median(um))

	// Web.
	for _, tech := range []Tech{TechStarlink, TechSatCom, TechWired} {
		visits := tb.RunWebCampaign(tech, 40, 2*time.Second)
		var ol, si []float64
		fails := 0
		for _, v := range visits {
			if v.Failed {
				fails++
				continue
			}
			ol = append(ol, v.OnLoad.Seconds())
			si = append(si, v.SpeedIndex.Seconds())
		}
		setup := ConnSetupStats(visits)
		fmt.Printf("== Web %-8s onLoad med=%.2fs SI med=%.2fs setup mean=%.0fms fails=%d (paper: SL 2.12/1.82/167; SC 10.91/8.19/2030; W 1.24/1.0)\n",
			tech, stats.Median(ol), stats.Median(si), setup.Mean, fails)
	}
}

func floatify(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
