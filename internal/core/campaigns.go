package core

import (
	"sort"
	"time"

	"starlinkperf/internal/measure"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/trace"
	"starlinkperf/internal/web"
	"starlinkperf/internal/wehe"
)

// LatencyData is the output of the anchor ping campaign.
type LatencyData struct {
	// PerAnchor maps anchor name to its RTT series (milliseconds).
	PerAnchor map[string]*stats.Series
	// Regions maps anchor name to region.
	Regions map[string]string
	// Sent and Lost count probes.
	Sent, Lost int
}

// EuropeanSeries merges the BE/NL/DE anchors into one series (Figure 2's
// input). The merge iterates anchors in sorted name order — ranging the
// map directly made the sample order (and any export or tie-sensitive
// consumer downstream) vary run to run.
func (d *LatencyData) EuropeanSeries() *stats.Series {
	names := make([]string, 0, len(d.PerAnchor))
	for name := range d.PerAnchor {
		names = append(names, name)
	}
	sort.Strings(names)
	var out stats.Series
	for _, name := range names {
		switch d.Regions[name] {
		case "BE", "NL", "DE":
			for _, smp := range d.PerAnchor[name].Samples() {
				out.Add(smp.At, smp.Value)
			}
		}
	}
	return &out
}

// RunLatencyCampaign pings every anchor (3 probes per round) each
// interval for dur, like the paper's 5-month / 5-minute campaign.
func (tb *Testbed) RunLatencyCampaign(dur, interval time.Duration) *LatencyData {
	data := &LatencyData{
		PerAnchor: make(map[string]*stats.Series),
		Regions:   make(map[string]string),
	}
	byAddr := make(map[netem.Addr]string)
	for _, a := range tb.Anchors {
		data.PerAnchor[a.Name] = &stats.Series{}
		data.Regions[a.Name] = a.Region
		byAddr[a.Node.Addr()] = a.Name
	}
	prober := measure.NewProber(tb.PCStarlink)
	prober.Observe(tb.Obs)
	end := tb.Sched.Now().Add(dur)
	prober.Monitor(tb.AnchorAddrs(), interval, 3, end, func(r measure.PingResult) {
		data.Sent++
		if !r.OK {
			data.Lost++
			return
		}
		name := byAddr[r.Target]
		data.PerAnchor[name].Add(time.Duration(r.At), r.RTT.Seconds()*1000)
	})
	tb.Sched.RunUntil(end.Add(time.Minute))
	tb.PCStarlink.Unbind(netem.ProtoICMP, 0)
	return data
}

// H3Record is one bulk transfer's outcome.
type H3Record struct {
	Result measure.TransferResult
	Loss   trace.LossReport
}

// H3Campaign aggregates a set of transfers in one direction.
type H3Campaign struct {
	Download bool
	Records  []H3Record
}

// RTTSamplesMs pools every RTT sample of the campaign (Figure 3 series).
func (c *H3Campaign) RTTSamplesMs() []float64 {
	var out []float64
	for _, r := range c.Records {
		out = append(out, r.Result.RTTs.Milliseconds()...)
	}
	return out
}

// LossRatio returns pooled lost/sent.
func (c *H3Campaign) LossRatio() float64 {
	var lost, sent uint64
	for _, r := range c.Records {
		lost += r.Loss.PacketsLost
		sent += r.Loss.PacketsSent
	}
	if sent == 0 {
		return 0
	}
	return float64(lost) / float64(sent)
}

// BurstLengths pools loss-burst lengths (Figure 4).
func (c *H3Campaign) BurstLengths() []int {
	var out []int
	for _, r := range c.Records {
		out = append(out, r.Loss.BurstLengths()...)
	}
	return out
}

// EventDurations pools loss-event durations in seconds.
func (c *H3Campaign) EventDurations() []float64 {
	var out []float64
	for _, r := range c.Records {
		out = append(out, r.Loss.EventDurations()...)
	}
	return out
}

// Goodputs returns per-transfer goodputs in Mbit/s.
func (c *H3Campaign) Goodputs() []float64 {
	out := make([]float64, 0, len(c.Records))
	for _, r := range c.Records {
		if r.Result.Completed {
			out = append(out, r.Result.GoodputMbps)
		}
	}
	return out
}

// RunH3Campaign executes n bulk transfers of size bytes, spaced by gap,
// in the given direction, from PC-Starlink to the UCLouvain server.
func (tb *Testbed) RunH3Campaign(n int, size int, download bool, gap time.Duration) *H3Campaign {
	return tb.RunH3CampaignFrom(tb.PCStarlink, n, size, download, gap, tb.QUICConf)
}

// RunH3CampaignFrom runs the bulk campaign from an arbitrary client node
// with an explicit transport configuration — the wired-baseline check and
// the pacing/receive-window ablations use this.
func (tb *Testbed) RunH3CampaignFrom(client *netem.Node, n int, size int, download bool, gap time.Duration, qcfg quic.Config) *H3Campaign {
	camp := &H3Campaign{Download: download}
	srvAddr := tb.UCLServer.Addr()
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		handle := func(res measure.TransferResult) {
			rec := H3Record{Result: res}
			rec.Loss = trace.AnalyzeLosses(res.ReceiverCapture.Received)
			camp.Records = append(camp.Records, rec)
			tb.Sched.After(gap, func() { runOne(i + 1) })
		}
		if download {
			measure.H3Download(client, tb.H3Server, srvAddr, H3Port, size, qcfg, handle)
		} else {
			measure.H3Upload(client, tb.H3Server, srvAddr, H3Port, size, qcfg, handle)
		}
	}
	runOne(0)
	// Generous horizon: transfers self-pace.
	perTransfer := time.Duration(float64(size*8)/(10e6))*time.Second + gap + 2*time.Minute
	tb.Sched.RunFor(time.Duration(n) * perTransfer)
	return camp
}

// MsgCampaign aggregates message sessions of one direction.
type MsgCampaign struct {
	Download bool
	RTTsMs   []float64
	Loss     trace.LossReport
	sent     uint64
	lost     uint64
	bursts   []int
	durs     []float64
}

// LossRatio returns pooled lost/sent.
func (c *MsgCampaign) LossRatio() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.lost) / float64(c.sent)
}

// BurstLengths pools loss bursts.
func (c *MsgCampaign) BurstLengths() []int { return c.bursts }

// EventDurations pools loss-event durations (seconds).
func (c *MsgCampaign) EventDurations() []float64 { return c.durs }

// RunMessagesCampaign executes n message sessions (25 msg/s of 5–25 kB
// for sessionDur each) in the given direction.
func (tb *Testbed) RunMessagesCampaign(n int, sessionDur time.Duration, download bool) *MsgCampaign {
	return tb.RunMessagesCampaignCfg(n, sessionDur, download, tb.QUICConf)
}

// RunMessagesCampaignCfg is RunMessagesCampaign with an explicit QUIC
// configuration (the pacing ablation flips EnablePacing).
func (tb *Testbed) RunMessagesCampaignCfg(n int, sessionDur time.Duration, download bool, qcfg quic.Config) *MsgCampaign {
	camp := &MsgCampaign{Download: download}
	srvAddr := tb.UCLServer.Addr()
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		handle := func(res measure.MessageSessionResult) {
			camp.RTTsMs = append(camp.RTTsMs, res.RTTs.Milliseconds()...)
			rep := trace.AnalyzeLosses(res.ReceiverCapture.Received)
			camp.sent += rep.PacketsSent
			camp.lost += rep.PacketsLost
			camp.bursts = append(camp.bursts, rep.BurstLengths()...)
			camp.durs = append(camp.durs, rep.EventDurations()...)
			tb.Sched.After(30*time.Second, func() { runOne(i + 1) })
		}
		if download {
			measure.MessagesDownload(tb.PCStarlink, tb.H3Server, srvAddr, H3Port, 25, sessionDur, 5000, 25000, qcfg, handle)
		} else {
			measure.MessagesUpload(tb.PCStarlink, tb.H3Server, srvAddr, H3Port, 25, sessionDur, 5000, 25000, qcfg, handle)
		}
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(n) * (sessionDur + time.Minute))
	return camp
}

// Tech selects a vantage point.
type Tech int

// Vantage points.
const (
	TechStarlink Tech = iota
	TechSatCom
	TechWired
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case TechStarlink:
		return "starlink"
	case TechSatCom:
		return "satcom"
	default:
		return "wired"
	}
}

// SpeedtestConfig resolves the testbed's speedtest client configuration:
// the Config override when set, the Ookla-like defaults otherwise.
func (tb *Testbed) SpeedtestConfig() measure.SpeedtestConfig {
	cfg := measure.DefaultSpeedtestConfig()
	if tb.Cfg.Speedtest.Connections > 0 {
		cfg = tb.Cfg.Speedtest
	}
	tb.Cfg.Transport.applyTCP(&cfg.TCP)
	return cfg
}

func (tb *Testbed) vantage(t Tech) *netem.Node {
	switch t {
	case TechStarlink:
		return tb.PCStarlink
	case TechSatCom:
		return tb.PCSatCom
	default:
		return tb.PCWired
	}
}

// RunSpeedtestCampaign performs n Ookla-like speedtests from the given
// vantage point, spaced by gap, and returns the results.
func (tb *Testbed) RunSpeedtestCampaign(t Tech, n int, gap time.Duration) []measure.SpeedtestResult {
	node := tb.vantage(t)
	prober := measure.NewProber(node)
	prober.Observe(tb.Obs)
	cfg := tb.SpeedtestConfig()
	var out []measure.SpeedtestResult
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		measure.RunSpeedtest(prober, tb.OoklaServers, cfg, func(r measure.SpeedtestResult) {
			out = append(out, r)
			tb.Sched.After(gap, func() { runOne(i + 1) })
		})
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(n) * (cfg.Warmup*2 + cfg.Window*2 + gap + 30*time.Second))
	node.Unbind(netem.ProtoICMP, 0)
	return out
}

// RunWebCampaign visits nVisits sites (cycling through the corpus) from
// the vantage point and returns the successful visit results.
func (tb *Testbed) RunWebCampaign(t Tech, nVisits int, gap time.Duration) []web.VisitResult {
	return tb.runWebVisits(t, 0, nVisits, gap)
}

// runWebVisits performs n visits starting at the global visit offset
// start, so sharded campaigns walk the same site cycle a sequential run
// would.
func (tb *Testbed) runWebVisits(t Tech, start, n int, gap time.Duration) []web.VisitResult {
	node := tb.vantage(t)
	var out []web.VisitResult
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		site := &tb.Sites[(start+i)%len(tb.Sites)]
		b := &web.Browser{
			Node:     node,
			Resolve:  tb.WebResolver(site),
			TCP:      tb.WebTCP,
			Deadline: 90 * time.Second,
		}
		b.Visit(site, func(r web.VisitResult) {
			out = append(out, r)
			tb.Sched.After(gap, func() { runOne(i + 1) })
		})
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(n) * (90*time.Second + gap))
	return out
}

// MiddleboxAudit is the §3.5 result set for one vantage point.
type MiddleboxAudit struct {
	Hops      []measure.TraceboxHop
	NATLevels int
	PEP       measure.PEPProbe
}

// RunMiddleboxAudit runs traceroute + Tracebox + the PEP probe from a
// vantage point toward the UCLouvain server.
func (tb *Testbed) RunMiddleboxAudit(t Tech) MiddleboxAudit {
	node := tb.vantage(t)
	prober := measure.NewProber(node)
	prober.Observe(tb.Obs)
	var audit MiddleboxAudit
	prober.Tracebox(tb.UCLServer.Addr(), 24, func(hops []measure.TraceboxHop) {
		audit.Hops = hops
		// NAT levels = distinct embedded-checksum residues observed in
		// the quotes (each translator fixes the checksum by a different
		// delta; compliant NATs restore the embedded addresses, RFC
		// 5508, so the checksum is what leaks the translation count).
		seen := map[uint16]bool{}
		for _, h := range hops {
			if h.Residue != 0 {
				seen[h.Residue] = true
			}
		}
		audit.NATLevels = len(seen)
	})
	tb.Sched.RunFor(3 * time.Minute)
	prober.DetectPEP(tb.UCLServer.Addr(), 80, 24, func(r measure.PEPProbe) {
		audit.PEP = r
	})
	tb.Sched.RunFor(3 * time.Minute)
	node.Unbind(netem.ProtoICMP, 0)
	return audit
}

// RunWeheAudit replays the full Wehe suite `repeats` times per service
// from a vantage point and returns the per-service verdicts.
func (tb *Testbed) RunWeheAudit(t Tech, repeats int) []wehe.Detection {
	node := tb.vantage(t)
	rng := tb.Sched.RNG().Stream("wehe")
	traces := wehe.DefaultServices(rng)
	cfg := tb.WebTCP
	cfg.TLSRounds = 0
	// The replay server lives next to the UCLouvain host.
	wehe.Server(tb.UCLServer, traces, cfg)

	var out []wehe.Detection
	var runOne func(i int)
	runOne = func(i int) {
		if i >= len(traces) {
			return
		}
		wehe.Detect(node, tb.UCLServer.Addr(), &traces[i], repeats, cfg, func(d wehe.Detection) {
			out = append(out, d)
			runOne(i + 1)
		})
	}
	runOne(0)
	tb.Sched.RunFor(time.Duration(len(traces)*repeats) * 2 * 40 * time.Second)
	return out
}

// ConnSetupStats measures TCP+TLS connection setup from a vantage point,
// averaged over the web campaign's connections (§3.4's 167 ms vs 2030 ms).
func ConnSetupStats(visits []web.VisitResult) stats.Summary {
	var xs []float64
	for _, v := range visits {
		for _, d := range v.ConnSetupTimes {
			xs = append(xs, d.Seconds()*1000)
		}
	}
	return stats.Summarize(xs)
}
