package core

import (
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/measure"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/web"
)

// The tests in this file run scaled-down campaigns and assert the paper's
// qualitative findings (who wins, by roughly what factor, orderings). The
// full-scale reproduction lives in bench_test.go; the CALIBRATE-gated
// report in calibrate_test.go prints exact numbers.

func TestTestbedConstruction(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	if len(tb.Anchors) != 11 {
		t.Errorf("anchors = %d, want 11", len(tb.Anchors))
	}
	if len(tb.OoklaServers) < 2 {
		t.Errorf("ookla servers = %d", len(tb.OoklaServers))
	}
	if len(tb.Sites) != 120 {
		t.Errorf("sites = %d, want 120", len(tb.Sites))
	}
	regions := map[string]int{}
	for _, a := range tb.Anchors {
		regions[a.Region]++
	}
	if regions["BE"] != 4 || regions["NL"] != 2 || regions["DE"] != 2 {
		t.Errorf("region mix = %v", regions)
	}
}

func TestIdleLatencyShape(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	lat := tb.RunLatencyCampaign(90*time.Minute, 5*time.Minute)

	med := func(name string) float64 { return stats.Median(lat.PerAnchor[name].Values()) }
	min := func(name string) float64 { return stats.Min(lat.PerAnchor[name].Values()) }

	// Paper: European medians in the 40-55ms band, minima in the 20-35ms
	// band, "confirming Starlink's 20ms latency promise".
	for _, a := range []string{"be-probe-1", "be-probe-2", "ams-anchor-1", "nbg-anchor-1"} {
		if m := med(a); m < 35 || m > 58 {
			t.Errorf("%s median = %.1f, want Starlink's 40-55ms band", a, m)
		}
		if m := min(a); m < 18 || m > 40 {
			t.Errorf("%s min = %.1f", a, m)
		}
	}
	// The German anchors (via the FRA exit) are the fastest in the
	// paper; the lowest observed RTT is ~20.5ms there.
	if med("nbg-anchor-1") >= med("be-probe-3") {
		t.Error("DE anchor should beat the slowest BE probe")
	}
	// Distant anchors are dominated by terrestrial distance: Fremont
	// ~184ms, Singapore ~270ms, and orderings hold.
	if m := med("fremont-anchor"); m < 160 || m > 210 {
		t.Errorf("fremont median = %.1f, want ~184", m)
	}
	if m := med("sin-anchor"); m < 235 || m > 295 {
		t.Errorf("singapore median = %.1f, want ~270", m)
	}
	if !(med("nyc-anchor") < med("fremont-anchor") && med("fremont-anchor") < med("sin-anchor")) {
		t.Error("distance ordering violated")
	}
}

func TestH3LatencyUnderLoadExceedsIdle(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	idle := tb.RunLatencyCampaign(30*time.Minute, 5*time.Minute)
	idleMed := stats.Median(idle.EuropeanSeries().Values())

	down := tb.RunH3Campaign(2, 50<<20, true, 10*time.Second)
	loadMed := stats.Median(down.RTTSamplesMs())

	if loadMed < idleMed+20 {
		t.Errorf("under-load median %.0fms should clearly exceed idle %.0fms", loadMed, idleMed)
	}
	if loadMed > 200 {
		t.Errorf("under-load median %.0fms implausibly high", loadMed)
	}
	if down.LossRatio() < 0.002 {
		t.Errorf("H3 download loss %.3f%% too low (paper: ~1.5%%)", 100*down.LossRatio())
	}
	if down.LossRatio() > 0.06 {
		t.Errorf("H3 download loss %.3f%% too high", 100*down.LossRatio())
	}
}

func TestMessagesStayNearIdleRTT(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	msg := tb.RunMessagesCampaign(2, time.Minute, true)
	s := stats.Summarize(msg.RTTsMs)
	// Paper: messages RTT stays mostly under 100ms, near ping levels.
	if s.P50 < 35 || s.P50 > 75 {
		t.Errorf("messages median RTT %.0f, want ~50", s.P50)
	}
	if s.P95 > 110 {
		t.Errorf("messages p95 %.0f, want < 110", s.P95)
	}
	// Messages loss is far below H3 loss.
	if msg.LossRatio() > 0.015 {
		t.Errorf("messages loss %.2f%% too high", 100*msg.LossRatio())
	}
}

func TestSpeedtestComparisons(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	sl := tb.RunSpeedtestCampaign(TechStarlink, 3, 20*time.Second)
	sc := tb.RunSpeedtestCampaign(TechSatCom, 3, 20*time.Second)
	if len(sl) != 3 || len(sc) != 3 {
		t.Fatalf("campaigns incomplete: %d/%d", len(sl), len(sc))
	}
	slDown := stats.Median(downs(sl))
	scDown := stats.Median(downs(sc))
	slUp := stats.Median(ups(sl))
	scUp := stats.Median(ups(sc))

	// Paper: Starlink is more than twice as fast as SatCom in download
	// (178 vs 82) and upload (17 vs 4.5).
	if slDown < 2*scDown*0.8 {
		t.Errorf("starlink down %.0f vs satcom %.0f: want ~2x or more", slDown, scDown)
	}
	if slUp < 2*scUp {
		t.Errorf("starlink up %.1f vs satcom %.1f: want >2x", slUp, scUp)
	}
	if slDown < 100 || slDown > 280 {
		t.Errorf("starlink down %.0f outside the 100-280 band", slDown)
	}
	if scDown < 55 || scDown > 100 {
		t.Errorf("satcom down %.0f, want ~82", scDown)
	}
	if scUp > 10 {
		t.Errorf("satcom up %.1f exceeds its 10Mbit/s plan", scUp)
	}
}

func downs(rs []measure.SpeedtestResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.DownloadMbps
	}
	return out
}

func ups(rs []measure.SpeedtestResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.UploadMbps
	}
	return out
}

func medianOnLoad(vs []web.VisitResult) float64 {
	var xs []float64
	for _, v := range vs {
		if !v.Failed {
			xs = append(xs, v.OnLoad.Seconds())
		}
	}
	return stats.Median(xs)
}

func TestWebQoEOrdering(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	const visits = 12
	wired := tb.RunWebCampaign(TechWired, visits, time.Second)
	starlink := tb.RunWebCampaign(TechStarlink, visits, time.Second)
	satcom := tb.RunWebCampaign(TechSatCom, visits, time.Second)

	w := medianOnLoad(wired)
	s := medianOnLoad(starlink)
	c := medianOnLoad(satcom)

	// Paper: wired (1.24) < starlink (2.12) << satcom (10.91); Starlink
	// is 75-80% faster than SatCom.
	if !(w < s && s < c) {
		t.Fatalf("onLoad ordering violated: wired=%.2f starlink=%.2f satcom=%.2f", w, s, c)
	}
	if s > c*0.4 {
		t.Errorf("starlink onLoad %.2f should be at least 60%% faster than satcom %.2f", s, c)
	}
	if c < 6 || c > 18 {
		t.Errorf("satcom onLoad %.2f, want ~11s", c)
	}
	// Connection setup: paper reports 167ms (Starlink) vs 2030ms (SatCom).
	setupSL := ConnSetupStats(starlink).Mean
	setupSC := ConnSetupStats(satcom).Mean
	if setupSC < 5*setupSL {
		t.Errorf("satcom setup %.0fms should dwarf starlink %.0fms", setupSC, setupSL)
	}
}

func TestMiddleboxFindings(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	sl := tb.RunMiddleboxAudit(TechStarlink)

	// Paper §3.5: two NAT levels (192.168.1.1 CPE, 100.64.0.1 CGNAT),
	// no PEP on Starlink.
	if sl.NATLevels != 2 {
		t.Errorf("starlink NAT levels = %d, want 2", sl.NATLevels)
	}
	if len(sl.Hops) < 3 {
		t.Fatalf("starlink path too short: %d hops", len(sl.Hops))
	}
	if got := sl.Hops[0].Addr.String(); got != "192.168.1.1" {
		t.Errorf("hop1 = %s, want the CPE 192.168.1.1", got)
	}
	if got := sl.Hops[1].Addr.String(); got != "100.64.0.1" {
		t.Errorf("hop2 = %s, want the CGNAT 100.64.0.1", got)
	}
	if sl.PEP.ProxyDetected() {
		t.Error("phantom PEP on the Starlink path")
	}

	tb2 := NewTestbed(DefaultConfig())
	sc := tb2.RunMiddleboxAudit(TechSatCom)
	if !sc.PEP.ProxyDetected() {
		t.Error("SatCom PEP not detected")
	}
}

func TestWeheNoDifferentiationOnStarlink(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	// Two repeats over a service subset keeps the test quick; the bench
	// runs the full 22x10.
	ds := tb.RunWeheAudit(TechStarlink, 1)
	if len(ds) != 22 {
		t.Fatalf("services = %d, want 22", len(ds))
	}
	diff := 0
	for _, d := range ds {
		if d.Differentiated {
			diff++
		}
	}
	// Paper: no TD policy found. Allow one statistical false positive.
	if diff > 1 {
		t.Errorf("%d services flagged as differentiated on a neutral network", diff)
	}
}

func TestScenarioFleetGrowthLowersRTT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialShellFraction = 0.72
	cfg.FleetGrowthAt = 12 * time.Hour
	tb := NewTestbed(cfg)
	lat := tb.RunLatencyCampaign(24*time.Hour, 5*time.Minute)
	eu := lat.EuropeanSeries()
	before := stats.Median(eu.Window(0, 12*time.Hour))
	after := stats.Median(eu.Window(12*time.Hour, 24*time.Hour))
	// Paper: "distribution takes on slightly smaller values" after the
	// early-2022 launches.
	if after >= before {
		t.Errorf("fleet growth should lower the median: before=%.1f after=%.1f", before, after)
	}
	if before-after > 15 {
		t.Errorf("step too large: %.1f -> %.1f (paper: a few ms)", before, after)
	}
}

func TestScenarioLoadEpisodeRaisesRTT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Load = LoadEpisode{Start: 6 * time.Hour, End: 12 * time.Hour, ExtraOneWay: 4 * time.Millisecond}
	tb := NewTestbed(cfg)
	lat := tb.RunLatencyCampaign(12*time.Hour, 5*time.Minute)
	eu := lat.EuropeanSeries()
	calm := stats.Median(eu.Window(0, 6*time.Hour))
	busy := stats.Median(eu.Window(6*time.Hour, 12*time.Hour))
	if busy < calm+5 {
		t.Errorf("load episode should raise the median: calm=%.1f busy=%.1f", calm, busy)
	}
}

func TestNoDiurnalPattern(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	lat := tb.RunLatencyCampaign(48*time.Hour, 10*time.Minute)
	groups := lat.EuropeanSeries().GroupByHourOfDay()
	_, _, p := stats.MoodsMedianTest(groups)
	// Paper: "a Mood's test suggests the samples are drawn from
	// distributions with the same median".
	if p < 0.01 {
		t.Errorf("diurnal pattern detected (p=%.4f); the model has no day-night cycle", p)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	lat := tb.RunLatencyCampaign(time.Hour, 10*time.Minute)
	var b strings.Builder
	RenderTable1(&b, 150*24*time.Hour, 107*24*time.Hour, 107*24*time.Hour, 150*24*time.Hour, len(tb.Anchors), len(tb.Sites))
	RenderFigure1(&b, Figure1(lat, tb.Anchors))
	RenderFigure2(&b, Figure2(lat))
	out := b.String()
	for _, want := range []string{"Table 1", "Figure 1", "Figure 2", "be-probe-1", "sin-anchor"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
