package core

import (
	"reflect"
	"testing"
	"time"
)

// datapathFingerprint mirrors fingerprint (scheduler_equivalence_test.go)
// but toggles the packet datapath instead of the scheduler: reference
// runs the seed datapath (fresh allocations, map handler lookup, linear
// longest-prefix scan), fast runs the pooled packets + flat FIB path.
func datapathFingerprint(seed uint64, reference bool) campaignFingerprint {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ReferenceDatapath = reference
	tb := NewTestbed(cfg)
	fp := campaignFingerprint{Lat: tb.RunLatencyCampaign(2*time.Hour, 15*time.Minute)}
	h3 := tb.RunH3Campaign(1, 2<<20, true, 5*time.Second)
	for _, r := range h3.Records {
		clean := h3Fingerprint{Record: r, ClientStats: r.Result.Client.Stats, ServerStats: r.Result.Server.Stats}
		clean.Record.Result.Client, clean.Record.Result.Server = nil, nil
		fp.H3 = append(fp.H3, clean)
	}
	fp.Msg = tb.RunMessagesCampaign(1, 20*time.Second, true)
	fp.Speedtest = tb.RunSpeedtestCampaign(TechStarlink, 1, time.Minute)
	fp.Web = tb.RunWebCampaign(TechStarlink, 2, time.Second)
	fp.Processed = tb.Sched.Processed
	return fp
}

// The pooled datapath must be campaign-equivalent to the seed datapath:
// identical routing decisions, identical handler dispatch, identical
// event counts, therefore bit-identical metrics across every campaign
// family.
func TestDatapathCampaignEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		fast := datapathFingerprint(seed, false)
		ref := datapathFingerprint(seed, true)
		if fast.Processed != ref.Processed {
			t.Errorf("seed %d: fast datapath ran %d events, reference %d",
				seed, fast.Processed, ref.Processed)
		}
		if !reflect.DeepEqual(fast.Lat, ref.Lat) {
			t.Errorf("seed %d: latency campaign metrics diverge between datapaths", seed)
		}
		if !reflect.DeepEqual(fast.H3, ref.H3) {
			t.Errorf("seed %d: H3 campaign metrics diverge between datapaths", seed)
		}
		if !reflect.DeepEqual(fast.Msg, ref.Msg) {
			t.Errorf("seed %d: messages campaign metrics diverge between datapaths", seed)
		}
		if !reflect.DeepEqual(fast.Speedtest, ref.Speedtest) {
			t.Errorf("seed %d: speedtest campaign metrics diverge between datapaths", seed)
		}
		if !reflect.DeepEqual(fast.Web, ref.Web) {
			t.Errorf("seed %d: web campaign metrics diverge between datapaths", seed)
		}
	}
}

// Pooling is per-network and each parallel shard owns its network, so
// worker count must not leak into results: the same campaign sharded
// over 1 and 8 workers — and the reference datapath at either width —
// must agree byte for byte.
func TestDatapathParallelWorkerEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	run := func(workers int, reference bool) *LatencyData {
		c := cfg
		c.ReferenceDatapath = reference
		return RunLatencyCampaignParallel(c, 4, 30*time.Minute, 15*time.Minute,
			Options{Workers: workers, Seed: c.Seed})
	}
	serialFast := run(1, false)
	wideFast := run(8, false)
	wideRef := run(8, true)
	if !reflect.DeepEqual(serialFast, wideFast) {
		t.Error("fast datapath: 1-worker and 8-worker campaigns diverge")
	}
	if !reflect.DeepEqual(wideFast, wideRef) {
		t.Error("8-worker campaigns diverge between fast and reference datapaths")
	}
}
