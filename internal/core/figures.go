package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"starlinkperf/internal/measure"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/web"
	"starlinkperf/internal/wehe"
)

// This file renders each reproduced table and figure in the layout the
// paper reports, so `starlink-bench` output can be read side by side with
// the PDF. Every Render function takes the campaign data produced by the
// Run* methods.

// RenderTable1 prints the dataset overview (Table 1).
func RenderTable1(w *strings.Builder, latencyDur, tputDur, webDur, quicDur time.Duration, anchors, sites int) {
	fmt.Fprintf(w, "Table 1: Overview of the datasets\n")
	fmt.Fprintf(w, "  %-14s %-9s %-10s %s\n", "Measure", "Network", "Duration", "Target")
	fmt.Fprintf(w, "  %-14s %-9s %-10s %d anchors\n", "Latency", "Starlink", days(latencyDur), anchors)
	fmt.Fprintf(w, "  %-14s %-9s %-10s Ookla servers\n", "Throughput", "Starlink", days(tputDur))
	fmt.Fprintf(w, "  %-14s %-9s %-10s Ookla servers\n", "", "SatCom", days(tputDur))
	fmt.Fprintf(w, "  %-14s %-9s %-10s %d websites\n", "Web Browsing", "Starlink", days(webDur), sites)
	fmt.Fprintf(w, "  %-14s %-9s %-10s %d websites\n", "", "SatCom", days(webDur), sites)
	fmt.Fprintf(w, "  %-14s %-9s %-10s our server\n", "QUIC H3", "Starlink", days(quicDur))
	fmt.Fprintf(w, "  %-14s %-9s %-10s our server\n", "QUIC messages", "Starlink", days(quicDur))
}

func days(d time.Duration) string {
	if d >= 24*time.Hour {
		return fmt.Sprintf("%.0f days", d.Hours()/24)
	}
	return d.String()
}

// Figure1Row is one anchor's boxplot.
type Figure1Row struct {
	Anchor  string
	Region  string
	Summary stats.Summary
}

// Figure1 computes the per-anchor RTT distributions.
func Figure1(data *LatencyData, order []Anchor) []Figure1Row {
	rows := make([]Figure1Row, 0, len(order))
	for _, a := range order {
		rows = append(rows, Figure1Row{
			Anchor:  a.Name,
			Region:  a.Region,
			Summary: stats.Summarize(data.PerAnchor[a.Name].Values()),
		})
	}
	return rows
}

// RenderFigure1 prints the boxplot series (whiskers p5/p95, box p25/p75,
// median stroke, absolute minimum on the top axis — the paper's layout).
func RenderFigure1(w *strings.Builder, rows []Figure1Row) {
	fmt.Fprintf(w, "Figure 1: RTT distribution per anchor [ms]\n")
	fmt.Fprintf(w, "  %-16s %-8s %6s %6s %6s %6s %6s %6s\n",
		"anchor", "region", "min", "p5", "p25", "p50", "p75", "p95")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(w, "  %-16s %-8s %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			r.Anchor, r.Region, s.Min, s.P5, s.P25, s.P50, s.P75, s.P95)
	}
}

// Figure2Bin is one 6-hour bin of the European RTT timeline.
type Figure2Bin struct {
	Start time.Duration
	stats.Summary
}

// Figure2 bins the European anchors' series into 6-hour windows.
func Figure2(data *LatencyData) []Figure2Bin {
	bins := data.EuropeanSeries().BinByTime(6 * time.Hour)
	out := make([]Figure2Bin, len(bins))
	for i, b := range bins {
		out[i] = Figure2Bin{Start: b.Start, Summary: b.Summary}
	}
	return out
}

// RenderFigure2 prints the timeline percentiles.
func RenderFigure2(w *strings.Builder, bins []Figure2Bin) {
	fmt.Fprintf(w, "Figure 2: RTT towards the European anchors over time [ms, 6h bins]\n")
	fmt.Fprintf(w, "  %10s %6s %6s %6s %6s %6s %6s\n", "t", "min", "p5", "p25", "p50", "p75", "p95")
	for _, b := range bins {
		fmt.Fprintf(w, "  %9.1fd %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			b.Start.Hours()/24, b.Min, b.P5, b.P25, b.P50, b.P75, b.P95)
	}
}

// Figure3 summarizes the RTT-under-load CDFs.
type Figure3 struct {
	Download, Upload stats.Summary
	DownCDF, UpCDF   []stats.Point
}

// MakeFigure3 builds the under-load RTT figure from the two campaigns.
func MakeFigure3(down, up *H3Campaign) Figure3 {
	d := down.RTTSamplesMs()
	u := up.RTTSamplesMs()
	return Figure3{
		Download: stats.Summarize(d),
		Upload:   stats.Summarize(u),
		DownCDF:  stats.NewECDF(d).Points(40),
		UpCDF:    stats.NewECDF(u).Points(40),
	}
}

// RenderFigure3 prints the distribution summary and CDF series.
func RenderFigure3(w *strings.Builder, f Figure3) {
	fmt.Fprintf(w, "Figure 3: RTT of acknowledged packets during H3 transfers [ms]\n")
	fmt.Fprintf(w, "  download: n=%d p50=%.0f p95=%.0f p99=%.0f\n", f.Download.N, f.Download.P50, f.Download.P95, f.Download.P99)
	fmt.Fprintf(w, "  upload:   n=%d p50=%.0f p95=%.0f p99=%.0f\n", f.Upload.N, f.Upload.P50, f.Upload.P95, f.Upload.P99)
	fmt.Fprintf(w, "  download CDF: %s\n", cdfString(f.DownCDF))
	fmt.Fprintf(w, "  upload CDF:   %s\n", cdfString(f.UpCDF))
}

func cdfString(pts []stats.Point) string {
	var b strings.Builder
	for i, p := range pts {
		if i%8 == 0 && i > 0 {
			b.WriteString("\n                ")
		}
		fmt.Fprintf(&b, "(%.0f,%.2f) ", p.X, p.Y)
	}
	return b.String()
}

// Table2 holds the QUIC loss ratios.
type Table2 struct {
	H3Down, H3Up, MsgDown, MsgUp float64
}

// MakeTable2 assembles the loss table.
func MakeTable2(h3Down, h3Up *H3Campaign, msgDown, msgUp *MsgCampaign) Table2 {
	return Table2{
		H3Down:  h3Down.LossRatio(),
		H3Up:    h3Up.LossRatio(),
		MsgDown: msgDown.LossRatio(),
		MsgUp:   msgUp.LossRatio(),
	}
}

// RenderTable2 prints the loss ratios in the paper's column order.
func RenderTable2(w *strings.Builder, t Table2) {
	fmt.Fprintf(w, "Table 2: QUIC packet loss ratios\n")
	fmt.Fprintf(w, "  %-8s %-8s %-12s %-12s\n", "H3 dn", "H3 up", "Messages dn", "Messages up")
	fmt.Fprintf(w, "  %-8s %-8s %-12s %-12s\n",
		pct(t.H3Down), pct(t.H3Up), pct(t.MsgDown), pct(t.MsgUp))
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Figure4 holds a loss-burst-length CDF.
type Figure4 struct {
	Label            string
	Download, Upload []stats.Point
	// MultiPacketFracDown is the fraction of download loss events longer
	// than one packet (the paper's ">75%" observation).
	MultiPacketFracDown float64
	SinglePacketFracUp  float64
}

// MakeFigure4 builds the burst CDFs for one workload.
func MakeFigure4(label string, down, up []int) Figure4 {
	f := Figure4{Label: label}
	dn := stats.CountBursts(down)
	upE := stats.CountBursts(up)
	f.Download = dn.Points(20)
	f.Upload = upE.Points(20)
	if dn.N() > 0 {
		f.MultiPacketFracDown = 1 - dn.At(1)
	}
	if upE.N() > 0 {
		f.SinglePacketFracUp = upE.At(1)
	}
	return f
}

// RenderFigure4 prints the burst-length CDFs.
func RenderFigure4(w *strings.Builder, f Figure4) {
	fmt.Fprintf(w, "Figure 4 (%s): loss burst length CDF\n", f.Label)
	fmt.Fprintf(w, "  download: %s\n", cdfString(f.Download))
	fmt.Fprintf(w, "  upload:   %s\n", cdfString(f.Upload))
	fmt.Fprintf(w, "  download multi-packet loss events: %.0f%%; upload single-packet: %.0f%%\n",
		100*f.MultiPacketFracDown, 100*f.SinglePacketFracUp)
}

// Figure5 summarizes the throughput distributions.
type Figure5 struct {
	StarlinkDown, StarlinkUp stats.Summary
	SatComDown, SatComUp     stats.Summary
	H3Down, H3Up             stats.Summary
}

// MakeFigure5 assembles the throughput figure.
func MakeFigure5(starlink, satcom []measure.SpeedtestResult, h3Down, h3Up *H3Campaign) Figure5 {
	var sd, su, cd, cu []float64
	for _, r := range starlink {
		sd = append(sd, r.DownloadMbps)
		su = append(su, r.UploadMbps)
	}
	for _, r := range satcom {
		cd = append(cd, r.DownloadMbps)
		cu = append(cu, r.UploadMbps)
	}
	return Figure5{
		StarlinkDown: stats.Summarize(sd),
		StarlinkUp:   stats.Summarize(su),
		SatComDown:   stats.Summarize(cd),
		SatComUp:     stats.Summarize(cu),
		H3Down:       stats.Summarize(h3Down.Goodputs()),
		H3Up:         stats.Summarize(h3Up.Goodputs()),
	}
}

// RenderFigure5 prints the three distributions per direction.
func RenderFigure5(w *strings.Builder, f Figure5) {
	fmt.Fprintf(w, "Figure 5: throughput distributions [Mbit/s]\n")
	fmt.Fprintf(w, "  %-22s %6s %6s %6s %6s %6s\n", "series", "p5", "p25", "p50", "p75", "max")
	row := func(name string, s stats.Summary) {
		fmt.Fprintf(w, "  %-22s %6.1f %6.1f %6.1f %6.1f %6.1f\n", name, s.P5, s.P25, s.P50, s.P75, s.Max)
	}
	row("starlink ookla down", f.StarlinkDown)
	row("starlink h3 down", f.H3Down)
	row("satcom ookla down", f.SatComDown)
	row("starlink ookla up", f.StarlinkUp)
	row("starlink h3 up", f.H3Up)
	row("satcom ookla up", f.SatComUp)
}

// Figure6 holds the web QoE ECDFs.
type Figure6 struct {
	OnLoad     map[string][]stats.Point
	SpeedIndex map[string][]stats.Point
	Medians    map[string][2]float64 // tech -> (onLoad, SI) medians seconds
	Setup      map[string]float64    // tech -> mean connection setup ms
}

// MakeFigure6 assembles the QoE figure from per-tech visits.
func MakeFigure6(visits map[string][]web.VisitResult) Figure6 {
	f := Figure6{
		OnLoad:     map[string][]stats.Point{},
		SpeedIndex: map[string][]stats.Point{},
		Medians:    map[string][2]float64{},
		Setup:      map[string]float64{},
	}
	// Iterate techs in sorted order: the per-tech stats are independent,
	// but a fixed order keeps any future cross-tech accumulation (and
	// float summation inside it) deterministic by construction.
	techs := make([]string, 0, len(visits))
	for tech := range visits {
		techs = append(techs, tech)
	}
	sort.Strings(techs)
	for _, tech := range techs {
		vs := visits[tech]
		var ol, si []float64
		for _, v := range vs {
			if v.Failed {
				continue
			}
			ol = append(ol, v.OnLoad.Seconds())
			si = append(si, v.SpeedIndex.Seconds())
		}
		f.OnLoad[tech] = stats.NewECDF(ol).Points(30)
		f.SpeedIndex[tech] = stats.NewECDF(si).Points(30)
		f.Medians[tech] = [2]float64{stats.Median(ol), stats.Median(si)}
		f.Setup[tech] = ConnSetupStats(vs).Mean
	}
	return f
}

// RenderFigure6 prints the QoE ECDF medians and series.
func RenderFigure6(w *strings.Builder, f Figure6) {
	fmt.Fprintf(w, "Figure 6: web QoE\n")
	techs := make([]string, 0, len(f.Medians))
	for t := range f.Medians {
		techs = append(techs, t)
	}
	sort.Strings(techs)
	for _, t := range techs {
		m := f.Medians[t]
		fmt.Fprintf(w, "  %-9s onLoad med=%.2fs  SpeedIndex med=%.2fs  conn setup mean=%.0fms\n",
			t, m[0], m[1], f.Setup[t])
	}
	for _, t := range techs {
		fmt.Fprintf(w, "  onLoad CDF %-9s: %s\n", t, cdfString(f.OnLoad[t]))
	}
}

// RenderMiddleboxAudit prints the §3.5 findings.
func RenderMiddleboxAudit(w *strings.Builder, tech string, a MiddleboxAudit) {
	fmt.Fprintf(w, "Middleboxes (%s):\n", tech)
	for _, h := range a.Hops {
		if h.Timeout {
			fmt.Fprintf(w, "  hop %2d: *\n", h.TTL)
			continue
		}
		fmt.Fprintf(w, "  hop %2d: %-16s rtt=%s", h.TTL, h.Addr, h.RTT.Round(100*time.Microsecond))
		for _, ch := range h.Changes {
			fmt.Fprintf(w, "  [%s %s->%s]", ch.Field, ch.Original, ch.Observed)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  NAT levels detected: %d\n", a.NATLevels)
	if a.PEP.ProxyDetected() {
		fmt.Fprintf(w, "  PEP: detected (SYN-ACK at TTL %d of %d)\n", a.PEP.SynAckAtTTL, a.PEP.PathHops)
	} else {
		fmt.Fprintf(w, "  PEP: none (handshake completes at the destination, TTL %d)\n", a.PEP.SynAckAtTTL)
	}
}

// RenderWehe prints the traffic-discrimination verdicts.
func RenderWehe(w *strings.Builder, tech string, ds []wehe.Detection) {
	fmt.Fprintf(w, "Traffic discrimination (%s, Wehe %d services):\n", tech, len(ds))
	diff := 0
	for _, d := range ds {
		fmt.Fprintf(w, "  %s\n", d)
		if d.Differentiated {
			diff++
		}
	}
	fmt.Fprintf(w, "  => %d/%d services differentiated\n", diff, len(ds))
}

// LossDurations renders the §3.2 loss-event duration percentiles.
func LossDurations(w *strings.Builder, label string, durationsSec []float64) {
	s := stats.Summarize(durationsSec)
	fmt.Fprintf(w, "Loss event durations (%s): n=%d p50=%s p75=%s p90=%s p95=%s p99=%s\n",
		label, s.N, secStr(s.P50), secStr(s.P75), secStr(s.P90), secStr(s.P95), secStr(s.P99))
}

func secStr(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
