package core

import (
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/measure"
	"starlinkperf/internal/trace"
)

// fabricate small campaign objects so the renderers can be exercised
// without running expensive experiments.

func fabH3(down bool) *H3Campaign {
	c := &H3Campaign{Download: down}
	rec := H3Record{}
	rec.Result.Completed = true
	rec.Result.GoodputMbps = 123
	rec.Result.RTTs = &trace.RTTRecorder{}
	for i := 0; i < 50; i++ {
		rec.Result.RTTs.Samples = append(rec.Result.RTTs.Samples,
			trace.RTTSample{RTT: time.Duration(90+i) * time.Millisecond})
	}
	rec.Loss = trace.LossReport{
		PacketsSent: 1000, PacketsReceived: 985, PacketsLost: 15,
		Events: []trace.LossEvent{{Burst: 3}, {Burst: 1}, {Burst: 11}},
	}
	c.Records = append(c.Records, rec)
	return c
}

func fabMsg() *MsgCampaign {
	return &MsgCampaign{
		RTTsMs: []float64{48, 50, 52, 60, 70},
		sent:   10000, lost: 40,
		bursts: []int{1, 2, 40},
		durs:   []float64{0.0001, 0.1},
	}
}

func TestFigure3AndTable2Renderers(t *testing.T) {
	down, up := fabH3(true), fabH3(false)
	f3 := MakeFigure3(down, up)
	if f3.Download.N != 50 || f3.Upload.N != 50 {
		t.Fatalf("sample counts: %d/%d", f3.Download.N, f3.Upload.N)
	}
	var b strings.Builder
	RenderFigure3(&b, f3)
	t2 := MakeTable2(down, up, fabMsg(), fabMsg())
	RenderTable2(&b, t2)
	if t2.H3Down != 0.015 {
		t.Errorf("loss ratio = %v, want 0.015", t2.H3Down)
	}
	if !strings.Contains(b.String(), "1.50%") {
		t.Errorf("table output missing the loss percentage:\n%s", b.String())
	}
}

func TestFigure4Renderer(t *testing.T) {
	f := MakeFigure4("H3 transfers", []int{2, 3, 4, 1}, []int{1, 1, 1, 5})
	if f.MultiPacketFracDown != 0.75 {
		t.Errorf("multi-packet fraction = %v, want 0.75", f.MultiPacketFracDown)
	}
	if f.SinglePacketFracUp != 0.75 {
		t.Errorf("single-packet fraction = %v, want 0.75", f.SinglePacketFracUp)
	}
	var b strings.Builder
	RenderFigure4(&b, f)
	if !strings.Contains(b.String(), "H3 transfers") {
		t.Error("label missing")
	}
}

func TestFigure5Renderer(t *testing.T) {
	sl := []measure.SpeedtestResult{{DownloadMbps: 180, UploadMbps: 18}, {DownloadMbps: 160, UploadMbps: 16}}
	sc := []measure.SpeedtestResult{{DownloadMbps: 84, UploadMbps: 4.5}}
	f := MakeFigure5(sl, sc, fabH3(true), fabH3(false))
	if f.StarlinkDown.P50 != 170 {
		t.Errorf("starlink down median = %v", f.StarlinkDown.P50)
	}
	var b strings.Builder
	RenderFigure5(&b, f)
	for _, want := range []string{"starlink ookla down", "satcom ookla up", "starlink h3 down"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("figure 5 output missing %q", want)
		}
	}
}

func TestLossDurationsRenderer(t *testing.T) {
	var b strings.Builder
	LossDurations(&b, "test", []float64{0.000049, 0.0015, 0.0075})
	out := b.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "n=3") {
		t.Errorf("output: %s", out)
	}
}
