package core

import (
	"runtime"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/obs"
)

// RunFleetScenario runs the planet-scale terminal-fleet campaign under
// the shared Options semantics: opts.Seed overrides the config seed,
// opts.Workers resolves the reassignment parallelism (zero means
// GOMAXPROCS), and when opts.Obs is set the fleet's per-region metrics
// and epoch trace register under the "fleet/0000" source so the
// collector's sorted exports stay invariant to worker count. Worker
// count never changes the result — the fleet equivalence suite holds
// the scenario to bit-identical outputs for any parallelism.
func RunFleetScenario(cfg fleet.Config, opts Options) *fleet.Result {
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.Workers <= 0 {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg.Workers = w
	}
	if opts.Obs != nil {
		sink := obs.NewSink(0)
		cfg.Obs = sink
		opts.Obs.Add("fleet/0000", sink)
	}
	return fleet.Run(cfg)
}
