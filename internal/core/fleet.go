package core

import (
	"runtime"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/obs"
)

// RunFleetScenario runs the planet-scale terminal-fleet campaign under
// the shared Options semantics: opts.Seed overrides the config seed,
// opts.Workers resolves the reassignment parallelism (zero means
// GOMAXPROCS), and when opts.Obs is set the fleet's per-region metrics
// and epoch trace register under the "fleet/0000" source so the
// collector's sorted exports stay invariant to worker count. Worker
// count never changes the result — the fleet equivalence suite holds
// the scenario to bit-identical outputs for any parallelism.
func RunFleetScenario(cfg fleet.Config, opts Options) *fleet.Result {
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.Workers <= 0 {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg.Workers = w
	}
	if opts.Obs != nil {
		sink := obs.NewSink(0)
		cfg.Obs = sink
		opts.Obs.Add("fleet/0000", sink)
	}
	return fleet.Run(cfg)
}

// RunFleetTraffic runs the packet-level fleet scenario — every terminal
// probing its serving gateway through the emulated bent-pipe network —
// under the shared Options semantics. This is the conservative-PDES entry
// point: the scenario graph is partitioned spatially and executed by
// opts.ScenarioWorkers goroutines in barrier windows, with outputs
// bit-identical for any worker count (the fleet equivalence suite and
// ci.sh byte-diff enforce it). opts.Obs receives one source per
// partition plus the embedded fleet campaign's sink, all named through
// obs.ShardSource so exports stay worker-invariant.
func RunFleetTraffic(cfg fleet.TrafficConfig, opts Options) *fleet.TrafficResult {
	if opts.Seed != 0 {
		cfg.Fleet.Seed = opts.Seed
	}
	if cfg.Fleet.Workers <= 0 {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg.Fleet.Workers = w
	}
	if cfg.ScenarioWorkers <= 0 {
		w := opts.ScenarioWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg.ScenarioWorkers = w
	}
	if cfg.Fidelity == fleet.FidelityAuto {
		cfg.Fidelity = opts.Fidelity
	}
	if opts.Obs != nil {
		cfg.Collector = opts.Obs
	}
	return fleet.RunTraffic(cfg)
}
