package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/obs"
)

// TestFleetScenarioWorkerInvariance holds RunFleetScenario to the same
// worker-count contract as the campaign sweep: results AND observability
// exports are byte-identical for any parallelism.
func TestFleetScenarioWorkerInvariance(t *testing.T) {
	runAt := func(workers int) (*fleet.Result, []byte, []byte) {
		col := obs.NewCollector()
		cfg := fleet.Config{Terminals: 1500, Horizon: 10 * time.Minute}
		res := RunFleetScenario(cfg, Options{Workers: workers, Seed: 11, Obs: col})
		return res, col.ExportMetricsJSON(), col.ExportTraceBinary()
	}
	r1, m1, t1 := runAt(1)
	r4, m4, t4 := runAt(4)
	if !reflect.DeepEqual(r1, r4) {
		t.Errorf("results differ between 1 and 4 workers:\n1: %+v\n4: %+v", r1, r4)
	}
	if !bytes.Equal(m1, m4) {
		t.Error("metrics exports differ between 1 and 4 workers")
	}
	if !bytes.Equal(t1, t4) {
		t.Error("trace exports differ between 1 and 4 workers")
	}
	if r1.Terminals != 1500 || r1.Epochs != 40 {
		t.Errorf("unexpected campaign shape: %+v", r1)
	}
}

// TestFleetTrafficScenarioWorkerInvariance holds RunFleetTraffic — the
// conservative-PDES packet scenario — to the same contract: results and
// observability exports are byte-identical for any ScenarioWorkers value.
func TestFleetTrafficScenarioWorkerInvariance(t *testing.T) {
	runAt := func(workers int) (*fleet.TrafficResult, []byte, []byte) {
		col := obs.NewCollector()
		cfg := fleet.TrafficConfig{
			Fleet:      fleet.Config{Terminals: 400, Horizon: 4 * time.Second, Epoch: 2 * time.Second},
			Partitions: 4,
		}
		res := RunFleetTraffic(cfg, Options{Workers: 1, ScenarioWorkers: workers, Seed: 11, Obs: col})
		return res, col.ExportMetricsJSON(), col.ExportTraceBinary()
	}
	r1, m1, t1 := runAt(1)
	r8, m8, t8 := runAt(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("results differ between 1 and 8 scenario workers:\n1: %+v\n8: %+v", r1, r8)
	}
	if !bytes.Equal(m1, m8) {
		t.Error("metrics exports differ between 1 and 8 scenario workers")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("trace exports differ between 1 and 8 scenario workers")
	}
	if r1.Terminals != 400 || r1.Partitions != 4 || r1.ProbesRecv == 0 {
		t.Errorf("unexpected scenario shape: %+v", r1)
	}
}

// TestFleetScenarioSeedOverride: opts.Seed wins over the config seed,
// matching the sweep runners.
func TestFleetScenarioSeedOverride(t *testing.T) {
	cfg := fleet.Config{Seed: 3, Terminals: 400, Horizon: 5 * time.Minute}
	a := RunFleetScenario(cfg, Options{Seed: 9, Workers: 1})
	b := RunFleetScenario(fleet.Config{Seed: 9, Terminals: 400, Horizon: 5 * time.Minute}, Options{Workers: 1})
	if !reflect.DeepEqual(a, b) {
		t.Error("opts.Seed did not override cfg.Seed")
	}
	c := RunFleetScenario(cfg, Options{Workers: 1})
	if reflect.DeepEqual(a, c) {
		t.Error("seed override had no effect")
	}
}
