package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/web"
)

// These tests pin the observability layer's two contracts: its exports
// are a pure function of (config, seed) — byte-identical across repeated
// runs and across worker counts — and enabling it never perturbs the
// simulation itself.

func latencyWithObs(workers int) (*LatencyData, *obs.Collector) {
	col := obs.NewCollector()
	lat := RunLatencyCampaignParallel(DefaultConfig(), 3, 30*time.Minute, 5*time.Minute,
		Options{Workers: workers, Obs: col})
	return lat, col
}

func TestObsExportsByteIdenticalAcrossRunsAndWorkers(t *testing.T) {
	_, one := latencyWithObs(1)
	_, par := latencyWithObs(raceWorkers)
	_, again := latencyWithObs(raceWorkers)

	metrics := one.ExportMetricsJSON()
	traceJSONL := one.ExportTraceJSONL()
	traceBin := one.ExportTraceBinary()
	if len(metrics) == 0 || len(traceJSONL) == 0 || len(traceBin) == 0 {
		t.Fatalf("empty exports: metrics=%d traceJSONL=%d traceBin=%d bytes",
			len(metrics), len(traceJSONL), len(traceBin))
	}
	for name, other := range map[string]*obs.Collector{"workers": par, "repeat": again} {
		if !bytes.Equal(metrics, other.ExportMetricsJSON()) {
			t.Errorf("%s: metrics JSON differs from the 1-worker run", name)
		}
		if !bytes.Equal(traceJSONL, other.ExportTraceJSONL()) {
			t.Errorf("%s: trace JSONL differs from the 1-worker run", name)
		}
		if !bytes.Equal(traceBin, other.ExportTraceBinary()) {
			t.Errorf("%s: binary trace differs from the 1-worker run", name)
		}
	}
	// The campaign must have actually produced events: probes were sent
	// and the link counters saw them.
	snap := one.Snapshot()
	if snap["probe.echo_sent"] == 0 || snap["net.link.sent"] == 0 {
		t.Errorf("campaign left no metric footprint: %v", snap)
	}
}

// TestObsDoesNotPerturbCampaign is the "one branch when disabled, zero
// behaviour change when enabled" guarantee: the rendered figures of an
// instrumented run match an uninstrumented one byte for byte.
func TestObsDoesNotPerturbCampaign(t *testing.T) {
	render := func(col *obs.Collector) string {
		lat := RunLatencyCampaignParallel(DefaultConfig(), 2, 30*time.Minute, 5*time.Minute,
			Options{Workers: 1, Obs: col})
		var out strings.Builder
		tb := NewTestbed(DefaultConfig()) // anchor order only
		RenderFigure1(&out, Figure1(lat, tb.Anchors))
		RenderFigure2(&out, Figure2(lat))
		return out.String()
	}
	plain := render(nil)
	observed := render(obs.NewCollector())
	if plain != observed {
		t.Errorf("enabling observability changed campaign output:\n--- without\n%s\n--- with\n%s",
			plain, observed)
	}
}

// TestEuropeanSeriesStableAcrossConstructions is the regression test for
// the map-iteration-order bug: EuropeanSeries merged d.PerAnchor in map
// range order, so equal LatencyData values could yield differently
// ordered series. Fifty constructions with rotated insertion order must
// all merge identically.
func TestEuropeanSeriesStableAcrossConstructions(t *testing.T) {
	anchors := []struct {
		name, region string
	}{
		{"ams1", "NL"}, {"bru1", "BE"}, {"fra1", "DE"}, {"fra2", "DE"},
		{"lon1", "UK"}, {"par1", "FR"}, {"ber1", "DE"}, {"rot1", "NL"},
	}
	build := func(rot int) *LatencyData {
		d := &LatencyData{
			PerAnchor: make(map[string]*stats.Series),
			Regions:   make(map[string]string),
		}
		for i := range anchors {
			a := anchors[(i+rot)%len(anchors)]
			ser := &stats.Series{}
			for s := 0; s < 5; s++ {
				// Deliberately identical timestamps across anchors: ties
				// are where range-order leaks into the merged series.
				ser.Add(time.Duration(s)*time.Minute, float64(len(a.name))+float64(s))
			}
			d.PerAnchor[a.name] = ser
			d.Regions[a.name] = a.region
		}
		return d
	}
	want := build(0).EuropeanSeries().Samples()
	if len(want) != 6*5 {
		t.Fatalf("merged %d samples, want 30 (6 EU anchors x 5)", len(want))
	}
	for i := 1; i < 50; i++ {
		got := build(i).EuropeanSeries().Samples()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("construction %d merged a different series", i)
		}
	}
}

// TestMakeFigure6OrderStable does the same for the QoE figure assembly:
// equal visit maps must render identically no matter the map's internal
// order.
func TestMakeFigure6OrderStable(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	vs := tb.runWebVisits(TechWired, 0, 2, time.Second)
	if len(vs) == 0 {
		t.Fatal("no web visits completed")
	}
	render := func() string {
		f := MakeFigure6(map[string][]web.VisitResult{"starlink": vs, "wired": vs, "satcom": vs})
		var out strings.Builder
		RenderFigure6(&out, f)
		return out.String()
	}
	want := render()
	for i := 0; i < 20; i++ {
		if got := render(); got != want {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, want)
		}
	}
}
