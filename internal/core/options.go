package core

import (
	"runtime"

	"starlinkperf/internal/fleet"
	"starlinkperf/internal/obs"
)

// Options is the shared knob set of the parallel campaign runners: every
// cmd exposes the same worker-count, seed and progress semantics by
// passing one of these through to the Run*Parallel variants.
type Options struct {
	// Workers caps the number of goroutines executing shards. Zero or
	// negative means GOMAXPROCS. The value never changes results, only
	// wall-clock time: shard seeds and merge order depend solely on the
	// shard index.
	Workers int
	// Seed is the campaign base seed from which every shard derives its
	// own (see sim.DeriveSeed). Zero falls back to the Config's Seed so
	// callers that already thread a seed through Config need not set it
	// twice.
	Seed uint64
	// Progress, when non-nil, is invoked after each shard completes with
	// the number of finished shards and the total. Calls are serialized;
	// done is strictly increasing from 1 to total.
	Progress func(done, total int)
	// Obs, when non-nil, turns on observability for every shard testbed
	// and collects the per-shard sinks. Shards register under
	// zero-padded "<family>/<shard>" source names, so the collector's
	// sorted exports are invariant to worker count and completion order.
	Obs *obs.Collector
	// ScenarioWorkers caps the goroutines driving PDES windows *inside*
	// one scenario (RunFleetTraffic), as opposed to Workers, which
	// parallelizes *across* independent shards. Zero or negative means
	// GOMAXPROCS. Like Workers, it never changes results — the
	// conservative engine's output is bit-identical for any value.
	ScenarioWorkers int
	// Fidelity selects the emulation fidelity for scenarios that support
	// link tiers and analytic fast-forward (RunFleetTraffic). The zero
	// value is fleet.FidelityAuto. Like the worker knobs, it never
	// changes results, only wall clock — the fidelity equivalence suite
	// and ci.sh's byte-diff hold every mode bit-identical.
	Fidelity fleet.FidelityMode
}

// DefaultOptions returns the options every cmd starts from: all
// processors, seed taken from the Config.
func DefaultOptions() Options { return Options{} }

// workerCount resolves Workers, clamped to [1, n] for n shards.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// baseSeed resolves the campaign seed against a Config.
func (o Options) baseSeed(cfg Config) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return cfg.Seed
}
