package core

import (
	"sync"
	"sync/atomic"
	"time"

	"starlinkperf/internal/measure"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/web"
)

// This file is the parallel campaign runner: it shards embarrassingly
// parallel campaign repetitions over a worker pool. Every shard builds its
// own Testbed from a seed derived per shard index (sim.DeriveSeed), so
// shards share no state — not even an RNG — and results are written to the
// shard's own slot and merged in shard order. Both properties together
// make the output a pure function of (config, seed, shard count):
// bit-for-bit identical whether one worker runs all shards or GOMAXPROCS
// workers race through them.

// forEachShard runs body(i) for every i in [0,n) on opts.Workers
// goroutines and reports per-shard completion through opts.Progress.
// With one worker the shards run inline on the caller's goroutine.
func forEachShard(opts Options, n int, body func(shard int)) {
	if n <= 0 {
		return
	}
	var mu sync.Mutex
	completed := 0
	finished := func() {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		completed++
		opts.Progress(completed, n)
	}
	workers := opts.workerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
			finished()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
				finished()
			}
		}()
	}
	wg.Wait()
}

// RunShards executes n independent shards of the named family and returns
// their results in shard order. Shard i receives the deterministic seed
// sim.DeriveSeed(base, family, i); the worker count in opts changes only
// wall-clock time, never the returned slice.
func RunShards[T any](opts Options, base uint64, family string, n int, run func(shard int, seed uint64) T) []T {
	out := make([]T, n)
	forEachShard(opts, n, func(i int) {
		out[i] = run(i, sim.DeriveSeed(base, family, i))
	})
	return out
}

// shardConfig is cfg reseeded for one shard.
func shardConfig(cfg Config, seed uint64) Config {
	cfg.Seed = seed
	return cfg
}

// shardTestbed builds the testbed for one shard of the named family.
// When opts carries a collector, the shard's config enables
// observability and its sink registers as "<family>/<shard>" with a
// zero-padded index, so lexicographic source order equals shard order —
// the property that makes the collector's exports worker-invariant.
func shardTestbed(cfg Config, seed uint64, opts Options, family string, shard int) *Testbed {
	cfg = shardConfig(cfg, seed)
	if opts.Obs != nil {
		cfg.Obs.Enabled = true
	}
	tb := NewTestbed(cfg)
	if opts.Obs != nil {
		opts.Obs.Add(obs.ShardSource(family, shard), tb.Obs)
	}
	return tb
}

// RunLatencyCampaignParallel runs reps independent latency campaigns of
// dur each and merges them into one LatencyData whose timeline
// concatenates the repetitions (shard i's samples are offset by i*dur).
func RunLatencyCampaignParallel(cfg Config, reps int, dur, interval time.Duration, opts Options) *LatencyData {
	shards := RunShards(opts, opts.baseSeed(cfg), "latency", reps, func(i int, seed uint64) *LatencyData {
		tb := shardTestbed(cfg, seed, opts, "latency", i)
		return tb.RunLatencyCampaign(dur, interval)
	})
	return MergeLatency(shards, dur)
}

// MergeLatency concatenates shard campaign results in shard order. Each
// shard's samples are shifted by shard*window so the merged data reads as
// one long campaign; counters are summed.
func MergeLatency(shards []*LatencyData, window time.Duration) *LatencyData {
	out := &LatencyData{
		PerAnchor: make(map[string]*stats.Series),
		Regions:   make(map[string]string),
	}
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		out.Sent += sh.Sent
		out.Lost += sh.Lost
		offset := time.Duration(i) * window
		for name, ser := range sh.PerAnchor {
			out.Regions[name] = sh.Regions[name]
			dst := out.PerAnchor[name]
			if dst == nil {
				dst = &stats.Series{}
				out.PerAnchor[name] = dst
			}
			for _, smp := range ser.Samples() {
				dst.Add(smp.At+offset, smp.Value)
			}
		}
	}
	return out
}

// Shard sizes of the repetition-based campaigns: small enough that the
// pool load-balances, large enough to amortize building a Testbed per
// shard. They are constants (never worker-derived) so the shard plan — and
// therefore the output — is independent of the worker count.
const (
	speedtestShardTests = 2
	webShardVisits      = 10
	h3ShardTransfers    = 1
	msgShardSessions    = 2
)

// shardCounts splits n repetitions into fixed-size shards and returns the
// per-shard counts.
func shardCounts(n, per int) []int {
	if n <= 0 {
		return nil
	}
	counts := make([]int, 0, (n+per-1)/per)
	for n > 0 {
		c := per
		if n < c {
			c = n
		}
		counts = append(counts, c)
		n -= c
	}
	return counts
}

// RunSpeedtestCampaignParallel shards n speedtests from the vantage point
// over the worker pool and returns the results in shard order.
func RunSpeedtestCampaignParallel(cfg Config, t Tech, n int, gap time.Duration, opts Options) []measure.SpeedtestResult {
	counts := shardCounts(n, speedtestShardTests)
	shards := RunShards(opts, opts.baseSeed(cfg), "speedtest/"+t.String(), len(counts), func(i int, seed uint64) []measure.SpeedtestResult {
		tb := shardTestbed(cfg, seed, opts, "speedtest/"+t.String(), i)
		return tb.RunSpeedtestCampaign(t, counts[i], gap)
	})
	return flatten(shards)
}

// RunWebCampaignParallel shards nVisits page visits from the vantage point
// over the worker pool. Every shard walks the same global site cycle the
// sequential campaign would (shard i starts at visit offset i*shardSize),
// so the visited-site sequence matches RunWebCampaign.
func RunWebCampaignParallel(cfg Config, t Tech, nVisits int, gap time.Duration, opts Options) []web.VisitResult {
	counts := shardCounts(nVisits, webShardVisits)
	shards := RunShards(opts, opts.baseSeed(cfg), "web/"+t.String(), len(counts), func(i int, seed uint64) []web.VisitResult {
		tb := shardTestbed(cfg, seed, opts, "web/"+t.String(), i)
		return tb.runWebVisits(t, i*webShardVisits, counts[i], gap)
	})
	return flatten(shards)
}

// RunH3CampaignParallel shards n bulk transfers over the worker pool and
// merges the per-shard campaigns in shard order.
func RunH3CampaignParallel(cfg Config, n, size int, download bool, gap time.Duration, opts Options) *H3Campaign {
	counts := shardCounts(n, h3ShardTransfers)
	shards := RunShards(opts, opts.baseSeed(cfg), "h3/"+dirName(download), len(counts), func(i int, seed uint64) *H3Campaign {
		tb := shardTestbed(cfg, seed, opts, "h3/"+dirName(download), i)
		return tb.RunH3Campaign(counts[i], size, download, gap)
	})
	out := &H3Campaign{Download: download}
	for _, sh := range shards {
		out.Records = append(out.Records, sh.Records...)
	}
	return out
}

// RunMessagesCampaignParallel shards n message sessions over the worker
// pool and merges the per-shard campaigns in shard order.
func RunMessagesCampaignParallel(cfg Config, n int, sessionDur time.Duration, download bool, opts Options) *MsgCampaign {
	counts := shardCounts(n, msgShardSessions)
	shards := RunShards(opts, opts.baseSeed(cfg), "messages/"+dirName(download), len(counts), func(i int, seed uint64) *MsgCampaign {
		tb := shardTestbed(cfg, seed, opts, "messages/"+dirName(download), i)
		return tb.RunMessagesCampaign(counts[i], sessionDur, download)
	})
	out := &MsgCampaign{Download: download}
	for _, sh := range shards {
		out.RTTsMs = append(out.RTTsMs, sh.RTTsMs...)
		out.sent += sh.sent
		out.lost += sh.lost
		out.bursts = append(out.bursts, sh.bursts...)
		out.durs = append(out.durs, sh.durs...)
	}
	return out
}

func dirName(download bool) string {
	if download {
		return "down"
	}
	return "up"
}

func flatten[T any](shards [][]T) []T {
	var out []T
	for _, sh := range shards {
		out = append(out, sh...)
	}
	return out
}

// SweepJob is one whole-campaign unit of a sweep: a named configuration
// plus the campaign body to run against a Testbed built from it. The body
// runs on its own testbed (reseeded per job), so jobs may execute
// concurrently.
type SweepJob struct {
	Name string
	Cfg  Config
	Run  func(tb *Testbed) any
}

// SweepResult pairs a job name with what its Run returned.
type SweepResult struct {
	Name  string
	Seed  uint64
	Value any
}

// RunSweep executes whole-campaign jobs (different vantage points, config
// ablations, audit passes) across the worker pool and returns their
// results in job order. Each job's testbed is seeded from the job's own
// name and index, so adding a job never perturbs the others.
func RunSweep(jobs []SweepJob, opts Options) []SweepResult {
	out := make([]SweepResult, len(jobs))
	forEachShard(opts, len(jobs), func(i int) {
		job := jobs[i]
		seed := sim.DeriveSeed(opts.baseSeed(job.Cfg), "sweep/"+job.Name, i)
		tb := shardTestbed(job.Cfg, seed, opts, "sweep/"+job.Name, i)
		out[i] = SweepResult{Name: job.Name, Seed: seed, Value: job.Run(tb)}
	})
	return out
}
