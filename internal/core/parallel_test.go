package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/measure"
)

// The tests in this file pin down the two contracts of the parallel
// runner: (1) the same seed always reproduces the same campaign
// bit-for-bit, and (2) the worker count never changes results, only
// wall-clock time. They run with explicit Workers > 1 so `go test -race`
// exercises the concurrent path even on a single-CPU machine.

const raceWorkers = 4

// quickConfig returns DefaultConfig with a shortened speedtest so the
// invariance tests stay fast under the race detector.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Speedtest = measure.DefaultSpeedtestConfig()
	cfg.Speedtest.Warmup = 500 * time.Millisecond
	cfg.Speedtest.Window = 2 * time.Second
	return cfg
}

func TestRunShardsOrderSeedsProgress(t *testing.T) {
	opts := Options{Workers: raceWorkers, Seed: 7}
	var dones []int
	opts.Progress = func(done, total int) {
		if total != 6 {
			t.Errorf("progress total = %d, want 6", total)
		}
		dones = append(dones, done)
	}
	type shardInfo struct {
		Shard int
		Seed  uint64
	}
	got := RunShards(opts, 7, "fam", 6, func(shard int, seed uint64) shardInfo {
		return shardInfo{Shard: shard, Seed: seed}
	})
	if len(got) != 6 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[uint64]bool{}
	for i, g := range got {
		if g.Shard != i {
			t.Errorf("slot %d holds shard %d: results must merge in shard order", i, g.Shard)
		}
		if seen[g.Seed] {
			t.Errorf("duplicate shard seed %#x", g.Seed)
		}
		seen[g.Seed] = true
	}
	// Progress is serialized and strictly increasing 1..total.
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress sequence %v, want 1..6", dones)
		}
	}
	// Seeds are a pure function of (base, family, index): a second run
	// yields the same slice.
	again := RunShards(Options{Workers: 1, Seed: 7}, 7, "fam", 6, func(shard int, seed uint64) shardInfo {
		return shardInfo{Shard: shard, Seed: seed}
	})
	if !reflect.DeepEqual(got, again) {
		t.Error("shard seeds differ between runs with the same base seed")
	}
}

// TestGoldenDeterminismSameSeed is the golden determinism check: two
// testbeds built from the same DefaultConfig produce byte-identical
// rendered figure output.
func TestGoldenDeterminismSameSeed(t *testing.T) {
	render := func() string {
		tb := NewTestbed(quickConfig())
		lat := tb.RunLatencyCampaign(time.Hour, 5*time.Minute)
		st := tb.RunSpeedtestCampaign(TechStarlink, 1, 10*time.Minute)
		var out strings.Builder
		RenderFigure1(&out, Figure1(lat, tb.Anchors))
		RenderFigure2(&out, Figure2(lat))
		for _, r := range st {
			fmt.Fprintf(&out, "%s %v %v %v\n", r.Server, r.DownloadMbps, r.UploadMbps, r.PingRTT)
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same seed, different output:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestLatencyParallelWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	run := func(workers int) *LatencyData {
		return RunLatencyCampaignParallel(cfg, 3, 30*time.Minute, 5*time.Minute, Options{Workers: workers})
	}
	seq := run(1)
	par := run(raceWorkers)
	if seq.Sent == 0 || seq.Lost < 0 {
		t.Fatalf("empty campaign: sent=%d", seq.Sent)
	}
	if seq.Sent != par.Sent || seq.Lost != par.Lost {
		t.Errorf("counters differ: 1 worker %d/%d vs %d workers %d/%d",
			seq.Sent, seq.Lost, raceWorkers, par.Sent, par.Lost)
	}
	if !reflect.DeepEqual(seq.Regions, par.Regions) {
		t.Error("regions differ across worker counts")
	}
	for name, ser := range seq.PerAnchor {
		pser := par.PerAnchor[name]
		if pser == nil {
			t.Fatalf("anchor %s missing from parallel result", name)
		}
		if !reflect.DeepEqual(ser.Samples(), pser.Samples()) {
			t.Errorf("anchor %s: sample series differ between 1 and %d workers", name, raceWorkers)
		}
	}
	// Rendered figures must match byte for byte.
	renderAll := func(d *LatencyData) string {
		var out strings.Builder
		tb := NewTestbed(cfg) // anchor order only
		RenderFigure1(&out, Figure1(d, tb.Anchors))
		RenderFigure2(&out, Figure2(d))
		return out.String()
	}
	if a, b := renderAll(seq), renderAll(par); a != b {
		t.Errorf("rendered output differs:\n--- 1 worker\n%s\n--- %d workers\n%s", a, raceWorkers, b)
	}
}

func TestSpeedtestParallelWorkerInvariance(t *testing.T) {
	cfg := quickConfig()
	seq := RunSpeedtestCampaignParallel(cfg, TechStarlink, 3, 10*time.Minute, Options{Workers: 1})
	par := RunSpeedtestCampaignParallel(cfg, TechStarlink, 3, 10*time.Minute, Options{Workers: raceWorkers})
	if len(seq) != 3 || len(par) != 3 {
		t.Fatalf("lengths: seq=%d par=%d, want 3", len(seq), len(par))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("speedtest results differ:\n1 worker: %+v\n%d workers: %+v", seq, raceWorkers, par)
	}
}

func TestWebParallelWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	seq := RunWebCampaignParallel(cfg, TechWired, 12, time.Second, Options{Workers: 1})
	par := RunWebCampaignParallel(cfg, TechWired, 12, time.Second, Options{Workers: raceWorkers})
	if len(seq) == 0 {
		t.Fatal("no visits completed")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("web visit results differ between 1 and %d workers", raceWorkers)
	}
	// The sharded campaign must walk the sequential site cycle: visit i
	// lands on site rank i%len(Sites).
	tb := NewTestbed(cfg)
	for i, v := range seq {
		if v.Site.Rank != tb.Sites[i%len(tb.Sites)].Rank {
			t.Errorf("visit %d hit site rank %d, want the sequential cycle's %d",
				i, v.Site.Rank, tb.Sites[i%len(tb.Sites)].Rank)
		}
	}
}

func TestH3ParallelWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	run := func(workers int) *H3Campaign {
		return RunH3CampaignParallel(cfg, 2, 2<<20, true, 5*time.Second, Options{Workers: workers})
	}
	seq := run(1)
	par := run(raceWorkers)
	if len(seq.Records) != 2 || len(par.Records) != 2 {
		t.Fatalf("records: seq=%d par=%d, want 2", len(seq.Records), len(par.Records))
	}
	if !reflect.DeepEqual(seq.Goodputs(), par.Goodputs()) {
		t.Errorf("goodputs differ: %v vs %v", seq.Goodputs(), par.Goodputs())
	}
	if !reflect.DeepEqual(seq.RTTSamplesMs(), par.RTTSamplesMs()) {
		t.Error("RTT sample series differ between worker counts")
	}
	if seq.LossRatio() != par.LossRatio() {
		t.Errorf("loss ratios differ: %v vs %v", seq.LossRatio(), par.LossRatio())
	}
	if !reflect.DeepEqual(seq.BurstLengths(), par.BurstLengths()) {
		t.Error("burst lengths differ between worker counts")
	}
}

func TestMessagesParallelWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	run := func(workers int) *MsgCampaign {
		return RunMessagesCampaignParallel(cfg, 3, 30*time.Second, false, Options{Workers: workers})
	}
	seq := run(1)
	par := run(raceWorkers)
	if len(seq.RTTsMs) == 0 {
		t.Fatal("no message RTT samples")
	}
	if !reflect.DeepEqual(seq.RTTsMs, par.RTTsMs) {
		t.Error("message RTTs differ between worker counts")
	}
	if seq.LossRatio() != par.LossRatio() {
		t.Error("message loss ratios differ between worker counts")
	}
}

func TestSweepWorkerInvariance(t *testing.T) {
	jobs := func() []SweepJob {
		return []SweepJob{
			{Name: "latency", Cfg: DefaultConfig(), Run: func(tb *Testbed) any {
				lat := tb.RunLatencyCampaign(30*time.Minute, 5*time.Minute)
				return lat.Sent
			}},
			{Name: "middlebox-starlink", Cfg: DefaultConfig(), Run: func(tb *Testbed) any {
				a := tb.RunMiddleboxAudit(TechStarlink)
				var out strings.Builder
				RenderMiddleboxAudit(&out, "starlink", a)
				return out.String()
			}},
			{Name: "speedtest", Cfg: quickConfig(), Run: func(tb *Testbed) any {
				return tb.RunSpeedtestCampaign(TechStarlink, 1, time.Minute)
			}},
		}
	}
	seq := RunSweep(jobs(), Options{Workers: 1})
	par := RunSweep(jobs(), Options{Workers: raceWorkers})
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep results differ:\n1 worker: %+v\n%d workers: %+v", seq, raceWorkers, par)
	}
	for i, j := range jobs() {
		if seq[i].Name != j.Name {
			t.Errorf("result %d is %q, want job order preserved (%q)", i, seq[i].Name, j.Name)
		}
	}
}
