package core

import (
	"reflect"
	"testing"
	"time"

	"starlinkperf/internal/quic"
)

// campaignFingerprint runs a scaled-down slice of every campaign family
// on one testbed and returns the full metrics structs plus the exact
// number of events the scheduler executed.
type campaignFingerprint struct {
	Lat       *LatencyData
	H3        []h3Fingerprint
	Msg       *MsgCampaign
	Speedtest any
	Web       any
	Processed uint64
}

// h3Fingerprint is an H3Record with the live *quic.Connection endpoints
// replaced by their value-only Stats. reflect.DeepEqual declares any
// non-nil func field unequal, and the connections reach the scheduler's
// pooled timers (whose callbacks are funcs), so the raw record can never
// compare equal even when every measured value matches. Every metric the
// campaigns report is retained here.
type h3Fingerprint struct {
	Record      H3Record
	ClientStats quic.Stats
	ServerStats quic.Stats
}

func fingerprint(seed uint64, reference bool) campaignFingerprint {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ReferenceScheduler = reference
	tb := NewTestbed(cfg)
	fp := campaignFingerprint{Lat: tb.RunLatencyCampaign(2*time.Hour, 15*time.Minute)}
	h3 := tb.RunH3Campaign(1, 2<<20, true, 5*time.Second)
	for _, r := range h3.Records {
		clean := h3Fingerprint{Record: r, ClientStats: r.Result.Client.Stats, ServerStats: r.Result.Server.Stats}
		clean.Record.Result.Client, clean.Record.Result.Server = nil, nil
		fp.H3 = append(fp.H3, clean)
	}
	fp.Msg = tb.RunMessagesCampaign(1, 20*time.Second, true)
	fp.Speedtest = tb.RunSpeedtestCampaign(TechStarlink, 1, time.Minute)
	fp.Web = tb.RunWebCampaign(TechStarlink, 2, time.Second)
	fp.Processed = tb.Sched.Processed
	return fp
}

// The allocation-free 4-ary-heap scheduler must be campaign-equivalent
// to the seed container/heap queue: same (at, seq) firing order, same
// RNG draw sequence, therefore bit-identical metrics — every float,
// every RTT sample, every loss burst — and the exact same event count.
func TestSchedulerCampaignEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		fast := fingerprint(seed, false)
		ref := fingerprint(seed, true)
		if fast.Processed != ref.Processed {
			t.Errorf("seed %d: fast scheduler ran %d events, reference %d",
				seed, fast.Processed, ref.Processed)
		}
		if !reflect.DeepEqual(fast.Lat, ref.Lat) {
			t.Errorf("seed %d: latency campaign metrics diverge between schedulers", seed)
		}
		if !reflect.DeepEqual(fast.H3, ref.H3) {
			t.Errorf("seed %d: H3 campaign metrics diverge between schedulers", seed)
		}
		if !reflect.DeepEqual(fast.Msg, ref.Msg) {
			t.Errorf("seed %d: messages campaign metrics diverge between schedulers", seed)
		}
		if !reflect.DeepEqual(fast.Speedtest, ref.Speedtest) {
			t.Errorf("seed %d: speedtest campaign metrics diverge between schedulers", seed)
		}
		if !reflect.DeepEqual(fast.Web, ref.Web) {
			t.Errorf("seed %d: web campaign metrics diverge between schedulers", seed)
		}
	}
}
