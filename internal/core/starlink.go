// Package core builds the paper's testbed inside the emulator — the
// PC-Starlink / PC-Wired / PC-SatCom vantage points, the Starlink LEO
// access (bent-pipe through the simulated Gen1 shell), the GEO SatCom
// access with its dual PEP, the anchor fleet, the Ookla-like servers, the
// UCLouvain QUIC server and the web corpus — and orchestrates the
// measurement campaigns that regenerate every table and figure.
package core

import (
	"math"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/sim"
)

// StarlinkParams models the Starlink access link. Everything the paper
// measures on that link — the latency floor and body, the loss regimes,
// the throughput envelope, bufferbloat under load — derives from these
// parameters plus the constellation geometry.
type StarlinkParams struct {
	// The allocated rates are log-normal around the medians with two
	// variance components: a slow one (per hour — cell load, weather)
	// and a fast one (per 15 s epoch — scheduler regrants).
	DownMbpsMedian, DownSigma float64
	UpMbpsMedian, UpSigma     float64
	// SigmaFast is the per-epoch component (applies to both directions).
	SigmaFast float64
	// Epoch is the capacity/path reallocation interval (15 s).
	Epoch time.Duration
	// AccessOverhead is the fixed per-direction processing + framing
	// delay of the bent pipe.
	AccessOverhead time.Duration
	// JitterDown/Up are half-normal per-packet scheduling jitter scales
	// (uplink slot grants make the uplink jitter larger).
	JitterDown, JitterUp time.Duration
	// QueueDown/Up are the CPE/gateway buffer depths; they set the
	// bufferbloat the paper observes under load.
	QueueDownBytes, QueueUpBytes int
	// Medium loss: a bursty Gilbert-Elliott process. The uplink has its
	// own (higher) rate: contention-granted uplink slots lose more.
	MediumLossPct   float64
	MediumLossPctUp float64
	MediumBurstMean float64
	// Handover micro-outages: probability per epoch boundary and
	// duration bounds.
	HandoverOutageProb float64
	HandoverOutageMin  time.Duration
	HandoverOutageMax  time.Duration
	// Rare long outages (the paper's >1 s events): probability per
	// epoch and duration bounds.
	LongOutageProb float64
	LongOutageMin  time.Duration
	LongOutageMax  time.Duration
}

// DefaultStarlinkParams returns the calibrated parameters (see
// EXPERIMENTS.md for the calibration against the paper's observables).
func DefaultStarlinkParams() StarlinkParams {
	return StarlinkParams{
		DownMbpsMedian: 205, DownSigma: 0.24,
		UpMbpsMedian: 18, UpSigma: 0.22,
		SigmaFast:          0.08,
		Epoch:              15 * time.Second,
		AccessOverhead:     4 * time.Millisecond,
		JitterDown:         8 * time.Millisecond,
		JitterUp:           10 * time.Millisecond,
		QueueDownBytes:     2560 << 10,
		QueueUpBytes:       384 << 10,
		MediumLossPct:      0.03,
		MediumLossPctUp:    0.02,
		MediumBurstMean:    8,
		HandoverOutageProb: 0.13,
		HandoverOutageMin:  150 * time.Millisecond,
		HandoverOutageMax:  600 * time.Millisecond,
		LongOutageProb:     0.0012,
		LongOutageMin:      1 * time.Second,
		LongOutageMax:      4 * time.Second,
	}
}

// splitmix64 hashes an epoch number into deterministic per-epoch
// randomness, so outage and rate decisions need no precomputed schedule.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// epochRand returns a uniform float64 in [0,1) and a second independent
// one for the given (seed, epoch, salt).
func epochRand(seed, epoch, salt uint64) (float64, float64) {
	h1 := splitmix64(seed ^ epoch*0x9e3779b97f4a7c15 ^ salt)
	h2 := splitmix64(h1)
	return float64(h1>>11) / (1 << 53), float64(h2>>11) / (1 << 53)
}

// starlinkAccess bundles the time-varying behaviour of the access link.
type starlinkAccess struct {
	params   StarlinkParams
	terminal *leo.Terminal
	seed     uint64
	// popPos maps gateway PoP names to PoP site positions for the
	// gateway→exit terrestrial leg.
	popPos map[string]geo.LatLon
	// extraDelay lets scenario events (the paper's late-April load
	// episode) add RTT for a window of the campaign.
	extraDelay func(at sim.Time) time.Duration
}

func (a *starlinkAccess) epochOf(at sim.Time) uint64 {
	return uint64(int64(at) / int64(a.params.Epoch))
}

// delay is the one-way propagation + processing delay at an instant:
// geometric bent pipe + gateway→PoP fiber + fixed overhead (+ scenario
// extra).
func (a *starlinkAccess) delay(at sim.Time) time.Duration {
	d, ok := a.terminal.DelayAt(at)
	if !ok {
		d = 30 * time.Millisecond // no-coverage fallback; outages drop anyway
	}
	gw := a.terminal.GatewayAt(at)
	if gw != nil {
		if pop, ok := a.popPos[gw.PoP]; ok {
			d += geo.FiberRouteDelay(gw.Pos, pop, 1.6)
		}
	}
	d += a.params.AccessOverhead
	if a.extraDelay != nil {
		d += a.extraDelay(at)
	}
	return d
}

// outageWindow is one outage interval within an epoch, as offsets from
// the epoch start. long distinguishes the paper's rare >1 s events from
// handover micro-outages.
type outageWindow struct {
	start, dur time.Duration
	long       bool
}

// epochOutages derives the outage windows of an epoch from the hashed
// per-epoch randomness: an optional handover micro-outage at the epoch
// start and an optional rare long outage somewhere inside it. It is the
// single computation behind both the per-packet down() predicate and the
// observability epoch sampler, so the trace reports exactly the windows
// the link enforces. Returns by value (at most two windows) so the
// per-packet path stays allocation-free.
func (a *starlinkAccess) epochOutages(ep uint64) (wins [2]outageWindow, n int) {
	r1, r2 := epochRand(a.seed, ep, 0x48)
	if r1 < a.params.HandoverOutageProb {
		dur := a.params.HandoverOutageMin +
			time.Duration(r2*float64(a.params.HandoverOutageMax-a.params.HandoverOutageMin))
		wins[n] = outageWindow{start: 0, dur: dur}
		n++
	}
	r3, r4 := epochRand(a.seed, ep, 0x10)
	if r3 < a.params.LongOutageProb {
		dur := a.params.LongOutageMin +
			time.Duration(r4*float64(a.params.LongOutageMax-a.params.LongOutageMin))
		if dur > a.params.Epoch {
			dur = a.params.Epoch
		}
		start := time.Duration(r4 * float64(a.params.Epoch-dur))
		wins[n] = outageWindow{start: start, dur: dur, long: true}
		n++
	}
	return wins, n
}

// down reports whether the access link is inside an outage at an
// instant: per-epoch hashed handover micro-outages and rare long ones.
func (a *starlinkAccess) down(at sim.Time) bool {
	ep := a.epochOf(at)
	into := time.Duration(int64(at) - int64(ep)*int64(a.params.Epoch))
	wins, n := a.epochOutages(ep)
	for i := 0; i < n; i++ {
		if into >= wins[i].start && into < wins[i].start+wins[i].dur {
			return true
		}
	}
	return false
}

// rates returns the allocated (down, up) rates for an epoch: log-normal
// around the medians with a slow per-hour component and a fast per-epoch
// component.
func (a *starlinkAccess) rates(at sim.Time) (downBps, upBps float64) {
	ep := a.epochOf(at)
	hour := uint64(int64(at) / int64(time.Hour))
	s1, s2 := gaussPair(a.seed, hour, 0x5107)
	g1, g2 := gaussPair(a.seed, ep, 0x77)
	down := a.params.DownMbpsMedian * math.Exp(a.params.DownSigma*s1+a.params.SigmaFast*g1)
	up := a.params.UpMbpsMedian * math.Exp(a.params.UpSigma*s2+a.params.SigmaFast*g2)
	return down * 1e6, up * 1e6
}

// gaussPair derives two standard normal samples from epoch hashing
// (Box-Muller on hashed uniforms).
func gaussPair(seed, epoch, salt uint64) (float64, float64) {
	u1, u2 := epochRand(seed, epoch, salt)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}
