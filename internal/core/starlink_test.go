package core

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/sim"
)

func testAccess() *starlinkAccess {
	con := leo.NewConstellation(leo.NewShell(leo.StarlinkGen1()))
	term := leo.NewTerminal(leo.DefaultTerminalConfig(posLouvain), con, []leo.Gateway{
		{Name: "nl-gw", Pos: posAms, PoP: "AMS"},
		{Name: "de-gw", Pos: posFra, PoP: "FRA"},
	})
	return &starlinkAccess{
		params:   DefaultStarlinkParams(),
		terminal: term,
		seed:     7,
		popPos:   map[string]geo.LatLon{"AMS": posAms, "FRA": posFra},
	}
}

func TestAccessDelayDeterministicAndBounded(t *testing.T) {
	a := testAccess()
	b := testAccess()
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * sim.Time(7*time.Second)
		da, db := a.delay(at), b.delay(at)
		if da != db {
			t.Fatalf("delay not deterministic at %v: %v vs %v", at, da, db)
		}
		// One-way: bent pipe (4-20ms) + PoP leg + 4ms overhead.
		if da < 7*time.Millisecond || da > 40*time.Millisecond {
			t.Fatalf("delay %v out of the physical band at %v", da, at)
		}
	}
}

func TestAccessOutageFractionNearTarget(t *testing.T) {
	a := testAccess()
	down := 0
	const n = 2_000_000
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Time(3*time.Millisecond) // 100 min scan
		if a.down(at) {
			down++
		}
	}
	frac := float64(down) / n
	// Handover outages: 13% of epochs x ~375ms/15s ~ 0.33%, plus rare
	// long outages. Accept a broad band (hash luck over 100 min).
	if frac < 0.0005 || frac > 0.02 {
		t.Errorf("outage time fraction = %.4f%%, want roughly 0.1-2%%", 100*frac)
	}
}

func TestAccessRatesLogNormalBand(t *testing.T) {
	a := testAccess()
	var minD, maxD float64 = 1e18, 0
	for ep := 0; ep < 5000; ep++ {
		at := sim.Time(ep) * sim.Time(15*time.Second)
		d, u := a.rates(at)
		if d <= 0 || u <= 0 {
			t.Fatalf("non-positive rate at %v", at)
		}
		if u > d {
			t.Fatalf("uplink faster than downlink at %v", at)
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	// Spread must exist (log-normal) but stay physical.
	if maxD/minD < 1.5 {
		t.Errorf("rate spread too small: %v..%v", minD, maxD)
	}
	if maxD > 800e6 || minD < 20e6 {
		t.Errorf("rates outside the plausible Starlink band: %v..%v", minD, maxD)
	}
}

func TestEpochRandDeterminism(t *testing.T) {
	a1, b1 := epochRand(1, 42, 7)
	a2, b2 := epochRand(1, 42, 7)
	if a1 != a2 || b1 != b2 {
		t.Fatal("epochRand not deterministic")
	}
	a3, _ := epochRand(1, 43, 7)
	if a1 == a3 {
		t.Fatal("epochRand does not vary with epoch")
	}
	if a1 < 0 || a1 >= 1 || b1 < 0 || b1 >= 1 {
		t.Fatalf("epochRand out of [0,1): %v %v", a1, b1)
	}
}
