package core

import (
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/measure"
	"starlinkperf/internal/nat"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/pep"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
	"starlinkperf/internal/web"
)

// Site coordinates of the testbed.
var (
	posLouvain  = geo.LatLon{LatDeg: 50.67, LonDeg: 4.61}
	posAms      = geo.LatLon{LatDeg: 52.37, LonDeg: 4.90}
	posFra      = geo.LatLon{LatDeg: 50.11, LonDeg: 8.68}
	posTeleport = geo.LatLon{LatDeg: 48.78, LonDeg: 1.99} // Rambouillet
)

// SatComParams models the GEO access.
type SatComParams struct {
	// DownMbps and UpMbps are the plan's shaped rates ("up to 100/10").
	DownMbps, UpMbps float64
	// SatLonDeg parks the GEO satellite.
	SatLonDeg float64
	// Overhead is the per-direction DVB-S2 framing/scheduling delay on
	// top of the geometric bent pipe.
	Overhead time.Duration
	// Queue depths (GEO gear buffers deeply).
	QueueDownBytes, QueueUpBytes int
	// MediumLossPct is the bursty radio loss.
	MediumLossPct float64
}

// DefaultSatComParams returns the calibrated GEO parameters.
func DefaultSatComParams() SatComParams {
	return SatComParams{
		DownMbps: 88, UpMbps: 5.0,
		SatLonDeg:      9,
		Overhead:       52 * time.Millisecond,
		QueueDownBytes: 8 << 20,
		QueueUpBytes:   384 << 10,
		MediumLossPct:  0.05,
	}
}

// LoadEpisode adds extra one-way delay during a campaign window (the
// paper's late-April RTT bump).
type LoadEpisode struct {
	Start, End  time.Duration
	ExtraOneWay time.Duration
}

// Config parameterizes the whole testbed.
type Config struct {
	Seed     uint64
	Starlink StarlinkParams
	SatCom   SatComParams
	// WebSites is the corpus size (paper: top-120 for Belgium).
	WebSites int
	// Speedtest overrides the Ookla-like client configuration used by
	// the speedtest campaigns. The zero value (Connections == 0) means
	// measure.DefaultSpeedtestConfig().
	Speedtest measure.SpeedtestConfig
	// InitialShellFraction populates only part of the Gen1 shell at
	// campaign start; FleetGrowthAt completes it mid-campaign (the
	// paper's Feb-11 step). Zero values disable the scenario.
	InitialShellFraction float64
	FleetGrowthAt        time.Duration
	// Load reproduces the late-April RTT increase.
	Load LoadEpisode
	// DisableSatComPEP removes the dual PEP from the SatCom path (the
	// ablation showing what the proxies buy).
	DisableSatComPEP bool
	// Transport selects the transport profile shared by the QUIC and TCP
	// stacks (see TransportProfile). The zero value is the paper
	// baseline and changes nothing.
	Transport TransportProfile
	// ReferenceScheduler drives the testbed with the seed container/heap
	// event queue instead of the allocation-free 4-ary heap. Campaign
	// output must be bit-identical either way; the equivalence suite in
	// scheduler_equivalence_test.go enforces it across seeds.
	ReferenceScheduler bool
	// ReferenceDatapath runs the network on the seed packet datapath:
	// fresh allocations instead of pools, map-based handler lookup, and
	// the linear longest-prefix route scan. Campaign output must be
	// bit-identical either way; datapath_equivalence_test.go enforces it.
	ReferenceDatapath bool
	// Obs enables the deterministic observability layer for this testbed:
	// metrics and trace events from the link, LEO, transport, PEP, and
	// probe layers land in Testbed.Obs. The zero value disables it, which
	// costs one nil-check branch per instrumented site and changes no
	// campaign output.
	Obs obs.Options
}

// DefaultConfig returns the calibrated testbed configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Starlink:             DefaultStarlinkParams(),
		SatCom:               DefaultSatComParams(),
		WebSites:             120,
		InitialShellFraction: 1.0,
	}
}

// Anchor is one latency target.
type Anchor struct {
	Name   string
	Region string // "BE", "NL", "DE", "US-East", "US-West", "SG"
	Node   *netem.Node
}

// Testbed is the fully wired emulated campaign environment.
type Testbed struct {
	Cfg   Config
	Sched *sim.Scheduler
	Net   *netem.Network

	// Vantage points.
	PCStarlink, PCWired, PCSatCom *netem.Node

	// Starlink plumbing.
	Shell    *leo.Shell
	Terminal *leo.Terminal
	access   *starlinkAccess
	DownLink *netem.Link // stargw -> cpe
	UpLink   *netem.Link // cpe -> stargw
	CPE      *netem.Node
	StarGW   *netem.Node

	// SatCom plumbing.
	SatModem    *netem.Node
	Teleport    *netem.Node
	ModemPEP    *pep.Proxy
	TeleportPEP *pep.Proxy

	// Destinations.
	Anchors      []Anchor
	OoklaServers []netem.Addr
	UCLServer    *netem.Node
	H3Server     *measure.H3Server
	WebPool      []*netem.Node
	Sites        []web.Site

	// Shared protocol configs.
	WebTCP   tcpsim.Config
	QUICConf quic.Config
	// Sessions is the testbed-owned QUIC session-ticket cache; the
	// transport profile threads it into QUICConf when 0-RTT is enabled
	// so resumption survives the campaigns' endpoint-per-transfer churn.
	Sessions *quic.SessionCache

	// Obs is the testbed's observability sink (nil when Config.Obs is
	// disabled). Every instrumented layer writes into it; the parallel
	// runner registers it with the campaign collector after each shard.
	Obs *obs.Sink
}

// H3Port is where the UCLouvain QUIC server listens.
const H3Port = 4433

// terrLink builds a terrestrial link config between two sites.
func terrLink(a, b geo.LatLon, stretch float64, extra time.Duration, rateBps float64) netem.LinkConfig {
	return netem.LinkConfig{
		RateBps:    rateBps,
		Delay:      netem.ConstantDelay(geo.FiberRouteDelay(a, b, stretch) + extra),
		QueueBytes: 16 << 20,
	}
}

// NewTestbed wires the full environment.
func NewTestbed(cfg Config) *Testbed {
	sched := sim.NewScheduler(cfg.Seed)
	if cfg.ReferenceScheduler {
		sched = sim.NewReferenceScheduler(cfg.Seed)
	}
	nw := netem.New(sched)
	if cfg.ReferenceDatapath {
		nw.SetReference(true)
	}
	tb := &Testbed{Cfg: cfg, Sched: sched, Net: nw}
	if cfg.Obs.Enabled {
		tb.Obs = obs.NewSink(cfg.Obs.TraceCap)
		nw.Observe(tb.Obs)
	}

	// --- Constellation & terminal -----------------------------------
	if cfg.InitialShellFraction > 0 && cfg.InitialShellFraction < 1 {
		tb.Shell = leo.NewPartialShell(leo.StarlinkGen1(), cfg.InitialShellFraction)
	} else {
		tb.Shell = leo.NewShell(leo.StarlinkGen1())
	}
	con := leo.NewConstellation(tb.Shell)
	gateways := []leo.Gateway{
		{Name: "nl-gw", Pos: posAms, PoP: "AMS"},
		{Name: "de-gw", Pos: posFra, PoP: "FRA"},
	}
	tb.Terminal = leo.NewTerminal(leo.DefaultTerminalConfig(posLouvain), con, gateways)
	tb.Terminal.Observe(tb.Obs.Registry())
	tb.access = &starlinkAccess{
		params:   cfg.Starlink,
		terminal: tb.Terminal,
		seed:     cfg.Seed ^ 0xabcdef,
		popPos:   map[string]geo.LatLon{"AMS": posAms, "FRA": posFra},
	}
	if cfg.Load.ExtraOneWay > 0 {
		start, end := sim.Time(cfg.Load.Start), sim.Time(cfg.Load.End)
		tb.access.extraDelay = func(at sim.Time) time.Duration {
			if at >= start && at < end {
				return cfg.Load.ExtraOneWay
			}
			return 0
		}
	}
	if cfg.FleetGrowthAt > 0 {
		sched.At(sim.Time(cfg.FleetGrowthAt), func() {
			shCfg := tb.Shell.Config()
			for p := 0; p < shCfg.Planes; p++ {
				for i := 0; i < shCfg.SatsPerPlane; i++ {
					tb.Shell.SetEnabled(p, i, true)
				}
			}
		})
	}

	// --- Core topology ----------------------------------------------
	popAMS := nw.NewNode("pop-ams", netem.MustParseAddr("62.115.14.1"))
	popFRA := nw.NewNode("pop-fra", netem.MustParseAddr("62.115.14.2"))
	af, fa := nw.Connect(popAMS, popFRA, terrLink(posAms, posFra, 1.6, 300*time.Microsecond, 100e9))
	popAMS.AddRoute(popFRA.Addr(), af)
	popFRA.SetDefaultRoute(fa)

	// attach wires a leaf (or subnet router) under a hub.
	attach := func(leaf, hub *netem.Node, cfgLink netem.LinkConfig) (up, down *netem.Link) {
		u, d := nw.Connect(leaf, hub, cfgLink)
		leaf.SetDefaultRoute(u)
		hub.AddRoute(leaf.Addr(), d)
		return u, d
	}

	// --- Starlink branch --------------------------------------------
	tb.PCStarlink = nw.NewNode("pc-starlink", netem.MustParseAddr("192.168.1.2"))
	tb.CPE = nw.NewNode("cpe", netem.MustParseAddr("192.168.1.1"))
	tb.StarGW = nw.NewNode("stargw", netem.MustParseAddr("100.64.0.1"))

	lan := netem.LinkConfig{RateBps: 1e9, Delay: netem.ConstantDelay(300 * time.Microsecond), QueueBytes: 4 << 20}
	pcUp, pcDown := nw.Connect(tb.PCStarlink, tb.CPE, lan)
	tb.PCStarlink.SetDefaultRoute(pcUp)
	tb.CPE.AddRoute(tb.PCStarlink.Addr(), pcDown)

	sp := cfg.Starlink
	rng := sched.RNG()
	upCfg := netem.LinkConfig{
		RateBps:    sp.UpMbpsMedian * 1e6,
		Delay:      tb.access.delay,
		QueueBytes: sp.QueueUpBytes,
		Down:       tb.access.down,
		Jitter:     netem.DelayJitterFunc(rng.Stream("starlink/jitter-up"), sp.JitterUp),
	}
	downCfg := netem.LinkConfig{
		RateBps:    sp.DownMbpsMedian * 1e6,
		Delay:      tb.access.delay,
		QueueBytes: sp.QueueDownBytes,
		Down:       tb.access.down,
		Jitter:     netem.DelayJitterFunc(rng.Stream("starlink/jitter-down"), sp.JitterDown),
	}
	tb.UpLink = nw.AddLink(tb.CPE, tb.StarGW, upCfg)
	// Uplink losses: a light bursty medium process plus extra loss when
	// the uplink queue runs hot (slot-grant contention under load).
	tb.UpLink.SetLoss(netem.CompositeLoss{
		mediumLoss(upLossPct(sp), 2, rng.Stream("starlink/loss-up")),
		&busyLoss{link: tb.UpLink, cap: sp.QueueUpBytes, frac: 0.45, p: 0.25, rng: rng.Stream("starlink/busy-up")},
	})
	tb.DownLink = nw.AddLink(tb.StarGW, tb.CPE, downCfg)
	// Downlink: extra randomized drops while the CPE queue is nearly
	// full — they cluster inside the DropTail episodes (so congestion
	// control sees the same episodes) but lengthen the observed loss
	// bursts, as in the paper's Figure 4a.
	tb.DownLink.SetLoss(netem.CompositeLoss{
		mediumLoss(sp.MediumLossPct, sp.MediumBurstMean, rng.Stream("starlink/loss-down2")),
		&busyLoss{link: tb.DownLink, cap: sp.QueueDownBytes, frac: 0.94, p: 0.35, rng: rng.Stream("starlink/busy-down")},
	})
	tb.CPE.SetDefaultRoute(tb.UpLink)
	tb.StarGW.AddPrefixRoute(netem.MustParseAddr("100.64.0.7"), 32, tb.DownLink)

	// Per-epoch capacity modulation, plus the observability epoch
	// sampler: handovers, serving gaps, and the epoch's outage windows
	// are sampled at each boundary. AssignmentAt and epochOutages are
	// pure (cache/hash only, no scheduler or RNG side effects), so the
	// sampler cannot perturb campaign output.
	sampleEpoch := tb.newEpochSampler()
	var modulate func()
	modulate = func() {
		now := sched.Now()
		d, u := tb.access.rates(now)
		tb.DownLink.SetRate(d)
		tb.UpLink.SetRate(u)
		if sampleEpoch != nil {
			sampleEpoch(now)
		}
		sched.After(sp.Epoch, modulate)
	}
	modulate()

	// NATs: CPE (192.168/16 -> 100.64.0.7) and CGNAT at the ground
	// station (100.64/10 -> public).
	starlinkPublic := netem.MustParseAddr("149.6.154.4")
	tb.CPE.AttachDevice(nat.New(netem.MustParseAddr("100.64.0.7"),
		nat.PrefixInside(netem.MustParseAddr("192.168.0.0"), 16)))
	tb.StarGW.AttachDevice(nat.New(starlinkPublic,
		nat.PrefixInside(netem.MustParseAddr("100.64.0.0"), 10)))

	// Ground station exits: AMS by default, FRA for German prefixes.
	gwUpAMS, amsDownGW := nw.Connect(tb.StarGW, popAMS, terrLink(posAms, posAms, 1, 400*time.Microsecond, 100e9))
	gwUpFRA, fraDownGW := nw.Connect(tb.StarGW, popFRA, terrLink(posFra, posFra, 1, 400*time.Microsecond, 100e9))
	tb.StarGW.SetDefaultRoute(gwUpAMS)
	popAMS.AddRoute(starlinkPublic, amsDownGW)
	popFRA.AddRoute(starlinkPublic, fraDownGW)

	// --- Anchors ------------------------------------------------------
	type anchorSpec struct {
		name, region string
		addr         string
		city         geo.LatLon
		viaFRA       bool
		lastMile     time.Duration
		stretch      float64
	}
	specs := []anchorSpec{
		{"be-probe-1", "BE", "193.0.10.1", geo.LatLon{LatDeg: 50.85, LonDeg: 4.35}, false, 2600 * time.Microsecond, 1.6},
		{"be-probe-2", "BE", "193.0.10.2", geo.LatLon{LatDeg: 51.05, LonDeg: 3.73}, false, 3300 * time.Microsecond, 1.6},
		{"be-probe-3", "BE", "193.0.10.3", geo.LatLon{LatDeg: 50.63, LonDeg: 5.57}, false, 4400 * time.Microsecond, 1.6},
		{"be-probe-4", "BE", "193.0.10.4", geo.LatLon{LatDeg: 50.47, LonDeg: 4.87}, false, 2200 * time.Microsecond, 1.6},
		{"ams-anchor-1", "NL", "193.0.11.1", posAms, false, 4500 * time.Microsecond, 1.6},
		{"ams-anchor-2", "NL", "193.0.11.2", posAms, false, 5200 * time.Microsecond, 1.6},
		{"nbg-anchor-1", "DE", "193.0.12.1", geo.LatLon{LatDeg: 49.45, LonDeg: 11.08}, true, 300 * time.Microsecond, 1.3},
		{"nbg-anchor-2", "DE", "193.0.12.2", geo.LatLon{LatDeg: 49.45, LonDeg: 11.08}, true, 600 * time.Microsecond, 1.3},
		{"nyc-anchor", "US-East", "193.0.13.1", geo.LatLon{LatDeg: 40.71, LonDeg: -74.01}, false, 900 * time.Microsecond, 1.28},
		{"fremont-anchor", "US-West", "193.0.13.2", geo.LatLon{LatDeg: 37.55, LonDeg: -121.99}, false, 1200 * time.Microsecond, 1.63},
		{"sin-anchor", "SG", "193.0.14.1", geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}, false, 900 * time.Microsecond, 2.2},
	}
	for _, a := range specs {
		hub, hubPos := popAMS, posAms
		if a.viaFRA {
			hub, hubPos = popFRA, posFra
		}
		n := nw.NewNode(a.name, netem.MustParseAddr(a.addr))
		n.EchoResponder = true
		attach(n, hub, terrLink(hubPos, a.city, a.stretch, a.lastMile, 10e9))
		if a.viaFRA {
			// Reach German anchors through the FRA exit and route them
			// there from AMS as well.
			tb.StarGW.AddRoute(n.Addr(), gwUpFRA)
			popAMS.AddRoute(n.Addr(), af)
		} else {
			popFRA.AddRoute(n.Addr(), fa)
		}
		tb.Anchors = append(tb.Anchors, Anchor{Name: a.name, Region: a.region, Node: n})
	}

	// --- UCLouvain campus (PC-Wired + QUIC server) -------------------
	campus := nw.NewNode("campus", netem.MustParseAddr("130.104.0.1"))
	cu, cd := nw.Connect(campus, popAMS, terrLink(posLouvain, posAms, 1.6, 700*time.Microsecond, 10e9))
	campus.SetDefaultRoute(cu)
	popAMS.AddPrefixRoute(netem.MustParseAddr("130.104.0.0"), 16, cd)
	popFRA.AddPrefixRoute(netem.MustParseAddr("130.104.0.0"), 16, fa)

	tb.PCWired = nw.NewNode("pc-wired", netem.MustParseAddr("130.104.228.10"))
	tb.UCLServer = nw.NewNode("ucl-server", netem.MustParseAddr("130.104.228.30"))
	tb.UCLServer.EchoResponder = true
	tb.PCWired.EchoResponder = true
	// Campus gear buffers exceed the QUIC flow-control cap, so the
	// wired baseline sees no queue-overflow losses (paper: 10 lost of
	// 5.8M packets on the wired sanity check).
	campusLAN := netem.LinkConfig{RateBps: 1e9, Delay: netem.ConstantDelay(150 * time.Microsecond), QueueBytes: 48 << 20}
	attach(tb.PCWired, campus, campusLAN)
	attach(tb.UCLServer, campus, campusLAN)

	// --- SatCom branch ------------------------------------------------
	sc := cfg.SatCom
	tb.PCSatCom = nw.NewNode("pc-satcom", netem.MustParseAddr("10.10.0.2"))
	tb.SatModem = nw.NewNode("sat-modem", netem.MustParseAddr("10.10.0.1"))
	tb.Teleport = nw.NewNode("teleport", netem.MustParseAddr("185.28.0.1"))
	scUp, scDown := nw.Connect(tb.PCSatCom, tb.SatModem, lan)
	tb.PCSatCom.SetDefaultRoute(scUp)
	tb.SatModem.AddRoute(tb.PCSatCom.Addr(), scDown)

	bird := leo.GeoSatellite{LonDeg: sc.SatLonDeg}
	geoOneWay := bird.BentPipeDelay(posLouvain, posTeleport) + sc.Overhead
	geoUp := netem.LinkConfig{
		RateBps:    sc.UpMbps * 1e6,
		Delay:      netem.ConstantDelay(geoOneWay),
		QueueBytes: sc.QueueUpBytes,
		Loss:       mediumLoss(sc.MediumLossPct, 4, rng.Stream("satcom/loss-up")),
	}
	geoDown := netem.LinkConfig{
		RateBps:    sc.DownMbps * 1e6,
		Delay:      netem.ConstantDelay(geoOneWay),
		QueueBytes: sc.QueueDownBytes,
		Loss:       mediumLoss(sc.MediumLossPct, 4, rng.Stream("satcom/loss-down")),
	}
	mUp := nw.AddLink(tb.SatModem, tb.Teleport, geoUp)
	mDown := nw.AddLink(tb.Teleport, tb.SatModem, geoDown)
	tb.SatModem.SetDefaultRoute(mUp)
	tb.Teleport.AddPrefixRoute(netem.MustParseAddr("10.10.0.0"), 16, mDown)

	tu, td := nw.Connect(tb.Teleport, popAMS, terrLink(posTeleport, posAms, 1.6, 500*time.Microsecond, 100e9))
	tb.Teleport.SetDefaultRoute(tu)
	popAMS.AddPrefixRoute(netem.MustParseAddr("10.10.0.0"), 16, td)
	popFRA.AddPrefixRoute(netem.MustParseAddr("10.10.0.0"), 16, fa)

	// Dual PEP with deep buffers and provisioned fixed windows on the
	// space-segment legs (down at the teleport, up at the modem), like
	// commercial I-PEPs.
	pepCfg := tcpsim.DefaultConfig()
	pepCfg.InitialRcvWnd = 12 << 20
	pepCfg.MaxRcvWnd = 64 << 20
	pepCfg.FastOpen = true
	// The fixed windows are provisioned per flow assuming the Ookla-like
	// four-connection share of the segment.
	pepCfg.Obs = tb.Obs
	if !cfg.DisableSatComPEP {
		tb.ModemPEP = pep.New(pepCfg)
		tb.ModemPEP.ServerLegCC = func(mss int) cc.CongestionController {
			return cc.NewFixed(150 << 10)
		}
		tb.TeleportPEP = pep.New(pepCfg)
		tb.TeleportPEP.ClientLegCC = func(mss int) cc.CongestionController {
			return cc.NewFixed(2 << 20)
		}
		tb.ModemPEP.Observe(tb.Obs, "pep/modem")
		tb.TeleportPEP.Observe(tb.Obs, "pep/teleport")
		tb.SatModem.AttachDevice(tb.ModemPEP)
		tb.Teleport.AttachDevice(tb.TeleportPEP)
	}

	// --- Ookla-like speedtest servers ---------------------------------
	tb.WebTCP = tcpsim.DefaultConfig() // TLS 1.2 web mix
	tb.WebTCP.Obs = tb.Obs
	cfg.Transport.applyTCP(&tb.WebTCP)
	stTCP := measure.DefaultSpeedtestConfig().TCP
	cfg.Transport.applyTCP(&stTCP)
	for i, spec := range []struct {
		name string
		addr string
		city geo.LatLon
		last time.Duration
	}{
		{"ookla-bru", "81.246.10.10", geo.LatLon{LatDeg: 50.85, LonDeg: 4.35}, 1200 * time.Microsecond},
		{"ookla-ams", "81.246.10.11", posAms, 600 * time.Microsecond},
	} {
		n := nw.NewNode(spec.name, netem.MustParseAddr(spec.addr))
		n.EchoResponder = true
		attach(n, popAMS, terrLink(posAms, spec.city, 1.6, spec.last, 10e9))
		popFRA.AddRoute(n.Addr(), fa)
		measure.NewSpeedtestServer(n, stTCP)
		tb.OoklaServers = append(tb.OoklaServers, n.Addr())
		_ = i
	}

	// --- QUIC server --------------------------------------------------
	tb.QUICConf = quic.DefaultConfig()
	tb.QUICConf.Obs = tb.Obs
	tb.Sessions = quic.NewSessionCache()
	cfg.Transport.applyQUIC(&tb.QUICConf, tb.Sessions)
	tb.H3Server = measure.NewH3Server(tb.UCLServer, H3Port, tb.QUICConf)
	// A plain TCP service on the server, the PEP-detection probe target.
	tcpsim.Listen(tb.UCLServer, 80, tb.WebTCP, nil)

	// --- Web pool ------------------------------------------------------
	webSpecs := []struct {
		addr string
		city geo.LatLon
		last time.Duration
	}{
		{"151.101.0.1", posAms, 500 * time.Microsecond},
		{"151.101.0.2", posAms, 700 * time.Microsecond},
		{"151.101.0.3", posAms, 900 * time.Microsecond},
		{"151.101.0.4", posAms, 600 * time.Microsecond},
		{"151.101.0.5", posAms, 800 * time.Microsecond},
		{"151.101.0.6", posAms, 1100 * time.Microsecond},
		{"151.101.1.1", posFra, 1500 * time.Microsecond},
		{"151.101.1.2", geo.LatLon{LatDeg: 48.86, LonDeg: 2.35}, 1700 * time.Microsecond},
		{"151.101.1.3", geo.LatLon{LatDeg: 51.51, LonDeg: -0.13}, 1600 * time.Microsecond},
		{"151.101.2.1", geo.LatLon{LatDeg: 39.04, LonDeg: -77.49}, 1400 * time.Microsecond},
	}
	for i, spec := range webSpecs {
		n := nw.NewNode("web-"+spec.addr, netem.MustParseAddr(spec.addr))
		n.EchoResponder = true
		attach(n, popAMS, terrLink(posAms, spec.city, 1.6, spec.last, 10e9))
		popFRA.AddRoute(n.Addr(), fa)
		web.Server(n, 443, tb.WebTCP)
		tb.WebPool = append(tb.WebPool, n)
		_ = i
	}
	tb.Sites = web.GenerateCorpus(rng.Stream("webcorpus"), cfg.WebSites)

	return tb
}

// newEpochSampler builds the per-epoch observability callback: serving
// satellite changes (handovers, gateway moves), serving gaps, and the
// epoch's scheduled outage windows. Returns nil when observability is
// disabled so the modulation loop pays one nil test.
func (tb *Testbed) newEpochSampler() func(now sim.Time) {
	if tb.Obs == nil {
		return nil
	}
	reg, tr := tb.Obs.Registry(), tb.Obs.Tracer()
	subj := tr.Subject("starlink/access")
	handovers := reg.Counter("leo.handovers")
	gwMoves := reg.Counter("leo.gateway_moves")
	gaps := reg.Counter("leo.serving_gaps")
	outages := reg.Counter("leo.outages")
	longOutages := reg.Counter("leo.outages_long")
	outageNS := reg.Histogram("leo.outage_ns", obs.DurationBounds())
	var prev leo.Assignment
	havePrev := false
	return func(now sim.Time) {
		cur := tb.Terminal.AssignmentAt(now)
		if havePrev && cur != prev {
			handovers.Inc()
			tr.Emit(now, obs.KindHandover, subj, satCode(prev), satCode(cur))
			if cur.Gateway != prev.Gateway {
				gwMoves.Inc()
			}
		}
		if !cur.OK {
			gaps.Inc()
		}
		prev, havePrev = cur, true
		wins, n := tb.access.epochOutages(tb.access.epochOf(now))
		for i := 0; i < n; i++ {
			w := wins[i]
			outages.Inc()
			long := int64(0)
			if w.long {
				longOutages.Inc()
				long = 1
			}
			outageNS.Observe(int64(w.dur))
			tr.Emit(now, obs.KindOutage, subj, int64(w.dur), long)
		}
	}
}

// satCode packs an assignment's serving satellite into one trace
// operand: shell<<32 | plane<<16 | index, or -1 for no coverage.
func satCode(a leo.Assignment) int64 {
	if !a.OK {
		return -1
	}
	return int64(a.Sat.Shell)<<32 | int64(a.Sat.Plane)<<16 | int64(a.Sat.Index)
}

// busyLoss adds loss probability while a link's queue runs above a
// fraction of its capacity — uplink slot-grant contention under load.
type busyLoss struct {
	link *netem.Link
	cap  int
	frac float64
	p    float64
	rng  *sim.RNG
}

// Lost implements netem.LossModel.
func (b *busyLoss) Lost(sim.Time) bool {
	if float64(b.link.QueuedBytes()) < b.frac*float64(b.cap) {
		return false
	}
	return b.rng.Bool(b.p)
}

// upLossPct selects the uplink medium loss rate.
func upLossPct(sp StarlinkParams) float64 {
	if sp.MediumLossPctUp > 0 {
		return sp.MediumLossPctUp
	}
	return sp.MediumLossPct
}

// mediumLoss builds the bursty radio-loss process.
func mediumLoss(pct, meanBurst float64, rng *sim.RNG) netem.LossModel {
	if pct <= 0 {
		return nil
	}
	p := pct / 100
	pbg := 1 / meanBurst
	return &netem.GilbertElliott{
		PGB:      pbg * p / (1 - p),
		PBG:      pbg,
		LossGood: 0,
		LossBad:  1,
		Rng:      rng,
	}
}

// WebResolver maps a site's domains onto the web pool, deterministically
// per (site, domain).
func (tb *Testbed) WebResolver(site *web.Site) web.Resolver {
	pool := tb.WebPool
	return func(domain int) (netem.Addr, uint16) {
		if domain == 0 {
			// Origins live in Europe (the corpus is the Belgian top
			// sites): never the US node.
			return pool[(site.Rank*31)%9].Addr(), 443
		}
		return pool[(site.Rank*13+domain*7)%len(pool)].Addr(), 443
	}
}

// AnchorAddrs returns the anchor addresses in declaration order.
func (tb *Testbed) AnchorAddrs() []netem.Addr {
	out := make([]netem.Addr, len(tb.Anchors))
	for i, a := range tb.Anchors {
		out[i] = a.Node.Addr()
	}
	return out
}
