package core

import (
	"fmt"
	"strings"
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/tcpsim"
)

// TransportProfile selects the transport-stack behaviors shared by the
// QUIC and TCP models. The zero value (and PaperTransport) reproduces the
// paper's measurement tools exactly — unpaced quiche-style QUIC and the
// testbed kernel's CUBIC TCP — and applying it changes nothing, so the
// default campaign output stays bit-identical. ModernTransport enables
// the post-paper stack (BBR, pacing, 0-RTT resumption, connection
// migration, windowed min-RTT, idle cwnd decay); the individual fields
// are à-la-carte toggles for ablations.
type TransportProfile struct {
	// Name is the label the profile was parsed from ("paper", "modern",
	// or the toggle list); it rides into reports and figure captions.
	Name string
	// BBR switches the congestion controller from CUBIC to the
	// deterministic BBR model (startup/drain/probe-bw/probe-rtt over a
	// windowed delivery-rate filter).
	BBR bool
	// Pacing spaces packet departures at the controller-derived rate on
	// both QUIC and TCP senders.
	Pacing bool
	// ZeroRTT resumes repeat QUIC connections from the testbed's session
	// cache without the handshake round trip.
	ZeroRTT bool
	// Migration lets established QUIC connections follow a peer across a
	// NAT rebind (handover/outage-induced address change).
	Migration bool
	// RTTMinWindow bounds the age of the min-RTT filter so BDP-derived
	// state tracks path changes; zero keeps the all-time minimum.
	RTTMinWindow time.Duration
	// CwndIdleDecay decays the CUBIC congestion window across idle
	// periods (RFC 7661-style), taming the post-outage resume burst.
	// Ignored when BBR is set.
	CwndIdleDecay bool
}

// PaperTransport returns the profile reproducing the paper's tools.
func PaperTransport() TransportProfile { return TransportProfile{Name: "paper"} }

// ModernTransport returns the full post-paper stack.
func ModernTransport() TransportProfile {
	return TransportProfile{
		Name:          "modern",
		BBR:           true,
		Pacing:        true,
		ZeroRTT:       true,
		Migration:     true,
		RTTMinWindow:  10 * time.Second,
		CwndIdleDecay: true,
	}
}

// ParseTransport resolves a -transport flag value: "paper" (or empty) and
// "modern" name the two profiles; otherwise a comma-separated list of
// feature toggles (bbr, pacing, zerortt, migration, minrtt, idledecay)
// builds an à-la-carte profile on the paper baseline.
func ParseTransport(s string) (TransportProfile, error) {
	switch strings.TrimSpace(s) {
	case "", "paper":
		return PaperTransport(), nil
	case "modern":
		return ModernTransport(), nil
	}
	p := TransportProfile{Name: strings.TrimSpace(s)}
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "bbr":
			p.BBR = true
		case "pacing":
			p.Pacing = true
		case "zerortt":
			p.ZeroRTT = true
		case "migration":
			p.Migration = true
		case "minrtt":
			p.RTTMinWindow = 10 * time.Second
		case "idledecay":
			p.CwndIdleDecay = true
		default:
			return TransportProfile{}, fmt.Errorf("unknown transport toggle %q (want paper, modern, or a list of bbr,pacing,zerortt,migration,minrtt,idledecay)", tok)
		}
	}
	return p, nil
}

// IsPaper reports whether the profile is behaviorally the paper baseline
// (all toggles off), regardless of how it was named.
func (p TransportProfile) IsPaper() bool {
	return !p.BBR && !p.Pacing && !p.ZeroRTT && !p.Migration &&
		p.RTTMinWindow == 0 && !p.CwndIdleDecay
}

// applyQUIC overlays the profile onto a QUIC endpoint configuration.
// sessions is the testbed-owned ticket cache (campaigns build a fresh
// endpoint per transfer, so resumption state must live above them).
func (p TransportProfile) applyQUIC(cfg *quic.Config, sessions *quic.SessionCache) {
	switch {
	case p.BBR:
		cfg.NewCC = func() quic.CongestionController { return quic.NewBBR() }
	case p.CwndIdleDecay:
		cfg.NewCC = func() quic.CongestionController {
			c := quic.NewCubic()
			c.IdleDecay = true
			return c
		}
	}
	if p.Pacing {
		cfg.EnablePacing = true
	}
	if p.ZeroRTT {
		cfg.EnableZeroRTT = true
		cfg.Sessions = sessions
	}
	if p.Migration {
		cfg.AllowMigration = true
	}
	if p.RTTMinWindow > 0 {
		cfg.RTTMinWindow = p.RTTMinWindow
	}
}

// applyTCP overlays the profile onto a TCP endpoint configuration.
// 0-RTT and migration are QUIC mechanisms and do not apply.
func (p TransportProfile) applyTCP(cfg *tcpsim.Config) {
	switch {
	case p.BBR:
		cfg.NewCC = func(mss int) cc.CongestionController { return cc.NewBBR(mss) }
	case p.CwndIdleDecay:
		cfg.NewCC = func(mss int) cc.CongestionController {
			c := cc.NewCubic(mss)
			c.IdleDecay = true
			return c
		}
	}
	if p.Pacing {
		cfg.EnablePacing = true
	}
	if p.RTTMinWindow > 0 {
		cfg.RTTMinWindow = p.RTTMinWindow
	}
}
