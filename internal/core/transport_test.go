package core

import (
	"reflect"
	"testing"
	"time"
)

func TestParseTransport(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TransportProfile
	}{
		{"", PaperTransport()},
		{"paper", PaperTransport()},
		{"modern", ModernTransport()},
		{"bbr,pacing", TransportProfile{Name: "bbr,pacing", BBR: true, Pacing: true}},
		{"minrtt", TransportProfile{Name: "minrtt", RTTMinWindow: 10 * time.Second}},
		{"zerortt, migration", TransportProfile{Name: "zerortt, migration", ZeroRTT: true, Migration: true}},
	} {
		got, err := ParseTransport(tc.in)
		if err != nil {
			t.Errorf("ParseTransport(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTransport(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseTransport("warp-drive"); err == nil {
		t.Error("unknown toggle accepted")
	}
	if !PaperTransport().IsPaper() || ModernTransport().IsPaper() {
		t.Error("IsPaper misclassifies the named profiles")
	}
}

// TestTransportPaperBitIdentical is the profile-plumbing identity gate:
// explicitly selecting the paper profile must produce byte-for-byte the
// same campaign output as the default zero value, across worker counts.
// ci.sh additionally byte-diffs full bench artifacts for this.
func TestTransportPaperBitIdentical(t *testing.T) {
	base := DefaultConfig()
	withProfile := DefaultConfig()
	withProfile.Transport = PaperTransport()
	for _, workers := range []int{1, raceWorkers} {
		a := RunMessagesCampaignParallel(base, 2, 20*time.Second, false, Options{Workers: workers})
		b := RunMessagesCampaignParallel(withProfile, 2, 20*time.Second, false, Options{Workers: workers})
		if len(a.RTTsMs) == 0 {
			t.Fatal("no RTT samples")
		}
		if !reflect.DeepEqual(a.RTTsMs, b.RTTsMs) || a.LossRatio() != b.LossRatio() {
			t.Errorf("workers=%d: paper profile diverges from default output", workers)
		}
	}
}

// TestTransportModernWorkerInvariance pins the modern profile's
// determinism: BBR + pacing + 0-RTT must stay a pure function of
// (config, seed), bit-identical across worker counts and stable per
// seed. ci.sh runs this under -race alongside TestBBRDeterminism.
func TestTransportModernWorkerInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Transport = ModernTransport()
		run := func(workers int) *MsgCampaign {
			return RunMessagesCampaignParallel(cfg, 2, 20*time.Second, false, Options{Workers: workers})
		}
		seq := run(1)
		par := run(raceWorkers)
		if len(seq.RTTsMs) == 0 {
			t.Fatalf("seed %d: no RTT samples under modern profile", seed)
		}
		if !reflect.DeepEqual(seq.RTTsMs, par.RTTsMs) {
			t.Errorf("seed %d: modern-profile RTT series differ between 1 and %d workers", seed, raceWorkers)
		}
		if seq.LossRatio() != par.LossRatio() {
			t.Errorf("seed %d: modern-profile loss ratios differ across worker counts", seed)
		}
		again := run(1)
		if !reflect.DeepEqual(seq.RTTsMs, again.RTTsMs) {
			t.Errorf("seed %d: two identical modern-profile runs diverged", seed)
		}
	}
}

// TestTransportModernChangesOutput guards against the profile silently
// not being plumbed through: the modern stack must actually alter the
// message-latency series relative to paper (pacing alone reshapes upload
// queueing).
func TestTransportModernChangesOutput(t *testing.T) {
	paper := RunMessagesCampaignParallel(DefaultConfig(), 1, 20*time.Second, false, Options{Workers: 1})
	cfg := DefaultConfig()
	cfg.Transport = ModernTransport()
	modern := RunMessagesCampaignParallel(cfg, 1, 20*time.Second, false, Options{Workers: 1})
	if reflect.DeepEqual(paper.RTTsMs, modern.RTTsMs) {
		t.Error("modern profile produced identical output to paper — profile not applied")
	}
}
