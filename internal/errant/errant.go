// Package errant implements the data-driven network-emulation models the
// paper contributes to the ERRANT emulator (Trevisan et al., Computer
// Networks 2020): per-technology statistical profiles of downlink/uplink
// rate, RTT and loss, fitted from measurement campaigns, that third
// parties can apply to reproduce an access technology without the
// hardware.
//
// Rates and RTTs are modeled log-normally (the standard fit for access
// network measurements); each Apply draw instantiates one emulated
// network condition.
package errant

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// LogNormal parameterizes a log-normal distribution by the mean (Mu) and
// standard deviation (Sigma) of the underlying normal.
type LogNormal struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// Median returns exp(mu).
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }

// Draw samples the distribution.
func (l LogNormal) Draw(rng *sim.RNG) float64 { return rng.LogNormal(l.Mu, l.Sigma) }

// FitLogNormal estimates parameters from positive samples.
func FitLogNormal(samples []float64) LogNormal {
	if len(samples) == 0 {
		return LogNormal{}
	}
	var sum, sum2 float64
	n := 0
	for _, x := range samples {
		if x <= 0 {
			continue
		}
		lx := math.Log(x)
		sum += lx
		sum2 += lx * lx
		n++
	}
	if n == 0 {
		return LogNormal{}
	}
	mu := sum / float64(n)
	varr := sum2/float64(n) - mu*mu
	if varr < 0 {
		varr = 0
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(varr)}
}

// Profile is one technology's emulation model.
type Profile struct {
	Name string `json:"name"`
	// DownMbps and UpMbps model the access rates.
	DownMbps LogNormal `json:"down_mbps"`
	UpMbps   LogNormal `json:"up_mbps"`
	// RTTms models the base round-trip time.
	RTTms LogNormal `json:"rtt_ms"`
	// JitterMs is the half-normal per-packet jitter scale.
	JitterMs float64 `json:"jitter_ms"`
	// LossPct is the stationary *medium* packet loss percentage —
	// losses the radio link inflicts independent of congestion (queue
	// overflows emerge from the emulated buffers on top of this). It is
	// applied as a bursty Gilbert-Elliott process (mean burst 4), per
	// the paper's finding that medium losses come in longer bursts.
	LossPct float64 `json:"loss_pct"`
}

// Condition is one drawn network condition.
type Condition struct {
	DownMbps, UpMbps float64
	RTT              time.Duration
	JitterMs         float64
	LossPct          float64
}

// Draw samples a concrete condition from the profile.
func (p Profile) Draw(rng *sim.RNG) Condition {
	return Condition{
		DownMbps: p.DownMbps.Draw(rng),
		UpMbps:   p.UpMbps.Draw(rng),
		RTT:      time.Duration(p.RTTms.Draw(rng) * float64(time.Millisecond)),
		JitterMs: p.JitterMs,
		LossPct:  p.LossPct,
	}
}

// LinkConfigs materializes the condition as a netem link pair
// (down = toward the client, up = from the client). Queue depth follows
// the usual 1.5x BDP provisioning.
func (c Condition) LinkConfigs(rng *sim.RNG) (down, up netem.LinkConfig) {
	owd := c.RTT / 2
	mk := func(mbps float64, stream string) netem.LinkConfig {
		bdp := mbps * 1e6 / 8 * c.RTT.Seconds()
		queue := int(1.5 * bdp)
		if queue < 64<<10 {
			queue = 64 << 10
		}
		cfg := netem.LinkConfig{
			RateBps:    mbps * 1e6,
			Delay:      netem.ConstantDelay(owd),
			QueueBytes: queue,
		}
		if c.JitterMs > 0 {
			cfg.Jitter = netem.DelayJitterFunc(rng.Stream(stream+"/jitter"),
				time.Duration(c.JitterMs*float64(time.Millisecond)))
		}
		if c.LossPct > 0 {
			p := c.LossPct / 100
			const pbg = 0.25 // mean burst length 4
			cfg.Loss = &netem.GilbertElliott{
				PGB:      pbg * p / (1 - p),
				PBG:      pbg,
				LossGood: 0,
				LossBad:  1,
				Rng:      rng.Stream(stream + "/loss"),
			}
		}
		return cfg
	}
	return mk(c.DownMbps, "down"), mk(c.UpMbps, "up")
}

// Builtin returns the shipped profiles. The starlink and satcom entries
// are the paper's contribution (fitted from its campaign); 4g and 3g
// come from the MONROE-based numbers the paper compares against
// (download median 29.5 Mbit/s, upload 14 Mbit/s for good-signal 4G);
// wired models the campus baseline.
func Builtin() map[string]Profile {
	return map[string]Profile{
		"starlink": {
			Name:     "starlink",
			DownMbps: LogNormal{Mu: math.Log(178), Sigma: 0.25},
			UpMbps:   LogNormal{Mu: math.Log(17), Sigma: 0.35},
			RTTms:    LogNormal{Mu: math.Log(48), Sigma: 0.18},
			JitterMs: 6,
			LossPct:  0.06,
		},
		"satcom-geo": {
			Name:     "satcom-geo",
			DownMbps: LogNormal{Mu: math.Log(82), Sigma: 0.20},
			UpMbps:   LogNormal{Mu: math.Log(4.5), Sigma: 0.30},
			RTTms:    LogNormal{Mu: math.Log(600), Sigma: 0.05},
			JitterMs: 10,
			LossPct:  0.05,
		},
		"4g": {
			Name:     "4g",
			DownMbps: LogNormal{Mu: math.Log(29.5), Sigma: 0.5},
			UpMbps:   LogNormal{Mu: math.Log(14), Sigma: 0.5},
			RTTms:    LogNormal{Mu: math.Log(45), Sigma: 0.3},
			JitterMs: 8,
			LossPct:  0.1,
		},
		"3g": {
			Name:     "3g",
			DownMbps: LogNormal{Mu: math.Log(5), Sigma: 0.6},
			UpMbps:   LogNormal{Mu: math.Log(2), Sigma: 0.6},
			RTTms:    LogNormal{Mu: math.Log(80), Sigma: 0.35},
			JitterMs: 15,
			LossPct:  0.3,
		},
		"wired": {
			Name:     "wired",
			DownMbps: LogNormal{Mu: math.Log(940), Sigma: 0.05},
			UpMbps:   LogNormal{Mu: math.Log(940), Sigma: 0.05},
			RTTms:    LogNormal{Mu: math.Log(8), Sigma: 0.15},
			JitterMs: 0.5,
			LossPct:  0.01,
		},
	}
}

// Fit builds a profile from campaign samples.
func Fit(name string, downMbps, upMbps, rttMs []float64, jitterMs, lossPct float64) Profile {
	return Profile{
		Name:     name,
		DownMbps: FitLogNormal(downMbps),
		UpMbps:   FitLogNormal(upMbps),
		RTTms:    FitLogNormal(rttMs),
		JitterMs: jitterMs,
		LossPct:  lossPct,
	}
}

// MarshalProfiles renders profiles as the JSON artifact format.
func MarshalProfiles(profiles map[string]Profile) ([]byte, error) {
	return json.MarshalIndent(profiles, "", "  ")
}

// UnmarshalProfiles parses the JSON artifact format.
func UnmarshalProfiles(data []byte) (map[string]Profile, error) {
	var out map[string]Profile
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("errant: %w", err)
	}
	return out, nil
}
