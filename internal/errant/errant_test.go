package errant

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

func TestFitLogNormalRecoversParameters(t *testing.T) {
	rng := sim.NewRNG(1).Stream("fit")
	truth := LogNormal{Mu: math.Log(178), Sigma: 0.25}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = truth.Draw(rng)
	}
	fit := FitLogNormal(samples)
	if math.Abs(fit.Mu-truth.Mu) > 0.02 {
		t.Errorf("mu = %v, want %v", fit.Mu, truth.Mu)
	}
	if math.Abs(fit.Sigma-truth.Sigma) > 0.02 {
		t.Errorf("sigma = %v, want %v", fit.Sigma, truth.Sigma)
	}
}

func TestFitLogNormalEdgeCases(t *testing.T) {
	if f := FitLogNormal(nil); f.Mu != 0 || f.Sigma != 0 {
		t.Error("empty fit should be zero")
	}
	if f := FitLogNormal([]float64{-1, 0}); f.Mu != 0 {
		t.Error("non-positive samples must be ignored")
	}
	f := FitLogNormal([]float64{100})
	if f.Sigma != 0 || math.Abs(f.Median()-100) > 1e-9 {
		t.Errorf("single-sample fit = %+v", f)
	}
}

func TestBuiltinProfilesSane(t *testing.T) {
	rng := sim.NewRNG(2).Stream("draw")
	profiles := Builtin()
	for _, name := range []string{"starlink", "satcom-geo", "4g", "3g", "wired"} {
		p, ok := profiles[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		c := p.Draw(rng)
		if c.DownMbps <= 0 || c.UpMbps <= 0 || c.RTT <= 0 {
			t.Errorf("%s: degenerate condition %+v", name, c)
		}
	}
	// Ordering facts the paper reports.
	if profiles["starlink"].DownMbps.Median() <= profiles["satcom-geo"].DownMbps.Median() {
		t.Error("starlink download median must exceed satcom")
	}
	if profiles["starlink"].RTTms.Median() >= profiles["satcom-geo"].RTTms.Median()/5 {
		t.Error("starlink RTT must be far below GEO satcom")
	}
	if profiles["4g"].UpMbps.Median() < profiles["starlink"].UpMbps.Median()*0.5 {
		t.Error("4G upload should be comparable to starlink's (paper: 14 vs 17)")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	in := Builtin()
	data, err := MarshalProfiles(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalProfiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("profiles = %d, want %d", len(out), len(in))
	}
	for k, p := range in {
		if out[k] != p {
			t.Errorf("%s: %+v != %+v", k, out[k], p)
		}
	}
	if _, err := UnmarshalProfiles([]byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestConditionLinkConfigs(t *testing.T) {
	rng := sim.NewRNG(3).Stream("x")
	c := Condition{DownMbps: 100, UpMbps: 10, RTT: 60 * time.Millisecond, JitterMs: 5, LossPct: 1}
	down, up := c.LinkConfigs(rng)
	if down.RateBps != 100e6 || up.RateBps != 10e6 {
		t.Errorf("rates: %v / %v", down.RateBps, up.RateBps)
	}
	if down.Delay(0) != 30*time.Millisecond {
		t.Errorf("one-way delay = %v", down.Delay(0))
	}
	// Queue ~1.5x BDP: 100Mbps x 60ms = 750kB -> ~1125kB.
	if down.QueueBytes < 1000<<10 || down.QueueBytes > 1300<<10 {
		t.Errorf("down queue = %d", down.QueueBytes)
	}
	if down.Loss == nil || down.Jitter == nil {
		t.Error("loss/jitter not configured")
	}
	ge := down.Loss.(*netem.GilbertElliott)
	if r := ge.StationaryLossRate(); math.Abs(r-0.01) > 1e-9 {
		t.Errorf("stationary loss = %v, want 0.01", r)
	}
	if j := down.Jitter(0); j < 0 {
		t.Error("negative jitter")
	}
}

func TestDrawProperty(t *testing.T) {
	rng := sim.NewRNG(4).Stream("q")
	p := Builtin()["starlink"]
	f := func(uint8) bool {
		c := p.Draw(rng)
		return c.DownMbps > 0 && c.UpMbps > 0 && c.RTT > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmulatedStarlinkEndToEnd(t *testing.T) {
	// Use the profile the way a third party would: draw a condition,
	// build a two-node network, run a transfer, check the throughput
	// lands near the drawn rate.
	sched := sim.NewScheduler(5)
	rng := sched.RNG().Stream("errant")
	cond := Builtin()["starlink"].Draw(rng)
	down, up := cond.LinkConfigs(rng)

	nw := netem.New(sched)
	client := nw.NewNode("client", netem.MustParseAddr("10.0.0.2"))
	server := nw.NewNode("server", netem.MustParseAddr("10.0.0.1"))
	s2c := nw.AddLink(server, client, down)
	c2s := nw.AddLink(client, server, up)
	client.SetDefaultRoute(c2s)
	server.AddRoute(client.Addr(), s2c)

	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 0
	received := 0
	var done sim.Time
	tcpsim.Listen(client, 80, cfg, func(c *tcpsim.Conn) {
		c.OnData = func(n int, fin bool) {
			received += n
			if fin {
				done = sched.Now()
			}
		}
	})
	const total = 20 << 20
	var start sim.Time
	c := tcpsim.Dial(server, client.Addr(), 80, cfg)
	c.OnEstablished = func() {
		start = sched.Now()
		c.Write(total)
		c.Close()
	}
	sched.RunFor(5 * time.Minute)
	if received != total {
		t.Fatalf("received %d/%d (cond %+v)", received, total, cond)
	}
	mbps := float64(total) * 8 / done.Sub(start).Seconds() / 1e6
	if mbps < cond.DownMbps*0.25 || mbps > cond.DownMbps*1.05 {
		t.Errorf("goodput %.1f Mbit/s vs drawn capacity %.1f", mbps, cond.DownMbps)
	}
}
