package fleet

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// ringInstants returns one epoch instant per slot of the constellation
// snapshot ring: cycling through exactly this set keeps every
// SnapshotAt a cache hit, which is the steady state the gates measure
// (a cold instant computes and caches a snapshot, which allocates by
// design).
func ringInstants() [8]sim.Time {
	var at [8]sim.Time
	for i := range at {
		at[i] = sim.Time(int64(i) * int64(15*time.Second))
	}
	return at
}

// TestAllocGateFleetReassign holds the per-epoch cell-indexed
// reassignment path — snapshot lookup, candidate CSR build, per-terminal
// scan, gateway selection, delay derivation — to zero steady-state
// allocations. Single worker: the multi-worker variant pays its
// goroutine spawns and nothing else.
func TestAllocGateFleetReassign(t *testing.T) {
	fl := New(Config{Seed: 5, Terminals: 3000, Workers: 1})
	instants := ringInstants()
	// Warm: fill the snapshot ring and grow the candidate scratch to its
	// high-water mark across all eight instants.
	for r := 0; r < 3; r++ {
		for _, at := range instants {
			fl.ReassignAt(at)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(80, func() {
		fl.ReassignAt(instants[i%len(instants)])
		i++
	}); avg != 0 {
		t.Errorf("fleet reassign: %v allocs per epoch, want 0", avg)
	}
}

// TestAllocGateObserveEpoch extends the gate over the beam-contention
// accounting pass (without obs attached — tracer emission is itself
// alloc-free but counter registration happens at New time either way).
func TestAllocGateObserveEpoch(t *testing.T) {
	fl := New(Config{Seed: 5, Terminals: 3000, Workers: 1})
	instants := ringInstants()
	for r := 0; r < 3; r++ {
		for e, at := range instants {
			fl.ReassignAt(at)
			fl.observeEpoch(e, at)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(40, func() {
		at := instants[i%len(instants)]
		fl.ReassignAt(at)
		fl.observeEpoch(i%len(instants), at)
		i++
	}); avg != 0 {
		t.Errorf("reassign+observe epoch: %v allocs, want 0", avg)
	}
}

// TestAllocGateFleetEpoch100k holds the 100k-terminal partitioned epoch
// path — pooled multi-worker reassignment plus the scratch-and-merge
// observation phase — to zero steady-state allocations. This is the
// regime the 1M bench sweep scales from: the pool hands out channel
// tokens instead of spawning goroutines, every worker observes into
// preallocated scratch, and the merge is pure integer adds, so epoch
// cost is flat at any fleet size once warm.
func TestAllocGateFleetEpoch100k(t *testing.T) {
	fl := New(Config{Seed: 5, Terminals: 100000, Workers: 4})
	defer fl.Close()
	instants := ringInstants()
	for r := 0; r < 2; r++ {
		for e, at := range instants {
			fl.RunEpoch(e, at)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(8, func() {
		fl.RunEpoch(i%len(instants), instants[i%len(instants)])
		i++
	}); avg != 0 {
		t.Errorf("100k pooled epoch: %v allocs, want 0", avg)
	}
}

// BenchmarkReassignCellIndex measures the steady-state per-epoch cost of
// the cell-indexed path on a 10k-terminal Gen1 fleet. Must report
// 0 allocs/op.
func BenchmarkReassignCellIndex(b *testing.B) {
	fl := New(Config{Seed: 5, Terminals: 10000, Workers: 1})
	instants := ringInstants()
	for r := 0; r < 2; r++ {
		for _, at := range instants {
			fl.ReassignAt(at)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.ReassignAt(instants[i%len(instants)])
	}
}

// BenchmarkReassignReference is the naive O(N×M) scan on the same fleet,
// for the speedup figure starlink-bench reports.
func BenchmarkReassignReference(b *testing.B) {
	fl := New(Config{Seed: 5, Terminals: 10000, Workers: 1})
	instants := ringInstants()
	fl.ReferenceReassignAt(instants[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.ReferenceReassignAt(instants[i%len(instants)])
	}
}
