package fleet

import (
	"math"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/sim"
)

// assignBlock is the unit of work the parallel reassignment hands to
// workers: big enough to amortize the atomic fetch, small enough to
// balance cells of very different terminal density.
const assignBlock = 2048

// ReassignAt recomputes every terminal's serving satellite, gateway and
// bent-pipe delay for the epoch instant at, using the cell index: one
// sweep over the constellation builds per-cell candidate lists (CSR into
// reused scratch), then each terminal scans only its cell's candidates.
// With cfg.Workers > 1 the per-terminal phase fans out over the fleet's
// persistent worker pool (pool.go); every terminal is a pure function of
// (position, snapshot), so results are bit-identical for any worker
// count.
//
// Steady state allocates nothing for any worker count once the snapshot
// ring and the candidate scratch have warmed up — the pool replaced the
// old per-epoch goroutine spawns with channel tokens, which is what lets
// the 100k-terminal alloc gate run the multi-worker path; the fleet
// alloc gates hold both paths to zero.
func (f *Fleet) ReassignAt(at sim.Time) {
	snap := f.con.SnapshotAt(at)
	f.buildCandidates(snap)
	if f.pool == nil {
		f.assignRange(0, len(f.sat))
		return
	}
	f.pool.runPhase(phaseAssign)
}

// buildCandidates fills the per-cell candidate CSR (candStart, cands)
// from the snapshot: two identical enumeration passes — count, then fill
// — so the only allocation ever needed is growing cands toward its
// high-water mark. Enumeration is ascending in flat satellite id, and a
// satellite is admitted to a given cell at most once, so every cell's
// candidate list is strictly increasing — which is what makes the
// argmax tie-break below match the ascending reference scan exactly.
func (f *Fleet) buildCandidates(snap *leo.Snapshot) {
	for si := range f.shells {
		f.shellPos[si] = snap.ShellPositions(si)
	}
	for c := range f.candCount {
		f.candCount[c] = 0
	}
	f.scanSats(false)
	total := int32(0)
	for c := range f.candCount {
		f.candStart[c] = total
		total += f.candCount[c]
	}
	f.candStart[len(f.candCount)] = total
	copy(f.candFill, f.candStart[:len(f.candCount)])
	if cap(f.cands) < int(total) {
		f.cands = make([]int32, total)
	} else {
		f.cands = f.cands[:total]
	}
	f.scanSats(true)
}

// scanSats runs the satellite→cell admission sweep. fill=false counts
// admissions per cell, fill=true writes them; the two passes share this
// one body (a boolean, not closures — closures allocate) so they cannot
// diverge.
//
// Admission reasons on the sphere: a terminal in cell c can see
// satellite s only if the central angle between the terminal and the
// subsatellite point is at most the shell's coverage angle λ. Any point
// of c is within row.radius of c's center, so it suffices to admit s
// into every cell whose center is within reach = λ + margin + row.radius
// of the subsatellite point. Per row that is a latitude band test plus
// an exact longitude window: with Δ the center-to-subsatellite angle,
// cos Δ = A + B·cos(lonS − lonC), A = sin latS·sin latC,
// B = cos latS·cos latC, so cos(lonS − lonC) ≥ (cos reach − A)/B.
func (f *Fleet) scanSats(fill bool) {
	for si := range f.shells {
		m := &f.shells[si]
		pos := f.shellPos[si]
		for j, en := range m.enabled {
			if !en {
				continue
			}
			s := int32(m.offset + j)
			p := pos[j]
			norm := math.Sqrt(p.X*p.X + p.Y*p.Y + p.Z*p.Z)
			satLat := math.Asin(p.Z / norm)
			satLon := math.Atan2(p.Y, p.X)
			sinLatS, cosLatS := math.Sincos(satLat)
			for r := range f.grid.rows {
				row := &f.grid.rows[r]
				reach := m.reach + row.radius
				if math.Abs(satLat-row.midLat) > reach {
					continue
				}
				cosReach := math.Cos(reach)
				a := sinLatS * row.sinMid
				b := cosLatS * row.cosMid
				if b <= 1e-12 {
					// Polar degeneracy: the window is all-or-nothing.
					if a >= cosReach {
						f.admitRow(row, 0, int(row.nLon)-1, s, fill)
					}
					continue
				}
				x := (cosReach - a) / b
				if x > 1 {
					continue
				}
				if x <= -1 {
					f.admitRow(row, 0, int(row.nLon)-1, s, fill)
					continue
				}
				dlon := math.Acos(x)
				w := row.width
				kLo := int(math.Ceil((satLon+math.Pi-dlon)/w - 0.5))
				kHi := int(math.Floor((satLon+math.Pi+dlon)/w - 0.5))
				if kHi-kLo+1 >= int(row.nLon) {
					f.admitRow(row, 0, int(row.nLon)-1, s, fill)
					continue
				}
				f.admitRow(row, kLo, kHi, s, fill)
			}
		}
	}
}

// admitRow admits satellite s into cells kLo..kHi of a row (inclusive,
// wrapping modulo the row width).
func (f *Fleet) admitRow(row *gridRow, kLo, kHi int, s int32, fill bool) {
	n := int(row.nLon)
	for k := kLo; k <= kHi; k++ {
		kk := k % n
		if kk < 0 {
			kk += n
		}
		c := row.start + int32(kk)
		if fill {
			f.cands[f.candFill[c]] = s
			f.candFill[c]++
		} else {
			f.candCount[c]++
		}
	}
}

// sinElevation returns sin(elevation) of a satellite position seen from
// terminal t — the one shared formula both assignment paths compare, so
// fast and reference argmax decisions are bitwise identical.
func (f *Fleet) sinElevation(t int, sp geo.ECEF) float64 {
	dx := sp.X - f.px[t]
	dy := sp.Y - f.py[t]
	dz := sp.Z - f.pz[t]
	dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
	return (dx*f.px[t] + dy*f.py[t] + dz*f.pz[t]) / (dn * f.pnorm[t])
}

// assignRange assigns terminals [lo, hi) from the candidate CSR.
func (f *Fleet) assignRange(lo, hi int) {
	for t := lo; t < hi; t++ {
		c := f.cell[t]
		best := int32(-1)
		bestSin := -2.0
		for _, s := range f.cands[f.candStart[c]:f.candStart[c+1]] {
			sinEl := f.sinElevation(t, f.satPos(s))
			if sinEl < f.sinMask || sinEl <= bestSin {
				continue
			}
			best, bestSin = s, sinEl
		}
		f.finishAssignment(t, best)
	}
}

// ReferenceReassignAt is the naive O(terminals × constellation) scan the
// equivalence suite holds the cell-indexed path to: every terminal tests
// every enabled satellite, ascending in flat id, with the same
// sinElevation comparison and the same gateway/delay finish. Kept
// in-tree, never fast-pathed.
func (f *Fleet) ReferenceReassignAt(at sim.Time) {
	snap := f.con.SnapshotAt(at)
	for si := range f.shells {
		f.shellPos[si] = snap.ShellPositions(si)
	}
	for t := range f.sat {
		best := int32(-1)
		bestSin := -2.0
		for si := range f.shells {
			m := &f.shells[si]
			pos := f.shellPos[si]
			for j, en := range m.enabled {
				if !en {
					continue
				}
				sinEl := f.sinElevation(t, pos[j])
				if sinEl < f.sinMask || sinEl <= bestSin {
					continue
				}
				best, bestSin = int32(m.offset+j), sinEl
			}
		}
		f.finishAssignment(t, best)
	}
}

// satPos resolves a flat satellite id against the current epoch's
// snapshot slices.
func (f *Fleet) satPos(s int32) geo.ECEF {
	for si := len(f.shells) - 1; si >= 0; si-- {
		if m := &f.shells[si]; int(s) >= m.offset {
			return f.shellPos[si][int(s)-m.offset]
		}
	}
	return geo.ECEF{}
}

// finishAssignment records terminal t's serving satellite and derives
// the gateway and bent-pipe delay. A terminal with no satellite, or
// whose satellite reaches no gateway, is in outage (delay -1). The
// gateway does not feed back into satellite choice — unlike
// leo.Terminal, which skips satellites without ground paths, the fleet
// model treats "satellite overhead but no gateway" as an outage, the
// situation remote-area dishes actually experience.
func (f *Fleet) finishAssignment(t int, best int32) {
	f.sat[t] = best
	if best < 0 {
		f.gw[t] = -1
		f.delayNs[t] = -1
		return
	}
	sp := f.satPos(best)
	g := f.bestGateway(sp)
	f.gw[t] = g
	if g < 0 {
		f.delayNs[t] = -1
		return
	}
	dx := sp.X - f.px[t]
	dy := sp.Y - f.py[t]
	dz := sp.Z - f.pz[t]
	up := math.Sqrt(dx*dx + dy*dy + dz*dz)
	e := f.gwEcef[g]
	dx, dy, dz = sp.X-e.X, sp.Y-e.Y, sp.Z-e.Z
	down := math.Sqrt(dx*dx + dy*dy + dz*dz)
	f.delayNs[t] = int64(geo.RadioDelay(up + down))
}

// bestGateway returns the gateway with the shortest slant range that
// sees the satellite above its mask, or -1. Same cross-multiplied sine
// test as leo.Terminal.bestGateway; ties keep the first (lowest index).
func (f *Fleet) bestGateway(sp geo.ECEF) int32 {
	best := int32(-1)
	bestRange := 0.0
	for i := range f.gwEcef {
		e := f.gwEcef[i]
		dx := sp.X - e.X
		dy := sp.Y - e.Y
		dz := sp.Z - e.Z
		dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if dx*e.X+dy*e.Y+dz*e.Z < f.gwSinMask[i]*dn*f.gwNorm[i] {
			continue
		}
		if best < 0 || dn < bestRange {
			best, bestRange = int32(i), dn
		}
	}
	return best
}
