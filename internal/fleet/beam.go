package fleet

import (
	"math"
	"sort"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/stats"
)

// regionAccum aggregates one region's campaign outcome. The beam pass is
// sequential, so plain fields suffice and the totals are independent of
// the reassignment worker count. Distributions use stats.FixedDist —
// bounded memory and deterministic quantiles over millions of
// terminal-epoch observations.
type regionAccum struct {
	terminals  int
	samples    int64
	outages    int64
	handovers  int64
	latency    stats.FixedDist // RTT in ms
	peak       stats.FixedDist // per-terminal Mbps share, local 18:00-23:00
	offPeak    stats.FixedDist
	cSamples   *obs.Counter
	cOutage    *obs.Counter
	cHandover  *obs.Counter
	hLatencyNs *obs.Histogram
	hTputKbps  *obs.Histogram
	subj       obs.Subj
}

func (f *Fleet) initAccum() {
	f.acc = make([]regionAccum, len(f.regions))
	for ri, name := range f.regions {
		a := &f.acc[ri]
		// 0.5 ms × 600 buckets spans RTTs to 300 ms; 1 Mbps × 500
		// spans shares past the per-terminal cap.
		a.latency = stats.NewFixedDist(0.5, 600)
		a.peak = stats.NewFixedDist(1, 500)
		a.offPeak = stats.NewFixedDist(1, 500)
		if f.cfg.Obs != nil {
			reg := f.cfg.Obs.Registry()
			a.cSamples = reg.Counter("fleet." + name + ".samples")
			a.cOutage = reg.Counter("fleet." + name + ".outage_term_epochs")
			a.cHandover = reg.Counter("fleet." + name + ".handovers")
			a.hLatencyNs = reg.Histogram("fleet."+name+".latency_ns", obs.DurationBounds())
			a.hTputKbps = reg.Histogram("fleet."+name+".throughput_kbps", obs.SizeBounds())
			a.subj = f.cfg.Obs.Tracer().Subject("fleet/" + name)
		}
	}
	for _, r := range f.region {
		f.acc[r].terminals++
	}
}

// activeDraw is an inline splitmix64 over (terminal seed, epoch): the
// per-epoch activity coin. Deliberately not sim.DeriveSeed — the fnv
// hash there allocates, and this runs per terminal per epoch.
func activeDraw(seed uint64, epoch int64) float64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(epoch+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// localHour returns the mean-solar local hour-of-day at a longitude.
func localHour(utcHours, lonDeg float64) float64 {
	h := math.Mod(utcHours+lonDeg/15, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// activeProb is the diurnal activity model: a cosine over the local day
// peaking at 20:00 (75% of terminals active) with an 08:00 trough (30%),
// the load shape behind the Multifaceted paper's peak-hour dip.
func activeProb(hLocal float64) float64 {
	return 0.30 + 0.225*(1+math.Cos(2*math.Pi*(hLocal-20)/24))
}

// observeEpoch runs the beam-contention and accounting pass for epoch e:
// per cell, concurrently active terminals served by the same satellite
// split one beam's capacity. Sequential by design — accumulation order
// is then a pure function of terminal order, which placement fixed.
func (f *Fleet) observeEpoch(e int, at sim.Time) {
	utcHours := at.Seconds() / 3600
	for ri := range f.epochOut {
		f.epochOut[ri] = 0
		f.epochHo[ri] = 0
	}
	for c := 0; c < f.grid.nCells; c++ {
		lo, hi := int(f.cellStart[c]), int(f.cellStart[c+1])
		if lo == hi {
			continue
		}
		// Pass 1: per distinct serving satellite, count active served
		// terminals sharing its beam over this cell.
		f.satList = f.satList[:0]
		f.satCnt = f.satCnt[:0]
		for t := lo; t < hi; t++ {
			h := localHour(utcHours, f.lon[t])
			f.active[t] = activeDraw(f.seed[t], int64(e)) < activeProb(h)
			if !f.active[t] || f.sat[t] < 0 || f.delayNs[t] < 0 {
				continue
			}
			found := false
			for k, s := range f.satList {
				if s == f.sat[t] {
					f.satCnt[k]++
					found = true
					break
				}
			}
			if !found {
				f.satList = append(f.satList, f.sat[t])
				f.satCnt = append(f.satCnt, 1)
			}
		}
		// Pass 2: account every terminal of the cell.
		for t := lo; t < hi; t++ {
			a := &f.acc[f.region[t]]
			if f.delayNs[t] < 0 {
				a.outages++
				a.cOutage.Inc()
				f.epochOut[f.region[t]]++
				continue
			}
			rttNs := 2 * f.delayNs[t]
			a.samples++
			a.cSamples.Inc()
			a.latency.Observe(float64(rttNs) / 1e6)
			a.hLatencyNs.Observe(rttNs)
			if e > 0 && f.prevSat[t] >= 0 && f.sat[t] != f.prevSat[t] {
				a.handovers++
				a.cHandover.Inc()
				f.epochHo[f.region[t]]++
			}
			if f.active[t] {
				share := f.cfg.MaxTermMbps
				for k, s := range f.satList {
					if s == f.sat[t] {
						if per := f.cfg.BeamMbps / float64(f.satCnt[k]); per < share {
							share = per
						}
						break
					}
				}
				h := localHour(utcHours, f.lon[t])
				if h >= 18 && h < 23 {
					a.peak.Observe(share)
				} else {
					a.offPeak.Observe(share)
				}
				a.hTputKbps.Observe(int64(share * 1000))
			}
		}
	}
	if f.cfg.Obs != nil {
		tr := f.cfg.Obs.Tracer()
		for ri := range f.acc {
			tr.Emit(at, obs.KindFleetEpoch, f.acc[ri].subj, f.epochOut[ri], f.epochHo[ri])
		}
	}
	copy(f.prevSat, f.sat)
}

// result folds the accumulators into the per-region report, regions
// sorted by name.
func (f *Fleet) result(epochs int) *Result {
	res := &Result{
		Terminals:  len(f.sat),
		Epochs:     epochs,
		Cells:      f.grid.nCells,
		Satellites: f.nSats,
	}
	for ri, name := range f.regions {
		a := &f.acc[ri]
		rr := RegionResult{
			Region:           name,
			Terminals:        a.terminals,
			Samples:          a.samples,
			OutageTermEpochs: a.outages,
			Handovers:        a.handovers,
			LatencyP50Ms:     a.latency.Quantile(0.50),
			LatencyP95Ms:     a.latency.Quantile(0.95),
			PeakMbpsP50:      a.peak.Quantile(0.50),
			OffPeakMbpsP50:   a.offPeak.Quantile(0.50),
		}
		if te := int64(a.terminals) * int64(epochs); te > 0 {
			rr.OutagePct = 100 * float64(a.outages) / float64(te)
		}
		// The dip is meaningful only when the campaign's local-time span
		// produced samples in both windows; a short run that never enters
		// (or never leaves) a region's 18:00-23:00 window reports 0.
		if a.peak.N() > 0 && a.offPeak.N() > 0 && rr.OffPeakMbpsP50 > 0 {
			rr.PeakDipPct = 100 * (1 - rr.PeakMbpsP50/rr.OffPeakMbpsP50)
		}
		res.Regions = append(res.Regions, rr)
	}
	sort.Slice(res.Regions, func(i, j int) bool {
		return res.Regions[i].Region < res.Regions[j].Region
	})
	return res
}
