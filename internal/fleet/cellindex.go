package fleet

import (
	"math"

	"starlinkperf/internal/geo"
)

// cellGrid tiles the sphere into latitude rows of cellDeg height, each
// split into longitude cells whose count shrinks with cos(latitude) so
// cells stay roughly equal-area (~2.5° ≈ 280 km at the equator). Cell
// ids are dense: row r owns [rows[r].start, rows[r].start+rows[r].nLon).
//
// The grid is the pivot of the O(cells-in-view) reassignment: instead of
// testing every terminal against every satellite, each epoch walks the
// satellites once and admits each into the cells its coverage disk can
// overlap; terminals then scan only their own cell's candidate list. The
// admission test is deliberately one-sided — it may admit satellites a
// terminal cannot actually see (the mask test rejects them later), but
// must never miss one a terminal could see. FuzzCellIndex hammers
// exactly that superset property.
type cellGrid struct {
	cellDeg float64
	rows    []gridRow
	nCells  int
}

type gridRow struct {
	start int32
	nLon  int32
	width float64 // longitude cell width, radians
	// Cell-center latitude and its sin/cos, used by the admission
	// window; radius bounds the central angle from any point of a cell
	// to that cell's center (meridian leg + parallel leg at midLat).
	midLat float64
	sinMid float64
	cosMid float64
	radius float64
}

func newCellGrid(cellDeg float64) *cellGrid {
	nRows := int(math.Ceil(180 / cellDeg))
	g := &cellGrid{cellDeg: cellDeg, rows: make([]gridRow, 0, nRows)}
	start := 0
	for r := 0; r < nRows; r++ {
		latLo := -90 + float64(r)*cellDeg
		latHi := latLo + cellDeg
		if latHi > 90 {
			latHi = 90
		}
		mid := geo.Radians((latLo + latHi) / 2)
		nLon := int(math.Round(360 / cellDeg * math.Cos(mid)))
		if nLon < 1 {
			nLon = 1
		}
		w := 2 * math.Pi / float64(nLon)
		sinMid, cosMid := math.Sincos(mid)
		g.rows = append(g.rows, gridRow{
			start:  int32(start),
			nLon:   int32(nLon),
			width:  w,
			midLat: mid,
			sinMid: sinMid,
			cosMid: cosMid,
			radius: geo.Radians(latHi-latLo)/2 + w/2*cosMid,
		})
		start += nLon
	}
	g.nCells = start
	return g
}

// cellOf maps a geodetic position to its cell id. Latitudes clamp to
// ±90°, longitudes wrap (so +180° and -180° land in the same cell).
func (g *cellGrid) cellOf(latDeg, lonDeg float64) int32 {
	if latDeg < -90 {
		latDeg = -90
	}
	if latDeg > 90 {
		latDeg = 90
	}
	r := int((latDeg + 90) / g.cellDeg)
	if r >= len(g.rows) {
		r = len(g.rows) - 1
	}
	if r < 0 {
		r = 0
	}
	row := &g.rows[r]
	k := int((wrapLon(lonDeg) + 180) / 360 * float64(row.nLon))
	if k >= int(row.nLon) {
		k = int(row.nLon) - 1
	}
	if k < 0 {
		k = 0
	}
	return row.start + int32(k)
}
