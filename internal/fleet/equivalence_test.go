package fleet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// miniShell is a reduced Walker shell for tests that run the O(N×M)
// reference scan many times: same altitude and inclination class as Gen1,
// 288 slots instead of 1584.
func miniShell() leo.ShellConfig {
	return leo.ShellConfig{
		Name:           "mini",
		AltKm:          550,
		InclinationDeg: 53,
		Planes:         24,
		SatsPerPlane:   12,
		PhasingF:       5,
	}
}

// bandClusters returns a cluster set confined to one latitude band, so
// the equivalence suite exercises equatorial cells (widest), mid-latitude
// cells (the population bulk) and the coverage edge (where pruning
// windows degenerate).
func bandClusters(band string) []Cluster {
	switch band {
	case "equatorial":
		return []Cluster{
			{"singapore", "asia", geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}, 80, 5},
			{"bogota", "south-america", geo.LatLon{LatDeg: 4.71, LonDeg: -74.07}, 100, 4},
			{"nairobi", "africa", geo.LatLon{LatDeg: -1.29, LonDeg: 36.82}, 100, 4},
		}
	case "mid":
		return []Cluster{
			{"brussels", "europe", geo.LatLon{LatDeg: 50.85, LonDeg: 4.35}, 100, 5},
			{"seattle", "north-america", geo.LatLon{LatDeg: 47.61, LonDeg: -122.33}, 100, 4},
			{"sydney", "oceania", geo.LatLon{LatDeg: -33.87, LonDeg: 151.21}, 120, 6},
		}
	case "high":
		return []Cluster{
			{"tromso", "high-north", geo.LatLon{LatDeg: 69.65, LonDeg: 18.96}, 60, 1},
			{"fairbanks", "high-north", geo.LatLon{LatDeg: 64.84, LonDeg: -147.72}, 80, 1},
			{"punta-arenas", "south-america", geo.LatLon{LatDeg: -53.16, LonDeg: -70.91}, 80, 2},
		}
	}
	panic("unknown band " + band)
}

func equivConfig(seed uint64, band string) Config {
	return Config{
		Seed:      seed,
		Terminals: 800,
		Horizon:   5 * time.Minute,
		Epoch:     15 * time.Second,
		Clusters:  bandClusters(band),
		Shells:    []leo.ShellConfig{miniShell()},
	}
}

// TestCellIndexMatchesReference is the core equivalence suite: for every
// (seed, latitude band) case, the cell-indexed reassignment must produce
// bit-identical serving satellites, gateways and delays to the naive
// all-satellites scan, epoch by epoch.
func TestCellIndexMatchesReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for _, band := range []string{"equatorial", "mid", "high"} {
			cfg := equivConfig(seed, band)
			fast := New(cfg)
			ref := New(cfg)
			for e := 0; e < 16; e++ {
				at := sim.Time(int64(e) * int64(cfg.Epoch))
				fast.ReassignAt(at)
				ref.ReferenceReassignAt(at)
				if !reflect.DeepEqual(fast.sat, ref.sat) {
					t.Fatalf("seed %d band %s epoch %d: serving sats diverge", seed, band, e)
				}
				if !reflect.DeepEqual(fast.gw, ref.gw) {
					t.Fatalf("seed %d band %s epoch %d: gateways diverge", seed, band, e)
				}
				if !reflect.DeepEqual(fast.delayNs, ref.delayNs) {
					t.Fatalf("seed %d band %s epoch %d: delays diverge", seed, band, e)
				}
			}
		}
	}
}

// runWithSink runs a full campaign with observability attached and
// returns the result plus canonical metric/trace exports.
func runWithSink(cfg Config) (*Result, []byte, []byte) {
	sink := obs.NewSink(0)
	cfg.Obs = sink
	res := Run(cfg)
	col := obs.NewCollector()
	col.Add("fleet/0000", sink)
	return res, col.ExportMetricsJSON(), col.ExportTraceBinary()
}

// TestRunReferenceEquivalence drives two whole campaigns — cell-indexed
// and reference — through the full pipeline including beam contention and
// observability, and demands identical results and identical exported
// bytes.
func TestRunReferenceEquivalence(t *testing.T) {
	cfg := equivConfig(3, "mid")
	cfg.Horizon = 4 * time.Minute
	fast, fastMetrics, fastTrace := runWithSink(cfg)
	cfg.Reference = true
	ref, refMetrics, refTrace := runWithSink(cfg)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("results diverge:\nfast: %+v\nref:  %+v", fast, ref)
	}
	if !bytes.Equal(fastMetrics, refMetrics) {
		t.Error("metrics exports differ between cell-indexed and reference campaigns")
	}
	if !bytes.Equal(fastTrace, refTrace) {
		t.Error("trace exports differ between cell-indexed and reference campaigns")
	}
}

// TestRunWorkerInvariance: the same campaign at 1 and 8 workers must
// produce identical results and byte-identical exports — reassignment
// fans out, but every terminal is a pure function of the snapshot.
func TestRunWorkerInvariance(t *testing.T) {
	cfg := equivConfig(11, "mid")
	cfg.Horizon = 4 * time.Minute
	cfg.Workers = 1
	one, oneMetrics, oneTrace := runWithSink(cfg)
	cfg.Workers = 8
	eight, eightMetrics, eightTrace := runWithSink(cfg)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("results diverge across worker counts:\n1: %+v\n8: %+v", one, eight)
	}
	if !bytes.Equal(oneMetrics, eightMetrics) {
		t.Error("metrics exports differ across worker counts")
	}
	if !bytes.Equal(oneTrace, eightTrace) {
		t.Error("trace exports differ across worker counts")
	}
}

// TestEpochCampaignWorkerInvariance is the partitioned epoch campaign's
// proof obligation: full campaigns — results, metrics exports, trace
// exports — must be bit-identical between the single-threaded reference
// (Workers 1, direct accumulation) and the pooled fork/join path
// (Workers 2 and 8, per-worker scratch with ordered merge) across
// several seeds and latitude bands. The ci.sh 100k-terminal byte-diff
// runs the same comparison at scale.
func TestEpochCampaignWorkerInvariance(t *testing.T) {
	cases := []struct {
		seed uint64
		band string
	}{{3, "mid"}, {17, "equatorial"}, {29, "high"}}
	for _, tc := range cases {
		cfg := equivConfig(tc.seed, tc.band)
		cfg.Horizon = 4 * time.Minute
		cfg.Workers = 1
		want, wantMetrics, wantTrace := runWithSink(cfg)
		for _, w := range []int{2, 8} {
			cfg.Workers = w
			got, gotMetrics, gotTrace := runWithSink(cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d band %s: %d-worker campaign result diverges from reference:\n got: %+v\nwant: %+v",
					tc.seed, tc.band, w, got, want)
			}
			if !bytes.Equal(gotMetrics, wantMetrics) {
				t.Errorf("seed %d band %s: %d-worker metrics export differs from reference", tc.seed, tc.band, w)
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Errorf("seed %d band %s: %d-worker trace export differs from reference", tc.seed, tc.band, w)
			}
		}
	}
}

// TestRunEpochSequentialMatchesPooled pins RunEpochSequential — the
// in-tree single-threaded epoch the bench scale sweep times speedup
// against — to the pooled path on the same fleet state.
func TestRunEpochSequentialMatchesPooled(t *testing.T) {
	cfg := equivConfig(5, "mid")
	cfg.Workers = 4
	pooled := New(cfg)
	defer pooled.Close()
	seq := New(cfg)
	defer seq.Close()
	for e := 0; e < 8; e++ {
		at := sim.Time(int64(e) * int64(cfg.Epoch))
		pooled.RunEpoch(e, at)
		seq.RunEpochSequential(e, at)
		if !reflect.DeepEqual(pooled.sat, seq.sat) || !reflect.DeepEqual(pooled.delayNs, seq.delayNs) {
			t.Fatalf("epoch %d: assignments diverge between pooled and sequential epoch", e)
		}
	}
	if !reflect.DeepEqual(pooled.result(8), seq.result(8)) {
		t.Fatal("campaign results diverge between pooled and sequential epochs")
	}
}

// TestReassignWorkerInvariance checks the assignment arrays directly
// across worker counts, epoch by epoch, on the full Gen1 shell.
func TestReassignWorkerInvariance(t *testing.T) {
	base := Config{Seed: 9, Terminals: 3000, Workers: 1}
	fleets := []*Fleet{New(base)}
	for _, w := range []int{2, 8} {
		cfg := base
		cfg.Workers = w
		fleets = append(fleets, New(cfg))
	}
	for e := 0; e < 6; e++ {
		at := sim.Time(int64(e) * int64(15*time.Second))
		for _, fl := range fleets {
			fl.ReassignAt(at)
		}
		for i, fl := range fleets[1:] {
			if !reflect.DeepEqual(fleets[0].sat, fl.sat) || !reflect.DeepEqual(fleets[0].delayNs, fl.delayNs) {
				t.Fatalf("epoch %d: worker variant %d diverges from single-worker", e, i)
			}
		}
	}
}
