package fleet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"starlinkperf/internal/obs"
)

// fidExport is one run's full observability output, byte-compared across
// fidelity modes: if the fast path changed anything observable — a
// counter, a histogram bucket, a trace record, an RTT sample — it shows
// up here.
type fidExport struct{ metrics, jsonl, binary []byte }

func runFidelity(t *testing.T, c TrafficConfig, mode FidelityMode) (fidExport, *TrafficResult, *Traffic) {
	t.Helper()
	col := obs.NewCollector()
	c.Fidelity = mode
	c.Collector = col
	tr := NewTraffic(c)
	res := tr.Run()
	return fidExport{col.ExportMetricsJSON(), col.ExportTraceJSONL(), col.ExportTraceBinary()}, res, tr
}

// checkFidelityEquivalence runs one configuration under all three
// fidelity modes and holds auto and tiers to the full-emulation ground
// truth: equal results after scrubbing the engine-dependent fields, and
// byte-identical observability exports.
func checkFidelityEquivalence(t *testing.T, c TrafficConfig, wantFF bool) {
	t.Helper()
	full, fullRes, fullTr := runFidelity(t, c, FidelityFull)
	if fullTr.FastForwarded() != 0 || fullTr.EventsSkipped() != 0 {
		t.Fatalf("FidelityFull fast-forwarded %d probes, skipped %d events; want 0",
			fullTr.FastForwarded(), fullTr.EventsSkipped())
	}
	for _, mode := range []FidelityMode{FidelityTiers, FidelityAuto} {
		got, gotRes, gotTr := runFidelity(t, c, mode)
		if !reflect.DeepEqual(scrub(gotRes), scrub(fullRes)) {
			t.Errorf("%v: result diverges from full emulation\n got: %+v\nwant: %+v",
				mode, scrub(gotRes), scrub(fullRes))
		}
		if !bytes.Equal(got.metrics, full.metrics) {
			t.Errorf("%v: metrics export differs from full emulation", mode)
		}
		if !bytes.Equal(got.jsonl, full.jsonl) {
			t.Errorf("%v: JSONL trace differs from full emulation", mode)
		}
		if !bytes.Equal(got.binary, full.binary) {
			t.Errorf("%v: binary trace differs from full emulation", mode)
		}
		if mode == FidelityTiers && gotTr.FastForwarded() != 0 {
			t.Errorf("FidelityTiers fast-forwarded %d probes; want 0", gotTr.FastForwarded())
		}
		if mode == FidelityAuto {
			if wantFF && gotTr.FastForwarded() == 0 {
				t.Error("FidelityAuto absorbed no probes; the fast-forward never engaged")
			}
			if wantFF && gotTr.EventsSkipped() == 0 {
				t.Error("FidelityAuto skipped no events")
			}
		}
		// The whole point: lower modes do strictly less per-event work.
		if gotRes.Events >= fullRes.Events {
			t.Errorf("%v executed %d events, full emulation %d; want fewer", mode, gotRes.Events, fullRes.Events)
		}
	}
}

// TestTrafficFidelityModesBitIdentical is the tentpole equivalence gate:
// for several seeds and partition counts (including the reference path),
// the tiered datapath and the analytic fast-forward must be
// bit-identical to full emulation on results, metrics and traces.
func TestTrafficFidelityModesBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20260808} {
		c := testTrafficConfig(seed)
		c.Partitions = 4
		checkFidelityEquivalence(t, c, true)
	}
	// Reference path (single scheduler, no PDES driver) and a partition
	// count that forces plenty of cross-partition gateway traffic.
	c := testTrafficConfig(7)
	c.ReferencePartitioning = true
	checkFidelityEquivalence(t, c, true)
	c = testTrafficConfig(7)
	c.Partitions = 8
	checkFidelityEquivalence(t, c, true)
}

// TestTrafficFidelityShortInterval stresses the fast-forward's
// eligibility boundaries: at a 20 ms probe interval many terminals have
// RTT >= interval (overlapping probes, never absorbed), others flip
// between absorbable and emulated across epochs as delays change — which
// exercises the clamp-carryover entry check and mid-train re-entry.
func TestTrafficFidelityShortInterval(t *testing.T) {
	c := TrafficConfig{
		Fleet: Config{
			Seed:      11,
			Terminals: 200,
			Horizon:   3 * time.Second,
			Epoch:     time.Second,
		},
		Interval:   20 * time.Millisecond,
		Partitions: 4,
	}
	checkFidelityEquivalence(t, c, true)

	// Mixed-regime sanity: with RTTs spanning the bent-pipe range, some
	// trains must absorb and some must stay emulated, or the test is not
	// exercising the boundary it claims to.
	_, res, tr := runFidelity(t, c, FidelityAuto)
	ff := tr.FastForwarded()
	if ff == 0 {
		t.Fatal("short-interval run absorbed nothing")
	}
	if fired := res.ProbesSent + res.ProbesSkipped; ff >= fired {
		t.Fatalf("short-interval run absorbed %d of %d fires; want a strict mix of absorbed and emulated", ff, fired)
	}
}
