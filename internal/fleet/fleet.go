// Package fleet simulates a planet-scale population of Starlink user
// terminals: a population-weighted global terminal grid placed
// deterministically from a derived seed, struct-of-arrays terminal state,
// and a geodesic cell index that makes each epoch's serving-satellite
// reassignment O(cells-in-view) instead of O(terminals × constellation).
//
// The source paper measures the service from a single Belgian dish;
// follow-up work (Democratizing LEO Satellite Network Measurement, A
// Multifaceted Look at Starlink Performance) shows that both coverage and
// peak-hour contention vary strongly with where on the planet the dish
// sits. This package reproduces that global view: terminals cluster
// around metro areas on every continent, a per-cell beam-capacity model
// splits satellite capacity among concurrently active terminals (the
// peak-hour throughput dip), and per-region latency/throughput/outage
// distributions come out the other end.
//
// The fast reassignment path follows the discipline of the geometry,
// scheduler and datapath fast paths before it: a naive O(N×M) reference
// scan (ReferenceReassignAt) stays in-tree, and the equivalence suite
// proves the cell-indexed path bit-identical to it across seeds,
// latitude bands and worker counts. Steady-state reassignment allocates
// nothing: candidate CSR scratch, snapshot ring entries and per-cell
// beam lists are all reused across epochs.
package fleet

import (
	"math"
	"slices"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// reachMarginRad pads the cell-admission window beyond the exact
// spherical-geometry bound, exactly like the leo pruned scan's margin: it
// only has to dominate floating-point rounding in the window arithmetic.
const reachMarginRad = 0.005

// Config parameterizes a fleet scenario. The zero value of every field
// selects a sensible default (see withDefaults), so Config{} runs the
// quick global scenario.
type Config struct {
	// Seed derives terminal placement and activity. The whole scenario
	// is a pure function of the config, so equal seeds reproduce equal
	// results bit-for-bit.
	Seed uint64
	// Terminals is the fleet size (default 10 000).
	Terminals int
	// Horizon is the simulated campaign length (default 2h).
	Horizon time.Duration
	// Epoch is the reassignment interval (default 15s, the Starlink
	// reallocation granularity the paper observes).
	Epoch time.Duration
	// MaskDeg is the terminal elevation mask (default 25°).
	MaskDeg float64
	// CellDeg is the geodesic cell height in degrees of latitude
	// (default 2.5°; longitude widths shrink with cos(lat) so cells stay
	// roughly equal-area).
	CellDeg float64
	// BeamMbps is the capacity of one satellite beam over one cell
	// (default 800). Active terminals in a cell served by the same
	// satellite split it evenly.
	BeamMbps float64
	// MaxTermMbps caps what a single terminal can draw from an
	// uncontended beam (default 250).
	MaxTermMbps float64
	// Workers parallelizes reassignment and placement over this many
	// goroutines (default 1). Results are worker-count invariant.
	Workers int
	// Reference runs every epoch through the naive O(N×M) scan instead
	// of the cell index — the ground truth the equivalence suite
	// compares against.
	Reference bool
	// Clusters is the population grid (default WorldClusters).
	Clusters []Cluster
	// Gateways is the ground-station set (default WorldGateways).
	Gateways []leo.Gateway
	// Shells is the constellation (default Starlink Gen1).
	Shells []leo.ShellConfig
	// Obs receives per-region metrics and per-epoch trace events; nil
	// disables observability at the usual one-branch cost.
	Obs *obs.Sink
}

func (c Config) withDefaults() Config {
	if c.Terminals <= 0 {
		c.Terminals = 10000
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.Epoch <= 0 {
		c.Epoch = 15 * time.Second
	}
	if c.MaskDeg == 0 {
		c.MaskDeg = 25
	}
	if c.CellDeg <= 0 {
		c.CellDeg = 2.5
	}
	if c.BeamMbps <= 0 {
		c.BeamMbps = 800
	}
	if c.MaxTermMbps <= 0 {
		c.MaxTermMbps = 250
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if len(c.Clusters) == 0 {
		c.Clusters = WorldClusters()
	}
	if len(c.Gateways) == 0 {
		c.Gateways = WorldGateways()
	}
	if len(c.Shells) == 0 {
		c.Shells = []leo.ShellConfig{leo.StarlinkGen1()}
	}
	return c
}

// shellMeta is the per-shell geometry the scan paths need, flattened so
// the hot loops never chase into leo internals.
type shellMeta struct {
	offset  int // first flat sat id of this shell
	planes  int
	per     int
	enabled []bool  // flat [plane*per+idx]; membership fixed for a run
	reach   float64 // coverage central angle + margin, radians
}

// Fleet is an instantiated scenario: terminal state in struct-of-arrays
// form, sorted by (cell, placement index) so per-cell passes are
// contiguous. A Fleet is not safe for concurrent use; ReassignAt
// parallelizes internally over disjoint index ranges.
type Fleet struct {
	cfg     Config
	con     *leo.Constellation
	grid    *cellGrid
	regions []string

	// Terminal SoA, sorted by (cell, original placement index). orig
	// maps back to the placement index i that derived the terminal.
	orig    []int32
	lat     []float64
	lon     []float64
	px      []float64
	py      []float64
	pz      []float64
	pnorm   []float64
	region  []int32
	cell    []int32
	seed    []uint64
	sat     []int32 // serving flat sat id, -1 during outage
	prevSat []int32
	gw      []int32 // serving gateway index, -1 when unreachable
	delayNs []int64 // one-way bent-pipe delay, -1 during outage

	cellStart []int32 // CSR over terminals by cell, len nCells+1

	shells  []shellMeta
	nSats   int
	sinMask float64

	// Gateway geometry, precomputed once (mirrors leo.gatewayGeom).
	gwEcef    []geo.ECEF
	gwNorm    []float64
	gwSinMask []float64

	// Per-epoch scratch, reused so steady-state reassignment is
	// allocation-free once every buffer has grown to its working size.
	shellPos  [][]geo.ECEF
	candCount []int32
	candStart []int32 // len nCells+1
	candFill  []int32
	cands     []int32

	acc []regionAccum
	// Per-epoch per-region scratch for trace emission.
	epochOut []int64
	epochHo  []int64
	active   []bool
	satList  []int32
	satCnt   []int32

	// Partitioned epoch campaign state (Workers > 1, see pool.go): the
	// persistent worker pool, one private scratch per worker, the
	// cell-aligned observe ranges workers steal, and the epoch staged
	// for the observe phase.
	pool      *epochPool
	scratch   []epochScratch
	obsRanges []int32
	obsEpoch  int
	obsUTC    float64
}

// New builds a fleet: places terminals, sorts them by cell and sizes the
// scratch buffers. Placement is a pure function of (cfg.Seed, index, cfg.
// Clusters) and parallelizes over cfg.Workers without affecting results.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg}

	regionOf := make(map[string]int32)
	clusterRegion := make([]int32, len(cfg.Clusters))
	for ci, cl := range cfg.Clusters {
		ri, ok := regionOf[cl.Region]
		if !ok {
			ri = int32(len(f.regions))
			regionOf[cl.Region] = ri
			f.regions = append(f.regions, cl.Region)
		}
		clusterRegion[ci] = ri
	}

	shells := make([]*leo.Shell, len(cfg.Shells))
	offset := 0
	for si, sc := range cfg.Shells {
		sh := leo.NewShell(sc)
		shells[si] = sh
		m := shellMeta{
			offset:  offset,
			planes:  sc.Planes,
			per:     sc.SatsPerPlane,
			enabled: make([]bool, sc.Planes*sc.SatsPerPlane),
			reach: geo.CoverageCentralAngleRad(geo.EarthRadiusKm,
				geo.EarthRadiusKm+sc.AltKm, cfg.MaskDeg) + reachMarginRad,
		}
		for p := 0; p < sc.Planes; p++ {
			for i := 0; i < sc.SatsPerPlane; i++ {
				m.enabled[p*sc.SatsPerPlane+i] = sh.Enabled(p, i)
			}
		}
		offset += sc.Planes * sc.SatsPerPlane
		f.shells = append(f.shells, m)
	}
	f.con = leo.NewConstellation(shells...)
	f.nSats = offset
	f.sinMask = math.Sin(geo.Radians(cfg.MaskDeg))
	f.grid = newCellGrid(cfg.CellDeg)

	f.gwEcef = make([]geo.ECEF, len(cfg.Gateways))
	f.gwNorm = make([]float64, len(cfg.Gateways))
	f.gwSinMask = make([]float64, len(cfg.Gateways))
	for i, g := range cfg.Gateways {
		mask := g.MinElevationDeg
		if mask == 0 {
			mask = 10 // gateway dishes track lower than user terminals
		}
		e := g.Pos.ToECEF()
		f.gwEcef[i] = e
		f.gwNorm[i] = e.Norm()
		f.gwSinMask[i] = math.Sin(geo.Radians(mask))
	}

	n := cfg.Terminals
	lat, lon, cluster, seeds := placeTerminals(cfg.Seed, n, cfg.Clusters, cfg.Workers)

	// Sort terminals by (cell, placement index): per-cell slices become
	// contiguous and the order stays a pure function of the placement.
	// The key packs (cell, index) into one uint64 so slices.Sort runs on
	// plain integers — at 1M terminals a comparator-based sort dominates
	// construction time.
	cells := make([]int32, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		cells[i] = f.grid.cellOf(lat[i], lon[i])
		keys[i] = uint64(uint32(cells[i]))<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)

	// The SoA arrays come out of two slabs (one per element width)
	// instead of thirteen separate allocations: capacity planning for
	// the 1M-terminal build, ~89 B/terminal all in.
	fslab := make([]float64, 6*n)
	slabF := func() (s []float64) { s, fslab = fslab[:n:n], fslab[n:]; return }
	f.lat, f.lon = slabF(), slabF()
	f.px, f.py, f.pz = slabF(), slabF(), slabF()
	f.pnorm = slabF()
	islab := make([]int32, 6*n)
	slabI := func() (s []int32) { s, islab = islab[:n:n], islab[n:]; return }
	f.orig, f.region, f.cell = slabI(), slabI(), slabI()
	f.sat, f.prevSat, f.gw = slabI(), slabI(), slabI()
	f.seed = make([]uint64, n)
	f.delayNs = make([]int64, n)
	f.active = make([]bool, n)
	for t, k := range keys {
		i := int(uint32(k))
		f.orig[t] = int32(i)
		f.lat[t] = lat[i]
		f.lon[t] = lon[i]
		e := geo.LatLon{LatDeg: lat[i], LonDeg: lon[i]}.ToECEF()
		f.px[t], f.py[t], f.pz[t] = e.X, e.Y, e.Z
		f.pnorm[t] = e.Norm()
		f.region[t] = clusterRegion[cluster[i]]
		f.cell[t] = cells[i]
		f.seed[t] = seeds[i]
		f.sat[t], f.prevSat[t], f.gw[t], f.delayNs[t] = -1, -1, -1, -1
	}

	f.cellStart = make([]int32, f.grid.nCells+1)
	for _, c := range f.cell {
		f.cellStart[c+1]++
	}
	for c := 0; c < f.grid.nCells; c++ {
		f.cellStart[c+1] += f.cellStart[c]
	}

	f.shellPos = make([][]geo.ECEF, len(f.shells))
	f.candCount = make([]int32, f.grid.nCells)
	f.candStart = make([]int32, f.grid.nCells+1)
	f.candFill = make([]int32, f.grid.nCells)
	f.epochOut = make([]int64, len(f.regions))
	f.epochHo = make([]int64, len(f.regions))

	f.initAccum()
	if cfg.Workers > 1 {
		// Partitioned epoch campaign: pre-balance the observe ranges
		// (cell-aligned, several per worker so stealing evens out dense
		// metro cells), give each worker a private scratch, and spawn
		// the persistent pool.
		f.obsRanges = f.PartitionTerminals(cfg.Workers * 8).TermStart
		f.scratch = make([]epochScratch, cfg.Workers)
		for w := range f.scratch {
			f.scratch[w] = f.newScratch()
		}
		f.pool = newEpochPool(f, cfg.Workers)
	}
	return f
}

// Config returns the fleet configuration with defaults applied.
func (f *Fleet) Config() Config { return f.cfg }

// Terminals returns the fleet size.
func (f *Fleet) Terminals() int { return len(f.sat) }

// Cells returns the number of geodesic cells in the index.
func (f *Fleet) Cells() int { return f.grid.nCells }

// Satellites returns the constellation slot count.
func (f *Fleet) Satellites() int { return f.nSats }

// Result is the per-region outcome of a fleet campaign.
type Result struct {
	Terminals  int
	Epochs     int
	Cells      int
	Satellites int
	Regions    []RegionResult
}

// RegionResult summarizes one region's distributions over the campaign.
type RegionResult struct {
	Region    string
	Terminals int
	// Samples counts served terminal-epochs (each contributes one
	// latency observation).
	Samples int64
	// OutageTermEpochs counts terminal-epochs with no serving satellite
	// or no reachable gateway; OutagePct is the share of all
	// terminal-epochs.
	OutageTermEpochs int64
	OutagePct        float64
	// Handovers counts served→served serving-satellite changes.
	Handovers int64
	// RTT quantiles (bent-pipe, both directions) in milliseconds.
	LatencyP50Ms float64
	LatencyP95Ms float64
	// Median per-terminal throughput share during local peak hours
	// (18:00–23:00) and off-peak, and the relative dip between them —
	// the beam-contention signature.
	PeakMbpsP50    float64
	OffPeakMbpsP50 float64
	PeakDipPct     float64
}

// Run executes the campaign: one reassignment per epoch (cell-indexed,
// or the reference scan when cfg.Reference is set) followed by the beam
// contention and distribution accounting pass.
func (f *Fleet) Run() *Result {
	epochs := int(f.cfg.Horizon / f.cfg.Epoch)
	if epochs < 1 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		f.RunEpoch(e, sim.Time(int64(e)*int64(f.cfg.Epoch)))
	}
	return f.result(epochs)
}

// RunEpoch executes one campaign epoch at instant at: reassignment
// (reference scan when cfg.Reference is set) followed by the
// beam-contention accounting pass, both on the configured worker count.
func (f *Fleet) RunEpoch(e int, at sim.Time) {
	if f.cfg.Reference {
		f.ReferenceReassignAt(at)
	} else {
		f.ReassignAt(at)
	}
	if f.pool != nil {
		f.observeEpochParallel(e, at)
	} else {
		f.observeEpoch(e, at)
	}
}

// RunEpochSequential executes one epoch pinned to the single-threaded
// cell-indexed path regardless of cfg.Workers — the in-tree reference
// the partitioned campaign is byte-diffed against, and the baseline the
// bench scale sweep times speedup from.
func (f *Fleet) RunEpochSequential(e int, at sim.Time) {
	snap := f.con.SnapshotAt(at)
	f.buildCandidates(snap)
	f.assignRange(0, len(f.sat))
	f.observeEpoch(e, at)
}

// Run builds and runs a fleet scenario in one call.
func Run(cfg Config) *Result {
	f := New(cfg)
	defer f.Close()
	return f.Run()
}
