package fleet

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// TestRunGlobalSmoke runs a reduced global campaign on the real Gen1
// shell and checks that the per-region physics comes out right: served
// regions see ~20-100 ms median RTTs, the high-north (beyond the 53°
// shell's coverage) is in permanent outage, and peak-hour medians never
// beat off-peak.
func TestRunGlobalSmoke(t *testing.T) {
	cfg := Config{Seed: 42, Terminals: 3000, Horizon: 30 * time.Minute, Workers: 2}
	res := Run(cfg)
	if res.Terminals != 3000 || res.Epochs != 120 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if res.Cells <= 0 || res.Satellites != 72*22 {
		t.Fatalf("unexpected index shape: cells=%d sats=%d", res.Cells, res.Satellites)
	}
	total := 0
	for _, rr := range res.Regions {
		total += rr.Terminals
		switch rr.Region {
		case "high-north":
			if rr.OutagePct != 100 {
				t.Errorf("high-north outage = %.2f%%, want 100%% (outside Gen1 coverage)", rr.OutagePct)
			}
			if rr.Samples != 0 {
				t.Errorf("high-north has %d served samples, want 0", rr.Samples)
			}
		case "europe", "north-america", "asia":
			if rr.Samples == 0 {
				t.Fatalf("%s: no served samples", rr.Region)
			}
			if rr.OutagePct > 10 {
				t.Errorf("%s outage = %.2f%%, want <10%%", rr.Region, rr.OutagePct)
			}
			if rr.LatencyP50Ms < 5 || rr.LatencyP50Ms > 100 {
				t.Errorf("%s median RTT = %.1f ms, want 5-100 ms", rr.Region, rr.LatencyP50Ms)
			}
			if rr.LatencyP95Ms < rr.LatencyP50Ms {
				t.Errorf("%s p95 RTT %.1f < p50 %.1f", rr.Region, rr.LatencyP95Ms, rr.LatencyP50Ms)
			}
			if rr.Handovers == 0 {
				t.Errorf("%s: no handovers over 30 simulated minutes", rr.Region)
			}
		}
		// Compare peak and off-peak only when the 30-minute slice of
		// local time produced samples in both windows.
		if rr.PeakMbpsP50 > 0 && rr.OffPeakMbpsP50 > 0 && rr.PeakMbpsP50 > rr.OffPeakMbpsP50 {
			t.Errorf("%s: peak median %.1f Mbps beats off-peak %.1f", rr.Region, rr.PeakMbpsP50, rr.OffPeakMbpsP50)
		}
	}
	if total != cfg.Terminals {
		t.Errorf("region terminal counts sum to %d, want %d", total, cfg.Terminals)
	}
}

// TestBeamContentionDip: with a finite beam, a dense single-cluster
// fleet must show a peak-hour throughput dip over a full simulated day;
// the identical fleet under an effectively infinite beam pins every
// share at the per-terminal cap and shows none. That isolates the dip to
// the contention model rather than geometry.
func TestBeamContentionDip(t *testing.T) {
	dense := Config{
		Seed:      5,
		Terminals: 600,
		Horizon:   24 * time.Hour,
		Epoch:     5 * time.Minute, // coarse epochs keep the day cheap
		Clusters: []Cluster{
			{"brussels", "europe", geo.LatLon{LatDeg: 50.85, LonDeg: 4.35}, 60, 1},
		},
	}
	res := Run(dense)
	eu := res.Regions[0]
	if eu.Region != "europe" || eu.Samples == 0 {
		t.Fatalf("unexpected region result: %+v", eu)
	}
	if eu.PeakDipPct <= 5 {
		t.Errorf("contended peak dip = %.1f%% (peak p50 %.1f, off-peak p50 %.1f), want >5%%",
			eu.PeakDipPct, eu.PeakMbpsP50, eu.OffPeakMbpsP50)
	}
	wide := dense
	wide.BeamMbps = 1e9
	wres := Run(wide)
	weu := wres.Regions[0]
	if weu.OffPeakMbpsP50 < 249 || weu.PeakMbpsP50 < 249 {
		t.Errorf("uncontended medians %.1f/%.1f Mbps, want the 250 cap", weu.PeakMbpsP50, weu.OffPeakMbpsP50)
	}
	if weu.PeakDipPct > 1 {
		t.Errorf("uncontended peak dip = %.1f%%, want ~0", weu.PeakDipPct)
	}
}

// TestSeedSensitivity: different campaign seeds must move the placement
// and therefore the results.
func TestSeedSensitivity(t *testing.T) {
	cfg := Config{Terminals: 1000, Horizon: 5 * time.Minute}
	cfg.Seed = 1
	a := Run(cfg)
	cfg.Seed = 2
	b := Run(cfg)
	same := true
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical per-region results")
	}
}

// TestFleetSortedByCell: the SoA order is (cell, placement index) and
// cellStart is a consistent CSR over it.
func TestFleetSortedByCell(t *testing.T) {
	f := New(Config{Seed: 3, Terminals: 2000})
	for t2 := 1; t2 < len(f.cell); t2++ {
		if f.cell[t2] < f.cell[t2-1] {
			t.Fatalf("terminal %d: cell %d after cell %d", t2, f.cell[t2], f.cell[t2-1])
		}
		if f.cell[t2] == f.cell[t2-1] && f.orig[t2] <= f.orig[t2-1] {
			t.Fatalf("terminal %d: placement order not preserved within cell", t2)
		}
	}
	for c := 0; c < f.grid.nCells; c++ {
		for i := f.cellStart[c]; i < f.cellStart[c+1]; i++ {
			if f.cell[i] != int32(c) {
				t.Fatalf("cellStart CSR inconsistent at cell %d", c)
			}
		}
	}
}

// TestCellOfEdges pins the cell mapping at the poles and the
// antimeridian: ±90° clamp into the polar rows, +180° and -180° are the
// same cell, and every cell id is in range.
func TestCellOfEdges(t *testing.T) {
	g := newCellGrid(2.5)
	if g.nCells <= 0 {
		t.Fatal("empty grid")
	}
	if a, b := g.cellOf(0, 180), g.cellOf(0, -180); a != b {
		t.Errorf("antimeridian split: cell(0,180)=%d cell(0,-180)=%d", a, b)
	}
	top := g.rows[len(g.rows)-1]
	if c := g.cellOf(90, 45); c < top.start || c >= top.start+top.nLon {
		t.Errorf("north pole cell %d outside top row", c)
	}
	if c := g.cellOf(-90, -45); c < 0 || c >= g.rows[0].nLon {
		t.Errorf("south pole cell %d outside bottom row", c)
	}
	for _, p := range []struct{ lat, lon float64 }{
		{91, 0}, {-91, 0}, {45, 360}, {45, -360}, {0, 539.99}, {-89.99, 179.99},
	} {
		c := g.cellOf(p.lat, p.lon)
		if c < 0 || int(c) >= g.nCells {
			t.Errorf("cellOf(%v,%v) = %d out of range", p.lat, p.lon, c)
		}
	}
	// Wrapped longitudes map consistently.
	if a, b := g.cellOf(10, 370), g.cellOf(10, 10); a != b {
		t.Errorf("lon wrap: cell(10,370)=%d != cell(10,10)=%d", a, b)
	}
}

// TestSnapshotSharing: reassignments at instants already in the
// constellation snapshot ring must reuse the cached positions (the
// shared-ring requirement of the tentpole).
func TestSnapshotSharing(t *testing.T) {
	f := New(Config{Seed: 1, Terminals: 200})
	at := sim.Time(int64(30 * time.Second))
	s1 := f.con.SnapshotAt(at)
	f.ReassignAt(at)
	s2 := f.con.SnapshotAt(at)
	if s1 != s2 {
		t.Error("ReassignAt did not reuse the cached snapshot for a warm instant")
	}
}
