package fleet

import (
	"math"
	"sync"
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/sim"
)

// The fuzz fixtures pair the real Gen1 shell with a near-polar shell, so
// candidate windows get exercised both where satellite latitudes top out
// at the inclination and where subsatellite points cross the poles
// (the all-or-nothing degenerate window).
var (
	fuzzOnce     sync.Once
	fuzzMu       sync.Mutex
	fuzzFixtures []*Fleet
)

func fuzzFleets() []*Fleet {
	fuzzOnce.Do(func() {
		gen1 := New(Config{Seed: 1, Terminals: 8})
		polar := New(Config{Seed: 1, Terminals: 8, Shells: []leo.ShellConfig{{
			Name:           "near-polar",
			AltKm:          560,
			InclinationDeg: 86,
			Planes:         20,
			SatsPerPlane:   10,
			PhasingF:       3,
		}}})
		fuzzFixtures = []*Fleet{gen1, polar}
	})
	return fuzzFixtures
}

// FuzzCellIndex is the superset property the whole fast path rests on:
// for ANY terminal position, every enabled satellite that clears the
// elevation mask from that exact position must appear in the candidate
// list of the cell containing the position. Seeds cover the poles, the
// antimeridian, ±90° edge cells and the coverage edge; the fuzzer then
// gets free rein over (lat, lon, epoch, shell).
func FuzzCellIndex(f *testing.F) {
	f.Add(90.0, 0.0, uint8(0), false)
	f.Add(-90.0, 0.0, uint8(1), false)
	f.Add(90.0, 179.99, uint8(2), true)
	f.Add(-90.0, -179.99, uint8(3), true)
	f.Add(0.0, 180.0, uint8(4), false)
	f.Add(0.0, -180.0, uint8(5), false)
	f.Add(0.0, 179.999, uint8(6), true)
	f.Add(53.0, 0.0, uint8(7), false)
	f.Add(61.6, 10.0, uint8(8), false)
	f.Add(-61.6, -170.0, uint8(9), false)
	f.Add(88.7, 44.9, uint8(10), true)
	f.Add(47.61, -122.33, uint8(11), false)
	f.Add(-2.5, 0.0, uint8(12), false)
	f.Add(89.999, -0.001, uint8(13), true)
	f.Fuzz(func(t *testing.T, lat, lon float64, step uint8, polar bool) {
		if math.IsNaN(lat) || math.IsInf(lat, 0) || math.IsNaN(lon) || math.IsInf(lon, 0) {
			t.Skip()
		}
		if lat < -90 || lat > 90 || lon < -360 || lon > 360 {
			t.Skip()
		}
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		fleets := fuzzFleets()
		fl := fleets[0]
		if polar {
			fl = fleets[1]
		}
		at := sim.Time(int64(step%16) * int64(15*time.Second))
		fl.buildCandidates(fl.con.SnapshotAt(at))

		cell := fl.grid.cellOf(lat, lon)
		have := make(map[int32]bool)
		for _, s := range fl.cands[fl.candStart[cell]:fl.candStart[cell+1]] {
			have[s] = true
		}

		e := geo.LatLon{LatDeg: lat, LonDeg: lon}.ToECEF()
		en := e.Norm()
		for si := range fl.shells {
			m := &fl.shells[si]
			for j, enabled := range m.enabled {
				if !enabled {
					continue
				}
				p := fl.shellPos[si][j]
				dx, dy, dz := p.X-e.X, p.Y-e.Y, p.Z-e.Z
				dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
				sinEl := (dx*e.X + dy*e.Y + dz*e.Z) / (dn * en)
				if sinEl < fl.sinMask {
					continue
				}
				if !have[int32(m.offset+j)] {
					t.Errorf("terminal (%.6f, %.6f) cell %d at %v: visible satellite %d (sinEl %.6f) missing from candidates",
						lat, lon, cell, at, m.offset+j, sinEl)
				}
			}
		}
	})
}
