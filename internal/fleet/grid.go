package fleet

import (
	"math"
	"sort"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/sim"
)

// Cluster is one population center of the terminal grid: terminals are
// scattered uniformly over a disk of RadiusKm around Center, and clusters
// are sampled proportionally to Weight.
type Cluster struct {
	Name     string
	Region   string
	Center   geo.LatLon
	RadiusKm float64
	Weight   float64
}

// WorldClusters is the default population grid: ~30 metro areas spanning
// every latitude band the constellation serves, plus high-north sites
// (Fairbanks, Reykjavik, Tromsø) that sit permanently outside the Gen1
// 53°-inclination coverage — those regions produce the genuine outage
// distributions a global fleet exhibits, not synthetic loss.
func WorldClusters() []Cluster {
	return []Cluster{
		{"new-york", "north-america", geo.LatLon{LatDeg: 40.71, LonDeg: -74.01}, 150, 9},
		{"los-angeles", "north-america", geo.LatLon{LatDeg: 34.05, LonDeg: -118.24}, 150, 7},
		{"chicago", "north-america", geo.LatLon{LatDeg: 41.88, LonDeg: -87.63}, 120, 5},
		{"dallas", "north-america", geo.LatLon{LatDeg: 32.78, LonDeg: -96.80}, 120, 5},
		{"seattle", "north-america", geo.LatLon{LatDeg: 47.61, LonDeg: -122.33}, 100, 4},
		{"mexico-city", "north-america", geo.LatLon{LatDeg: 19.43, LonDeg: -99.13}, 120, 6},
		{"sao-paulo", "south-america", geo.LatLon{LatDeg: -23.55, LonDeg: -46.63}, 150, 8},
		{"buenos-aires", "south-america", geo.LatLon{LatDeg: -34.60, LonDeg: -58.38}, 120, 5},
		{"santiago", "south-america", geo.LatLon{LatDeg: -33.45, LonDeg: -70.67}, 100, 4},
		{"bogota", "south-america", geo.LatLon{LatDeg: 4.71, LonDeg: -74.07}, 100, 4},
		{"london", "europe", geo.LatLon{LatDeg: 51.51, LonDeg: -0.13}, 120, 8},
		{"brussels", "europe", geo.LatLon{LatDeg: 50.85, LonDeg: 4.35}, 100, 5},
		{"madrid", "europe", geo.LatLon{LatDeg: 40.42, LonDeg: -3.70}, 120, 5},
		{"warsaw", "europe", geo.LatLon{LatDeg: 52.23, LonDeg: 21.01}, 100, 4},
		{"kyiv", "europe", geo.LatLon{LatDeg: 50.45, LonDeg: 30.52}, 100, 4},
		{"lagos", "africa", geo.LatLon{LatDeg: 6.52, LonDeg: 3.38}, 120, 7},
		{"nairobi", "africa", geo.LatLon{LatDeg: -1.29, LonDeg: 36.82}, 100, 4},
		{"johannesburg", "africa", geo.LatLon{LatDeg: -26.20, LonDeg: 28.05}, 120, 5},
		{"dubai", "asia", geo.LatLon{LatDeg: 25.20, LonDeg: 55.27}, 100, 4},
		{"delhi", "asia", geo.LatLon{LatDeg: 28.61, LonDeg: 77.21}, 150, 9},
		{"singapore", "asia", geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}, 80, 5},
		{"tokyo", "asia", geo.LatLon{LatDeg: 35.68, LonDeg: 139.69}, 120, 8},
		{"manila", "asia", geo.LatLon{LatDeg: 14.60, LonDeg: 120.98}, 100, 5},
		{"sydney", "oceania", geo.LatLon{LatDeg: -33.87, LonDeg: 151.21}, 120, 6},
		{"auckland", "oceania", geo.LatLon{LatDeg: -36.85, LonDeg: 174.76}, 80, 3},
		{"suva", "oceania", geo.LatLon{LatDeg: -18.14, LonDeg: 178.44}, 60, 1},
		{"fairbanks", "high-north", geo.LatLon{LatDeg: 64.84, LonDeg: -147.72}, 80, 1},
		{"reykjavik", "high-north", geo.LatLon{LatDeg: 64.13, LonDeg: -21.90}, 60, 1},
		{"tromso", "high-north", geo.LatLon{LatDeg: 69.65, LonDeg: 18.96}, 60, 1},
	}
}

// WorldGateways is the default global ground-station set: one or more
// sites near each served region, none in the high-north (which is why
// high-latitude terminals see outages from both missing satellites and
// missing ground paths). MinElevationDeg 0 selects the 10° default.
func WorldGateways() []leo.Gateway {
	return []leo.Gateway{
		{Name: "redmond", Pos: geo.LatLon{LatDeg: 47.67, LonDeg: -122.12}, PoP: "seattle"},
		{Name: "dallas-gw", Pos: geo.LatLon{LatDeg: 32.90, LonDeg: -97.04}, PoP: "dallas"},
		{Name: "ashburn", Pos: geo.LatLon{LatDeg: 39.02, LonDeg: -77.46}, PoP: "washington"},
		{Name: "losangeles-gw", Pos: geo.LatLon{LatDeg: 34.30, LonDeg: -118.50}, PoP: "losangeles"},
		{Name: "chicago-gw", Pos: geo.LatLon{LatDeg: 41.90, LonDeg: -88.00}, PoP: "chicago"},
		{Name: "queretaro", Pos: geo.LatLon{LatDeg: 20.59, LonDeg: -100.39}, PoP: "mexico"},
		{Name: "saopaulo-gw", Pos: geo.LatLon{LatDeg: -23.43, LonDeg: -46.77}, PoP: "saopaulo"},
		{Name: "santiago-gw", Pos: geo.LatLon{LatDeg: -33.38, LonDeg: -70.79}, PoP: "santiago"},
		{Name: "bogota-gw", Pos: geo.LatLon{LatDeg: 4.60, LonDeg: -74.22}, PoP: "bogota"},
		{Name: "dublin", Pos: geo.LatLon{LatDeg: 53.42, LonDeg: -6.30}, PoP: "dublin"},
		{Name: "frankfurt", Pos: geo.LatLon{LatDeg: 50.09, LonDeg: 8.69}, PoP: "frankfurt"},
		{Name: "madrid-gw", Pos: geo.LatLon{LatDeg: 40.49, LonDeg: -3.57}, PoP: "madrid"},
		{Name: "milan", Pos: geo.LatLon{LatDeg: 45.46, LonDeg: 9.19}, PoP: "milan"},
		{Name: "warsaw-gw", Pos: geo.LatLon{LatDeg: 52.17, LonDeg: 20.97}, PoP: "warsaw"},
		{Name: "lagos-gw", Pos: geo.LatLon{LatDeg: 6.58, LonDeg: 3.32}, PoP: "lagos"},
		{Name: "nairobi-gw", Pos: geo.LatLon{LatDeg: -1.32, LonDeg: 36.93}, PoP: "nairobi"},
		{Name: "johannesburg-gw", Pos: geo.LatLon{LatDeg: -26.13, LonDeg: 28.23}, PoP: "johannesburg"},
		{Name: "dubai-gw", Pos: geo.LatLon{LatDeg: 25.07, LonDeg: 55.14}, PoP: "dubai"},
		{Name: "mumbai", Pos: geo.LatLon{LatDeg: 19.09, LonDeg: 72.87}, PoP: "mumbai"},
		{Name: "singapore-gw", Pos: geo.LatLon{LatDeg: 1.35, LonDeg: 103.94}, PoP: "singapore"},
		{Name: "tokyo-gw", Pos: geo.LatLon{LatDeg: 35.76, LonDeg: 139.80}, PoP: "tokyo"},
		{Name: "manila-gw", Pos: geo.LatLon{LatDeg: 14.51, LonDeg: 121.02}, PoP: "manila"},
		{Name: "sydney-gw", Pos: geo.LatLon{LatDeg: -33.94, LonDeg: 150.94}, PoP: "sydney"},
		{Name: "auckland-gw", Pos: geo.LatLon{LatDeg: -36.98, LonDeg: 174.79}, PoP: "auckland"},
	}
}

// TerminalSite returns the deterministic placement of terminal i: the
// cluster index it was sampled into and its position. The placement is a
// pure function of (seed, i, clusters) — the re-derivability the grid
// property suite checks — via a per-terminal seed from
// sim.DeriveSeed(seed, "fleet/terminal", i).
func TerminalSite(seed uint64, i int, clusters []Cluster) (geo.LatLon, int) {
	cum, total := clusterWeights(clusters)
	return placeOne(seed, i, clusters, cum, total)
}

func clusterWeights(clusters []Cluster) ([]float64, float64) {
	cum := make([]float64, len(clusters))
	total := 0.0
	for i, cl := range clusters {
		w := cl.Weight
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	return cum, total
}

func placeOne(seed uint64, i int, clusters []Cluster, cum []float64, total float64) (geo.LatLon, int) {
	rng := sim.NewRNG(sim.DeriveSeed(seed, "fleet/terminal", i))
	ci := sort.SearchFloat64s(cum, rng.Float64()*total)
	if ci >= len(clusters) {
		ci = len(clusters) - 1
	}
	cl := clusters[ci]
	// Uniform over the disk: radius ∝ √u, bearing uniform. The longitude
	// offset divides by cos(lat) so east-west kilometers stay kilometers;
	// the clamp keeps near-polar clusters finite.
	d := cl.RadiusKm * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	cosLat := math.Cos(geo.Radians(cl.Center.LatDeg))
	if cosLat < 0.05 {
		cosLat = 0.05
	}
	lat := cl.Center.LatDeg + geo.Degrees(d*math.Cos(theta)/geo.EarthRadiusKm)
	if lat > 89.9 {
		lat = 89.9
	}
	if lat < -89.9 {
		lat = -89.9
	}
	lon := wrapLon(cl.Center.LonDeg + geo.Degrees(d*math.Sin(theta)/(geo.EarthRadiusKm*cosLat)))
	return geo.LatLon{LatDeg: lat, LonDeg: lon}, ci
}

// placeTerminals places n terminals in parallel. Each index is an
// independent pure function of the seed, so workers write disjoint
// ranges of the output and the result is identical for any worker count.
func placeTerminals(seed uint64, n int, clusters []Cluster, workers int) (lat, lon []float64, cluster []int32, seeds []uint64) {
	lat = make([]float64, n)
	lon = make([]float64, n)
	cluster = make([]int32, n)
	seeds = make([]uint64, n)
	cum, total := clusterWeights(clusters)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p, ci := placeOne(seed, i, clusters, cum, total)
			lat[i], lon[i] = p.LatDeg, p.LonDeg
			cluster[i] = int32(ci)
			seeds[i] = sim.DeriveSeed(seed, "fleet/terminal", i)
		}
	}
	if workers <= 1 || n < 2*1024 {
		fill(0, n)
		return
	}
	per := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			done <- struct{}{}
			continue
		}
		go func(lo, hi int) {
			fill(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return
}

// wrapLon normalizes a longitude to [-180, 180).
func wrapLon(d float64) float64 {
	d = math.Mod(d+180, 360)
	if d < 0 {
		d += 360
	}
	return d - 180
}
