package fleet

import (
	"math"
	"testing"

	"starlinkperf/internal/geo"
)

// TestPlacementWorkerInvariant: the population-weighted grid sampling is
// bit-identical for any worker count — each index is a pure function of
// the campaign seed, so parallel placement writes the same bits.
func TestPlacementWorkerInvariant(t *testing.T) {
	cl := WorldClusters()
	for _, seed := range []uint64{3, 99} {
		lat1, lon1, cluster1, seeds1 := placeTerminals(seed, 5000, cl, 1)
		for _, w := range []int{2, 3, 8} {
			latW, lonW, clusterW, seedsW := placeTerminals(seed, 5000, cl, w)
			for i := range lat1 {
				if math.Float64bits(lat1[i]) != math.Float64bits(latW[i]) ||
					math.Float64bits(lon1[i]) != math.Float64bits(lonW[i]) ||
					cluster1[i] != clusterW[i] || seeds1[i] != seedsW[i] {
					t.Fatalf("seed %d workers %d: terminal %d diverges from single-worker placement", seed, w, i)
				}
			}
		}
	}
}

// TestPlacementRederivable: any terminal's site is re-derivable from the
// campaign seed and its index alone, without placing the rest of the
// fleet.
func TestPlacementRederivable(t *testing.T) {
	cl := WorldClusters()
	const seed, n = 77, 3000
	lat, lon, cluster, _ := placeTerminals(seed, n, cl, 4)
	for _, i := range []int{0, 1, 500, 1723, n - 1} {
		p, ci := TerminalSite(seed, i, cl)
		if math.Float64bits(p.LatDeg) != math.Float64bits(lat[i]) ||
			math.Float64bits(p.LonDeg) != math.Float64bits(lon[i]) ||
			int32(ci) != cluster[i] {
			t.Errorf("terminal %d: TerminalSite gives (%v, %v, cluster %d), placement gave (%v, %v, cluster %d)",
				i, p.LatDeg, p.LonDeg, ci, lat[i], lon[i], cluster[i])
		}
	}
}

// TestPlacementSeedSensitive: different campaign seeds must actually
// move the fleet.
func TestPlacementSeedSensitive(t *testing.T) {
	cl := WorldClusters()
	lat1, lon1, _, _ := placeTerminals(1, 1000, cl, 1)
	lat2, lon2, _, _ := placeTerminals(2, 1000, cl, 1)
	moved := 0
	for i := range lat1 {
		if lat1[i] != lat2[i] || lon1[i] != lon2[i] {
			moved++
		}
	}
	if moved < 900 {
		t.Errorf("only %d/1000 terminals moved between seeds", moved)
	}
}

// TestPlacementGeometry: every terminal lands inside (a small tolerance
// of) its cluster disk, with normalized coordinates.
func TestPlacementGeometry(t *testing.T) {
	cl := WorldClusters()
	lat, lon, cluster, _ := placeTerminals(42, 4000, cl, 2)
	for i := range lat {
		if lat[i] < -89.9 || lat[i] > 89.9 {
			t.Fatalf("terminal %d latitude %v out of range", i, lat[i])
		}
		if lon[i] < -180 || lon[i] >= 180 {
			t.Fatalf("terminal %d longitude %v not normalized", i, lon[i])
		}
		c := cl[cluster[i]]
		d := geo.GreatCircleKm(geo.LatLon{LatDeg: lat[i], LonDeg: lon[i]}, c.Center)
		// The flat-disk scatter stretches slightly when projected onto
		// the sphere at high latitude; 30% headroom covers every
		// cluster in the grid.
		if d > c.RadiusKm*1.3+1 {
			t.Fatalf("terminal %d is %.1f km from %s (radius %.0f km)", i, d, c.Name, c.RadiusKm)
		}
	}
}

// TestPlacementWeighting: cluster sampling tracks the configured
// weights (within loose binomial tolerance).
func TestPlacementWeighting(t *testing.T) {
	cl := WorldClusters()
	_, _, cluster, _ := placeTerminals(7, 20000, cl, 4)
	counts := make([]int, len(cl))
	for _, ci := range cluster {
		counts[ci]++
	}
	total := 0.0
	for _, c := range cl {
		total += c.Weight
	}
	for ci, c := range cl {
		want := 20000 * c.Weight / total
		got := float64(counts[ci])
		if got < want*0.7-10 || got > want*1.3+10 {
			t.Errorf("%s: %v terminals, want ~%.0f", c.Name, got, want)
		}
	}
}
