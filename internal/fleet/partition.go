package fleet

// PartitionMap splits the fleet into contiguous runs of geodesic cells,
// balanced by terminal count — the spatial decomposition the PDES traffic
// scenario runs its partitions on. Cutting on cell boundaries keeps every
// per-cell structure (the reassignment candidate lists, the beam
// contention pass) wholly inside one partition, and because terminals are
// sorted by (cell, placement index), each partition also owns one
// contiguous terminal range. The map is a pure function of (placement,
// part count): it never looks at worker counts, wall clocks or anything
// else that varies between runs.
type PartitionMap struct {
	// Parts is the partition count actually used (never more than the
	// number of cells holding terminals).
	Parts int
	// CellPart maps each cell to its partition; cells are assigned in
	// ascending order, so each partition is one contiguous cell range.
	CellPart []int32
	// TermStart is the CSR over the cell-sorted terminal array: partition
	// p owns terminals [TermStart[p], TermStart[p+1]).
	TermStart []int32
}

// PartitionTerminals builds the partition map for parts partitions. The
// greedy walk closes partition p once it holds at least the next p/parts
// share of terminals, so partition loads stay within one cell of even.
// parts is clamped to [1, terminals] (empty partitions would be pure
// overhead).
func (f *Fleet) PartitionTerminals(parts int) *PartitionMap {
	n := len(f.sat)
	if parts < 1 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	pm := &PartitionMap{
		CellPart:  make([]int32, f.grid.nCells),
		TermStart: make([]int32, 1, parts+1),
	}
	part := int32(0)
	cum := int32(0)
	for c := 0; c < f.grid.nCells; c++ {
		// Close the current partition when it has reached its share and
		// there are still partitions left to fill.
		if int(part) < parts-1 && int(cum) < n && cum >= int32((int64(part)+1)*int64(n)/int64(parts)) && cum > pm.TermStart[part] {
			pm.TermStart = append(pm.TermStart, cum)
			part++
		}
		pm.CellPart[c] = part
		cum += f.cellStart[c+1] - f.cellStart[c]
	}
	pm.TermStart = append(pm.TermStart, int32(n))
	pm.Parts = int(part) + 1
	return pm
}

// PartitionOf returns the partition owning terminal t (an index into the
// cell-sorted terminal array).
func (pm *PartitionMap) PartitionOf(t int) int {
	for p := 0; p < pm.Parts; p++ {
		if int32(t) < pm.TermStart[p+1] {
			return p
		}
	}
	return pm.Parts - 1
}
