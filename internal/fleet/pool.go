package fleet

import (
	"sync/atomic"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/stats"
)

// The partitioned epoch campaign: with cfg.Workers > 1 a Fleet owns a
// persistent pool of worker goroutines that executes each epoch's two
// data-parallel phases — terminal reassignment and the beam-contention
// accounting pass — as a deterministic fork/join. Reassignment is
// embarrassingly parallel (each terminal is a pure function of position
// and snapshot). Observation is made so by giving every worker its own
// epochScratch: workers claim cell-aligned terminal ranges off an atomic
// cursor, observe into private integer-count distributions, and the
// single-threaded merge pass drains the scratches in worker order.
// Integer merges are order-invariant, so the final accumulators — and
// therefore results, metrics exports and traces — are bit-identical to
// the sequential reference path (observeEpoch) for any worker count.
// The equivalence suite and the ci.sh 100k byte-diffs enforce exactly
// that.

// Phase tokens handed to pool workers.
const (
	phaseAssign int32 = iota
	phaseObserve
)

// epochPool is the persistent fork/join pool. Workers block on the work
// channel between epochs; runPhase resets the work-stealing cursor,
// releases one token per worker and joins on the done channel. The
// channel operations provide the happens-before edges: everything the
// main goroutine wrote before runPhase is visible to workers, and every
// scratch write is visible to the merge pass after the join. Steady
// state allocates nothing — tokens are plain int32s and the cursor is a
// single atomic — which is what keeps the multi-worker epoch path inside
// the alloc gate.
type epochPool struct {
	workers int
	work    chan int32
	done    chan struct{}
	cursor  atomic.Int64
}

func newEpochPool(f *Fleet, workers int) *epochPool {
	p := &epochPool{
		workers: workers,
		work:    make(chan int32, workers),
		done:    make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		go f.poolWorker(p, w)
	}
	return p
}

// runPhase executes one phase across all workers and blocks until every
// worker has drained the cursor.
func (p *epochPool) runPhase(ph int32) {
	p.cursor.Store(0)
	for w := 0; w < p.workers; w++ {
		p.work <- ph
	}
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
}

// poolWorker is the body of pool goroutine w. The scratch index is the
// spawn id, not the token: workers may consume an uneven number of
// ranges, but each always writes only its own scratch.
func (f *Fleet) poolWorker(p *epochPool, w int) {
	for ph := range p.work {
		switch ph {
		case phaseAssign:
			f.stealAssign(p)
		case phaseObserve:
			f.stealObserve(p, &f.scratch[w])
		}
		p.done <- struct{}{}
	}
}

// stealAssign claims fixed-size terminal blocks until the fleet is
// exhausted — same work unit as the pre-pool goroutine-per-epoch path.
func (f *Fleet) stealAssign(p *epochPool) {
	n := len(f.sat)
	for {
		lo := int(p.cursor.Add(1)-1) * assignBlock
		if lo >= n {
			return
		}
		hi := lo + assignBlock
		if hi > n {
			hi = n
		}
		f.assignRange(lo, hi)
	}
}

// stealObserve claims pre-balanced cell-aligned terminal ranges (built
// once at New time from PartitionTerminals) and observes each into this
// worker's scratch.
func (f *Fleet) stealObserve(p *epochPool, sc *epochScratch) {
	nr := len(f.obsRanges) - 1
	for {
		i := int(p.cursor.Add(1) - 1)
		if i >= nr {
			return
		}
		f.observeRange(sc, f.obsEpoch, f.obsUTC, int(f.obsRanges[i]), int(f.obsRanges[i+1]))
	}
}

// epochScratch is one worker's private accumulation state for the
// observation phase: per-region tallies and distributions plus the
// per-cell beam list. Every field is integer-counted, so draining
// scratches into the shared accumulators in worker order reproduces the
// sequential accumulation bit-for-bit. Distribution geometries mirror
// initAccum; keep them in sync.
type epochScratch struct {
	samples   []int64
	outages   []int64
	handovers []int64
	latency   []stats.FixedDist
	peak      []stats.FixedDist
	offPeak   []stats.FixedDist
	hLatency  []*obs.Histogram // nil entries when observability is off
	hTput     []*obs.Histogram
	satList   []int32
	satCnt    []int32
}

func (f *Fleet) newScratch() epochScratch {
	nr := len(f.regions)
	sc := epochScratch{
		samples:   make([]int64, nr),
		outages:   make([]int64, nr),
		handovers: make([]int64, nr),
		latency:   make([]stats.FixedDist, nr),
		peak:      make([]stats.FixedDist, nr),
		offPeak:   make([]stats.FixedDist, nr),
		hLatency:  make([]*obs.Histogram, nr),
		hTput:     make([]*obs.Histogram, nr),
		satList:   make([]int32, 0, 64),
		satCnt:    make([]int32, 0, 64),
	}
	for ri := 0; ri < nr; ri++ {
		sc.latency[ri] = stats.NewFixedDist(0.5, 600)
		sc.peak[ri] = stats.NewFixedDist(1, 500)
		sc.offPeak[ri] = stats.NewFixedDist(1, 500)
		if f.cfg.Obs != nil {
			sc.hLatency[ri] = obs.NewHistogram(obs.DurationBounds())
			sc.hTput[ri] = obs.NewHistogram(obs.SizeBounds())
		}
	}
	return sc
}

// observeEpochParallel is the partitioned form of observeEpoch: fan the
// per-cell accounting out over the pool, then drain every worker's
// scratch into the shared accumulators and emit the epoch trace exactly
// as the sequential pass would.
func (f *Fleet) observeEpochParallel(e int, at sim.Time) {
	utcHours := at.Seconds() / 3600
	for ri := range f.epochOut {
		f.epochOut[ri] = 0
		f.epochHo[ri] = 0
	}
	f.obsEpoch, f.obsUTC = e, utcHours
	f.pool.runPhase(phaseObserve)
	for w := range f.scratch {
		f.mergeScratch(&f.scratch[w])
	}
	if f.cfg.Obs != nil {
		tr := f.cfg.Obs.Tracer()
		for ri := range f.acc {
			tr.Emit(at, obs.KindFleetEpoch, f.acc[ri].subj, f.epochOut[ri], f.epochHo[ri])
		}
	}
	copy(f.prevSat, f.sat)
}

// observeRange accounts terminals [lo, hi) — always a whole number of
// cells — of the staged epoch into sc, cell by cell.
func (f *Fleet) observeRange(sc *epochScratch, e int, utcHours float64, lo, hi int) {
	for t := lo; t < hi; {
		ce := int(f.cellStart[f.cell[t]+1])
		f.observeCellInto(sc, e, utcHours, t, ce)
		t = ce
	}
}

// observeCellInto mirrors observeEpoch's per-cell body exactly — same
// expressions, same order — with sc as the accumulation target. The two
// bodies must stay in lockstep; the worker-invariance suite catches any
// divergence as a byte diff.
func (f *Fleet) observeCellInto(sc *epochScratch, e int, utcHours float64, lo, hi int) {
	// Pass 1: per distinct serving satellite, count active served
	// terminals sharing its beam over this cell.
	sc.satList = sc.satList[:0]
	sc.satCnt = sc.satCnt[:0]
	for t := lo; t < hi; t++ {
		h := localHour(utcHours, f.lon[t])
		f.active[t] = activeDraw(f.seed[t], int64(e)) < activeProb(h)
		if !f.active[t] || f.sat[t] < 0 || f.delayNs[t] < 0 {
			continue
		}
		found := false
		for k, s := range sc.satList {
			if s == f.sat[t] {
				sc.satCnt[k]++
				found = true
				break
			}
		}
		if !found {
			sc.satList = append(sc.satList, f.sat[t])
			sc.satCnt = append(sc.satCnt, 1)
		}
	}
	// Pass 2: account every terminal of the cell.
	for t := lo; t < hi; t++ {
		ri := f.region[t]
		if f.delayNs[t] < 0 {
			sc.outages[ri]++
			continue
		}
		rttNs := 2 * f.delayNs[t]
		sc.samples[ri]++
		sc.latency[ri].Observe(float64(rttNs) / 1e6)
		sc.hLatency[ri].Observe(rttNs)
		if e > 0 && f.prevSat[t] >= 0 && f.sat[t] != f.prevSat[t] {
			sc.handovers[ri]++
		}
		if f.active[t] {
			share := f.cfg.MaxTermMbps
			for k, s := range sc.satList {
				if s == f.sat[t] {
					if per := f.cfg.BeamMbps / float64(sc.satCnt[k]); per < share {
						share = per
					}
					break
				}
			}
			h := localHour(utcHours, f.lon[t])
			if h >= 18 && h < 23 {
				sc.peak[ri].Observe(share)
			} else {
				sc.offPeak[ri].Observe(share)
			}
			sc.hTput[ri].Observe(int64(share * 1000))
		}
	}
}

// mergeScratch drains one worker's scratch into the campaign
// accumulators and the per-epoch trace tallies, leaving the scratch
// zeroed for the next epoch. Purely integer adds — commutative and
// associative — so the drain order cannot leak into any export.
func (f *Fleet) mergeScratch(sc *epochScratch) {
	for ri := range f.acc {
		a := &f.acc[ri]
		if v := sc.outages[ri]; v != 0 {
			a.outages += v
			a.cOutage.Add(uint64(v))
			f.epochOut[ri] += v
			sc.outages[ri] = 0
		}
		if v := sc.samples[ri]; v != 0 {
			a.samples += v
			a.cSamples.Add(uint64(v))
			sc.samples[ri] = 0
		}
		if v := sc.handovers[ri]; v != 0 {
			a.handovers += v
			a.cHandover.Add(uint64(v))
			f.epochHo[ri] += v
			sc.handovers[ri] = 0
		}
		sc.latency[ri].DrainInto(&a.latency)
		sc.peak[ri].DrainInto(&a.peak)
		sc.offPeak[ri].DrainInto(&a.offPeak)
		sc.hLatency[ri].DrainInto(a.hLatencyNs)
		sc.hTput[ri].DrainInto(a.hTputKbps)
	}
}

// Close shuts the worker pool down. Idempotent; a Fleet built with
// Workers <= 1 has no pool and Close is a no-op. Run(cfg) and
// Traffic.Run close their fleets; callers that build a pooled Fleet via
// New and keep it should Close it when done, or its worker goroutines
// outlive it.
func (f *Fleet) Close() {
	if f.pool != nil {
		close(f.pool.work)
		f.pool = nil
	}
}
