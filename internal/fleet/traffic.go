package fleet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/leo"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/stats"
)

// This file is the packet-level fleet scenario: every terminal of the
// planet-scale fleet pings its serving gateway once per interval through
// an emulated bent-pipe network, and the whole thing runs as one
// conservative PDES scenario — the simulation graph is partitioned into
// contiguous cell ranges (PartitionTerminals), each partition owns a
// netem.Network on its own sim.Scheduler, and partitions exchange packets
// only through sim.CrossEdges whose lookahead is the provable lower bound
// of the bent-pipe propagation delay.
//
// Topology per partition p (addresses in dotted-quad):
//
//	terminals 10.p.0.0/16 --(D(t)-L)--> egress 172.16.p.1
//	egress p --(L, cross edge when p!=q)--> ingress 172.16.q.2
//	ingress q --(0)--> gateways 192.168.g (those with g mod P == q)
//
// and the mirror path for echo replies. The per-terminal access links
// carry D(t)-L where D(t) is the fleet's current one-way bent-pipe delay
// and L the lookahead, so every end-to-end direction sums to exactly D(t)
// while every partition-crossing hop carries the constant L — the
// conservative engine's lookahead promise is met by construction, not by
// clamping.
//
// Determinism contract: for a fixed (config, seed, partition count) the
// outputs — TrafficResult, per-partition metrics, traces — are
// bit-identical for any ScenarioWorkers value, because workers only pick
// which CPU runs which partition (see sim.PartitionedDriver). The
// single-scheduler reference path (ReferencePartitioning) stays in-tree
// as ground truth; the equivalence suite holds PDES output equal to it.

// probeSize is the on-wire size of one ICMP probe, roughly the 100-byte
// pings the paper's RIPE Atlas campaign used.
const probeSize = 100

// maxTrafficPartitions bounds the partition count so partition indices
// fit the 10.p.0.0/16 addressing scheme.
const maxTrafficPartitions = 255

// FidelityMode selects how much of the emulation machinery the traffic
// scenario runs. The zero value is FidelityAuto — the fast path — because
// the lower modes are proven bit-identical to FidelityFull on every
// output (results, metrics, traces) by the equivalence suite and the
// ci.sh byte-diff, so there is no correctness reason to default slower.
type FidelityMode uint8

const (
	// FidelityAuto downgrades link fidelity tiers where provably sound
	// (netem.AutoSelectFidelity) and fast-forwards steady-state probe
	// trains in closed form between epoch boundaries.
	FidelityAuto FidelityMode = iota
	// FidelityTiers downgrades link tiers but fires every probe event.
	FidelityTiers
	// FidelityFull runs the complete reference datapath everywhere and
	// never fast-forwards — the ground truth the other modes are held to.
	FidelityFull
)

// String implements fmt.Stringer.
func (m FidelityMode) String() string {
	switch m {
	case FidelityAuto:
		return "auto"
	case FidelityTiers:
		return "tiers"
	case FidelityFull:
		return "full"
	default:
		return "fidelity?"
	}
}

// TrafficConfig parameterizes the packet-level fleet scenario.
type TrafficConfig struct {
	// Fleet configures the underlying terminal population and epoch
	// reassignment campaign. Fleet.Horizon is the packet horizon too.
	Fleet Config
	// Interval is the per-terminal probe period (default 1s). Each
	// terminal's phase within the interval derives from its seed.
	Interval time.Duration
	// Partitions is the spatial partition count (default 16, max 255).
	// Results depend on it only through rounding-free accumulators: the
	// per-region outcome is partition-count invariant, and for a fixed
	// count the full output is byte-identical across worker counts.
	Partitions int
	// ScenarioWorkers is the number of goroutines driving PDES windows
	// (default 1). Never affects results, only wall-clock time.
	ScenarioWorkers int
	// ReferencePartitioning runs the whole scenario on one plain
	// scheduler with no PDES driver — the ground-truth path the
	// equivalence suite compares against. Forces Partitions to 1, and is
	// byte-identical to the PDES path at one partition.
	ReferencePartitioning bool
	// Collector, when non-nil, receives one observability sink per
	// partition (registered as "fleettraffic/0000"...) plus the fleet
	// campaign's sink at index Partitions. Source naming goes through
	// obs.ShardSource, so exports are worker-invariant.
	Collector *obs.Collector
	// Fidelity selects the emulation mode (default FidelityAuto). Any
	// mode produces bit-identical results, metrics and traces — only
	// wall-clock time and engine event counts differ.
	Fidelity FidelityMode
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	if c.Partitions > maxTrafficPartitions {
		c.Partitions = maxTrafficPartitions
	}
	if c.ScenarioWorkers <= 0 {
		c.ScenarioWorkers = 1
	}
	if c.ReferencePartitioning {
		c.Partitions = 1
	}
	return c
}

// TrafficLookahead returns the cross-partition lookahead for a
// constellation: the propagation delay of twice the lowest shell
// altitude, shaved by 0.1%. Any bent-pipe path travels up to a satellite
// (slant range >= altitude) and down to a gateway (same bound), so every
// one-way delay D satisfies D >= RadioDelay(2*alt) > L strictly — the
// shave only has to dominate floating-point rounding, never physics.
func TrafficLookahead(shells []leo.ShellConfig) time.Duration {
	minAlt := math.Inf(1)
	for _, sc := range shells {
		if sc.AltKm < minAlt {
			minAlt = sc.AltKm
		}
	}
	return geo.RadioDelay(2 * minAlt * 0.999)
}

// trafficAccum aggregates one region's probe outcome within one
// partition. Plain fields: each partition's accumulators are written only
// by its own goroutine during windows; merging across partitions is
// commutative (sums and FixedDist.Merge), which is what makes the
// per-region result partition-count invariant.
type trafficAccum struct {
	sent    int64
	recv    int64
	skipped int64
	rtt     stats.FixedDist // ms, same geometry as the fleet latency dist
}

// probeRef is one terminal's probe state: the stable argument for the
// allocation-free AtFunc re-arm chain. At most one probe is outstanding
// per terminal (interval >> RTT), so a seq match against the last send
// fully identifies the reply.
type probeRef struct {
	part *trafficPart
	term int32 // global index into the fleet SoA
	node *netem.Node
	seq  int
	sent sim.Time
	wait bool
	// up/down are this terminal's private access links, kept so the
	// fast-forward can credit their stats and carry their FIFO arrival
	// clamp forward in closed form.
	up, down *netem.Link
	// credit is the reusable cross-partition stats credit (see ffAbsorb's
	// cross branch): at most one is ever in flight per terminal, because
	// the credit's delivery stamp precedes the train's next fire by more
	// than the lookahead, so the window that executes it has fully
	// completed — with a barrier in between — before this terminal can
	// absorb again and rewrite the struct.
	credit ffCredit
}

// ffCredit carries the bulk stats credit an absorbed cross-partition
// probe train owes its gateway partition: k probes through the gateway
// link pair and k echo replies over the q->p return mesh crossing. It
// travels over the same cross edge real request packets use, so
// delivery respects the conservative lookahead by construction.
type ffCredit struct {
	tr   *Traffic
	g    int32 // gateway index
	from int32 // source partition p (the absorbed terminal's)
	k    uint64
}

// ffRemoteCredit executes on the gateway partition's scheduler. All
// three links it touches have their stats owned by that partition in
// full emulation too (cross-link counters are source-side, and the
// return crossing's source is the gateway partition), so the crediting
// goroutine matches the emulating one exactly.
func ffRemoteCredit(arg any) {
	c := arg.(*ffCredit)
	tr := c.tr
	tr.gwTo[c.g].AccountBypassed(c.k, 0)
	tr.gwFrom[c.g].AccountBypassed(c.k, 0)
	tr.mesh[tr.home[c.g]][c.from].AccountBypassed(c.k, 0)
}

// trafficPart is one partition's share of the scenario: a network on the
// partition's scheduler, its boundary routers, its terminal range, and
// its private accumulators.
type trafficPart struct {
	tr      *Traffic
	idx     int
	sched   *sim.Scheduler
	net     *netem.Network
	egress  *netem.Node
	ingress *netem.Node
	lo, hi  int // terminal range [lo, hi)
	probes  []probeRef
	acc     []trafficAccum
	// meshSelf is the intra-partition egress->ingress link — the one mesh
	// link fast-forwarded probe trains traverse (twice per probe).
	meshSelf *netem.Link
	// ffProbes counts probes answered in closed form by the fast-forward.
	ffProbes int64

	sink     *obs.Sink
	cSent    *obs.Counter
	cRecv    *obs.Counter
	cSkipped *obs.Counter
	hRTT     *obs.Histogram
}

// Traffic is an instantiated packet-level fleet scenario.
type Traffic struct {
	cfg       TrafficConfig
	fleet     *Fleet
	pm        *PartitionMap
	lookahead time.Duration
	horizon   sim.Time

	driver *sim.PartitionedDriver // nil on the reference path
	sched  *sim.Scheduler         // the reference path's single scheduler
	parts  []*trafficPart

	// Fast-forward state (FidelityAuto): precomputed integer-ns constants
	// of the epoch grid plus the topology handles the closed forms credit.
	ff           bool
	ivlNs        int64
	epochNs      int64
	lastEpochAt  int64 // instant of the final reassignment; delays are constant from here to the horizon
	lookNs       int64
	home         []int // gateway -> home partition, from the build-time tally
	gwTo, gwFrom []*netem.Link
	// mesh[p][q] is the boundary link from partition p's egress to q's
	// ingress (meshSelf on the diagonal); edges[p][q] is the raw cross
	// edge under it (nil on the diagonal and on the reference path). The
	// cross-partition fast-forward credits the p-owned request crossing
	// directly and sends the q-owned half of the credit over the edge.
	mesh  [][]*netem.Link
	edges [][]*sim.CrossEdge
}

func terminalAddr(part, i int) netem.Addr {
	return netem.Addr(10<<24 | part<<16 | i)
}

func egressAddr(part int) netem.Addr {
	return netem.Addr(172<<24 | 16<<16 | part<<8 | 1)
}

func ingressAddr(part int) netem.Addr {
	return netem.Addr(172<<24 | 16<<16 | part<<8 | 2)
}

func gatewayAddr(g int) netem.Addr {
	return netem.Addr(192<<24 | 168<<16 | g)
}

// NewTraffic builds the scenario: fleet placement, partition map, one
// network per partition, the mesh of boundary links (cross edges where
// they span partitions), and every terminal's probe chain.
func NewTraffic(cfg TrafficConfig) *Traffic {
	cfg = cfg.withDefaults()
	var fleetSink *obs.Sink
	if cfg.Collector != nil {
		fleetSink = obs.NewSink(0)
		cfg.Fleet.Obs = fleetSink
	}
	f := New(cfg.Fleet)
	tr := &Traffic{
		cfg:       cfg,
		fleet:     f,
		lookahead: TrafficLookahead(f.cfg.Shells),
		horizon:   sim.Time(int64(f.cfg.Horizon)),
	}
	tr.ff = cfg.Fidelity == FidelityAuto
	tr.ivlNs = int64(cfg.Interval)
	tr.epochNs = int64(f.cfg.Epoch)
	tr.lookNs = int64(tr.lookahead)
	epochs := int64(f.cfg.Horizon / f.cfg.Epoch)
	if epochs < 1 {
		epochs = 1
	}
	tr.lastEpochAt = (epochs - 1) * tr.epochNs
	tr.pm = f.PartitionTerminals(cfg.Partitions)
	nParts := tr.pm.Parts

	// Every scheduler is seeded identically in PDES and reference mode,
	// which is one of the two ingredients (with identical build order) of
	// the byte-identity between the reference path and PDES at one
	// partition.
	scheds := make([]*sim.Scheduler, nParts)
	if cfg.ReferencePartitioning {
		tr.sched = sim.NewScheduler(sim.DeriveSeed(f.cfg.Seed, "pdes/partition", 0))
		scheds[0] = tr.sched
	} else {
		tr.driver = sim.NewPartitionedDriver(f.cfg.Seed, nParts)
		for p := range scheds {
			scheds[p] = tr.driver.Scheduler(p)
		}
	}
	tr.build(scheds)

	if cfg.Collector != nil {
		for p, part := range tr.parts {
			cfg.Collector.Add(obs.ShardSource("fleettraffic", p), part.sink)
		}
		cfg.Collector.Add(obs.ShardSource("fleettraffic", nParts), fleetSink)
	}
	return tr
}

// build wires the whole topology in a fixed order — partitions ascending,
// and within the mesh pass source-major — so cross-edge creation order
// (and with it every partition's inbox drain order) is a pure function of
// the configuration.
func (tr *Traffic) build(scheds []*sim.Scheduler) {
	f := tr.fleet
	nParts := len(scheds)
	look := tr.lookahead

	// Pass 1: networks, routers, gateway and terminal nodes.
	for p := 0; p < nParts; p++ {
		lo, hi := int(tr.pm.TermStart[p]), int(tr.pm.TermStart[p+1])
		if hi-lo >= 1<<16 {
			panic(fmt.Sprintf("fleet: partition %d holds %d terminals, exceeding the 10.p.0.0/16 address space", p, hi-lo))
		}
		pt := &trafficPart{tr: tr, idx: p, sched: scheds[p], lo: lo, hi: hi}
		pt.net = netem.New(pt.sched)
		if tr.cfg.Collector != nil {
			pt.sink = obs.NewSink(0)
			pt.net.Observe(pt.sink)
			reg := pt.sink.Registry()
			pt.cSent = reg.Counter("traffic.probes_sent")
			pt.cRecv = reg.Counter("traffic.probes_recv")
			pt.cSkipped = reg.Counter("traffic.probes_skipped")
			pt.hRTT = reg.Histogram("traffic.rtt_ns", obs.DurationBounds())
		}
		pt.egress = pt.net.NewNode(fmt.Sprintf("egress%d", p), egressAddr(p))
		pt.ingress = pt.net.NewNode(fmt.Sprintf("ingress%d", p), ingressAddr(p))
		pt.acc = make([]trafficAccum, len(f.regions))
		for ri := range pt.acc {
			pt.acc[ri].rtt = stats.NewFixedDist(0.5, 600)
		}
		pt.probes = make([]probeRef, hi-lo)
		tr.parts = append(tr.parts, pt)
	}

	// Pass 2: the boundary mesh. Source-major order fixes each
	// destination's cross-edge list (ascending source), and with it the
	// deterministic inbox drain order inside sim.PartitionedDriver.
	mesh := make([][]*netem.Link, nParts)
	edges := make([][]*sim.CrossEdge, nParts)
	meshCfg := netem.LinkConfig{Delay: netem.ConstantDelay(look)}
	for p := 0; p < nParts; p++ {
		mesh[p] = make([]*netem.Link, nParts)
		edges[p] = make([]*sim.CrossEdge, nParts)
		for q := 0; q < nParts; q++ {
			if p == q {
				mesh[p][q] = tr.parts[p].net.AddLink(tr.parts[p].egress, tr.parts[p].ingress, meshCfg)
				tr.parts[p].meshSelf = mesh[p][q]
				continue
			}
			edge, err := tr.driver.Connect(p, q, look)
			if err != nil {
				panic(err)
			}
			edges[p][q] = edge
			mesh[p][q] = tr.parts[p].net.AddCrossLink(tr.parts[p].egress, tr.parts[q].ingress, edge, meshCfg)
		}
	}
	tr.mesh, tr.edges = mesh, edges

	// Pass 3: gateways and routes. Each gateway is homed in the partition
	// owning its own grid cell: assignment picks the gateway with the
	// shortest slant range from the (roughly overhead) serving satellite,
	// so a terminal's gateway is almost always geographically nearby, and
	// homing by the gateway's position keeps most probes intra-partition —
	// cross-edge traffic (and with it the conservative engine's per-window
	// overhead) scales with the partition map's real cut, not with the
	// gateway count. The mapping is a pure function of (config, partition
	// count), hence identical in PDES and reference mode. Every egress
	// router can still reach every gateway through the mesh, and routes
	// replies by terminal /16 prefix, so homing never affects delivery or
	// delay — only which edges carry the packets, and with them which
	// partition owns the stats the fast-forward's cross branch must
	// credit remotely.
	home := make([]int, len(f.cfg.Gateways))
	for g, gwc := range f.cfg.Gateways {
		home[g] = int(tr.pm.CellPart[f.grid.cellOf(gwc.Pos.LatDeg, gwc.Pos.LonDeg)])
	}
	tr.home = home
	tr.gwTo = make([]*netem.Link, len(f.cfg.Gateways))
	tr.gwFrom = make([]*netem.Link, len(f.cfg.Gateways))
	for g := range f.cfg.Gateways {
		p := home[g]
		pt := tr.parts[p]
		gw := pt.net.NewNode(fmt.Sprintf("gw%d", g), gatewayAddr(g))
		gw.EchoResponder = true
		toGw := pt.net.AddLink(pt.ingress, gw, netem.LinkConfig{})
		fromGw := pt.net.AddLink(gw, pt.egress, netem.LinkConfig{})
		gw.SetDefaultRoute(fromGw)
		pt.ingress.AddRoute(gw.Addr(), toGw)
		tr.gwTo[g], tr.gwFrom[g] = toGw, fromGw
	}
	for p := 0; p < nParts; p++ {
		pt := tr.parts[p]
		for g := range f.cfg.Gateways {
			pt.egress.AddRoute(gatewayAddr(g), mesh[p][home[g]])
		}
		for q := 0; q < nParts; q++ {
			pt.egress.AddPrefixRoute(terminalAddr(q, 0), 16, mesh[p][q])
		}
	}

	// Pass 4: terminals — access links carrying D(t)-L, reply handlers,
	// and the first probe of each re-arm chain.
	interval := int64(tr.cfg.Interval)
	for p := 0; p < nParts; p++ {
		pt := tr.parts[p]
		for t := pt.lo; t < pt.hi; t++ {
			t := t
			node := pt.net.NewNode(fmt.Sprintf("term%d", t), terminalAddr(p, t-pt.lo))
			access := netem.LinkConfig{
				Delay: func(sim.Time) time.Duration { return time.Duration(f.delayNs[t]) - look },
				Down:  func(sim.Time) bool { return f.delayNs[t] < 0 },
			}
			up := pt.net.AddLink(node, pt.egress, access)
			down := pt.net.AddLink(pt.ingress, node, access)
			node.SetDefaultRoute(up)
			pt.ingress.AddRoute(node.Addr(), down)

			ref := &pt.probes[t-pt.lo]
			ref.part, ref.term, ref.node = pt, int32(t), node
			ref.up, ref.down = up, down
			node.Bind(netem.ProtoICMP, 0, func(pkt *netem.Packet) {
				ic, ok := pkt.Payload.(*netem.ICMP)
				if !ok || ic.Type != netem.ICMPEchoReply || !ref.wait || ic.Seq != ref.seq {
					return
				}
				ref.wait = false
				rtt := pt.sched.Now().Sub(ref.sent)
				a := &pt.acc[f.region[t]]
				a.recv++
				a.rtt.Observe(float64(rtt) / 1e6)
				pt.cRecv.Inc()
				pt.hRTT.Observe(int64(rtt))
			})
			// Phase within the interval derives from the terminal's own
			// seed: probe instants are a pure function of placement, so
			// they are identical in PDES and reference mode.
			pt.sched.AtFunc(sim.Time(int64(f.seed[t]%uint64(interval))), probeFire, ref)
		}
	}

	// Fidelity pass: every link in this topology is rate-0 and queue-less
	// by construction, so auto-selection downgrades all of them — access
	// links (which carry an outage predicate) to delay-only, the mesh and
	// gateway links to fast. FidelityFull skips the pass and keeps the
	// complete reference datapath under every packet.
	if tr.cfg.Fidelity != FidelityFull {
		for _, pt := range tr.parts {
			pt.net.AutoSelectFidelity()
		}
	}
}

// ffAbsorb tries to answer this probe fire — and the remainder of its
// steady-state train — in closed form, without emulating a single
// packet. It exploits the scenario's piecewise-constant structure: the
// fleet arrays (delayNs, gw) are written only at epoch barriers, so
// between `now` and the next boundary every one of this terminal's
// probes traverses the same six queue-less hops with the same constant
// delays, and the outcome of each is a pure function of its fire
// instant. The absorbed train is provably bit-identical to emulation:
//
//   - Every hop's send happens strictly inside the constant window
//     (the last reply lands at tau+2d < constEnd and d > L, so the
//     last down-link send at tau+d+L is earlier still), so no virtual
//     packet ever sees a delay from the next epoch.
//   - rtt < interval means each reply lands before the next fire —
//     exactly one probe outstanding, seq always matches.
//   - The FIFO clamp on the private access links is handled exactly:
//     within the window raw arrivals grow monotonically (constant d),
//     so the clamp can only bind against carryover from a previous
//     epoch — the entry check below — and the final clamp state is
//     restored through AccountBypassed's max-merge.
//   - The shared mesh/gateway links have constant delay, so real sends
//     (always chronological) can never be clamped; their clamp state is
//     deliberately NOT advanced to a virtual future arrival, which
//     could otherwise clamp another terminal's live packet in a way
//     full emulation never would.
//   - A train homed to a remote-partition gateway absorbs too: the
//     cross crossings carry the same constant lookahead both ways, so
//     the raw access-link arrivals — and with them every eligibility
//     bound above — are identical to the intra-partition case. Only
//     the stats ownership differs: the gateway pair and the return
//     crossing are counted by the gateway partition in full emulation,
//     so their credit travels over the request cross edge (stamped
//     inside the conservative horizon by the same d > L bound real
//     packets rely on) and lands as one remote event — which also
//     keeps processed+skipped exactly equal to full emulation's event
//     count.
//
// Anything aperiodic — epoch boundary inside the train, a reply that
// would cross the boundary or the horizon, clamp carryover — fails an
// eligibility check and falls back to plain emulation for this fire
// (return false); the next fire retries. Outage epochs absorb
// trivially: the probe is never transmitted, so the whole window's
// skips collapse into counter arithmetic.
func ffAbsorb(ref *probeRef) bool {
	pt := ref.part
	tr := pt.tr
	f := tr.fleet
	t := int(ref.term)
	nowNs := int64(pt.sched.Now())
	ivl := tr.ivlNs
	constEnd := int64(tr.horizon)
	if nowNs < tr.lastEpochAt {
		constEnd = (nowNs/tr.epochNs + 1) * tr.epochNs
	}
	a := &pt.acc[f.region[t]]

	d := f.delayNs[t]
	g := f.gw[t]
	if d < 0 || g < 0 {
		// Outage: every fire up to the boundary is a skip. The re-arm
		// keeps the terminal's phase grid, so the first fire at or past
		// the boundary re-evaluates against the reassigned fleet.
		k := (constEnd-1-nowNs)/ivl + 1
		a.skipped += k
		pt.cSkipped.Add(uint64(k))
		pt.ffProbes += k
		pt.sched.CreditSkipped(uint64(k - 1))
		if next := sim.Time(nowNs + k*ivl); next < tr.horizon {
			pt.sched.AtFunc(next, probeFire, ref)
		}
		return true
	}

	rtt := 2 * d
	if rtt >= ivl || nowNs+rtt >= constEnd {
		// Overlapping probes, or a train too close to the boundary (its
		// reply would land in the next window, or — at the horizon —
		// never land at all, which plain emulation reproduces as an
		// in-flight loss).
		return false
	}
	if sim.Time(nowNs+d-tr.lookNs) < ref.up.LastArrival() ||
		sim.Time(nowNs+rtt) < ref.down.LastArrival() {
		// A previous epoch's larger delay left a FIFO clamp that would
		// bind on this fire; emulate it (the clamp applies identically
		// there) and retry on the next, whose raw arrivals are later.
		return false
	}

	// k fires at now, now+ivl, ..., last — the longest prefix of the
	// train whose replies all land strictly before the boundary.
	k := (constEnd-rtt-1-nowNs)/ivl + 1
	last := nowNs + (k-1)*ivl
	ref.seq += int(k)
	ref.sent = sim.Time(last)
	ref.wait = false
	a.sent += k
	a.recv += k
	a.rtt.ObserveN(float64(rtt)/1e6, k)
	pt.cSent.Add(uint64(k))
	pt.cRecv.Add(uint64(k))
	pt.hRTT.ObserveN(rtt, uint64(k))
	// Per probe: one packet up, two mesh traversals (request + echo),
	// one each through the gateway pair, one packet down.
	kk := uint64(k)
	ref.up.AccountBypassed(kk, sim.Time(last+d-tr.lookNs))
	ref.down.AccountBypassed(kk, sim.Time(last+rtt))
	pt.ffProbes += k
	if q := tr.home[g]; q == pt.idx {
		pt.meshSelf.AccountBypassed(2*kk, 0)
		tr.gwTo[g].AccountBypassed(kk, 0)
		tr.gwFrom[g].AccountBypassed(kk, 0)
		// Each emulated probe costs seven events on the delay-only/fast
		// tiers (the fire plus six single-hop deliveries); this fire's
		// own event did execute.
		pt.sched.CreditSkipped(7*kk - 1)
	} else {
		// Remote-homed gateway: credit the p-owned request crossing
		// here; the q-owned gateway pair and return crossing travel as
		// one ffCredit over the request edge. The stamp now+d clears the
		// edge's lookahead (d > L strictly) and precedes the train's
		// next possible fire by more than a window, so reusing
		// ref.credit is race-free. Seven events per probe minus the two
		// that execute (this fire and the credit delivery).
		tr.mesh[pt.idx][q].AccountBypassed(kk, 0)
		ref.credit = ffCredit{tr: tr, g: g, from: int32(pt.idx), k: kk}
		tr.edges[pt.idx][q].Send(sim.Time(nowNs+d), ffRemoteCredit, &ref.credit)
		pt.sched.CreditSkipped(7*kk - 2)
	}
	if next := sim.Time(last + ivl); next < tr.horizon {
		pt.sched.AtFunc(next, probeFire, ref)
	}
	return true
}

// probeFire sends one ICMP echo probe and re-arms the chain. It is a
// package-level EventFunc with a stable *probeRef argument, so the whole
// probe machinery schedules allocation-free after build.
func probeFire(arg any) {
	ref := arg.(*probeRef)
	pt := ref.part
	tr := pt.tr
	if tr.ff && ffAbsorb(ref) {
		return
	}
	t := int(ref.term)
	now := pt.sched.Now()
	if next := now.Add(tr.cfg.Interval); next < tr.horizon {
		pt.sched.AtFunc(next, probeFire, ref)
	}
	f := tr.fleet
	if f.delayNs[t] < 0 || f.gw[t] < 0 {
		// Outage epoch: the dish has no serving satellite (or no
		// reachable gateway), so the probe is never transmitted.
		pt.acc[f.region[t]].skipped++
		pt.cSkipped.Inc()
		return
	}
	ref.seq++
	ref.sent = now
	ref.wait = true
	pkt := pt.net.NewPacket()
	pkt.Dst = gatewayAddr(int(f.gw[t]))
	pkt.Proto = netem.ProtoICMP
	pkt.Size = probeSize
	ic := pt.net.NewICMP()
	ic.Type = netem.ICMPEchoRequest
	ic.Seq = ref.seq
	pkt.Payload = ic
	ref.node.Send(pkt)
	pt.acc[f.region[t]].sent++
	pt.cSent.Inc()
}

// epoch runs one fleet reassignment plus the beam/accounting pass. In
// PDES mode it executes as a barrier global — single-threaded, with every
// partition's clock exactly at the epoch instant — so the shared fleet
// arrays are never written while a window runs.
func (tr *Traffic) epoch(e int, at sim.Time) {
	tr.fleet.RunEpoch(e, at)
}

// Run executes the scenario to the horizon and returns the merged result.
func (tr *Traffic) Run() *TrafficResult {
	f := tr.fleet
	defer f.Close()
	epochs := int(f.cfg.Horizon / f.cfg.Epoch)
	if epochs < 1 {
		epochs = 1
	}
	if tr.driver != nil {
		for e := 0; e < epochs; e++ {
			e := e
			at := sim.Time(int64(e) * int64(f.cfg.Epoch))
			tr.driver.GlobalAt(at, func(at sim.Time) { tr.epoch(e, at) })
		}
		tr.driver.Run(tr.horizon, tr.cfg.ScenarioWorkers)
	} else {
		// The reference loop advances with RunBefore — the same half-open
		// window the PDES driver uses — so an event at exactly an epoch
		// boundary observes the reassigned fleet in both modes.
		for e := 0; e < epochs; e++ {
			at := sim.Time(int64(e) * int64(f.cfg.Epoch))
			tr.sched.RunBefore(at)
			tr.epoch(e, at)
		}
		tr.sched.RunBefore(tr.horizon)
	}
	return tr.result(f.result(epochs))
}

// RunTraffic builds and runs a packet-level fleet scenario in one call.
func RunTraffic(cfg TrafficConfig) *TrafficResult {
	return NewTraffic(cfg).Run()
}

// FastForwarded returns how many probe fires the analytic fast-forward
// absorbed in closed form (0 except in FidelityAuto mode). Deliberately
// not part of TrafficResult: the count depends on the fidelity mode,
// while every TrafficResult field is fidelity-invariant (eligibility no
// longer depends on gateway homing — cross-partition trains absorb too).
func (tr *Traffic) FastForwarded() int64 {
	var n int64
	for _, pt := range tr.parts {
		n += pt.ffProbes
	}
	return n
}

// EventsSkipped returns how many scheduler events the fast-forward
// displaced — the work full-per-event emulation would have executed.
// Processed + skipped is comparable across fidelity modes.
func (tr *Traffic) EventsSkipped() uint64 {
	if tr.driver != nil {
		return tr.driver.EventsSkipped()
	}
	return tr.sched.Skipped
}

// LinkTiers sums the per-partition link tier counts — how many links the
// fidelity auto-selection left at full and downgraded to delay-only and
// fast.
func (tr *Traffic) LinkTiers() (full, delayOnly, fast int) {
	for _, pt := range tr.parts {
		f, d, fa := pt.net.TierCounts()
		full, delayOnly, fast = full+f, delayOnly+d, fast+fa
	}
	return full, delayOnly, fast
}

// TrafficResult is the merged outcome of a packet-level fleet scenario.
// All fields except Windows and Events are invariant to both the
// partition count and the worker count; Windows/Events additionally
// depend on the partition count (more partitions, more cross traffic) but
// never on workers.
type TrafficResult struct {
	Terminals  int
	Partitions int
	// Windows counts PDES barrier windows (0 on the reference path);
	// Events counts executed simulation events.
	Windows uint64
	Events  uint64

	ProbesSent    int64
	ProbesRecv    int64
	ProbesSkipped int64

	// Fleet is the embedded epoch campaign's per-region result.
	Fleet *Result
	// Regions is the per-region probe outcome, sorted by region name.
	Regions []TrafficRegionResult
}

// TrafficRegionResult summarizes one region's probes.
type TrafficRegionResult struct {
	Region  string
	Sent    int64
	Recv    int64
	Skipped int64
	// LossPct is the share of sent probes without a reply by the
	// horizon. The emulated links are lossless, so this counts probes
	// still in flight when the campaign ends.
	LossPct float64
	// Packet-level RTT quantiles in milliseconds; these come from the
	// emulated datapath, not from geometry queries, and land within one
	// histogram bucket of the fleet campaign's analytic latency.
	RTTP50Ms float64
	RTTP95Ms float64
}

// result merges the per-partition accumulators in partition order.
func (tr *Traffic) result(fl *Result) *TrafficResult {
	res := &TrafficResult{
		Terminals:  len(tr.fleet.sat),
		Partitions: len(tr.parts),
		Fleet:      fl,
	}
	if tr.driver != nil {
		res.Windows = tr.driver.Windows
		res.Events = tr.driver.Events()
	} else {
		res.Events = tr.sched.Processed
	}
	merged := make([]trafficAccum, len(tr.fleet.regions))
	for ri := range merged {
		merged[ri].rtt = stats.NewFixedDist(0.5, 600)
	}
	for _, pt := range tr.parts {
		for ri := range pt.acc {
			merged[ri].sent += pt.acc[ri].sent
			merged[ri].recv += pt.acc[ri].recv
			merged[ri].skipped += pt.acc[ri].skipped
			merged[ri].rtt.Merge(&pt.acc[ri].rtt)
		}
	}
	for ri, name := range tr.fleet.regions {
		a := &merged[ri]
		rr := TrafficRegionResult{
			Region:   name,
			Sent:     a.sent,
			Recv:     a.recv,
			Skipped:  a.skipped,
			RTTP50Ms: a.rtt.Quantile(0.50),
			RTTP95Ms: a.rtt.Quantile(0.95),
		}
		if a.sent > 0 {
			rr.LossPct = 100 * float64(a.sent-a.recv) / float64(a.sent)
		}
		res.ProbesSent += a.sent
		res.ProbesRecv += a.recv
		res.ProbesSkipped += a.skipped
		res.Regions = append(res.Regions, rr)
	}
	sort.Slice(res.Regions, func(i, j int) bool {
		return res.Regions[i].Region < res.Regions[j].Region
	})
	return res
}
