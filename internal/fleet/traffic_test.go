package fleet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"starlinkperf/internal/obs"
)

// testTrafficConfig is the small-but-global scenario the equivalence
// suite runs: enough terminals to populate several partitions on every
// continent, three epochs, and a few probes per terminal.
func testTrafficConfig(seed uint64) TrafficConfig {
	return TrafficConfig{
		Fleet: Config{
			Seed:      seed,
			Terminals: 400,
			Horizon:   6 * time.Second,
			Epoch:     2 * time.Second,
		},
		Interval: time.Second,
	}
}

// scrub zeroes the fields that legitimately depend on the execution
// engine (window count, event count) so the rest can be compared exactly.
func scrub(r *TrafficResult) *TrafficResult {
	c := *r
	c.Windows = 0
	c.Events = 0
	c.Partitions = 0
	return &c
}

// TestTrafficReferenceVsPDES holds the PDES engine to the single-
// scheduler reference path: for several seeds and partition counts, the
// merged result — probe counts, per-region RTT quantiles, the embedded
// fleet campaign — must be exactly equal.
func TestTrafficReferenceVsPDES(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20260808} {
		ref := RunTraffic(func() TrafficConfig {
			c := testTrafficConfig(seed)
			c.ReferencePartitioning = true
			return c
		}())
		if ref.ProbesSent == 0 || ref.ProbesRecv == 0 {
			t.Fatalf("seed %d: reference run sent %d, received %d probes", seed, ref.ProbesSent, ref.ProbesRecv)
		}
		for _, parts := range []int{1, 2, 4, 8} {
			c := testTrafficConfig(seed)
			c.Partitions = parts
			got := RunTraffic(c)
			if !reflect.DeepEqual(scrub(got), scrub(ref)) {
				t.Errorf("seed %d, %d partitions: PDES result diverges from reference\n got: %+v\nwant: %+v",
					seed, parts, scrub(got), scrub(ref))
			}
		}
	}
}

// TestTrafficWorkerInvariance byte-diffs the full observability exports —
// merged and per-partition metrics, both trace encodings — across worker
// counts at a fixed partition count. Workers must be invisible.
func TestTrafficWorkerInvariance(t *testing.T) {
	type export struct{ metrics, jsonl, binary []byte }
	run := func(seed uint64, workers int) (export, *TrafficResult) {
		col := obs.NewCollector()
		c := testTrafficConfig(seed)
		c.Partitions = 4
		c.ScenarioWorkers = workers
		c.Collector = col
		res := RunTraffic(c)
		return export{col.ExportMetricsJSON(), col.ExportTraceJSONL(), col.ExportTraceBinary()}, res
	}
	for _, seed := range []uint64{1, 42, 20260808} {
		base, baseRes := run(seed, 1)
		for _, workers := range []int{2, 4, 8} {
			got, gotRes := run(seed, workers)
			if !bytes.Equal(got.metrics, base.metrics) {
				t.Errorf("seed %d: metrics export differs between 1 and %d workers", seed, workers)
			}
			if !bytes.Equal(got.jsonl, base.jsonl) {
				t.Errorf("seed %d: JSONL trace differs between 1 and %d workers", seed, workers)
			}
			if !bytes.Equal(got.binary, base.binary) {
				t.Errorf("seed %d: binary trace differs between 1 and %d workers", seed, workers)
			}
			if !reflect.DeepEqual(gotRes, baseRes) {
				t.Errorf("seed %d: result differs between 1 and %d workers", seed, workers)
			}
		}
	}
}

// TestTrafficOnePartitionByteIdentical pins the strongest equivalence:
// PDES with one partition produces byte-for-byte the same exports as the
// reference path — same events, same order, same trace stream — because
// the builder, seeds and half-open window semantics are shared.
func TestTrafficOnePartitionByteIdentical(t *testing.T) {
	run := func(reference bool) (m, j []byte) {
		col := obs.NewCollector()
		c := testTrafficConfig(7)
		c.Partitions = 1
		c.ReferencePartitioning = reference
		c.Collector = col
		RunTraffic(c)
		return col.ExportMetricsJSON(), col.ExportTraceJSONL()
	}
	refM, refJ := run(true)
	gotM, gotJ := run(false)
	if !bytes.Equal(gotM, refM) {
		t.Error("one-partition PDES metrics differ from reference path")
	}
	if !bytes.Equal(gotJ, refJ) {
		t.Error("one-partition PDES trace differs from reference path")
	}
}

// TestTrafficRTTPlausibility checks the emulated datapath reproduces the
// paper's latency regime: bent-pipe medians in the tens of milliseconds,
// and the packet-level RTT close to the fleet campaign's analytic RTT.
func TestTrafficRTTPlausibility(t *testing.T) {
	c := testTrafficConfig(3)
	c.Partitions = 4
	res := RunTraffic(c)
	if res.ProbesRecv == 0 {
		t.Fatal("no probes received")
	}
	for _, rr := range res.Regions {
		if rr.Recv == 0 {
			continue
		}
		if rr.RTTP50Ms < 5 || rr.RTTP50Ms > 120 {
			t.Errorf("%s: packet RTT p50 %.1f ms outside the bent-pipe regime", rr.Region, rr.RTTP50Ms)
		}
		var fl *RegionResult
		for i := range res.Fleet.Regions {
			if res.Fleet.Regions[i].Region == rr.Region {
				fl = &res.Fleet.Regions[i]
			}
		}
		if fl == nil || fl.Samples == 0 {
			continue
		}
		// Same 0.5 ms histogram geometry on both sides; the probe and the
		// analytic campaign sample the same delays at different instants
		// within each epoch, so medians agree to a few buckets.
		if d := rr.RTTP50Ms - fl.LatencyP50Ms; d > 2.5 || d < -2.5 {
			t.Errorf("%s: packet RTT p50 %.1f ms vs analytic %.1f ms", rr.Region, rr.RTTP50Ms, fl.LatencyP50Ms)
		}
	}
}

// TestPartitionTerminals pins the partition map's structural invariants
// for a spread of partition counts.
func TestPartitionTerminals(t *testing.T) {
	f := New(Config{Seed: 9, Terminals: 500, Horizon: time.Second, Epoch: time.Second})
	for _, parts := range []int{1, 2, 3, 7, 16, 255} {
		pm := f.PartitionTerminals(parts)
		if pm.Parts < 1 || pm.Parts > parts {
			t.Fatalf("parts=%d: got %d partitions", parts, pm.Parts)
		}
		if len(pm.TermStart) != pm.Parts+1 {
			t.Fatalf("parts=%d: CSR length %d for %d partitions", parts, len(pm.TermStart), pm.Parts)
		}
		if pm.TermStart[0] != 0 || int(pm.TermStart[pm.Parts]) != f.Terminals() {
			t.Fatalf("parts=%d: CSR does not span the fleet: %v", parts, pm.TermStart)
		}
		for p := 0; p < pm.Parts; p++ {
			if pm.TermStart[p] >= pm.TermStart[p+1] {
				t.Fatalf("parts=%d: empty partition %d: %v", parts, p, pm.TermStart)
			}
		}
		// Cells must never split: every terminal's cell maps back to the
		// partition owning the terminal.
		for i := 0; i < f.Terminals(); i++ {
			if got, want := int(pm.CellPart[f.cell[i]]), pm.PartitionOf(i); got != want {
				t.Fatalf("parts=%d: terminal %d in cell %d: cell says partition %d, CSR says %d",
					parts, i, f.cell[i], got, want)
			}
		}
	}
}
