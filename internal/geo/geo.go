// Package geo provides the geodesy needed by the satellite simulator:
// conversions between geodetic coordinates and Earth-centered Cartesian
// frames, great-circle distances, slant ranges, elevation angles and
// speed-of-light propagation delays.
//
// A spherical Earth (IUGG mean radius) is used throughout. The paper's
// observables are latencies at millisecond granularity; the sub-0.2 %
// radial error of the spherical model is three orders of magnitude below
// that, and a spherical model keeps orbit propagation closed-form.
package geo

import (
	"fmt"
	"math"
	"time"
)

const (
	// EarthRadiusKm is the IUGG mean Earth radius.
	EarthRadiusKm = 6371.0088
	// EarthMuKm3S2 is the standard gravitational parameter of Earth
	// (km^3/s^2), used for circular orbital periods.
	EarthMuKm3S2 = 398600.4418
	// SpeedOfLightKmS is the vacuum speed of light in km/s. Radio links
	// (satellite legs) propagate at c.
	SpeedOfLightKmS = 299792.458
	// FiberSpeedKmS is the effective propagation speed in optical fiber
	// (~2/3 c), used for terrestrial legs.
	FiberSpeedKmS = 199861.639
	// EarthRotationRadS is the sidereal rotation rate of Earth (rad/s).
	EarthRotationRadS = 7.2921159e-5
)

// LatLon is a geodetic position: degrees latitude (+N), degrees longitude
// (+E) and altitude above the mean sphere in kilometers.
type LatLon struct {
	LatDeg, LonDeg float64
	AltKm          float64
}

// String implements fmt.Stringer.
func (p LatLon) String() string {
	return fmt.Sprintf("(%.4f°, %.4f°, %.1fkm)", p.LatDeg, p.LonDeg, p.AltKm)
}

// ECEF is an Earth-centered, Earth-fixed Cartesian position in kilometers.
// +X pierces the equator at the prime meridian, +Z the north pole.
type ECEF struct {
	X, Y, Z float64
}

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// ToECEF converts a geodetic position to ECEF coordinates.
func (p LatLon) ToECEF() ECEF {
	r := EarthRadiusKm + p.AltKm
	lat := Radians(p.LatDeg)
	lon := Radians(p.LonDeg)
	clat := math.Cos(lat)
	return ECEF{
		X: r * clat * math.Cos(lon),
		Y: r * clat * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}

// ToLatLon converts an ECEF position back to geodetic coordinates.
func (e ECEF) ToLatLon() LatLon {
	r := e.Norm()
	if r == 0 {
		return LatLon{}
	}
	return LatLon{
		LatDeg: Degrees(math.Asin(e.Z / r)),
		LonDeg: Degrees(math.Atan2(e.Y, e.X)),
		AltKm:  r - EarthRadiusKm,
	}
}

// Norm returns the Euclidean norm |e| in kilometers.
func (e ECEF) Norm() float64 {
	return math.Sqrt(e.X*e.X + e.Y*e.Y + e.Z*e.Z)
}

// Sub returns e - o.
func (e ECEF) Sub(o ECEF) ECEF { return ECEF{e.X - o.X, e.Y - o.Y, e.Z - o.Z} }

// Dot returns the dot product e·o.
func (e ECEF) Dot(o ECEF) float64 { return e.X*o.X + e.Y*o.Y + e.Z*o.Z }

// Distance returns the straight-line (slant) distance between two ECEF
// points in kilometers.
func (e ECEF) Distance(o ECEF) float64 { return e.Sub(o).Norm() }

// GreatCircleKm returns the great-circle surface distance between two
// geodetic points in kilometers (altitudes ignored).
func GreatCircleKm(a, b LatLon) float64 {
	la, lb := Radians(a.LatDeg), Radians(b.LatDeg)
	dlon := Radians(b.LonDeg - a.LonDeg)
	dlat := lb - la
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(la)*math.Cos(lb)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// SlantRangeKm returns the straight-line distance between two geodetic
// points (altitudes included) in kilometers.
func SlantRangeKm(a, b LatLon) float64 {
	return a.ToECEF().Distance(b.ToECEF())
}

// ElevationDeg returns the elevation angle, in degrees, of target as seen
// from observer: 90° is the zenith, 0° the local horizon, negative values
// below the horizon.
func ElevationDeg(observer, target LatLon) float64 {
	return ElevationDegECEF(observer.ToECEF(), target.ToECEF())
}

// ElevationDegECEF is ElevationDeg on ECEF endpoints. Hot loops that
// already hold Cartesian positions (satellite propagation is ECEF-native)
// use this to avoid round-tripping through LatLon, which costs an
// asin/atan2 plus two full geodetic-to-Cartesian conversions per call.
func ElevationDegECEF(observer, target ECEF) float64 {
	return Degrees(math.Asin(SinElevationECEF(observer, target)))
}

// SinElevationECEF returns sin(elevation) of target seen from observer,
// clamped to [-1, 1]. Elevation is monotone in its sine over [-90°, 90°],
// so visibility-mask checks and highest-elevation argmax scans can compare
// sines directly and skip the asin entirely; precompute the mask side once
// with math.Sin(Radians(maskDeg)).
func SinElevationECEF(observer, target ECEF) float64 {
	d := target.Sub(observer)
	dn := d.Norm()
	on := observer.Norm()
	if dn == 0 || on == 0 {
		return 1 // zenith, matching ElevationDeg's degenerate case
	}
	// sin(elev) = (d · ô) / |d|
	sinEl := d.Dot(observer) / (dn * on)
	return math.Max(-1, math.Min(1, sinEl))
}

// CentralAngleRad returns the Earth-central angle between two position
// vectors, in radians. For two surface points this is the great-circle
// distance divided by the radius; the fleet cell index uses it to reason
// about coverage caps (a satellite serves an observer iff the central
// angle between them is at most CoverageCentralAngleRad). Degenerate
// zero-length inputs yield 0.
func CentralAngleRad(a, b ECEF) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := a.Dot(b) / (na * nb)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Visible reports whether target is at or above minElevationDeg as seen
// from observer.
func Visible(observer, target LatLon, minElevationDeg float64) bool {
	return ElevationDeg(observer, target) >= minElevationDeg
}

// RadioDelay returns the one-way propagation delay of a radio (free-space)
// link of the given length.
func RadioDelay(km float64) time.Duration {
	return time.Duration(km / SpeedOfLightKmS * float64(time.Second))
}

// FiberDelay returns the one-way propagation delay of a fiber link of the
// given length.
func FiberDelay(km float64) time.Duration {
	return time.Duration(km / FiberSpeedKmS * float64(time.Second))
}

// FiberRouteDelay estimates the one-way terrestrial delay between two
// points: fiber never follows the great circle, so a path-stretch factor
// (typically 1.5–2.5 for continental routes) is applied to the
// great-circle distance before converting at fiber speed.
func FiberRouteDelay(a, b LatLon, stretch float64) time.Duration {
	if stretch < 1 {
		stretch = 1
	}
	return FiberDelay(GreatCircleKm(a, b) * stretch)
}

// OrbitalPeriod returns the period of a circular orbit at the given
// altitude above the mean sphere.
func OrbitalPeriod(altKm float64) time.Duration {
	a := EarthRadiusKm + altKm // semi-major axis
	sec := 2 * math.Pi * math.Sqrt(a*a*a/EarthMuKm3S2)
	return time.Duration(sec * float64(time.Second))
}

// CoverageRadiusKm returns the radius, along the Earth surface, of the
// footprint inside which a satellite at altKm is seen above
// minElevationDeg. Standard spherical-triangle result.
func CoverageRadiusKm(altKm, minElevationDeg float64) float64 {
	return EarthRadiusKm * CoverageCentralAngleRad(EarthRadiusKm, EarthRadiusKm+altKm, minElevationDeg)
}

// CoverageCentralAngleRad returns the maximum Earth-central angle between
// an observer at geocentric radius obsRadiusKm and a satellite at
// geocentric radius satRadiusKm for the satellite to sit at or above
// minElevationDeg. This is the exact visibility bound candidate pruning
// rests on: a satellite whose subsatellite point lies further than this
// angle from the observer cannot clear the mask. Returns Pi (no bound)
// when the geometry degenerates (satellite at or below the observer
// shell, or a mask of -90° and below).
func CoverageCentralAngleRad(obsRadiusKm, satRadiusKm, minElevationDeg float64) float64 {
	if satRadiusKm <= obsRadiusKm {
		return math.Pi
	}
	el := Radians(minElevationDeg)
	cosArg := obsRadiusKm * math.Cos(el) / satRadiusKm
	if cosArg > 1 {
		cosArg = 1
	}
	if cosArg < -1 {
		return math.Pi
	}
	lambda := math.Acos(cosArg) - el
	if lambda < 0 {
		return 0
	}
	return lambda
}
