package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestECEFRoundTrip(t *testing.T) {
	f := func(latQ, lonQ int16, altQ uint8) bool {
		p := LatLon{
			LatDeg: float64(latQ) / 400,  // ~[-81, 81]
			LonDeg: float64(lonQ) / 200,  // ~[-163, 163]
			AltKm:  float64(altQ) * 10.0, // [0, 2550]
		}
		q := p.ToECEF().ToLatLon()
		return math.Abs(q.LatDeg-p.LatDeg) < 1e-9 &&
			math.Abs(q.LonDeg-p.LonDeg) < 1e-9 &&
			math.Abs(q.AltKm-p.AltKm) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECEFKnownPoints(t *testing.T) {
	// Equator / prime meridian should sit on +X.
	e := (LatLon{0, 0, 0}).ToECEF()
	approx(t, e.X, EarthRadiusKm, 1e-6, "equator X")
	approx(t, e.Y, 0, 1e-6, "equator Y")
	approx(t, e.Z, 0, 1e-6, "equator Z")
	// North pole on +Z.
	n := (LatLon{90, 0, 0}).ToECEF()
	approx(t, n.Z, EarthRadiusKm, 1e-6, "pole Z")
	approx(t, math.Hypot(n.X, n.Y), 0, 1e-6, "pole XY")
}

func TestGreatCircleKnownDistances(t *testing.T) {
	brussels := LatLon{50.85, 4.35, 0}
	newYork := LatLon{40.71, -74.01, 0}
	singapore := LatLon{1.35, 103.82, 0}
	// Published great-circle distances: BRU-NYC ~5 890 km, BRU-SIN ~10 540 km.
	approx(t, GreatCircleKm(brussels, newYork), 5890, 80, "BRU-NYC")
	approx(t, GreatCircleKm(brussels, singapore), 10540, 120, "BRU-SIN")
	// Symmetry and identity.
	approx(t, GreatCircleKm(newYork, brussels), GreatCircleKm(brussels, newYork), 1e-9, "symmetry")
	approx(t, GreatCircleKm(brussels, brussels), 0, 1e-9, "identity")
}

func TestGreatCircleAntipodal(t *testing.T) {
	a := LatLon{0, 0, 0}
	b := LatLon{0, 180, 0}
	approx(t, GreatCircleKm(a, b), math.Pi*EarthRadiusKm, 1, "antipodal")
}

func TestSlantRangeZenith(t *testing.T) {
	ground := LatLon{50, 4, 0}
	sat := LatLon{50, 4, 550}
	approx(t, SlantRangeKm(ground, sat), 550, 1e-6, "zenith slant range")
}

func TestElevationZenithAndHorizon(t *testing.T) {
	ground := LatLon{50, 4, 0}
	overhead := LatLon{50, 4, 550}
	approx(t, ElevationDeg(ground, overhead), 90, 1e-6, "zenith elevation")

	// A satellite far around the curve of the Earth is below the horizon.
	far := LatLon{50, 120, 550}
	if el := ElevationDeg(ground, far); el > 0 {
		t.Errorf("far satellite elevation = %v, want below horizon", el)
	}
}

func TestElevationDecreasesWithGroundDistance(t *testing.T) {
	ground := LatLon{0, 0, 0}
	prev := 91.0
	for lon := 0.0; lon < 25; lon += 2.5 {
		el := ElevationDeg(ground, LatLon{0, lon, 550})
		if el >= prev {
			t.Fatalf("elevation not monotonically decreasing at lon=%v: %v >= %v", lon, el, prev)
		}
		prev = el
	}
}

func TestVisible(t *testing.T) {
	ground := LatLon{50, 4, 0}
	if !Visible(ground, LatLon{50, 4, 550}, 25) {
		t.Error("overhead satellite should be visible above 25°")
	}
	if Visible(ground, LatLon{50, 60, 550}, 25) {
		t.Error("satellite 56° of longitude away should not clear a 25° mask")
	}
}

func TestPropagationDelays(t *testing.T) {
	// Light crosses ~300 km in ~1 ms.
	approx(t, RadioDelay(299.792458).Seconds()*1000, 1.0, 1e-9, "radio 1ms")
	// GEO one-way ~119.4 ms at 35 786 km.
	geoDelay := RadioDelay(35786)
	if geoDelay < 119*time.Millisecond || geoDelay > 120*time.Millisecond {
		t.Errorf("GEO one-way = %v, want ~119.4ms", geoDelay)
	}
	// Fiber is slower than radio for the same distance.
	if FiberDelay(1000) <= RadioDelay(1000) {
		t.Error("fiber should be slower than radio")
	}
}

func TestFiberRouteDelayStretch(t *testing.T) {
	a := LatLon{50.85, 4.35, 0}
	b := LatLon{52.37, 4.90, 0}
	d1 := FiberRouteDelay(a, b, 1.0)
	d2 := FiberRouteDelay(a, b, 2.0)
	if math.Abs(float64(d2)-2*float64(d1)) > float64(time.Microsecond) {
		t.Errorf("stretch 2 should double delay: %v vs %v", d1, d2)
	}
	// Stretch below 1 clamps to 1.
	if FiberRouteDelay(a, b, 0.5) != d1 {
		t.Error("stretch < 1 should clamp to 1")
	}
}

func TestOrbitalPeriodLEO(t *testing.T) {
	// ~95.6 minutes at 550 km (well-known Starlink figure).
	p := OrbitalPeriod(550)
	if p < 95*time.Minute || p > 97*time.Minute {
		t.Errorf("period at 550km = %v, want ~95.6min", p)
	}
	// GEO: ~23.93 h at 35 786 km.
	g := OrbitalPeriod(35786)
	if g < 23*time.Hour+50*time.Minute || g > 24*time.Hour {
		t.Errorf("period at GEO = %v, want ~23.93h", g)
	}
}

func TestCoverageRadius(t *testing.T) {
	// At 550 km with a 25° mask the footprint radius is ~940 km.
	r := CoverageRadiusKm(550, 25)
	approx(t, r, 940, 50, "coverage radius 550km/25°")
	// Lower masks see farther.
	if CoverageRadiusKm(550, 40) >= r {
		t.Error("higher elevation mask should shrink the footprint")
	}
}

func TestSlantRangeVsGreatCircle(t *testing.T) {
	// Chord is always <= arc for surface points.
	f := func(latQ, lonQ int16) bool {
		a := LatLon{float64(latQ) / 400, float64(lonQ) / 200, 0}
		b := LatLon{20, 30, 0}
		return SlantRangeKm(a, b) <= GreatCircleKm(a, b)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestElevationECEFMatchesLatLon is the property the fast path depends
// on: for any observer/target pair, ElevationDegECEF on the converted
// endpoints agrees with the historical LatLon formulation to 1e-9°.
func TestElevationECEFMatchesLatLon(t *testing.T) {
	f := func(laQ, loQ, lbQ, lcQ int16, altQ uint8) bool {
		obs := LatLon{float64(laQ) / 400, float64(loQ) / 200, 0}
		sat := LatLon{float64(lbQ) / 400, float64(lcQ) / 200, 300 + float64(altQ)*10}
		viaLatLon := ElevationDeg(obs, sat)
		viaECEF := ElevationDegECEF(obs.ToECEF(), sat.ToECEF())
		return math.Abs(viaLatLon-viaECEF) <= 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSinElevationConsistent: sin(ElevationDegECEF) == SinElevationECEF,
// so mask checks done in sine space decide exactly as degree checks.
func TestSinElevationConsistent(t *testing.T) {
	f := func(laQ, loQ, lbQ, lcQ int16) bool {
		obs := LatLon{float64(laQ) / 400, float64(loQ) / 200, 0}.ToECEF()
		sat := LatLon{float64(lbQ) / 400, float64(lcQ) / 200, 550}.ToECEF()
		s := SinElevationECEF(obs, sat)
		if s < -1 || s > 1 {
			return false
		}
		return math.Abs(math.Sin(Radians(ElevationDegECEF(obs, sat)))-s) <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Degenerate inputs report zenith, as ElevationDeg always has.
	if s := SinElevationECEF(ECEF{}, ECEF{1, 0, 0}); s != 1 {
		t.Errorf("zero observer: sin = %v, want 1", s)
	}
	if s := SinElevationECEF(ECEF{1, 0, 0}, ECEF{1, 0, 0}); s != 1 {
		t.Errorf("coincident points: sin = %v, want 1", s)
	}
}

// TestCoverageCentralAngleBound checks the pruning bound is exact: a
// target placed on the Earth-central angle returned for a mask sits at
// that elevation, inside it sits above, outside below.
func TestCoverageCentralAngleBound(t *testing.T) {
	const altKm = 550.0
	satR := EarthRadiusKm + altKm
	obs := LatLon{0, 0, 0}
	for _, maskDeg := range []float64{0, 10, 25, 40, 60} {
		lam := CoverageCentralAngleRad(EarthRadiusKm, satR, maskDeg)
		atBound := LatLon{0, Degrees(lam), altKm}
		approx(t, ElevationDeg(obs, atBound), maskDeg, 1e-6, "elevation at coverage bound")
		inside := LatLon{0, Degrees(lam * 0.9), altKm}
		if ElevationDeg(obs, inside) <= maskDeg {
			t.Errorf("mask %v°: target inside the bound not above the mask", maskDeg)
		}
		outside := LatLon{0, Degrees(lam * 1.1), altKm}
		if ElevationDeg(obs, outside) >= maskDeg {
			t.Errorf("mask %v°: target outside the bound not below the mask", maskDeg)
		}
	}
	// CoverageRadiusKm is the same bound scaled to surface kilometers.
	approx(t, CoverageRadiusKm(altKm, 25),
		EarthRadiusKm*CoverageCentralAngleRad(EarthRadiusKm, satR, 25), 1e-9, "radius/angle consistency")
	// Degenerate geometries disable pruning rather than inventing a bound.
	if got := CoverageCentralAngleRad(EarthRadiusKm, EarthRadiusKm, 25); got != math.Pi {
		t.Errorf("satellite at observer shell: %v, want Pi", got)
	}
	if got := CoverageCentralAngleRad(EarthRadiusKm, satR, 90); got != 0 {
		t.Errorf("90° mask: %v, want 0 (zenith only)", got)
	}
}

func TestRadiansDegreesRoundTrip(t *testing.T) {
	f := func(x int32) bool {
		v := float64(x) / 1e4
		return math.Abs(Degrees(Radians(v))-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// CentralAngleRad must agree with the great-circle distance for surface
// points, be invariant to radial scaling, and clamp degenerate inputs.
func TestCentralAngleRad(t *testing.T) {
	pts := []LatLon{
		{0, 0, 0}, {50.67, 4.61, 0}, {-33.87, 151.21, 0},
		{89.9, 0, 0}, {-89.9, 180, 0}, {0, 179.99, 0}, {0, -179.99, 0},
	}
	for _, a := range pts {
		for _, b := range pts {
			ang := CentralAngleRad(a.ToECEF(), b.ToECEF())
			// Sub-meter agreement; both formulas lose precision near
			// antipodal pairs, where acos/asin arguments approach ±1.
			approx(t, ang*EarthRadiusKm, GreatCircleKm(a, b), 1e-3, "angle vs great circle")
		}
	}
	// Radial scaling (altitude) must not change the central angle.
	ground := LatLon{20, 30, 0}
	sat := LatLon{25, 40, 550}
	approx(t, CentralAngleRad(ground.ToECEF(), sat.ToECEF()),
		CentralAngleRad(ground.ToECEF(), LatLon{25, 40, 0}.ToECEF()), 1e-12, "altitude invariance")
	// Identical vectors: rounding in the dot product must clamp to 0, and a
	// zero vector degenerates to 0 rather than NaN.
	p := LatLon{37.77, -122.42, 0}.ToECEF()
	approx(t, CentralAngleRad(p, p), 0, 1e-9, "self angle")
	if got := CentralAngleRad(ECEF{}, p); got != 0 {
		t.Errorf("zero-vector angle = %v, want 0", got)
	}
	// Antipodal points: exactly Pi.
	approx(t, CentralAngleRad(LatLon{0, 0, 0}.ToECEF(), LatLon{0, 180, 0}.ToECEF()),
		math.Pi, 1e-9, "antipodal angle")
}
