package leo

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// The naive/fast benchmark pair quantifies the geometry fast path; both
// are kept in-tree so the speedup in DESIGN.md stays reproducible. Each
// iteration computes one fresh epoch assignment (the epoch varies per
// iteration, so neither the assignment memo nor the snapshot ring can
// short-circuit the work being measured).

func benchTerminal() *Terminal {
	return NewTerminal(DefaultTerminalConfig(louvain),
		NewConstellation(NewShell(StarlinkGen1())), testGateways())
}

func BenchmarkAssignmentEpoch(b *testing.B) {
	term := benchTerminal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(int64(i) * int64(15*time.Second))
		if a := term.computeAssignment(at); !a.OK {
			b.Fatal("no assignment on a full shell")
		}
	}
}

func BenchmarkAssignmentEpochNaive(b *testing.B) {
	term := benchTerminal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(int64(i) * int64(15*time.Second))
		if a := term.computeAssignmentReference(at); !a.OK {
			b.Fatal("no assignment on a full shell")
		}
	}
}

func BenchmarkDelayAt(b *testing.B) {
	term := benchTerminal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Sweep time so the quantum ring and assignment memo behave as in
		// a campaign: mostly hits, a miss per new quantum/epoch.
		at := sim.Time(int64(i) * int64(10*time.Millisecond))
		term.DelayAt(at)
	}
}

func BenchmarkISLPathDelay(b *testing.B) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	router := NewISLRouter(con, 0)
	singapore := geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(int64(i) * int64(time.Minute))
		if _, _, ok := router.PathDelay(at, louvain, singapore, 25); !ok {
			b.Fatal("no ISL path on a full shell")
		}
	}
}
