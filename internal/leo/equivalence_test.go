package leo

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// The geometry fast path (ECEF-native elevation, per-plane candidate
// pruning, shared snapshots, the delay ring) must be a pure optimization:
// assignments and delays have to come out bit-identical to the naive
// full scan the seed shipped, which is kept in-tree as
// ReferenceAssignmentAt / computeAssignmentReference.

// referenceDelayAt recomputes DelayAt the way the pre-fast-path code did,
// from a reference assignment and per-call ToECEF conversions.
func referenceDelayAt(t *Terminal, a Assignment, at sim.Time) (time.Duration, bool) {
	if !a.OK {
		return -1, false
	}
	satPos := t.con.Position(a.Sat, at)
	up := t.cfg.Pos.ToECEF().Distance(satPos)
	down := satPos.Distance(t.gateways[a.Gateway].Pos.ToECEF())
	return geo.RadioDelay(up + down), true
}

// checkEquivalence drives one observer for the given horizon, comparing
// the fast path against the naive reference every strideEpochs-th epoch.
func checkEquivalence(t *testing.T, pos geo.LatLon, gws []Gateway, horizon time.Duration, strideEpochs int64) (okEpochs, gapEpochs int) {
	t.Helper()
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(pos), con, gws)
	epoch := int64(term.cfg.Epoch)
	last := int64(horizon) / epoch
	for ep := int64(0); ep <= last; ep += strideEpochs {
		at := sim.Time(ep * epoch)
		fast := term.AssignmentAt(at)
		ref := term.ReferenceAssignmentAt(at)
		if fast != ref {
			t.Fatalf("epoch %d (%v): fast %+v != reference %+v", ep, at, fast, ref)
		}
		if fast.OK {
			okEpochs++
		} else {
			gapEpochs++
		}
		// Delays inside the epoch, off the epoch boundary, through the
		// ring cache.
		for _, off := range []time.Duration{0, 3 * time.Second, 7300 * time.Millisecond} {
			probe := at + sim.Time(off)
			gotD, gotOK := term.DelayAt(probe)
			wantD, wantOK := referenceDelayAt(term, ref, probe)
			if gotOK != wantOK || (gotOK && gotD != wantD) {
				t.Fatalf("epoch %d +%v: DelayAt = (%v,%v), reference (%v,%v)",
					ep, off, gotD, gotOK, wantD, wantOK)
			}
		}
	}
	return okEpochs, gapEpochs
}

// TestFastPathMatchesReference48h is the headline equivalence proof: 48
// simulated hours at three observer latitudes (equatorial, the paper's
// mid-latitude vantage, and the coverage edge near
// inclination + footprint radius), bit-identical Assignment and DelayAt
// at every checked epoch. The mid-latitude observer — the configuration
// every campaign runs — is checked at every single epoch; the other two
// use a small epoch stride to keep the naive reference scan, which
// dominates this test's runtime, affordable while still spanning the
// full horizon.
func TestFastPathMatchesReference48h(t *testing.T) {
	cases := []struct {
		name   string
		pos    geo.LatLon
		gws    []Gateway // assignment needs a satellite that also sees a gateway
		stride int64
		// wantCoverage: coverage expected at every checked epoch.
		wantCoverage bool
	}{
		{"mid-latitude-louvain", geo.LatLon{LatDeg: 50.67, LonDeg: 4.61},
			testGateways(), 1, true},
		{"equatorial-singapore", geo.LatLon{LatDeg: 1.35, LonDeg: 103.82},
			[]Gateway{{Name: "sg-gw", Pos: geo.LatLon{LatDeg: 1.3, LonDeg: 103.6}, PoP: "SIN"}}, 7, true},
		{"coverage-edge-61.1N", geo.LatLon{LatDeg: 61.1, LonDeg: 10},
			[]Gateway{{Name: "osl-gw", Pos: geo.LatLon{LatDeg: 59.9, LonDeg: 10.7}, PoP: "OSL"}}, 7, false},
	}
	horizon := 48 * time.Hour
	if testing.Short() {
		horizon = 4 * time.Hour
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			okEpochs, gapEpochs := checkEquivalence(t, tc.pos, tc.gws, horizon, tc.stride)
			if okEpochs == 0 {
				t.Error("no served epochs at all; equivalence check is vacuous")
			}
			if tc.wantCoverage && gapEpochs > 0 {
				t.Errorf("%d coverage gaps on a full shell at %v", gapEpochs, tc.pos)
			}
			if !tc.wantCoverage && gapEpochs == 0 {
				t.Error("expected some gaps at the coverage edge; observer placed wrong?")
			}
		})
	}
}

// TestFastPathMatchesReferencePartialShell exercises the fallback-heavy
// regime: a sparse shell has real coverage gaps, so the pruned scan
// frequently comes up empty and the full-scan fallback must still agree
// with the reference.
func TestFastPathMatchesReferencePartialShell(t *testing.T) {
	con := NewConstellation(NewPartialShell(StarlinkGen1(), 0.3))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	gaps := 0
	for ep := int64(0); ep < 400; ep++ {
		at := sim.Time(ep * int64(15*time.Second))
		fast := term.AssignmentAt(at)
		ref := term.ReferenceAssignmentAt(at)
		if fast != ref {
			t.Fatalf("epoch %d: fast %+v != reference %+v", ep, fast, ref)
		}
		if !fast.OK {
			gaps++
		}
	}
	if gaps == 0 {
		t.Error("30% shell shows no gaps; fallback path not exercised")
	}
}

// TestNoCoverageAboveInclinationPlusFootprint: at latitude 75° the Gen1
// shell (53° inclination, ~8.5° footprint radius at a 25° mask) can never
// serve; the pruned path must agree with the reference that every epoch
// is a gap — and must prune every plane rather than finding phantom
// candidates.
func TestNoCoverageAboveInclinationPlusFootprint(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	pos := geo.LatLon{LatDeg: 75, LonDeg: 10}
	term := NewTerminal(DefaultTerminalConfig(pos), con, testGateways())
	for ep := int64(0); ep < 500; ep++ {
		at := sim.Time(ep * int64(15*time.Second))
		if a := term.AssignmentAt(at); a.OK {
			t.Fatalf("epoch %d: serving satellite %+v above latitude 75°", ep, a)
		}
		if a := term.ReferenceAssignmentAt(at); a.OK {
			t.Fatalf("epoch %d: reference found %+v — test premise wrong", ep, a)
		}
	}
}

// TestPruningAtInclinationLatitude puts the observer right at the 53°
// inclination latitude, where planes graze the visibility cone and the
// argument-of-latitude windows are at their most asymmetric. Assignments
// must still match the reference exactly.
func TestPruningAtInclinationLatitude(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	pos := geo.LatLon{LatDeg: 53, LonDeg: -3}
	term := NewTerminal(DefaultTerminalConfig(pos), con, testGateways())
	served := 0
	for ep := int64(0); ep < 1000; ep++ {
		at := sim.Time(ep * int64(15*time.Second))
		fast := term.AssignmentAt(at)
		ref := term.ReferenceAssignmentAt(at)
		if fast != ref {
			t.Fatalf("epoch %d: fast %+v != reference %+v", ep, fast, ref)
		}
		if fast.OK {
			served++
		}
	}
	if served == 0 {
		t.Error("no served epochs at the inclination latitude")
	}
}

// TestSnapshotSharing pins the snapshot cache contract: same instant →
// same snapshot object, positions bit-identical to Position, small ring
// evicts oldest, and peeking never computes.
func TestSnapshotSharing(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	at := sim.Time(42 * time.Second)
	if con.peekSnapshot(at) != nil {
		t.Fatal("peek computed a snapshot")
	}
	s1 := con.SnapshotAt(at)
	if s2 := con.SnapshotAt(at); s2 != s1 {
		t.Error("second SnapshotAt did not reuse the cached snapshot")
	}
	if con.peekSnapshot(at) != s1 {
		t.Error("peek missed the cached snapshot")
	}
	id := SatID{Shell: 0, Plane: 7, Index: 13}
	if got, want := s1.Position(id), con.Position(id, at); got != want {
		t.Errorf("snapshot position %v != Position %v", got, want)
	}
	// Fill the ring with other instants; the original must age out.
	for i := 0; i < snapshotRing; i++ {
		con.SnapshotAt(at + sim.Time(i+1)*sim.Time(time.Second))
	}
	if con.peekSnapshot(at) != nil {
		t.Error("snapshot survived a full ring of evictions")
	}
}

// TestDelayRingInterleavedFlows replays the access pattern that thrashed
// the old single-entry cache — multiple flows probing alternating time
// quanta — and checks every cached answer against an uncached naive
// recomputation.
func TestDelayRingInterleavedFlows(t *testing.T) {
	term := NewTerminal(DefaultTerminalConfig(louvain),
		NewConstellation(NewShell(StarlinkGen1())), testGateways())
	quanta := []sim.Time{0, sim.Time(250 * time.Millisecond), sim.Time(510 * time.Millisecond)}
	for round := 0; round < 40; round++ {
		for _, q := range quanta {
			at := q + sim.Time(round)*sim.Time(time.Microsecond)
			d, ok := term.DelayAt(at)
			wantD, wantOK := referenceDelayAt(term, term.ReferenceAssignmentAt(at), at)
			if d != wantD || ok != wantOK {
				t.Fatalf("round %d at %v: DelayAt (%v,%v) != reference (%v,%v)",
					round, at, d, ok, wantD, wantOK)
			}
		}
	}
}
