package leo

import (
	"math"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// ISLRouter computes shortest propagation paths through a constellation
// using +Grid inter-satellite links: each satellite links to its two
// in-plane neighbours and to the same-index satellite in the two adjacent
// planes. The paper found ISLs *not* enabled during its campaign (bent
// pipe, European exits even for Singapore); this router powers the
// ablation bench showing what ISL activation would change.
type ISLRouter struct {
	con      *Constellation
	shell    *Shell
	shellIdx int

	// Scratch reused across PathDelay calls (the router, like the rest
	// of the simulation objects, is single-threaded per shard).
	dist    []float64
	hops    []int
	exitUp  []float64 // -1 marks "not an exit"
	entries []islEntry
	q       pq

	// memo is the per-router route cache: PathDelay is ~330 µs of
	// visibility scan + Dijkstra, and epoch-aligned callers ask for the
	// same (instant, endpoints, mask) route many times per snapshot. The
	// ring mirrors the position-snapshot ring's shape (8 entries, FIFO
	// replacement); entries are keyed on the full argument tuple plus the
	// shell's membership generation, so a cached route can never outlive
	// either the snapshot instant that produced it or a fleet-growth
	// membership change.
	memo     [islMemoSize]islMemoEntry
	memoNext int
}

// islMemoSize matches the constellation's snapshot ring: one route per
// live instant is the reuse pattern, and a stale entry dies by FIFO
// replacement within one ring turn.
const islMemoSize = 8

// islMemoEntry caches one PathDelay result under its complete key.
type islMemoEntry struct {
	valid    bool
	at       sim.Time
	src, dst geo.LatLon
	mask     float64
	gen      uint64

	d       time.Duration
	islHops int
	ok      bool
}

// islEntry is an uplink candidate: a satellite visible from the source.
type islEntry struct {
	node satNode
	up   float64
}

// NewISLRouter builds a router over a single shell of a constellation.
func NewISLRouter(con *Constellation, shellIdx int) *ISLRouter {
	return &ISLRouter{con: con, shell: con.Shells()[shellIdx], shellIdx: shellIdx}
}

type satNode struct {
	plane, idx int
}

type pqItem struct {
	node satNode
	dist float64 // km
}

// pq is a typed binary min-heap on dist. container/heap would box every
// pqItem through its `any` interface — thousands of heap allocations per
// PathDelay — so the two sift operations are hand-rolled.
type pq []pqItem

func (p *pq) push(it pqItem) {
	h := append(*p, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*p = h
}

func (p *pq) pop() pqItem {
	h := *p
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h[l].dist < h[small].dist {
			small = l
		}
		if r := 2*i + 2; r < n && h[r].dist < h[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*p = h
	return top
}

// PathDelay returns the one-way propagation delay from src to dst ground
// positions at instant at, going up to the best visible satellite at each
// end and across the +Grid ISL mesh, plus the number of ISL hops used.
// ok=false when either endpoint has no visible satellite.
//
// Results are memoized per (instant, endpoints, mask, shell membership)
// in an 8-entry ring: positions are a pure function of (shell geometry,
// at), so the tuple fully determines the route, and repeated queries
// within a position-snapshot epoch cost a ring probe instead of a fresh
// Dijkstra. ReferencePathDelay bypasses the memo; the equivalence test in
// isl_memo_test.go holds the two bit-identical.
func (r *ISLRouter) PathDelay(at sim.Time, src, dst geo.LatLon, minElevationDeg float64) (d time.Duration, islHops int, ok bool) {
	gen := r.shell.Gen()
	for i := range r.memo {
		e := &r.memo[i]
		if e.valid && e.at == at && e.src == src && e.dst == dst &&
			e.mask == minElevationDeg && e.gen == gen {
			return e.d, e.islHops, e.ok
		}
	}
	d, islHops, ok = r.ReferencePathDelay(at, src, dst, minElevationDeg)
	r.memo[r.memoNext] = islMemoEntry{
		valid: true, at: at, src: src, dst: dst, mask: minElevationDeg,
		gen: gen, d: d, islHops: islHops, ok: ok,
	}
	r.memoNext = (r.memoNext + 1) % islMemoSize
	return d, islHops, ok
}

// ReferencePathDelay is the unmemoized route computation: the full
// visibility scan plus Dijkstra, kept as the correctness reference for
// the memo ring.
func (r *ISLRouter) ReferencePathDelay(at sim.Time, src, dst geo.LatLon, minElevationDeg float64) (d time.Duration, islHops int, ok bool) {
	cfg := r.shell.Config()
	planes, per := cfg.Planes, cfg.SatsPerPlane

	// Positions come from the constellation's shared snapshot, so a
	// terminal, another router or a repeated PathDelay at the same
	// instant reuses one propagation pass instead of recomputing 1,584
	// satellite positions per call.
	pos := r.con.SnapshotAt(at).shellPositions(r.shellIdx)
	idxOf := func(n satNode) int { return n.plane*per + n.idx }

	// Endpoint geometry once per call; per-candidate visibility is the
	// ECEF-native sine comparison (no LatLon round trip, no asin).
	srcECEF, dstECEF := src.ToECEF(), dst.ToECEF()
	srcNorm, dstNorm := srcECEF.Norm(), dstECEF.Norm()
	sinMask := math.Sin(geo.Radians(minElevationDeg))

	// Entry candidates: satellites visible from src; exit: visible from dst.
	n := planes * per
	if cap(r.dist) < n {
		r.dist = make([]float64, n)
		r.hops = make([]int, n)
		r.exitUp = make([]float64, n)
	}
	const inf = 1e18
	dist, hops, exitUp := r.dist[:n], r.hops[:n], r.exitUp[:n]
	for i := range dist {
		dist[i] = inf
		hops[i] = 0
		exitUp[i] = -1
	}
	entries := r.entries[:0]
	nExits := 0
	for p := 0; p < planes; p++ {
		for i := 0; i < per; i++ {
			if !r.shell.Enabled(p, i) {
				continue
			}
			sat := pos[p*per+i]
			if d := sat.Sub(srcECEF); d.Dot(srcECEF) >= sinMask*d.Norm()*srcNorm {
				entries = append(entries, islEntry{satNode{p, i}, d.Norm()})
			}
			if d := sat.Sub(dstECEF); d.Dot(dstECEF) >= sinMask*d.Norm()*dstNorm {
				exitUp[p*per+i] = d.Norm()
				nExits++
			}
		}
	}
	r.entries = entries
	if len(entries) == 0 || nExits == 0 {
		return 0, 0, false
	}

	// Dijkstra over satellites, seeded with the uplink distances.
	q := r.q[:0]
	for _, e := range entries {
		i := idxOf(e.node)
		if e.up < dist[i] {
			dist[i] = e.up
			q.push(pqItem{e.node, e.up})
		}
	}

	bestTotal := inf
	bestHops := 0
	for len(q) > 0 {
		it := q.pop()
		i := idxOf(it.node)
		if it.dist > dist[i] {
			continue
		}
		if down := exitUp[i]; down >= 0 {
			if total := it.dist + down; total < bestTotal {
				bestTotal = total
				bestHops = hops[i]
			}
		}
		nbs := [4]satNode{
			{it.node.plane, (it.node.idx + 1) % per},
			{it.node.plane, (it.node.idx - 1 + per) % per},
			{(it.node.plane + 1) % planes, it.node.idx},
			{(it.node.plane - 1 + planes) % planes, it.node.idx},
		}
		for _, nb := range nbs {
			if !r.shell.Enabled(nb.plane, nb.idx) {
				continue
			}
			j := idxOf(nb)
			nd := it.dist + pos[i].Distance(pos[j])
			if nd < dist[j] {
				dist[j] = nd
				hops[j] = hops[i] + 1
				q.push(pqItem{nb, nd})
			}
		}
	}
	r.q = q[:0]
	if bestTotal >= inf {
		return 0, 0, false
	}
	return geo.RadioDelay(bestTotal), bestHops, true
}
