package leo

import (
	"container/heap"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// ISLRouter computes shortest propagation paths through a constellation
// using +Grid inter-satellite links: each satellite links to its two
// in-plane neighbours and to the same-index satellite in the two adjacent
// planes. The paper found ISLs *not* enabled during its campaign (bent
// pipe, European exits even for Singapore); this router powers the
// ablation bench showing what ISL activation would change.
type ISLRouter struct {
	shell    *Shell
	shellIdx int
}

// NewISLRouter builds a router over a single shell of a constellation.
func NewISLRouter(con *Constellation, shellIdx int) *ISLRouter {
	return &ISLRouter{shell: con.Shells()[shellIdx], shellIdx: shellIdx}
}

type satNode struct {
	plane, idx int
}

type pqItem struct {
	node satNode
	dist float64 // km
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// PathDelay returns the one-way propagation delay from src to dst ground
// positions at instant at, going up to the best visible satellite at each
// end and across the +Grid ISL mesh, plus the number of ISL hops used.
// ok=false when either endpoint has no visible satellite.
func (r *ISLRouter) PathDelay(at sim.Time, src, dst geo.LatLon, minElevationDeg float64) (d time.Duration, islHops int, ok bool) {
	cfg := r.shell.Config()
	planes, per := cfg.Planes, cfg.SatsPerPlane

	pos := make([]geo.ECEF, planes*per)
	for p := 0; p < planes; p++ {
		for i := 0; i < per; i++ {
			pos[p*per+i] = r.shell.Position(p, i, at)
		}
	}
	idxOf := func(n satNode) int { return n.plane*per + n.idx }

	srcECEF, dstECEF := src.ToECEF(), dst.ToECEF()

	// Entry candidates: satellites visible from src; exit: visible from dst.
	type entry struct {
		node satNode
		up   float64
	}
	var entries []entry
	exitUp := make(map[satNode]float64)
	for p := 0; p < planes; p++ {
		for i := 0; i < per; i++ {
			if !r.shell.Enabled(p, i) {
				continue
			}
			ll := pos[p*per+i].ToLatLon()
			if geo.ElevationDeg(src, ll) >= minElevationDeg {
				entries = append(entries, entry{satNode{p, i}, srcECEF.Distance(pos[p*per+i])})
			}
			if geo.ElevationDeg(dst, ll) >= minElevationDeg {
				exitUp[satNode{p, i}] = dstECEF.Distance(pos[p*per+i])
			}
		}
	}
	if len(entries) == 0 || len(exitUp) == 0 {
		return 0, 0, false
	}

	// Dijkstra over satellites, seeded with the uplink distances.
	const inf = 1e18
	dist := make([]float64, planes*per)
	hops := make([]int, planes*per)
	for i := range dist {
		dist[i] = inf
	}
	var q pq
	for _, e := range entries {
		i := idxOf(e.node)
		if e.up < dist[i] {
			dist[i] = e.up
			heap.Push(&q, pqItem{e.node, e.up})
		}
	}

	neighbours := func(n satNode) []satNode {
		return []satNode{
			{n.plane, (n.idx + 1) % per},
			{n.plane, (n.idx - 1 + per) % per},
			{(n.plane + 1) % planes, n.idx},
			{(n.plane - 1 + planes) % planes, n.idx},
		}
	}

	bestTotal := inf
	bestHops := 0
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		i := idxOf(it.node)
		if it.dist > dist[i] {
			continue
		}
		if down, isExit := exitUp[it.node]; isExit {
			if total := it.dist + down; total < bestTotal {
				bestTotal = total
				bestHops = hops[i]
			}
		}
		for _, nb := range neighbours(it.node) {
			if !r.shell.Enabled(nb.plane, nb.idx) {
				continue
			}
			j := idxOf(nb)
			nd := it.dist + pos[i].Distance(pos[j])
			if nd < dist[j] {
				dist[j] = nd
				hops[j] = hops[i] + 1
				heap.Push(&q, pqItem{nb, nd})
			}
		}
	}
	if bestTotal >= inf {
		return 0, 0, false
	}
	return geo.RadioDelay(bestTotal), bestHops, true
}
