package leo

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// TestISLMemoEquivalence holds the memoized PathDelay bit-identical to
// ReferencePathDelay across distinct instants (more than the ring holds,
// so eviction paths run), repeated queries (memo hits), and interleaved
// endpoint pairs.
func TestISLMemoEquivalence(t *testing.T) {
	memoCon := NewConstellation(NewShell(StarlinkGen1()))
	refCon := NewConstellation(NewShell(StarlinkGen1()))
	memoR := NewISLRouter(memoCon, 0)
	refR := NewISLRouter(refCon, 0)

	pairs := []struct{ src, dst geo.LatLon }{
		{geo.LatLon{LatDeg: 51.5, LonDeg: -0.1}, geo.LatLon{LatDeg: 40.7, LonDeg: -74.0}},
		{geo.LatLon{LatDeg: 50.8, LonDeg: 4.4}, geo.LatLon{LatDeg: 1.35, LonDeg: 103.8}},
		{geo.LatLon{LatDeg: -33.9, LonDeg: 151.2}, geo.LatLon{LatDeg: 35.7, LonDeg: 139.7}},
	}
	check := func(at sim.Time, src, dst geo.LatLon, mask float64) {
		t.Helper()
		gd, gh, gok := memoR.PathDelay(at, src, dst, mask)
		wd, wh, wok := refR.ReferencePathDelay(at, src, dst, mask)
		if gd != wd || gh != wh || gok != wok {
			t.Fatalf("at=%v src=%v dst=%v mask=%v: memo (%v,%d,%v) != reference (%v,%d,%v)",
				at, src, dst, mask, gd, gh, gok, wd, wh, wok)
		}
	}

	// 20 distinct instants x 3 pairs: every query misses or evicts.
	for i := 0; i < 20; i++ {
		at := sim.Time(int64(i) * int64(15*time.Second))
		for _, p := range pairs {
			check(at, p.src, p.dst, 25)
		}
	}
	// Repeats of recent instants: memo hits must return the same values.
	for i := 19; i >= 17; i-- {
		at := sim.Time(int64(i) * int64(15*time.Second))
		for _, p := range pairs {
			check(at, p.src, p.dst, 25)
			check(at, p.src, p.dst, 25)
		}
	}
	// Same tuple, different mask: a distinct key, never a stale hit.
	check(sim.Time(int64(19*15*time.Second)), pairs[0].src, pairs[0].dst, 40)
}

// TestISLMemoInvalidatedByMembership reproduces mid-campaign fleet
// growth: toggling satellites bumps the shell generation, so a cached
// route from the old membership can never be served again.
func TestISLMemoInvalidatedByMembership(t *testing.T) {
	memoCon := NewConstellation(NewShell(StarlinkGen1()))
	refCon := NewConstellation(NewShell(StarlinkGen1()))
	memoR := NewISLRouter(memoCon, 0)
	refR := NewISLRouter(refCon, 0)
	memoShell, refShell := memoCon.Shells()[0], refCon.Shells()[0]

	src := geo.LatLon{LatDeg: 50.8, LonDeg: 4.4}
	dst := geo.LatLon{LatDeg: 40.7, LonDeg: -74.0}
	at := sim.Time(0)

	d0, h0, ok0 := memoR.PathDelay(at, src, dst, 25)
	if !ok0 {
		t.Fatal("no route before membership change")
	}
	// Disable whole planes until the reference route actually changes, so
	// a stale memo hit would be observable.
	changed := false
	for p := 0; p < memoShell.Config().Planes && !changed; p++ {
		for i := 0; i < memoShell.Config().SatsPerPlane; i++ {
			memoShell.SetEnabled(p, i, false)
			refShell.SetEnabled(p, i, false)
		}
		wd, wh, wok := refR.ReferencePathDelay(at, src, dst, 25)
		changed = wd != d0 || wh != h0 || wok != ok0
		gd, gh, gok := memoR.PathDelay(at, src, dst, 25)
		if gd != wd || gh != wh || gok != wok {
			t.Fatalf("after disabling plane %d: memo (%v,%d,%v) != reference (%v,%d,%v) — stale cache",
				p, gd, gh, gok, wd, wh, wok)
		}
	}
	if !changed {
		t.Fatal("test never perturbed the route; invalidation unexercised")
	}
	if memoShell.Gen() == 0 {
		t.Fatal("membership toggles did not bump the generation")
	}
}
