package leo

import (
	"math"
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

var louvain = geo.LatLon{LatDeg: 50.67, LonDeg: 4.61}

func testGateways() []Gateway {
	return []Gateway{
		{Name: "nl-gw", Pos: geo.LatLon{LatDeg: 52.3, LonDeg: 4.8}, PoP: "AMS"},
		{Name: "de-gw", Pos: geo.LatLon{LatDeg: 50.1, LonDeg: 8.7}, PoP: "FRA"},
	}
}

func TestShellSatelliteAltitude(t *testing.T) {
	sh := NewShell(StarlinkGen1())
	for _, at := range []sim.Time{0, sim.Time(time.Hour), sim.Time(24 * time.Hour)} {
		p := sh.Position(10, 5, at)
		alt := p.Norm() - geo.EarthRadiusKm
		if math.Abs(alt-550) > 1e-6 {
			t.Fatalf("altitude at %v = %v, want 550", at, alt)
		}
	}
}

func TestShellLatitudeBoundedByInclination(t *testing.T) {
	sh := NewShell(StarlinkGen1())
	maxLat := 0.0
	for p := 0; p < 72; p += 9 {
		for i := 0; i < 22; i += 3 {
			for s := 0; s < 6000; s += 97 {
				ll := sh.Position(p, i, sim.Time(s)*sim.Time(time.Second)).ToLatLon()
				if a := math.Abs(ll.LatDeg); a > maxLat {
					maxLat = a
				}
			}
		}
	}
	if maxLat > 53.0001 {
		t.Errorf("max |latitude| = %v, must not exceed inclination 53°", maxLat)
	}
	if maxLat < 50 {
		t.Errorf("max |latitude| = %v, orbit should reach near 53°", maxLat)
	}
}

func TestShellPeriodicity(t *testing.T) {
	sh := NewShell(StarlinkGen1())
	period := geo.OrbitalPeriod(550)
	p0 := sh.Position(0, 0, 0)
	// After one orbital period the satellite returns to the same
	// inertial spot; in ECEF it is offset by Earth rotation, so compare
	// geocentric latitude (unaffected by the frame rotation).
	p1 := sh.Position(0, 0, sim.Time(period))
	l0, l1 := p0.ToLatLon(), p1.ToLatLon()
	if math.Abs(l0.LatDeg-l1.LatDeg) > 0.01 {
		t.Errorf("latitude after one period: %v vs %v", l0.LatDeg, l1.LatDeg)
	}
}

func TestSatelliteMoves(t *testing.T) {
	sh := NewShell(StarlinkGen1())
	p0 := sh.Position(0, 0, 0)
	p1 := sh.Position(0, 0, sim.Time(time.Second))
	v := p0.Distance(p1) // km over 1 s
	// Orbital speed at 550 km is ~7.6 km/s.
	if v < 7 || v > 8.2 {
		t.Errorf("orbital speed = %v km/s, want ~7.6", v)
	}
}

func TestSatellitesSpreadInPlane(t *testing.T) {
	sh := NewShell(StarlinkGen1())
	p0 := sh.Position(0, 0, 0)
	p1 := sh.Position(0, 11, 0) // half the plane away
	// Should be roughly antipodal on the orbit: separation ~2*(R+alt).
	want := 2 * (geo.EarthRadiusKm + 550)
	if d := p0.Distance(p1); math.Abs(d-want) > 100 {
		t.Errorf("opposite in-plane separation = %v, want ~%v", d, want)
	}
}

func TestPartialShell(t *testing.T) {
	sh := NewPartialShell(StarlinkGen1(), 0.5)
	if sh.Alive() != 72*11 {
		t.Errorf("alive = %d, want %d", sh.Alive(), 72*11)
	}
	if !sh.Enabled(0, 0) || sh.Enabled(0, 21) {
		t.Error("partial shell population wrong")
	}
	sh.SetEnabled(0, 21, true)
	if sh.Alive() != 72*11+1 {
		t.Error("SetEnabled did not update count")
	}
	sh.SetEnabled(0, 21, true) // idempotent
	if sh.Alive() != 72*11+1 {
		t.Error("SetEnabled not idempotent")
	}
}

func TestTerminalFindsServingSatellite(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())

	misses := 0
	for ep := 0; ep < 200; ep++ {
		at := sim.Time(ep) * sim.Time(15*time.Second)
		a := term.AssignmentAt(at)
		if !a.OK {
			misses++
			continue
		}
		// The serving satellite must actually clear the mask.
		ll := con.Position(a.Sat, at).ToLatLon()
		if el := geo.ElevationDeg(louvain, ll); el < 25 {
			t.Fatalf("epoch %d: serving satellite at elevation %v < mask", ep, el)
		}
	}
	// The full Gen1 shell covers Belgium essentially always.
	if misses > 0 {
		t.Errorf("%d/200 epochs without coverage on a full shell", misses)
	}
}

func TestTerminalDelayRange(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())

	minD, maxD := time.Hour, time.Duration(0)
	for ep := 0; ep < 2000; ep++ {
		at := sim.Time(ep) * sim.Time(15*time.Second)
		d, ok := term.DelayAt(at)
		if !ok {
			continue
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	// Bent-pipe one-way: at least the zenith bound up+down (~3.7 ms),
	// at most a few tens of ms for low-elevation geometry.
	if minD < 3600*time.Microsecond {
		t.Errorf("min one-way delay %v below physical floor", minD)
	}
	if minD > 8*time.Millisecond {
		t.Errorf("min one-way delay %v implausibly high", minD)
	}
	if maxD > 20*time.Millisecond {
		t.Errorf("max one-way delay %v implausibly high for 550km bent pipe", maxD)
	}
}

func TestDelayFuncFallback(t *testing.T) {
	// Empty constellation: no coverage anywhere.
	con := NewConstellation(NewPartialShell(StarlinkGen1(), 0))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	f := term.DelayFunc(123 * time.Millisecond)
	if d := f(0); d != 123*time.Millisecond {
		t.Errorf("fallback = %v", d)
	}
}

func TestAssignmentStableWithinEpoch(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	a0 := term.AssignmentAt(sim.Time(30 * time.Second))
	a1 := term.AssignmentAt(sim.Time(44 * time.Second)) // same 15s epoch
	if a0 != a1 {
		t.Error("assignment changed within an epoch")
	}
}

func TestHandoversOccur(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	hs := term.Handovers(0, sim.Time(time.Hour))
	// LEO satellites cross the sky in minutes; an hour must contain
	// many handovers but they cannot happen every epoch (240 epochs).
	if len(hs) < 10 {
		t.Errorf("only %d handovers in an hour", len(hs))
	}
	if len(hs) >= 240 {
		t.Errorf("%d handovers in 240 epochs: assignment is thrashing", len(hs))
	}
	for _, h := range hs {
		if int64(h.At)%int64(15*time.Second) != 0 {
			t.Errorf("handover at %v not on an epoch boundary", h.At)
		}
		if h.From == h.To {
			t.Error("handover with no change")
		}
	}
}

func TestGatewayAt(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	gw := term.GatewayAt(0)
	if gw == nil {
		t.Fatal("no gateway on full shell")
	}
	if gw.PoP != "AMS" && gw.PoP != "FRA" {
		t.Errorf("unexpected PoP %q", gw.PoP)
	}
}

func TestGeoSatellite(t *testing.T) {
	g := GeoSatellite{LonDeg: 9} // over Europe, like the paper's provider
	if !g.Visible(louvain, 10) {
		t.Error("GEO bird at 9°E should be visible from Belgium")
	}
	teleport := geo.LatLon{LatDeg: 48.9, LonDeg: 2.3} // Paris teleport
	d := g.BentPipeDelay(louvain, teleport)
	// One-way through GEO: ~240 ms for a European user.
	if d < 230*time.Millisecond || d > 260*time.Millisecond {
		t.Errorf("GEO bent-pipe delay = %v, want ~240ms", d)
	}
	// Not visible from the poles.
	if g.Visible(geo.LatLon{LatDeg: 89, LonDeg: 0}, 10) {
		t.Error("GEO bird should not clear 10° from the pole")
	}
}

func TestISLShorterThanBentPipeForLongHaul(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	router := NewISLRouter(con, 0)
	singapore := geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}

	d, hops, ok := router.PathDelay(0, louvain, singapore, 25)
	if !ok {
		t.Fatal("no ISL path Louvain->Singapore on a full shell")
	}
	if hops < 5 {
		t.Errorf("only %d ISL hops to Singapore", hops)
	}
	// Straight-line great-circle at c is ~35 ms; ISL path must be a
	// small constant factor above it and far below the bent-pipe +
	// terrestrial-fiber alternative (~90+ ms one way).
	lower := geo.RadioDelay(geo.GreatCircleKm(louvain, singapore))
	if d < lower {
		t.Errorf("ISL delay %v beats the speed of light (floor %v)", d, lower)
	}
	if d > 3*lower {
		t.Errorf("ISL delay %v, want < 3x light floor %v", d, lower)
	}
}

func TestISLNoPathWithoutSatellites(t *testing.T) {
	con := NewConstellation(NewPartialShell(StarlinkGen1(), 0))
	router := NewISLRouter(con, 0)
	if _, _, ok := router.PathDelay(0, louvain, geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}, 25); ok {
		t.Error("found a path through an empty shell")
	}
}

func TestConstellationForEachCount(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	n := 0
	con.ForEach(func(SatID) { n++ })
	if n != 72*22 {
		t.Errorf("ForEach visited %d, want %d", n, 72*22)
	}
	if con.Alive() != 72*22 {
		t.Errorf("Alive = %d", con.Alive())
	}
}

func TestGatewayMoveObservedInHandovers(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	hs := term.Handovers(0, sim.Time(6*time.Hour))
	moves := 0
	for _, h := range hs {
		if h.GatewayMove {
			moves++
		}
	}
	// With AMS and FRA gateways both visible from Belgian-serving
	// satellites, exit changes must occur but not dominate.
	if moves == 0 {
		t.Error("no gateway moves in 6 hours; both exits should be used")
	}
	if moves == len(hs) {
		t.Error("every handover moved the gateway; selection is unstable")
	}
}

func TestPartialShellRaisesDelay(t *testing.T) {
	full := NewTerminal(DefaultTerminalConfig(louvain),
		NewConstellation(NewShell(StarlinkGen1())), testGateways())
	partial := NewTerminal(DefaultTerminalConfig(louvain),
		NewConstellation(NewPartialShell(StarlinkGen1(), 0.6)), testGateways())
	var fullSum, partSum time.Duration
	n := 0
	for ep := 0; ep < 400; ep++ {
		at := sim.Time(ep) * sim.Time(15*time.Second)
		fd, fok := full.DelayAt(at)
		pd, pok := partial.DelayAt(at)
		if fok && pok {
			fullSum += fd
			partSum += pd
			n++
		}
	}
	if n < 200 {
		t.Fatalf("too few comparable epochs: %d", n)
	}
	// Fewer satellites -> lower serving elevations -> longer slant
	// ranges on average (the Feb-2022 fleet-growth mechanism).
	if partSum <= fullSum {
		t.Errorf("partial shell mean delay %v should exceed full shell %v",
			partSum/time.Duration(n), fullSum/time.Duration(n))
	}
}
