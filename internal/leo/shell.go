// Package leo simulates satellite constellations: Walker-delta LEO shells
// with circular-orbit propagation (the Starlink Gen1 shell by default),
// geostationary satellites for the SatCom comparison, user terminals with
// epoch-based serving-satellite selection, gateway hand-off, bent-pipe
// path delays, handover schedules, and optional +Grid inter-satellite-link
// routing for the paper's "what if ISLs were on" future-work question.
//
// Latency in the reproduced experiments *emerges* from this geometry: the
// package computes true slant ranges from orbital motion at query time, so
// the ~20 ms minimum RTT and its variation across 15-second reallocation
// epochs are consequences of the constellation, not tuned constants.
package leo

import (
	"math"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// ShellConfig describes one Walker-delta shell.
type ShellConfig struct {
	Name           string
	AltKm          float64
	InclinationDeg float64
	Planes         int
	SatsPerPlane   int
	// PhasingF is the Walker phasing parameter: satellite k of plane p
	// is offset by PhasingF * p * 360/(Planes*SatsPerPlane) degrees of
	// argument of latitude.
	PhasingF int
}

// Starlink Gen1 is the shell that carried the service during the paper's
// campaign (553 km, 53°, 72 planes of 22).
func StarlinkGen1() ShellConfig {
	return ShellConfig{
		Name:           "starlink-gen1",
		AltKm:          550,
		InclinationDeg: 53,
		Planes:         72,
		SatsPerPlane:   22,
		PhasingF:       39,
	}
}

// SatID identifies a satellite within a constellation.
type SatID struct {
	Shell int
	Plane int
	Index int
}

// Shell is an instantiated Walker shell.
type Shell struct {
	cfg       ShellConfig
	radiusKm  float64
	incRad    float64
	periodSec float64
	// enabled[plane][idx] marks satellites that exist. The Feb-2022
	// fleet-growth event in the paper is reproduced by launching
	// additional satellites mid-campaign.
	enabled [][]bool
	nAlive  int
	// gen counts membership changes; caches keyed on satellite positions
	// plus membership (the ISL route memo) include it so mid-campaign
	// fleet growth invalidates them.
	gen uint64
}

// NewShell instantiates a shell with all satellites enabled.
func NewShell(cfg ShellConfig) *Shell {
	s := &Shell{
		cfg:       cfg,
		radiusKm:  geo.EarthRadiusKm + cfg.AltKm,
		incRad:    geo.Radians(cfg.InclinationDeg),
		periodSec: geo.OrbitalPeriod(cfg.AltKm).Seconds(),
	}
	s.enabled = make([][]bool, cfg.Planes)
	for p := range s.enabled {
		s.enabled[p] = make([]bool, cfg.SatsPerPlane)
		for i := range s.enabled[p] {
			s.enabled[p][i] = true
		}
	}
	s.nAlive = cfg.Planes * cfg.SatsPerPlane
	return s
}

// NewPartialShell instantiates a shell with only the first aliveFraction
// of each plane populated — a coarse model of a constellation still being
// launched.
func NewPartialShell(cfg ShellConfig, aliveFraction float64) *Shell {
	s := NewShell(cfg)
	keep := int(math.Round(aliveFraction * float64(cfg.SatsPerPlane)))
	if keep < 0 {
		keep = 0
	}
	if keep > cfg.SatsPerPlane {
		keep = cfg.SatsPerPlane
	}
	s.nAlive = 0
	for p := range s.enabled {
		for i := range s.enabled[p] {
			s.enabled[p][i] = i < keep
			if s.enabled[p][i] {
				s.nAlive++
			}
		}
	}
	return s
}

// Config returns the shell configuration.
func (s *Shell) Config() ShellConfig { return s.cfg }

// Alive returns the number of enabled satellites.
func (s *Shell) Alive() int { return s.nAlive }

// SetEnabled marks a satellite as existing or not.
func (s *Shell) SetEnabled(plane, idx int, on bool) {
	if s.enabled[plane][idx] != on {
		s.enabled[plane][idx] = on
		s.gen++
		if on {
			s.nAlive++
		} else {
			s.nAlive--
		}
	}
}

// Gen returns the membership generation: it changes whenever a
// satellite's existence is toggled, never otherwise.
func (s *Shell) Gen() uint64 { return s.gen }

// Enabled reports whether a satellite exists.
func (s *Shell) Enabled(plane, idx int) bool { return s.enabled[plane][idx] }

// Position returns the ECEF position of satellite (plane, idx) at t.
func (s *Shell) Position(plane, idx int, t sim.Time) geo.ECEF {
	cfg := s.cfg
	tSec := t.Seconds()

	// Right ascension of the ascending node, spread over 360° (delta
	// pattern), fixed in inertial space.
	raan := 2 * math.Pi * float64(plane) / float64(cfg.Planes)
	// Argument of latitude: in-plane spacing + Walker phasing + motion.
	u := 2*math.Pi*float64(idx)/float64(cfg.SatsPerPlane) +
		2*math.Pi*float64(cfg.PhasingF)*float64(plane)/float64(cfg.Planes*cfg.SatsPerPlane) +
		2*math.Pi*tSec/s.periodSec

	sinU, cosU := math.Sincos(u)
	sinI, cosI := math.Sincos(s.incRad)
	// Earth rotation carries the ECEF frame eastward; subtract it from
	// the inertial RAAN to get ECEF longitude of the node.
	node := raan - geo.EarthRotationRadS*tSec
	sinN, cosN := math.Sincos(node)

	r := s.radiusKm
	return geo.ECEF{
		X: r * (cosN*cosU - sinN*sinU*cosI),
		Y: r * (sinN*cosU + cosN*sinU*cosI),
		Z: r * (sinU * sinI),
	}
}

// Constellation is a set of shells. It owns a small per-instant position
// snapshot cache (see snapshot.go) so terminals, the ISL router and
// handover scans share one position computation per satellite per epoch.
type Constellation struct {
	shells   []*Shell
	snaps    [snapshotRing]*Snapshot
	snapNext int
}

// NewConstellation builds a constellation from shells.
func NewConstellation(shells ...*Shell) *Constellation {
	return &Constellation{shells: shells}
}

// Shells returns the underlying shells.
func (c *Constellation) Shells() []*Shell { return c.shells }

// Position returns the ECEF position of a satellite at t.
func (c *Constellation) Position(id SatID, t sim.Time) geo.ECEF {
	return c.shells[id.Shell].Position(id.Plane, id.Index, t)
}

// ForEach calls fn for every enabled satellite.
func (c *Constellation) ForEach(fn func(id SatID)) {
	for si, sh := range c.shells {
		for p := 0; p < sh.cfg.Planes; p++ {
			for i := 0; i < sh.cfg.SatsPerPlane; i++ {
				if sh.enabled[p][i] {
					fn(SatID{Shell: si, Plane: p, Index: i})
				}
			}
		}
	}
}

// Alive returns the total number of enabled satellites.
func (c *Constellation) Alive() int {
	n := 0
	for _, sh := range c.shells {
		n += sh.Alive()
	}
	return n
}

// GeoSatellite is a geostationary satellite parked over a longitude.
type GeoSatellite struct {
	LonDeg float64
}

// GeoAltitudeKm is the geostationary orbit altitude.
const GeoAltitudeKm = 35786

// Position returns the (time-independent) ECEF position of the satellite.
func (g GeoSatellite) Position() geo.ECEF {
	return geo.LatLon{LatDeg: 0, LonDeg: g.LonDeg, AltKm: GeoAltitudeKm}.ToECEF()
}

// BentPipeDelay returns the one-way user→satellite→teleport propagation
// delay through the GEO satellite. For a European user this is ~240 ms,
// which with processing overheads yields the ~600 ms RTTs the paper
// attributes to traditional SatCom.
func (g GeoSatellite) BentPipeDelay(user, teleport geo.LatLon) time.Duration {
	sat := g.Position()
	up := user.ToECEF().Distance(sat)
	down := sat.Distance(teleport.ToECEF())
	return geo.RadioDelay(up + down)
}

// Visible reports whether the GEO satellite clears minElevationDeg at the
// user location.
func (g GeoSatellite) Visible(user geo.LatLon, minElevationDeg float64) bool {
	return geo.ElevationDegECEF(user.ToECEF(), g.Position()) >= minElevationDeg
}
