package leo

import (
	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// Snapshot holds the ECEF position of every satellite slot of a
// constellation at one instant. Positions are stored for disabled slots
// too (propagation is well-defined either way), so mid-campaign fleet
// growth never invalidates a snapshot — callers filter on Enabled at use
// time, exactly like ForEach does.
type Snapshot struct {
	At     sim.Time
	pos    [][]geo.ECEF // [shell][plane*satsPerPlane+idx]
	stride []int        // satellites per plane, per shell
}

// Position returns the satellite position recorded in the snapshot. It is
// bit-identical to Constellation.Position at the snapshot instant: both
// are produced by the same Shell.Position arithmetic.
func (s *Snapshot) Position(id SatID) geo.ECEF {
	return s.pos[id.Shell][id.Plane*s.stride[id.Shell]+id.Index]
}

// shellPositions returns the flat position slice of one shell, indexed by
// plane*SatsPerPlane+idx.
func (s *Snapshot) shellPositions(shell int) []geo.ECEF {
	return s.pos[shell]
}

// ShellPositions exposes shellPositions to other packages: the fleet cell
// index sweeps entire shells per epoch and indexes positions by flat id,
// so handing out the backing slice avoids a SatID round-trip per
// satellite. The slice is shared storage — callers must not mutate it.
func (s *Snapshot) ShellPositions(shell int) []geo.ECEF {
	return s.pos[shell]
}

// snapshotRing is the number of distinct instants the constellation keeps
// positions for. Epoch-aligned callers (terminals, Handovers) share one
// entry per epoch; the ISL router and delay probes add a few more. The
// ring is deliberately small: entries are ~38 KB for the Gen1 shell.
const snapshotRing = 8

// SnapshotAt returns the position snapshot for instant at, computing and
// caching it on first request. The cache is owned by the Constellation
// instance — one per simulation shard, no globals — so PR 1's parallel
// runner keeps its determinism: a snapshot's values depend only on (shell
// geometry, at), never on which caller primed it.
//
// Like the rest of the simulation objects, the cache is not safe for
// concurrent use; each shard owns its own Constellation.
func (c *Constellation) SnapshotAt(at sim.Time) *Snapshot {
	if s := c.peekSnapshot(at); s != nil {
		return s
	}
	s := &Snapshot{
		At:     at,
		pos:    make([][]geo.ECEF, len(c.shells)),
		stride: make([]int, len(c.shells)),
	}
	for si, sh := range c.shells {
		cfg := sh.cfg
		flat := make([]geo.ECEF, cfg.Planes*cfg.SatsPerPlane)
		for p := 0; p < cfg.Planes; p++ {
			for i := 0; i < cfg.SatsPerPlane; i++ {
				flat[p*cfg.SatsPerPlane+i] = sh.Position(p, i, at)
			}
		}
		s.pos[si] = flat
		s.stride[si] = cfg.SatsPerPlane
	}
	c.snaps[c.snapNext] = s
	c.snapNext = (c.snapNext + 1) % snapshotRing
	return s
}

// peekSnapshot returns the cached snapshot for at without computing one.
// Hot paths that only need a handful of positions (the pruned assignment
// scan) peek: they reuse shared work when it exists but never force a
// whole-shell computation.
func (c *Constellation) peekSnapshot(at sim.Time) *Snapshot {
	for _, s := range c.snaps {
		if s != nil && s.At == at {
			return s
		}
	}
	return nil
}
