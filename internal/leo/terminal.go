package leo

import (
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/sim"
)

// Gateway is a ground station that connects satellites to a terrestrial
// point of presence. The paper observes Starlink traffic from Belgium
// exiting in the Netherlands and Germany.
type Gateway struct {
	Name string
	Pos  geo.LatLon
	// PoP names the internet exchange the gateway feeds into.
	PoP string
	// MinElevationDeg is the gateway antenna mask.
	MinElevationDeg float64
}

// TerminalConfig configures a user terminal.
type TerminalConfig struct {
	Pos geo.LatLon
	// MinElevationDeg is the phased-array mask; Starlink dishes use 25°.
	MinElevationDeg float64
	// Epoch is the serving-satellite reallocation interval. Starlink
	// reassigns every 15 s.
	Epoch time.Duration
}

// DefaultTerminalConfig returns the dishy defaults at a position.
func DefaultTerminalConfig(pos geo.LatLon) TerminalConfig {
	return TerminalConfig{Pos: pos, MinElevationDeg: 25, Epoch: 15 * time.Second}
}

// Assignment is the serving satellite and gateway for one epoch.
type Assignment struct {
	Sat     SatID
	Gateway int // index into the terminal's gateway list
	OK      bool
}

// Terminal is a user terminal attached to a constellation. It selects a
// serving satellite per epoch (highest elevation among satellites that can
// also see a gateway) and exposes the resulting bent-pipe one-way delay as
// a function of time, in the form netem links consume.
//
// Terminal is not safe for concurrent use; the simulation is
// single-threaded.
type Terminal struct {
	cfg      TerminalConfig
	con      *Constellation
	gateways []Gateway

	epochNS     int64
	assignCache map[int64]Assignment

	// delayCache memoizes the computed delay on a coarse time quantum:
	// satellites move at ~7.5 km/s, so the slant range drifts by well
	// under a microsecond of propagation per 100 ms quantum.
	delayQuantumNS int64
	delayCacheKey  int64
	delayCacheVal  time.Duration
	delayCacheOK   bool
}

// NewTerminal creates a terminal using the given constellation and
// gateway set.
func NewTerminal(cfg TerminalConfig, con *Constellation, gateways []Gateway) *Terminal {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 15 * time.Second
	}
	return &Terminal{
		cfg:            cfg,
		con:            con,
		gateways:       gateways,
		epochNS:        int64(cfg.Epoch),
		assignCache:    make(map[int64]Assignment),
		delayQuantumNS: int64(100 * time.Millisecond),
	}
}

// Config returns the terminal configuration.
func (t *Terminal) Config() TerminalConfig { return t.cfg }

// Gateways returns the gateway set.
func (t *Terminal) Gateways() []Gateway { return t.gateways }

// epochOf returns the epoch number containing instant at.
func (t *Terminal) epochOf(at sim.Time) int64 { return int64(at) / t.epochNS }

// AssignmentAt returns the serving assignment for the epoch containing at.
func (t *Terminal) AssignmentAt(at sim.Time) Assignment {
	ep := t.epochOf(at)
	if a, ok := t.assignCache[ep]; ok {
		return a
	}
	a := t.computeAssignment(sim.Time(ep * t.epochNS))
	if len(t.assignCache) > 1<<16 {
		// The cache is a memo, not state: dropping it only costs
		// recomputation.
		t.assignCache = make(map[int64]Assignment)
	}
	t.assignCache[ep] = a
	return a
}

// computeAssignment selects, at the epoch start, the visible satellite
// with the highest elevation from the terminal among those that can also
// reach a gateway; ties in gateway choice go to the shortest downlink.
func (t *Terminal) computeAssignment(at sim.Time) Assignment {
	best := Assignment{}
	bestElev := -1.0
	t.con.ForEach(func(id SatID) {
		satPos := t.con.Position(id, at)
		satLL := satPos.ToLatLon()
		elev := geo.ElevationDeg(t.cfg.Pos, satLL)
		if elev < t.cfg.MinElevationDeg || elev <= bestElev {
			return
		}
		gw := t.bestGateway(satLL, satPos)
		if gw < 0 {
			return
		}
		best = Assignment{Sat: id, Gateway: gw, OK: true}
		bestElev = elev
	})
	return best
}

// bestGateway returns the index of the gateway with the shortest slant
// range that sees the satellite above its mask, or -1.
func (t *Terminal) bestGateway(satLL geo.LatLon, satPos geo.ECEF) int {
	best := -1
	bestRange := 0.0
	for i, gw := range t.gateways {
		mask := gw.MinElevationDeg
		if mask == 0 {
			mask = 10 // gateway dishes track lower than user terminals
		}
		if geo.ElevationDeg(gw.Pos, satLL) < mask {
			continue
		}
		r := gw.Pos.ToECEF().Distance(satPos)
		if best < 0 || r < bestRange {
			best, bestRange = i, r
		}
	}
	return best
}

// DelayAt returns the one-way bent-pipe propagation delay (terminal →
// serving satellite → gateway) at instant at. When no satellite is
// serving (constellation gap), it returns ok=false.
func (t *Terminal) DelayAt(at sim.Time) (time.Duration, bool) {
	q := int64(at) / t.delayQuantumNS
	if t.delayCacheOK && q == t.delayCacheKey {
		return t.delayCacheVal, t.delayCacheVal >= 0
	}
	a := t.AssignmentAt(at)
	var d time.Duration = -1
	if a.OK {
		satPos := t.con.Position(a.Sat, at)
		up := t.cfg.Pos.ToECEF().Distance(satPos)
		down := satPos.Distance(t.gateways[a.Gateway].Pos.ToECEF())
		d = geo.RadioDelay(up + down)
	}
	t.delayCacheKey, t.delayCacheVal, t.delayCacheOK = q, d, true
	return d, d >= 0
}

// DelayFunc adapts the terminal to the netem link interface: instants
// with no serving satellite fall back to fallback (packets in that window
// are typically dropped by the outage schedule anyway).
func (t *Terminal) DelayFunc(fallback time.Duration) func(sim.Time) time.Duration {
	return func(at sim.Time) time.Duration {
		if d, ok := t.DelayAt(at); ok {
			return d
		}
		return fallback
	}
}

// GatewayAt returns the gateway in use at an instant, or nil during gaps.
func (t *Terminal) GatewayAt(at sim.Time) *Gateway {
	a := t.AssignmentAt(at)
	if !a.OK {
		return nil
	}
	return &t.gateways[a.Gateway]
}

// Handover marks a serving-satellite change at an epoch boundary.
type Handover struct {
	At          sim.Time
	From, To    Assignment
	GatewayMove bool
}

// Handovers lists the serving-satellite changes in [start, end). The
// campaign turns these into micro-outage schedules for the access link.
func (t *Terminal) Handovers(start, end sim.Time) []Handover {
	var out []Handover
	first := t.epochOf(start) + 1
	last := t.epochOf(end)
	prev := t.AssignmentAt(sim.Time((first - 1) * t.epochNS))
	for ep := first; ep <= last; ep++ {
		at := sim.Time(ep * t.epochNS)
		if at >= end {
			break
		}
		cur := t.AssignmentAt(at)
		if cur != prev {
			out = append(out, Handover{
				At:          at,
				From:        prev,
				To:          cur,
				GatewayMove: cur.Gateway != prev.Gateway,
			})
		}
		prev = cur
	}
	return out
}
