package leo

import (
	"math"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// Gateway is a ground station that connects satellites to a terrestrial
// point of presence. The paper observes Starlink traffic from Belgium
// exiting in the Netherlands and Germany.
type Gateway struct {
	Name string
	Pos  geo.LatLon
	// PoP names the internet exchange the gateway feeds into.
	PoP string
	// MinElevationDeg is the gateway antenna mask.
	MinElevationDeg float64
}

// TerminalConfig configures a user terminal.
type TerminalConfig struct {
	Pos geo.LatLon
	// MinElevationDeg is the phased-array mask; Starlink dishes use 25°.
	MinElevationDeg float64
	// Epoch is the serving-satellite reallocation interval. Starlink
	// reassigns every 15 s.
	Epoch time.Duration
}

// DefaultTerminalConfig returns the dishy defaults at a position.
func DefaultTerminalConfig(pos geo.LatLon) TerminalConfig {
	return TerminalConfig{Pos: pos, MinElevationDeg: 25, Epoch: 15 * time.Second}
}

// Assignment is the serving satellite and gateway for one epoch.
type Assignment struct {
	Sat     SatID
	Gateway int // index into the terminal's gateway list
	OK      bool
}

// gatewayGeom is the per-gateway geometry precomputed once in NewTerminal
// so the candidate loops never redo a ToECEF conversion or re-apply the
// default-mask rule per satellite per call.
type gatewayGeom struct {
	ecef    geo.ECEF
	norm    float64 // |ecef|
	sinMask float64 // sin of the normalized mask (0 => 10°)
}

// delayRingSize is the number of delay-quantum entries Terminal.DelayAt
// memoizes. Interleaved flows on one testbed (a ping train and a
// speedtest, say) probe a handful of nearby quanta; a small ring stops
// them from thrashing what used to be a single-entry cache.
const delayRingSize = 8

type delayEntry struct {
	key int64
	val time.Duration // -1 records a no-coverage window
	ok  bool
}

// pruneMarginRad pads the orbital candidate window beyond the exact
// visibility bound. The bound itself is exact spherical geometry; the pad
// only has to dominate floating-point rounding in the window arithmetic,
// so ~0.3° is already three hundred billion times larger than needed.
const pruneMarginRad = 0.005

// Terminal is a user terminal attached to a constellation. It selects a
// serving satellite per epoch (highest elevation among satellites that can
// also see a gateway) and exposes the resulting bent-pipe one-way delay as
// a function of time, in the form netem links consume.
//
// Selection runs on a geometry fast path: candidate satellites are
// enumerated per orbital plane from the argument-of-latitude window that
// can possibly clear the elevation mask (a 550 km satellite above a 25°
// mask is within ~9° great-circle of the observer, so each plane
// contributes at most a few candidates), and all visibility checks are
// ECEF-native sine comparisons against precomputed observer geometry. The
// result is identical to the naive all-satellite scan, which is kept as
// ReferenceAssignmentAt and re-run by the equivalence tests; when the
// pruned window finds no serving satellite the terminal falls back to a
// full scan, so correctness never rests on the pruning bound.
//
// Terminal is not safe for concurrent use; the simulation is
// single-threaded.
type Terminal struct {
	cfg      TerminalConfig
	con      *Constellation
	gateways []Gateway

	epochNS     int64
	assignCache map[int64]Assignment

	// Observer geometry, fixed for the terminal's lifetime.
	posECEF geo.ECEF
	posNorm float64
	// upX/upY/upZ is the unit local-up vector posECEF/|posECEF|.
	upX, upY, upZ float64
	sinMask       float64
	gwGeom        []gatewayGeom

	// delayRing memoizes computed delays on a coarse time quantum:
	// satellites move at ~7.5 km/s, so the slant range drifts by well
	// under a microsecond of propagation per 100 ms quantum.
	delayQuantumNS int64
	delayRing      [delayRingSize]delayEntry
	delayNext      int

	obs *termObs
}

// termObs counts the terminal's selection-path and cache behavior —
// the observable half of the geometry fast path's perf story. Nil when
// observability is disabled.
type termObs struct {
	assignPruned *obs.Counter
	assignFull   *obs.Counter
	delayHit     *obs.Counter
	delayMiss    *obs.Counter
}

// Observe attaches metrics to the terminal. A nil registry is a no-op.
func (t *Terminal) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.obs = &termObs{
		assignPruned: reg.Counter("leo.assign.pruned"),
		assignFull:   reg.Counter("leo.assign.full_scan"),
		delayHit:     reg.Counter("leo.delay.cache_hit"),
		delayMiss:    reg.Counter("leo.delay.cache_miss"),
	}
}

// NewTerminal creates a terminal using the given constellation and
// gateway set.
func NewTerminal(cfg TerminalConfig, con *Constellation, gateways []Gateway) *Terminal {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 15 * time.Second
	}
	t := &Terminal{
		cfg:            cfg,
		con:            con,
		gateways:       gateways,
		epochNS:        int64(cfg.Epoch),
		assignCache:    make(map[int64]Assignment),
		delayQuantumNS: int64(100 * time.Millisecond),
	}
	t.posECEF = cfg.Pos.ToECEF()
	t.posNorm = t.posECEF.Norm()
	if t.posNorm > 0 {
		t.upX = t.posECEF.X / t.posNorm
		t.upY = t.posECEF.Y / t.posNorm
		t.upZ = t.posECEF.Z / t.posNorm
	}
	t.sinMask = math.Sin(geo.Radians(cfg.MinElevationDeg))
	t.gwGeom = make([]gatewayGeom, len(gateways))
	for i, gw := range gateways {
		mask := gw.MinElevationDeg
		if mask == 0 {
			mask = 10 // gateway dishes track lower than user terminals
		}
		e := gw.Pos.ToECEF()
		t.gwGeom[i] = gatewayGeom{ecef: e, norm: e.Norm(), sinMask: math.Sin(geo.Radians(mask))}
	}
	return t
}

// Config returns the terminal configuration.
func (t *Terminal) Config() TerminalConfig { return t.cfg }

// Gateways returns the gateway set.
func (t *Terminal) Gateways() []Gateway { return t.gateways }

// epochOf returns the epoch number containing instant at.
func (t *Terminal) epochOf(at sim.Time) int64 { return int64(at) / t.epochNS }

// AssignmentAt returns the serving assignment for the epoch containing at.
func (t *Terminal) AssignmentAt(at sim.Time) Assignment {
	ep := t.epochOf(at)
	if a, ok := t.assignCache[ep]; ok {
		return a
	}
	a := t.computeAssignment(sim.Time(ep * t.epochNS))
	if len(t.assignCache) > 1<<16 {
		// The cache is a memo, not state: dropping it only costs
		// recomputation.
		t.assignCache = make(map[int64]Assignment)
	}
	t.assignCache[ep] = a
	return a
}

// computeAssignment selects, at the epoch start, the visible satellite
// with the highest elevation from the terminal among those that can also
// reach a gateway; ties in gateway choice go to the shortest downlink.
func (t *Terminal) computeAssignment(at sim.Time) Assignment {
	if a := t.computeAssignmentPruned(at); a.OK {
		if t.obs != nil {
			t.obs.assignPruned.Inc()
		}
		return a
	}
	// Empty pruned set (coverage gap, exotic mask, latitude outside the
	// shell): decide from the full scan so the answer never depends on
	// the pruning bound.
	if t.obs != nil {
		t.obs.assignFull.Inc()
	}
	return t.computeAssignmentFull(at)
}

// scanState carries the running argmax of a candidate scan. Elevation is
// compared as its sine — monotone over [-90°, 90°], so the argmax and the
// mask test are unchanged while every asin disappears from the loop.
type scanState struct {
	best    Assignment
	bestSin float64
}

func newScanState() scanState {
	// The naive scan seeds its best elevation at -1°; mirror that so the
	// fast path degrades identically for sub-horizon masks.
	return scanState{bestSin: math.Sin(geo.Radians(-1))}
}

// consider tests one candidate satellite position against the terminal
// mask, the running best and gateway reachability.
func (t *Terminal) consider(st *scanState, id SatID, satPos geo.ECEF) {
	d := satPos.Sub(t.posECEF)
	dn := d.Norm()
	sinEl := d.Dot(t.posECEF) / (dn * t.posNorm)
	if sinEl < t.sinMask || sinEl <= st.bestSin {
		return
	}
	gw := t.bestGateway(satPos)
	if gw < 0 {
		return
	}
	st.best = Assignment{Sat: id, Gateway: gw, OK: true}
	st.bestSin = sinEl
}

// computeAssignmentPruned scans only the satellites whose argument of
// latitude falls inside the per-plane window that can clear the mask.
//
// For plane with ascending-node longitude N and inclination i, the unit
// satellite direction at argument of latitude u is p̂·cos u + q̂·sin u with
// p̂ = (cos N, sin N, 0) and q̂ = (-sin N·cos i, cos N·cos i, sin i). Its
// dot product with the observer's unit up-vector û is therefore
// A·cos u + B·sin u = C·cos(u-φ) with A = û·p̂, B = û·q̂. Visibility
// requires that dot to exceed cos λmax (λmax the coverage central angle
// from the mask and shell radius), i.e. |u-φ| ≤ acos(cos λmax / C) — and
// no satellite of a plane with C < cos λmax is ever visible at all.
func (t *Terminal) computeAssignmentPruned(at sim.Time) Assignment {
	st := newScanState()
	tSec := at.Seconds()
	for si, sh := range t.con.shells {
		cfg := sh.cfg
		planes, per := cfg.Planes, cfg.SatsPerPlane
		if planes <= 0 || per <= 0 {
			continue
		}
		lam := geo.CoverageCentralAngleRad(t.posNorm, sh.radiusKm, t.cfg.MinElevationDeg) + pruneMarginRad
		if lam >= math.Pi {
			// No useful bound (mask at/below -90°, or the "shell" is not
			// above the observer): let the caller run the full scan.
			return Assignment{}
		}
		cosLim := math.Cos(lam)
		sinI, cosI := math.Sincos(sh.incRad)
		motion := 2 * math.Pi * tSec / sh.periodSec
		step := 2 * math.Pi / float64(per)
		var snapPos []geo.ECEF
		if snap := t.con.peekSnapshot(at); snap != nil {
			snapPos = snap.shellPositions(si)
		}
		for p := 0; p < planes; p++ {
			raan := 2 * math.Pi * float64(p) / float64(planes)
			node := raan - geo.EarthRotationRadS*tSec
			sinN, cosN := math.Sincos(node)
			a := t.upX*cosN + t.upY*sinN
			b := cosI*(t.upY*cosN-t.upX*sinN) + t.upZ*sinI
			c2 := a*a + b*b
			if cosLim > 0 && c2 <= cosLim*cosLim {
				continue // plane's closest approach never clears the mask
			}
			c := math.Sqrt(c2)
			if c == 0 {
				continue
			}
			var delta float64
			switch x := cosLim / c; {
			case x >= 1:
				continue
			case x <= -1:
				delta = math.Pi
			default:
				delta = math.Acos(x)
			}
			phi := math.Atan2(b, a)
			base := 2*math.Pi*float64(cfg.PhasingF)*float64(p)/float64(planes*per) + motion
			k0 := int(math.Ceil((phi - delta - base) / step))
			k1 := int(math.Floor((phi + delta - base) / step))
			if k1-k0+1 >= per {
				k0, k1 = 0, per-1
			}
			for k := k0; k <= k1; k++ {
				idx := k % per
				if idx < 0 {
					idx += per
				}
				if !sh.enabled[p][idx] {
					continue
				}
				var satPos geo.ECEF
				if snapPos != nil {
					satPos = snapPos[p*per+idx]
				} else {
					satPos = sh.Position(p, idx, at)
				}
				t.consider(&st, SatID{Shell: si, Plane: p, Index: idx}, satPos)
			}
		}
	}
	return st.best
}

// computeAssignmentFull is the ECEF-native full scan over every enabled
// satellite — the pruned path's fallback. It fills the constellation's
// shared snapshot: a full scan needs every position anyway, and other
// callers at the same instant then reuse them.
func (t *Terminal) computeAssignmentFull(at sim.Time) Assignment {
	st := newScanState()
	snap := t.con.SnapshotAt(at)
	for si, sh := range t.con.shells {
		per := sh.cfg.SatsPerPlane
		pos := snap.shellPositions(si)
		for p := 0; p < sh.cfg.Planes; p++ {
			for i := 0; i < per; i++ {
				if !sh.enabled[p][i] {
					continue
				}
				t.consider(&st, SatID{Shell: si, Plane: p, Index: i}, pos[p*per+i])
			}
		}
	}
	return st.best
}

// bestGateway returns the index of the gateway with the shortest slant
// range that sees the satellite above its mask, or -1. The mask test is
// the cross-multiplied sine comparison d·ĝ ≥ sin(mask)·|d| on the
// precomputed gateway geometry, and the slant range reuses |d|.
func (t *Terminal) bestGateway(satPos geo.ECEF) int {
	best := -1
	bestRange := 0.0
	for i := range t.gwGeom {
		g := &t.gwGeom[i]
		d := satPos.Sub(g.ecef)
		dn := d.Norm()
		if d.Dot(g.ecef) < g.sinMask*dn*g.norm {
			continue
		}
		if best < 0 || dn < bestRange {
			best, bestRange = i, dn
		}
	}
	return best
}

// ReferenceAssignmentAt recomputes the assignment for the epoch
// containing at with the naive pre-fast-path algorithm: scan every
// enabled satellite, round-trip positions through LatLon, compare
// elevations in degrees. It is deliberately kept in-tree (uncached) as
// the ground truth the equivalence tests and the naive-vs-fast benchmarks
// run against.
func (t *Terminal) ReferenceAssignmentAt(at sim.Time) Assignment {
	ep := t.epochOf(at)
	return t.computeAssignmentReference(sim.Time(ep * t.epochNS))
}

func (t *Terminal) computeAssignmentReference(at sim.Time) Assignment {
	best := Assignment{}
	bestElev := -1.0
	t.con.ForEach(func(id SatID) {
		satPos := t.con.Position(id, at)
		satLL := satPos.ToLatLon()
		elev := geo.ElevationDeg(t.cfg.Pos, satLL)
		if elev < t.cfg.MinElevationDeg || elev <= bestElev {
			return
		}
		gw := t.referenceBestGateway(satLL, satPos)
		if gw < 0 {
			return
		}
		best = Assignment{Sat: id, Gateway: gw, OK: true}
		bestElev = elev
	})
	return best
}

// referenceBestGateway is the naive per-candidate gateway selection, with
// the default-mask rule applied inside the loop as the original code did.
func (t *Terminal) referenceBestGateway(satLL geo.LatLon, satPos geo.ECEF) int {
	best := -1
	bestRange := 0.0
	for i, gw := range t.gateways {
		mask := gw.MinElevationDeg
		if mask == 0 {
			mask = 10
		}
		if geo.ElevationDeg(gw.Pos, satLL) < mask {
			continue
		}
		r := gw.Pos.ToECEF().Distance(satPos)
		if best < 0 || r < bestRange {
			best, bestRange = i, r
		}
	}
	return best
}

// DelayAt returns the one-way bent-pipe propagation delay (terminal →
// serving satellite → gateway) at instant at. When no satellite is
// serving (constellation gap), it returns ok=false.
func (t *Terminal) DelayAt(at sim.Time) (time.Duration, bool) {
	q := int64(at) / t.delayQuantumNS
	for i := range t.delayRing {
		if e := &t.delayRing[i]; e.ok && e.key == q {
			if t.obs != nil {
				t.obs.delayHit.Inc()
			}
			return e.val, e.val >= 0
		}
	}
	if t.obs != nil {
		t.obs.delayMiss.Inc()
	}
	a := t.AssignmentAt(at)
	var d time.Duration = -1
	if a.OK {
		satPos := t.con.Position(a.Sat, at)
		up := t.posECEF.Distance(satPos)
		down := satPos.Distance(t.gwGeom[a.Gateway].ecef)
		d = geo.RadioDelay(up + down)
	}
	t.delayRing[t.delayNext] = delayEntry{key: q, val: d, ok: true}
	t.delayNext = (t.delayNext + 1) % delayRingSize
	return d, d >= 0
}

// DelayFunc adapts the terminal to the netem link interface: instants
// with no serving satellite fall back to fallback (packets in that window
// are typically dropped by the outage schedule anyway).
func (t *Terminal) DelayFunc(fallback time.Duration) func(sim.Time) time.Duration {
	return func(at sim.Time) time.Duration {
		if d, ok := t.DelayAt(at); ok {
			return d
		}
		return fallback
	}
}

// GatewayAt returns the gateway in use at an instant, or nil during gaps.
func (t *Terminal) GatewayAt(at sim.Time) *Gateway {
	a := t.AssignmentAt(at)
	if !a.OK {
		return nil
	}
	return &t.gateways[a.Gateway]
}

// Handover marks a serving-satellite change at an epoch boundary.
type Handover struct {
	At          sim.Time
	From, To    Assignment
	GatewayMove bool
}

// Handovers lists the serving-satellite changes in [start, end). The
// campaign turns these into micro-outage schedules for the access link.
func (t *Terminal) Handovers(start, end sim.Time) []Handover {
	var out []Handover
	first := t.epochOf(start) + 1
	last := t.epochOf(end)
	prev := t.AssignmentAt(sim.Time((first - 1) * t.epochNS))
	for ep := first; ep <= last; ep++ {
		at := sim.Time(ep * t.epochNS)
		if at >= end {
			break
		}
		cur := t.AssignmentAt(at)
		if cur != prev {
			out = append(out, Handover{
				At:          at,
				From:        prev,
				To:          cur,
				GatewayMove: cur.Gateway != prev.Gateway,
			})
		}
		prev = cur
	}
	return out
}
