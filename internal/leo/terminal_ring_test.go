package leo

import (
	"testing"
	"time"

	"starlinkperf/internal/geo"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// ringRefDelay recomputes the bent-pipe delay from scratch through the
// reference assignment path, bypassing both the assignment cache and the
// delay ring.
func ringRefDelay(term *Terminal, at sim.Time) (time.Duration, bool) {
	a := term.ReferenceAssignmentAt(at)
	if !a.OK {
		return -1, false
	}
	satPos := term.con.Position(a.Sat, at)
	up := term.posECEF.Distance(satPos)
	down := satPos.Distance(term.gwGeom[a.Gateway].ecef)
	return geo.RadioDelay(up + down), true
}

// TestDelayRingOutOfOrderEpochs is the regression test for the DelayAt
// memo ring under more distinct time quanta than it has slots
// (delayRingSize = 8). Interleaved, out-of-order queries across 12
// distinct quanta must never surface a stale entry: every answer has to
// match a from-scratch reference computation, evicted quanta must
// recompute (visible as cache misses), and a back-to-back repeat must
// hit.
func TestDelayRingOutOfOrderEpochs(t *testing.T) {
	con := NewConstellation(NewShell(StarlinkGen1()))
	term := NewTerminal(DefaultTerminalConfig(louvain), con, testGateways())
	reg := obs.NewRegistry()
	term.Observe(reg)

	quantum := term.delayQuantumNS
	if quantum != int64(100*time.Millisecond) {
		t.Fatalf("delay quantum = %d ns, expected 100 ms", quantum)
	}
	// 12 distinct quanta — 1.5× the ring size — visited out of order with
	// repeats, so every slot gets evicted and revisited at least once.
	order := []int{0, 5, 3, 0, 7, 2, 9, 5, 11, 1, 8, 3, 10, 4, 6, 0, 11, 2, 7, 9, 1, 10}
	distinct := map[int]bool{}
	for _, q := range order {
		distinct[q] = true
		// Offset inside the quantum: DelayAt must key on the quantum, not
		// the raw instant.
		at := sim.Time(int64(q)*quantum + quantum/3)
		got, ok := term.DelayAt(at)
		want, wok := ringRefDelay(term, at)
		if ok != wok {
			t.Fatalf("quantum %d: DelayAt ok=%v, reference ok=%v", q, ok, wok)
		}
		if ok && got != want {
			t.Fatalf("quantum %d: DelayAt = %v, reference = %v (stale ring entry?)", q, got, want)
		}
	}

	snap := reg.Snapshot()
	hits := snap["leo.delay.cache_hit"]
	misses := snap["leo.delay.cache_miss"]
	if int(hits+misses) != len(order) {
		t.Errorf("hits (%v) + misses (%v) != %d queries", hits, misses, len(order))
	}
	// Every distinct quantum misses at least once, and the out-of-order
	// revisits after eviction force additional misses beyond that.
	if int(misses) < len(distinct) {
		t.Errorf("%v misses for %d distinct quanta, want at least one each", misses, len(distinct))
	}
	if int(misses) == len(distinct) {
		t.Errorf("exactly %d misses: no eviction recompute observed across %d out-of-order queries", len(distinct), len(order))
	}

	// A repeat within the last delayRingSize distinct quanta is a hit.
	at := sim.Time(9*quantum + quantum/2)
	term.DelayAt(at)
	before := reg.Snapshot()["leo.delay.cache_hit"]
	term.DelayAt(at)
	if after := reg.Snapshot()["leo.delay.cache_hit"]; after != before+1 {
		t.Errorf("immediate repeat query was not a cache hit (hits %v -> %v)", before, after)
	}
}
