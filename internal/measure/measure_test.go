package measure

import (
	"math"
	"testing"
	"time"

	"starlinkperf/internal/nat"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/pep"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

// testPath builds client - r1 - r2 - server with 10ms hops and optional
// NAT at r1 and PEP at r2.
func testPath(t *testing.T, withNAT, withPEP bool) (*sim.Scheduler, *netem.Node, *netem.Node, *netem.Network) {
	t.Helper()
	s := sim.NewScheduler(101)
	nw := netem.New(s)
	client := nw.NewNode("client", netem.MustParseAddr("192.168.1.2"))
	r1 := nw.NewNode("r1", netem.MustParseAddr("192.168.1.1"))
	r2 := nw.NewNode("r2", netem.MustParseAddr("100.64.0.1"))
	server := nw.NewNode("server", netem.MustParseAddr("8.8.8.8"))

	d := netem.LinkConfig{RateBps: 200e6, Delay: netem.ConstantDelay(10 * time.Millisecond), QueueBytes: 1 << 20}
	c2r1, r12c := nw.Connect(client, r1, d)
	r12r2, r22r1 := nw.Connect(r1, r2, d)
	r22s, s2r2 := nw.Connect(r2, server, d)
	client.SetDefaultRoute(c2r1)
	r1.AddRoute(client.Addr(), r12c)
	r1.SetDefaultRoute(r12r2)
	r2.SetDefaultRoute(r22s)
	r2.AddPrefixRoute(netem.MustParseAddr("100.64.0.7"), 32, r22r1)
	r2.AddPrefixRoute(netem.MustParseAddr("192.168.0.0"), 16, r22r1)
	server.SetDefaultRoute(s2r2)

	if withNAT {
		r1.AttachDevice(nat.New(netem.MustParseAddr("100.64.0.7"), nat.PrefixInside(netem.MustParseAddr("192.168.0.0"), 16)))
	}
	if withPEP {
		r2.AttachDevice(pep.New(tcpsim.DefaultConfig()))
	}
	server.EchoResponder = true
	return s, client, server, nw
}

func TestPingBasic(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	p := NewProber(client)
	var results []PingResult
	p.Ping(server.Addr(), 3, func(rs []PingResult) { results = rs })
	s.RunFor(time.Minute)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Error("ping lost on clean path")
		}
		if r.RTT < 60*time.Millisecond || r.RTT > 61*time.Millisecond {
			t.Errorf("RTT = %v, want ~60ms", r.RTT)
		}
	}
}

func TestPingThroughNAT(t *testing.T) {
	s, client, server, _ := testPath(t, true, false)
	p := NewProber(client)
	ok := false
	p.Ping(server.Addr(), 1, func(rs []PingResult) { ok = rs[0].OK })
	s.RunFor(time.Minute)
	if !ok {
		t.Fatal("ping through NAT failed")
	}
}

func TestPingTimeoutOnBlackhole(t *testing.T) {
	s, client, _, _ := testPath(t, false, false)
	p := NewProber(client)
	var got PingResult
	// 203.0.113.1 has no route at r2 -> unreachable comes back, but to a
	// *blackholed* address we need a silent drop: use a link-down window.
	// Simplest true blackhole: address routed nowhere beyond r2 returns
	// dest-unreachable, which is still "not OK" for ping.
	p.Ping(netem.MustParseAddr("203.0.113.1"), 1, func(rs []PingResult) { got = rs[0] })
	s.RunFor(time.Minute)
	if got.OK {
		t.Fatal("ping to unroutable address succeeded")
	}
}

func TestMonitorCadence(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	p := NewProber(client)
	count := 0
	p.Monitor([]netem.Addr{server.Addr()}, 5*time.Minute, 3, sim.Time(time.Hour), func(r PingResult) {
		if r.OK {
			count++
		}
	})
	s.RunUntil(sim.Time(time.Hour + time.Minute))
	// 12 rounds/hour x 3 probes = 36.
	if count != 36 {
		t.Fatalf("monitor delivered %d samples, want 36", count)
	}
}

func TestTracerouteDiscoversPath(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	p := NewProber(client)
	var hops []Hop
	p.Traceroute(server.Addr(), 16, func(hs []Hop) { hops = hs })
	s.RunFor(time.Minute)
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	if hops[0].Addr != netem.MustParseAddr("192.168.1.1") {
		t.Errorf("hop1 = %v", hops[0].Addr)
	}
	if hops[1].Addr != netem.MustParseAddr("100.64.0.1") {
		t.Errorf("hop2 = %v", hops[1].Addr)
	}
	if !hops[2].Reached || hops[2].Addr != server.Addr() {
		t.Errorf("final hop = %+v", hops[2])
	}
}

func TestTraceboxDetectsNAT(t *testing.T) {
	s, client, server, _ := testPath(t, true, false)
	p := NewProber(client)
	var hops []TraceboxHop
	p.Tracebox(server.Addr(), 16, func(hs []TraceboxHop) { hops = hs })
	s.RunFor(time.Minute)
	if len(hops) < 2 {
		t.Fatalf("hops = %d", len(hops))
	}
	// Hop 1 (the NAT itself) quotes pre-NAT headers; from hop 2 onward
	// the embedded source is restored on the way back (RFC 5508) but
	// the embedded checksum keeps the post-NAT value — the residue.
	if len(hops[0].Changes) != 0 {
		t.Errorf("hop1 should quote the original packet, got %+v", hops[0].Changes)
	}
	h2 := hops[1]
	found := map[string]bool{}
	for _, ch := range h2.Changes {
		found[ch.Field] = true
	}
	if !found["udp.checksum"] {
		t.Errorf("hop2 changes = %+v, want a udp.checksum residue", h2.Changes)
	}
	if found["ip.src"] {
		t.Errorf("hop2 ip.src should be restored by the NAT: %+v", h2.Changes)
	}
}

func TestTraceboxCleanPathNoChanges(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	p := NewProber(client)
	var hops []TraceboxHop
	p.Tracebox(server.Addr(), 16, func(hs []TraceboxHop) { hops = hs })
	s.RunFor(time.Minute)
	for _, h := range hops {
		if len(h.Changes) != 0 {
			t.Errorf("hop %d reports changes on a clean path: %+v", h.TTL, h.Changes)
		}
	}
}

func TestDetectPEPPresent(t *testing.T) {
	s, client, server, _ := testPath(t, false, true)
	cfg := tcpsim.DefaultConfig()
	tcpsim.Listen(server, 80, cfg, nil)
	p := NewProber(client)
	var res PEPProbe
	gotRes := false
	p.DetectPEP(server.Addr(), 80, 16, func(r PEPProbe) { res, gotRes = r, true })
	s.RunFor(2 * time.Minute)
	if !gotRes {
		t.Fatal("no result")
	}
	if !res.ProxyDetected() {
		t.Errorf("PEP not detected: %+v", res)
	}
	if res.SynAckAtTTL != 2 {
		t.Errorf("SYN-ACK at TTL %d, want 2 (the r2 proxy)", res.SynAckAtTTL)
	}
}

func TestDetectPEPAbsent(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	cfg := tcpsim.DefaultConfig()
	tcpsim.Listen(server, 80, cfg, nil)
	p := NewProber(client)
	var res PEPProbe
	gotRes := false
	p.DetectPEP(server.Addr(), 80, 16, func(r PEPProbe) { res, gotRes = r, true })
	s.RunFor(2 * time.Minute)
	if !gotRes {
		t.Fatal("no result")
	}
	if res.ProxyDetected() {
		t.Errorf("phantom PEP: %+v", res)
	}
	if res.SynAckAtTTL != res.PathHops {
		t.Errorf("handshake should complete at the destination: %+v", res)
	}
}

func TestSpeedtestMeasuresLinkRate(t *testing.T) {
	// Bottleneck 50/10 Mbit/s between r1 and r2.
	s, client, server, nw := testPath(t, false, false)
	// Tighten the middle links.
	for _, l := range nw.Links() {
		if l.Name() == "r1->r2" {
			l.SetRate(50e6)
		}
		if l.Name() == "r2->r1" {
			l.SetRate(50e6)
		}
	}
	cfg := DefaultSpeedtestConfig()
	NewSpeedtestServer(server, cfg.TCP)
	p := NewProber(client)
	var res SpeedtestResult
	doneAt := sim.Time(0)
	RunSpeedtest(p, []netem.Addr{server.Addr()}, cfg, func(r SpeedtestResult) {
		res = r
		doneAt = s.Now()
	})
	s.RunFor(2 * time.Minute)
	if doneAt == 0 {
		t.Fatal("speedtest did not finish")
	}
	if res.Server != server.Addr() {
		t.Errorf("server = %v", res.Server)
	}
	if res.DownloadMbps < 30 || res.DownloadMbps > 50 {
		t.Errorf("download = %.1f Mbit/s, want ~40-48 on a 50 Mbit/s bottleneck", res.DownloadMbps)
	}
	if res.UploadMbps < 30 || res.UploadMbps > 50 {
		t.Errorf("upload = %.1f Mbit/s", res.UploadMbps)
	}
	if res.PingRTT < 60*time.Millisecond || res.PingRTT > 61*time.Millisecond {
		t.Errorf("ping = %v", res.PingRTT)
	}
}

func TestSpeedtestPicksNearestServer(t *testing.T) {
	s, client, _, nw := testPath(t, false, false)
	far := nw.NewNode("far", netem.MustParseAddr("9.9.9.9"))
	r2 := nw.NodeByName("r2")
	f1, f2 := nw.Connect(r2, far, netem.LinkConfig{Delay: netem.ConstantDelay(100 * time.Millisecond)})
	r2.AddRoute(far.Addr(), f1)
	far.SetDefaultRoute(f2)
	far.EchoResponder = true
	near := nw.NodeByName("server")
	stCfg := DefaultSpeedtestConfig()
	NewSpeedtestServer(near, stCfg.TCP)
	NewSpeedtestServer(far, stCfg.TCP)

	p := NewProber(client)
	var res SpeedtestResult
	RunSpeedtest(p, []netem.Addr{far.Addr(), near.Addr()}, stCfg, func(r SpeedtestResult) { res = r })
	s.RunFor(2 * time.Minute)
	if res.Server != near.Addr() {
		t.Errorf("selected %v, want the near server", res.Server)
	}
}

func TestH3DownloadAndUpload(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	srv := NewH3Server(server, 443, quic.DefaultConfig())

	var down TransferResult
	H3Download(client, srv, server.Addr(), 443, 4<<20, quic.DefaultConfig(), func(r TransferResult) { down = r })
	s.RunFor(2 * time.Minute)
	if !down.Completed || down.Bytes != 4<<20 {
		t.Fatalf("download: %+v", down)
	}
	if down.GoodputMbps < 50 {
		t.Errorf("download goodput %.1f Mbit/s", down.GoodputMbps)
	}
	if len(down.RTTs.Samples) == 0 {
		t.Error("no server-side RTT samples for download")
	}
	if len(down.ReceiverCapture.Received) == 0 {
		t.Error("no client-side capture for download")
	}

	var up TransferResult
	H3Upload(client, srv, server.Addr(), 443, 2<<20, quic.DefaultConfig(), func(r TransferResult) { up = r })
	s.RunFor(2 * time.Minute)
	if !up.Completed {
		t.Fatalf("upload incomplete")
	}
	if len(up.RTTs.Samples) == 0 {
		t.Error("no client-side RTT samples for upload")
	}
	if len(up.ReceiverCapture.Received) == 0 {
		t.Error("no server-side capture for upload")
	}
}

func TestMessageWorkloadRate(t *testing.T) {
	s, client, server, _ := testPath(t, false, false)
	srv := NewH3Server(server, 443, quic.DefaultConfig())
	var res MessageSessionResult
	finished := false
	MessagesUpload(client, srv, server.Addr(), 443, 25, 10*time.Second, 5000, 25000, quic.DefaultConfig(), func(r MessageSessionResult) {
		res = r
		finished = true
	})
	s.RunFor(time.Minute)
	if !finished {
		t.Fatal("session did not finish")
	}
	// 25 msg/s x 10 s of 5-25 kB: the server must have received about
	// 250 x ~15 kB ≈ 3.75 MB of payload.
	var bytes uint64
	if res.Server == nil {
		t.Fatal("no server connection")
	}
	bytes = res.Server.Stats.BytesReceived
	lo, hi := uint64(2<<20), uint64(8<<20)
	if bytes < lo || bytes > hi {
		t.Errorf("server received %d bytes, want in [%d, %d]", bytes, lo, hi)
	}
	if len(res.RTTs.Samples) == 0 {
		t.Error("no RTT samples")
	}
	// Mean bitrate ~3 Mbit/s, far below capacity: RTT must stay near
	// the idle 60ms.
	med := median(res.RTTs.Milliseconds())
	if med < 55 || med > 110 {
		t.Errorf("median message RTT %.1fms, want near path RTT", med)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
