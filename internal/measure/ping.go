// Package measure implements the paper's measurement tools over the
// emulated network: an ICMP prober (ping), traceroute, a Tracebox-style
// middlebox detector with PEP detection, an Ookla-style parallel-TCP
// speedtest, and the QUIC bulk (HTTP/3-like) and low-rate message
// workloads with capture hooks.
package measure

import (
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// probeObs caches the prober's metric handles; nil when disabled.
type probeObs struct {
	tr   *obs.Tracer
	subj obs.Subj
	sent *obs.Counter
	lost *obs.Counter
	rtt  *obs.Histogram
}

// Prober owns a node's ICMP handler and demultiplexes echo replies and
// quoted errors to the measurement in progress. One Prober per node.
type Prober struct {
	node    *netem.Node
	sched   *sim.Scheduler
	nextSeq int
	icmpID  uint16
	echoCBs map[int]*echoWait
	// errCB receives quoted ICMP errors (time-exceeded, unreachable)
	// for the single outstanding TTL-limited probe.
	errCB func(pkt *netem.Packet)
	// tcpReply receives TCP answers to raw PEP-detection probes.
	tcpReply func(pkt *netem.Packet)

	obs *probeObs
}

// Observe attaches probe metrics (echoes sent/lost, RTT histogram) and
// probe-loss trace events to the prober. A nil sink is a no-op.
func (p *Prober) Observe(s *obs.Sink) {
	if s == nil {
		return
	}
	reg, tr := s.Registry(), s.Tracer()
	p.obs = &probeObs{
		tr:   tr,
		subj: tr.Subject("probe/" + p.node.Name()),
		sent: reg.Counter("probe.echo_sent"),
		lost: reg.Counter("probe.echo_lost"),
		rtt:  reg.Histogram("probe.rtt_ns", obs.DurationBounds()),
	}
}

type echoWait struct {
	p       *Prober
	seq     int
	sentAt  sim.Time
	cb      func(rtt time.Duration, ok bool)
	timeout sim.TimerHandle
}

// echoTimeout is the sim.EventFunc trampoline for echo expiry; the
// per-echo state rides in the echoWait record itself, so arming the
// timeout allocates no closure.
func echoTimeout(arg any) {
	w := arg.(*echoWait)
	if _, pending := w.p.echoCBs[w.seq]; pending {
		delete(w.p.echoCBs, w.seq)
		if o := w.p.obs; o != nil {
			o.lost.Inc()
			o.tr.Emit(w.p.sched.Now(), obs.KindProbeLost, o.subj, int64(w.seq), 0)
		}
		w.cb(0, false)
	}
}

// NewProber binds the prober to the node's ICMP traffic.
func NewProber(node *netem.Node) *Prober {
	p := &Prober{
		node:    node,
		sched:   node.Scheduler(),
		echoCBs: make(map[int]*echoWait),
		icmpID:  100,
	}
	node.Bind(netem.ProtoICMP, 0, p.receive)
	return p
}

// Node returns the prober's node.
func (p *Prober) Node() *netem.Node { return p.node }

func (p *Prober) receive(pkt *netem.Packet) {
	icmp, ok := pkt.Payload.(*netem.ICMP)
	if !ok {
		return
	}
	switch icmp.Type {
	case netem.ICMPEchoReply:
		if w, ok := p.echoCBs[icmp.Seq]; ok {
			delete(p.echoCBs, icmp.Seq)
			w.timeout.Stop()
			rtt := p.sched.Now().Sub(w.sentAt)
			if p.obs != nil {
				p.obs.rtt.Observe(int64(rtt))
			}
			w.cb(rtt, true)
		}
	case netem.ICMPTimeExceeded, netem.ICMPDestUnreachable:
		if p.errCB != nil {
			p.errCB(pkt)
		}
	}
}

// PingTimeout is how long an echo waits before it counts as lost.
const PingTimeout = 3 * time.Second

// Echo sends one ICMP echo request; cb runs exactly once with the RTT or
// ok=false on timeout.
func (p *Prober) Echo(dst netem.Addr, size int, cb func(rtt time.Duration, ok bool)) {
	seq := p.nextSeq
	p.nextSeq++
	if p.obs != nil {
		p.obs.sent.Inc()
	}
	w := &echoWait{p: p, seq: seq, sentAt: p.sched.Now(), cb: cb}
	w.timeout = p.sched.AfterFunc(PingTimeout, echoTimeout, w)
	p.echoCBs[seq] = w
	nw := p.node.Network()
	pkt := nw.NewPacket()
	pkt.Dst = dst
	pkt.SrcPort = p.icmpID // fixed ICMP identifier, like real ping: one NAT mapping per prober
	pkt.Proto = netem.ProtoICMP
	pkt.Size = size
	body := nw.NewICMP()
	body.Type, body.Seq = netem.ICMPEchoRequest, seq
	pkt.Payload = body
	p.node.Send(pkt)
}

// PingResult is one ping measurement.
type PingResult struct {
	Target netem.Addr
	At     sim.Time
	RTT    time.Duration
	OK     bool
}

// Ping sends count echoes back-to-back (like `ping -c count`) and calls
// done with all results once the last reply or timeout lands.
func (p *Prober) Ping(dst netem.Addr, count int, done func([]PingResult)) {
	results := make([]PingResult, 0, count)
	var next func(i int)
	next = func(i int) {
		if i >= count {
			done(results)
			return
		}
		at := p.sched.Now()
		p.Echo(dst, 64, func(rtt time.Duration, ok bool) {
			results = append(results, PingResult{Target: dst, At: at, RTT: rtt, OK: ok})
			// Standard ping spaces probes by 1s; a reply arriving
			// earlier advances immediately in flood-less fashion.
			next(i + 1)
		})
	}
	next(0)
}

// Monitor runs the paper's anchor campaign: every interval, ping each
// target probes times, delivering each result to onResult. It stops when
// the scheduler passes `until`.
func (p *Prober) Monitor(targets []netem.Addr, interval time.Duration, probes int, until sim.Time, onResult func(PingResult)) {
	var round func()
	round = func() {
		if p.sched.Now() >= until {
			return
		}
		for _, dst := range targets {
			dst := dst
			p.Ping(dst, probes, func(rs []PingResult) {
				for _, r := range rs {
					onResult(r)
				}
			})
		}
		p.sched.After(interval, round)
	}
	round()
}
