package measure

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

func TestEchoTimeoutFiresOnce(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := netem.New(s)
	a := nw.NewNode("a", netem.MustParseAddr("10.0.0.1"))
	// No route at all: the echo is answered with dest-unreachable to
	// nowhere; the prober must time out exactly once.
	p := NewProber(a)
	calls := 0
	p.Echo(netem.MustParseAddr("10.9.9.9"), 64, func(rtt time.Duration, ok bool) {
		calls++
		if ok {
			t.Error("echo into the void reported success")
		}
	})
	s.RunFor(10 * time.Second)
	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", calls)
	}
}

func TestConcurrentEchoesDemux(t *testing.T) {
	s := sim.NewScheduler(2)
	nw := netem.New(s)
	a := nw.NewNode("a", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", netem.MustParseAddr("10.0.0.2"))
	c := nw.NewNode("c", netem.MustParseAddr("10.0.0.3"))
	ab, ba := nw.Connect(a, b, netem.LinkConfig{Delay: netem.ConstantDelay(30 * time.Millisecond)})
	ac, ca := nw.Connect(a, c, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
	a.AddRoute(b.Addr(), ab)
	a.AddRoute(c.Addr(), ac)
	b.SetDefaultRoute(ba)
	c.SetDefaultRoute(ca)
	b.EchoResponder = true
	c.EchoResponder = true

	p := NewProber(a)
	var rttB, rttC time.Duration
	p.Echo(b.Addr(), 64, func(rtt time.Duration, ok bool) { rttB = rtt })
	p.Echo(c.Addr(), 64, func(rtt time.Duration, ok bool) { rttC = rtt })
	s.RunFor(5 * time.Second)

	if rttB != 60*time.Millisecond || rttC != 10*time.Millisecond {
		t.Fatalf("rtts = %v / %v: concurrent echoes crossed wires", rttB, rttC)
	}
}

func TestTracerouteTimeoutHop(t *testing.T) {
	s := sim.NewScheduler(3)
	nw := netem.New(s)
	a := nw.NewNode("a", netem.MustParseAddr("10.0.0.1"))
	r := nw.NewNode("r", netem.MustParseAddr("10.0.0.2"))
	b := nw.NewNode("b", netem.MustParseAddr("10.0.0.3"))
	ar, ra := nw.Connect(a, r, netem.LinkConfig{Delay: netem.ConstantDelay(time.Millisecond)})
	rb, br := nw.Connect(r, b, netem.LinkConfig{Delay: netem.ConstantDelay(time.Millisecond)})
	a.SetDefaultRoute(ar)
	r.AddRoute(a.Addr(), ra)
	r.SetDefaultRoute(rb)
	b.SetDefaultRoute(br)
	// The middle router silently eats its own ICMP errors: simulate a
	// non-responding hop by making r drop ICMP it originates.
	r.AttachDevice(netem.DeviceFunc(func(n *netem.Node, pkt *netem.Packet) bool {
		return true
	}))
	// Silencing r properly: drop time-exceeded packets sourced at r on a.
	a.AttachDevice(netem.DeviceFunc(func(n *netem.Node, pkt *netem.Packet) bool {
		if pkt.Proto == netem.ProtoICMP && pkt.Src == r.Addr() {
			if ic, ok := pkt.Payload.(*netem.ICMP); ok && ic.Type == netem.ICMPTimeExceeded {
				return false
			}
		}
		return true
	}))

	p := NewProber(a)
	var hops []Hop
	p.Traceroute(b.Addr(), 8, func(hs []Hop) { hops = hs })
	s.RunFor(time.Minute)
	if len(hops) != 2 {
		t.Fatalf("hops = %d, want 2 (* then destination)", len(hops))
	}
	if !hops[0].Timeout {
		t.Error("hop 1 should be a timeout (*)")
	}
	if !hops[1].Reached {
		t.Error("hop 2 should reach the destination")
	}
}
