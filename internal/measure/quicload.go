package measure

import (
	"encoding/binary"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/trace"
)

// The H3-like request protocol: the client opens a bidirectional stream
// and sends a 9-byte request (1 direction byte + 8 size bytes). For
// downloads the server responds with size bytes and FIN; for uploads the
// client follows the request with size bytes and FIN, and the server
// answers a 1-byte receipt.
const (
	reqDownload = 0x01
	reqUpload   = 0x02
	reqMessages = 0x03
)

// H3Server serves bulk transfers and the message workload over QUIC.
type H3Server struct {
	Endpoint *quic.Endpoint
	// Conns exposes accepted connections for capture attachment.
	Conns []*quic.Connection
	// OnConn, when set, observes each accepted connection before data.
	OnConn func(*quic.Connection)
	rng    *sim.RNG
}

// NewH3Server listens on node:port with the given transport config.
func NewH3Server(node *netem.Node, port uint16, cfg quic.Config) *H3Server {
	srv := &H3Server{
		Endpoint: quic.NewEndpoint(node, port),
		rng:      node.Scheduler().RNG().Stream(node.Name() + "/h3srv"),
	}
	srv.Endpoint.Listen(cfg, func(c *quic.Connection) {
		srv.Conns = append(srv.Conns, c)
		if srv.OnConn != nil {
			srv.OnConn(c)
		}
		c.OnStream = func(st *quic.Stream) { srv.handleStream(c, st) }
	})
	return srv
}

func (srv *H3Server) handleStream(c *quic.Connection, st *quic.Stream) {
	var header []byte
	var size uint64
	var dir byte
	var got uint64
	st.OnData = func(data []byte, fin bool) {
		if dir == 0 {
			header = append(header, data...)
			if len(header) < 9 {
				return
			}
			dir = header[0]
			size = binary.BigEndian.Uint64(header[1:9])
			data = header[9:]
			switch dir {
			case reqDownload:
				st.WriteZeroes(int(size))
				st.Close()
				return
			case reqMessages:
				srv.runMessageSender(c, binary.BigEndian.Uint64(header[1:9]))
				return
			}
		}
		// Upload accounting.
		got += uint64(len(data))
		if fin && dir == reqUpload {
			st.Write([]byte{0xAA}) // receipt
			st.Close()
		}
	}
}

// runMessageSender produces the paper's messaging workload server-side:
// params packs rate (msgs/s, high 16 bits), duration seconds (next 16),
// min and max size in bytes (low 32, 16 each, in units of 100 bytes).
func (srv *H3Server) runMessageSender(c *quic.Connection, params uint64) {
	rate := int(params >> 48)
	durS := int(params >> 32 & 0xffff)
	minSz := int(params>>16&0xffff) * 100
	maxSz := int(params&0xffff) * 100
	SendMessages(c, srv.rng, rate, time.Duration(durS)*time.Second, minSz, maxSz, nil)
}

// MessageParams encodes the message-workload parameters for the request.
func MessageParams(rate int, dur time.Duration, minSize, maxSize int) uint64 {
	return uint64(rate)<<48 | uint64(dur/time.Second)<<32 |
		uint64(minSize/100)<<16 | uint64(maxSize/100)
}

// SendMessages opens a fresh stream every 1/rate seconds carrying a
// uniformly sized message in [minSize, maxSize], for dur. This mirrors
// the paper's real-time-video-like workload: 25 messages/s of 5–25 kB
// for two minutes (~3 Mbit/s). done, if non-nil, runs after the last
// message is queued.
func SendMessages(c *quic.Connection, rng *sim.RNG, rate int, dur time.Duration, minSize, maxSize int, done func()) {
	sched := c.Sched()
	interval := time.Duration(int64(time.Second) / int64(rate))
	total := int(dur / interval)
	count := 0
	var tick func()
	tick = func() {
		if c.Closed() || count >= total {
			if done != nil {
				done()
			}
			return
		}
		count++
		size := minSize + rng.IntN(maxSize-minSize+1)
		st := c.OpenStream()
		st.WriteZeroes(size)
		st.Close()
		sched.After(interval, tick)
	}
	tick()
}

// TransferResult summarizes one bulk transfer.
type TransferResult struct {
	Start, End  sim.Time
	Bytes       uint64
	GoodputMbps float64
	// RTTs holds the per-ACK samples observed at the data sender.
	RTTs *trace.RTTRecorder
	// ReceiverCapture holds the receive-side packet events for loss
	// analysis (client side for downloads, server side for uploads).
	ReceiverCapture *trace.Capture
	// Client is the client connection (stats live here).
	Client *quic.Connection
	// Server is the peer connection.
	Server *quic.Connection
	// Completed reports whether the FIN was delivered.
	Completed bool
}

// H3Download runs one bulk download of size bytes from the server
// reachable at addr:port, attaching captures and the RTT recorder to the
// appropriate sides. The server's H3Server must be passed so the transfer
// can hook the accepted connection (the paper captured on the server for
// the download RTT series).
func H3Download(node *netem.Node, srv *H3Server, addr netem.Addr, port uint16, size int, cfg quic.Config, done func(TransferResult)) {
	res := TransferResult{
		RTTs:            &trace.RTTRecorder{},
		ReceiverCapture: &trace.Capture{},
	}
	srv.OnConn = func(sc *quic.Connection) {
		res.Server = sc
		res.RTTs.Attach(sc) // download RTTs are measured at the sending server
	}
	ep := quic.NewEndpoint(node, ephemeralUDP(node))
	conn := ep.Dial(addr, port, cfg)
	res.Client = conn
	res.ReceiverCapture.AttachReceiver(conn)
	conn.OnEstablished = func() {
		res.Start = node.Scheduler().Now()
		st := conn.OpenStream()
		req := make([]byte, 9)
		req[0] = reqDownload
		binary.BigEndian.PutUint64(req[1:], uint64(size))
		st.Write(req)
		st.OnData = func(data []byte, fin bool) {
			res.Bytes += uint64(len(data))
			if fin {
				res.End = node.Scheduler().Now()
				res.Completed = true
				if d := res.End.Sub(res.Start).Seconds(); d > 0 {
					res.GoodputMbps = float64(res.Bytes) * 8 / d / 1e6
				}
				srv.OnConn = nil
				conn.Close(0, "done")
				ep.Close()
				done(res)
			}
		}
	}
}

// H3Upload runs one bulk upload of size bytes to the server.
func H3Upload(node *netem.Node, srv *H3Server, addr netem.Addr, port uint16, size int, cfg quic.Config, done func(TransferResult)) {
	res := TransferResult{
		RTTs:            &trace.RTTRecorder{},
		ReceiverCapture: &trace.Capture{},
	}
	srv.OnConn = func(sc *quic.Connection) {
		res.Server = sc
		res.ReceiverCapture.AttachReceiver(sc) // server receives the upload
	}
	ep := quic.NewEndpoint(node, ephemeralUDP(node))
	conn := ep.Dial(addr, port, cfg)
	res.Client = conn
	res.RTTs.Attach(conn) // upload RTTs measured at the sending client
	conn.OnEstablished = func() {
		res.Start = node.Scheduler().Now()
		st := conn.OpenStream()
		req := make([]byte, 9)
		req[0] = reqUpload
		binary.BigEndian.PutUint64(req[1:], uint64(size))
		st.Write(req)
		st.WriteZeroes(size)
		st.Close()
		st.OnData = func(data []byte, fin bool) {
			// The 1-byte receipt marks server-side completion.
			if len(data) > 0 {
				res.End = node.Scheduler().Now()
				res.Completed = true
				res.Bytes = uint64(size)
				if d := res.End.Sub(res.Start).Seconds(); d > 0 {
					res.GoodputMbps = float64(res.Bytes) * 8 / d / 1e6
				}
				srv.OnConn = nil
				conn.Close(0, "done")
				ep.Close()
				done(res)
			}
		}
	}
}

// MessageSessionResult summarizes one messaging session.
type MessageSessionResult struct {
	// RTTs are the sender-side per-ACK samples.
	RTTs *trace.RTTRecorder
	// ReceiverCapture records receive-side packets for loss analysis.
	ReceiverCapture *trace.Capture
	Client          *quic.Connection
	Server          *quic.Connection
}

// MessagesDownload runs the message workload server→client.
func MessagesDownload(node *netem.Node, srv *H3Server, addr netem.Addr, port uint16, rate int, dur time.Duration, minSize, maxSize int, cfg quic.Config, done func(MessageSessionResult)) {
	res := MessageSessionResult{RTTs: &trace.RTTRecorder{}, ReceiverCapture: &trace.Capture{}}
	srv.OnConn = func(sc *quic.Connection) {
		res.Server = sc
		res.RTTs.Attach(sc)
	}
	ep := quic.NewEndpoint(node, ephemeralUDP(node))
	conn := ep.Dial(addr, port, cfg)
	res.Client = conn
	res.ReceiverCapture.AttachReceiver(conn)
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		req := make([]byte, 9)
		req[0] = reqMessages
		binary.BigEndian.PutUint64(req[1:], MessageParams(rate, dur, minSize, maxSize))
		st.Write(req)
		st.Close()
		srv.OnConn = nil
	}
	node.Scheduler().After(dur+10*time.Second, func() {
		conn.Close(0, "done")
		ep.Close()
		done(res)
	})
}

// MessagesUpload runs the message workload client→server.
func MessagesUpload(node *netem.Node, srv *H3Server, addr netem.Addr, port uint16, rate int, dur time.Duration, minSize, maxSize int, cfg quic.Config, done func(MessageSessionResult)) {
	res := MessageSessionResult{RTTs: &trace.RTTRecorder{}, ReceiverCapture: &trace.Capture{}}
	srv.OnConn = func(sc *quic.Connection) {
		res.Server = sc
		res.ReceiverCapture.AttachReceiver(sc)
		srv.OnConn = nil
	}
	ep := quic.NewEndpoint(node, ephemeralUDP(node))
	conn := ep.Dial(addr, port, cfg)
	res.Client = conn
	res.RTTs.Attach(conn)
	rng := node.Scheduler().RNG().Stream(node.Name() + "/msgs")
	conn.OnEstablished = func() {
		SendMessages(conn, rng, rate, dur, minSize, maxSize, nil)
	}
	node.Scheduler().After(dur+10*time.Second, func() {
		conn.Close(0, "done")
		ep.Close()
		done(res)
	})
}

// ephemeralUDP hands out per-node client UDP ports. The counter lives on
// the node itself so independent simulations never share an allocator.
func ephemeralUDP(node *netem.Node) uint16 {
	return node.EphemeralPort(netem.ProtoUDP, 52000)
}
