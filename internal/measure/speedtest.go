package measure

import (
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

// Speedtest ports: one service pushes (download test), the other sinks
// (upload test).
const (
	SpeedtestDownPort = 8080
	SpeedtestUpPort   = 8081
)

// SpeedtestServer hosts the two speedtest services on a node.
type SpeedtestServer struct {
	Node *netem.Node
}

// NewSpeedtestServer installs the download and upload services. The
// download service pushes bytes until the client aborts; the upload
// service sinks whatever arrives.
func NewSpeedtestServer(node *netem.Node, cfg tcpsim.Config) *SpeedtestServer {
	// Push service: on connect, keep ~4 MB of send backlog queued.
	tcpsim.Listen(node, SpeedtestDownPort, cfg, func(c *tcpsim.Conn) {
		sched := node.Scheduler()
		var top func()
		top = func() {
			if c.State() == tcpsim.StateClosed {
				return
			}
			c.Write(4 << 20)
			sched.After(100*time.Millisecond, top)
		}
		c.OnEstablished = func() { top() }
	})
	// Sink service: nothing to do; the conn counts delivery itself.
	tcpsim.Listen(node, SpeedtestUpPort, cfg, nil)
	return &SpeedtestServer{Node: node}
}

// SpeedtestConfig parameterizes a client test run, following the Ookla
// CLI's shape: several parallel TCP connections, a warmup that is
// excluded from the measurement, and a fixed measuring window.
type SpeedtestConfig struct {
	// Connections is the number of parallel TCP connections (Ookla uses
	// at least 4).
	Connections int
	// Warmup is excluded from the rate computation (ramp-up).
	Warmup time.Duration
	// Window is the measured interval after warmup.
	Window time.Duration
	// TCP is the client TCP configuration.
	TCP tcpsim.Config
}

// DefaultSpeedtestConfig mirrors the Ookla CLI defaults.
func DefaultSpeedtestConfig() SpeedtestConfig {
	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 1
	return SpeedtestConfig{
		Connections: 4,
		Warmup:      2 * time.Second,
		Window:      10 * time.Second,
		TCP:         cfg,
	}
}

// SpeedtestResult is one test outcome.
type SpeedtestResult struct {
	At           sim.Time
	Server       netem.Addr
	DownloadMbps float64
	UploadMbps   float64
	PingRTT      time.Duration
}

// RunSpeedtest selects the nearest server by ping, then measures download
// and upload back to back, delivering the result to done.
func RunSpeedtest(p *Prober, servers []netem.Addr, cfg SpeedtestConfig, done func(SpeedtestResult)) {
	if len(servers) == 0 {
		done(SpeedtestResult{})
		return
	}
	// Probe all candidates, pick the lowest RTT (the Ookla selection).
	type cand struct {
		addr netem.Addr
		rtt  time.Duration
		ok   bool
	}
	cands := make([]cand, len(servers))
	remaining := len(servers)
	for i, srv := range servers {
		i, srv := i, srv
		p.Echo(srv, 64, func(rtt time.Duration, ok bool) {
			cands[i] = cand{addr: srv, rtt: rtt, ok: ok}
			remaining--
			if remaining == 0 {
				best := -1
				for j, c := range cands {
					if c.ok && (best < 0 || c.rtt < cands[best].rtt) {
						best = j
					}
				}
				if best < 0 {
					done(SpeedtestResult{At: p.sched.Now()})
					return
				}
				runAgainst(p, cands[best].addr, cands[best].rtt, cfg, done)
			}
		})
	}
}

func runAgainst(p *Prober, server netem.Addr, rtt time.Duration, cfg SpeedtestConfig, done func(SpeedtestResult)) {
	res := SpeedtestResult{At: p.sched.Now(), Server: server, PingRTT: rtt}
	measureDirection(p.node, server, SpeedtestDownPort, cfg, false, func(mbps float64) {
		res.DownloadMbps = mbps
		measureDirection(p.node, server, SpeedtestUpPort, cfg, true, func(mbps float64) {
			res.UploadMbps = mbps
			done(res)
		})
	})
}

// measureDirection opens cfg.Connections parallel connections and counts
// delivered application bytes in the measuring window. For uploads the
// client pushes and counts acknowledged bytes at the sender.
func measureDirection(node *netem.Node, server netem.Addr, port uint16, cfg SpeedtestConfig, upload bool, done func(mbps float64)) {
	sched := node.Scheduler()
	n := cfg.Connections
	if n <= 0 {
		n = 4
	}
	conns := make([]*tcpsim.Conn, 0, n)
	var measuring bool
	var bytes uint64

	for i := 0; i < n; i++ {
		c := tcpsim.Dial(node, server, port, cfg.TCP)
		conns = append(conns, c)
		if upload {
			c.OnEstablished = func() {
				var top func()
				top = func() {
					if c.State() == tcpsim.StateClosed {
						return
					}
					c.Write(4 << 20)
					sched.After(100*time.Millisecond, top)
				}
				top()
			}
			// Count bytes the server acknowledged: sample snd.una growth.
		} else {
			c.OnData = func(nn int, fin bool) {
				if measuring {
					bytes += uint64(nn)
				}
			}
		}
	}

	var unaAtStart []uint64
	sched.After(cfg.Warmup, func() {
		measuring = true
		if upload {
			unaAtStart = make([]uint64, len(conns))
			for i, c := range conns {
				unaAtStart[i] = c.DebugUna()
			}
		}
		sched.After(cfg.Window, func() {
			measuring = false
			if upload {
				for i, c := range conns {
					bytes += c.DebugUna() - unaAtStart[i]
				}
			}
			for _, c := range conns {
				c.Abort()
			}
			done(float64(bytes) * 8 / cfg.Window.Seconds() / 1e6)
		})
	})
}
