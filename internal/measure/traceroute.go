package measure

import (
	"fmt"
	"strconv"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/tcpsim"
)

// Hop is one traceroute step.
type Hop struct {
	TTL     int
	Addr    netem.Addr
	RTT     time.Duration
	Reached bool // destination answered (dest-unreachable / port probe)
	Timeout bool
	// Quoted is the probe as the responding node saw it — the Tracebox
	// evidence for middlebox rewriting.
	Quoted *netem.Packet
}

// probeTimeout bounds each TTL-limited probe.
const probeTimeout = 3 * time.Second

// traceSrcPort is the constant source port of traceroute probes: keeping
// it fixed makes NAT mappings — and therefore checksum residues —
// comparable across hops.
const traceSrcPort = 40000

// Traceroute walks the path to dst with TTL-limited UDP probes
// (serialized, one outstanding at a time) and delivers the hop list.
func (p *Prober) Traceroute(dst netem.Addr, maxTTL int, done func([]Hop)) {
	var hops []Hop
	basePort := uint16(33434)
	var step func(ttl int)
	step = func(ttl int) {
		if ttl > maxTTL {
			p.errCB = nil
			done(hops)
			return
		}
		sent := p.sched.Now()
		answered := false
		timeout := p.sched.After(probeTimeout, func() {
			if answered {
				return
			}
			answered = true
			p.errCB = nil
			hops = append(hops, Hop{TTL: ttl, Timeout: true})
			step(ttl + 1)
		})
		p.errCB = func(pkt *netem.Packet) {
			if answered {
				return
			}
			answered = true
			timeout.Stop()
			p.errCB = nil
			icmp := pkt.Payload.(*netem.ICMP)
			h := Hop{
				TTL:     ttl,
				Addr:    pkt.Src,
				RTT:     p.sched.Now().Sub(sent),
				Reached: icmp.Type == netem.ICMPDestUnreachable,
				Quoted:  icmp.Quoted,
			}
			hops = append(hops, h)
			if h.Reached {
				done(hops)
				return
			}
			step(ttl + 1)
		}
		pkt := p.node.NewPacket()
		pkt.Dst = dst
		pkt.DstPort = basePort + uint16(ttl)
		pkt.SrcPort = traceSrcPort
		pkt.Proto = netem.ProtoUDP
		pkt.Size = 60
		pkt.TTL = ttl
		p.node.Send(pkt)
	}
	step(1)
}

// FieldChange describes a header modification Tracebox attributes to some
// middlebox at or before a hop.
type FieldChange struct {
	Field    string
	Original string
	Observed string
}

// TraceboxHop augments a traceroute hop with the header diff.
type TraceboxHop struct {
	Hop
	Changes []FieldChange
	// Residue is the checksum delta attributable to translations applied
	// before this hop; it is invariant across probes of the same flow,
	// so distinct non-zero residues along a path count NAT levels.
	Residue uint16
}

// Tracebox runs the middlebox detector: TTL-limited probes whose quoted
// headers are compared against what was sent (Detal et al., IMC 2013).
func (p *Prober) Tracebox(dst netem.Addr, maxTTL int, done func([]TraceboxHop)) {
	p.Traceroute(dst, maxTTL, func(hops []Hop) {
		out := make([]TraceboxHop, 0, len(hops))
		for _, h := range hops {
			th := TraceboxHop{Hop: h}
			if h.Quoted != nil {
				q := h.Quoted
				origSrc := p.node.Addr()
				if q.Src != origSrc {
					th.Changes = append(th.Changes, FieldChange{
						Field: "ip.src", Original: origSrc.String(), Observed: q.Src.String(),
					})
				}
				origSport := uint16(traceSrcPort)
				if q.SrcPort != origSport {
					th.Changes = append(th.Changes, FieldChange{
						Field:    "udp.sport",
						Original: strconv.Itoa(int(origSport)),
						Observed: strconv.Itoa(int(q.SrcPort)),
					})
				}
				origSum := netem.PseudoChecksum(origSrc, q.Dst, origSport, q.DstPort, q.Proto)
				if q.Checksum != origSum {
					th.Changes = append(th.Changes, FieldChange{
						Field:    "udp.checksum",
						Original: fmt.Sprintf("%#04x", origSum),
						Observed: fmt.Sprintf("%#04x", q.Checksum),
					})
					th.Residue = checksumResidue(origSum, q.Checksum)
				}
			}
			out = append(out, th)
		}
		done(out)
	})
}

// checksumResidue returns the one's-complement difference between two
// internet checksums — the translation fingerprint, independent of the
// per-probe fields that went into the sum.
func checksumResidue(orig, observed uint16) uint16 {
	a, b := uint32(^orig), uint32(^observed)
	d := (b + 0xffff - a) % 0xffff
	if d == 0 {
		return 0xffff // changed but delta folds to zero: still a residue
	}
	return uint16(d)
}

// PEPProbe reports where, along the path, the TCP handshake terminates.
// It sends TTL-limited SYNs: a SYN-ACK arriving while the TTL is smaller
// than the hop distance of the destination reveals a split-connection
// proxy at or before that hop. The paper's finding: on Starlink the
// handshake completes only in the destination network (no PEP); on the
// SatCom access it completes at the proxy.
type PEPProbe struct {
	// SynAckAtTTL is the smallest TTL that produced a SYN-ACK.
	SynAckAtTTL int
	// PathHops is the hop distance to the destination (from traceroute).
	PathHops int
}

// ProxyDetected reports whether the handshake terminated before the
// destination.
func (r PEPProbe) ProxyDetected() bool {
	return r.SynAckAtTTL > 0 && r.SynAckAtTTL < r.PathHops
}

// DetectPEP runs the PEP probe against dst:port.
func (p *Prober) DetectPEP(dst netem.Addr, port uint16, maxTTL int, done func(PEPProbe)) {
	p.Traceroute(dst, maxTTL, func(hops []Hop) {
		res := PEPProbe{PathHops: len(hops)}
		srcPort := uint16(45000)
		var step func(ttl int)
		step = func(ttl int) {
			if ttl > len(hops) {
				p.errCB = nil
				p.node.Unbind(netem.ProtoTCP, srcPort)
				done(res)
				return
			}
			answered := false
			finish := func(gotSynAck bool) {
				if answered {
					return
				}
				answered = true
				p.errCB = nil
				if gotSynAck {
					res.SynAckAtTTL = ttl
					p.node.Unbind(netem.ProtoTCP, srcPort)
					done(res)
					return
				}
				step(ttl + 1)
			}
			timeout := p.sched.After(probeTimeout, func() { finish(false) })
			p.errCB = func(pkt *netem.Packet) {
				timeout.Stop()
				finish(false)
			}
			p.tcpReply = func(pkt *netem.Packet) {
				seg, ok := pkt.Payload.(*tcpsim.Segment)
				if ok && seg.Flags&tcpsim.FlagSYN != 0 && seg.Flags&tcpsim.FlagACK != 0 {
					timeout.Stop()
					finish(true)
				}
			}
			pkt := p.node.NewPacket()
			pkt.Dst = dst
			pkt.DstPort = port
			pkt.SrcPort = srcPort
			pkt.Proto = netem.ProtoTCP
			pkt.Size = 60
			pkt.TTL = ttl
			// The segment stays a literal: probes are rare and the reply
			// path quotes them, so pooling buys nothing here.
			pkt.Payload = &tcpsim.Segment{Flags: tcpsim.FlagSYN, Wnd: 65535}
			p.node.Send(pkt)
		}
		p.node.Bind(netem.ProtoTCP, srcPort, func(pkt *netem.Packet) {
			if p.tcpReply != nil {
				p.tcpReply(pkt)
			}
		})
		step(1)
	})
}
