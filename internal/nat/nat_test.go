package nat

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// topo builds: client(192.168.1.2) - cpe(192.168.1.1, NAT->100.64.0.7)
// - core(100.64.0.1) - server(8.8.8.8).
func topo(t *testing.T) (*sim.Scheduler, *netem.Node, *netem.Node, *NAT) {
	t.Helper()
	s := sim.NewScheduler(3)
	nw := netem.New(s)
	client := nw.NewNode("client", netem.MustParseAddr("192.168.1.2"))
	cpe := nw.NewNode("cpe", netem.MustParseAddr("192.168.1.1"))
	core := nw.NewNode("core", netem.MustParseAddr("100.64.0.1"))
	server := nw.NewNode("server", netem.MustParseAddr("8.8.8.8"))

	d := netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)}
	c2cpe, cpe2c := nw.Connect(client, cpe, d)
	cpe2core, core2cpe := nw.Connect(cpe, core, d)
	core2srv, srv2core := nw.Connect(core, server, d)

	client.SetDefaultRoute(c2cpe)
	cpe.SetDefaultRoute(cpe2core)
	cpe.AddRoute(client.Addr(), cpe2c)
	core.SetDefaultRoute(core2srv)
	core.AddPrefixRoute(netem.MustParseAddr("100.64.0.7"), 32, core2cpe)
	server.SetDefaultRoute(srv2core)

	n := New(netem.MustParseAddr("100.64.0.7"), PrefixInside(netem.MustParseAddr("192.168.0.0"), 16))
	cpe.AttachDevice(n)
	return s, client, server, n
}

func TestNATRewritesAndRestores(t *testing.T) {
	s, client, server, n := topo(t)

	var atServer *netem.Packet
	server.Bind(netem.ProtoUDP, 53, func(p *netem.Packet) {
		atServer = p.Clone()
		// Reply.
		server.Send(&netem.Packet{
			Dst: p.Src, DstPort: p.SrcPort, SrcPort: 53,
			Proto: netem.ProtoUDP, Size: 100, Payload: "answer",
		})
	})
	var back *netem.Packet
	client.Bind(netem.ProtoUDP, 4444, func(p *netem.Packet) { back = p })

	client.Send(&netem.Packet{
		Dst: server.Addr(), DstPort: 53, SrcPort: 4444,
		Proto: netem.ProtoUDP, Size: 100, Payload: "query",
	})
	s.Run()

	if atServer == nil {
		t.Fatal("query not delivered")
	}
	if atServer.Src != netem.MustParseAddr("100.64.0.7") {
		t.Errorf("server saw source %v, want NAT external", atServer.Src)
	}
	if atServer.SrcPort == 4444 {
		t.Error("source port should have been rewritten")
	}
	if atServer.Checksum != netem.PseudoChecksum(atServer.Src, atServer.Dst, atServer.SrcPort, atServer.DstPort, atServer.Proto) {
		t.Error("NAT did not fix the checksum")
	}
	if back == nil {
		t.Fatal("reply not translated back")
	}
	if back.Dst != client.Addr() || back.DstPort != 4444 {
		t.Errorf("reply dst = %v:%d, want client:4444", back.Dst, back.DstPort)
	}
	if n.MappingCount() != 1 {
		t.Errorf("mappings = %d", n.MappingCount())
	}
}

func TestNATMappingStableAcrossPackets(t *testing.T) {
	s, client, server, n := topo(t)
	var ports []uint16
	server.Bind(netem.ProtoUDP, 53, func(p *netem.Packet) { ports = append(ports, p.SrcPort) })
	for i := 0; i < 5; i++ {
		client.Send(&netem.Packet{Dst: server.Addr(), DstPort: 53, SrcPort: 4444, Proto: netem.ProtoUDP, Size: 50})
	}
	client.Send(&netem.Packet{Dst: server.Addr(), DstPort: 53, SrcPort: 5555, Proto: netem.ProtoUDP, Size: 50})
	s.Run()
	if len(ports) != 6 {
		t.Fatalf("server got %d packets", len(ports))
	}
	for i := 1; i < 5; i++ {
		if ports[i] != ports[0] {
			t.Error("same inside tuple must map to the same external port")
		}
	}
	if ports[5] == ports[0] {
		t.Error("different inside tuples must map to different ports")
	}
	if n.MappingCount() != 2 {
		t.Errorf("mappings = %d", n.MappingCount())
	}
}

func TestNATEchoThroughNAT(t *testing.T) {
	s, client, server, _ := topo(t)
	server.EchoResponder = true

	var replyAt sim.Time
	client.Bind(netem.ProtoICMP, 0, func(p *netem.Packet) {
		if icmp := p.Payload.(*netem.ICMP); icmp.Type == netem.ICMPEchoReply {
			replyAt = s.Now()
		}
	})
	client.Send(&netem.Packet{
		Dst: server.Addr(), SrcPort: 77, Proto: netem.ProtoICMP, Size: 64,
		Payload: &netem.ICMP{Type: netem.ICMPEchoRequest, Seq: 1},
	})
	s.Run()
	if replyAt != sim.Time(30*time.Millisecond) {
		t.Fatalf("echo reply at %v, want 30ms (6 hops x 5ms)", replyAt)
	}
}

func TestNATDropsUnsolicitedInbound(t *testing.T) {
	s, client, server, _ := topo(t)
	got := 0
	client.Bind(netem.ProtoUDP, 9999, func(p *netem.Packet) { got++ })
	// Server sends to the NAT external address with a port that has no
	// mapping: must be swallowed.
	server.Send(&netem.Packet{
		Dst: netem.MustParseAddr("100.64.0.7"), DstPort: 12345, SrcPort: 1,
		Proto: netem.ProtoUDP, Size: 50,
	})
	s.Run()
	if got != 0 {
		t.Error("unsolicited inbound packet reached the inside host")
	}
}

func TestNATICMPErrorTranslation(t *testing.T) {
	// A TTL-limited probe from behind the NAT: the ICMP time-exceeded
	// from an outside router must come back, quoting the rewritten
	// packet (the Tracebox observable).
	s, client, _, _ := topo(t)
	var icmpErr *netem.Packet
	client.Bind(netem.ProtoICMP, 0, func(p *netem.Packet) { icmpErr = p })
	client.Send(&netem.Packet{
		Dst: netem.MustParseAddr("8.8.8.8"), DstPort: 33434, SrcPort: 6000,
		Proto: netem.ProtoUDP, Size: 60, TTL: 2, // expires at core
	})
	s.Run()
	if icmpErr == nil {
		t.Fatal("ICMP error did not come back through the NAT")
	}
	icmp := icmpErr.Payload.(*netem.ICMP)
	if icmp.Type != netem.ICMPTimeExceeded {
		t.Fatalf("got %v", icmp.Type)
	}
	if icmp.Quoted.Src != client.Addr() {
		t.Errorf("quoted source = %v, want restored to the client (RFC 5508)", icmp.Quoted.Src)
	}
	origSum := netem.PseudoChecksum(client.Addr(), netem.MustParseAddr("8.8.8.8"), 6000, 33434, netem.ProtoUDP)
	if icmp.Quoted.Checksum == origSum {
		t.Error("quoted checksum should differ from the original (NAT fixed it up)")
	}
}
