package nat

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// The tests in this file exercise the NAT's state table under pressure —
// expiry of idle mappings, port allocation after a pathological eviction,
// and the reply-path keepalive — directly against the unexported
// machinery, so they can set up table states that would take hours of
// simulated traffic to reach through packets.

func pressureNAT() *NAT {
	return New(netem.MustParseAddr("100.64.0.7"),
		PrefixInside(netem.MustParseAddr("192.168.0.0"), 16))
}

func outboundUDP(srcPort uint16) *netem.Packet {
	return &netem.Packet{
		Src: netem.MustParseAddr("192.168.1.2"), SrcPort: srcPort,
		Dst: netem.MustParseAddr("8.8.8.8"), DstPort: 53,
		Proto: netem.ProtoUDP, Size: 50,
	}
}

func TestNATExpiresIdleMappings(t *testing.T) {
	n := pressureNAT()
	n.now = 0
	n.translateOut(outboundUDP(4444))
	stale := n.table[mapKey{addr: netem.MustParseAddr("192.168.1.2"), port: 4444, proto: netem.ProtoUDP}]

	// A second flow refreshes itself just before the expiry sweep.
	n.now = sim.Time(4 * time.Minute)
	n.translateOut(outboundUDP(5555))

	n.now = sim.Time(6 * time.Minute)
	n.expire()
	if n.MappingCount() != 1 {
		t.Fatalf("mappings after expiry = %d, want 1 (idle flow dropped, fresh kept)", n.MappingCount())
	}
	if _, alive := n.reverse[stale]; alive {
		t.Error("idle mapping survived an expiry sweep past MappingTimeout")
	}
}

// TestNATAllocPortAfterEviction drives allocPort into its evict-everything
// fallback with nextPort positioned so the post-eviction increment wraps
// the uint16. The wrap guard must kick in: without it the NAT hands out
// port 0 (and then the whole reserved range below 10000).
func TestNATAllocPortAfterEviction(t *testing.T) {
	n := pressureNAT()
	n.now = sim.Time(time.Hour)
	// Occupy every allocatable port with a fresh mapping so neither the
	// expiry sweep nor the scan loop can find a free one.
	for p := 10000; p <= 65535; p++ {
		ext := uint16(p)
		key := mapKey{addr: netem.MustParseAddr("192.168.1.2"), port: ext, proto: netem.ProtoUDP}
		n.table[key] = ext
		n.reverse[ext] = key
		n.lastUsed[ext] = n.now
	}
	// 1<<17 scan tries over the 55536-port cycle starting here end on
	// 65535, so the eviction path's increment is exactly the wrapping one.
	n.nextPort = 45535

	got := n.allocPort()
	if got < 10000 {
		t.Fatalf("allocPort after eviction returned %d, want a port >= 10000", got)
	}
	if n.MappingCount() != 0 {
		t.Errorf("eviction left %d mappings, want 0", n.MappingCount())
	}
}

// TestNATEchoReplyRefreshesMapping pins the reply-path keepalive for ICMP
// echo: a ping flow whose inbound replies are its only recent traffic must
// not expire mid-conversation.
func TestNATEchoReplyRefreshesMapping(t *testing.T) {
	n := pressureNAT()
	n.now = 0
	out := &netem.Packet{
		Src: netem.MustParseAddr("192.168.1.2"), SrcPort: 77,
		Dst:   netem.MustParseAddr("8.8.8.8"),
		Proto: netem.ProtoICMP, Size: 64,
		Payload: &netem.ICMP{Type: netem.ICMPEchoRequest, Seq: 1},
	}
	n.translateOut(out)
	ext := out.SrcPort

	// Only reply traffic from here on.
	n.now = sim.Time(4 * time.Minute)
	reply := &netem.Packet{
		Src: netem.MustParseAddr("8.8.8.8"), Dst: n.External, DstPort: ext,
		Proto: netem.ProtoICMP, Size: 64,
		Payload: &netem.ICMP{Type: netem.ICMPEchoReply, Seq: 1},
	}
	if !n.translateIn(reply) {
		t.Fatal("echo reply not translated")
	}
	if reply.Dst != netem.MustParseAddr("192.168.1.2") || reply.DstPort != 77 {
		t.Fatalf("reply translated to %v:%d, want inside host 192.168.1.2:77", reply.Dst, reply.DstPort)
	}

	// 8 minutes after creation but only 4 after the last reply: the sweep
	// must keep the mapping alive.
	n.now = sim.Time(8 * time.Minute)
	n.expire()
	if n.MappingCount() != 1 {
		t.Fatal("mapping kept alive only by echo replies expired mid-conversation")
	}
}
