// Package netem is a deterministic packet-level network emulator driven by
// the sim discrete-event kernel.
//
// A Network is a set of Nodes connected by unidirectional Links. Links
// model a serialization rate, a (possibly time-varying) propagation delay,
// a DropTail egress queue, stochastic loss processes and outages. Nodes
// forward packets with static routes, decrement TTLs and emit ICMP-like
// errors, deliver to bound protocol handlers, and run middlebox Devices
// (NATs, PEPs, shapers) in transit — everything the paper's traceroute /
// Tracebox / ping methodology needs to observe.
//
// The emulator is intentionally not a byte-accurate reimplementation of
// IP: headers carry exactly the fields the reproduced experiments can
// observe (addresses, ports, TTL, a checksum that NATs must fix up, wire
// sizes for queueing/serialization) while payloads stay typed Go values
// owned by the transport implementations.
package netem

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4-style address. The numeric form matters only for
// display; comparability and NAT rewriting are what the emulator needs.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netem: bad address %q", s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netem: bad address %q", s)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constant inputs; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Private reports whether the address is in RFC 1918 space. The Starlink
// CPE hands out 192.168.1.0/24 behind the dish.
func (a Addr) Private() bool {
	return a>>24 == 10 ||
		a>>20 == 0xac1 || // 172.16/12
		a>>16 == 0xc0a8 // 192.168/16
}

// CGNAT reports whether the address is in the RFC 6598 carrier-grade NAT
// shared space 100.64.0.0/10 — the paper observes 100.64.0.1 as the
// second hop out of the Starlink access.
func (a Addr) CGNAT() bool {
	return a>>22 == (100<<2 | 1) // 100.64/10
}
