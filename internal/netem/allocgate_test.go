package netem

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// allocChain builds a 3-node chain a-b-c with per-hop delay and returns
// (scheduler, network, a, c). The topology is tiny on purpose: the gates
// below measure the per-packet datapath, not topology setup.
func allocChain(tb testing.TB) (*sim.Scheduler, *Network, *Node, *Node) {
	tb.Helper()
	s := sim.NewScheduler(1)
	nw := New(s)
	nodes := buildChainOn(nw, 3, time.Millisecond)
	return s, nw, nodes[0], nodes[2]
}

// buildChainOn mirrors buildChain for benchmarks (testing.TB-free).
func buildChainOn(nw *Network, k int, hop time.Duration) []*Node {
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = nw.NewNode(string(rune('A'+i)), Addr(0x0b000001+uint32(i)))
	}
	for i := 0; i+1 < len(nodes); i++ {
		right, left := nw.Connect(nodes[i], nodes[i+1], LinkConfig{Delay: ConstantDelay(hop)})
		nodes[i].SetDefaultRoute(right)
		for j := 0; j <= i; j++ {
			nodes[i+1].AddRoute(nodes[j].Addr(), left)
		}
	}
	return nodes
}

func gateAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	// Warm the pools (packet freelist, link events, scheduler timers, Hops
	// backing) past their steady-state high-water mark before measuring.
	for i := 0; i < 64; i++ {
		f()
	}
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %v allocs per packet cycle, want 0", name, avg)
	}
}

// The full send -> route -> transit-forward -> deliver cycle of a pooled
// UDP packet must not allocate in steady state.
func TestAllocGateSendRouteDeliver(t *testing.T) {
	s, nw, a, c := allocChain(t)
	c.Bind(ProtoUDP, 9, func(*Packet) {})
	gateAllocs(t, "send-route-deliver", func() {
		pkt := nw.NewPacket()
		pkt.Dst = c.Addr()
		pkt.DstPort = 9
		pkt.Proto = ProtoUDP
		pkt.Size = 100
		a.Send(pkt)
		s.Run()
	})
}

// A pooled ICMP echo round trip — request out, pooled reply built by the
// responder, reply delivered back — must not allocate in steady state.
func TestAllocGateEchoResponder(t *testing.T) {
	s, nw, a, c := allocChain(t)
	c.EchoResponder = true
	a.Bind(ProtoICMP, 0, func(*Packet) {})
	seq := 0
	gateAllocs(t, "echo-responder", func() {
		seq++
		pkt := nw.NewPacket()
		pkt.Dst = c.Addr()
		pkt.SrcPort = 7
		pkt.Proto = ProtoICMP
		pkt.Size = 64
		body := nw.NewICMP()
		body.Type, body.Seq = ICMPEchoRequest, seq
		pkt.Payload = body
		a.Send(pkt)
		s.Run()
	})
}

// Pure transit forwarding (the middle hop of the chain, TTL decrement
// plus flat-FIB lookup plus link scheduling) must not allocate.
func TestAllocGateTransitForward(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := New(s)
	nodes := buildChainOn(nw, 5, time.Millisecond)
	last := nodes[len(nodes)-1]
	last.Bind(ProtoUDP, 9, func(*Packet) {})
	gateAllocs(t, "transit-forward", func() {
		pkt := nw.NewPacket()
		pkt.Dst = last.Addr()
		pkt.DstPort = 9
		pkt.Proto = ProtoUDP
		pkt.Size = 100
		nodes[0].Send(pkt)
		s.Run()
	})
}

// BenchmarkPacketPath measures the steady-state cost of one packet
// traversing the 3-node chain end to end (two link hops, one transit
// forward, final delivery). Must report 0 allocs/op.
func BenchmarkPacketPath(b *testing.B) {
	s, nw, a, c := allocChain(b)
	c.Bind(ProtoUDP, 9, func(*Packet) {})
	run := func() {
		pkt := nw.NewPacket()
		pkt.Dst = c.Addr()
		pkt.DstPort = 9
		pkt.Proto = ProtoUDP
		pkt.Size = 100
		a.Send(pkt)
		s.Run()
	}
	for i := 0; i < 64; i++ {
		run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkPacketPathReference is the same traversal on the seed
// datapath, for the allocs/packet comparison in starlink-bench.
func BenchmarkPacketPathReference(b *testing.B) {
	s := sim.NewScheduler(1)
	nw := New(s)
	nw.SetReference(true)
	nodes := buildChainOn(nw, 3, time.Millisecond)
	a, c := nodes[0], nodes[2]
	c.Bind(ProtoUDP, 9, func(*Packet) {})
	run := func() {
		pkt := nw.NewPacket()
		pkt.Dst = c.Addr()
		pkt.DstPort = 9
		pkt.Proto = ProtoUDP
		pkt.Size = 100
		a.Send(pkt)
		s.Run()
	}
	for i := 0; i < 64; i++ {
		run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
