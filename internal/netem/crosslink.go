package netem

import (
	"fmt"

	"starlinkperf/internal/sim"
)

// Cross-partition links: the netem endpoints of the conservative PDES
// engine (internal/sim). A partitioned scenario instantiates one Network
// per partition, each on its own Scheduler, and wires partitions together
// with AddCrossLink: the sending half is an ordinary Link on the source
// network (same queueing, loss, outage and FIFO semantics, same stats and
// obs records), but at the moment a local link would schedule delivery it
// instead stages a wireRecord — a by-value copy of the packet — on the
// sim.CrossEdge. The driver's barrier flips staged records to the
// destination partition, which materializes a packet from its own pool
// and receives it. No *Packet, *ICMP or Hops backing ever crosses a
// partition boundary, so the per-Network freelists stay single-threaded.
//
// Record pooling follows the same phase discipline as the edge itself:
// the source pops free records while its window executes, the destination
// appends consumed records to retired, and the barrier (single-threaded)
// moves retired back to free. The happens-before edges of the window
// barrier make all three phases race-free without locks.

// wireRecord is a packet serialized for partition crossing: header fields
// by value, Hops copied into the record's own backing, and the one
// payload shape the scenarios send across partitions (*ICMP without a
// quote) flattened into value fields.
type wireRecord struct {
	ep *crossEndpoint

	id       uint64
	src, dst Addr
	srcPort  uint16
	dstPort  uint16
	proto    Proto
	ttl      int
	size     int
	checksum uint16
	sentAt   sim.Time
	hops     []Addr

	hasICMP  bool
	icmpType ICMPType
	icmpSeq  int
	icmpData any
}

// crossEndpoint is the shared state of one cross link: the edge it stages
// onto, the destination node (owned by the remote partition), and the
// record freelist cycling through the barrier.
type crossEndpoint struct {
	edge    *sim.CrossEdge
	dst     *Node
	free    []*wireRecord // popped by the source partition only
	retired []*wireRecord // appended by the destination partition only
}

// AddCrossLink creates a unidirectional link from a local node to a node
// in another partition's Network, staging deliveries onto edge instead of
// scheduling them locally. cfg semantics match AddLink exactly up to the
// propagation hop; edge's lookahead must lower-bound cfg's total
// propagation delay (sim.CrossEdge.Send enforces it per message).
// DeliverHook is unsupported on cross links — it would run on the
// destination partition's goroutine against source-owned state.
func (nw *Network) AddCrossLink(from, to *Node, edge *sim.CrossEdge, cfg LinkConfig) *Link {
	if edge == nil {
		panic("netem: AddCrossLink requires a cross edge")
	}
	if to.net == nw {
		panic(fmt.Sprintf("netem: cross link %s->%s joins nodes of the same network; use AddLink", from.name, to.name))
	}
	l := nw.AddLink(from, to, cfg)
	ep := &crossEndpoint{edge: edge, dst: to}
	l.cross = ep
	edge.OnBarrier = ep.recycle
	nw.crossLinks = append(nw.crossLinks, l)
	return l
}

// CrossLinks returns the links of this network that terminate in another
// partition.
func (nw *Network) CrossLinks() []*Link {
	return nw.crossLinks
}

// stageCross runs in txDone's tail position for cross links: copy the
// packet into a wireRecord, release the source-side packet, and stage the
// record at its arrival time. Delivered is counted here — the source side
// owns the link stats, and once staged the record cannot be lost.
func (l *Link) stageCross(arrival sim.Time, pkt *Packet) {
	ep := l.cross
	var rec *wireRecord
	if n := len(ep.free); n > 0 {
		rec = ep.free[n-1]
		ep.free[n-1] = nil
		ep.free = ep.free[:n-1]
	} else {
		rec = &wireRecord{ep: ep}
	}
	rec.id = pkt.ID
	rec.src, rec.dst = pkt.Src, pkt.Dst
	rec.srcPort, rec.dstPort = pkt.SrcPort, pkt.DstPort
	rec.proto = pkt.Proto
	rec.ttl = pkt.TTL
	rec.size = pkt.Size
	rec.checksum = pkt.Checksum
	rec.sentAt = pkt.SentAt
	rec.hops = append(rec.hops[:0], pkt.Hops...)
	switch pl := pkt.Payload.(type) {
	case nil:
		rec.hasICMP = false
		rec.icmpData = nil
	case *ICMP:
		if pl.Quoted != nil {
			panic(fmt.Sprintf("netem: cross link %s cannot carry an ICMP quote across partitions", l.name))
		}
		rec.hasICMP = true
		rec.icmpType, rec.icmpSeq, rec.icmpData = pl.Type, pl.Seq, pl.Data
	default:
		panic(fmt.Sprintf("netem: cross link %s cannot carry payload type %T across partitions", l.name, pkt.Payload))
	}
	l.stats.Delivered++
	if l.obs != nil {
		l.obs.delivered.Inc()
	}
	l.net.releaseConsumed(pkt)
	ep.edge.Send(arrival, crossDeliver, rec)
}

// crossDeliver executes on the destination partition's scheduler: rebuild
// the packet from the record using the destination network's pools,
// retire the record, and hand the packet to the node.
func crossDeliver(arg any) {
	rec := arg.(*wireRecord)
	ep := rec.ep
	dnet := ep.dst.net
	pkt := dnet.NewPacket()
	pkt.ID = rec.id
	pkt.Src, pkt.Dst = rec.src, rec.dst
	pkt.SrcPort, pkt.DstPort = rec.srcPort, rec.dstPort
	pkt.Proto = rec.proto
	pkt.TTL = rec.ttl
	pkt.Size = rec.size
	pkt.Checksum = rec.checksum
	pkt.SentAt = rec.sentAt
	pkt.Hops = append(pkt.Hops[:0], rec.hops...)
	if rec.hasICMP {
		body := dnet.NewICMP()
		body.Type, body.Seq, body.Data = rec.icmpType, rec.icmpSeq, rec.icmpData
		pkt.Payload = body
	}
	ep.retired = append(ep.retired, rec)
	ep.dst.receive(pkt)
}

// recycle is the edge's barrier hook: move records the destination
// retired this window back to the source-side freelist. Runs
// single-threaded between windows.
func (ep *crossEndpoint) recycle() {
	ep.free = append(ep.free, ep.retired...)
	for i := range ep.retired {
		ep.retired[i] = nil
	}
	ep.retired = ep.retired[:0]
}
