package netem

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// crossPair builds two single-node networks on a 2-partition driver,
// joined by one cross link a->b with the given lookahead.
func crossPair(t *testing.T, look time.Duration) (*sim.PartitionedDriver, *Network, *Network, *Node, *Node) {
	t.Helper()
	d := sim.NewPartitionedDriver(1, 2)
	edge, err := d.Connect(0, 1, look)
	if err != nil {
		t.Fatal(err)
	}
	nw0, nw1 := New(d.Scheduler(0)), New(d.Scheduler(1))
	a := nw0.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw1.NewNode("b", MustParseAddr("10.1.0.1"))
	l := nw0.AddCrossLink(a, b, edge, LinkConfig{Delay: ConstantDelay(look)})
	a.AddRoute(b.Addr(), l)
	return d, nw0, nw1, a, b
}

func TestCrossLinkDelivery(t *testing.T) {
	look := 5 * time.Millisecond
	d, nw0, _, a, b := crossPair(t, look)

	var got *Packet
	var at sim.Time
	b.Bind(ProtoUDP, 9, func(pkt *Packet) {
		pkt.Detach() // keep past the handler's release
		got = pkt
		at = b.Scheduler().Now()
	})
	send := sim.Time(int64(time.Millisecond))
	a.Scheduler().At(send, func() {
		pkt := nw0.NewPacket()
		pkt.Dst = b.Addr()
		pkt.DstPort = 9
		pkt.Proto = ProtoUDP
		pkt.Size = 200
		a.Send(pkt)
	})
	d.Run(sim.Time(int64(time.Second)), 1)

	if got == nil {
		t.Fatal("packet did not cross the partition boundary")
	}
	if want := send.Add(look); at != want {
		t.Errorf("arrived at %v, want %v", at, want)
	}
	if got.Src != a.Addr() || got.Dst != b.Addr() || got.DstPort != 9 || got.Size != 200 {
		t.Errorf("header fields corrupted in transit: %+v", got)
	}
	if len(got.Hops) != 1 || got.Hops[0] != b.Addr() {
		t.Errorf("hop record %v, want [b]", got.Hops)
	}
	// The destination materialized the packet from its own pool: the
	// source-side struct must not have crossed.
	if got.ID == 0 {
		t.Error("packet lost its ID")
	}
}

// TestCrossLinkICMP checks the one payload type allowed across
// partitions: a quote-free ICMP message, flattened by value.
func TestCrossLinkICMP(t *testing.T) {
	look := 5 * time.Millisecond
	d, nw0, _, a, b := crossPair(t, look)

	var gotType ICMPType
	gotSeq := -1
	b.Bind(ProtoICMP, 0, func(pkt *Packet) {
		if ic, ok := pkt.Payload.(*ICMP); ok {
			gotType, gotSeq = ic.Type, ic.Seq
		}
	})
	a.Scheduler().At(0, func() {
		pkt := nw0.NewPacket()
		pkt.Dst = b.Addr()
		pkt.Proto = ProtoICMP
		pkt.Size = 64
		ic := nw0.NewICMP()
		ic.Type = ICMPEchoRequest
		ic.Seq = 7
		pkt.Payload = ic
		a.Send(pkt)
	})
	d.Run(sim.Time(int64(time.Second)), 1)
	if gotType != ICMPEchoRequest || gotSeq != 7 {
		t.Fatalf("ICMP crossed as type=%v seq=%d, want echo-request seq=7", gotType, gotSeq)
	}
}

// TestCrossLinkRecordReuse drives many packets through the edge across
// many windows and checks the wire-record pool recycles: deliveries keep
// working and every packet arrives exactly once.
func TestCrossLinkRecordReuse(t *testing.T) {
	look := 5 * time.Millisecond
	d, nw0, _, a, b := crossPair(t, look)

	got := 0
	b.Bind(ProtoUDP, 9, func(*Packet) { got++ })
	const nPkts = 50
	for i := 0; i < nPkts; i++ {
		at := sim.Time(int64(i) * int64(2*time.Millisecond))
		a.Scheduler().At(at, func() {
			pkt := nw0.NewPacket()
			pkt.Dst = b.Addr()
			pkt.DstPort = 9
			pkt.Proto = ProtoUDP
			pkt.Size = 100
			a.Send(pkt)
		})
	}
	d.Run(sim.Time(int64(time.Second)), 1)
	if got != nPkts {
		t.Fatalf("delivered %d packets, want %d", got, nPkts)
	}
}

func TestCrossLinkQuotedICMPPanics(t *testing.T) {
	look := 5 * time.Millisecond
	d, nw0, _, a, b := crossPair(t, look)
	a.Scheduler().At(0, func() {
		pkt := nw0.NewPacket()
		pkt.Dst = b.Addr()
		pkt.Proto = ProtoICMP
		pkt.Size = 64
		pkt.Payload = &ICMP{Type: ICMPTimeExceeded, Quoted: &Packet{ID: 1}}
		a.Send(pkt)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("quoted ICMP crossed a partition without panicking")
		}
	}()
	d.Run(sim.Time(int64(time.Second)), 1)
}

func TestCrossLinkUnsupportedPayloadPanics(t *testing.T) {
	look := 5 * time.Millisecond
	d, nw0, _, a, b := crossPair(t, look)
	a.Scheduler().At(0, func() {
		pkt := nw0.NewPacket()
		pkt.Dst = b.Addr()
		pkt.Proto = ProtoUDP
		pkt.Size = 64
		pkt.Payload = "opaque transport state"
		a.Send(pkt)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported payload crossed a partition without panicking")
		}
	}()
	d.Run(sim.Time(int64(time.Second)), 1)
}
