package netem

import (
	"time"

	"starlinkperf/internal/sim"
)

// TokenBucketShaper is a Device that polices traffic matching a predicate
// to a target rate, dropping excess packets. Operators that throttle
// specific services (the behaviour Wehe detects) are modeled by attaching
// one of these with a classifier for the targeted traffic.
type TokenBucketShaper struct {
	// RateBps is the policed rate in bits per second.
	RateBps float64
	// BurstBytes is the bucket depth.
	BurstBytes float64
	// Match selects the packets subject to policing; nil matches all.
	Match func(pkt *Packet) bool

	tokens   float64
	lastFill sim.Time
	primed   bool
	Dropped  uint64
}

// Process implements Device.
func (t *TokenBucketShaper) Process(n *Node, pkt *Packet) bool {
	if t.Match != nil && !t.Match(pkt) {
		return true
	}
	if !t.primed {
		// The bucket starts full, like a freshly configured policer.
		t.tokens = t.BurstBytes
		t.primed = true
	}
	now := n.Scheduler().Now()
	elapsed := now.Sub(t.lastFill)
	t.lastFill = now
	t.tokens += t.RateBps / 8 * elapsed.Seconds()
	if t.tokens > t.BurstBytes {
		t.tokens = t.BurstBytes
	}
	if t.tokens < float64(pkt.Size) {
		t.Dropped++
		return false
	}
	t.tokens -= float64(pkt.Size)
	return true
}

// DeviceFunc adapts a function to the Device interface.
type DeviceFunc func(n *Node, pkt *Packet) bool

// Process implements Device.
func (f DeviceFunc) Process(n *Node, pkt *Packet) bool { return f(n, pkt) }

// DelayJitterFunc builds a Jitter function drawing i.i.d. non-negative
// delays: a half-normal with the given scale. Access-network schedulers
// (Starlink's 15 s frame allocation, Wi-Fi retransmissions, ...) add this
// kind of positive-only jitter on top of geometric propagation.
func DelayJitterFunc(rng *sim.RNG, scale time.Duration) func(sim.Time) time.Duration {
	return func(sim.Time) time.Duration {
		v := rng.NormFloat64()
		if v < 0 {
			v = -v
		}
		return time.Duration(v * float64(scale))
	}
}
