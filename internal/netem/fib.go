package netem

import "sort"

// Flat FIB: the fast-path replacement for the per-hop routes map plus
// linear prefixRoutes scan. The maps/slices written by AddRoute,
// AddPrefixRoute and SetDefaultRoute stay the source of truth (and the
// reference lookup walks them exactly like the seed code did); the flat
// tables below are rebuilt from them lazily after any change, and a
// 4-entry direct-mapped last-destination cache in front of the lookup is
// cleared on every rebuild. Decisions are identical by construction —
// exact beats prefix, longest mask wins, earliest-inserted wins ties,
// default last — and fib_test.go proves it against randomized tables.

// fibExact is one exact-destination route in the sorted fast table.
type fibExact struct {
	dst  Addr
	link *Link
}

// fibPrefixEntry is one prefix route. key is the prefix's significant
// bits (prefix >> (32-bits)); for mask lengths of 32 or more — which the
// seed scan treats as exact equality — it is the full address.
type fibPrefixEntry struct {
	key  Addr
	bits int32
	seq  int32 // insertion order, the seed scan's tie-break
	link *Link
}

// fibGroup is a contiguous run of fibPrefix entries sharing one mask
// length; groups are ordered longest mask first.
type fibGroup struct {
	bits       int
	start, end int32
}

// routeCacheSize is the per-node last-destination cache (direct-mapped
// on the low address bits). It must stay a power of two.
const routeCacheSize = 4

type routeCacheEntry struct {
	dst  Addr
	link *Link
}

func prefixKey(a Addr, bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return a
	}
	return a >> (32 - bits)
}

// rebuildFIB regenerates the flat tables from the route maps and clears
// the destination cache.
func (n *Node) rebuildFIB() {
	n.fibDirty = false
	n.routeCache = [routeCacheSize]routeCacheEntry{}

	n.fibExact = n.fibExact[:0]
	for dst, l := range n.routes {
		n.fibExact = append(n.fibExact, fibExact{dst: dst, link: l})
	}
	sort.Slice(n.fibExact, func(i, j int) bool { return n.fibExact[i].dst < n.fibExact[j].dst })

	n.fibPrefix = n.fibPrefix[:0]
	for i, pr := range n.prefixRoutes {
		if pr.bits < 0 {
			// The linear scan can never select a negative mask (its best
			// starts at -1 and requires a strict improvement), so such
			// entries are dead; excluding them preserves that.
			continue
		}
		n.fibPrefix = append(n.fibPrefix, fibPrefixEntry{
			key:  prefixKey(pr.prefix, pr.bits),
			bits: int32(pr.bits),
			seq:  int32(i),
			link: pr.link,
		})
	}
	sort.Slice(n.fibPrefix, func(i, j int) bool {
		a, b := n.fibPrefix[i], n.fibPrefix[j]
		if a.bits != b.bits {
			return a.bits > b.bits
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})

	n.fibGroups = n.fibGroups[:0]
	for i := 0; i < len(n.fibPrefix); {
		j := i
		for j < len(n.fibPrefix) && n.fibPrefix[j].bits == n.fibPrefix[i].bits {
			j++
		}
		n.fibGroups = append(n.fibGroups, fibGroup{
			bits:  int(n.fibPrefix[i].bits),
			start: int32(i),
			end:   int32(j),
		})
		i = j
	}
}

// lookupLink resolves dst against the flat tables: exact table first,
// then prefix groups longest mask first (leftmost equal key = earliest
// inserted), then the default route. nil means no route.
func (n *Node) lookupLink(dst Addr) *Link {
	lo, hi := 0, len(n.fibExact)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.fibExact[mid].dst < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.fibExact) && n.fibExact[lo].dst == dst {
		return n.fibExact[lo].link
	}
	for gi := range n.fibGroups {
		g := &n.fibGroups[gi]
		key := prefixKey(dst, g.bits)
		lo, hi := int(g.start), int(g.end)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if n.fibPrefix[mid].key < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < int(g.end) && n.fibPrefix[lo].key == key {
			return n.fibPrefix[lo].link
		}
	}
	return n.defaultRoute
}

// lookupRoute is the cached fast-path lookup used by route().
func (n *Node) lookupRoute(dst Addr) *Link {
	if n.fibDirty {
		n.rebuildFIB()
	}
	e := &n.routeCache[dst&(routeCacheSize-1)]
	if e.dst == dst && e.link != nil {
		return e.link
	}
	l := n.lookupLink(dst)
	if l != nil {
		*e = routeCacheEntry{dst: dst, link: l}
	}
	return l
}

// referenceLookup replicates the seed route decision exactly: exact map,
// then the linear longest-prefix scan in insertion order with a strict
// improvement test, then the default route.
func (n *Node) referenceLookup(dst Addr) *Link {
	if l, ok := n.routes[dst]; ok {
		return l
	}
	var best *Link
	bestBits := -1
	for _, pr := range n.prefixRoutes {
		if pr.bits > bestBits && matchPrefix(dst, pr.prefix, pr.bits) {
			best = pr.link
			bestBits = pr.bits
		}
	}
	if best != nil {
		return best
	}
	return n.defaultRoute
}

// handlerEntry is one bound handler in the sorted fast table; key packs
// (proto, port) so the probe is a single integer binary search.
type handlerEntry struct {
	key uint32
	h   Handler
}

func handlerKey(proto Proto, port uint16) uint32 {
	return uint32(proto)<<16 | uint32(port)
}

// rebuildHandlers regenerates the sorted handler table from the map.
func (n *Node) rebuildHandlers() {
	n.hDirty = false
	n.hTable = n.hTable[:0]
	for pp, h := range n.handlers {
		n.hTable = append(n.hTable, handlerEntry{key: handlerKey(pp.proto, pp.port), h: h})
	}
	sort.Slice(n.hTable, func(i, j int) bool { return n.hTable[i].key < n.hTable[j].key })
}

func (n *Node) searchHandler(key uint32) Handler {
	lo, hi := 0, len(n.hTable)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.hTable[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.hTable) && n.hTable[lo].key == key {
		return n.hTable[lo].h
	}
	return nil
}

// lookupHandler is the fast-path replacement for the two-probe handlers
// map lookup in deliver: the exact (proto, port), then the protocol's
// port-0 wildcard.
func (n *Node) lookupHandler(proto Proto, port uint16) Handler {
	if n.hDirty {
		n.rebuildHandlers()
	}
	if h := n.searchHandler(handlerKey(proto, port)); h != nil {
		return h
	}
	if port != 0 {
		return n.searchHandler(handlerKey(proto, 0))
	}
	return nil
}
