package netem

import (
	"fmt"
	"math/rand"
	"testing"

	"starlinkperf/internal/sim"
)

// fibBitsChoices covers the mask-length edge cases: negative (dead in the
// seed scan), 0 (matches everything), 32 and beyond (exact equality), and
// ordinary interior lengths.
var fibBitsChoices = []int{-1, 0, 1, 5, 8, 15, 16, 24, 31, 32, 33, 40}

// randomFIBNode builds a router with nLinks neighbors and a randomized
// route table: exact routes, prefix routes (with duplicate prefixes and
// edge-case mask lengths), and sometimes a default route. Addresses are
// drawn from a small pool so exact/prefix collisions actually happen.
func randomFIBNode(tb testing.TB, rng *rand.Rand, nRoutes int) (*Node, []*Link) {
	tb.Helper()
	s := sim.NewScheduler(1)
	nw := New(s)
	r := nw.NewNode("r", MustParseAddr("10.255.0.1"))
	links := make([]*Link, 4)
	for i := range links {
		peer := nw.NewNode(fmt.Sprintf("p%d", i), Addr(0x0afe0000+uint32(i)))
		links[i], _ = nw.Connect(r, peer, LinkConfig{})
	}
	for i := 0; i < nRoutes; i++ {
		addr := fibRandAddr(rng)
		l := links[rng.Intn(len(links))]
		if rng.Intn(2) == 0 {
			r.AddRoute(addr, l)
		} else {
			r.AddPrefixRoute(addr, fibBitsChoices[rng.Intn(len(fibBitsChoices))], l)
		}
	}
	if rng.Intn(2) == 0 {
		r.SetDefaultRoute(links[rng.Intn(len(links))])
	}
	return r, links
}

// fibRandAddr mixes a small clustered pool (to force prefix overlaps and
// exact-route collisions) with uniform draws.
func fibRandAddr(rng *rand.Rand) Addr {
	if rng.Intn(2) == 0 {
		return Addr(0x0a000000 | uint32(rng.Intn(64)) | uint32(rng.Intn(4))<<16)
	}
	return Addr(rng.Uint32())
}

func checkFIBAgainstReference(t *testing.T, n *Node, dst Addr) {
	t.Helper()
	got, want := n.lookupRoute(dst), n.referenceLookup(dst)
	if got != want {
		t.Fatalf("lookup(%v) = %v, reference scan = %v (exact=%d prefix=%d default=%v)",
			dst, linkName(got), linkName(want), len(n.routes), len(n.prefixRoutes), n.defaultRoute != nil)
	}
}

func linkName(l *Link) string {
	if l == nil {
		return "<none>"
	}
	return l.name
}

// The flat FIB must make the same decision as the seed's exact-map +
// linear-scan + default lookup for every destination, on randomized
// tables including duplicate prefixes, /0 and /32+ masks, and negative
// (dead) mask lengths — and keep agreeing after mid-trial table changes
// that force rebuilds and cache invalidation.
func TestFlatFIBMatchesReferenceLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 150; trial++ {
		n, links := randomFIBNode(t, rng, 1+rng.Intn(24))
		probe := func() {
			for i := 0; i < 64; i++ {
				checkFIBAgainstReference(t, n, fibRandAddr(rng))
			}
			for _, pr := range n.prefixRoutes {
				checkFIBAgainstReference(t, n, pr.prefix)
				checkFIBAgainstReference(t, n, pr.prefix^1)
				checkFIBAgainstReference(t, n, pr.prefix^(1<<20))
			}
			for dst := range n.routes {
				checkFIBAgainstReference(t, n, dst)
			}
		}
		probe()

		// Mutate mid-trial: the cached decisions for these destinations
		// must be invalidated by the rebuild.
		cached := fibRandAddr(rng)
		checkFIBAgainstReference(t, n, cached)
		n.AddRoute(cached, links[rng.Intn(len(links))])
		checkFIBAgainstReference(t, n, cached)
		n.AddPrefixRoute(cached&^0xffff, 16, links[rng.Intn(len(links))])
		n.SetDefaultRoute(links[rng.Intn(len(links))])
		probe()
	}
}

// A destination resolved through the default route must be re-resolved
// after an exact route appears for it: the last-destination cache cannot
// serve stale decisions across a table change.
func TestFIBCacheInvalidatedOnRouteChange(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := New(s)
	r := nw.NewNode("r", MustParseAddr("10.255.0.1"))
	p0 := nw.NewNode("p0", MustParseAddr("10.254.0.0"))
	p1 := nw.NewNode("p1", MustParseAddr("10.254.0.1"))
	l0, _ := nw.Connect(r, p0, LinkConfig{})
	l1, _ := nw.Connect(r, p1, LinkConfig{})

	dst := MustParseAddr("8.8.8.8")
	r.SetDefaultRoute(l0)
	if got := r.lookupRoute(dst); got != l0 {
		t.Fatalf("default-routed lookup = %v, want %v", linkName(got), l0.name)
	}
	r.AddRoute(dst, l1)
	if got := r.lookupRoute(dst); got != l1 {
		t.Fatalf("post-change lookup = %v, want %v (stale cache?)", linkName(got), l1.name)
	}
	r.AddPrefixRoute(MustParseAddr("9.0.0.0"), 8, l0)
	probe := MustParseAddr("9.1.2.3")
	if got := r.lookupRoute(probe); got != l0 {
		t.Fatalf("prefix lookup = %v, want %v", linkName(got), l0.name)
	}
	r.AddPrefixRoute(MustParseAddr("9.1.0.0"), 16, l1)
	if got := r.lookupRoute(probe); got != l1 {
		t.Fatalf("longest-prefix after insert = %v, want %v", linkName(got), l1.name)
	}
}

// FuzzFlatFIB drives the decision-identity property from fuzzed inputs:
// the table layout comes from the seed, the probed destination from the
// fuzzer.
func FuzzFlatFIB(f *testing.F) {
	f.Add(uint32(0x0a000001), int64(1), uint8(4))
	f.Add(uint32(0xffffffff), int64(42), uint8(24))
	f.Add(uint32(0), int64(7), uint8(1))
	f.Fuzz(func(t *testing.T, dst uint32, seed int64, nRoutes uint8) {
		rng := rand.New(rand.NewSource(seed))
		n, _ := randomFIBNode(t, rng, 1+int(nRoutes)%24)
		got, want := n.lookupRoute(Addr(dst)), n.referenceLookup(Addr(dst))
		if got != want {
			t.Fatalf("lookup(%v) = %v, reference scan = %v", Addr(dst), linkName(got), linkName(want))
		}
	})
}
