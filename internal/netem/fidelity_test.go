package netem

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// TestAutoFidelitySelection pins the downgrade rules: queue machinery
// reachable => full; loss/outage/jitter reachable => delay-only; bare
// propagation => fast.
func TestAutoFidelitySelection(t *testing.T) {
	rng := sim.NewRNG(1)
	cases := []struct {
		name string
		cfg  LinkConfig
		want Fidelity
	}{
		{"bare", LinkConfig{}, FidelityFast},
		{"delay only", LinkConfig{Delay: ConstantDelay(time.Millisecond)}, FidelityFast},
		{"rated", LinkConfig{RateBps: 8e6}, FidelityFull},
		{"queue cap", LinkConfig{QueueBytes: 1500}, FidelityFull},
		{"loss", LinkConfig{Loss: &BernoulliLoss{P: 0.1, Rng: rng}}, FidelityDelayOnly},
		{"outage", LinkConfig{Down: func(sim.Time) bool { return false }}, FidelityDelayOnly},
		{"jitter", LinkConfig{Jitter: func(sim.Time) time.Duration { return 0 }}, FidelityDelayOnly},
	}
	s := sim.NewScheduler(1)
	nw := New(s)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	links := make([]*Link, len(cases))
	for i, c := range cases {
		links[i] = nw.AddLink(a, b, c.cfg)
		if got := links[i].Fidelity(); got != FidelityFull {
			t.Fatalf("%s: tier %v before auto-selection, want full", c.name, got)
		}
	}
	delayOnly, fast := nw.AutoSelectFidelity()
	if delayOnly != 3 || fast != 2 {
		t.Errorf("AutoSelectFidelity = (%d, %d), want (3, 2)", delayOnly, fast)
	}
	for i, c := range cases {
		if got := links[i].Fidelity(); got != c.want {
			t.Errorf("%s: tier = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRetierOnMutation holds the auto-selection sound under the Set*
// mutators: an auto-downgraded link must re-derive its tier when a
// mutation makes skipped machinery reachable (and back), while an
// explicitly configured tier is the caller's to keep.
func TestRetierOnMutation(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := New(s)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	auto := nw.AddLink(a, b, LinkConfig{Delay: ConstantDelay(time.Millisecond)})
	nw.AutoSelectFidelity()
	if auto.Fidelity() != FidelityFast {
		t.Fatalf("tier = %v after auto-selection, want fast", auto.Fidelity())
	}
	auto.SetRate(8e6)
	if auto.Fidelity() != FidelityFull {
		t.Errorf("tier = %v after SetRate(8e6), want full", auto.Fidelity())
	}
	auto.SetRate(0)
	if auto.Fidelity() != FidelityFast {
		t.Errorf("tier = %v after SetRate(0), want fast", auto.Fidelity())
	}
	auto.SetDown(func(sim.Time) bool { return false })
	if auto.Fidelity() != FidelityDelayOnly {
		t.Errorf("tier = %v after SetDown, want delay-only", auto.Fidelity())
	}
	auto.SetDown(nil)
	auto.SetLoss(&BernoulliLoss{P: 0.5, Rng: sim.NewRNG(2)})
	if auto.Fidelity() != FidelityDelayOnly {
		t.Errorf("tier = %v after SetLoss, want delay-only", auto.Fidelity())
	}

	pinned := nw.AddLink(a, b, LinkConfig{Fidelity: FidelityDelayOnly})
	pinned.SetRate(8e6)
	if pinned.Fidelity() != FidelityDelayOnly {
		t.Errorf("explicit tier changed to %v by SetRate; mutators must leave caller-pinned tiers alone", pinned.Fidelity())
	}
}

// tierScenario drives one fixed packet schedule through a 3-hop chain
// whose rate-0 links exercise everything the delay-only tier must
// preserve — a delay cliff that makes the FIFO clamp bind, deterministic
// jitter, an outage window, Bernoulli loss — plus a final rated hop that
// auto-selection must keep at full fidelity. It returns the delivery
// instants at the far node and the per-link stats.
func tierScenario(t *testing.T, autoSelect bool) ([]sim.Time, []LinkStats) {
	t.Helper()
	s := sim.NewScheduler(42)
	nw := New(s)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	c := nw.NewNode("c", MustParseAddr("10.0.0.3"))
	d := nw.NewNode("d", MustParseAddr("10.0.0.4"))
	l1 := nw.AddLink(a, b, LinkConfig{
		// Cliff at 50 ms: packets sent just after are clamped behind
		// packets sent just before.
		Delay: func(now sim.Time) time.Duration {
			if now < sim.Time(50*time.Millisecond) {
				return 10 * time.Millisecond
			}
			return time.Millisecond
		},
		Jitter: func(now sim.Time) time.Duration { return time.Duration(int64(now) % 5000) },
	})
	l2 := nw.AddLink(b, c, LinkConfig{
		Delay: ConstantDelay(5 * time.Millisecond),
		Down: func(now sim.Time) bool {
			return now >= sim.Time(20*time.Millisecond) && now < sim.Time(30*time.Millisecond)
		},
		Loss: &BernoulliLoss{P: 0.2, Rng: sim.NewRNG(7)},
	})
	l3 := nw.AddLink(c, d, LinkConfig{RateBps: 8e6, Delay: ConstantDelay(time.Millisecond)})
	a.SetDefaultRoute(l1)
	b.SetDefaultRoute(l2)
	c.SetDefaultRoute(l3)
	if autoSelect {
		delayOnly, fast := nw.AutoSelectFidelity()
		if delayOnly != 2 || fast != 0 {
			t.Fatalf("AutoSelectFidelity = (%d, %d), want (2, 0)", delayOnly, fast)
		}
		if l3.Fidelity() != FidelityFull {
			t.Fatalf("rated link downgraded to %v", l3.Fidelity())
		}
	}

	var arrivals []sim.Time
	d.Bind(ProtoUDP, 1, func(*Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 200; i++ {
		s.AtFunc(sim.Time(i)*sim.Time(500*time.Microsecond), func(any) {
			a.Send(&Packet{Dst: d.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 1000})
		}, nil)
	}
	s.Run()
	return arrivals, []LinkStats{l1.Stats(), l2.Stats(), l3.Stats()}
}

// TestTierEquivalence is the netem half of the tentpole's equivalence
// claim: with auto-selected tiers, every delivery instant and every link
// counter is exactly what the full datapath produces — clamp binding,
// RNG draw order and drop decisions included.
func TestTierEquivalence(t *testing.T) {
	refArrivals, refStats := tierScenario(t, false)
	gotArrivals, gotStats := tierScenario(t, true)
	if !reflect.DeepEqual(gotArrivals, refArrivals) {
		t.Errorf("tiered arrivals diverge from full emulation: %d vs %d deliveries", len(gotArrivals), len(refArrivals))
	}
	if !reflect.DeepEqual(gotStats, refStats) {
		t.Errorf("tiered link stats diverge:\n got %+v\nwant %+v", gotStats, refStats)
	}
	if refStats[1].DropsLoss == 0 || refStats[1].DropsDown == 0 {
		t.Fatalf("scenario exercised no drops (%+v); the equivalence proves nothing", refStats[1])
	}
}

// TestQueuedPeakCountsInService pins the documented QueuedPeak
// semantics: the packet in service occupies its bytes until
// serialization ends, so three back-to-back 1000 B sends peak at 3000,
// not 2000 — and a rate-0 link's peak stays identically zero.
func TestQueuedPeakCountsInService(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	rated := nw.AddLink(a, b, LinkConfig{RateBps: 8e6})
	a.AddRoute(b.Addr(), rated)
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: b.Addr(), Proto: ProtoUDP, Size: 1000})
	}
	s.Run()
	if got := rated.Stats().QueuedPeak; got != 3000 {
		t.Errorf("QueuedPeak = %d, want 3000 (two queued plus the packet in service)", got)
	}

	s2 := sim.NewScheduler(1)
	nw2 := New(s2)
	x := nw2.NewNode("x", MustParseAddr("10.0.1.1"))
	y := nw2.NewNode("y", MustParseAddr("10.0.1.2"))
	flat := nw2.AddLink(x, y, LinkConfig{Delay: ConstantDelay(time.Millisecond)})
	x.AddRoute(y.Addr(), flat)
	for i := 0; i < 3; i++ {
		x.Send(&Packet{Dst: y.Addr(), Proto: ProtoUDP, Size: 1000})
	}
	s2.Run()
	if got := flat.Stats().QueuedPeak; got != 0 {
		t.Errorf("rate-0 QueuedPeak = %d, want 0", got)
	}
}

// TestNegativeJitterPanics enforces the LinkConfig.Jitter contract on
// both datapaths: a negative sample must panic deterministically at the
// draw instant instead of corrupting the FIFO clamp.
func TestNegativeJitterPanics(t *testing.T) {
	for _, tier := range []Fidelity{FidelityFull, FidelityDelayOnly} {
		tier := tier
		t.Run(tier.String(), func(t *testing.T) {
			s := sim.NewScheduler(1)
			nw := New(s)
			a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
			b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
			l := nw.AddLink(a, b, LinkConfig{
				Jitter:   func(sim.Time) time.Duration { return -time.Microsecond },
				Fidelity: tier,
			})
			a.AddRoute(b.Addr(), l)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("negative jitter did not panic")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "Jitter") {
					t.Fatalf("panic = %v, want the jitter contract message", r)
				}
			}()
			a.Send(&Packet{Dst: b.Addr(), Proto: ProtoUDP, Size: 100})
			s.Run()
		})
	}
}

// TestAccountBypassedGuards pins the fast-forward crediting contract:
// stats and clamp state advance on a downgraded link, the clamp only
// moves forward, and crediting a full-fidelity or rated link panics.
func TestAccountBypassedGuards(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := New(s)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	l := nw.AddLink(a, b, LinkConfig{Delay: ConstantDelay(time.Millisecond)})
	nw.AutoSelectFidelity()

	l.AccountBypassed(3, sim.Time(5*time.Millisecond))
	if st := l.Stats(); st.Sent != 3 || st.Delivered != 3 {
		t.Errorf("stats after crediting 3 = %+v", st)
	}
	if got := l.LastArrival(); got != sim.Time(5*time.Millisecond) {
		t.Errorf("LastArrival = %v, want 5ms", got)
	}
	// Max-merge: an earlier virtual arrival must not rewind the clamp.
	l.AccountBypassed(1, sim.Time(2*time.Millisecond))
	if got := l.LastArrival(); got != sim.Time(5*time.Millisecond) {
		t.Errorf("LastArrival rewound to %v", got)
	}

	full := nw.AddLink(a, b, LinkConfig{RateBps: 8e6})
	defer func() {
		if recover() == nil {
			t.Fatal("AccountBypassed on a full-fidelity link did not panic")
		}
	}()
	full.AccountBypassed(1, 0)
}
