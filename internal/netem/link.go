package netem

import (
	"time"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// DelayFunc returns the one-way propagation delay of a link at a given
// instant. LEO access links vary with satellite motion; terrestrial links
// are constant.
type DelayFunc func(now sim.Time) time.Duration

// ConstantDelay returns a DelayFunc with a fixed delay.
func ConstantDelay(d time.Duration) DelayFunc {
	return func(sim.Time) time.Duration { return d }
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// RateBps is the serialization rate in bits per second; 0 means
	// infinitely fast (no serialization delay, no queue buildup).
	RateBps float64
	// Delay is the propagation delay; nil means zero.
	Delay DelayFunc
	// QueueBytes caps the DropTail egress queue (including the packet in
	// service); 0 means unbounded.
	QueueBytes int
	// Loss is the medium loss process applied as packets leave the
	// queue; nil means lossless.
	Loss LossModel
	// Down reports link outage at an instant; packets finishing
	// serialization during an outage are dropped. nil means always up.
	Down func(now sim.Time) bool
	// Jitter, if non-nil, returns an extra per-packet propagation delay
	// (e.g. LEO scheduling jitter). It must be non-negative.
	Jitter func(now sim.Time) time.Duration
}

// DropReason classifies why a link dropped a packet.
type DropReason uint8

// Drop reasons, distinguished because the paper distinguishes congestion
// losses (queue overflow under load) from medium losses and outages.
const (
	DropQueueFull DropReason = iota
	DropMedium
	DropOutage
	DropTTL
	DropNoRoute
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropMedium:
		return "medium"
	case DropOutage:
		return "outage"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	default:
		return "drop?"
	}
}

// LinkStats counts link activity.
type LinkStats struct {
	Sent       uint64 // packets accepted for transmission
	Delivered  uint64 // packets handed to the far node
	DropsQueue uint64
	DropsLoss  uint64
	DropsDown  uint64
	QueuedPeak int // peak queue occupancy in bytes
}

// Link is one direction of a connection between two nodes.
type Link struct {
	name string
	net  *Network
	to   *Node
	cfg  LinkConfig

	busyUntil   sim.Time
	queuedBytes int
	lastArrival sim.Time
	stats       LinkStats

	// obs is the shared network observability bundle, nil when disabled;
	// obsSubj is this link's interned trace subject.
	obs     *netObs
	obsSubj obs.Subj

	// cross, when non-nil, marks this as a cross-partition link: instead
	// of scheduling delivery locally, txDone stages a copied record on the
	// PDES cross edge (crosslink.go).
	cross *crossEndpoint

	// DropHook, when set, observes every packet the link drops.
	DropHook func(now sim.Time, pkt *Packet, reason DropReason)
	// DeliverHook, when set, observes every packet as it arrives at the
	// far node (after propagation). Captures attach here.
	DeliverHook func(now sim.Time, pkt *Packet)
}

// Name returns the link's diagnostic name ("a->b").
func (l *Link) Name() string { return l.name }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueuedBytes returns the current egress queue occupancy.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// SetLoss replaces the link's medium loss model.
func (l *Link) SetLoss(m LossModel) { l.cfg.Loss = m }

// SetRate replaces the link's serialization rate.
func (l *Link) SetRate(bps float64) { l.cfg.RateBps = bps }

// SetDown replaces the link's outage predicate.
func (l *Link) SetDown(down func(sim.Time) bool) { l.cfg.Down = down }

// Config returns the link configuration (by value).
func (l *Link) Config() LinkConfig { return l.cfg }

// linkEvent carries one in-flight packet through its two scheduler hops
// (end of serialization, then arrival). Events are pooled on the Network
// and passed to sim.AtFunc as the arg pointer, so forwarding a packet
// schedules without allocating a closure, a timer, or the event itself.
type linkEvent struct {
	link *Link
	pkt  *Packet
}

// linkTxDone and linkDeliver are the package-level EventFunc trampolines
// for the two hops; being plain functions, scheduling them boxes nothing.
func linkTxDone(arg any)  { arg.(*linkEvent).txDone() }
func linkDeliver(arg any) { arg.(*linkEvent).deliver() }

// send enqueues pkt for transmission. Queue overflow drops immediately
// (congestion loss); otherwise the packet serializes FIFO at the link
// rate, may be lost to the medium or an outage at the end of
// serialization, and is delivered to the far node after propagation.
func (l *Link) send(pkt *Packet) {
	s := l.net.sched
	now := s.Now()

	if l.cfg.QueueBytes > 0 && l.queuedBytes+pkt.Size > l.cfg.QueueBytes {
		l.stats.DropsQueue++
		l.drop(now, pkt, DropQueueFull)
		return
	}

	var txDone sim.Time
	if l.cfg.RateBps > 0 {
		tx := time.Duration(float64(pkt.Size*8) / l.cfg.RateBps * float64(time.Second))
		start := now
		if l.busyUntil > start {
			start = l.busyUntil
		}
		txDone = start.Add(tx)
		l.busyUntil = txDone
		l.queuedBytes += pkt.Size
		if l.queuedBytes > l.stats.QueuedPeak {
			l.stats.QueuedPeak = l.queuedBytes
		}
	} else {
		txDone = now
	}
	l.stats.Sent++
	if l.obs != nil {
		l.obs.sent.Inc()
		l.obs.queueDepth.Observe(int64(l.queuedBytes))
		l.obs.tr.Emit(now, obs.KindEnqueue, l.obsSubj, int64(l.queuedBytes), int64(pkt.Size))
	}

	s.AtFunc(txDone, linkTxDone, l.net.getLinkEvent(l, pkt))
}

// txDone runs at the end of serialization: dequeue, apply outage and
// medium loss, then schedule the arrival after propagation (reusing the
// same pooled event for the second hop).
func (ev *linkEvent) txDone() {
	l, pkt := ev.link, ev.pkt
	s := l.net.sched
	if l.cfg.RateBps > 0 {
		l.queuedBytes -= pkt.Size
	}
	at := s.Now()
	if l.obs != nil {
		l.obs.tr.Emit(at, obs.KindDequeue, l.obsSubj, int64(l.queuedBytes), int64(pkt.Size))
	}
	if l.cfg.Down != nil && l.cfg.Down(at) {
		l.net.putLinkEvent(ev)
		l.stats.DropsDown++
		l.drop(at, pkt, DropOutage)
		return
	}
	if l.cfg.Loss != nil && l.cfg.Loss.Lost(at) {
		l.net.putLinkEvent(ev)
		l.stats.DropsLoss++
		l.drop(at, pkt, DropMedium)
		return
	}
	var prop time.Duration
	if l.cfg.Delay != nil {
		prop = l.cfg.Delay(at)
	}
	if l.cfg.Jitter != nil {
		prop += l.cfg.Jitter(at)
	}
	arrival := at.Add(prop)
	// A link is a FIFO pipe: jitter and shrinking path delays must
	// not reorder packets in flight.
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	if l.cross != nil {
		// Cross-partition link: the propagation hop happens on the
		// destination partition's clock via the cross edge (crosslink.go).
		l.net.putLinkEvent(ev)
		l.stageCross(arrival, pkt)
		return
	}
	s.AtFunc(arrival, linkDeliver, ev)
}

// deliver hands the packet to the far node. The event returns to the
// pool first so nested sends triggered by delivery can reuse it.
func (ev *linkEvent) deliver() {
	l, pkt := ev.link, ev.pkt
	l.net.putLinkEvent(ev)
	l.stats.Delivered++
	if l.obs != nil {
		l.obs.delivered.Inc()
	}
	if l.DeliverHook != nil {
		l.DeliverHook(l.net.sched.Now(), pkt)
	}
	l.to.receive(pkt)
}

func (l *Link) drop(now sim.Time, pkt *Packet, reason DropReason) {
	if l.obs != nil {
		switch reason {
		case DropQueueFull:
			l.obs.dropQueue.Inc()
		case DropMedium:
			l.obs.dropMedium.Inc()
		case DropOutage:
			l.obs.dropOutage.Inc()
		}
		l.obs.tr.Emit(now, obs.KindDrop, l.obsSubj, int64(reason), int64(pkt.Size))
	}
	if l.DropHook != nil {
		// The hook may retain the packet (loss-inspection tests do), so a
		// hooked drop is left to the GC.
		l.DropHook(now, pkt, reason)
		return
	}
	l.net.releaseConsumed(pkt)
}
