package netem

import (
	"fmt"
	"time"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// DelayFunc returns the one-way propagation delay of a link at a given
// instant. LEO access links vary with satellite motion; terrestrial links
// are constant.
type DelayFunc func(now sim.Time) time.Duration

// ConstantDelay returns a DelayFunc with a fixed delay.
func ConstantDelay(d time.Duration) DelayFunc {
	return func(sim.Time) time.Duration { return d }
}

// Fidelity selects how much of the link machinery a packet traverses.
// The zero value is FidelityFull — the reference datapath every lower
// tier is held bit-identical to (on configurations where the skipped
// machinery is provably unreachable; see Network.AutoSelectFidelity).
type Fidelity uint8

const (
	// FidelityFull is the complete datapath: DropTail queue, serialization
	// at RateBps, outage and medium loss at the end of serialization, then
	// propagation + jitter. Always correct; the in-tree reference.
	FidelityFull Fidelity = iota
	// FidelityDelayOnly skips the serialization/queue hop (sound only when
	// RateBps == 0 and QueueBytes == 0, where the full path's queue
	// machinery is unreachable) but still applies outage, medium loss,
	// propagation and jitter — in one scheduler event instead of two.
	FidelityDelayOnly
	// FidelityFast is pure delay passthrough for infinite-rate lossless
	// mesh/cross links: propagation only, nothing else evaluated.
	FidelityFast
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case FidelityFull:
		return "full"
	case FidelityDelayOnly:
		return "delay-only"
	case FidelityFast:
		return "fast"
	default:
		return "fidelity?"
	}
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// RateBps is the serialization rate in bits per second; 0 means
	// infinitely fast (no serialization delay, no queue buildup).
	RateBps float64
	// Delay is the propagation delay; nil means zero.
	Delay DelayFunc
	// QueueBytes caps the DropTail egress queue (including the packet in
	// service); 0 means unbounded.
	QueueBytes int
	// Loss is the medium loss process applied as packets leave the
	// queue; nil means lossless.
	Loss LossModel
	// Down reports link outage at an instant; packets finishing
	// serialization during an outage are dropped. nil means always up.
	Down func(now sim.Time) bool
	// Jitter, if non-nil, returns an extra per-packet propagation delay
	// (e.g. LEO scheduling jitter). It must be non-negative: the FIFO
	// arrival clamp and the fast-forward closed forms both assume delays
	// only stretch forward. A negative sample panics deterministically at
	// the instant it is drawn rather than silently corrupting arrivals.
	Jitter func(now sim.Time) time.Duration
	// Fidelity selects the datapath tier (see the Fidelity constants).
	// The zero value is FidelityFull. Most callers leave it zero and let
	// Network.AutoSelectFidelity downgrade links whose configuration makes
	// the skipped machinery unreachable; setting a lower tier explicitly
	// on a link with a rate, queue, loss or outage changes semantics and
	// is on the caller.
	Fidelity Fidelity
}

// DropReason classifies why a link dropped a packet.
type DropReason uint8

// Drop reasons, distinguished because the paper distinguishes congestion
// losses (queue overflow under load) from medium losses and outages.
const (
	DropQueueFull DropReason = iota
	DropMedium
	DropOutage
	DropTTL
	DropNoRoute
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropMedium:
		return "medium"
	case DropOutage:
		return "outage"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	default:
		return "drop?"
	}
}

// LinkStats counts link activity.
type LinkStats struct {
	Sent       uint64 // packets accepted for transmission
	Delivered  uint64 // packets handed to the far node
	DropsQueue uint64
	DropsLoss  uint64
	DropsDown  uint64
	// QueuedPeak is the peak queue occupancy in bytes, counting the
	// packet in service (it occupies its bytes until serialization ends),
	// matching how QueueBytes caps the queue. Rate-0 links never queue,
	// so their peak stays 0.
	QueuedPeak int
}

// Link is one direction of a connection between two nodes.
type Link struct {
	name string
	net  *Network
	to   *Node
	cfg  LinkConfig

	busyUntil   sim.Time
	queuedBytes int
	lastArrival sim.Time
	stats       LinkStats

	// autoTier marks cfg.Fidelity as chosen by AutoSelectFidelity rather
	// than the caller: the Set* mutators then re-derive the tier so a
	// post-selection SetRate/SetLoss/SetDown can never leave a downgraded
	// link with machinery the tier would skip.
	autoTier bool

	// obs is the shared network observability bundle, nil when disabled;
	// obsSubj is this link's interned trace subject.
	obs     *netObs
	obsSubj obs.Subj

	// cross, when non-nil, marks this as a cross-partition link: instead
	// of scheduling delivery locally, txDone stages a copied record on the
	// PDES cross edge (crosslink.go).
	cross *crossEndpoint

	// DropHook, when set, observes every packet the link drops.
	DropHook func(now sim.Time, pkt *Packet, reason DropReason)
	// DeliverHook, when set, observes every packet as it arrives at the
	// far node (after propagation). Captures attach here.
	DeliverHook func(now sim.Time, pkt *Packet)
}

// Name returns the link's diagnostic name ("a->b").
func (l *Link) Name() string { return l.name }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueuedBytes returns the current egress queue occupancy.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// SetLoss replaces the link's medium loss model.
func (l *Link) SetLoss(m LossModel) { l.cfg.Loss = m; l.retier() }

// SetRate replaces the link's serialization rate.
func (l *Link) SetRate(bps float64) { l.cfg.RateBps = bps; l.retier() }

// SetDown replaces the link's outage predicate.
func (l *Link) SetDown(down func(sim.Time) bool) { l.cfg.Down = down; l.retier() }

// Fidelity returns the link's current datapath tier.
func (l *Link) Fidelity() Fidelity { return l.cfg.Fidelity }

// autoFidelity derives the highest-performing tier the configuration
// provably supports: no rate and no queue cap means the queue machinery
// is unreachable (FidelityDelayOnly); additionally no loss, no outage and
// no jitter means nothing but propagation can happen (FidelityFast).
func (c *LinkConfig) autoFidelity() Fidelity {
	if c.RateBps > 0 || c.QueueBytes > 0 {
		return FidelityFull
	}
	if c.Loss == nil && c.Down == nil && c.Jitter == nil {
		return FidelityFast
	}
	return FidelityDelayOnly
}

// retier re-derives an auto-selected tier after a config mutation.
// Explicitly configured tiers are left alone — the caller asked for that
// semantics — but an auto-downgraded link must never keep a tier whose
// skipped machinery a mutation just made reachable.
func (l *Link) retier() {
	if l.autoTier {
		l.cfg.Fidelity = l.cfg.autoFidelity()
	}
}

// Config returns the link configuration (by value).
func (l *Link) Config() LinkConfig { return l.cfg }

// linkEvent carries one in-flight packet through its two scheduler hops
// (end of serialization, then arrival). Events are pooled on the Network
// and passed to sim.AtFunc as the arg pointer, so forwarding a packet
// schedules without allocating a closure, a timer, or the event itself.
type linkEvent struct {
	link *Link
	pkt  *Packet
}

// linkTxDone and linkDeliver are the package-level EventFunc trampolines
// for the two hops; being plain functions, scheduling them boxes nothing.
func linkTxDone(arg any)  { arg.(*linkEvent).txDone() }
func linkDeliver(arg any) { arg.(*linkEvent).deliver() }

// send enqueues pkt for transmission. Queue overflow drops immediately
// (congestion loss); otherwise the packet serializes FIFO at the link
// rate, may be lost to the medium or an outage at the end of
// serialization, and is delivered to the far node after propagation.
//
// Queue-depth metrics and enqueue/dequeue trace records are emitted only
// for links with a real queue (RateBps > 0): a rate-0 link's depth is
// identically zero, and keeping those records out of the trace is what
// lets the lower fidelity tiers (which collapse the serialization hop)
// stay byte-identical to this path on the obs exports.
func (l *Link) send(pkt *Packet) {
	if l.cfg.Fidelity != FidelityFull {
		l.sendBypass(pkt)
		return
	}
	s := l.net.sched
	now := s.Now()

	if l.cfg.QueueBytes > 0 && l.queuedBytes+pkt.Size > l.cfg.QueueBytes {
		l.stats.DropsQueue++
		l.drop(now, pkt, DropQueueFull)
		return
	}

	var txDone sim.Time
	if l.cfg.RateBps > 0 {
		tx := time.Duration(float64(pkt.Size*8) / l.cfg.RateBps * float64(time.Second))
		start := now
		if l.busyUntil > start {
			start = l.busyUntil
		}
		txDone = start.Add(tx)
		l.busyUntil = txDone
		l.queuedBytes += pkt.Size
		if l.queuedBytes > l.stats.QueuedPeak {
			l.stats.QueuedPeak = l.queuedBytes
		}
		if l.obs != nil {
			l.obs.queueDepth.Observe(int64(l.queuedBytes))
			l.obs.tr.Emit(now, obs.KindEnqueue, l.obsSubj, int64(l.queuedBytes), int64(pkt.Size))
		}
	} else {
		txDone = now
	}
	l.stats.Sent++
	if l.obs != nil {
		l.obs.sent.Inc()
	}

	s.AtFunc(txDone, linkTxDone, l.net.getLinkEvent(l, pkt))
}

// sendBypass is the delay-only/fast datapath: one scheduler event instead
// of the serialization + arrival pair. The queue machinery is skipped
// outright (sound because auto-selection only picks these tiers when
// RateBps == 0 and QueueBytes == 0, where the full path would compute
// txDone == now with zero occupancy), and FidelityFast additionally skips
// outage, loss and jitter (sound when all three are nil). Everything that
// remains — drop checks, propagation, the FIFO arrival clamp, stats and
// obs counters, cross-partition staging — evaluates at the same instant
// with the same RNG draw order as the full path, which is what the
// bit-identity suites pin.
func (l *Link) sendBypass(pkt *Packet) {
	s := l.net.sched
	now := s.Now()
	l.stats.Sent++
	if l.obs != nil {
		l.obs.sent.Inc()
	}
	if l.cfg.Fidelity == FidelityDelayOnly {
		if l.cfg.Down != nil && l.cfg.Down(now) {
			l.stats.DropsDown++
			l.drop(now, pkt, DropOutage)
			return
		}
		if l.cfg.Loss != nil && l.cfg.Loss.Lost(now) {
			l.stats.DropsLoss++
			l.drop(now, pkt, DropMedium)
			return
		}
	}
	var prop time.Duration
	if l.cfg.Delay != nil {
		prop = l.cfg.Delay(now)
	}
	if l.cfg.Fidelity == FidelityDelayOnly && l.cfg.Jitter != nil {
		prop += l.jitterAt(now)
	}
	arrival := now.Add(prop)
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	if l.cross != nil {
		l.stageCross(arrival, pkt)
		return
	}
	s.AtFunc(arrival, linkDeliver, l.net.getLinkEvent(l, pkt))
}

// jitterAt draws one jitter sample and enforces the LinkConfig.Jitter
// contract: a negative sample panics at the draw instant, identically on
// every tier, so closed-form delay math downstream can rely on jitter
// only ever stretching arrivals forward.
func (l *Link) jitterAt(at sim.Time) time.Duration {
	j := l.cfg.Jitter(at)
	if j < 0 {
		panic(fmt.Sprintf("netem: link %s: Jitter returned %v at t=%d; the contract requires non-negative jitter", l.name, j, int64(at)))
	}
	return j
}

// LastArrival returns the arrival instant of the latest packet put on
// the wire — the link's FIFO clamp state. Because the clamp takes the
// max of raw arrivals, this value is order-independent: it equals the
// maximum raw arrival over all packets sent so far, which is what lets
// analytic fast-forwards both test it (would the next packet be
// clamped?) and maintain it exactly (AccountBypassed).
func (l *Link) LastArrival() sim.Time { return l.lastArrival }

// AccountBypassed credits n packets that an analytic fast-forward proved
// this link would have carried and delivered: Sent/Delivered stats and
// the obs counters advance as if each packet had traversed the link, and
// the FIFO clamp state absorbs the last credited packet's raw arrival
// (max-merge — exactly the value full emulation would have left, since
// lastArrival is the max of raw arrivals in any order). Only meaningful
// on queue-less tiers — a link with a rate has busyUntil and occupancy
// state that closed forms upstream don't model, so crediting one is a
// bug, caught here.
func (l *Link) AccountBypassed(n uint64, lastArrival sim.Time) {
	if l.cfg.Fidelity == FidelityFull || l.cfg.RateBps > 0 {
		panic(fmt.Sprintf("netem: AccountBypassed on %s, which runs the full datapath", l.name))
	}
	l.stats.Sent += n
	l.stats.Delivered += n
	if lastArrival > l.lastArrival {
		l.lastArrival = lastArrival
	}
	if l.obs != nil {
		l.obs.sent.Add(n)
		l.obs.delivered.Add(n)
	}
}

// txDone runs at the end of serialization: dequeue, apply outage and
// medium loss, then schedule the arrival after propagation (reusing the
// same pooled event for the second hop).
func (ev *linkEvent) txDone() {
	l, pkt := ev.link, ev.pkt
	s := l.net.sched
	at := s.Now()
	if l.cfg.RateBps > 0 {
		l.queuedBytes -= pkt.Size
		if l.obs != nil {
			l.obs.tr.Emit(at, obs.KindDequeue, l.obsSubj, int64(l.queuedBytes), int64(pkt.Size))
		}
	}
	if l.cfg.Down != nil && l.cfg.Down(at) {
		l.net.putLinkEvent(ev)
		l.stats.DropsDown++
		l.drop(at, pkt, DropOutage)
		return
	}
	if l.cfg.Loss != nil && l.cfg.Loss.Lost(at) {
		l.net.putLinkEvent(ev)
		l.stats.DropsLoss++
		l.drop(at, pkt, DropMedium)
		return
	}
	var prop time.Duration
	if l.cfg.Delay != nil {
		prop = l.cfg.Delay(at)
	}
	if l.cfg.Jitter != nil {
		prop += l.jitterAt(at)
	}
	arrival := at.Add(prop)
	// A link is a FIFO pipe: jitter and shrinking path delays must
	// not reorder packets in flight.
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	if l.cross != nil {
		// Cross-partition link: the propagation hop happens on the
		// destination partition's clock via the cross edge (crosslink.go).
		l.net.putLinkEvent(ev)
		l.stageCross(arrival, pkt)
		return
	}
	s.AtFunc(arrival, linkDeliver, ev)
}

// deliver hands the packet to the far node. The event returns to the
// pool first so nested sends triggered by delivery can reuse it.
func (ev *linkEvent) deliver() {
	l, pkt := ev.link, ev.pkt
	l.net.putLinkEvent(ev)
	l.stats.Delivered++
	if l.obs != nil {
		l.obs.delivered.Inc()
	}
	if l.DeliverHook != nil {
		l.DeliverHook(l.net.sched.Now(), pkt)
	}
	l.to.receive(pkt)
}

func (l *Link) drop(now sim.Time, pkt *Packet, reason DropReason) {
	if l.obs != nil {
		switch reason {
		case DropQueueFull:
			l.obs.dropQueue.Inc()
		case DropMedium:
			l.obs.dropMedium.Inc()
		case DropOutage:
			l.obs.dropOutage.Inc()
		}
		l.obs.tr.Emit(now, obs.KindDrop, l.obsSubj, int64(reason), int64(pkt.Size))
	}
	if l.DropHook != nil {
		// The hook may retain the packet (loss-inspection tests do), so a
		// hooked drop is left to the GC.
		l.DropHook(now, pkt, reason)
		return
	}
	l.net.releaseConsumed(pkt)
}
