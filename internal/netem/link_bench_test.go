package netem

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

// BenchmarkLinkForward measures one packet's full trip through a rated
// link: enqueue, serialization event, propagation, delivery. With the
// pooled link events and the allocation-free scheduler this is 0
// allocs/op in steady state.
func BenchmarkLinkForward(b *testing.B) {
	s := sim.NewScheduler(1)
	nw := New(s)
	src := nw.NewNode("src", MustParseAddr("10.0.0.1"))
	dst := nw.NewNode("dst", MustParseAddr("10.0.0.2"))
	fwd, _ := nw.Connect(src, dst, LinkConfig{
		RateBps:    1e9,
		Delay:      ConstantDelay(5 * time.Millisecond),
		QueueBytes: 1 << 20,
	})
	src.AddRoute(dst.Addr(), fwd)
	delivered := 0
	dst.Bind(ProtoUDP, 9, func(pkt *Packet) { delivered++ })

	pkt := &Packet{Dst: dst.Addr(), DstPort: 9, Proto: ProtoUDP, Size: 1200}
	send := func() {
		pkt.TTL = 0 // Send refills the TTL
		pkt.Hops = pkt.Hops[:0]
		src.Send(pkt)
		s.Run()
	}
	send() // warm the event pool and Hops capacity

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	if delivered != b.N+1 {
		b.Fatalf("delivered %d of %d", delivered, b.N+1)
	}
}
