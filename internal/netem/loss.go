package netem

import (
	"time"

	"starlinkperf/internal/sim"
)

// LossModel decides, per packet, whether the medium loses it. Models are
// consulted at the instant the packet would be put on the wire.
type LossModel interface {
	// Lost reports whether a packet transmitted at now is lost.
	Lost(now sim.Time) bool
}

// NoLoss is the zero loss model.
type NoLoss struct{}

// Lost always reports false.
func (NoLoss) Lost(sim.Time) bool { return false }

// BernoulliLoss drops each packet independently with probability P.
type BernoulliLoss struct {
	P   float64
	Rng *sim.RNG
}

// Lost implements LossModel.
func (b *BernoulliLoss) Lost(sim.Time) bool { return b.Rng.Bool(b.P) }

// GilbertElliott is the classic two-state Markov burst-loss model: a Good
// state with loss probability LossGood and a Bad state with LossBad;
// transitions Good->Bad with PGB and Bad->Good with PBG per packet.
//
// The stationary loss rate is
//
//	pi_B = PGB / (PGB + PBG)
//	loss = (1-pi_B)*LossGood + pi_B*LossBad
//
// which the campaign calibration uses to hit the paper's Table 2 ratios
// while keeping the burstiness of Figure 4.
type GilbertElliott struct {
	PGB, PBG          float64
	LossGood, LossBad float64
	Rng               *sim.RNG
	bad               bool
}

// Lost implements LossModel.
func (g *GilbertElliott) Lost(sim.Time) bool {
	if g.bad {
		if g.Rng.Bool(g.PBG) {
			g.bad = false
		}
	} else {
		if g.Rng.Bool(g.PGB) {
			g.bad = true
		}
	}
	if g.bad {
		return g.Rng.Bool(g.LossBad)
	}
	return g.Rng.Bool(g.LossGood)
}

// StationaryLossRate returns the analytic long-run loss probability of the
// model, used by tests and by profile fitting.
func (g *GilbertElliott) StationaryLossRate() float64 {
	denom := g.PGB + g.PBG
	if denom == 0 {
		return g.LossGood
	}
	piB := g.PGB / denom
	return (1-piB)*g.LossGood + piB*g.LossBad
}

// Outage is a closed interval of link downtime.
type Outage struct {
	Start sim.Time
	End   sim.Time
}

// OutageSchedule drops every packet that would be on the wire during one
// of its outages. The LEO simulator generates these from handover gaps
// and rare connectivity losses (the paper's >1 s loss events).
type OutageSchedule struct {
	// Outages must be sorted by Start and non-overlapping.
	Outages []Outage
	cursor  int
}

// Lost implements LossModel.
func (o *OutageSchedule) Lost(now sim.Time) bool {
	return o.Down(now)
}

// Down reports whether the link is inside an outage at now. Queries must
// be issued in non-decreasing time order (the simulator guarantees this);
// the cursor makes the check O(1) amortized.
func (o *OutageSchedule) Down(now sim.Time) bool {
	for o.cursor < len(o.Outages) && o.Outages[o.cursor].End < now {
		o.cursor++
	}
	if o.cursor >= len(o.Outages) {
		return false
	}
	out := o.Outages[o.cursor]
	return now >= out.Start && now <= out.End
}

// PoissonOutages draws a deterministic outage schedule over [0, horizon):
// events arrive with the given mean interarrival time and last for a
// duration drawn log-normally around meanDuration.
func PoissonOutages(rng *sim.RNG, horizon sim.Time, meanInterarrival, meanDuration time.Duration) *OutageSchedule {
	var sched OutageSchedule
	t := sim.Time(0)
	for {
		gap := time.Duration(rng.Exponential(float64(meanInterarrival)))
		t = t.Add(gap)
		if t >= horizon {
			break
		}
		// Log-normal with sigma 0.5 around the requested mean duration.
		const sigma = 0.5
		mu := float64(meanDuration) // mean of exp(mu') with correction below
		d := time.Duration(rng.LogNormal(0, sigma) * mu)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		sched.Outages = append(sched.Outages, Outage{Start: t, End: t.Add(d)})
		t = t.Add(d)
	}
	return &sched
}

// CompositeLoss loses a packet when any of its submodels does.
type CompositeLoss []LossModel

// Lost implements LossModel.
func (c CompositeLoss) Lost(now sim.Time) bool {
	lost := false
	for _, m := range c {
		// Consult every model so stateful models (Gilbert-Elliott)
		// advance regardless of short-circuiting.
		if m.Lost(now) {
			lost = true
		}
	}
	return lost
}
