package netem

import (
	"math"
	"testing"

	"starlinkperf/internal/sim"
)

// Property-style checks of the Gilbert-Elliott burst-loss model: the
// long-run loss ratio must converge to the configured (analytic) rate and
// burst lengths must look geometric with the configured mean, for every
// calibration the campaigns use.

// geModel builds the campaign-style parameterization: target loss
// fraction p with mean burst length meanBurst (see core.mediumLoss).
func geModel(pctLoss, meanBurst float64, rng *sim.RNG) *GilbertElliott {
	p := pctLoss / 100
	pbg := 1 / meanBurst
	return &GilbertElliott{
		PGB:      pbg * p / (1 - p),
		PBG:      pbg,
		LossGood: 0,
		LossBad:  1,
		Rng:      rng,
	}
}

func TestGilbertElliottLossRatioConverges(t *testing.T) {
	cases := []struct {
		pct, burst float64
	}{
		{0.05, 2},
		{0.2, 2},
		{1.0, 4},
		{2.5, 8},
	}
	const n = 2_000_000
	for _, c := range cases {
		g := geModel(c.pct, c.burst, sim.NewRNG(1).Stream("loss-prop"))
		want := g.StationaryLossRate()
		lost := 0
		for i := 0; i < n; i++ {
			if g.Lost(0) {
				lost++
			}
		}
		got := float64(lost) / n
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("pct=%v burst=%v: observed loss %.5f, analytic %.5f (>10%% off)",
				c.pct, c.burst, got, want)
		}
		// The analytic rate itself must match the requested fraction.
		if req := c.pct / 100; math.Abs(want-req)/req > 1e-9 {
			t.Errorf("pct=%v: stationary rate %.6g != requested %.6g", c.pct, want, req)
		}
	}
}

func TestGilbertElliottBurstLengthsGeometric(t *testing.T) {
	for _, c := range []struct {
		pct, burst float64
	}{
		{0.5, 2},
		{1.0, 4},
	} {
		g := geModel(c.pct, c.burst, sim.NewRNG(7).Stream("burst-prop"))
		const n = 4_000_000
		var bursts []int
		cur := 0
		for i := 0; i < n; i++ {
			if g.Lost(0) {
				cur++
			} else if cur > 0 {
				bursts = append(bursts, cur)
				cur = 0
			}
		}
		if len(bursts) < 1000 {
			t.Fatalf("pct=%v: only %d bursts observed", c.pct, len(bursts))
		}
		total, ones := 0, 0
		for _, b := range bursts {
			total += b
			if b == 1 {
				ones++
			}
		}
		mean := float64(total) / float64(len(bursts))
		if math.Abs(mean-c.burst)/c.burst > 0.10 {
			t.Errorf("pct=%v: mean burst %.3f, want ~%.1f", c.pct, mean, c.burst)
		}
		// Geometric(1/mean): P(L=1) = PBG.
		p1 := float64(ones) / float64(len(bursts))
		if want := 1 / c.burst; math.Abs(p1-want)/want > 0.10 {
			t.Errorf("pct=%v: P(burst=1)=%.3f, want ~%.3f (geometric)", c.pct, p1, want)
		}
	}
}

func TestCompositeLossAdvancesAllModels(t *testing.T) {
	// CompositeLoss must consult every member even when an earlier one
	// already lost the packet, so stateful models advance identically
	// whether or not they are composed. A Gilbert-Elliott behind an
	// always-lossy member must therefore emit the same Lost sequence as
	// an identically seeded solo clone.
	solo := geModel(1.0, 4, sim.NewRNG(3).Stream("ge"))
	ge := geModel(1.0, 4, sim.NewRNG(3).Stream("ge"))
	comp := CompositeLoss{&BernoulliLoss{P: 1.0, Rng: sim.NewRNG(11).Stream("always")}, ge}
	for i := 0; i < 200000; i++ {
		if !comp.Lost(0) {
			t.Fatal("composite with an always-lossy member must always lose")
		}
		if ge.bad != solo.Lost(0) {
			t.Fatalf("step %d: composed GE state diverged from solo clone", i)
		}
	}
}
