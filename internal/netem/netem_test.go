package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"starlinkperf/internal/sim"
)

func testNet(t *testing.T) (*sim.Scheduler, *Network) {
	t.Helper()
	s := sim.NewScheduler(42)
	return s, New(s)
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"192.168.1.1", 0xc0a80101, true},
		{"100.64.0.1", 0x64400001, true},
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1.2.3.256", 0, false},
		{"a.b.c.d", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrClassification(t *testing.T) {
	if !MustParseAddr("192.168.1.1").Private() {
		t.Error("192.168.1.1 should be private")
	}
	if !MustParseAddr("10.20.30.40").Private() {
		t.Error("10/8 should be private")
	}
	if !MustParseAddr("172.16.0.1").Private() || MustParseAddr("172.32.0.1").Private() {
		t.Error("172.16/12 classification wrong")
	}
	if !MustParseAddr("100.64.0.1").CGNAT() {
		t.Error("100.64.0.1 should be CGNAT space")
	}
	if !MustParseAddr("100.127.255.255").CGNAT() || MustParseAddr("100.128.0.0").CGNAT() {
		t.Error("100.64/10 boundary wrong")
	}
	if MustParseAddr("8.8.8.8").Private() || MustParseAddr("8.8.8.8").CGNAT() {
		t.Error("8.8.8.8 misclassified")
	}
}

func TestChecksumChangesWithRewrite(t *testing.T) {
	a := PseudoChecksum(MustParseAddr("192.168.1.2"), MustParseAddr("8.8.8.8"), 1000, 443, ProtoUDP)
	b := PseudoChecksum(MustParseAddr("100.64.0.7"), MustParseAddr("8.8.8.8"), 1000, 443, ProtoUDP)
	if a == b {
		t.Error("checksum must change when the source address is rewritten")
	}
}

// buildChain creates a linear topology n0 - n1 - ... - n_{k-1} with the
// given per-hop delay and infinite-rate links, and default routes pointing
// "right" plus exact return routes pointing "left".
func buildChain(nw *Network, k int, hop time.Duration) []*Node {
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = nw.NewNode(string(rune('a'+i)), Addr(0x0a000001+uint32(i)))
	}
	for i := 0; i+1 < len(nodes); i++ {
		right, left := nw.Connect(nodes[i], nodes[i+1], LinkConfig{Delay: ConstantDelay(hop)})
		nodes[i].SetDefaultRoute(right)
		nodes[i+1].AddRoute(nodes[i].Addr(), left)
		// Return path for everything to the left.
		for j := 0; j <= i; j++ {
			nodes[i+1].AddRoute(nodes[j].Addr(), left)
		}
	}
	return nodes
}

func TestEndToEndDelivery(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 4, 5*time.Millisecond)
	src, dst := nodes[0], nodes[3]

	var got *Packet
	var at sim.Time
	dst.Bind(ProtoUDP, 9000, func(p *Packet) { got, at = p, s.Now() })

	src.Send(&Packet{Dst: dst.Addr(), DstPort: 9000, Proto: ProtoUDP, Size: 100, Payload: "hi"})
	s.Run()

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hi" {
		t.Errorf("payload = %v", got.Payload)
	}
	if want := sim.Time(15 * time.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v (3 hops x 5ms)", at, want)
	}
	if got.TTL != DefaultTTL-2 {
		t.Errorf("TTL = %d, want %d (2 transit nodes)", got.TTL, DefaultTTL-2)
	}
}

func TestSerializationDelay(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	// 8 Mbit/s: a 1000-byte packet serializes in 1 ms.
	ab, _ := nw.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: ConstantDelay(10 * time.Millisecond)})
	a.AddRoute(b.Addr(), ab)

	var arrivals []sim.Time
	b.Bind(ProtoUDP, 1, func(p *Packet) { arrivals = append(arrivals, s.Now()) })

	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 1000})
	}
	s.Run()

	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	// Back-to-back sends serialize FIFO: arrivals at 11, 12, 13 ms.
	for i, want := range []time.Duration{11, 12, 13} {
		if arrivals[i] != sim.Time(want*time.Millisecond) {
			t.Errorf("arrival %d at %v, want %vms", i, arrivals[i], want)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	ab, _ := nw.Connect(a, b, LinkConfig{RateBps: 8e6, QueueBytes: 2500})
	a.AddRoute(b.Addr(), ab)

	var drops int
	ab.DropHook = func(_ sim.Time, _ *Packet, r DropReason) {
		if r != DropQueueFull {
			t.Errorf("drop reason = %v, want queue-full", r)
		}
		drops++
	}
	delivered := 0
	b.Bind(ProtoUDP, 1, func(p *Packet) { delivered++ })

	// 5 packets of 1000B into a 2500B queue: 2 fit (plus in-service), 3 drop.
	for i := 0; i < 5; i++ {
		a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 1000})
	}
	s.Run()

	if delivered != 2 || drops != 3 {
		t.Errorf("delivered/drops = %d/%d, want 2/3", delivered, drops)
	}
	st := ab.Stats()
	if st.DropsQueue != 3 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBernoulliLossRate(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	rng := s.RNG().Stream("loss")
	ab, _ := nw.Connect(a, b, LinkConfig{Loss: &BernoulliLoss{P: 0.1, Rng: rng}})
	a.AddRoute(b.Addr(), ab)

	delivered := 0
	b.Bind(ProtoUDP, 1, func(p *Packet) { delivered++ })
	const n = 20000
	for i := 0; i < n; i++ {
		a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 100})
	}
	s.Run()

	rate := 1 - float64(delivered)/n
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("observed loss %v, want ~0.1", rate)
	}
}

func TestGilbertElliottStationaryRate(t *testing.T) {
	rng := sim.NewRNG(7).Stream("ge")
	ge := &GilbertElliott{PGB: 0.01, PBG: 0.3, LossGood: 0.001, LossBad: 0.4, Rng: rng}
	want := ge.StationaryLossRate()

	lost := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if ge.Lost(0) {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("empirical loss %v, analytic %v", got, want)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := sim.NewRNG(9).Stream("ge")
	// Strongly bursty: long bad states that always lose.
	ge := &GilbertElliott{PGB: 0.002, PBG: 0.2, LossGood: 0, LossBad: 1, Rng: rng}
	var bursts []int
	run := 0
	for i := 0; i < 200000; i++ {
		if ge.Lost(0) {
			run++
		} else if run > 0 {
			bursts = append(bursts, run)
			run = 0
		}
	}
	if len(bursts) == 0 {
		t.Fatal("no loss bursts")
	}
	sum := 0
	for _, b := range bursts {
		sum += b
	}
	mean := float64(sum) / float64(len(bursts))
	// Geometric with p=0.2 has mean 5.
	if mean < 3 || mean > 8 {
		t.Errorf("mean burst length %v, want ~5", mean)
	}
}

func TestOutageScheduleDown(t *testing.T) {
	o := &OutageSchedule{Outages: []Outage{
		{Start: sim.Time(10 * time.Second), End: sim.Time(11 * time.Second)},
		{Start: sim.Time(20 * time.Second), End: sim.Time(22 * time.Second)},
	}}
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{9 * time.Second, false},
		{10 * time.Second, true},
		{10500 * time.Millisecond, true},
		{11 * time.Second, true},
		{12 * time.Second, false},
		{21 * time.Second, true},
		{23 * time.Second, false},
	}
	for _, c := range cases {
		if got := o.Down(sim.Time(c.at)); got != c.down {
			t.Errorf("Down(%v) = %v, want %v", c.at, got, c.down)
		}
	}
}

func TestPoissonOutagesWithinHorizon(t *testing.T) {
	rng := sim.NewRNG(5).Stream("outage")
	horizon := sim.Time(24 * time.Hour)
	sched := PoissonOutages(rng, horizon, time.Hour, 2*time.Second)
	if len(sched.Outages) == 0 {
		t.Fatal("expected some outages over 24h with 1h interarrival")
	}
	prevEnd := sim.Time(-1)
	for _, o := range sched.Outages {
		if o.Start >= horizon {
			t.Errorf("outage starts after horizon: %+v", o)
		}
		if o.End <= o.Start {
			t.Errorf("empty outage: %+v", o)
		}
		if o.Start <= prevEnd {
			t.Errorf("overlapping outages at %v", o.Start)
		}
		prevEnd = o.End
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 4, time.Millisecond)
	src := nodes[0]

	var reply *Packet
	src.Bind(ProtoICMP, 0, func(p *Packet) { reply = p })

	src.Send(&Packet{Dst: nodes[3].Addr(), DstPort: 33434, Proto: ProtoUDP, Size: 60, TTL: 2})
	s.Run()

	if reply == nil {
		t.Fatal("no ICMP reply")
	}
	icmp := reply.Payload.(*ICMP)
	if icmp.Type != ICMPTimeExceeded {
		t.Fatalf("ICMP type = %v", icmp.Type)
	}
	// TTL 2: expires at the second node it reaches after the first hop,
	// i.e. node index 2 (a sends, b forwards TTL->1, c expires it).
	if reply.Src != nodes[2].Addr() {
		t.Errorf("time-exceeded from %v, want %v", reply.Src, nodes[2].Addr())
	}
	if icmp.Quoted == nil || icmp.Quoted.Dst != nodes[3].Addr() {
		t.Error("quoted packet missing or wrong")
	}
}

func TestEchoResponder(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 3, 2*time.Millisecond)
	nodes[2].EchoResponder = true

	var rtt time.Duration
	nodes[0].Bind(ProtoICMP, 0, func(p *Packet) {
		icmp := p.Payload.(*ICMP)
		if icmp.Type == ICMPEchoReply {
			rtt = s.Now().Sub(0)
		}
	})
	nodes[0].Send(&Packet{Dst: nodes[2].Addr(), Proto: ProtoICMP, Size: 64, Payload: &ICMP{Type: ICMPEchoRequest, Seq: 1}})
	s.Run()

	if rtt != 8*time.Millisecond {
		t.Errorf("echo RTT = %v, want 8ms (2 hops x 2ms x 2)", rtt)
	}
}

func TestDestUnreachableWhenNoListener(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 2, time.Millisecond)

	var reply *Packet
	nodes[0].Bind(ProtoICMP, 0, func(p *Packet) { reply = p })
	nodes[0].Send(&Packet{Dst: nodes[1].Addr(), DstPort: 4242, Proto: ProtoUDP, Size: 60})
	s.Run()

	if reply == nil {
		t.Fatal("no ICMP reply")
	}
	if icmp := reply.Payload.(*ICMP); icmp.Type != ICMPDestUnreachable {
		t.Errorf("ICMP type = %v, want dest-unreachable", icmp.Type)
	}
}

func TestNoRouteAnswersUnreachable(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 2, time.Millisecond)
	// Node 1 has no route for 10.9.9.9 and no default.
	var reply *Packet
	nodes[0].Bind(ProtoICMP, 0, func(p *Packet) { reply = p })
	nodes[0].Send(&Packet{Dst: MustParseAddr("10.9.9.9"), DstPort: 1, Proto: ProtoUDP, Size: 60})
	s.Run()
	if reply == nil {
		t.Fatal("no ICMP reply for unroutable destination")
	}
	if icmp := reply.Payload.(*ICMP); icmp.Type != ICMPDestUnreachable {
		t.Errorf("ICMP type = %v", icmp.Type)
	}
}

func TestPrefixRouting(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.1.0.1"))
	c := nw.NewNode("c", MustParseAddr("10.2.0.1"))
	ab, _ := nw.Connect(a, b, LinkConfig{})
	ac, _ := nw.Connect(a, c, LinkConfig{})
	// 10.1/16 via b, broader 10/8 via c.
	a.AddPrefixRoute(MustParseAddr("10.1.0.0"), 16, ab)
	a.AddPrefixRoute(MustParseAddr("10.0.0.0"), 8, ac)

	gotB, gotC := 0, 0
	b.Bind(ProtoUDP, 1, func(p *Packet) { gotB++ })
	c.Bind(ProtoUDP, 1, func(p *Packet) { gotC++ })

	a.Send(&Packet{Dst: MustParseAddr("10.1.0.1"), DstPort: 1, Proto: ProtoUDP, Size: 10})
	a.Send(&Packet{Dst: MustParseAddr("10.2.0.1"), DstPort: 1, Proto: ProtoUDP, Size: 10})
	s.Run()

	if gotB != 1 || gotC != 1 {
		t.Errorf("longest-prefix routing wrong: b=%d c=%d", gotB, gotC)
	}
}

func TestOutagePredicateDropsDuringDowntime(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	down := func(at sim.Time) bool {
		return at >= sim.Time(time.Second) && at < sim.Time(2*time.Second)
	}
	ab, _ := nw.Connect(a, b, LinkConfig{Down: down})
	a.AddRoute(b.Addr(), ab)

	delivered := 0
	b.Bind(ProtoUDP, 1, func(p *Packet) { delivered++ })
	for _, at := range []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 2500 * time.Millisecond} {
		at := at
		s.At(sim.Time(at), func() {
			a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 10})
		})
	}
	s.Run()

	if delivered != 2 {
		t.Errorf("delivered = %d, want 2 (middle packet hits outage)", delivered)
	}
	if st := ab.Stats(); st.DropsDown != 1 {
		t.Errorf("DropsDown = %d, want 1", st.DropsDown)
	}
}

func TestTimeVaryingDelay(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.2"))
	// Delay flips from 5ms to 20ms at t=1s.
	delay := func(at sim.Time) time.Duration {
		if at < sim.Time(time.Second) {
			return 5 * time.Millisecond
		}
		return 20 * time.Millisecond
	}
	ab, _ := nw.Connect(a, b, LinkConfig{Delay: delay})
	a.AddRoute(b.Addr(), ab)

	var arrivals []sim.Time
	b.Bind(ProtoUDP, 1, func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	s.At(0, func() { a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 10}) })
	s.At(sim.Time(time.Second), func() { a.Send(&Packet{Dst: b.Addr(), DstPort: 1, Proto: ProtoUDP, Size: 10}) })
	s.Run()

	if arrivals[0] != sim.Time(5*time.Millisecond) {
		t.Errorf("first arrival %v", arrivals[0])
	}
	if arrivals[1] != sim.Time(time.Second+20*time.Millisecond) {
		t.Errorf("second arrival %v", arrivals[1])
	}
}

func TestTokenBucketShaper(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	m := nw.NewNode("m", MustParseAddr("10.0.0.2"))
	b := nw.NewNode("b", MustParseAddr("10.0.0.3"))
	am, _ := nw.Connect(a, m, LinkConfig{})
	mb, bm := nw.Connect(m, b, LinkConfig{})
	a.SetDefaultRoute(am)
	m.AddRoute(b.Addr(), mb)
	m.AddRoute(a.Addr(), bm)

	// Police matching traffic to 8 kbit/s = 1000 B/s with a 1000 B bucket.
	shaper := &TokenBucketShaper{
		RateBps:    8000,
		BurstBytes: 1000,
		Match:      func(p *Packet) bool { return p.DstPort == 443 },
	}
	m.AttachDevice(shaper)

	shaped, unshaped := 0, 0
	b.Bind(ProtoUDP, 443, func(p *Packet) { shaped++ })
	b.Bind(ProtoUDP, 80, func(p *Packet) { unshaped++ })

	// 10 x 500B back-to-back at t=0: bucket allows 2 (1000B), drops 8.
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Dst: b.Addr(), DstPort: 443, Proto: ProtoUDP, Size: 500})
		a.Send(&Packet{Dst: b.Addr(), DstPort: 80, Proto: ProtoUDP, Size: 500})
	}
	s.Run()

	if unshaped != 10 {
		t.Errorf("unshaped delivered = %d, want 10", unshaped)
	}
	if shaped != 2 {
		t.Errorf("shaped delivered = %d, want 2", shaped)
	}
	if shaper.Dropped != 8 {
		t.Errorf("shaper drops = %d, want 8", shaper.Dropped)
	}
}

func TestCompositeLossConsultsAll(t *testing.T) {
	rng := sim.NewRNG(3).Stream("x")
	ge := &GilbertElliott{PGB: 1, PBG: 0, LossGood: 0, LossBad: 1, Rng: rng}
	c := CompositeLoss{&BernoulliLoss{P: 0, Rng: rng}, ge}
	if !c.Lost(0) {
		t.Error("composite should lose when GE is in permanent bad state")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	s, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	got := 0
	a.Bind(ProtoUDP, 7, func(p *Packet) { got++ })
	a.Send(&Packet{Dst: a.Addr(), DstPort: 7, Proto: ProtoUDP, Size: 10})
	s.Run()
	if got != 1 {
		t.Error("loopback packet not delivered")
	}
}

func TestHopRecording(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 4, time.Millisecond)
	var got *Packet
	nodes[3].Bind(ProtoUDP, 5, func(p *Packet) { got = p })
	nodes[0].Send(&Packet{Dst: nodes[3].Addr(), DstPort: 5, Proto: ProtoUDP, Size: 10})
	s.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	if len(got.Hops) != 3 {
		t.Fatalf("hops = %v", got.Hops)
	}
	for i, want := range []*Node{nodes[1], nodes[2], nodes[3]} {
		if got.Hops[i] != want.Addr() {
			t.Errorf("hop %d = %v, want %v", i, got.Hops[i], want.Addr())
		}
	}
}

func TestDuplicateBindPanics(t *testing.T) {
	_, nw := testNet(t)
	a := nw.NewNode("a", MustParseAddr("10.0.0.1"))
	a.Bind(ProtoUDP, 1, func(*Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate bind should panic")
		}
	}()
	a.Bind(ProtoUDP, 1, func(*Packet) {})
}

func TestDuplicateNodePanics(t *testing.T) {
	_, nw := testNet(t)
	nw.NewNode("a", MustParseAddr("10.0.0.1"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate address should panic")
		}
	}()
	nw.NewNode("b", MustParseAddr("10.0.0.1"))
}
