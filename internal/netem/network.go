package netem

import (
	"fmt"

	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// netObs bundles the network-wide link metrics and the tracer. One
// instance is shared by every link; links keep a nil pointer when
// observability is disabled, so the hot path pays a single branch.
type netObs struct {
	tr         *obs.Tracer
	sent       *obs.Counter
	delivered  *obs.Counter
	dropQueue  *obs.Counter
	dropMedium *obs.Counter
	dropOutage *obs.Counter
	queueDepth *obs.Histogram
}

// Network owns the nodes and links of an emulated internetwork and the
// simulation scheduler driving them.
type Network struct {
	sched    *sim.Scheduler
	nodes    map[Addr]*Node
	byName   map[string]*Node
	links    []*Link
	packetID uint64
	// evFree recycles linkEvent records across all links; the pool's
	// high-water mark is the peak number of packets in flight, after
	// which the per-hop event path stops allocating.
	evFree []*linkEvent
	obs    *netObs

	// Packet/ICMP freelists and reference-mode switch (see pool.go). As
	// with evFree, the freelists' high-water mark is the peak number of
	// packets alive at once; past it the datapath stops allocating.
	reference bool
	pktFree   []*Packet
	icmpFree  []*ICMP
	poolStats PoolStats

	// crossLinks lists the links of this network that terminate in
	// another partition's network (see crosslink.go).
	crossLinks []*Link
}

// Observe attaches an observability sink to the network: every existing
// and future link reports counters, queue-depth samples, and
// enqueue/dequeue/drop trace events through it. A nil sink is a no-op.
func (nw *Network) Observe(s *obs.Sink) {
	if s == nil {
		return
	}
	reg, tr := s.Registry(), s.Tracer()
	nw.obs = &netObs{
		tr:         tr,
		sent:       reg.Counter("net.link.sent"),
		delivered:  reg.Counter("net.link.delivered"),
		dropQueue:  reg.Counter("net.link.drops.queue"),
		dropMedium: reg.Counter("net.link.drops.medium"),
		dropOutage: reg.Counter("net.link.drops.outage"),
		queueDepth: reg.Histogram("net.link.queue_bytes", obs.SizeBounds()),
	}
	for _, l := range nw.links {
		l.obs = nw.obs
		l.obsSubj = tr.Subject(l.name)
	}
}

// New creates an empty network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:  sched,
		nodes:  make(map[Addr]*Node),
		byName: make(map[string]*Node),
	}
}

// Scheduler returns the simulation scheduler.
func (nw *Network) Scheduler() *sim.Scheduler { return nw.sched }

// Now returns the current virtual time.
func (nw *Network) Now() sim.Time { return nw.sched.Now() }

// NewNode creates and registers a node. Names and addresses must be
// unique within the network.
func (nw *Network) NewNode(name string, addr Addr) *Node {
	if _, dup := nw.nodes[addr]; dup {
		panic(fmt.Sprintf("netem: duplicate node address %v", addr))
	}
	if _, dup := nw.byName[name]; dup {
		panic(fmt.Sprintf("netem: duplicate node name %q", name))
	}
	n := &Node{
		name:     name,
		addr:     addr,
		net:      nw,
		routes:   make(map[Addr]*Link),
		handlers: make(map[protoPort]Handler),
	}
	nw.nodes[addr] = n
	nw.byName[name] = n
	return n
}

// Node returns the node with the given address, or nil.
func (nw *Network) Node(addr Addr) *Node { return nw.nodes[addr] }

// NodeByName returns the node with the given name, or nil.
func (nw *Network) NodeByName(name string) *Node { return nw.byName[name] }

// Links returns all links (for stats aggregation).
func (nw *Network) Links() []*Link { return nw.links }

// AddLink creates a unidirectional link from a to b with the given
// configuration. The caller still has to install routes that use it.
func (nw *Network) AddLink(from, to *Node, cfg LinkConfig) *Link {
	l := &Link{
		name: from.name + "->" + to.name,
		net:  nw,
		to:   to,
		cfg:  cfg,
	}
	if nw.obs != nil {
		l.obs = nw.obs
		l.obsSubj = nw.obs.tr.Subject(l.name)
	}
	nw.links = append(nw.links, l)
	return l
}

// Connect creates a symmetric pair of links between a and b (same config
// both ways) and returns (a->b, b->a).
func (nw *Network) Connect(a, b *Node, cfg LinkConfig) (*Link, *Link) {
	return nw.AddLink(a, b, cfg), nw.AddLink(b, a, cfg)
}

// ConnectAsym creates an asymmetric pair of links — the common case for
// access networks (Starlink: ~200 Mbit/s down, ~20 Mbit/s up).
func (nw *Network) ConnectAsym(a, b *Node, ab, ba LinkConfig) (*Link, *Link) {
	return nw.AddLink(a, b, ab), nw.AddLink(b, a, ba)
}

// AutoSelectFidelity walks the built topology and downgrades every link
// still at FidelityFull whose configuration makes the skipped machinery
// unreachable: RateBps == 0 && QueueBytes == 0 means the queue/
// serialization hop is dead code (FidelityDelayOnly), and additionally
// Loss == nil && Down == nil && Jitter == nil means nothing but
// propagation can happen (FidelityFast). Links the caller already set to
// a lower tier are left as configured. Downgraded links are marked so
// later SetRate/SetLoss/SetDown calls re-derive their tier — a mutation
// that resurrects skipped machinery promotes the link back to full.
//
// The downgrade is behavior-preserving by construction (the tiers only
// skip branches the full path could never take), so it can run on any
// topology at any time; the equivalence suites hold the resulting
// datapath bit-identical to FidelityFull on stats, deliveries and obs
// exports. Returns the number of links now at each of (delay-only, fast).
func (nw *Network) AutoSelectFidelity() (delayOnly, fast int) {
	for _, l := range nw.links {
		if l.cfg.Fidelity == FidelityFull && !l.autoTier {
			l.autoTier = true
			l.cfg.Fidelity = l.cfg.autoFidelity()
		}
		switch l.cfg.Fidelity {
		case FidelityDelayOnly:
			delayOnly++
		case FidelityFast:
			fast++
		}
	}
	return delayOnly, fast
}

// TierCounts reports how many links currently run at each fidelity
// tier — the observability hook the bench report uses to show what
// auto-selection actually downgraded.
func (nw *Network) TierCounts() (full, delayOnly, fast int) {
	for _, l := range nw.links {
		switch l.cfg.Fidelity {
		case FidelityDelayOnly:
			delayOnly++
		case FidelityFast:
			fast++
		default:
			full++
		}
	}
	return full, delayOnly, fast
}

func (nw *Network) nextPacketID() uint64 {
	nw.packetID++
	return nw.packetID
}

func (nw *Network) getLinkEvent(l *Link, pkt *Packet) *linkEvent {
	if n := len(nw.evFree); n > 0 {
		ev := nw.evFree[n-1]
		nw.evFree[n-1] = nil
		nw.evFree = nw.evFree[:n-1]
		ev.link, ev.pkt = l, pkt
		return ev
	}
	return &linkEvent{link: l, pkt: pkt}
}

func (nw *Network) putLinkEvent(ev *linkEvent) {
	ev.link, ev.pkt = nil, nil
	nw.evFree = append(nw.evFree, ev)
}
