package netem

import (
	"fmt"

	"starlinkperf/internal/sim"
)

// Handler receives packets delivered to a bound (proto, port) of a node.
type Handler func(pkt *Packet)

// Device is a middlebox function attached to a node. Devices see every
// packet the node touches (transit and locally addressed) on ingress,
// before TTL processing and delivery; they may rewrite the packet,
// swallow it, or let it pass.
type Device interface {
	// Process handles pkt at node n. Returning forward=false consumes
	// the packet (the device either dropped it or took ownership, e.g. a
	// PEP terminating a TCP connection).
	Process(n *Node, pkt *Packet) (forward bool)
}

// EgressDevice is the optional second middlebox phase, run as packets
// leave the node (after TTL handling and ICMP error generation) — the
// POSTROUTING hook where source NAT happens on real routers, which is
// why TTL-expired probes are quoted with pre-NAT headers by the NAT
// itself but post-NAT headers by everything beyond it.
type EgressDevice interface {
	ProcessEgress(n *Node, pkt *Packet) (forward bool)
}

type protoPort struct {
	proto Proto
	port  uint16
}

// Node is a host or router in the emulated network.
type Node struct {
	name string
	addr Addr
	net  *Network

	routes       map[Addr]*Link
	prefixRoutes []prefixRoute
	defaultRoute *Link

	// Flat FIB and handler fast tables (fib.go), rebuilt lazily from the
	// maps above after any route/bind change; the route cache is cleared
	// on every rebuild.
	fibExact   []fibExact
	fibPrefix  []fibPrefixEntry
	fibGroups  []fibGroup
	fibDirty   bool
	routeCache [routeCacheSize]routeCacheEntry
	hTable     []handlerEntry
	hDirty     bool

	devices  []Device
	handlers map[protoPort]Handler

	// ephemeral tracks the last client source port handed out per
	// protocol. It lives on the node (not in a package-level map) so
	// independent simulations running on different goroutines never
	// share an allocator.
	ephemeral map[Proto]uint16

	// EchoResponder makes the node answer ICMP echo requests, like the
	// RIPE anchors and speedtest servers do.
	EchoResponder bool

	// Forwarded counts transit packets; Delivered counts local ones.
	Forwarded uint64
	Delivered uint64
}

type prefixRoute struct {
	prefix Addr
	bits   int
	link   *Link
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Addr returns the node address.
func (n *Node) Addr() Addr { return n.addr }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// Scheduler returns the simulation scheduler, for transports that need
// timers.
func (n *Node) Scheduler() *sim.Scheduler { return n.net.sched }

// EphemeralPort allocates the next client source port for proto. Ports
// count up from floor+1; each call returns a fresh port. Allocation is
// per-node and deterministic in call order.
func (n *Node) EphemeralPort(proto Proto, floor uint16) uint16 {
	if n.ephemeral == nil {
		n.ephemeral = make(map[Proto]uint16)
	}
	if floor == 0xffff {
		// Degenerate floor: keep at least one allocatable port above it.
		floor = 0xfffe
	}
	p := n.ephemeral[proto]
	if p < floor {
		p = floor
	}
	p++
	if p == 0 {
		// uint16 wrap: restart just above the floor instead of handing
		// out port 0 and the well-known range below it — the same defect
		// class as the NAT allocPort wrap fixed earlier.
		p = floor + 1
	}
	n.ephemeral[proto] = p
	return p
}

// AddRoute installs an exact-destination route.
func (n *Node) AddRoute(dst Addr, via *Link) {
	n.routes[dst] = via
	n.fibDirty = true
}

// AddPrefixRoute installs a route for a prefix of the given bit length.
// Longest prefix wins; exact routes beat prefix routes.
func (n *Node) AddPrefixRoute(prefix Addr, bits int, via *Link) {
	n.prefixRoutes = append(n.prefixRoutes, prefixRoute{prefix: prefix, bits: bits, link: via})
	n.fibDirty = true
}

// SetDefaultRoute installs the fallback route.
func (n *Node) SetDefaultRoute(via *Link) {
	n.defaultRoute = via
	// The flat tables don't include the default, but the destination
	// cache may hold decisions it produced: force a rebuild to clear it.
	n.fibDirty = true
}

// NewPacket returns a packet for sending from this node (see
// Network.NewPacket for the pooling contract).
func (n *Node) NewPacket() *Packet { return n.net.NewPacket() }

// AttachDevice appends a middlebox device to the node's processing chain.
func (n *Node) AttachDevice(d Device) { n.devices = append(n.devices, d) }

// Bind registers a handler for packets addressed to this node with the
// given protocol and destination port. Port 0 binds all ports of the
// protocol (used by ICMP).
func (n *Node) Bind(proto Proto, port uint16, h Handler) {
	key := protoPort{proto, port}
	if _, dup := n.handlers[key]; dup {
		panic(fmt.Sprintf("netem: %s: duplicate bind %v port %d", n.name, proto, port))
	}
	n.handlers[key] = h
	n.hDirty = true
}

// Unbind removes a handler installed with Bind.
func (n *Node) Unbind(proto Proto, port uint16) {
	delete(n.handlers, protoPort{proto, port})
	n.hDirty = true
}

// Send originates a packet from this node: it stamps defaults (TTL,
// checksum, send time, unique ID) and routes it. Stamping skips packets
// that already carry an ID, so paths that re-inject an already-sent
// packet (a duplicating device, an error re-send) preserve the original
// ID/SentAt correlation fields.
func (n *Node) Send(pkt *Packet) {
	if pkt.TTL == 0 {
		pkt.TTL = DefaultTTL
	}
	if pkt.Src == 0 {
		pkt.Src = n.addr
	}
	if pkt.ID == 0 {
		pkt.ID = n.net.nextPacketID()
		pkt.SentAt = n.net.sched.Now()
	}
	pkt.FixChecksum()
	n.route(pkt)
}

// receive processes a packet arriving at this node from a link.
func (n *Node) receive(pkt *Packet) {
	pkt.Hops = append(pkt.Hops, n.addr)

	for _, d := range n.devices {
		if !d.Process(n, pkt) {
			// Consumed: the device dropped it or fed it synchronously
			// into a local endpoint (PEP, NAT swallow). Devices that
			// retain the packet must Detach it.
			n.net.releaseConsumed(pkt)
			return
		}
	}

	if pkt.Dst == n.addr {
		n.deliver(pkt)
		return
	}

	// Transit: decrement TTL, expire if needed, forward.
	pkt.TTL--
	if pkt.TTL <= 0 {
		n.sendICMPError(pkt, ICMPTimeExceeded)
		// The quote above shares the payload, so only the wrapper can
		// return to the pool.
		n.net.releasePacket(pkt)
		return
	}
	n.Forwarded++
	n.route(pkt)
}

func (n *Node) deliver(pkt *Packet) {
	n.Delivered++
	if pkt.Proto == ProtoICMP && n.EchoResponder {
		if icmp, ok := pkt.Payload.(*ICMP); ok && icmp.Type == ICMPEchoRequest {
			// Mirror the port pair so translators can map the reply
			// back (the ICMP identifier rides in the port fields).
			reply := n.net.NewPacket()
			reply.Dst = pkt.Src
			reply.DstPort = pkt.SrcPort
			reply.SrcPort = pkt.DstPort
			reply.Proto = ProtoICMP
			reply.Size = pkt.Size
			body := n.net.NewICMP()
			body.Type, body.Seq, body.Data = ICMPEchoReply, icmp.Seq, icmp.Data
			reply.Payload = body
			n.Send(reply)
			n.net.releaseConsumed(pkt)
			return
		}
	}
	var h Handler
	if n.net.reference {
		if hh, ok := n.handlers[protoPort{pkt.Proto, pkt.DstPort}]; ok {
			h = hh
		} else if hh, ok := n.handlers[protoPort{pkt.Proto, 0}]; ok {
			h = hh
		}
	} else {
		h = n.lookupHandler(pkt.Proto, pkt.DstPort)
	}
	if h != nil {
		h(pkt)
		// Handlers consume synchronously; anything they keep (the quoted
		// probe of an ICMP error, a whole error message) is excluded by
		// the release policy or must be Detached.
		n.net.releaseConsumed(pkt)
		return
	}
	// No listener: a real host would answer TCP with RST and UDP with
	// port unreachable; the emulator folds both into DestUnreachable.
	if pkt.Proto != ProtoICMP {
		n.sendICMPError(pkt, ICMPDestUnreachable)
		n.net.releasePacket(pkt) // quote shares the payload: wrapper only
		return
	}
	n.net.releaseConsumed(pkt)
}

// sendICMPError emits an ICMP error quoting the offending packet as this
// node observed it (post any NAT rewriting upstream — which is exactly
// what lets Tracebox detect those NATs).
func (n *Node) sendICMPError(offending *Packet, t ICMPType) {
	if offending.Proto == ProtoICMP {
		if icmp, ok := offending.Payload.(*ICMP); ok &&
			(icmp.Type == ICMPTimeExceeded || icmp.Type == ICMPDestUnreachable) {
			return // never ICMP-error an ICMP error
		}
	}
	n.Send(&Packet{
		Dst:     offending.Src,
		Proto:   ProtoICMP,
		Size:    64,
		Payload: &ICMP{Type: t, Quoted: offending.Clone()},
	})
}

// route forwards pkt out of the best matching route. Packets without a
// route are answered with DestUnreachable to the source.
func (n *Node) route(pkt *Packet) {
	if pkt.Dst == n.addr {
		// Locally addressed packet "sent" by this node: deliver
		// directly (loopback).
		n.deliver(pkt)
		return
	}
	for _, d := range n.devices {
		if ed, ok := d.(EgressDevice); ok {
			if !ed.ProcessEgress(n, pkt) {
				n.net.releaseConsumed(pkt)
				return
			}
		}
	}
	var l *Link
	if n.net.reference {
		l = n.referenceLookup(pkt.Dst)
	} else {
		l = n.lookupRoute(pkt.Dst)
	}
	if l != nil {
		l.send(pkt)
		return
	}
	if pkt.Src != n.addr {
		n.sendICMPError(pkt, ICMPDestUnreachable)
		n.net.releasePacket(pkt) // quote shares the payload: wrapper only
		return
	}
	n.net.releaseConsumed(pkt)
}

func matchPrefix(a, prefix Addr, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits >= 32 {
		return a == prefix
	}
	shift := 32 - bits
	return a>>shift == prefix>>shift
}
