package netem

import (
	"starlinkperf/internal/sim"
)

// Proto identifies the transport protocol of a packet. Middleboxes branch
// on it: PEPs intercept TCP but must pass UDP (QUIC) through untouched.
type Proto uint8

// Supported protocol numbers (values follow IANA for familiarity).
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return "proto?"
	}
}

// DefaultTTL is the initial hop limit of locally originated packets.
const DefaultTTL = 64

// Packet is the unit the emulator forwards. Payload carries a typed value
// owned by the sending transport (QUIC datagram bytes, a TCP segment, an
// ICMP body); Size is the wire size in bytes and is what queues and
// serialization see.
type Packet struct {
	ID       uint64 // unique per network, for capture correlation
	Src, Dst Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	TTL      int
	Size     int
	// Checksum covers the pseudo header (addresses, ports, proto). NATs
	// rewrite addresses and must recompute it; Tracebox-style tooling
	// compares the quoted value against what it sent to detect them.
	Checksum uint16
	Payload  any
	SentAt   sim.Time
	// Hops records the addresses of nodes the packet transited, most
	// recent last. It is emulator-side ground truth used by tests; the
	// measurement tools must not read it (they must discover paths the
	// way real tools do, with TTL probing).
	Hops []Addr

	// Pool bookkeeping (see pool.go). owner is the network whose freelist
	// the packet belongs to — nil for literals, which the datapath never
	// recycles. gen counts recycles so stale references are detectable
	// and stale releases inert; inPool guards double release.
	owner  *Network
	gen    uint32
	inPool bool
}

// Gen returns the packet's pool generation. A holder that keeps a pooled
// packet past its delivery point can snapshot Gen and later compare: a
// changed generation means the packet was recycled underneath it.
func (p *Packet) Gen() uint32 { return p.gen }

// Pooled reports whether the packet belongs to a network's packet pool.
func (p *Packet) Pooled() bool { return p.owner != nil }

// Detach removes the packet — and a pooled ICMP payload — from its pool,
// so every later release is a no-op and the value behaves like a plain
// allocation. Handlers or devices that retain a delivered packet past
// their synchronous call must detach it first.
func (p *Packet) Detach() {
	p.owner = nil
	if ic, ok := p.Payload.(*ICMP); ok {
		ic.owner = nil
	}
}

// PseudoChecksum computes the toy internet checksum over the fields NATs
// rewrite. It is deliberately simple: the paper's observable is "the
// checksum changed across this middlebox", not its arithmetic.
func PseudoChecksum(src, dst Addr, srcPort, dstPort uint16, proto Proto) uint16 {
	sum := uint32(src>>16) + uint32(src&0xffff) +
		uint32(dst>>16) + uint32(dst&0xffff) +
		uint32(srcPort) + uint32(dstPort) + uint32(proto)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// FixChecksum recomputes the packet checksum from its current header
// fields.
func (p *Packet) FixChecksum() {
	p.Checksum = PseudoChecksum(p.Src, p.Dst, p.SrcPort, p.DstPort, p.Proto)
}

// Clone returns a shallow copy of the packet with its own Hops slice.
// Payloads are shared: transports treat delivered payloads as immutable.
// Cloning a pooled packet draws the copy from the pool (with its own
// identity and Hops backing); cloning a literal allocates, as before.
func (p *Packet) Clone() *Packet {
	var q *Packet
	if p.owner != nil {
		q = p.owner.NewPacket()
	} else {
		q = &Packet{}
	}
	owner, gen, hops := q.owner, q.gen, q.Hops
	*q = *p
	q.owner, q.gen, q.inPool = owner, gen, false
	q.Hops = append(hops[:0], p.Hops...)
	return q
}

// ICMPType enumerates the ICMP-like messages the emulator itself
// originates or that endpoints exchange.
type ICMPType uint8

// ICMP message types.
const (
	ICMPEchoRequest ICMPType = iota
	ICMPEchoReply
	ICMPTimeExceeded
	ICMPDestUnreachable
)

// String implements fmt.Stringer.
func (t ICMPType) String() string {
	switch t {
	case ICMPEchoRequest:
		return "echo-request"
	case ICMPEchoReply:
		return "echo-reply"
	case ICMPTimeExceeded:
		return "time-exceeded"
	case ICMPDestUnreachable:
		return "dest-unreachable"
	default:
		return "icmp?"
	}
}

// ICMP is the payload of ProtoICMP packets. Error messages quote the
// offending packet as the issuing node observed it — the mechanism
// Tracebox exploits to detect header-rewriting middleboxes.
type ICMP struct {
	Type   ICMPType
	Seq    int
	Quoted *Packet // for TimeExceeded / DestUnreachable
	Data   any     // opaque echo payload

	// Pool bookkeeping, mirroring Packet's (see pool.go). Bodies carrying
	// a quote are never recycled: the quote — often the whole message —
	// outlives delivery in traceroute and the tests.
	owner  *Network
	pooled bool
}
