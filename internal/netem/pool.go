package netem

// Packet pooling: the datapath recycles packet wrappers (and the hot
// payload types) through per-Network freelists so a steady-state campaign
// forwards packets without allocating. The lifecycle is explicit:
//
//   - Network.NewPacket hands out a zeroed packet owned by the network.
//   - The datapath releases it at its terminal point — final delivery
//     (after the bound handler or echo responder returns), device
//     consumption, link drop, TTL expiry, or no-route — via the release
//     helpers below.
//   - Payloads are released together with the wrapper only when they are
//     provably unshared: *ICMP bodies without a quote go back to the ICMP
//     freelist, PayloadReleaser payloads (TCP segments) return to their
//     owner, and everything else is left to the GC.
//   - ICMP messages whose payload quotes another packet are never
//     recycled: traceroute/Tracebox (and tests) retain the quote — and
//     often the whole error packet — long after delivery.
//
// Safety comes from ownership checks rather than trust: releasing a
// foreign packet (owner nil or another network), releasing twice, or
// releasing through a stale generation-stamped reference are all inert
// no-ops. A handler or device that wants to keep a delivered packet past
// its synchronous call must Detach it first.
//
// Reference mode (SetReference) turns every constructor into a plain
// allocation and every release into a no-op, reproducing the seed
// datapath byte for byte; the equivalence suite in internal/core compares
// full campaigns both ways.

// PayloadReleaser is implemented by pooled payload types (the TCP
// segment). The datapath calls ReleasePayload once the carrying packet
// reaches its terminal point and the payload is provably unshared;
// implementations return the value to their owner's freelist. Values
// constructed outside a pool implement it as a no-op.
type PayloadReleaser interface {
	ReleasePayload()
}

// PoolStats counts packet-pool traffic.
type PoolStats struct {
	Gets uint64 // NewPacket calls
	Hits uint64 // calls served from the freelist
	Puts uint64 // packets returned to the freelist
}

// HitRate returns the fraction of NewPacket calls served without
// allocating, in [0, 1].
func (st PoolStats) HitRate() float64 {
	if st.Gets == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Gets)
}

// PoolStats returns a copy of the packet-pool counters.
func (nw *Network) PoolStats() PoolStats { return nw.poolStats }

// SetReference switches the network to the seed datapath: fresh
// allocations everywhere, map-based handler lookup, and the linear
// longest-prefix route scan. Call it before any traffic flows; campaign
// output must be bit-identical either way (datapath_equivalence_test.go
// in internal/core enforces it).
func (nw *Network) SetReference(on bool) { nw.reference = on }

// Reference reports whether the network runs the seed datapath.
func (nw *Network) Reference() bool { return nw.reference }

// NewPacket returns a zeroed packet for sending on this network. On the
// fast path it comes from the freelist (keeping its Hops backing array);
// in reference mode it is a plain allocation the pool never touches
// again.
func (nw *Network) NewPacket() *Packet {
	if nw.reference {
		return &Packet{}
	}
	nw.poolStats.Gets++
	if n := len(nw.pktFree); n > 0 {
		p := nw.pktFree[n-1]
		nw.pktFree[n-1] = nil
		nw.pktFree = nw.pktFree[:n-1]
		p.inPool = false
		nw.poolStats.Hits++
		return p
	}
	return &Packet{owner: nw}
}

// ReleasePacket returns a packet obtained from NewPacket to the pool.
// gen must be the Packet.Gen observed when the reference was taken:
// a stale generation (the packet was already recycled under the holder),
// a double release, or a packet the pool does not own are inert no-ops.
func (nw *Network) ReleasePacket(p *Packet, gen uint32) {
	if p == nil || p.gen != gen {
		return
	}
	nw.releasePacket(p)
}

// releasePacket is the trusted internal release: the datapath calls it
// only at points where it structurally holds the sole live reference.
func (nw *Network) releasePacket(p *Packet) {
	if p == nil || p.owner != nw || p.inPool {
		return
	}
	hops := p.Hops[:0]
	*p = Packet{owner: nw, gen: p.gen + 1, inPool: true, Hops: hops}
	nw.poolStats.Puts++
	nw.pktFree = append(nw.pktFree, p)
}

// releaseConsumed recycles a packet that reached a terminal point with
// its payload unshared: final delivery, device consumption, or a link
// drop. Payloads are recycled by type per the policy above; error
// messages carrying a quote are left entirely to the GC because callers
// retain them.
func (nw *Network) releaseConsumed(p *Packet) {
	if p == nil || p.owner != nw || p.inPool {
		return
	}
	switch pl := p.Payload.(type) {
	case *ICMP:
		if pl.Quoted != nil {
			return
		}
		nw.releaseICMP(pl)
	case PayloadReleaser:
		pl.ReleasePayload()
	}
	nw.releasePacket(p)
}

// NewICMP returns a zeroed ICMP body from the pool (or a plain
// allocation in reference mode).
func (nw *Network) NewICMP() *ICMP {
	if nw.reference {
		return &ICMP{}
	}
	if n := len(nw.icmpFree); n > 0 {
		ic := nw.icmpFree[n-1]
		nw.icmpFree[n-1] = nil
		nw.icmpFree = nw.icmpFree[:n-1]
		ic.pooled = false
		return ic
	}
	return &ICMP{owner: nw}
}

// releaseICMP returns a pooled ICMP body. Foreign or already-pooled
// bodies are inert no-ops.
func (nw *Network) releaseICMP(ic *ICMP) {
	if ic == nil || ic.owner != nw || ic.pooled {
		return
	}
	*ic = ICMP{owner: nw, pooled: true}
	nw.icmpFree = append(nw.icmpFree, ic)
}
