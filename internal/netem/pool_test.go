package netem

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

func TestPacketPoolLifecycle(t *testing.T) {
	_, nw := testNet(t)
	p := nw.NewPacket()
	if !p.Pooled() {
		t.Fatal("NewPacket must hand out a pool-owned packet")
	}
	p.Hops = append(p.Hops, 1, 2, 3)
	gen := p.Gen()
	nw.ReleasePacket(p, gen)

	st := nw.PoolStats()
	if st.Gets != 1 || st.Puts != 1 || st.Hits != 0 {
		t.Fatalf("stats after first cycle = %+v", st)
	}
	q := nw.NewPacket()
	if q != p {
		t.Fatal("freelist must return the released packet")
	}
	if q.Gen() != gen+1 {
		t.Fatalf("generation = %d, want %d", q.Gen(), gen+1)
	}
	if len(q.Hops) != 0 || cap(q.Hops) < 3 {
		t.Fatalf("Hops backing not recycled: len=%d cap=%d", len(q.Hops), cap(q.Hops))
	}
	if q.ID != 0 || q.Payload != nil || q.TTL != 0 {
		t.Fatalf("recycled packet not scrubbed: %+v", q)
	}
	if got := nw.PoolStats(); got.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", got.Hits)
	}
	if hr := nw.PoolStats().HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}
}

func TestStaleDoubleAndForeignReleasesAreInert(t *testing.T) {
	_, nw := testNet(t)
	s2 := sim.NewScheduler(2)
	other := New(s2)

	p := nw.NewPacket()
	gen := p.Gen()
	nw.ReleasePacket(p, gen)
	nw.ReleasePacket(p, gen) // double release: gen already advanced
	if st := nw.PoolStats(); st.Puts != 1 {
		t.Fatalf("double release not inert: Puts = %d", st.Puts)
	}

	q := nw.NewPacket()
	nw.ReleasePacket(q, q.Gen()+1) // stale/wrong generation
	if q.Pooled() && len(nw.pktFree) != 0 {
		t.Fatal("stale-generation release must be a no-op")
	}
	other.ReleasePacket(q, q.Gen()) // foreign network
	if len(other.pktFree) != 0 {
		t.Fatal("foreign release must be a no-op")
	}

	lit := &Packet{}
	nw.ReleasePacket(lit, lit.Gen()) // literal: never pooled
	nw.releaseConsumed(lit)
	if len(nw.pktFree) != 0 {
		t.Fatal("literal release must be a no-op")
	}
}

func TestDetachRemovesFromPool(t *testing.T) {
	_, nw := testNet(t)
	p := nw.NewPacket()
	ic := nw.NewICMP()
	p.Payload = ic
	p.Detach()
	if p.Pooled() {
		t.Fatal("detached packet still pool-owned")
	}
	nw.releaseConsumed(p)
	if len(nw.pktFree) != 0 || len(nw.icmpFree) != 0 {
		t.Fatal("detached packet or its ICMP body returned to the pool")
	}
}

func TestQuotedICMPNeverRecycled(t *testing.T) {
	_, nw := testNet(t)
	p := nw.NewPacket()
	ic := nw.NewICMP()
	ic.Type = ICMPTimeExceeded
	ic.Quoted = &Packet{ID: 99}
	p.Payload = ic
	nw.releaseConsumed(p)
	if len(nw.pktFree) != 0 || len(nw.icmpFree) != 0 {
		t.Fatal("error message carrying a quote must be left to the GC")
	}
	if ic.Quoted == nil || ic.Quoted.ID != 99 {
		t.Fatal("quote scrubbed")
	}
}

func TestReferenceModeAllocatesPlainly(t *testing.T) {
	_, nw := testNet(t)
	nw.SetReference(true)
	if !nw.Reference() {
		t.Fatal("Reference() must report the mode")
	}
	p := nw.NewPacket()
	if p.Pooled() {
		t.Fatal("reference mode must hand out owner-less packets")
	}
	ic := nw.NewICMP()
	p.Payload = ic
	nw.releaseConsumed(p)
	nw.ReleasePacket(p, p.Gen())
	if st := nw.PoolStats(); st.Gets != 0 || st.Puts != 0 {
		t.Fatalf("reference mode touched the pool: %+v", st)
	}
}

func TestCloneOfPooledPacketIsIndependent(t *testing.T) {
	_, nw := testNet(t)
	p := nw.NewPacket()
	p.ID, p.Dst, p.Size = 7, 42, 100
	p.Hops = append(p.Hops, 1, 2)
	q := p.Clone()
	if q == p || !q.Pooled() {
		t.Fatal("clone of a pooled packet must be a distinct pooled packet")
	}
	if q.ID != 7 || q.Dst != 42 || len(q.Hops) != 2 {
		t.Fatalf("clone fields wrong: %+v", q)
	}
	q.Hops[0] = 9
	if p.Hops[0] == 9 {
		t.Fatal("clone shares Hops backing")
	}
	nw.releasePacket(p)
	if q.ID != 7 {
		t.Fatal("releasing the original corrupted the clone")
	}

	lit := &Packet{ID: 5, Hops: []Addr{1}}
	if c := lit.Clone(); c.Pooled() || c.ID != 5 {
		t.Fatal("clone of a literal must stay a literal")
	}
}

// Regression for the Send stamping change: a packet that already carries
// an ID (a re-injected or duplicated packet) must keep its ID and SentAt
// so capture correlation holds; fresh packets still get stamped.
func TestSendPreservesPresetID(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 2, time.Millisecond)
	a, b := nodes[0], nodes[1]
	b.Bind(ProtoUDP, 9, func(*Packet) {})

	fresh := &Packet{Dst: b.Addr(), DstPort: 9, Proto: ProtoUDP, Size: 10}
	a.Send(fresh)
	if fresh.ID == 0 {
		t.Fatal("fresh packet not stamped")
	}

	preset := &Packet{ID: 777, SentAt: sim.Time(5 * time.Millisecond),
		Dst: b.Addr(), DstPort: 9, Proto: ProtoUDP, Size: 10}
	a.Send(preset)
	if preset.ID != 777 || preset.SentAt != sim.Time(5*time.Millisecond) {
		t.Fatalf("preset ID/SentAt restamped: id=%d sentAt=%v", preset.ID, preset.SentAt)
	}
	s.Run()
}

// The quoted probe inside a TimeExceeded must carry the original probe's
// stamped ID even though the probe wrapper is recycled after expiry —
// that ID is what lets traceroute correlate replies to probes.
func TestQuotedPacketKeepsProbeID(t *testing.T) {
	s, nw := testNet(t)
	nodes := buildChain(nw, 4, time.Millisecond)

	var reply *Packet
	nodes[0].Bind(ProtoICMP, 0, func(p *Packet) { reply = p })

	probe := nw.NewPacket()
	probe.Dst = nodes[3].Addr()
	probe.DstPort = 33436
	probe.SrcPort = 40000
	probe.Proto = ProtoUDP
	probe.Size = 60
	probe.TTL = 2
	nodes[0].Send(probe)
	probeID, probeSum := probe.ID, probe.Checksum // read before the pool recycles it
	if probeID == 0 {
		t.Fatal("probe not stamped")
	}
	s.Run()

	if reply == nil {
		t.Fatal("no TimeExceeded came back")
	}
	icmp := reply.Payload.(*ICMP)
	if icmp.Type != ICMPTimeExceeded || icmp.Quoted == nil {
		t.Fatalf("unexpected reply: %+v", icmp)
	}
	q := icmp.Quoted
	if q.ID != probeID {
		t.Fatalf("quoted ID = %d, want %d", q.ID, probeID)
	}
	if q.SrcPort != 40000 || q.DstPort != 33436 || q.Checksum != probeSum {
		t.Fatalf("quoted header fields diverge from the probe: %+v", q)
	}
}

// EphemeralPort pressure: allocation must never return port 0 or dip to
// the well-known range after the uint16 counter wraps.
func TestEphemeralPortWrapStaysAboveFloor(t *testing.T) {
	_, nw := testNet(t)
	n := nw.NewNode("n", MustParseAddr("10.0.0.1"))
	const floor = 32768
	seen0 := false
	for i := 0; i < 200000; i++ {
		p := n.EphemeralPort(ProtoTCP, floor)
		if p == 0 {
			seen0 = true
			break
		}
		if p <= floor {
			t.Fatalf("allocation %d: port %d at or below floor %d", i, p, floor)
		}
	}
	if seen0 {
		t.Fatal("EphemeralPort handed out port 0 after wrap")
	}

	// Degenerate floor: the only allocatable port above 0xfffe is 0xffff.
	for i := 0; i < 10; i++ {
		if p := n.EphemeralPort(ProtoUDP, 0xffff); p != 0xffff {
			t.Fatalf("degenerate floor allocation = %d, want 0xffff", p)
		}
	}
}
