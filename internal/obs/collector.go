package obs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Options selects observability for a testbed. The zero value (disabled)
// is the default everywhere; enabling costs one pointer nil-check per
// instrumented site plus the ring/registry memory.
type Options struct {
	// Enabled turns on metric and trace collection.
	Enabled bool
	// TraceCap bounds the per-shard event ring. 0 means DefaultTraceCap.
	TraceCap int
}

// DefaultTraceCap is the per-shard trace ring size when Options.TraceCap
// is zero: large enough to hold a quick campaign's full event stream,
// small enough (~1.5 MB per shard) to be negligible.
const DefaultTraceCap = 1 << 15

// Sink bundles the registry and tracer one simulation shard writes into.
// All methods on a nil *Sink (observability disabled) are no-ops, so a
// component can hold a maybe-nil Sink and instrument unconditionally.
type Sink struct {
	Reg *Registry
	Tr  *Tracer
}

// NewSink returns a sink with an empty registry and a trace ring of the
// given capacity (0 → DefaultTraceCap).
func NewSink(traceCap int) *Sink {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	return &Sink{Reg: NewRegistry(), Tr: NewTracer(traceCap)}
}

// Registry returns the sink's registry, or nil when s is nil.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Tracer returns the sink's tracer, or nil when s is nil.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tr
}

// Collector gathers per-shard sinks from a parallel campaign run and
// exports them deterministically. Shards register concurrently (the only
// place obs needs a lock — workers race only on Add, never on the hot
// path), but every export first sorts sources by name. Shard source
// names are zero-padded ("latency/0003") so lexicographic order equals
// shard order, making exports invariant to worker count and completion
// order.
type Collector struct {
	mu      sync.Mutex
	sources []source
}

type source struct {
	name string
	sink *Sink
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// ShardSource formats the canonical source name for shard i of a family:
// zero-padded to four digits so lexicographic order equals shard order,
// the property that makes every export worker-invariant. All shard
// registrations — campaign repetitions and PDES scenario partitions alike
// — go through this one formatter.
func ShardSource(family string, i int) string {
	return fmt.Sprintf("%s/%04d", family, i)
}

// Add registers one shard's sink under a unique source name. Safe for
// concurrent use; safe on a nil collector (sink is simply discarded).
func (c *Collector) Add(name string, s *Sink) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	c.sources = append(c.sources, source{name: name, sink: s})
	c.mu.Unlock()
}

// sorted snapshots the source list in name order.
func (c *Collector) sorted() []source {
	c.mu.Lock()
	out := append([]source(nil), c.sources...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// MergedRegistry folds every shard registry into one. Merge is
// commutative, but folding in sorted order anyway keeps the operation
// order-independent by construction rather than by proof.
func (c *Collector) MergedRegistry() *Registry {
	if c == nil {
		return nil
	}
	merged := NewRegistry()
	for _, s := range c.sorted() {
		merged.Merge(s.sink.Reg)
	}
	return merged
}

// ExportMetricsJSON renders the canonical metrics document: the merged
// registry plus each shard's registry keyed by source name, sorted.
func (c *Collector) ExportMetricsJSON() []byte {
	if c == nil {
		return nil
	}
	var b bytes.Buffer
	b.WriteString(`{"merged":`)
	c.MergedRegistry().exportJSON(&b)
	b.WriteString(`,"sources":{`)
	for i, s := range c.sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('"')
		b.WriteString(s.name)
		b.WriteString(`":`)
		s.sink.Reg.exportJSON(&b)
	}
	b.WriteString("}}\n")
	return b.Bytes()
}

// ExportTraceJSONL renders every retained event as JSON Lines: sources
// in sorted name order, each source's events in emission order.
func (c *Collector) ExportTraceJSONL() []byte {
	if c == nil {
		return nil
	}
	var b bytes.Buffer
	for _, s := range c.sorted() {
		s.sink.Tr.appendJSONL(&b, s.name)
	}
	return b.Bytes()
}

// ExportTraceBinary renders the compact binary trace: concatenated
// per-source "OTR1" sections in sorted name order.
func (c *Collector) ExportTraceBinary() []byte {
	if c == nil {
		return nil
	}
	var b bytes.Buffer
	for _, s := range c.sorted() {
		s.sink.Tr.appendBinary(&b, s.name)
	}
	return b.Bytes()
}

// Snapshot returns the merged registry flattened for bench.json, or nil
// when c is nil.
func (c *Collector) Snapshot() map[string]float64 {
	if c == nil {
		return nil
	}
	return c.MergedRegistry().Snapshot()
}
