package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

func TestNilSafety(t *testing.T) {
	// Everything must be a no-op on nil receivers: this is the "disabled
	// observability costs one branch" contract.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(2)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Total() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram value")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", DurationBounds()) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.Merge(NewRegistry())
	var tr *Tracer
	tr.Emit(0, KindDrop, tr.Subject("l"), 1, 2)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must retain nothing")
	}
	var s *Sink
	if s.Registry() != nil || s.Tracer() != nil {
		t.Fatal("nil sink accessors")
	}
	var col *Collector
	col.Add("a", NewSink(0))
	if col.MergedRegistry() != nil || col.ExportMetricsJSON() != nil ||
		col.ExportTraceJSONL() != nil || col.ExportTraceBinary() != nil || col.Snapshot() != nil {
		t.Fatal("nil collector exports")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("pkts") != c {
		t.Fatal("counter identity not stable")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(3)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge last=%d max=%d, want 2/7", g.Value(), g.Max())
	}

	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Total() != 5 || h.Sum() != 5126 {
		t.Fatalf("hist total=%d sum=%d", h.Total(), h.Sum())
	}
	want := []uint64{2, 2, 0, 1} // ≤10: {5,10}; ≤100: {11,100}; ≤1000: {}; overflow: {5000}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bounds mismatch")
		}
	}()
	r.Histogram("h", []int64{1, 2, 3})
}

func TestRegistryMergeCommutative(t *testing.T) {
	build := func(bias int64) *Registry {
		r := NewRegistry()
		r.Counter("c").Add(uint64(bias))
		r.Gauge("g").Set(bias)
		h := r.Histogram("h", []int64{10, 100})
		h.Observe(bias)
		return r
	}
	ab := NewRegistry()
	ab.Merge(build(3))
	ab.Merge(build(50))
	ba := NewRegistry()
	ba.Merge(build(50))
	ba.Merge(build(3))
	if !bytes.Equal(ab.ExportJSON(), ba.ExportJSON()) {
		t.Fatalf("merge not commutative:\n%s\n%s", ab.ExportJSON(), ba.ExportJSON())
	}
	if ab.Counter("c").Value() != 53 || ab.Gauge("g").Max() != 50 || ab.Histogram("h", []int64{10, 100}).Total() != 2 {
		t.Fatal("merged values wrong")
	}
}

func TestExportJSONCanonicalAndValid(t *testing.T) {
	r := NewRegistry()
	// Register in non-sorted order; export must sort.
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(-4)
	r.Histogram("h", []int64{1}).Observe(0)
	out := r.ExportJSON()
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, out)
	}
	if idx := bytes.Index(out, []byte("alpha")); idx < 0 || idx > bytes.Index(out, []byte("zeta")) {
		t.Fatalf("counters not sorted: %s", out)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Subject("link")
	for i := 0; i < 6; i++ {
		tr.Emit(sim.Time(i), KindEnqueue, s, int64(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	ev := tr.Events()
	for i, e := range ev {
		if e.A != int64(i+2) {
			t.Fatalf("event %d has A=%d, want %d (oldest-first after wrap)", i, e.A, i+2)
		}
	}
}

func TestTracerSubjectInterning(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Subject("a")
	b := tr.Subject("b")
	if a == b || tr.Subject("a") != a {
		t.Fatal("interning broken")
	}
	if tr.SubjectName(a) != "a" || tr.SubjectName(b) != "b" {
		t.Fatal("subject name resolution broken")
	}
}

func TestKindStrings(t *testing.T) {
	for k := 0; k < numKinds; k++ {
		if Kind(k).String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind fallback")
	}
}

// fillSink produces deterministic content as a function of idx only.
func fillSink(idx int) *Sink {
	s := NewSink(16)
	s.Reg.Counter("n").Add(uint64(idx + 1))
	s.Reg.Gauge("g").Set(int64(idx))
	s.Reg.Histogram("h", []int64{10}).Observe(int64(idx))
	subj := s.Tr.Subject(fmt.Sprintf("shard%d", idx))
	s.Tr.Emit(sim.Time(idx), KindDrop, subj, int64(idx), 1)
	return s
}

func TestCollectorExportOrderInvariant(t *testing.T) {
	// Register sources in two different (simulated completion) orders;
	// every export must be byte-identical.
	mk := func(order []int) *Collector {
		c := NewCollector()
		for _, i := range order {
			c.Add(fmt.Sprintf("lat/%04d", i), fillSink(i))
		}
		return c
	}
	fwd := mk([]int{0, 1, 2, 3})
	rev := mk([]int{3, 1, 0, 2})
	if !bytes.Equal(fwd.ExportMetricsJSON(), rev.ExportMetricsJSON()) {
		t.Fatal("metrics export depends on registration order")
	}
	if !bytes.Equal(fwd.ExportTraceJSONL(), rev.ExportTraceJSONL()) {
		t.Fatal("JSONL trace export depends on registration order")
	}
	if !bytes.Equal(fwd.ExportTraceBinary(), rev.ExportTraceBinary()) {
		t.Fatal("binary trace export depends on registration order")
	}
	// Zero-padded names sort numerically.
	names := []string{"lat/0010", "lat/0002", "lat/0001"}
	sort.Strings(names)
	if names[0] != "lat/0001" || names[2] != "lat/0010" {
		t.Fatal("zero-padded source names must sort in shard order")
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	c := NewCollector()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				c.Add(fmt.Sprintf("s/%02d/%02d", w, i), fillSink(i))
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := len(c.sorted()); got != 400 {
		t.Fatalf("sources = %d, want 400", got)
	}
}

func TestSnapshotFlattening(t *testing.T) {
	c := NewCollector()
	c.Add("a", fillSink(4))
	snap := c.Snapshot()
	if snap["n"] != 5 || snap["g.max"] != 4 || snap["h.count"] != 1 || snap["h.sum"] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestBinaryExportLayout(t *testing.T) {
	c := NewCollector()
	c.Add("src", fillSink(2))
	bin := c.ExportTraceBinary()
	if !bytes.HasPrefix(bin, []byte(binMagic)) {
		t.Fatalf("binary export missing magic: % x", bin[:8])
	}
	// magic(4) + len("src")(4)+3 + nsubj(4) + len("shard2")(4)+6 + nevents(4) + 1 record(29)
	want := 4 + 4 + 3 + 4 + 4 + 6 + 4 + 29
	if len(bin) != want {
		t.Fatalf("binary export length = %d, want %d", len(bin), want)
	}
}

func TestDefaultBoundsAscending(t *testing.T) {
	for _, bounds := range [][]int64{DurationBounds(), SizeBounds()} {
		if len(bounds) == 0 {
			t.Fatal("empty default bounds")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bounds)
			}
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(1 << 12)
	s := tr.Subject("l")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), KindEnqueue, s, int64(i), 64)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h", DurationBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1000)
	}
}

// TestHistogramObserveN holds the bulk form to its definition — exactly
// the state n repeated Observes leave, across bucket boundaries and the
// overflow bucket — and keeps it safe on a nil receiver.
func TestHistogramObserveN(t *testing.T) {
	r := NewRegistry()
	bulk := r.Histogram("bulk", DurationBounds())
	loop := r.Histogram("loop", DurationBounds())
	for _, c := range []struct {
		v int64
		n uint64
	}{{int64(time.Millisecond), 5}, {1, 3}, {int64(500 * time.Second), 2}, {0, 4}} {
		bulk.ObserveN(c.v, c.n)
		for i := uint64(0); i < c.n; i++ {
			loop.Observe(c.v)
		}
	}
	bulk.ObserveN(7, 0)
	if bulk.Total() != loop.Total() || bulk.Sum() != loop.Sum() {
		t.Errorf("bulk total/sum = %d/%d, looped = %d/%d",
			bulk.Total(), bulk.Sum(), loop.Total(), loop.Sum())
	}
	if !reflect.DeepEqual(bulk.counts, loop.counts) {
		t.Errorf("bucket counts diverge:\n bulk %v\n loop %v", bulk.counts, loop.counts)
	}

	var nilH *Histogram
	nilH.ObserveN(1, 10) // must not panic
	if nilH.Total() != 0 {
		t.Error("nil histogram accumulated observations")
	}
}

// TestHistogramDrainInto checks the per-worker scratch handoff the
// partitioned fleet campaign uses: a standalone (unregistered) histogram
// drains its buckets into a registered one and resets, nil on either
// side is a no-op, and a layout mismatch panics.
func TestHistogramDrainInto(t *testing.T) {
	r := NewRegistry()
	dst := r.Histogram("dst", DurationBounds())
	want := r.Histogram("want", DurationBounds())
	scratch := NewHistogram(DurationBounds())
	for _, v := range []int64{1, int64(time.Millisecond), int64(500 * time.Second), 0, 42} {
		scratch.Observe(v)
		want.Observe(v)
	}
	scratch.DrainInto(dst)
	if dst.Total() != want.Total() || dst.Sum() != want.Sum() || !reflect.DeepEqual(dst.counts, want.counts) {
		t.Errorf("drained histogram differs: total %d/%d sum %d/%d", dst.Total(), want.Total(), dst.Sum(), want.Sum())
	}
	if scratch.Total() != 0 || scratch.Sum() != 0 {
		t.Error("scratch not reset after DrainInto")
	}
	scratch.DrainInto(dst) // empty drain: no-op
	if dst.Total() != want.Total() {
		t.Error("empty drain changed the destination")
	}

	var nilH *Histogram
	nilH.DrainInto(dst) // must not panic
	scratch.DrainInto(nilH)

	scratch.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("draining into a different bucket layout did not panic")
		}
	}()
	scratch.DrainInto(r.Histogram("sizes", SizeBounds()))
}
