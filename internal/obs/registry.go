// Package obs is the deterministic observability layer of the simulator:
// a sim-clock-aware metrics registry (counters, gauges, sim-time
// histograms) and a structured event tracer (ring-buffered typed records)
// with canonical sorted exports.
//
// Design constraints, in order:
//
//   - Determinism. Every export is a pure function of the simulation: no
//     wall-clock timestamps, no map-iteration order, no pointer values.
//     Registries merge commutatively and exports sort by name, so the
//     bytes are identical across repeated runs and across worker counts —
//     which is what lets ci.sh byte-diff two campaign runs as a
//     nondeterminism detector.
//   - Zero-alloc hot path. Counter.Inc, Gauge.Set, Histogram.Observe and
//     Tracer.Emit allocate nothing; the trace ring and histogram buckets
//     are preallocated. Instrumented components hold maybe-nil metric
//     pointers, and every method is a no-op on a nil receiver, so
//     disabled observability costs exactly one branch per site.
//   - No locks. The simulation is single-threaded per scheduler; each
//     shard of a parallel campaign owns its own registry/tracer, and the
//     parallel runner merges the per-shard instances in shard order.
package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The zero of the
// simulation: packets sent, drops, RTO firings.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one. Safe on a nil receiver (disabled observability).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (queue depth, active flows). It tracks
// the last set value and the maximum ever set. Merging sums the last
// values and takes the max of maxima — both commutative, so shard merge
// order cannot leak into exports.
type Gauge struct {
	name      string
	last, max int64
}

// Set records the current level. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.last = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the current level by d. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.last + d)
}

// Value returns the last set level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.last
}

// Max returns the maximum level ever set (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket histogram of int64 observations (durations
// in nanoseconds, sizes in bytes). Bounds are inclusive upper bounds in
// ascending order; counts has one extra overflow bucket. Observation is
// a short linear scan — bucket counts are small (≤ ~32) and the scan is
// branch-predictable, which beats binary search at this size.
type Histogram struct {
	name   string
	bounds []int64
	counts []uint64
	total  uint64
	sum    int64
}

// DurationBounds is the default bucket layout for sim-time durations:
// exponential from 1 µs to ~137 s (1µs·4^k), which spans everything from
// LAN serialization to the paper's multi-second outages.
func DurationBounds() []int64 {
	out := make([]int64, 0, 14)
	for b := int64(time.Microsecond); b < int64(200*time.Second); b *= 4 {
		out = append(out, b)
	}
	return out
}

// SizeBounds is the default bucket layout for byte quantities:
// exponential from 256 B to 64 MB.
func SizeBounds() []int64 {
	out := make([]int64, 0, 10)
	for b := int64(256); b <= 64<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveN records n observations of the same value — the bulk form
// analytic fast-forwards use to credit a batch of identical samples in
// one call. Equivalent to calling Observe(v) n times. Safe on a nil
// receiver.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.total += n
	h.sum += v * int64(n)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i] += n
			return
		}
	}
	h.counts[len(h.bounds)] += n
}

// NewHistogram returns a standalone histogram with the given bucket
// bounds, unattached to any registry — scratch space for per-worker
// accumulation that is later drained into a registered histogram with
// DrainInto. Not exported by Registry exports.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// DrainInto adds this histogram's buckets into dst and resets the
// receiver to empty. Both sides must share the bucket layout. Safe when
// either side is nil (no-op), so scratch histograms mirror the maybe-nil
// registered metric they drain into.
func (h *Histogram) DrainInto(dst *Histogram) {
	if h == nil || dst == nil || h.total == 0 {
		return
	}
	if len(h.bounds) != len(dst.bounds) {
		panic("obs: draining histogram into different bucket layout")
	}
	dst.total += h.total
	dst.sum += h.sum
	h.total = 0
	h.sum = 0
	for i, c := range h.counts {
		dst.counts[i] += c
		h.counts[i] = 0
	}
}

// Total returns the number of observations (0 for nil).
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry owns named metrics. Metric registration (Counter, Gauge,
// Histogram) happens at setup time and may allocate; the returned
// pointers are then incremented allocation-free on the hot path. All
// lookup methods are safe on a nil registry and return nil metrics, so
// components register unconditionally against a maybe-nil registry.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op metric) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Re-registration with different bounds
// panics: histogram identity includes its layout, or merges would be
// undefined.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Merge folds o into r: counters sum, gauge last-values sum and maxima
// take the max, histograms sum bucketwise. Merging is commutative and
// associative, so the result is independent of the order shards finish.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for name, c := range o.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range o.gauges {
		dst := r.Gauge(name)
		dst.last += g.last
		if g.max > dst.max {
			dst.max = g.max
		}
	}
	for name, h := range o.hists {
		dst := r.Histogram(name, h.bounds)
		dst.total += h.total
		dst.sum += h.sum
		for i, c := range h.counts {
			dst.counts[i] += c
		}
	}
}

// sortedKeys returns the keys of a map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExportJSON renders the registry as canonical JSON: sections in fixed
// order, names sorted, integers only — byte-identical for equal metric
// state regardless of registration or merge order.
func (r *Registry) ExportJSON() []byte {
	var b bytes.Buffer
	r.exportJSON(&b)
	return b.Bytes()
}

func (r *Registry) exportJSON(b *bytes.Buffer) {
	b.WriteString(`{"counters":{`)
	for i, name := range sortedKeys(r.counters) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%q:%d", name, r.counters[name].v)
	}
	b.WriteString(`},"gauges":{`)
	for i, name := range sortedKeys(r.gauges) {
		if i > 0 {
			b.WriteByte(',')
		}
		g := r.gauges[name]
		fmt.Fprintf(b, `%q:{"last":%d,"max":%d}`, name, g.last, g.max)
	}
	b.WriteString(`},"histograms":{`)
	for i, name := range sortedKeys(r.hists) {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.hists[name]
		fmt.Fprintf(b, `%q:{"count":%d,"sum":%d,"bounds":[`, name, h.total, h.sum)
		for j, bd := range h.bounds {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(bd, 10))
		}
		b.WriteString(`],"counts":[`)
		for j, c := range h.counts {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(c, 10))
		}
		b.WriteString(`]}`)
	}
	b.WriteString(`}}`)
}

// Snapshot flattens the registry into name → value pairs for bench.json:
// counters as-is, gauges as <name>.max, histograms as <name>.count and
// <name>.sum.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.v)
	}
	for name, g := range r.gauges {
		out[name+".max"] = float64(g.max)
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.total)
		out[name+".sum"] = float64(h.sum)
	}
	return out
}
