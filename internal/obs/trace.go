package obs

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"starlinkperf/internal/sim"
)

// Kind identifies the type of a trace event. The numeric values are part
// of the binary export format; append new kinds, never renumber.
type Kind uint8

const (
	// KindDrop: a packet was dropped. A = DropReason code, B = packet bytes.
	KindDrop Kind = iota
	// KindEnqueue: a packet entered a link queue. A = queued bytes after, B = packet bytes.
	KindEnqueue
	// KindDequeue: a packet left a link queue for transmission. A = queued bytes after, B = packet bytes.
	KindDequeue
	// KindHandover: the terminal's serving satellite changed. A = old sat index, B = new sat index.
	KindHandover
	// KindOutage: the access link entered an outage window. A = duration ns, B = 1 for long outage, 0 for handover micro-outage.
	KindOutage
	// KindRTO: a TCP retransmission timeout fired. A = consecutive RTO count, B = 0.
	KindRTO
	// KindPTO: a QUIC probe timeout fired. A = consecutive PTO count, B = 0.
	KindPTO
	// KindSplice: a PEP proxy spliced a TCP connection. A = 0, B = 0.
	KindSplice
	// KindProbeLost: an ICMP echo probe timed out. A = sequence number, B = 0.
	KindProbeLost
	// KindFleetEpoch: a fleet region finished a reassignment epoch. A =
	// terminals in outage this epoch, B = handovers this epoch.
	KindFleetEpoch

	numKinds = int(KindFleetEpoch) + 1
)

var kindNames = [numKinds]string{
	"drop", "enqueue", "dequeue", "handover", "outage",
	"rto", "pto", "splice", "probe_lost", "fleet_epoch",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Subj identifies the subject of an event (a link, a connection, a
// terminal) as an index into the tracer's interned subject-name table.
type Subj uint32

// Event is one trace record. Sixteen bytes of payload beyond the
// timestamp: a kind, a subject, and two kind-specific operands — enough
// for every instrumented site without per-kind structs or allocation.
type Event struct {
	At   sim.Time
	Kind Kind
	Subj Subj
	A, B int64
}

// Tracer is a fixed-capacity ring of Events. Emit never allocates; once
// the ring is full the oldest events are overwritten, bounding memory on
// arbitrarily long campaigns. Within one tracer events are naturally
// time-ordered (single-threaded scheduler, monotone clock), so export is
// a rotation, not a sort.
type Tracer struct {
	ring  []Event
	next  int  // next write slot
	wrap  bool // ring has wrapped at least once
	names []string
	subjs map[string]Subj
}

// NewTracer returns a tracer holding at most cap events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring:  make([]Event, capacity),
		subjs: make(map[string]Subj),
	}
}

// Subject interns a subject name and returns its id. Call at setup time;
// ids are stable for the life of the tracer. Returns 0 on a nil tracer.
func (t *Tracer) Subject(name string) Subj {
	if t == nil {
		return 0
	}
	if id, ok := t.subjs[name]; ok {
		return id
	}
	id := Subj(len(t.names))
	t.names = append(t.names, name)
	t.subjs[name] = id
	return id
}

// Emit records one event. Safe on a nil receiver; never allocates.
func (t *Tracer) Emit(at sim.Time, kind Kind, subj Subj, a, b int64) {
	if t == nil {
		return
	}
	t.ring[t.next] = Event{At: at, Kind: kind, Subj: subj, A: a, B: b}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrap = true
	}
}

// Len returns the number of retained events (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.wrap {
		return len(t.ring)
	}
	return t.next
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrap {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SubjectName resolves a subject id to its interned name.
func (t *Tracer) SubjectName(s Subj) string {
	if t == nil || int(s) >= len(t.names) {
		return fmt.Sprintf("subj(%d)", uint32(s))
	}
	return t.names[s]
}

// appendJSONL writes the retained events as JSON Lines, one canonical
// fixed-field-order object per event, prefixing each subject with src
// (the shard source name) so merged exports stay unambiguous.
func (t *Tracer) appendJSONL(b *bytes.Buffer, src string) {
	if t == nil {
		return
	}
	for _, e := range t.Events() {
		fmt.Fprintf(b, `{"src":%q,"at":%d,"kind":%q,"subj":%q,"a":%d,"b":%d}`+"\n",
			src, int64(e.At), e.Kind.String(), t.SubjectName(e.Subj), e.A, e.B)
	}
}

// Binary trace format "OTR1": a per-source header (magic, source name,
// subject table) followed by fixed-width little-endian 29-byte records.
const binMagic = "OTR1"

// appendBinary writes the per-source binary section.
func (t *Tracer) appendBinary(b *bytes.Buffer, src string) {
	if t == nil {
		return
	}
	b.WriteString(binMagic)
	writeLenString(b, src)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(t.names)))
	b.Write(u32[:])
	for _, n := range t.names {
		writeLenString(b, n)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(t.Len()))
	b.Write(u32[:])
	var rec [29]byte
	for _, e := range t.Events() {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(int64(e.At)))
		rec[8] = byte(e.Kind)
		binary.LittleEndian.PutUint32(rec[9:13], uint32(e.Subj))
		binary.LittleEndian.PutUint64(rec[13:21], uint64(e.A))
		binary.LittleEndian.PutUint64(rec[21:29], uint64(e.B))
		b.Write(rec[:])
	}
}

func writeLenString(b *bytes.Buffer, s string) {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s)))
	b.Write(u32[:])
	b.WriteString(s)
}
