// Package pep implements a transparent TCP split-connection Performance
// Enhancing Proxy (RFC 3135) as a netem device.
//
// SatCom operators deploy PEPs at the teleport to hide the geostationary
// path's ~600 ms RTT from TCP: the proxy answers the client's SYN locally
// (spoofing the server), opens its own leg to the real server (spoofing
// the client), and relays bytes with local acknowledgements, decoupling
// the two congestion/flow-control loops. TLS bytes relay through
// untouched — end-to-end security is preserved, and so is its latency
// cost, which is why the paper's SatCom web setup times stay high even
// with a PEP.
//
// QUIC cannot be split: its transport layer is encrypted and
// authenticated, so the proxy forwards UDP unmodified. This asymmetry is
// the paper's motivation for measuring with QUIC.
package pep

import (
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

// pepObs caches the proxy's metric handles; nil when disabled.
type pepObs struct {
	tr      *obs.Tracer
	subj    obs.Subj
	splits  *obs.Counter
	relayed *obs.Counter
	flows   *obs.Gauge
}

type legRole uint8

const (
	toClient legRole = iota
	toServer
)

type flowKey struct {
	srcAddr netem.Addr
	srcPort uint16
	dstAddr netem.Addr
	dstPort uint16
}

type splitFlow struct {
	clientLeg *tcpsim.Conn // spoofs the server towards the client
	serverLeg *tcpsim.Conn // spoofs the client towards the server
}

type legRef struct {
	flow *splitFlow
	role legRole
}

// Proxy is the PEP device. Attach it to the node all client↔server
// traffic transits (the teleport).
type Proxy struct {
	// Config is used for both legs (TLSRounds is forced to 0: the PEP
	// splits TCP, never TLS).
	Config tcpsim.Config
	// ClientLegCC and ServerLegCC override the congestion controller of
	// the leg toward the client resp. the server. Satellite PEPs run a
	// provisioned fixed window on the space-segment leg.
	ClientLegCC func(mss int) cc.CongestionController
	ServerLegCC func(mss int) cc.CongestionController
	// MaxBacklog bounds the relay buffer per flow direction; beyond it
	// the receiving leg's advertised window closes (backpressure).
	// 0 means 8 MB.
	MaxBacklog int
	// Match restricts which TCP flows are split; nil splits all.
	Match func(pkt *netem.Packet) bool

	legs map[flowKey]legRef
	obs  *pepObs

	// Splits counts intercepted connections; Relayed counts relayed
	// payload bytes.
	Splits  uint64
	Relayed uint64
}

// Observe attaches metrics and splice trace events to the proxy under
// the given subject name (e.g. "pep/teleport"). The proxy's legs pick up
// TCP-level instrumentation separately through Config.Obs. A nil sink is
// a no-op.
func (p *Proxy) Observe(s *obs.Sink, name string) {
	if s == nil {
		return
	}
	reg, tr := s.Registry(), s.Tracer()
	p.obs = &pepObs{
		tr:      tr,
		subj:    tr.Subject(name),
		splits:  reg.Counter("pep.splits"),
		relayed: reg.Counter("pep.relayed_bytes"),
		flows:   reg.Gauge("pep.active_flows"),
	}
}

// New returns a PEP with the given leg configuration.
func New(cfg tcpsim.Config) *Proxy {
	cfg.TLSRounds = 0
	return &Proxy{Config: cfg, legs: make(map[flowKey]legRef)}
}

func keyOf(pkt *netem.Packet) flowKey {
	return flowKey{srcAddr: pkt.Src, srcPort: pkt.SrcPort, dstAddr: pkt.Dst, dstPort: pkt.DstPort}
}

// Process implements netem.Device.
func (p *Proxy) Process(node *netem.Node, pkt *netem.Packet) bool {
	if pkt.Proto != netem.ProtoTCP {
		return true // QUIC/UDP/ICMP pass through: encrypted transports cannot be split
	}
	key := keyOf(pkt)
	if ref, ok := p.legs[key]; ok {
		switch ref.role {
		case toClient:
			ref.flow.clientLeg.HandleSegment(pkt)
		case toServer:
			ref.flow.serverLeg.HandleSegment(pkt)
		}
		return false
	}
	seg, ok := pkt.Payload.(*tcpsim.Segment)
	if !ok {
		return true
	}
	if seg.Flags&tcpsim.FlagSYN == 0 || seg.Flags&tcpsim.FlagACK != 0 {
		return true // mid-flow segment of an unknown flow: not ours
	}
	if p.Match != nil && !p.Match(pkt) {
		return true
	}
	p.split(node, pkt, key)
	return false
}

// split sets up the two legs for a newly intercepted connection and
// replays the SYN into the client leg.
func (p *Proxy) split(node *netem.Node, syn *netem.Packet, key flowKey) {
	p.Splits++
	if p.obs != nil {
		p.obs.splits.Inc()
		p.obs.tr.Emit(node.Scheduler().Now(), obs.KindSplice, p.obs.subj, int64(syn.SrcPort), int64(syn.DstPort))
	}
	f := &splitFlow{}
	cliCfg, srvCfg := p.Config, p.Config
	if p.ClientLegCC != nil {
		cliCfg.NewCC = p.ClientLegCC
	}
	if p.ServerLegCC != nil {
		srvCfg.NewCC = p.ServerLegCC
	}
	f.clientLeg = tcpsim.NewConn(tcpsim.ConnParams{
		Sched:      node.Scheduler(),
		Transmit:   node.Send,
		Node:       node,
		LocalAddr:  syn.Dst, // spoof the server
		LocalPort:  syn.DstPort,
		RemoteAddr: syn.Src,
		RemotePort: syn.SrcPort,
		IsClient:   false,
		Config:     cliCfg,
	})
	f.serverLeg = tcpsim.NewConn(tcpsim.ConnParams{
		Sched:      node.Scheduler(),
		Transmit:   node.Send,
		Node:       node,
		LocalAddr:  syn.Src, // spoof the client
		LocalPort:  syn.SrcPort,
		RemoteAddr: syn.Dst,
		RemotePort: syn.DstPort,
		IsClient:   true,
		Config:     srvCfg,
	})

	// Backpressure: each leg's advertised window shrinks by the bytes
	// its relay twin has not yet pushed out, and window updates flow as
	// the twin drains.
	maxBacklog := p.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 8 << 20
	}
	f.clientLeg.BacklogFn = func() int { return scaleBacklog(f.serverLeg.Backlog(), maxBacklog, int(p.Config.MaxRcvWnd)) }
	f.serverLeg.BacklogFn = func() int { return scaleBacklog(f.clientLeg.Backlog(), maxBacklog, int(p.Config.MaxRcvWnd)) }
	// Window updates as the twin drains, throttled so the updates do
	// not saturate thin return paths.
	sched := node.Scheduler()
	f.serverLeg.OnSendProgress = throttled(sched, 40*time.Millisecond, f.clientLeg.ForceAck)
	f.clientLeg.OnSendProgress = throttled(sched, 40*time.Millisecond, f.serverLeg.ForceAck)

	// Relay payload, application messages and FINs between the legs.
	relay := func(dst *tcpsim.Conn) (func(int, bool), func(any)) {
		var pending any
		hasMsg := false
		onMsg := func(m any) { pending, hasMsg = m, true }
		onData := func(n int, fin bool) {
			p.Relayed += uint64(n)
			if p.obs != nil {
				p.obs.relayed.Add(uint64(n))
			}
			if n > 0 {
				if hasMsg {
					dst.WriteMsg(n, pending)
					hasMsg = false
				} else {
					dst.Write(n)
				}
			}
			if fin {
				dst.Close()
			}
		}
		return onData, onMsg
	}
	f.clientLeg.OnData, f.clientLeg.OnMsg = relay(f.serverLeg)
	f.serverLeg.OnData, f.serverLeg.OnMsg = relay(f.clientLeg)
	// On teardown: a leg that finished cleanly just releases its demux
	// entry; an aborted leg (RST, error) propagates the abort so the
	// other side does not hang.
	f.clientLeg.OnClosed = func() {
		delete(p.legs, key)
		if p.obs != nil {
			p.obs.flows.Set(int64(len(p.legs) / 2))
		}
		if !f.clientLeg.Completed() && f.serverLeg.State() != tcpsim.StateClosed {
			f.serverLeg.Abort()
		}
	}
	f.serverLeg.OnClosed = func() {
		delete(p.legs, key.reverse())
		if p.obs != nil {
			p.obs.flows.Set(int64(len(p.legs) / 2))
		}
		if !f.serverLeg.Completed() && f.clientLeg.State() != tcpsim.StateClosed {
			f.clientLeg.Abort()
		}
	}

	p.legs[key] = legRef{flow: f, role: toClient}
	p.legs[key.reverse()] = legRef{flow: f, role: toServer}
	if p.obs != nil {
		p.obs.flows.Set(int64(len(p.legs) / 2))
	}

	f.serverLeg.Start()
	f.clientLeg.HandleSegment(syn)
}

func (k flowKey) reverse() flowKey {
	return flowKey{srcAddr: k.dstAddr, srcPort: k.dstPort, dstAddr: k.srcAddr, dstPort: k.srcPort}
}

// ActiveFlows returns the number of live split connections.
func (p *Proxy) ActiveFlows() int { return len(p.legs) / 2 }

// throttled wraps fn so it runs at most once per interval, with a
// trailing invocation when calls arrived during the quiet period.
func throttled(sched *sim.Scheduler, interval time.Duration, fn func()) func() {
	var last sim.Time
	pending := false
	var fire func()
	fire = func() {
		pending = false
		last = sched.Now()
		fn()
	}
	return func() {
		if pending {
			return
		}
		if since := sched.Now().Sub(last); since >= interval || last == 0 {
			fire()
			return
		}
		pending = true
		sched.After(interval-sched.Now().Sub(last), fire)
	}
}

// scaleBacklog maps a relay backlog onto window reduction: no pressure
// below half the budget, then a linear close until the window shuts at
// maxBacklog of unsent bytes.
func scaleBacklog(backlog, maxBacklog, window int) int {
	half := maxBacklog / 2
	if backlog <= half {
		return 0
	}
	if backlog >= maxBacklog {
		return window
	}
	return int(int64(window) * int64(backlog-half) / int64(maxBacklog-half))
}
