package pep

import (
	"testing"
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

// geoTopo builds client -(1ms)- modem -(GEO link, 280ms one-way)-
// teleport -(5ms)- server. The PEP lives in the modem, the classic
// client-side half of a distributed SatCom PEP: it answers handshakes
// locally and runs its own large-window loop across the GEO hop.
func geoTopo(t *testing.T, withPEP bool) (*sim.Scheduler, *netem.Node, *netem.Node, *Proxy) {
	t.Helper()
	s := sim.NewScheduler(5)
	nw := netem.New(s)
	client := nw.NewNode("client", netem.MustParseAddr("10.1.0.2"))
	modem := nw.NewNode("modem", netem.MustParseAddr("10.1.0.1"))
	teleport := nw.NewNode("teleport", netem.MustParseAddr("10.2.0.1"))
	server := nw.NewNode("server", netem.MustParseAddr("10.3.0.1"))

	lan := netem.LinkConfig{RateBps: 1e9, Delay: netem.ConstantDelay(time.Millisecond), QueueBytes: 2 << 20}
	sat := netem.LinkConfig{RateBps: 100e6, Delay: netem.ConstantDelay(280 * time.Millisecond), QueueBytes: 4 << 20}
	terr := netem.LinkConfig{RateBps: 1e9, Delay: netem.ConstantDelay(5 * time.Millisecond), QueueBytes: 2 << 20}
	c2m, m2c := nw.Connect(client, modem, lan)
	m2t, t2m := nw.Connect(modem, teleport, sat)
	t2s, s2t := nw.Connect(teleport, server, terr)
	client.SetDefaultRoute(c2m)
	modem.AddRoute(client.Addr(), m2c)
	modem.SetDefaultRoute(m2t)
	teleport.AddRoute(client.Addr(), t2m)
	teleport.AddRoute(server.Addr(), t2s)
	server.SetDefaultRoute(s2t)

	var proxy *Proxy
	if withPEP {
		// Dual-PEP (I-PEP) deployment: proxies in the modem and at the
		// teleport. The GEO segment between them runs with buffers and a
		// fixed window engineered for the provisioned 100 Mbit/s x
		// 570 ms BDP, like commercial satellite PEPs.
		cfg := tcpsim.DefaultConfig()
		cfg.InitialRcvWnd = 16 << 20
		cfg.MaxRcvWnd = 64 << 20
		cfg.FastOpen = true
		cfg.NewCC = func(mss int) cc.CongestionController { return cc.NewFixed(8 << 20) }
		proxy = New(cfg)
		modem.AttachDevice(proxy)
		teleport.AttachDevice(New(cfg))
	}
	return s, client, server, proxy
}

func TestPEPSplitsAndRelaysFullTransfer(t *testing.T) {
	s, client, server, proxy := geoTopo(t, true)
	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 0

	received := 0
	fin := false
	tcpsim.Listen(server, 80, cfg, func(sc *tcpsim.Conn) {
		sc.OnData = func(n int, f bool) {
			received += n
			if f {
				fin = true
			}
		}
	})
	const total = 1 << 20
	c := tcpsim.Dial(client, server.Addr(), 80, cfg)
	c.OnEstablished = func() {
		c.Write(total)
		c.Close()
	}
	s.RunFor(120 * time.Second)

	if received != total || !fin {
		t.Fatalf("relayed %d/%d fin=%v", received, total, fin)
	}
	if proxy.Splits != 1 {
		t.Errorf("splits = %d, want 1", proxy.Splits)
	}
	if proxy.Relayed < total {
		t.Errorf("relayed bytes = %d", proxy.Relayed)
	}
}

func TestPEPAcceleratesTCPHandshakeButNotTLS(t *testing.T) {
	// TCP handshake terminates at the PEP (~560ms RTT to the teleport),
	// but the TLS rounds still traverse end-to-end. With TLS 1.2 the
	// client becomes ready after ~1 local RTT + 2 e2e RTTs.
	setup := func(withPEP bool) time.Duration {
		s, client, server, _ := geoTopo(t, withPEP)
		cfg := tcpsim.DefaultConfig() // TLS 1.2
		tcpsim.Listen(server, 443, cfg, nil)
		c := tcpsim.Dial(client, server.Addr(), 443, cfg)
		s.RunFor(30 * time.Second)
		if !c.Ready() {
			t.Fatalf("pep=%v: handshake incomplete", withPEP)
		}
		return c.SetupTime()
	}
	with := setup(true)
	without := setup(false)
	// Without PEP: 3 e2e RTTs (~574ms each) ≈ 1.72s+.
	if without < 1600*time.Millisecond {
		t.Errorf("no-PEP TLS1.2 setup %v suspiciously fast", without)
	}
	// With PEP the TCP handshake is local: roughly one e2e RTT saved.
	if with > without-400*time.Millisecond {
		t.Errorf("PEP saving too small: %v vs %v", with, without)
	}
}

func TestPEPImprovesHighBDPThroughput(t *testing.T) {
	// The e2e receive window (max 6MB) binds at 560ms RTT; the PEP's
	// split loops (each with its own rwnd) recover throughput.
	run := func(withPEP bool) float64 {
		s, client, server, _ := geoTopo(t, withPEP)
		cfg := tcpsim.DefaultConfig()
		cfg.TLSRounds = 0
		cfg.MaxRcvWnd = 2 << 20 // tighten to make the effect unmistakable
		received := 0
		var start, end sim.Time
		// Client connects; the server pushes the payload back on the
		// same connection (download direction).
		const total = 64 << 20
		tcpsim.Listen(server, 8080, cfg, func(sc *tcpsim.Conn) {
			sc.OnEstablished = func() {
				sc.Write(total)
				sc.Close()
			}
		})
		c := tcpsim.Dial(client, server.Addr(), 8080, cfg)
		c.OnEstablished = func() { start = s.Now() }
		c.OnData = func(n int, f bool) {
			received += n
			if f {
				end = s.Now()
			}
		}
		s.RunFor(600 * time.Second)
		if received != total {
			t.Fatalf("pep=%v: received %d/%d", withPEP, received, total)
		}
		return float64(total) * 8 / end.Sub(start).Seconds()
	}
	with := run(true)
	without := run(false)
	if with <= without*1.5 {
		t.Errorf("PEP throughput %.1f Mbit/s, no-PEP %.1f: expected a clear win", with/1e6, without/1e6)
	}
}

func TestPEPPassesQUICThrough(t *testing.T) {
	s, client, server, proxy := geoTopo(t, true)
	cep := quic.NewEndpoint(client, 5000)
	sep := quic.NewEndpoint(server, 443)
	received := 0
	done := false
	sep.Listen(quic.DefaultConfig(), func(c *quic.Connection) {
		c.OnStream = func(st *quic.Stream) {
			st.OnData = func(d []byte, fin bool) {
				received += len(d)
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(server.Addr(), 443, quic.DefaultConfig())
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(256 << 10)
		st.Close()
	}
	s.RunFor(60 * time.Second)
	if !done || received != 256<<10 {
		t.Fatalf("QUIC through PEP: %d bytes done=%v", received, done)
	}
	if proxy.Splits != 0 {
		t.Errorf("PEP split %d QUIC flows; must not touch UDP", proxy.Splits)
	}
	// QUIC's handshake had to pay the full e2e RTT: no PEP assist.
	if min := conn.RTT().Min(); min < 560*time.Millisecond {
		t.Errorf("QUIC min RTT %v, want >= 570ms e2e", min)
	}
}

func TestPEPMatchRestriction(t *testing.T) {
	s, client, server, proxy := geoTopo(t, true)
	proxy.Match = func(pkt *netem.Packet) bool { return pkt.DstPort == 80 }
	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 0
	tcpsim.Listen(server, 80, cfg, nil)
	tcpsim.Listen(server, 8443, cfg, nil)
	c80 := tcpsim.Dial(client, server.Addr(), 80, cfg)
	c8443 := tcpsim.Dial(client, server.Addr(), 8443, cfg)
	s.RunFor(30 * time.Second)
	if !c80.Ready() || !c8443.Ready() {
		t.Fatal("handshakes incomplete")
	}
	if proxy.Splits != 1 {
		t.Errorf("splits = %d, want exactly the port-80 flow", proxy.Splits)
	}
	// The non-split flow pays the full e2e handshake.
	if c8443.SetupTime() <= c80.SetupTime() {
		t.Error("unsplit flow should have a slower TCP setup")
	}
}
