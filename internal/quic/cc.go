package quic

import "starlinkperf/internal/cc"

// The congestion-control machinery is shared with the TCP model and lives
// in internal/cc; these aliases keep the quic API self-contained.

// CongestionController is the sender-side congestion control interface.
type CongestionController = cc.CongestionController

// Cubic is the CUBIC controller (RFC 8312).
type Cubic = cc.Cubic

// NewReno is the RFC 9002 baseline controller.
type NewReno = cc.NewReno

// RTTEstimator maintains RFC 9002 §5 round-trip time state.
type RTTEstimator = cc.RTTEstimator

// Pacer spaces packet departures when enabled.
type Pacer = cc.Pacer

// InitialRTT is the pre-handshake RTT assumption.
const InitialRTT = cc.InitialRTT

// NewCubic returns a CUBIC controller sized for QUIC's payload budget.
func NewCubic() *Cubic { return cc.NewCubic(MaxPayloadSize) }

// NewNewReno returns a NewReno controller sized for QUIC's payload budget.
func NewNewReno() *NewReno { return cc.NewNewReno(MaxPayloadSize) }

// BBR is the deterministic BBR-style model controller.
type BBR = cc.BBR

// NewBBR returns a BBR controller sized for QUIC's payload budget.
func NewBBR() *BBR { return cc.NewBBR(MaxPayloadSize) }

// MinWindowPackets is the congestion window floor in packets.
const MinWindowPackets = cc.MinWindowPackets

// InitialWindowPackets is the RFC 9002 initial window in packets.
const InitialWindowPackets = cc.InitialWindowPackets
