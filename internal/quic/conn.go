package quic

import (
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// quicObs caches the metric handles a connection writes into, all
// pointing at the shared per-testbed registry/tracer.
type quicObs struct {
	tr       *obs.Tracer
	subj     obs.Subj
	lost     *obs.Counter
	ptos     *obs.Counter
	retxFrms *obs.Counter
	cwnd     *obs.Histogram
}

func newQUICObs(s *obs.Sink) *quicObs {
	if s == nil {
		return nil
	}
	reg, tr := s.Registry(), s.Tracer()
	return &quicObs{
		tr:       tr,
		subj:     tr.Subject("quic"),
		lost:     reg.Counter("quic.packets_lost"),
		ptos:     reg.Counter("quic.pto"),
		retxFrms: reg.Counter("quic.frames_retx"),
		cwnd:     reg.Histogram("quic.cwnd_bytes", obs.SizeBounds()),
	}
}

// Config carries the transport parameters of one endpoint of a
// connection. The defaults mirror the paper's quiche configuration.
type Config struct {
	// InitialMaxData is the connection receive window advertised at the
	// handshake (paper: 10 MB).
	InitialMaxData uint64
	// InitialMaxStreamData is the per-stream receive window (paper: 10 MB).
	InitialMaxStreamData uint64
	// MaxReceiveWindow caps flow-control autotuning. 0 disables
	// autotuning (the window still slides, it just never grows).
	MaxReceiveWindow uint64
	// MaxAckDelay bounds how long an ACK may be withheld.
	MaxAckDelay time.Duration
	// AckElicitingThreshold is the packet count that forces an
	// immediate ACK (2, per RFC 9000 §13.2.2).
	AckElicitingThreshold int
	// NewCC constructs the congestion controller; nil means CUBIC.
	NewCC func() CongestionController
	// EnablePacing spaces ack-eliciting departures at the pacing rate
	// (1.25x cwnd/SRTT, or the controller's own rate when it implements
	// cc.PacingRater) with a max-burst token bucket. quiche at the
	// paper's commit did not pace; the default is off.
	EnablePacing bool
	// PacingBurst caps the pacer's back-to-back burst allowance in
	// packets; 0 means cc.DefaultBurstPackets.
	PacingBurst int
	// RTTMinWindow, when positive, makes the connection's min-RTT filter
	// windowed over that much sim time instead of all-time, so a
	// handover that raises the path RTT stops pinning stale state. 0
	// keeps the seed's all-time minimum.
	RTTMinWindow time.Duration
	// EnableZeroRTT resumes connections against servers recorded in
	// Sessions without waiting a handshake round trip: Dial returns a
	// connection that is immediately usable, with the session-ticket
	// exchange completing in the background. Requires Sessions.
	EnableZeroRTT bool
	// Sessions is the session-ticket cache shared across endpoints (the
	// testbed owns one per profile): clients record a ticket per
	// (address, port) on every completed handshake and consult it on
	// Dial when EnableZeroRTT is set.
	Sessions *SessionCache
	// AllowMigration lets an established connection follow the peer's
	// address/port change (RFC 9000 §9) — the NAT rebinding a handover
	// or outage induces — instead of stranding replies at the stale
	// mapping until the connection times out.
	AllowMigration bool
	// Obs, when non-nil, reports loss/PTO counters, trace events, and
	// cwnd samples for every connection built with this config.
	Obs *obs.Sink
}

// DefaultConfig returns the paper's quiche-equivalent configuration.
func DefaultConfig() Config {
	return Config{
		InitialMaxData:        10 << 20,
		InitialMaxStreamData:  10 << 20,
		MaxReceiveWindow:      40 << 20,
		MaxAckDelay:           25 * time.Millisecond,
		AckElicitingThreshold: 2,
	}
}

// Stats aggregates connection counters.
type Stats struct {
	PacketsSent         uint64
	AckElicitingSent    uint64
	PacketsReceived     uint64
	DuplicatesRecv      uint64
	PacketsAcked        uint64 // our packets acked by the peer
	PacketsLost         uint64 // sender-declared losses
	ProbesSent          uint64
	PathMigrations      uint64 // peer address/port changes followed
	ZeroRTTResumed      bool   // connection skipped the handshake RTT
	BytesSent           uint64
	BytesReceived       uint64
	FramesRetransmitted uint64
	AcksSent            uint64
}

// connState is the connection lifecycle state.
type connState uint8

const (
	stateHandshaking connState = iota
	stateEstablished
	stateClosed
)

// Sizes of the opaque handshake flights (bytes): a ClientHello-sized
// first flight, a certificate-chain-sized server flight and a Finished-
// sized client confirmation.
const (
	clientHelloSize    = 320
	serverFlightSize   = 3000
	clientFinishedSize = 52
	initialPadTarget   = 1200
)

// Connection is one endpoint of a QUIC connection.
type Connection struct {
	ep       *Endpoint
	sched    *sim.Scheduler
	cfg      Config
	isClient bool
	connID   uint64

	remote     netem.Addr
	remotePort uint16

	state connState
	// hsConfirmed marks the crypto exchange complete. It tracks the
	// state variable exactly on the normal path (set in establish); a
	// 0-RTT resumption is the one case where the connection is usable
	// (state established) while the ticket exchange is still in flight.
	hsConfirmed bool
	// resumed marks a 0-RTT resumption (client side).
	resumed bool

	// Send side.
	nextPN            uint64
	ld                lossDetector
	cc                CongestionController
	pacer             Pacer
	rtt               RTTEstimator
	ptoCount          int
	timer             sim.TimerHandle
	lastElicitingSent sim.Time
	retxQueue         []Frame
	pacingTimer       sim.TimerHandle

	// Crypto (opaque handshake bytes, offset-tracked like a stream).
	cryptoOut     []byte
	cryptoBase    uint64
	cryptoRecv    []segment
	cryptoRecvOff uint64

	// Receive side / ACK generation.
	recvSet        rangeSet
	ackPending     bool
	elicitingSince int
	ackTimer       sim.TimerHandle
	largestRecvAt  sim.Time

	// Connection flow control.
	maxDataRemote  uint64 // peer's advertised limit on our sending
	dataSent       uint64
	maxDataLocal   uint64 // what we advertised
	dataRecv       uint64 // highest offsets received, summed
	dataConsumed   uint64
	connWindow     uint64
	needMaxData    bool
	blockedAtLimit uint64

	// Streams.
	streams      map[uint64]*Stream
	active       []uint64 // round-robin send order
	activeSet    map[uint64]bool
	nextStreamID uint64

	// Application callbacks.
	OnEstablished func()
	OnStream      func(*Stream)
	OnClosed      func()
	// OnRTTSample observes every RTT sample the ACK processing takes —
	// the paper's Figure 3 series.
	OnRTTSample func(at sim.Time, rtt time.Duration)
	// TraceSent and TraceReceived observe every packet for the capture
	// tooling.
	TraceSent     func(at sim.Time, pn uint64, size int, eliciting bool)
	TraceReceived func(at sim.Time, pn uint64, size int)

	obs *quicObs

	Stats Stats

	inSend bool
}

func newConnection(ep *Endpoint, cfg Config, isClient bool, connID uint64, remote netem.Addr, remotePort uint16) *Connection {
	if cfg.InitialMaxData == 0 {
		cfg.InitialMaxData = DefaultConfig().InitialMaxData
	}
	if cfg.InitialMaxStreamData == 0 {
		cfg.InitialMaxStreamData = DefaultConfig().InitialMaxStreamData
	}
	if cfg.MaxAckDelay == 0 {
		cfg.MaxAckDelay = DefaultConfig().MaxAckDelay
	}
	if cfg.AckElicitingThreshold == 0 {
		cfg.AckElicitingThreshold = DefaultConfig().AckElicitingThreshold
	}
	newCC := cfg.NewCC
	if newCC == nil {
		newCC = func() CongestionController { return NewCubic() }
	}
	c := &Connection{
		ep:            ep,
		sched:         ep.node.Scheduler(),
		cfg:           cfg,
		isClient:      isClient,
		connID:        connID,
		remote:        remote,
		remotePort:    remotePort,
		cc:            newCC(),
		pacer:         Pacer{Enabled: cfg.EnablePacing, BurstPackets: cfg.PacingBurst},
		maxDataLocal:  cfg.InitialMaxData,
		connWindow:    cfg.InitialMaxData,
		maxDataRemote: cfg.InitialMaxData, // peers use symmetric configs in the testbed
		streams:       make(map[uint64]*Stream),
		activeSet:     make(map[uint64]bool),
		obs:           newQUICObs(cfg.Obs),
	}
	c.rtt.MinWindow = cfg.RTTMinWindow
	if isClient {
		c.nextStreamID = 0
	} else {
		c.nextStreamID = 1
	}
	return c
}

// ConnID returns the connection identifier.
func (c *Connection) ConnID() uint64 { return c.connID }

// Sched returns the simulation scheduler driving the connection.
func (c *Connection) Sched() *sim.Scheduler { return c.sched }

// Established reports whether the handshake finished.
func (c *Connection) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection terminated.
func (c *Connection) Closed() bool { return c.state == stateClosed }

// RTT returns the connection's RTT estimator (read-only use).
func (c *Connection) RTT() *RTTEstimator { return &c.rtt }

// CC returns the congestion controller (read-only use).
func (c *Connection) CC() CongestionController { return c.cc }

// ReceivedPacketRanges returns the packet-number ranges received so far,
// ascending. Gaps are exactly the packets the network lost towards us —
// the paper's download loss-accounting methodology.
func (c *Connection) ReceivedPacketRanges() []AckRange { return c.recvSet.Ranges() }

// LargestSentPN returns the next packet number to be used minus one.
func (c *Connection) LargestSentPN() (uint64, bool) {
	if c.nextPN == 0 {
		return 0, false
	}
	return c.nextPN - 1, true
}

// startHandshake begins the client side of the handshake. With a cached
// session ticket and EnableZeroRTT, the connection resumes at 0-RTT: it
// is usable immediately (streams open and data rides the first flight
// alongside the resumption hello) while the ticket exchange completes in
// the background. The server needs no special handling — it already runs
// 0.5-RTT, establishing on the hello.
func (c *Connection) startHandshake() {
	c.cryptoOut = make([]byte, clientHelloSize)
	if c.cfg.EnableZeroRTT && c.cfg.Sessions != nil && c.cfg.Sessions.Has(c.remote, c.remotePort) {
		c.resumed = true
		c.Stats.ZeroRTTResumed = true
		c.state = stateEstablished
		c.needMaxData = true
		// Callers assign OnEstablished after Dial returns, so fire it
		// from a zero-delay event rather than synchronously here.
		c.sched.AfterFunc(0, qcZeroRTTEstablished, c)
	}
	c.maybeSend()
}

// OpenStream opens a locally initiated bidirectional stream.
func (c *Connection) OpenStream() *Stream {
	id := c.nextStreamID
	c.nextStreamID += 4
	s := c.newStream(id)
	// Advertise the stream receive window explicitly (see establish).
	c.queueFrame(&MaxStreamDataFrame{StreamID: id, Max: s.maxRecvData})
	return s
}

func (c *Connection) newStream(id uint64) *Stream {
	s := &Stream{
		id:          id,
		conn:        c,
		maxSendData: c.cfg.InitialMaxStreamData,
		maxRecvData: c.cfg.InitialMaxStreamData,
		recvWindow:  c.cfg.InitialMaxStreamData,
	}
	c.streams[id] = s
	return s
}

// Stream returns an existing stream by ID, or nil.
func (c *Connection) Stream(id uint64) *Stream { return c.streams[id] }

// Close terminates the connection, emitting CONNECTION_CLOSE.
func (c *Connection) Close(code uint64, reason string) {
	if c.state == stateClosed {
		return
	}
	frames := []Frame{&ConnectionCloseFrame{ErrorCode: code, Reason: reason}}
	if ack := c.buildAck(); ack != nil {
		frames = append([]Frame{ack}, frames...)
	}
	c.sendPacket(frames)
	c.teardown()
}

func (c *Connection) teardown() {
	c.state = stateClosed
	c.timer.Stop()
	c.ackTimer.Stop()
	c.pacingTimer.Stop()
	c.ep.removeConn(c.connID)
	if c.OnClosed != nil {
		c.OnClosed()
	}
}

// markActive queues a stream for round-robin sending.
func (c *Connection) markActive(s *Stream) {
	if !c.activeSet[s.id] {
		c.activeSet[s.id] = true
		c.active = append(c.active, s.id)
	}
}

// onStreamConsumed returns flow-control credit after the application
// consumed data, growing windows by autotuning when permitted.
func (c *Connection) onStreamConsumed(s *Stream, n uint64) {
	c.dataConsumed += n

	// Stream window.
	if s.maxRecvData-s.recvOffset < s.recvWindow/2 {
		if c.cfg.MaxReceiveWindow > 0 && s.recvWindow*2 <= c.cfg.MaxReceiveWindow {
			s.recvWindow *= 2
		}
		s.maxRecvData = s.recvOffset + s.recvWindow
		c.queueFrame(&MaxStreamDataFrame{StreamID: s.id, Max: s.maxRecvData})
	}
	// Connection window.
	if c.maxDataLocal-c.dataConsumed < c.connWindow/2 {
		if c.cfg.MaxReceiveWindow > 0 && c.connWindow*2 <= c.cfg.MaxReceiveWindow {
			c.connWindow *= 2
		}
		c.maxDataLocal = c.dataConsumed + c.connWindow
		c.needMaxData = true
	}
	c.maybeSend()
}

func (c *Connection) queueFrame(f Frame) {
	c.retxQueue = append(c.retxQueue, f)
}

// ---------------------------------------------------------------------
// Receive path.

func (c *Connection) handlePacket(p *Packet, from netem.Addr, fromPort uint16) {
	if c.state == stateClosed {
		return
	}
	now := c.sched.Now()
	c.Stats.PacketsReceived++
	if c.TraceReceived != nil {
		c.TraceReceived(now, p.Header.Number, p.Size)
	}
	if c.cfg.AllowMigration && c.state == stateEstablished &&
		(from != c.remote || fromPort != c.remotePort) {
		// Connection migration (RFC 9000 §9): the peer's packets arrive
		// from a new address/port — a handover/outage expired its NAT
		// mapping and the rebinding allocated a fresh one. Follow the
		// new path so replies stop dying at the stale mapping.
		c.remote, c.remotePort = from, fromPort
		c.Stats.PathMigrations++
	}
	if c.recvSet.Contains(p.Header.Number) {
		c.Stats.DuplicatesRecv++
		return
	}
	c.recvSet.Insert(p.Header.Number)
	c.largestRecvAt = now
	c.Stats.BytesReceived += uint64(p.Size)

	for _, f := range p.Frames {
		switch f := f.(type) {
		case *AckFrame:
			c.onAckReceived(f, now)
		case *CryptoFrame:
			c.onCrypto(f)
		case *StreamFrame:
			c.onStreamFrame(f)
		case *MaxDataFrame:
			if f.Max > c.maxDataRemote {
				c.maxDataRemote = f.Max
			}
		case *MaxStreamDataFrame:
			// The update may precede the stream's first STREAM frame
			// (it rides earlier in the same packet): create the stream
			// so the new limit is not lost.
			s := c.getOrCreateRemoteStream(f.StreamID)
			if f.Max > s.maxSendData {
				s.maxSendData = f.Max
				if s.pendingSend() {
					c.markActive(s)
				}
			}
		case *ConnectionCloseFrame:
			c.teardown()
			return
		case *PingFrame, *PaddingFrame, *DataBlockedFrame:
			// PING only elicits an ACK; PADDING and DATA_BLOCKED are
			// informational.
		}
	}

	if p.AckEliciting() {
		c.elicitingSince++
		if c.elicitingSince >= c.cfg.AckElicitingThreshold {
			c.ackPending = true
		} else if !c.ackTimer.Pending() {
			c.ackTimer = c.sched.AfterFunc(c.cfg.MaxAckDelay, qcAckTimeout, c)
		}
	}
	c.maybeSend()
}

func (c *Connection) onCrypto(f *CryptoFrame) {
	end := f.Offset + uint64(len(f.Data))
	if end > c.cryptoRecvOff {
		data := f.Data
		off := f.Offset
		if off < c.cryptoRecvOff {
			data = data[c.cryptoRecvOff-off:]
			off = c.cryptoRecvOff
		}
		// Insert sorted and deliver contiguously.
		i := 0
		for i < len(c.cryptoRecv) && c.cryptoRecv[i].off < off {
			i++
		}
		c.cryptoRecv = append(c.cryptoRecv, segment{})
		copy(c.cryptoRecv[i+1:], c.cryptoRecv[i:])
		c.cryptoRecv[i] = segment{off: off, data: data}
		for len(c.cryptoRecv) > 0 && c.cryptoRecv[0].off <= c.cryptoRecvOff {
			seg := c.cryptoRecv[0]
			c.cryptoRecv = c.cryptoRecv[1:]
			if e := seg.off + uint64(len(seg.data)); e > c.cryptoRecvOff {
				c.cryptoRecvOff = e
			}
		}
	}
	c.handshakeProgress()
}

// handshakeProgress advances the emulated TLS state machine on crypto
// delivery.
func (c *Connection) handshakeProgress() {
	switch {
	case !c.isClient && c.state == stateHandshaking && c.cryptoRecvOff >= clientHelloSize && len(c.cryptoOut) == 0:
		// Server: ClientHello in, emit the server flight and (like TLS
		// 1.3 0.5-RTT) consider the connection usable.
		c.cryptoOut = make([]byte, serverFlightSize)
		c.establish()
	case c.isClient && c.state == stateHandshaking && c.cryptoRecvOff >= serverFlightSize:
		// Client: full server flight received; send Finished, done.
		c.cryptoOut = append(c.cryptoOut, make([]byte, clientFinishedSize)...)
		c.establish()
	case c.isClient && c.resumed && !c.hsConfirmed && c.cryptoRecvOff >= serverFlightSize:
		// Resumed client: the connection has been usable since the first
		// flight; the server flight merely confirms the ticket exchange.
		c.hsConfirmed = true
	}
}

func (c *Connection) establish() {
	c.state = stateEstablished
	c.hsConfirmed = true
	if c.isClient && c.cfg.Sessions != nil {
		// Record the session ticket so the next Dial to this server can
		// resume at 0-RTT.
		c.cfg.Sessions.put(c.remote, c.remotePort)
	}
	// Advertise our real connection flow-control limit: transport
	// parameters are not exchanged in the emulated handshake, so peers
	// start from conservative assumptions and this update corrects an
	// asymmetric configuration (e.g. the 150 MB receive-window
	// ablation).
	c.needMaxData = true
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

// getOrCreateRemoteStream returns the stream, creating it (and firing
// OnStream) when a peer-initiated frame references it first.
func (c *Connection) getOrCreateRemoteStream(id uint64) *Stream {
	s := c.streams[id]
	if s == nil {
		s = c.newStream(id)
		if c.OnStream != nil {
			c.OnStream(s)
		}
	}
	return s
}

func (c *Connection) onStreamFrame(f *StreamFrame) {
	s := c.getOrCreateRemoteStream(f.StreamID)
	newBytes := s.receive(f, c)
	c.dataRecv += newBytes
}

// ---------------------------------------------------------------------
// ACK processing and loss detection.

func (c *Connection) onAckReceived(ack *AckFrame, now sim.Time) {
	res := c.ld.onAck(ack, now, c.rtt.LossDelay())

	if res.LargestNew != nil && res.LargestNew.pn == ack.Largest() {
		sample := now.Sub(res.LargestNew.sentAt)
		delay := ack.AckDelay
		if delay > c.cfg.MaxAckDelay {
			delay = c.cfg.MaxAckDelay
		}
		c.rtt.UpdateAt(now, sample, delay)
		if c.OnRTTSample != nil {
			c.OnRTTSample(now, sample)
		}
	}

	for _, sp := range res.Newly {
		c.Stats.PacketsAcked++
		c.cc.OnPacketAcked(now, sp.size, &c.rtt)
		if c.obs != nil {
			c.obs.cwnd.Observe(int64(c.cc.Window()))
		}
		for _, f := range sp.frames {
			if sf, ok := f.(*StreamFrame); ok {
				if s := c.streams[sf.StreamID]; s != nil {
					s.onFrameAcked(sf)
				}
			}
		}
	}
	c.handleLost(res.Lost, now)
	if len(res.Newly) > 0 {
		c.ptoCount = 0
	}
	c.setTimer()
	c.maybeSend()
}

func (c *Connection) handleLost(lost []*sentPacket, now sim.Time) {
	for _, sp := range lost {
		c.Stats.PacketsLost++
		if c.obs != nil {
			c.obs.lost.Inc()
		}
		c.cc.OnCongestionEvent(now, sp.sentAt)
		for _, f := range sp.frames {
			switch f := f.(type) {
			case *MaxDataFrame:
				c.needMaxData = true
			case *MaxStreamDataFrame:
				if s := c.streams[f.StreamID]; s != nil {
					c.queueFrame(&MaxStreamDataFrame{StreamID: f.StreamID, Max: s.maxRecvData})
				}
			default:
				c.Stats.FramesRetransmitted++
				if c.obs != nil {
					c.obs.retxFrms.Inc()
				}
				c.retxQueue = append(c.retxQueue, f)
			}
		}
	}
}

// setTimer arms the single recovery timer: loss-time mode when candidates
// exist, PTO mode while ack-eliciting packets are in flight.
func (c *Connection) setTimer() {
	c.timer.Stop()
	c.timer = sim.TimerHandle{}
	if c.state == stateClosed {
		return
	}
	if at, ok := c.ld.earliestLossTime(c.rtt.LossDelay()); ok {
		if at < c.sched.Now() {
			at = c.sched.Now()
		}
		c.timer = c.sched.AtFunc(at, qcLossTimer, c)
		return
	}
	if c.ld.HasUnacked() {
		pto := c.rtt.PTO(c.cfg.MaxAckDelay) << uint(c.ptoCount)
		at := c.lastElicitingSent.Add(pto)
		if now := c.sched.Now(); at < now {
			at = now
		}
		c.timer = c.sched.AtFunc(at, qcPTO, c)
	}
}

func (c *Connection) onLossTimer() {
	now := c.sched.Now()
	lost := c.ld.detectTimeLosses(now, c.rtt.LossDelay())
	c.handleLost(lost, now)
	c.setTimer()
	c.maybeSend()
}

func (c *Connection) onPTO() {
	c.ptoCount++
	c.Stats.ProbesSent++
	if c.obs != nil {
		c.obs.ptos.Inc()
		c.obs.tr.Emit(c.sched.Now(), obs.KindPTO, c.obs.subj, int64(c.ptoCount), 0)
	}
	// Probe with the oldest unacked ack-eliciting data under a fresh
	// packet number; PING when nothing is outstanding.
	if sp := c.ld.oldestEliciting(); sp != nil {
		var frames []Frame
		for _, f := range sp.frames {
			if f.AckEliciting() {
				frames = append(frames, f)
			}
		}
		if len(frames) == 0 {
			frames = []Frame{&PingFrame{}}
		}
		c.sendPacket(frames)
	} else {
		c.sendPacket([]Frame{&PingFrame{}})
	}
	c.setTimer()
}

// ---------------------------------------------------------------------
// Send path.

// buildAck returns the pending ACK frame, or nil.
func (c *Connection) buildAck() *AckFrame {
	ranges := c.recvSet.AckRanges(32)
	if len(ranges) == 0 {
		return nil
	}
	delay := c.sched.Now().Sub(c.largestRecvAt)
	if delay < 0 {
		delay = 0
	}
	return &AckFrame{Ranges: ranges, AckDelay: delay}
}

func (c *Connection) ackSent() {
	c.ackPending = false
	c.elicitingSince = 0
	c.ackTimer.Stop()
	c.ackTimer = sim.TimerHandle{}
}

// hasCryptoToSend reports pending handshake bytes.
func (c *Connection) hasCryptoToSend() bool {
	return uint64(len(c.cryptoOut)) > 0
}

// maybeSend drives the packetizer: it emits packets while there is
// something to send and the congestion window (for ack-eliciting data)
// and pacer allow.
func (c *Connection) maybeSend() {
	if c.inSend || c.state == stateClosed {
		return
	}
	c.inSend = true
	defer func() { c.inSend = false }()

	for c.state != stateClosed {
		canSendData := c.ld.InFlight() < c.cc.Window()

		frames, eliciting := c.buildPacket(canSendData)
		if len(frames) == 0 {
			break
		}
		if eliciting && c.pacer.Enabled {
			size := headerOverhead
			for _, f := range frames {
				size += f.WireLen()
			}
			if d := c.pacer.DelayFor(c.sched.Now(), size, c.cc, &c.rtt); d > 0 {
				// Put the retransmittable frames back and retry after
				// the pacing gap; a withheld ACK stays pending.
				var keep []Frame
				for _, f := range frames {
					if _, isAck := f.(*AckFrame); !isAck {
						keep = append(keep, f)
					}
				}
				c.retxQueue = append(keep, c.retxQueue...)
				if !c.pacingTimer.Pending() {
					c.pacingTimer = c.sched.AfterFunc(d, qcMaybeSend, c)
				}
				break
			}
		}
		c.sendPacket(frames)
	}
	c.setTimer()
}

// buildPacket assembles up to one packet's worth of frames. canSendData
// gates ack-eliciting content (pure ACKs are never congestion blocked).
func (c *Connection) buildPacket(canSendData bool) (frames []Frame, eliciting bool) {
	remaining := MaxPayloadSize

	if c.ackPending {
		if ack := c.buildAck(); ack != nil && ack.WireLen() <= remaining {
			frames = append(frames, ack)
			remaining -= ack.WireLen()
		}
	}

	if canSendData {
		// Handshake bytes first.
		for c.hasCryptoToSend() && remaining > 8 {
			chunk := len(c.cryptoOut)
			maxData := remaining - 1 - VarintLen(c.cryptoBase) - 4
			if chunk > maxData {
				chunk = maxData
			}
			if chunk <= 0 {
				break
			}
			f := &CryptoFrame{Offset: c.cryptoBase, Data: c.cryptoOut[:chunk]}
			c.cryptoOut = c.cryptoOut[chunk:]
			c.cryptoBase += uint64(chunk)
			frames = append(frames, f)
			remaining -= f.WireLen()
		}

		// Flow-control updates.
		if c.needMaxData && remaining >= 9 {
			f := &MaxDataFrame{Max: c.maxDataLocal}
			frames = append(frames, f)
			remaining -= f.WireLen()
			c.needMaxData = false
		}

		// Retransmissions and queued control frames.
		for len(c.retxQueue) > 0 && remaining > 0 {
			f := c.retxQueue[0]
			if f.WireLen() > remaining {
				// Split oversized stream frames; other frames wait.
				if sf, ok := f.(*StreamFrame); ok && remaining > 16 {
					head := remaining - 1 - VarintLen(sf.StreamID) - VarintLen(sf.Offset) - 4
					if head > 0 && head < len(sf.Data) {
						part := &StreamFrame{StreamID: sf.StreamID, Offset: sf.Offset, Data: sf.Data[:head]}
						c.retxQueue[0] = &StreamFrame{
							StreamID: sf.StreamID,
							Offset:   sf.Offset + uint64(head),
							Data:     sf.Data[head:],
							Fin:      sf.Fin,
						}
						frames = append(frames, part)
						remaining -= part.WireLen()
					}
				}
				break
			}
			c.retxQueue = c.retxQueue[1:]
			frames = append(frames, f)
			remaining -= f.WireLen()
		}

		// Fresh stream data, round-robin, within connection flow control.
		if c.state == stateEstablished {
			for remaining > 16 && len(c.active) > 0 {
				id := c.active[0]
				s := c.streams[id]
				if s == nil || !s.pendingSend() {
					c.active = c.active[1:]
					delete(c.activeSet, id)
					continue
				}
				connBudget := int(c.maxDataRemote - c.dataSent)
				if connBudget <= 0 {
					if c.blockedAtLimit != c.maxDataRemote && remaining >= 9 {
						f := &DataBlockedFrame{Limit: c.maxDataRemote}
						frames = append(frames, f)
						remaining -= f.WireLen()
						c.blockedAtLimit = c.maxDataRemote
					}
					break
				}
				budget := remaining - 1 - VarintLen(id) - VarintLen(s.sendBase) - 4
				if budget > connBudget {
					budget = connBudget
				}
				f := s.nextFrame(budget)
				if f == nil {
					// Blocked by stream flow control or empty.
					c.active = c.active[1:]
					delete(c.activeSet, id)
					continue
				}
				c.dataSent += uint64(len(f.Data))
				frames = append(frames, f)
				remaining -= f.WireLen()
				// Rotate for fairness.
				c.active = append(c.active[1:], id)
			}
		}
	}

	if len(frames) == 0 {
		return nil, false
	}
	for _, f := range frames {
		if f.AckEliciting() {
			eliciting = true
			break
		}
	}
	return frames, eliciting
}

// sendPacket serializes and transmits one packet built from frames.
func (c *Connection) sendPacket(frames []Frame) {
	if len(frames) == 0 {
		return
	}
	now := c.sched.Now()
	// The Handshake bit tracks stateHandshaking exactly except for 0-RTT
	// resumption, where the connection is usable while the ticket
	// exchange is still in flight — those packets keep the bit so the
	// server endpoint accepts them as connection-opening.
	hdr := PacketHeader{
		Handshake: !c.hsConfirmed,
		ConnID:    c.connID,
		Number:    c.nextPN,
	}
	eliciting := false
	for _, f := range frames {
		if f.AckEliciting() {
			eliciting = true
			break
		}
	}
	// Pad the client's first flight like Initial packets must be.
	if hdr.Handshake && c.isClient && hdr.Number == 0 {
		size := headerOverhead
		for _, f := range frames {
			size += f.WireLen()
		}
		if size < initialPadTarget {
			frames = append(frames, &PaddingFrame{Length: initialPadTarget - size})
		}
	}
	c.nextPN++
	buf := Serialize(hdr, frames)

	hasAck := false
	for _, f := range frames {
		if _, ok := f.(*AckFrame); ok {
			hasAck = true
			break
		}
	}
	if hasAck {
		c.ackSent()
		c.Stats.AcksSent++
	}

	c.Stats.PacketsSent++
	c.Stats.BytesSent += uint64(len(buf))
	if eliciting {
		c.Stats.AckElicitingSent++
		c.lastElicitingSent = now
		var retx []Frame
		for _, f := range frames {
			if f.AckEliciting() {
				retx = append(retx, f)
			}
		}
		c.ld.onPacketSent(&sentPacket{
			pn:           hdr.Number,
			sentAt:       now,
			size:         len(buf),
			ackEliciting: true,
			frames:       retx,
		})
		c.cc.OnPacketSent(now, len(buf))
	}
	if c.TraceSent != nil {
		c.TraceSent(now, hdr.Number, len(buf), eliciting)
	}
	c.ep.sendDatagram(c.remote, c.remotePort, buf)
}

// Scheduler trampolines: package-level sim.EventFunc adapters so the
// recovery timer (re-armed after every send and every ACK), the pacing
// timer (re-armed per packet under pacing), and the max-ack-delay timer
// schedule without allocating a bound-method closure per arming.
func qcLossTimer(arg any) { arg.(*Connection).onLossTimer() }
func qcZeroRTTEstablished(arg any) {
	c := arg.(*Connection)
	if c.state == stateEstablished && c.OnEstablished != nil {
		c.OnEstablished()
	}
}
func qcPTO(arg any)       { arg.(*Connection).onPTO() }
func qcMaybeSend(arg any) { arg.(*Connection).maybeSend() }
func qcAckTimeout(arg any) {
	c := arg.(*Connection)
	c.ackPending = true
	c.maybeSend()
}
