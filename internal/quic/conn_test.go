package quic

import (
	"testing"
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// pair builds a two-node network with the given symmetric link config and
// returns (scheduler, client endpoint, server endpoint, server node addr).
func pair(t *testing.T, cfg netem.LinkConfig) (*sim.Scheduler, *Endpoint, *Endpoint, netem.Addr) {
	t.Helper()
	s := sim.NewScheduler(7)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	ab, ba := nw.Connect(a, b, cfg)
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)
	return s, NewEndpoint(a, 5000), NewEndpoint(b, 443), b.Addr()
}

func TestHandshakeCompletesInOneRTT(t *testing.T) {
	s, cep, sep, srv := pair(t, netem.LinkConfig{Delay: netem.ConstantDelay(25 * time.Millisecond)})
	sep.Listen(DefaultConfig(), func(c *Connection) {})

	var establishedAt sim.Time
	conn := cep.Dial(srv, 443, DefaultConfig())
	conn.OnEstablished = func() { establishedAt = s.Now() }
	s.RunFor(2 * time.Second)

	if !conn.Established() {
		t.Fatal("handshake did not complete")
	}
	// One RTT is 50ms; the server flight is 3 packets, all arriving
	// together over the infinite-rate link.
	if establishedAt < sim.Time(50*time.Millisecond) || establishedAt > sim.Time(80*time.Millisecond) {
		t.Errorf("established at %v, want ~1 RTT (50ms)", establishedAt)
	}
}

func TestBulkTransferDelivery(t *testing.T) {
	const total = 2 << 20 // 2 MB
	s, cep, sep, srv := pair(t, netem.LinkConfig{
		RateBps: 50e6,
		Delay:   netem.ConstantDelay(20 * time.Millisecond),
	})

	var received int
	done := false
	sep.Listen(DefaultConfig(), func(c *Connection) {
		c.OnStream = func(st *Stream) {
			st.OnData = func(data []byte, fin bool) {
				received += len(data)
				if fin {
					done = true
				}
			}
		}
	})

	conn := cep.Dial(srv, 443, DefaultConfig())
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(total)
		st.Close()
	}
	s.RunFor(30 * time.Second)

	if !done {
		t.Fatalf("transfer incomplete: %d/%d bytes", received, total)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	if conn.Stats.PacketsLost != 0 {
		t.Errorf("losses on a clean link: %d", conn.Stats.PacketsLost)
	}
}

func TestBulkTransferWithLossCompletesAndRetransmits(t *testing.T) {
	const total = 1 << 20
	s := sim.NewScheduler(11)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	lossy := netem.LinkConfig{
		RateBps: 50e6,
		Delay:   netem.ConstantDelay(20 * time.Millisecond),
		Loss:    &netem.BernoulliLoss{P: 0.02, Rng: s.RNG().Stream("loss")},
	}
	clean := netem.LinkConfig{RateBps: 50e6, Delay: netem.ConstantDelay(20 * time.Millisecond)}
	ab := nw.AddLink(a, b, lossy)
	ba := nw.AddLink(b, a, clean)
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)

	cep := NewEndpoint(a, 5000)
	sep := NewEndpoint(b, 443)

	var received int
	done := false
	sep.Listen(DefaultConfig(), func(c *Connection) {
		c.OnStream = func(st *Stream) {
			st.OnData = func(data []byte, fin bool) {
				received += len(data)
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(srvAddr(b), 443, DefaultConfig())
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(total)
		st.Close()
	}
	s.RunFor(60 * time.Second)

	if !done || received != total {
		t.Fatalf("transfer incomplete: %d/%d (done=%v)", received, total, done)
	}
	if conn.Stats.PacketsLost == 0 {
		t.Error("expected sender-detected losses on a 2% lossy link")
	}
	if conn.Stats.FramesRetransmitted == 0 {
		t.Error("expected retransmitted frames")
	}
}

func srvAddr(n *netem.Node) netem.Addr { return n.Addr() }

func TestReceiverSeesPacketNumberGapsOnLoss(t *testing.T) {
	const total = 1 << 20
	s := sim.NewScheduler(13)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	// Loss only client->server.
	ab := nw.AddLink(a, b, netem.LinkConfig{
		RateBps: 50e6, Delay: netem.ConstantDelay(10 * time.Millisecond),
		Loss: &netem.BernoulliLoss{P: 0.03, Rng: s.RNG().Stream("l")},
	})
	ba := nw.AddLink(b, a, netem.LinkConfig{RateBps: 50e6, Delay: netem.ConstantDelay(10 * time.Millisecond)})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)

	cep := NewEndpoint(a, 5000)
	sep := NewEndpoint(b, 443)
	var serverConn *Connection
	done := false
	sep.Listen(DefaultConfig(), func(c *Connection) {
		serverConn = c
		c.OnStream = func(st *Stream) {
			st.OnData = func(_ []byte, fin bool) {
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(b.Addr(), 443, DefaultConfig())
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(total)
		st.Close()
	}
	s.RunFor(60 * time.Second)
	if !done {
		t.Fatal("transfer incomplete")
	}

	// Conservation: every sent packet number was either received or is a
	// gap in the receiver's ranges.
	largest, ok := conn.LargestSentPN()
	if !ok {
		t.Fatal("nothing sent")
	}
	var receivedCount uint64
	for _, r := range serverConn.ReceivedPacketRanges() {
		receivedCount += r.Largest - r.Smallest + 1
	}
	lostOnWire := largest + 1 - receivedCount
	if lostOnWire == 0 {
		t.Error("expected receiver-visible packet number gaps")
	}
	// Sender sent exactly largest+1 packets.
	if conn.Stats.PacketsSent != largest+1 {
		t.Errorf("PacketsSent=%d largestPN=%d: packet numbers must be gapless", conn.Stats.PacketsSent, largest)
	}
}

func TestFlowControlLimitsInFlightData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialMaxData = 64 << 10
	cfg.InitialMaxStreamData = 64 << 10
	cfg.MaxReceiveWindow = 0 // no autotuning

	// Very slow "receiver" side: a thin link so data dribbles.
	s, cep, sep, srv := pair(t, netem.LinkConfig{
		RateBps: 10e6,
		Delay:   netem.ConstantDelay(30 * time.Millisecond),
	})
	received := 0
	done := false
	sep.Listen(cfg, func(c *Connection) {
		c.OnStream = func(st *Stream) {
			st.OnData = func(d []byte, fin bool) {
				received += len(d)
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(srv, 443, cfg)
	const total = 512 << 10
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(total)
		st.Close()
	}
	s.RunFor(60 * time.Second)
	if !done || received != total {
		t.Fatalf("flow-controlled transfer incomplete: %d/%d", received, total)
	}
}

func TestMessageStreamsArriveIntact(t *testing.T) {
	s, cep, sep, srv := pair(t, netem.LinkConfig{
		RateBps: 20e6,
		Delay:   netem.ConstantDelay(25 * time.Millisecond),
	})
	type msg struct {
		bytes int
		fin   bool
	}
	got := map[uint64]*msg{}
	sep.Listen(DefaultConfig(), func(c *Connection) {
		c.OnStream = func(st *Stream) {
			m := &msg{}
			got[st.ID()] = m
			st.OnData = func(d []byte, fin bool) {
				m.bytes += len(d)
				if fin {
					m.fin = true
				}
			}
		}
	})
	conn := cep.Dial(srv, 443, DefaultConfig())
	sizes := []int{5000, 12000, 25000, 8000, 17000}
	conn.OnEstablished = func() {
		for i, size := range sizes {
			size := size
			s.After(time.Duration(i)*40*time.Millisecond, func() {
				st := conn.OpenStream()
				st.WriteZeroes(size)
				st.Close()
			})
		}
	}
	s.RunFor(10 * time.Second)

	if len(got) != len(sizes) {
		t.Fatalf("received %d messages, want %d", len(got), len(sizes))
	}
	for id, m := range got {
		want := sizes[int(id/4)]
		if m.bytes != want || !m.fin {
			t.Errorf("stream %d: %d bytes fin=%v, want %d bytes fin", id, m.bytes, m.fin, want)
		}
	}
}

func TestRTTSamplesReflectPathDelay(t *testing.T) {
	s, cep, sep, srv := pair(t, netem.LinkConfig{Delay: netem.ConstantDelay(40 * time.Millisecond)})
	sep.Listen(DefaultConfig(), func(c *Connection) {})
	conn := cep.Dial(srv, 443, DefaultConfig())
	var samples []time.Duration
	conn.OnRTTSample = func(_ sim.Time, rtt time.Duration) { samples = append(samples, rtt) }
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(100 << 10)
		st.Close()
	}
	s.RunFor(10 * time.Second)
	if len(samples) == 0 {
		t.Fatal("no RTT samples")
	}
	for _, rtt := range samples {
		if rtt < 80*time.Millisecond || rtt > 130*time.Millisecond {
			t.Errorf("RTT sample %v outside [80ms, 130ms] on an unloaded 80ms path", rtt)
		}
	}
	if got := conn.RTT().Min(); got < 80*time.Millisecond || got > 85*time.Millisecond {
		t.Errorf("min RTT %v, want ~80ms", got)
	}
}

func TestNoPacingSendsBackToBackBursts(t *testing.T) {
	// With pacing off (quiche behaviour), a 25 kB message leaves as a
	// burst of back-to-back packets: the bottleneck queue fills.
	run := func(pacing bool) time.Duration {
		s := sim.NewScheduler(17)
		nw := netem.New(s)
		a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
		b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
		cfglink := netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(25 * time.Millisecond)}
		ab, ba := nw.Connect(a, b, cfglink)
		a.AddRoute(b.Addr(), ab)
		b.AddRoute(a.Addr(), ba)
		cep := NewEndpoint(a, 5000)
		sep := NewEndpoint(b, 443)
		// Near-immediate ACKs: with the default 25 ms MaxAckDelay, a
		// delayed ACK on an odd tail packet inflates the max sample by
		// more than the queueing under test in both runs.
		scfg := DefaultConfig()
		scfg.MaxAckDelay = time.Millisecond
		sep.Listen(scfg, func(c *Connection) {})
		ccfg := DefaultConfig()
		ccfg.EnablePacing = pacing
		// Strictest spacing: every packet paced, no burst allowance, so
		// the queue-buildup contrast against the unpaced run is sharp.
		ccfg.PacingBurst = 1
		// Pin the window so the two runs differ only in packet spacing:
		// slow-start overshoot would otherwise dominate the max-RTT sample
		// in both runs and drown the burst-queueing signal under test.
		ccfg.NewCC = func() CongestionController { return cc.NewFixed(50000) }
		conn := cep.Dial(b.Addr(), 443, ccfg)
		var maxRTT time.Duration
		conn.OnRTTSample = func(_ sim.Time, rtt time.Duration) {
			if rtt > maxRTT {
				maxRTT = rtt
			}
		}
		conn.OnEstablished = func() {
			// Several 25 kB messages after the window has grown.
			for i := 0; i < 20; i++ {
				s.After(time.Duration(i)*40*time.Millisecond, func() {
					st := conn.OpenStream()
					st.WriteZeroes(25000)
					st.Close()
				})
			}
		}
		s.RunFor(10 * time.Second)
		return maxRTT
	}
	unpaced := run(false)
	paced := run(true)
	if unpaced <= paced {
		t.Errorf("unpaced max RTT %v should exceed paced %v (queue buildup)", unpaced, paced)
	}
}

func TestConnectionClose(t *testing.T) {
	s, cep, sep, srv := pair(t, netem.LinkConfig{Delay: netem.ConstantDelay(10 * time.Millisecond)})
	var serverConn *Connection
	sep.Listen(DefaultConfig(), func(c *Connection) { serverConn = c })
	conn := cep.Dial(srv, 443, DefaultConfig())
	closed := false
	conn.OnEstablished = func() {
		conn.Close(0, "bye")
		closed = true
	}
	s.RunFor(5 * time.Second)
	if !closed || !conn.Closed() {
		t.Fatal("client close failed")
	}
	if serverConn == nil || !serverConn.Closed() {
		t.Fatal("server did not observe CONNECTION_CLOSE")
	}
}

func TestHandshakeRetransmitsAfterTotalLossWindow(t *testing.T) {
	s := sim.NewScheduler(19)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	// Link down for the first 500ms: the ClientHello is lost; PTO must
	// recover the handshake.
	down := func(at sim.Time) bool { return at < sim.Time(500*time.Millisecond) }
	ab, ba := nw.Connect(a, b, netem.LinkConfig{Delay: netem.ConstantDelay(10 * time.Millisecond), Down: down})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)
	cep := NewEndpoint(a, 5000)
	sep := NewEndpoint(b, 443)
	sep.Listen(DefaultConfig(), func(c *Connection) {})
	conn := cep.Dial(b.Addr(), 443, DefaultConfig())
	s.RunFor(10 * time.Second)
	if !conn.Established() {
		t.Fatal("handshake never recovered from initial outage")
	}
	if conn.Stats.ProbesSent == 0 {
		t.Error("expected PTO probes during the outage")
	}
}

func TestDuplicateDeliveryIgnored(t *testing.T) {
	// Deliver every client datagram twice; the server must count
	// duplicates and the stream must deliver exactly once.
	s := sim.NewScheduler(23)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	m := nw.NewNode("dup", netem.MustParseAddr("10.0.0.9"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	am, ma := nw.Connect(a, m, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
	mb, bm := nw.Connect(m, b, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
	a.AddRoute(b.Addr(), am)
	m.AddRoute(b.Addr(), mb)
	m.AddRoute(a.Addr(), ma)
	b.AddRoute(a.Addr(), bm)
	// Duplicator device on m: forward + send a copy (client->server only).
	m.AttachDevice(netem.DeviceFunc(func(n *netem.Node, pkt *netem.Packet) bool {
		if pkt.Dst == b.Addr() && pkt.Proto == netem.ProtoUDP {
			cp := pkt.Clone()
			n.Scheduler().After(time.Millisecond, func() { n.Send(cp) })
		}
		return true
	}))

	cep := NewEndpoint(a, 5000)
	sep := NewEndpoint(b, 443)
	received := 0
	done := false
	var sconn *Connection
	sep.Listen(DefaultConfig(), func(c *Connection) {
		sconn = c
		c.OnStream = func(st *Stream) {
			st.OnData = func(d []byte, fin bool) {
				received += len(d)
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(b.Addr(), 443, DefaultConfig())
	const total = 64 << 10
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(total)
		st.Close()
	}
	s.RunFor(20 * time.Second)
	if !done || received != total {
		t.Fatalf("duplicated-path transfer: %d/%d done=%v", received, total, done)
	}
	if sconn.Stats.DuplicatesRecv == 0 {
		t.Error("server should have counted duplicate packets")
	}
}
