package quic

import (
	"fmt"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// udpOverhead is the IPv4 + UDP header cost added to every datagram on
// the wire.
const udpOverhead = 28

// Endpoint owns a UDP port on an emulated node and multiplexes QUIC
// connections over it by connection ID.
type Endpoint struct {
	node *netem.Node
	port uint16
	rng  *sim.RNG

	conns     map[uint64]*Connection
	listening bool
	serverCfg Config
	onConn    func(*Connection)
}

// NewEndpoint binds a QUIC endpoint to a UDP port of node.
func NewEndpoint(node *netem.Node, port uint16) *Endpoint {
	e := &Endpoint{
		node: node,
		port: port,
		// The stream name must include the port: two endpoints on one
		// node (campaigns build a fresh endpoint per transfer) would
		// otherwise draw identical connection-ID sequences and collide
		// at a server whose previous connection is still live.
		rng:   node.Scheduler().RNG().Stream(fmt.Sprintf("%s/quic/%d", node.Name(), port)),
		conns: make(map[uint64]*Connection),
	}
	node.Bind(netem.ProtoUDP, port, e.receive)
	return e
}

// Node returns the underlying emulated node.
func (e *Endpoint) Node() *netem.Node { return e.node }

// Port returns the bound UDP port.
func (e *Endpoint) Port() uint16 { return e.port }

// Close unbinds the endpoint.
func (e *Endpoint) Close() {
	e.node.Unbind(netem.ProtoUDP, e.port)
}

// Listen accepts incoming connections, invoking onConn for each new one
// (before any of its streams deliver data).
func (e *Endpoint) Listen(cfg Config, onConn func(*Connection)) {
	e.listening = true
	e.serverCfg = cfg
	e.onConn = onConn
}

// Dial opens a client connection to the remote address and starts the
// handshake. Use the connection's OnEstablished callback to begin work.
func (e *Endpoint) Dial(remote netem.Addr, remotePort uint16, cfg Config) *Connection {
	var id uint64
	for {
		id = e.rng.Uint64()
		if _, taken := e.conns[id]; !taken && id != 0 {
			break
		}
	}
	c := newConnection(e, cfg, true, id, remote, remotePort)
	e.conns[id] = c
	c.startHandshake()
	return c
}

func (e *Endpoint) removeConn(id uint64) { delete(e.conns, id) }

func (e *Endpoint) receive(pkt *netem.Packet) {
	data, ok := pkt.Payload.([]byte)
	if !ok {
		return
	}
	p, err := Parse(data)
	if err != nil {
		return // corrupted or foreign datagram
	}
	c := e.conns[p.Header.ConnID]
	if c == nil {
		if !e.listening || !p.Header.Handshake {
			return
		}
		c = newConnection(e, e.serverCfg, false, p.Header.ConnID, pkt.Src, pkt.SrcPort)
		e.conns[p.Header.ConnID] = c
		if e.onConn != nil {
			e.onConn(c)
		}
	}
	c.handlePacket(p, pkt.Src, pkt.SrcPort)
}

// sendDatagram wraps a serialized QUIC packet in a UDP packet and sends
// it from the endpoint's node.
func (e *Endpoint) sendDatagram(remote netem.Addr, remotePort uint16, payload []byte) {
	pkt := e.node.NewPacket()
	pkt.Dst = remote
	pkt.DstPort = remotePort
	pkt.SrcPort = e.port
	pkt.Proto = netem.ProtoUDP
	pkt.Size = len(payload) + udpOverhead
	pkt.Payload = payload
	e.node.Send(pkt)
}
