package quic

import (
	"fmt"
	"time"
)

// Frame type identifiers (values follow RFC 9000 §19 where they exist).
const (
	frameTypePadding       = 0x00
	frameTypePing          = 0x01
	frameTypeAck           = 0x02
	frameTypeCrypto        = 0x06
	frameTypeMaxData       = 0x10
	frameTypeMaxStreamData = 0x11
	frameTypeDataBlocked   = 0x14
	frameTypeStreamBlocked = 0x15
	frameTypeConnClose     = 0x1c
	// STREAM frames use 0x08..0x0f; the three low bits signal the
	// presence of OFF/LEN fields and FIN. The encoder always includes
	// offset and length, so only FIN varies.
	frameTypeStreamBase = 0x08
	streamFlagFin       = 0x01
	streamFlagLen       = 0x02
	streamFlagOff       = 0x04
)

// Frame is a QUIC frame that can serialize itself.
type Frame interface {
	// Append serializes the frame to b.
	Append(b []byte) []byte
	// WireLen returns the exact encoded size in bytes.
	WireLen() int
	// AckEliciting reports whether the frame requires acknowledgement.
	AckEliciting() bool
	fmt.Stringer
}

// PaddingFrame is a run of zero bytes.
type PaddingFrame struct{ Length int }

// Append implements Frame.
func (f *PaddingFrame) Append(b []byte) []byte {
	for i := 0; i < f.Length; i++ {
		b = append(b, frameTypePadding)
	}
	return b
}

// WireLen implements Frame.
func (f *PaddingFrame) WireLen() int { return f.Length }

// AckEliciting implements Frame.
func (f *PaddingFrame) AckEliciting() bool { return false }

// String implements fmt.Stringer.
func (f *PaddingFrame) String() string { return fmt.Sprintf("PADDING(%d)", f.Length) }

// PingFrame elicits an acknowledgement.
type PingFrame struct{}

// Append implements Frame.
func (f *PingFrame) Append(b []byte) []byte { return append(b, frameTypePing) }

// WireLen implements Frame.
func (f *PingFrame) WireLen() int { return 1 }

// AckEliciting implements Frame.
func (f *PingFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *PingFrame) String() string { return "PING" }

// AckRange is a closed range of acknowledged packet numbers.
type AckRange struct {
	Smallest uint64
	Largest  uint64
}

// AckFrame acknowledges ranges of packet numbers. Ranges are ordered
// descending by packet number, Ranges[0] containing the largest.
type AckFrame struct {
	Ranges   []AckRange
	AckDelay time.Duration
}

// Largest returns the largest acknowledged packet number.
func (f *AckFrame) Largest() uint64 { return f.Ranges[0].Largest }

// Contains reports whether pn is acknowledged by the frame.
func (f *AckFrame) Contains(pn uint64) bool {
	for _, r := range f.Ranges {
		if pn >= r.Smallest && pn <= r.Largest {
			return true
		}
	}
	return false
}

// Append implements Frame.
func (f *AckFrame) Append(b []byte) []byte {
	b = append(b, frameTypeAck)
	b = AppendVarint(b, f.Ranges[0].Largest)
	b = AppendVarint(b, uint64(f.AckDelay/time.Microsecond))
	b = AppendVarint(b, uint64(len(f.Ranges)-1))
	b = AppendVarint(b, f.Ranges[0].Largest-f.Ranges[0].Smallest)
	prev := f.Ranges[0].Smallest
	for _, r := range f.Ranges[1:] {
		// Gap: numbers skipped between ranges, minus the -2 bias of
		// RFC 9000 §19.3.1.
		b = AppendVarint(b, prev-r.Largest-2)
		b = AppendVarint(b, r.Largest-r.Smallest)
		prev = r.Smallest
	}
	return b
}

// WireLen implements Frame.
func (f *AckFrame) WireLen() int {
	n := 1 + VarintLen(f.Ranges[0].Largest) +
		VarintLen(uint64(f.AckDelay/time.Microsecond)) +
		VarintLen(uint64(len(f.Ranges)-1)) +
		VarintLen(f.Ranges[0].Largest-f.Ranges[0].Smallest)
	prev := f.Ranges[0].Smallest
	for _, r := range f.Ranges[1:] {
		n += VarintLen(prev-r.Largest-2) + VarintLen(r.Largest-r.Smallest)
		prev = r.Smallest
	}
	return n
}

// AckEliciting implements Frame.
func (f *AckFrame) AckEliciting() bool { return false }

// String implements fmt.Stringer.
func (f *AckFrame) String() string {
	return fmt.Sprintf("ACK(largest=%d ranges=%d delay=%v)", f.Ranges[0].Largest, len(f.Ranges), f.AckDelay)
}

// CryptoFrame carries handshake bytes. The payload is opaque: the
// emulated handshake costs real round trips and real bytes but performs
// no key exchange.
type CryptoFrame struct {
	Offset uint64
	Data   []byte
}

// Append implements Frame.
func (f *CryptoFrame) Append(b []byte) []byte {
	b = append(b, frameTypeCrypto)
	b = AppendVarint(b, f.Offset)
	b = AppendVarint(b, uint64(len(f.Data)))
	return append(b, f.Data...)
}

// WireLen implements Frame.
func (f *CryptoFrame) WireLen() int {
	return 1 + VarintLen(f.Offset) + VarintLen(uint64(len(f.Data))) + len(f.Data)
}

// AckEliciting implements Frame.
func (f *CryptoFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *CryptoFrame) String() string {
	return fmt.Sprintf("CRYPTO(off=%d len=%d)", f.Offset, len(f.Data))
}

// StreamFrame carries application data for a stream.
type StreamFrame struct {
	StreamID uint64
	Offset   uint64
	Data     []byte
	Fin      bool
}

// Append implements Frame.
func (f *StreamFrame) Append(b []byte) []byte {
	t := byte(frameTypeStreamBase | streamFlagOff | streamFlagLen)
	if f.Fin {
		t |= streamFlagFin
	}
	b = append(b, t)
	b = AppendVarint(b, f.StreamID)
	b = AppendVarint(b, f.Offset)
	b = AppendVarint(b, uint64(len(f.Data)))
	return append(b, f.Data...)
}

// WireLen implements Frame.
func (f *StreamFrame) WireLen() int {
	return 1 + VarintLen(f.StreamID) + VarintLen(f.Offset) +
		VarintLen(uint64(len(f.Data))) + len(f.Data)
}

// AckEliciting implements Frame.
func (f *StreamFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *StreamFrame) String() string {
	return fmt.Sprintf("STREAM(id=%d off=%d len=%d fin=%v)", f.StreamID, f.Offset, len(f.Data), f.Fin)
}

// MaxDataFrame raises the connection flow-control limit.
type MaxDataFrame struct{ Max uint64 }

// Append implements Frame.
func (f *MaxDataFrame) Append(b []byte) []byte {
	return AppendVarint(append(b, frameTypeMaxData), f.Max)
}

// WireLen implements Frame.
func (f *MaxDataFrame) WireLen() int { return 1 + VarintLen(f.Max) }

// AckEliciting implements Frame.
func (f *MaxDataFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *MaxDataFrame) String() string { return fmt.Sprintf("MAX_DATA(%d)", f.Max) }

// MaxStreamDataFrame raises a stream flow-control limit.
type MaxStreamDataFrame struct {
	StreamID uint64
	Max      uint64
}

// Append implements Frame.
func (f *MaxStreamDataFrame) Append(b []byte) []byte {
	b = append(b, frameTypeMaxStreamData)
	b = AppendVarint(b, f.StreamID)
	return AppendVarint(b, f.Max)
}

// WireLen implements Frame.
func (f *MaxStreamDataFrame) WireLen() int {
	return 1 + VarintLen(f.StreamID) + VarintLen(f.Max)
}

// AckEliciting implements Frame.
func (f *MaxStreamDataFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *MaxStreamDataFrame) String() string {
	return fmt.Sprintf("MAX_STREAM_DATA(id=%d max=%d)", f.StreamID, f.Max)
}

// DataBlockedFrame signals the sender is blocked on connection flow
// control.
type DataBlockedFrame struct{ Limit uint64 }

// Append implements Frame.
func (f *DataBlockedFrame) Append(b []byte) []byte {
	return AppendVarint(append(b, frameTypeDataBlocked), f.Limit)
}

// WireLen implements Frame.
func (f *DataBlockedFrame) WireLen() int { return 1 + VarintLen(f.Limit) }

// AckEliciting implements Frame.
func (f *DataBlockedFrame) AckEliciting() bool { return true }

// String implements fmt.Stringer.
func (f *DataBlockedFrame) String() string { return fmt.Sprintf("DATA_BLOCKED(%d)", f.Limit) }

// ConnectionCloseFrame terminates the connection.
type ConnectionCloseFrame struct {
	ErrorCode uint64
	Reason    string
}

// Append implements Frame.
func (f *ConnectionCloseFrame) Append(b []byte) []byte {
	b = append(b, frameTypeConnClose)
	b = AppendVarint(b, f.ErrorCode)
	b = AppendVarint(b, uint64(len(f.Reason)))
	return append(b, f.Reason...)
}

// WireLen implements Frame.
func (f *ConnectionCloseFrame) WireLen() int {
	return 1 + VarintLen(f.ErrorCode) + VarintLen(uint64(len(f.Reason))) + len(f.Reason)
}

// AckEliciting implements Frame.
func (f *ConnectionCloseFrame) AckEliciting() bool { return false }

// String implements fmt.Stringer.
func (f *ConnectionCloseFrame) String() string {
	return fmt.Sprintf("CONNECTION_CLOSE(%d %q)", f.ErrorCode, f.Reason)
}

// ParseFrames decodes the frames in a packet payload.
func ParseFrames(b []byte) ([]Frame, error) {
	var frames []Frame
	for len(b) > 0 {
		t := b[0]
		switch {
		case t == frameTypePadding:
			n := 0
			for n < len(b) && b[n] == frameTypePadding {
				n++
			}
			frames = append(frames, &PaddingFrame{Length: n})
			b = b[n:]

		case t == frameTypePing:
			frames = append(frames, &PingFrame{})
			b = b[1:]

		case t == frameTypeAck:
			f, rest, err := parseAck(b[1:])
			if err != nil {
				return nil, err
			}
			frames = append(frames, f)
			b = rest

		case t == frameTypeCrypto:
			b = b[1:]
			off, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			length, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < length {
				return nil, ErrTruncated
			}
			frames = append(frames, &CryptoFrame{Offset: off, Data: b[:length]})
			b = b[length:]

		case t >= frameTypeStreamBase && t <= frameTypeStreamBase|0x07:
			f, rest, err := parseStream(t, b[1:])
			if err != nil {
				return nil, err
			}
			frames = append(frames, f)
			b = rest

		case t == frameTypeMaxData:
			v, n, err := ReadVarint(b[1:])
			if err != nil {
				return nil, err
			}
			frames = append(frames, &MaxDataFrame{Max: v})
			b = b[1+n:]

		case t == frameTypeMaxStreamData:
			b = b[1:]
			id, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			v, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			frames = append(frames, &MaxStreamDataFrame{StreamID: id, Max: v})
			b = b[n:]

		case t == frameTypeDataBlocked:
			v, n, err := ReadVarint(b[1:])
			if err != nil {
				return nil, err
			}
			frames = append(frames, &DataBlockedFrame{Limit: v})
			b = b[1+n:]

		case t == frameTypeConnClose:
			b = b[1:]
			code, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			rl, n, err := ReadVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < rl {
				return nil, ErrTruncated
			}
			frames = append(frames, &ConnectionCloseFrame{ErrorCode: code, Reason: string(b[:rl])})
			b = b[rl:]

		default:
			return nil, fmt.Errorf("quic: unknown frame type %#x", t)
		}
	}
	return frames, nil
}

func parseAck(b []byte) (*AckFrame, []byte, error) {
	largest, n, err := ReadVarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	delayUS, n, err := ReadVarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	rangeCount, n, err := ReadVarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	firstLen, n, err := ReadVarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	if firstLen > largest {
		return nil, nil, fmt.Errorf("quic: malformed ACK (first range underflows)")
	}
	f := &AckFrame{
		AckDelay: time.Duration(delayUS) * time.Microsecond,
		Ranges:   []AckRange{{Smallest: largest - firstLen, Largest: largest}},
	}
	prev := f.Ranges[0].Smallest
	for i := uint64(0); i < rangeCount; i++ {
		gap, n, err := ReadVarint(b)
		if err != nil {
			return nil, nil, err
		}
		b = b[n:]
		length, n, err := ReadVarint(b)
		if err != nil {
			return nil, nil, err
		}
		b = b[n:]
		if gap+2 > prev {
			return nil, nil, fmt.Errorf("quic: malformed ACK (gap underflows)")
		}
		largest := prev - gap - 2
		if length > largest {
			return nil, nil, fmt.Errorf("quic: malformed ACK (range underflows)")
		}
		f.Ranges = append(f.Ranges, AckRange{Smallest: largest - length, Largest: largest})
		prev = largest - length
	}
	return f, b, nil
}

func parseStream(t byte, b []byte) (*StreamFrame, []byte, error) {
	id, n, err := ReadVarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	f := &StreamFrame{StreamID: id, Fin: t&streamFlagFin != 0}
	if t&streamFlagOff != 0 {
		off, n, err := ReadVarint(b)
		if err != nil {
			return nil, nil, err
		}
		f.Offset = off
		b = b[n:]
	}
	if t&streamFlagLen != 0 {
		length, n, err := ReadVarint(b)
		if err != nil {
			return nil, nil, err
		}
		b = b[n:]
		if uint64(len(b)) < length {
			return nil, nil, ErrTruncated
		}
		f.Data = b[:length]
		b = b[length:]
	} else {
		f.Data = b
		b = nil
	}
	return f, b, nil
}
