package quic

import "fmt"

// MaxDatagramSize is the UDP payload budget per packet, matching quiche's
// default max_send_udp_payload_size of 1350 bytes.
const MaxDatagramSize = 1350

// headerOverhead is the serialized header size: 1 type byte, 8-byte
// connection ID, 8-byte packet number. Real QUIC compresses packet
// numbers to 1-4 bytes; the fixed encoding costs a few header bytes per
// packet and removes the decoding ambiguity machinery, which none of the
// reproduced measurements observe.
const headerOverhead = 1 + 8 + 8

// MaxPayloadSize is the frame budget per packet.
const MaxPayloadSize = MaxDatagramSize - headerOverhead

// PacketHeader is the simplified wire header.
type PacketHeader struct {
	// Handshake marks pre-established packets (Initial/Handshake
	// collapsed into one flag; there is a single packet number space,
	// which is also what makes "missing packet number = loss" exact).
	Handshake bool
	ConnID    uint64
	Number    uint64
}

// Packet is a parsed QUIC packet.
type Packet struct {
	Header PacketHeader
	Frames []Frame
	// Size is the serialized size in bytes including header.
	Size int
}

// AckEliciting reports whether any frame in the packet elicits an ACK.
func (p *Packet) AckEliciting() bool {
	for _, f := range p.Frames {
		if f.AckEliciting() {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{pn=%d conn=%x frames=%d size=%d}", p.Header.Number, p.Header.ConnID, len(p.Frames), p.Size)
}

// Serialize encodes header and frames to wire bytes.
func Serialize(h PacketHeader, frames []Frame) []byte {
	size := headerOverhead
	for _, f := range frames {
		size += f.WireLen()
	}
	b := make([]byte, 0, size)
	var t byte = 0x40 // fixed bit
	if h.Handshake {
		t |= 0x80 // long-header flavour
	}
	b = append(b, t)
	b = appendUint64(b, h.ConnID)
	b = appendUint64(b, h.Number)
	for _, f := range frames {
		b = f.Append(b)
	}
	return b
}

// Parse decodes a wire packet.
func Parse(b []byte) (*Packet, error) {
	if len(b) < headerOverhead {
		return nil, ErrTruncated
	}
	if b[0]&0x40 == 0 {
		return nil, fmt.Errorf("quic: fixed bit not set")
	}
	p := &Packet{Size: len(b)}
	p.Header.Handshake = b[0]&0x80 != 0
	p.Header.ConnID = readUint64(b[1:9])
	p.Header.Number = readUint64(b[9:17])
	frames, err := ParseFrames(b[headerOverhead:])
	if err != nil {
		return nil, err
	}
	p.Frames = frames
	return p, nil
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
