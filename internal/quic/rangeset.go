package quic

// rangeSet tracks a set of packet numbers as sorted, disjoint, closed
// ranges (ascending order). Receivers use it both to generate ACK frames
// and — because this implementation, like quiche, never skips packet
// numbers — to infer losses from the gaps, exactly the paper's download
// loss methodology.
type rangeSet struct {
	ranges []AckRange
}

// Insert adds pn to the set, merging adjacent ranges.
func (s *rangeSet) Insert(pn uint64) {
	// Fast path: extend or append at the tail (in-order arrival).
	if n := len(s.ranges); n > 0 {
		last := &s.ranges[n-1]
		if pn == last.Largest+1 {
			last.Largest = pn
			return
		}
		if pn > last.Largest {
			s.ranges = append(s.ranges, AckRange{Smallest: pn, Largest: pn})
			return
		}
	} else {
		s.ranges = append(s.ranges, AckRange{Smallest: pn, Largest: pn})
		return
	}

	// General path: locate the first range with Largest >= pn-1.
	lo, hi := 0, len(s.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ranges[mid].Largest+1 < pn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	if i == len(s.ranges) {
		s.ranges = append(s.ranges, AckRange{Smallest: pn, Largest: pn})
		return
	}
	r := &s.ranges[i]
	if pn >= r.Smallest && pn <= r.Largest {
		return // already present
	}
	switch {
	case pn+1 == r.Smallest:
		r.Smallest = pn
		// May now touch the previous range.
		if i > 0 && s.ranges[i-1].Largest+1 == r.Smallest {
			s.ranges[i-1].Largest = r.Largest
			s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
		}
	case pn == r.Largest+1:
		r.Largest = pn
		if i+1 < len(s.ranges) && s.ranges[i+1].Smallest == pn+1 {
			r.Largest = s.ranges[i+1].Largest
			s.ranges = append(s.ranges[:i+1], s.ranges[i+2:]...)
		}
	default:
		// Strictly inside a gap: insert a fresh range at i.
		s.ranges = append(s.ranges, AckRange{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = AckRange{Smallest: pn, Largest: pn}
	}
}

// Contains reports whether pn is in the set.
func (s *rangeSet) Contains(pn uint64) bool {
	lo, hi := 0, len(s.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ranges[mid].Largest < pn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.ranges) && pn >= s.ranges[lo].Smallest
}

// Len returns the number of disjoint ranges.
func (s *rangeSet) Len() int { return len(s.ranges) }

// Count returns the number of packet numbers in the set.
func (s *rangeSet) Count() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += r.Largest - r.Smallest + 1
	}
	return n
}

// Largest returns the largest member; ok=false when empty.
func (s *rangeSet) Largest() (uint64, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[len(s.ranges)-1].Largest, true
}

// Ranges returns the ranges ascending (shared slice; do not mutate).
func (s *rangeSet) Ranges() []AckRange { return s.ranges }

// AckRanges returns up to maxRanges of the most recent ranges in the
// descending order ACK frames use.
func (s *rangeSet) AckRanges(maxRanges int) []AckRange {
	n := len(s.ranges)
	if n == 0 {
		return nil
	}
	if maxRanges > 0 && n > maxRanges {
		n = maxRanges
	}
	out := make([]AckRange, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.ranges[len(s.ranges)-1-i])
	}
	return out
}
