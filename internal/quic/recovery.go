package quic

import (
	"time"

	"starlinkperf/internal/sim"
)

// kPacketThreshold is the RFC 9002 §6.1.1 reordering threshold.
const kPacketThreshold = 3

// sentPacket records an in-flight packet for loss detection.
type sentPacket struct {
	pn           uint64
	sentAt       sim.Time
	size         int
	ackEliciting bool
	// frames holds the retransmittable frames for requeueing on loss.
	frames []Frame
	// ptoProbe marks probe retransmissions (their frames are clones of
	// data already owned by an earlier packet, so double-requeue on loss
	// is suppressed by the stream layer's offset tracking).
	ptoProbe bool
}

// ackResult is what processing one ACK frame yields.
type ackResult struct {
	Newly      []*sentPacket
	Lost       []*sentPacket
	LargestNew *sentPacket // largest newly acked, nil if none
}

// lossDetector implements sender-side RFC 9002 loss detection with the
// packet-number and time thresholds. Packets move from the in-order deque
// into a small candidate list once overtaken by an ACK, and from there to
// acked or lost.
type lossDetector struct {
	deque      []*sentPacket
	head       int
	candidates []*sentPacket

	largestAcked   uint64
	haveAcked      bool
	bytesInFlight  int
	elicitingCount int
}

func (ld *lossDetector) onPacketSent(sp *sentPacket) {
	ld.deque = append(ld.deque, sp)
	ld.bytesInFlight += sp.size
	if sp.ackEliciting {
		ld.elicitingCount++
	}
}

// InFlight returns the bytes currently counted against the congestion
// window.
func (ld *lossDetector) InFlight() int { return ld.bytesInFlight }

// HasUnacked reports whether any ack-eliciting packet awaits an ACK.
func (ld *lossDetector) HasUnacked() bool { return ld.elicitingCount > 0 }

func (ld *lossDetector) remove(sp *sentPacket) {
	ld.bytesInFlight -= sp.size
	if sp.ackEliciting {
		ld.elicitingCount--
	}
}

// onAck processes an ACK frame at now, classifying packets as newly
// acked or lost. lossDelay is the current time threshold.
func (ld *lossDetector) onAck(ack *AckFrame, now sim.Time, lossDelay time.Duration) ackResult {
	var res ackResult
	largest := ack.Largest()
	if !ld.haveAcked || largest > ld.largestAcked {
		ld.largestAcked = largest
		ld.haveAcked = true
	}

	// Drain the in-order deque up to the largest acked number.
	for ld.head < len(ld.deque) {
		sp := ld.deque[ld.head]
		if sp.pn > ld.largestAcked {
			break
		}
		ld.head++
		if ack.Contains(sp.pn) {
			ld.remove(sp)
			res.Newly = append(res.Newly, sp)
			if res.LargestNew == nil || sp.pn > res.LargestNew.pn {
				res.LargestNew = sp
			}
		} else {
			ld.candidates = append(ld.candidates, sp)
		}
	}
	if ld.head > 64 && ld.head*2 >= len(ld.deque) {
		n := copy(ld.deque, ld.deque[ld.head:])
		ld.deque = ld.deque[:n]
		ld.head = 0
	}

	// Re-examine candidates against this ACK and the loss thresholds.
	kept := ld.candidates[:0]
	for _, sp := range ld.candidates {
		switch {
		case ack.Contains(sp.pn):
			ld.remove(sp)
			res.Newly = append(res.Newly, sp)
			if res.LargestNew == nil || sp.pn > res.LargestNew.pn {
				res.LargestNew = sp
			}
		case ld.largestAcked >= sp.pn+kPacketThreshold,
			now.Sub(sp.sentAt) >= lossDelay:
			ld.remove(sp)
			res.Lost = append(res.Lost, sp)
		default:
			kept = append(kept, sp)
		}
	}
	ld.candidates = kept
	return res
}

// detectTimeLosses declares candidates lost by the time threshold alone
// (called when the loss timer fires).
func (ld *lossDetector) detectTimeLosses(now sim.Time, lossDelay time.Duration) []*sentPacket {
	var lost []*sentPacket
	kept := ld.candidates[:0]
	for _, sp := range ld.candidates {
		if now.Sub(sp.sentAt) >= lossDelay {
			ld.remove(sp)
			lost = append(lost, sp)
		} else {
			kept = append(kept, sp)
		}
	}
	ld.candidates = kept
	return lost
}

// earliestLossTime returns when the earliest remaining candidate crosses
// the time threshold, for arming the loss timer.
func (ld *lossDetector) earliestLossTime(lossDelay time.Duration) (sim.Time, bool) {
	if len(ld.candidates) == 0 {
		return 0, false
	}
	earliest := ld.candidates[0].sentAt
	for _, sp := range ld.candidates[1:] {
		if sp.sentAt < earliest {
			earliest = sp.sentAt
		}
	}
	return earliest.Add(lossDelay), true
}

// oldestEliciting returns the oldest unacked ack-eliciting packet, for
// PTO probes.
func (ld *lossDetector) oldestEliciting() *sentPacket {
	for _, sp := range ld.candidates {
		if sp.ackEliciting {
			return sp
		}
	}
	for i := ld.head; i < len(ld.deque); i++ {
		if ld.deque[i].ackEliciting {
			return ld.deque[i]
		}
	}
	return nil
}
