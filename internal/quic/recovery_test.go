package quic

import (
	"testing"
	"time"

	"starlinkperf/internal/sim"
)

func sp(pn uint64, at time.Duration) *sentPacket {
	return &sentPacket{pn: pn, sentAt: sim.Time(at), size: 1350, ackEliciting: true}
}

func ackOf(ranges ...AckRange) *AckFrame { return &AckFrame{Ranges: ranges} }

func TestLossDetectorCumulativeAck(t *testing.T) {
	var ld lossDetector
	for i := uint64(0); i < 10; i++ {
		ld.onPacketSent(sp(i, time.Duration(i)*time.Millisecond))
	}
	if ld.InFlight() != 10*1350 {
		t.Fatalf("inflight = %d", ld.InFlight())
	}
	res := ld.onAck(ackOf(AckRange{Smallest: 0, Largest: 9}), sim.Time(50*time.Millisecond), 100*time.Millisecond)
	if len(res.Newly) != 10 || len(res.Lost) != 0 {
		t.Fatalf("newly=%d lost=%d", len(res.Newly), len(res.Lost))
	}
	if res.LargestNew == nil || res.LargestNew.pn != 9 {
		t.Fatalf("largest new = %+v", res.LargestNew)
	}
	if ld.InFlight() != 0 || ld.HasUnacked() {
		t.Fatal("detector not drained")
	}
}

func TestLossDetectorPacketThreshold(t *testing.T) {
	var ld lossDetector
	for i := uint64(0); i < 10; i++ {
		ld.onPacketSent(sp(i, 0))
	}
	// Ack 4..9: packets 0..3 are overtaken; 0..2 are >= kPacketThreshold
	// below the largest and must be declared lost; 3 is a candidate...
	// actually largest=9: 9 >= pn+3 for pn <= 6, so 0..3 all lost.
	res := ld.onAck(ackOf(AckRange{Smallest: 4, Largest: 9}), sim.Time(time.Millisecond), time.Hour)
	if len(res.Newly) != 6 {
		t.Fatalf("newly = %d, want 6", len(res.Newly))
	}
	if len(res.Lost) != 4 {
		t.Fatalf("lost = %d, want 4 (packet threshold)", len(res.Lost))
	}
	if ld.InFlight() != 0 {
		t.Fatalf("inflight = %d after full classification", ld.InFlight())
	}
}

func TestLossDetectorTimeThreshold(t *testing.T) {
	var ld lossDetector
	ld.onPacketSent(sp(0, 0))
	ld.onPacketSent(sp(1, 0))
	ld.onPacketSent(sp(2, 0))
	// Ack only pn 2: pn 0,1 within the packet threshold -> candidates.
	res := ld.onAck(ackOf(AckRange{Smallest: 2, Largest: 2}), sim.Time(10*time.Millisecond), 100*time.Millisecond)
	if len(res.Lost) != 0 || len(res.Newly) != 1 {
		t.Fatalf("premature loss: newly=%d lost=%d", len(res.Newly), len(res.Lost))
	}
	if at, ok := ld.earliestLossTime(100 * time.Millisecond); !ok || at != sim.Time(100*time.Millisecond) {
		t.Fatalf("loss timer = %v %v", at, ok)
	}
	lost := ld.detectTimeLosses(sim.Time(101*time.Millisecond), 100*time.Millisecond)
	if len(lost) != 2 {
		t.Fatalf("time-threshold lost = %d, want 2", len(lost))
	}
	if ld.HasUnacked() {
		t.Fatal("unacked remain")
	}
}

func TestLossDetectorLateAckOfCandidate(t *testing.T) {
	var ld lossDetector
	ld.onPacketSent(sp(0, 0))
	ld.onPacketSent(sp(1, 0))
	ld.onAck(ackOf(AckRange{Smallest: 1, Largest: 1}), sim.Time(time.Millisecond), time.Hour)
	// pn 0 is a candidate; a late ACK must rescue it.
	res := ld.onAck(ackOf(AckRange{Smallest: 0, Largest: 1}), sim.Time(2*time.Millisecond), time.Hour)
	if len(res.Newly) != 1 || res.Newly[0].pn != 0 {
		t.Fatalf("late ack not honoured: %+v", res.Newly)
	}
	if len(res.Lost) != 0 {
		t.Fatal("rescued packet declared lost")
	}
}

func TestLossDetectorOldestEliciting(t *testing.T) {
	var ld lossDetector
	ld.onPacketSent(sp(0, 0))
	ld.onPacketSent(sp(1, 0))
	ld.onPacketSent(sp(2, 0))
	ld.onAck(ackOf(AckRange{Smallest: 2, Largest: 2}), sim.Time(time.Millisecond), time.Hour)
	probe := ld.oldestEliciting()
	if probe == nil || probe.pn != 0 {
		t.Fatalf("oldest eliciting = %+v, want pn 0", probe)
	}
}
