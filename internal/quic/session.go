package quic

import "starlinkperf/internal/netem"

type sessionKey struct {
	addr netem.Addr
	port uint16
}

// SessionCache holds session tickets for 0-RTT resumption, keyed by
// server (address, port). The measurement campaigns build a fresh
// Endpoint per transfer (like the paper's tools fork a fresh client per
// test), so the cache lives above the endpoints — the testbed owns one
// per transport profile and threads it through Config.Sessions. A cache
// is bound to one scheduler's connections; it is not safe for concurrent
// use across shards (each shard testbed owns its own).
type SessionCache struct {
	m map[sessionKey]struct{}
}

// NewSessionCache returns an empty session-ticket cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{m: make(map[sessionKey]struct{})}
}

// Has reports whether a ticket for the server is cached.
func (sc *SessionCache) Has(addr netem.Addr, port uint16) bool {
	if sc == nil {
		return false
	}
	_, ok := sc.m[sessionKey{addr: addr, port: port}]
	return ok
}

// Len returns the number of cached tickets.
func (sc *SessionCache) Len() int {
	if sc == nil {
		return 0
	}
	return len(sc.m)
}

// put records a ticket after a completed handshake.
func (sc *SessionCache) put(addr netem.Addr, port uint16) {
	sc.m[sessionKey{addr: addr, port: port}] = struct{}{}
}
