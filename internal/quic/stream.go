package quic

import (
	"fmt"
	"sort"
)

// Stream is a bidirectional QUIC stream. The API is event-driven to match
// the simulation: writers enqueue bytes, readers receive in-order data via
// the OnData callback, and received data is consumed eagerly (the
// measurement workloads read as fast as data arrives, like the paper's
// bulk-download clients).
type Stream struct {
	id   uint64
	conn *Connection

	// Send state.
	sendBuf     []byte // bytes not yet packetized, starting at sendBase
	sendBase    uint64 // offset of sendBuf[0]
	finQueued   bool
	finSent     bool
	finAcked    bool
	maxSendData uint64 // peer's stream flow-control limit
	blockedSent bool

	// Receive state.
	recvOffset   uint64 // everything below is delivered
	segments     []segment
	finalSize    uint64
	haveFinal    bool
	finDelivered bool
	maxRecvData  uint64 // limit we advertised
	recvWindow   uint64 // window size used when extending the limit

	// OnData is invoked with each in-order chunk; fin marks the last.
	OnData func(data []byte, fin bool)

	// BytesReceived counts delivered payload bytes.
	BytesReceived uint64
	// BytesSent counts payload bytes handed to packets (first
	// transmissions only, not retransmissions).
	BytesSent uint64
}

type segment struct {
	off  uint64
	data []byte
}

// ID returns the stream identifier.
func (s *Stream) ID() uint64 { return s.id }

// Conn returns the owning connection.
func (s *Stream) Conn() *Connection { return s.conn }

// Write queues application bytes for transmission and kicks the send
// path. It never blocks; the data is buffered until flow control and the
// congestion window let it out.
func (s *Stream) Write(data []byte) {
	if s.finQueued {
		panic(fmt.Sprintf("quic: write to stream %d after Close", s.id))
	}
	s.sendBuf = append(s.sendBuf, data...)
	s.conn.markActive(s)
	s.conn.maybeSend()
}

// WriteZeroes queues n filler bytes, the bulk-transfer workload's payload.
func (s *Stream) WriteZeroes(n int) {
	if s.finQueued {
		panic(fmt.Sprintf("quic: write to stream %d after Close", s.id))
	}
	s.sendBuf = append(s.sendBuf, make([]byte, n)...)
	s.conn.markActive(s)
	s.conn.maybeSend()
}

// Close queues the FIN after all buffered data.
func (s *Stream) Close() {
	if s.finQueued {
		return
	}
	s.finQueued = true
	s.conn.markActive(s)
	s.conn.maybeSend()
}

// Finished reports whether the peer acknowledged everything including the
// FIN.
func (s *Stream) Finished() bool { return s.finAcked }

// pendingSend reports whether the stream has bytes or a FIN to transmit,
// within its flow-control limit.
func (s *Stream) pendingSend() bool {
	if len(s.sendBuf) > 0 && s.sendBase < s.maxSendData {
		return true
	}
	return s.finQueued && !s.finSent && len(s.sendBuf) == 0
}

// nextFrame cuts a STREAM frame of at most maxBytes payload from the send
// buffer, honouring stream flow control (connection flow control is
// enforced by the caller, which passes a pre-clamped budget).
func (s *Stream) nextFrame(maxBytes int) *StreamFrame {
	if maxBytes <= 0 {
		return nil
	}
	n := len(s.sendBuf)
	if allowed := s.maxSendData - s.sendBase; uint64(n) > allowed {
		n = int(allowed)
	}
	if n > maxBytes {
		n = maxBytes
	}
	fin := s.finQueued && !s.finSent && n == len(s.sendBuf)
	if n == 0 && !fin {
		return nil
	}
	f := &StreamFrame{
		StreamID: s.id,
		Offset:   s.sendBase,
		Data:     append([]byte(nil), s.sendBuf[:n]...),
		Fin:      fin,
	}
	s.sendBuf = s.sendBuf[n:]
	s.sendBase += uint64(n)
	s.BytesSent += uint64(n)
	if fin {
		s.finSent = true
	}
	return f
}

// onFrameAcked records delivery of a stream frame.
func (s *Stream) onFrameAcked(f *StreamFrame) {
	if f.Fin && f.Offset+uint64(len(f.Data)) == s.sendBase && s.finSent {
		s.finAcked = true
	}
}

// receive ingests a STREAM frame, reassembles, and delivers in-order data.
// It returns the number of new bytes that count against flow control
// (i.e. bytes extending the highest received offset).
func (s *Stream) receive(f *StreamFrame, conn *Connection) uint64 {
	end := f.Offset + uint64(len(f.Data))
	var newHighest uint64
	if end > s.highestRecv() {
		newHighest = end - s.highestRecv()
	}
	if f.Fin {
		s.finalSize = end
		s.haveFinal = true
	}
	if len(f.Data) > 0 && end > s.recvOffset {
		data := f.Data
		off := f.Offset
		if off < s.recvOffset { // trim duplicate prefix
			data = data[s.recvOffset-off:]
			off = s.recvOffset
		}
		s.insertSegment(off, data)
	}
	s.deliver()
	return newHighest
}

func (s *Stream) highestRecv() uint64 {
	h := s.recvOffset
	for _, seg := range s.segments {
		if end := seg.off + uint64(len(seg.data)); end > h {
			h = end
		}
	}
	return h
}

func (s *Stream) insertSegment(off uint64, data []byte) {
	i := sort.Search(len(s.segments), func(i int) bool { return s.segments[i].off >= off })
	s.segments = append(s.segments, segment{})
	copy(s.segments[i+1:], s.segments[i:])
	s.segments[i] = segment{off: off, data: data}
}

// deliver pushes contiguous data to the application and advances flow
// control credit.
func (s *Stream) deliver() {
	for len(s.segments) > 0 {
		seg := s.segments[0]
		segEnd := seg.off + uint64(len(seg.data))
		if seg.off > s.recvOffset {
			break // gap
		}
		s.segments = append(s.segments[:0], s.segments[1:]...)
		if segEnd <= s.recvOffset {
			continue // fully duplicate
		}
		data := seg.data[s.recvOffset-seg.off:]
		s.recvOffset = segEnd
		s.BytesReceived += uint64(len(data))
		fin := s.haveFinal && s.recvOffset == s.finalSize && !s.finDelivered
		if fin {
			s.finDelivered = true
		}
		if s.OnData != nil {
			s.OnData(data, fin)
		}
		// Eager consumption: return the credit immediately.
		s.conn.onStreamConsumed(s, uint64(len(data)))
	}
	if s.haveFinal && s.recvOffset == s.finalSize && !s.finDelivered {
		s.finDelivered = true
		if s.OnData != nil {
			s.OnData(nil, true)
		}
	}
}

// Done reports whether all incoming data including FIN was delivered.
func (s *Stream) Done() bool { return s.finDelivered }
