package quic

import (
	"math/rand/v2"
	"testing"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// fakeStream builds a stream on a minimal one-node network, sufficient
// for receive-side logic.
func fakeStream() *Stream {
	sched := sim.NewScheduler(1)
	nw := netem.New(sched)
	node := nw.NewNode("x", netem.MustParseAddr("10.0.0.1"))
	ep := NewEndpoint(node, 1)
	c := newConnection(ep, DefaultConfig(), true, 1, netem.MustParseAddr("10.0.0.2"), 1)
	ep.conns[1] = c
	return &Stream{
		id:          0,
		conn:        c,
		maxSendData: 10 << 20,
		maxRecvData: 10 << 20,
		recvWindow:  10 << 20,
	}
}

func TestStreamReassemblyRandomOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		s := fakeStream()
		// Split [0, total) into random chunks, deliver shuffled with
		// duplicates; content must come out once and in order.
		total := 1000 + r.IntN(20000)
		type chunk struct{ off, end int }
		var chunks []chunk
		for off := 0; off < total; {
			n := 1 + r.IntN(1800)
			end := off + n
			if end > total {
				end = total
			}
			chunks = append(chunks, chunk{off, end})
			off = end
		}
		// Duplicate ~20% of chunks.
		for _, c := range chunks {
			if r.Float64() < 0.2 {
				chunks = append(chunks, c)
			}
		}
		r.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })

		got := 0
		finSeen := false
		s.OnData = func(data []byte, fin bool) {
			got += len(data)
			if fin {
				finSeen = true
			}
		}
		for _, c := range chunks {
			s.receive(&StreamFrame{
				StreamID: 0,
				Offset:   uint64(c.off),
				Data:     make([]byte, c.end-c.off),
				Fin:      c.end == total,
			}, s.conn)
		}
		if got != total {
			t.Fatalf("trial %d: delivered %d of %d", trial, got, total)
		}
		if !finSeen {
			t.Fatalf("trial %d: fin not delivered", trial)
		}
		if !s.Done() {
			t.Fatalf("trial %d: stream not done", trial)
		}
	}
}

func TestStreamOverlappingSegments(t *testing.T) {
	s := fakeStream()
	got := 0
	s.OnData = func(data []byte, fin bool) { got += len(data) }
	// Overlapping deliveries: [0,100), [50,150), [100,300).
	s.receive(&StreamFrame{Offset: 0, Data: make([]byte, 100)}, s.conn)
	s.receive(&StreamFrame{Offset: 50, Data: make([]byte, 100)}, s.conn)
	s.receive(&StreamFrame{Offset: 100, Data: make([]byte, 200)}, s.conn)
	if got != 300 {
		t.Fatalf("delivered %d, want exactly 300 (no double delivery)", got)
	}
}

func TestStreamFinOnEmptyFrame(t *testing.T) {
	s := fakeStream()
	finSeen := false
	s.OnData = func(data []byte, fin bool) {
		if fin {
			finSeen = true
		}
	}
	s.receive(&StreamFrame{Offset: 0, Data: make([]byte, 10)}, s.conn)
	s.receive(&StreamFrame{Offset: 10, Data: nil, Fin: true}, s.conn)
	if !finSeen || !s.Done() {
		t.Fatal("empty FIN frame not delivered")
	}
}

func TestStreamWriteAfterClosePanics(t *testing.T) {
	s := fakeStream()
	s.finQueued = true
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Close should panic")
		}
	}()
	s.Write([]byte("x"))
}

func TestStreamFlowControlBudget(t *testing.T) {
	s := fakeStream()
	s.maxSendData = 1000
	s.sendBuf = make([]byte, 5000)
	f := s.nextFrame(1 << 20)
	if f == nil || len(f.Data) != 1000 {
		t.Fatalf("frame should be clipped to the stream limit, got %v", f)
	}
	if s.pendingSend() {
		t.Fatal("stream at its flow-control limit must not report pending data")
	}
	s.maxSendData = 2500
	f2 := s.nextFrame(1000)
	if f2 == nil || len(f2.Data) != 1000 {
		t.Fatalf("frame should be clipped to the caller budget, got %v", f2)
	}
}
