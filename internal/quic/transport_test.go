package quic

import (
	"fmt"
	"testing"
	"time"

	"starlinkperf/internal/nat"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// TestZeroRTTResumptionSkipsHandshakeRTT: with a shared session cache, a
// second connection to the same server resumes at 0-RTT — it is usable
// immediately and the transfer completes one handshake RTT sooner than
// the first (full-handshake) connection over the identical path.
func TestZeroRTTResumptionSkipsHandshakeRTT(t *testing.T) {
	const rtt = 80 * time.Millisecond
	const size = 20000

	s := sim.NewScheduler(29)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	ab, ba := nw.Connect(a, b, netem.LinkConfig{
		RateBps: 20e6,
		Delay:   netem.ConstantDelay(rtt / 2),
	})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)

	sep := NewEndpoint(b, 443)
	finAt := make(map[uint64]sim.Time) // stream fin receipt per conn ID
	var order []uint64
	sep.Listen(DefaultConfig(), func(c *Connection) {
		id := c.ConnID()
		order = append(order, id)
		c.OnStream = func(st *Stream) {
			st.OnData = func(data []byte, fin bool) {
				if fin {
					finAt[id] = s.Now()
				}
			}
		}
	})

	sessions := NewSessionCache()
	dial := func(port uint16, start sim.Time) *Connection {
		cep := NewEndpoint(a, port)
		ccfg := DefaultConfig()
		ccfg.EnableZeroRTT = true
		ccfg.Sessions = sessions
		conn := cep.Dial(b.Addr(), 443, ccfg)
		conn.OnEstablished = func() {
			st := conn.OpenStream()
			st.WriteZeroes(size)
			st.Close()
		}
		return conn
	}

	conn1 := dial(5000, 0)
	var conn2 *Connection
	const gap = 2 * time.Second
	s.After(gap, func() { conn2 = dial(5001, s.Now()) })
	s.RunFor(10 * time.Second)

	if conn1.Stats.ZeroRTTResumed {
		t.Error("first connection resumed with an empty session cache")
	}
	if conn2 == nil || !conn2.Stats.ZeroRTTResumed {
		t.Fatal("second connection did not resume at 0-RTT")
	}
	if sessions.Len() != 1 {
		t.Errorf("session cache has %d tickets, want 1 (same server)", sessions.Len())
	}
	if len(order) != 2 {
		t.Fatalf("server accepted %d connections, want 2", len(order))
	}
	d1 := finAt[order[0]]
	d2 := finAt[order[1]].Sub(sim.Time(0).Add(gap))
	if d1 == 0 || d2 <= 0 {
		t.Fatalf("transfers incomplete: full=%v resumed=%v", d1, d2)
	}
	saved := time.Duration(d1) - d2
	// The resumed transfer rides the first flight: it should save right
	// around one RTT (the handshake round) — well over half, under 1.5x.
	if saved < rtt/2 || saved > 3*rtt/2 {
		t.Errorf("0-RTT saved %v, want ~%v (full %v, resumed %v)",
			saved, rtt, time.Duration(d1), d2)
	}
}

// migrationTopology wires client --- CGNAT router --- server with the NAT
// translating the client's RFC 1918 source, returning the pieces the
// migration tests poke at.
func migrationTopology(s *sim.Scheduler) (nw *netem.Network, cl, sv *netem.Node, box *nat.NAT) {
	nw = netem.New(s)
	cl = nw.NewNode("client", netem.MustParseAddr("192.168.1.2"))
	rt := nw.NewNode("cgnat", netem.MustParseAddr("100.64.0.1"))
	sv = nw.NewNode("server", netem.MustParseAddr("1.1.1.1"))
	link := netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(10 * time.Millisecond)}
	clrt, rtcl := nw.Connect(cl, rt, link)
	rtsv, svrt := nw.Connect(rt, sv, link)
	cl.AddRoute(sv.Addr(), clrt)
	rt.AddRoute(sv.Addr(), rtsv)
	rt.AddRoute(cl.Addr(), rtcl)
	sv.AddRoute(rt.Addr(), svrt)

	box = nat.New(rt.Addr(), nat.PrefixInside(netem.MustParseAddr("192.168.1.0"), 24))
	box.MappingTimeout = 30 * time.Second
	rt.AttachDevice(box)
	return nw, cl, sv, box
}

// TestConnectionMigrationSurvivesNATRebind: an outage-length idle period
// expires the CGNAT mapping, so the client's next request arrives at the
// server from a fresh external port. With AllowMigration the server
// follows the new path and its response reaches the client; without it
// the response keeps flowing to the dead mapping and the client starves.
func TestConnectionMigrationSurvivesNATRebind(t *testing.T) {
	const respSize = 20000
	run := func(allowMigration bool) (respBytes [2]int, serverConn *Connection) {
		s := sim.NewScheduler(31)
		_, cl, sv, box := migrationTopology(s)

		sep := NewEndpoint(sv, 443)
		scfg := DefaultConfig()
		scfg.AllowMigration = allowMigration
		sep.Listen(scfg, func(c *Connection) {
			serverConn = c
			// Echo server: respond to each one-byte request with respSize
			// bytes on the same stream.
			c.OnStream = func(st *Stream) {
				st.OnData = func(data []byte, fin bool) {
					if fin {
						st.WriteZeroes(respSize)
						st.Close()
					}
				}
			}
		})

		cep := NewEndpoint(cl, 5000)
		conn := cep.Dial(sv.Addr(), 443, DefaultConfig())
		request := func(i int) {
			st := conn.OpenStream()
			st.OnData = func(data []byte, fin bool) { respBytes[i] += len(data) }
			st.WriteZeroes(1)
			st.Close()
		}
		conn.OnEstablished = func() { request(0) }
		// Idle long past MappingTimeout, model the CGNAT sweeping its
		// state, then issue the second request over the rebound path.
		s.After(59*time.Second, func() { box.Expire(s.Now()) })
		s.After(60*time.Second, func() { request(1) })
		s.RunFor(90 * time.Second)
		return respBytes, serverConn
	}

	resp, srv := run(true)
	if resp[0] != respSize {
		t.Fatalf("pre-rebind response %d/%d bytes", resp[0], respSize)
	}
	if resp[1] != respSize {
		t.Errorf("post-rebind response %d/%d bytes with migration on", resp[1], respSize)
	}
	if srv.Stats.PathMigrations == 0 {
		t.Error("server followed no path migration")
	}

	resp, srv = run(false)
	if resp[0] != respSize {
		t.Fatalf("pre-rebind response %d/%d bytes", resp[0], respSize)
	}
	if resp[1] != 0 {
		t.Errorf("post-rebind response delivered %d bytes with migration off (stale mapping should eat it)", resp[1])
	}
	if srv.Stats.PathMigrations != 0 {
		t.Errorf("PathMigrations = %d with migration disabled", srv.Stats.PathMigrations)
	}
}

// TestHandoverReorderingNoSpuriousLoss: a mid-transfer route flip onto a
// lower-latency parallel path (the 15 s reconfiguration analogue) lets
// late packets overtake earlier in-flight ones by one delay quantum. The
// packet threshold (3) and time threshold in loss detection must absorb
// that: no packets may be declared lost and nothing retransmitted on a
// loss-free network.
func TestHandoverReorderingNoSpuriousLoss(t *testing.T) {
	const total = 1 << 20
	for _, seed := range []uint64{7, 23, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := sim.NewScheduler(seed)
			nw := netem.New(s)
			a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
			m := nw.NewNode("pop", netem.MustParseAddr("10.0.0.254"))
			b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
			// The shared bottleneck comes first; behind it, two delay-only
			// (rate-0, never-queuing) paths one delay quantum (1 ms)
			// apart. A slow→fast flip then reorders only by propagation:
			// at 20 Mbps a full packet serializes in ~0.5 ms, so ~2 PNs
			// overtake — inside the packet threshold. Parallel links with
			// their own queues would instead reorder by the whole queue
			// backlog, which no loss detector should be asked to absorb.
			am := nw.AddLink(a, m, netem.LinkConfig{RateBps: 20e6})
			slow := nw.AddLink(m, b, netem.LinkConfig{Delay: netem.ConstantDelay(6 * time.Millisecond)})
			fast := nw.AddLink(m, b, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
			bm := nw.AddLink(b, m, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
			ma := nw.AddLink(m, a, netem.LinkConfig{RateBps: 20e6})
			a.AddRoute(b.Addr(), am)
			m.AddRoute(b.Addr(), slow)
			b.AddRoute(a.Addr(), bm)
			m.AddRoute(a.Addr(), ma)

			cep := NewEndpoint(a, 5000)
			sep := NewEndpoint(b, 443)
			received := 0
			done := false
			sep.Listen(DefaultConfig(), func(c *Connection) {
				c.OnStream = func(st *Stream) {
					st.OnData = func(data []byte, fin bool) {
						received += len(data)
						if fin {
							done = true
						}
					}
				}
			})
			conn := cep.Dial(b.Addr(), 443, DefaultConfig())
			conn.OnEstablished = func() {
				st := conn.OpenStream()
				st.WriteZeroes(total)
				st.Close()
			}
			// Handovers in both directions mid-transfer: slow→fast
			// reorders, fast→slow merely stretches the gap.
			s.After(200*time.Millisecond, func() { m.AddRoute(b.Addr(), fast) })
			s.After(400*time.Millisecond, func() { m.AddRoute(b.Addr(), slow) })
			s.RunFor(30 * time.Second)

			if !done || received != total {
				t.Fatalf("transfer incomplete: %d/%d", received, total)
			}
			if conn.Stats.PacketsLost != 0 {
				t.Errorf("%d spurious losses after reordering handover", conn.Stats.PacketsLost)
			}
			if conn.Stats.FramesRetransmitted != 0 {
				t.Errorf("%d frames retransmitted on a loss-free network", conn.Stats.FramesRetransmitted)
			}
		})
	}
}
