// Package quic implements a QUIC-like transport over the netem emulator.
//
// The implementation follows the transport machinery of RFC 9000/9002 —
// variable-length integer encoding, frames, packet numbers, ACK ranges,
// flow control, loss detection with packet and time thresholds, probe
// timeouts, and CUBIC congestion control — and mirrors the specific
// behaviours of the quiche implementation at the commit the paper pinned
// (ba87786): monotonically increasing packet numbers with no gaps (so a
// receiver infers losses from missing numbers), retransmission under
// fresh packet numbers, 10 MB initial flow-control windows, and no packet
// pacing by default.
//
// It deliberately omits what the paper's measurements cannot observe:
// TLS 1.3 key exchange (the handshake costs the right round trips but
// carries opaque bytes), version negotiation, connection migration and
// 0-RTT. See DESIGN.md for the substitution argument.
package quic

import (
	"errors"
	"fmt"
)

// Varint limits per RFC 9000 §16.
const (
	maxVarint1 = 63
	maxVarint2 = 16383
	maxVarint4 = 1073741823
	maxVarint8 = 4611686018427387903
)

// MaxVarint is the largest value representable as a QUIC varint.
const MaxVarint = uint64(maxVarint8)

// ErrVarintRange reports a value too large for varint encoding.
var ErrVarintRange = errors.New("quic: value exceeds varint range")

// ErrTruncated reports a buffer ending mid-field.
var ErrTruncated = errors.New("quic: truncated input")

// AppendVarint appends the RFC 9000 variable-length encoding of v to b.
// It panics if v exceeds MaxVarint (a programming error: all protocol
// values are bounded well below it).
func AppendVarint(b []byte, v uint64) []byte {
	switch {
	case v <= maxVarint1:
		return append(b, byte(v))
	case v <= maxVarint2:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v <= maxVarint4:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= maxVarint8:
		return append(b, byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(fmt.Sprintf("quic: varint overflow: %d", v))
	}
}

// VarintLen returns the encoded size of v in bytes.
func VarintLen(v uint64) int {
	switch {
	case v <= maxVarint1:
		return 1
	case v <= maxVarint2:
		return 2
	case v <= maxVarint4:
		return 4
	default:
		return 8
	}
}

// ReadVarint decodes a varint from the front of b, returning the value
// and the number of bytes consumed.
func ReadVarint(b []byte) (v uint64, n int, err error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	length := 1 << (b[0] >> 6)
	if len(b) < length {
		return 0, 0, ErrTruncated
	}
	v = uint64(b[0] & 0x3f)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, length, nil
}
