package quic

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	simt "starlinkperf/internal/sim"
)

func TestVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v %= MaxVarint + 1
		b := AppendVarint(nil, v)
		if len(b) != VarintLen(v) {
			return false
		}
		got, n, err := ReadVarint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintKnownEncodings(t *testing.T) {
	// Examples from RFC 9000 appendix A.1.
	cases := []struct {
		v    uint64
		want []byte
	}{
		{37, []byte{0x25}},
		{15293, []byte{0x7b, 0xbd}},
		{494878333, []byte{0x9d, 0x7f, 0x3e, 0x7d}},
		{151288809941952652, []byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
	}
	for _, c := range cases {
		if got := AppendVarint(nil, c.v); !bytes.Equal(got, c.want) {
			t.Errorf("encode(%d) = %x, want %x", c.v, got, c.want)
		}
	}
}

func TestVarintTruncated(t *testing.T) {
	full := AppendVarint(nil, 494878333)
	for i := 0; i < len(full); i++ {
		if _, _, err := ReadVarint(full[:i]); err == nil {
			t.Errorf("ReadVarint accepted %d of %d bytes", i, len(full))
		}
	}
}

func frameEqual(a, b Frame) bool { return reflect.DeepEqual(a, b) }

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		&PingFrame{},
		&PaddingFrame{Length: 5},
		&AckFrame{
			Ranges:   []AckRange{{Smallest: 90, Largest: 100}, {Smallest: 50, Largest: 80}, {Smallest: 10, Largest: 10}},
			AckDelay: 350 * time.Microsecond,
		},
		&CryptoFrame{Offset: 1200, Data: []byte("hello tls")},
		&StreamFrame{StreamID: 4, Offset: 77777, Data: []byte("payload bytes"), Fin: true},
		&StreamFrame{StreamID: 0, Offset: 0, Data: nil, Fin: true},
		&MaxDataFrame{Max: 10 << 20},
		&MaxStreamDataFrame{StreamID: 8, Max: 123456},
		&DataBlockedFrame{Limit: 999},
		&ConnectionCloseFrame{ErrorCode: 7, Reason: "done"},
	}
	for _, f := range frames {
		b := f.Append(nil)
		if len(b) != f.WireLen() {
			t.Errorf("%v: WireLen %d != encoded %d", f, f.WireLen(), len(b))
		}
		got, err := ParseFrames(b)
		if err != nil {
			t.Errorf("%v: parse error %v", f, err)
			continue
		}
		if len(got) != 1 {
			t.Errorf("%v: parsed %d frames", f, len(got))
			continue
		}
		// Normalize empty slices for comparison.
		if sf, ok := got[0].(*StreamFrame); ok && len(sf.Data) == 0 {
			sf.Data = nil
		}
		if !frameEqual(f, got[0]) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got[0], f)
		}
	}
}

func TestMultipleFramesInPayload(t *testing.T) {
	var b []byte
	b = (&PingFrame{}).Append(b)
	b = (&StreamFrame{StreamID: 0, Offset: 10, Data: []byte("abc")}).Append(b)
	b = (&PaddingFrame{Length: 3}).Append(b)
	frames, err := ParseFrames(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("parsed %d frames, want 3", len(frames))
	}
}

func TestParseFramesRejectsGarbage(t *testing.T) {
	if _, err := ParseFrames([]byte{0xff, 0x00}); err == nil {
		t.Error("unknown frame type accepted")
	}
	// Truncated STREAM frame.
	sf := (&StreamFrame{StreamID: 1, Offset: 5, Data: []byte("0123456789")}).Append(nil)
	if _, err := ParseFrames(sf[:len(sf)-4]); err == nil {
		t.Error("truncated stream frame accepted")
	}
}

func TestAckFrameContains(t *testing.T) {
	f := &AckFrame{Ranges: []AckRange{{Smallest: 10, Largest: 20}, {Smallest: 3, Largest: 5}}}
	for _, pn := range []uint64{10, 15, 20, 3, 5} {
		if !f.Contains(pn) {
			t.Errorf("Contains(%d) = false", pn)
		}
	}
	for _, pn := range []uint64{2, 6, 9, 21} {
		if f.Contains(pn) {
			t.Errorf("Contains(%d) = true", pn)
		}
	}
}

func TestAckFrameRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 500; trial++ {
		// Build random disjoint descending ranges.
		n := 1 + r.IntN(8)
		pn := uint64(5 + r.IntN(1000))
		var ranges []AckRange
		for i := 0; i < n && pn > 4; i++ {
			length := uint64(r.IntN(20))
			if length+1 > pn {
				length = pn - 1
			}
			lo := pn - length
			ranges = append([]AckRange{{Smallest: lo, Largest: pn}}, ranges...)
			if lo < 13 {
				break
			}
			pn = lo - 2 - uint64(r.IntN(10))
		}
		// Descending order for the frame.
		desc := make([]AckRange, len(ranges))
		for i := range ranges {
			desc[i] = ranges[len(ranges)-1-i]
		}
		f := &AckFrame{Ranges: desc, AckDelay: time.Duration(r.IntN(100000)) * time.Microsecond}
		got, err := ParseFrames(f.Append(nil))
		if err != nil {
			t.Fatalf("trial %d: %v (frame %v)", trial, err, f)
		}
		if !reflect.DeepEqual(got[0], f) {
			t.Fatalf("trial %d mismatch:\n got %#v\nwant %#v", trial, got[0], f)
		}
	}
}

func TestPacketSerializeParse(t *testing.T) {
	h := PacketHeader{Handshake: true, ConnID: 0xdeadbeefcafe, Number: 42}
	frames := []Frame{&CryptoFrame{Offset: 0, Data: []byte("ch")}, &PingFrame{}}
	b := Serialize(h, frames)
	p, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header != h {
		t.Errorf("header = %+v, want %+v", p.Header, h)
	}
	if len(p.Frames) != 2 {
		t.Errorf("frames = %d", len(p.Frames))
	}
	if p.Size != len(b) {
		t.Errorf("size = %d, want %d", p.Size, len(b))
	}
	if !p.AckEliciting() {
		t.Error("packet with CRYPTO+PING should be ack-eliciting")
	}
}

func TestParseRejectsShortAndBadFixedBit(t *testing.T) {
	if _, err := Parse([]byte{0x40}); err == nil {
		t.Error("short packet accepted")
	}
	b := Serialize(PacketHeader{ConnID: 1, Number: 1}, []Frame{&PingFrame{}})
	b[0] &^= 0x40
	if _, err := Parse(b); err == nil {
		t.Error("cleared fixed bit accepted")
	}
}

func TestRangeSetInsertProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		var s rangeSet
		ref := make(map[uint64]bool)
		for i := 0; i < 300; i++ {
			pn := uint64(r.IntN(150))
			s.Insert(pn)
			ref[pn] = true
		}
		// Invariants: sorted, disjoint, non-adjacent.
		rs := s.Ranges()
		for i := range rs {
			if rs[i].Smallest > rs[i].Largest {
				t.Fatalf("inverted range %+v", rs[i])
			}
			if i > 0 && rs[i].Smallest <= rs[i-1].Largest+1 {
				t.Fatalf("overlapping/adjacent ranges %+v %+v", rs[i-1], rs[i])
			}
		}
		// Exact membership.
		for pn := uint64(0); pn < 160; pn++ {
			if s.Contains(pn) != ref[pn] {
				t.Fatalf("Contains(%d) = %v, want %v (ranges %v)", pn, s.Contains(pn), ref[pn], rs)
			}
		}
		if int(s.Count()) != len(ref) {
			t.Fatalf("Count = %d, want %d", s.Count(), len(ref))
		}
	}
}

func TestRangeSetAckRangesOrder(t *testing.T) {
	var s rangeSet
	for _, pn := range []uint64{1, 2, 3, 10, 11, 20} {
		s.Insert(pn)
	}
	ar := s.AckRanges(2)
	if len(ar) != 2 {
		t.Fatalf("got %d ranges", len(ar))
	}
	if ar[0].Largest != 20 || ar[1].Largest != 11 {
		t.Errorf("AckRanges = %v, want most recent first", ar)
	}
	if l, ok := s.Largest(); !ok || l != 20 {
		t.Errorf("Largest = %v %v", l, ok)
	}
}

func TestRTTEstimator(t *testing.T) {
	var r RTTEstimator
	if r.Smoothed() != InitialRTT {
		t.Error("pre-sample smoothed should be InitialRTT")
	}
	r.Update(100*time.Millisecond, 0)
	if r.Smoothed() != 100*time.Millisecond || r.Min() != 100*time.Millisecond {
		t.Errorf("first sample: srtt=%v min=%v", r.Smoothed(), r.Min())
	}
	if r.Variance() != 50*time.Millisecond {
		t.Errorf("first variance = %v", r.Variance())
	}
	r.Update(200*time.Millisecond, 0)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	if got := r.Smoothed(); got != 112500*time.Microsecond {
		t.Errorf("srtt = %v, want 112.5ms", got)
	}
	if r.Min() != 100*time.Millisecond {
		t.Errorf("min = %v", r.Min())
	}
	r.Update(80*time.Millisecond, 0)
	if r.Min() != 80*time.Millisecond {
		t.Errorf("min after lower sample = %v", r.Min())
	}
}

func TestRTTAckDelaySubtraction(t *testing.T) {
	var r RTTEstimator
	r.Update(100*time.Millisecond, 0)
	r.Update(150*time.Millisecond, 25*time.Millisecond)
	// Adjusted sample 125ms: srtt = 7/8*100 + 1/8*125 = 103.125ms
	if got := r.Smoothed(); got != 103125*time.Microsecond {
		t.Errorf("srtt = %v, want 103.125ms", got)
	}
	// Delay subtraction must not go below min.
	r2 := RTTEstimator{}
	r2.Update(100*time.Millisecond, 0)
	r2.Update(101*time.Millisecond, 50*time.Millisecond) // 101-50 < min
	if r2.Latest() != 101*time.Millisecond {
		t.Errorf("latest = %v", r2.Latest())
	}
}

func TestRTTLossDelayAndPTO(t *testing.T) {
	var r RTTEstimator
	r.Update(80*time.Millisecond, 0)
	if got, want := r.LossDelay(), 90*time.Millisecond; got != want {
		t.Errorf("loss delay = %v, want %v", got, want)
	}
	pto := r.PTO(25 * time.Millisecond)
	// 80 + 4*40 + 25 = 265ms
	if pto != 265*time.Millisecond {
		t.Errorf("PTO = %v, want 265ms", pto)
	}
}

func TestCubicSlowStartAndBackoff(t *testing.T) {
	c := NewCubic()
	w0 := c.Window()
	if !c.InSlowStart() {
		t.Fatal("should start in slow start")
	}
	var r RTTEstimator
	r.Update(50*time.Millisecond, 0)
	c.OnPacketAcked(0, 1350, &r)
	if c.Window() != w0+1350 {
		t.Errorf("slow start growth: %d -> %d", w0, c.Window())
	}
	// Loss halves-ish (beta 0.7) and exits slow start.
	c.OnCongestionEvent(simsec(1), simsec(0))
	if got := c.Window(); got != int(float64(w0+1350)*0.7) {
		t.Errorf("post-loss window = %d", got)
	}
	if c.InSlowStart() {
		t.Error("should have left slow start")
	}
	// Second loss within same recovery episode: no further reduction.
	w := c.Window()
	c.OnCongestionEvent(simsec(2), simsec(0))
	if c.Window() != w {
		t.Error("same-episode loss reduced window again")
	}
}

func simsec(sec int64) simt.Time { return simt.Time(sec) * simt.Time(time.Second) }
