package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Conservative parallel discrete-event execution (PDES).
//
// A PartitionedDriver runs several independent Schedulers — one per
// partition of the simulation graph — in lock-step barrier windows.
// Partitions interact only through CrossEdges, each declaring a lookahead:
// a hard lower bound on the sim-time distance between an event executing
// in the source partition and any cross-partition message it emits. The
// driver exploits that bound the classic conservative way: if the
// earliest unexecuted event anywhere sits at time T and every cross edge
// guarantees lookahead >= W, then no event in [T, T+W) can be affected by
// a message generated in that same window — every such message is stamped
// >= T+W. So each window [T, hi) with hi <= T+W executes in parallel,
// one goroutine per partition, with no synchronization at all; at the
// barrier the staged messages flip into the destination partitions'
// inboxes and the next window begins.
//
// All horizon math is exact in sim-time ticks (Time is integer
// nanoseconds); there are no float or wall-clock heuristics anywhere in
// the window computation. Determinism is structural, not scheduled-by-
// luck: each partition's event order is a pure function of its inputs
// (its own schedule plus inbox drains in fixed edge order), and worker
// goroutines only decide which CPU runs which partition, never what any
// partition observes. Output is therefore bit-identical for any worker
// count, which the equivalence suites in internal/fleet and internal/core
// enforce.
type PartitionedDriver struct {
	parts   []*partition
	edges   []*CrossEdge
	minLook Duration // min lookahead over all edges; MaxTime duration when no edges
	now     Time

	// flipped lists the edges whose inboxes went non-empty at the last
	// barrier — the only inboxes earliestWork must scan. Barrier cost
	// scales with traffic, not with edge count: a fully connected
	// 16-partition mesh has 240 edges, and touching each of them every
	// few-millisecond window would dwarf the event work itself.
	flipped []*CrossEdge

	globals   []globalEvent
	globalSeq uint64

	hooks []func()

	// Windows counts executed barrier windows; Barriers the staged-message
	// flips. Both are deterministic for a given scenario.
	Windows  uint64
	Barriers uint64
}

// partition pairs a scheduler with its incoming edges (in Connect order,
// which fixes the inbox drain order and therefore the event sequence).
// The dirty-tracking slices make per-window bookkeeping proportional to
// the edges actually carrying traffic; each is written by exactly one
// side (source goroutine, destination goroutine, or the single-threaded
// barrier), so none needs a lock.
type partition struct {
	sched *Scheduler
	in    []*CrossEdge

	// inboxed counts in-edges flipped non-empty at the last barrier; when
	// zero, run skips the drain loop entirely. Written at the barrier,
	// cleared by the partition's own goroutine.
	inboxed int
	// outDirty lists out-edges staged onto during the current window.
	// Appended by the partition's goroutine (the only writer of its out
	// edges), consumed at the barrier.
	outDirty []*CrossEdge
	// pendingIn lists in-edges with drained-but-not-yet-executed
	// messages, kept until their retirement hooks can run. Appended
	// during the drain, compacted at the barrier.
	pendingIn []*CrossEdge
}

// globalEvent is a barrier-synchronized event: it runs single-threaded
// between windows, when every partition's clock sits exactly at its
// timestamp. Scenario-wide phase changes (the fleet's epoch reassignment)
// run here, so partitions always observe them with a happens-before edge
// on both sides.
type globalEvent struct {
	at  Time
	seq uint64
	fn  func(at Time)
}

// CrossMsg is one timestamped cross-partition message: an EventFunc plus
// its argument, to be scheduled on the destination partition at At.
type CrossMsg struct {
	At  Time
	Fn  EventFunc
	Arg any
}

// CrossEdge is a deterministic one-way message queue between two
// partitions. During a window the source partition appends to staged (it
// is the only writer); at the barrier the driver flips staged into inbox;
// at the start of the next window the destination partition drains inbox
// into its scheduler (it is the only reader). The two phases never
// overlap, so the edge needs no locks.
type CrossEdge struct {
	src, dst  int
	lookahead Duration
	srcSched  *Scheduler
	srcPart   *partition
	staged    []CrossMsg
	inbox     []CrossMsg

	// dirty is set by the first Send of a window (source goroutine only)
	// and cleared at the barrier; it keeps the edge on its source
	// partition's outDirty list exactly once.
	dirty bool
	// pending/pendingUntil track drained messages that have not executed
	// yet: pendingUntil is the latest stamp drained into the destination
	// scheduler. Once the window clock passes it, every message has run
	// (and retired its record), so OnBarrier can fire. Written by the
	// destination goroutine, read at the barrier.
	pending      bool
	pendingUntil Time

	// OnBarrier, when non-nil, runs single-threaded at the first barrier
	// by which every message drained from this edge has executed. Cross-
	// link record pools (internal/netem) recycle through it: records
	// retired by the destination flow back to the source's freelist only
	// when neither side is running.
	OnBarrier func()
}

// NewPartitionedDriver returns a driver over n partition schedulers, all
// derived from the same base seed (partition i uses DeriveSeed(seed,
// "pdes/partition", i)), with clocks at zero and no cross edges yet.
func NewPartitionedDriver(seed uint64, n int) *PartitionedDriver {
	if n < 1 {
		panic("sim: partitioned driver needs at least one partition")
	}
	d := &PartitionedDriver{minLook: Duration(MaxTime)}
	for i := 0; i < n; i++ {
		d.parts = append(d.parts, &partition{sched: NewScheduler(DeriveSeed(seed, "pdes/partition", i))})
	}
	return d
}

// Partitions returns the number of partitions.
func (d *PartitionedDriver) Partitions() int { return len(d.parts) }

// Scheduler returns partition p's scheduler. All nodes, links and timers
// of partition p must live on it exclusively.
func (d *PartitionedDriver) Scheduler(p int) *Scheduler { return d.parts[p].sched }

// Now returns the driver's window clock: every partition's scheduler sits
// exactly here between windows.
func (d *PartitionedDriver) Now() Time { return d.now }

// Events returns the total number of events executed across all
// partitions — deterministic for a given scenario.
func (d *PartitionedDriver) Events() uint64 {
	var n uint64
	for _, p := range d.parts {
		n += p.sched.Processed
	}
	return n
}

// EventsSkipped returns the total number of events scenario-level
// fast-forwards credited via Scheduler.CreditSkipped across all
// partitions: emulation work the closed forms displaced. Deterministic
// for a given scenario, like Events.
func (d *PartitionedDriver) EventsSkipped() uint64 {
	var n uint64
	for _, p := range d.parts {
		n += p.sched.Skipped
	}
	return n
}

// Connect creates a cross edge from partition src to partition dst with
// the given lookahead. A conservative engine is only sound when every
// cross edge has strictly positive lookahead — a zero-lookahead edge
// would let a window-T event affect the very window computing it — so a
// lookahead <= 0 (or a degenerate src/dst) fails fast with an error
// rather than producing silently wrong schedules.
func (d *PartitionedDriver) Connect(src, dst int, lookahead Duration) (*CrossEdge, error) {
	if src < 0 || src >= len(d.parts) || dst < 0 || dst >= len(d.parts) {
		return nil, fmt.Errorf("sim: cross edge %d->%d outside partitions [0,%d)", src, dst, len(d.parts))
	}
	if src == dst {
		return nil, fmt.Errorf("sim: cross edge %d->%d connects a partition to itself; use a plain link", src, dst)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: cross edge %d->%d has zero lookahead (%v); conservative synchronization requires a positive propagation-delay lower bound", src, dst, lookahead)
	}
	e := &CrossEdge{src: src, dst: dst, lookahead: lookahead, srcSched: d.parts[src].sched, srcPart: d.parts[src]}
	d.edges = append(d.edges, e)
	d.parts[dst].in = append(d.parts[dst].in, e)
	if lookahead < d.minLook {
		d.minLook = lookahead
	}
	return e, nil
}

// Send stages fn(arg) for execution on the destination partition at
// absolute time at. Only the source partition may call it, and only while
// its window is executing. The stamp must respect the edge's declared
// lookahead; violating it means the lookahead promise made to Connect was
// false, which would break the safe-horizon computation for every
// partition, so it panics immediately with the offending times.
func (e *CrossEdge) Send(at Time, fn EventFunc, arg any) {
	if now := e.srcSched.Now(); at < now.Add(e.lookahead) {
		panic(fmt.Sprintf("sim: cross edge %d->%d message at %v violates lookahead %v from now %v",
			e.src, e.dst, at, e.lookahead, now))
	}
	if fn == nil {
		panic("sim: nil cross-edge event")
	}
	if !e.dirty {
		e.dirty = true
		e.srcPart.outDirty = append(e.srcPart.outDirty, e)
	}
	e.staged = append(e.staged, CrossMsg{At: at, Fn: fn, Arg: arg})
}

// GlobalAt schedules fn to run single-threaded at the barrier for time
// at: after every partition has executed all events before at, and before
// any partition executes an event at or after it. Globals may schedule
// further globals at the same or later times. Scheduling in the past
// panics, exactly like Scheduler.At.
func (d *PartitionedDriver) GlobalAt(at Time, fn func(at Time)) {
	if at < d.now {
		panic(fmt.Sprintf("sim: scheduling global event at %v before now %v", at, d.now))
	}
	if fn == nil {
		panic("sim: nil global event")
	}
	d.globals = append(d.globals, globalEvent{at: at, seq: d.globalSeq, fn: fn})
	d.globalSeq++
	sort.Slice(d.globals, func(i, j int) bool {
		if d.globals[i].at != d.globals[j].at {
			return d.globals[i].at < d.globals[j].at
		}
		return d.globals[i].seq < d.globals[j].seq
	})
}

// OnBarrier registers fn to run single-threaded at every barrier, after
// staged messages flip and after per-edge hooks. Partition-spanning
// bookkeeping (pool recycling, progress accounting) belongs here.
func (d *PartitionedDriver) OnBarrier(fn func()) { d.hooks = append(d.hooks, fn) }

// runGlobals pops and runs every global stamped exactly at now,
// including ones scheduled by globals as they run.
func (d *PartitionedDriver) runGlobals() {
	for len(d.globals) > 0 && d.globals[0].at == d.now {
		g := d.globals[0]
		d.globals = d.globals[1:]
		g.fn(d.now)
	}
}

// earliestWork returns the smallest timestamp of any unexecuted work:
// partition events, undelivered inbox messages, or globals. ok=false
// when the simulation is fully drained.
func (d *PartitionedDriver) earliestWork() (Time, bool) {
	earliest, ok := MaxTime, false
	if len(d.globals) > 0 {
		earliest, ok = d.globals[0].at, true
	}
	for _, p := range d.parts {
		if t, has := p.sched.NextEventTime(); has && t < earliest {
			earliest, ok = t, true
		}
	}
	for _, e := range d.flipped {
		for i := range e.inbox {
			if at := e.inbox[i].At; at < earliest {
				earliest, ok = at, true
			}
		}
	}
	return earliest, ok
}

// runPartition executes one partition's share of the window [d.now, hi):
// drain the inboxes in edge order, then run strictly before hi. The inbox
// drain happens first and in a fixed order, so the partition's (at, seq)
// event sequence is a pure function of its inputs. A message stamped
// before the partition's clock would be a safe-horizon violation; the
// scheduler's own scheduling-in-the-past panic is the enforcement.
func (p *partition) run(hi Time) {
	if p.inboxed > 0 {
		p.inboxed = 0
		for _, e := range p.in {
			if len(e.inbox) == 0 {
				continue
			}
			for i := range e.inbox {
				m := &e.inbox[i]
				if m.At > e.pendingUntil {
					e.pendingUntil = m.At
				}
				p.sched.AtFunc(m.At, m.Fn, m.Arg)
				*m = CrossMsg{}
			}
			e.inbox = e.inbox[:0]
			if !e.pending {
				e.pending = true
				p.pendingIn = append(p.pendingIn, e)
			}
		}
	}
	p.sched.RunBefore(hi)
}

// barrier flips the staged messages of every dirty edge into its inbox
// and runs the hooks. Single-threaded: all window workers have joined.
// Only edges that actually carried traffic are touched — flips via the
// per-partition dirty lists, retirement hooks via the pending lists —
// so an idle mesh edge costs nothing per window.
func (d *PartitionedDriver) barrier() {
	d.Barriers++
	d.flipped = d.flipped[:0]
	for _, p := range d.parts {
		for _, e := range p.outDirty {
			e.dirty = false
			e.inbox, e.staged = e.staged, e.inbox
			d.parts[e.dst].inboxed++
			d.flipped = append(d.flipped, e)
		}
		p.outDirty = p.outDirty[:0]
	}
	for _, p := range d.parts {
		kept := p.pendingIn[:0]
		for _, e := range p.pendingIn {
			if e.pendingUntil < d.now {
				// Every message drained from this edge has executed (the
				// window clock passed the latest stamp), so the records it
				// delivered are retired and safe to recycle.
				e.pending = false
				if e.OnBarrier != nil {
					e.OnBarrier()
				}
			} else {
				kept = append(kept, e)
			}
		}
		p.pendingIn = kept
	}
	for _, fn := range d.hooks {
		fn()
	}
}

// Run executes the scenario up to (but excluding) horizon on the given
// number of worker goroutines, then advances every partition's clock to
// exactly horizon. workers <= 1 runs every window inline on the calling
// goroutine — same code path, same results; worker count is invisible to
// the simulation by construction.
func (d *PartitionedDriver) Run(horizon Time, workers int) {
	if workers > len(d.parts) {
		workers = len(d.parts)
	}
	for d.now < horizon {
		d.runGlobals()
		earliest, ok := d.earliestWork()
		if !ok || earliest >= horizon {
			break
		}
		if earliest < d.now {
			// An inbox message older than the window clock escaped the
			// lookahead validation — never reachable, but cheap to guard.
			panic(fmt.Sprintf("sim: pending work at %v behind window clock %v", earliest, d.now))
		}
		hi := horizon
		if d.minLook < Duration(MaxTime) {
			if w := earliest.Add(d.minLook); w < hi {
				hi = w
			}
		}
		if len(d.globals) > 0 && d.globals[0].at < hi {
			hi = d.globals[0].at
		}
		if hi <= d.now {
			// Only possible when a global sits exactly at now after
			// runGlobals drained now — i.e. never; guard anyway.
			panic(fmt.Sprintf("sim: window [%v, %v) does not advance", d.now, hi))
		}
		d.Windows++
		d.runWindow(hi, workers)
		d.now = hi
		d.barrier()
	}
	// Drained (or nothing left before horizon): advance every clock to
	// the horizon so post-run samplers observe a full span.
	if d.now < horizon {
		d.now = horizon
	}
	for _, p := range d.parts {
		p.run(horizon)
	}
	d.barrier()
}

// runWindow executes [d.now, hi) across all partitions. Work-stealing
// over an atomic counter: partition execution order is irrelevant to
// results (partitions share nothing during a window), so workers just
// grab the next index.
func (d *PartitionedDriver) runWindow(hi Time, workers int) {
	if workers <= 1 || len(d.parts) == 1 {
		for _, p := range d.parts {
			p.run(hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(d.parts) {
					return
				}
				d.parts[i].run(hi)
			}
		}()
	}
	wg.Wait()
}
