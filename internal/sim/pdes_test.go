package sim

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestPartitionedDriverConnectErrors(t *testing.T) {
	d := NewPartitionedDriver(1, 2)
	if _, err := d.Connect(0, 0, time.Millisecond); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self edge: got %v", err)
	}
	if _, err := d.Connect(0, 2, time.Millisecond); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := d.Connect(-1, 1, time.Millisecond); err == nil {
		t.Error("negative partition accepted")
	}
	// Satellite of the conservative contract: zero (or negative) lookahead
	// must fail fast with a message naming the problem, not silently
	// produce wrong schedules.
	if _, err := d.Connect(0, 1, 0); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("zero lookahead: got %v", err)
	}
	if _, err := d.Connect(0, 1, -time.Second); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("negative lookahead: got %v", err)
	}
	if _, err := d.Connect(0, 1, time.Millisecond); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestPartitionedDriverLookaheadViolationPanics(t *testing.T) {
	d := NewPartitionedDriver(1, 2)
	e, err := d.Connect(0, 1, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s0 := d.Scheduler(0)
	s0.At(0, func() {
		e.Send(s0.Now().Add(5*time.Millisecond), func(any) {}, nil)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("understated lookahead did not panic")
		}
		if !strings.Contains(r.(string), "violates lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	d.Run(Time(int64(time.Second)), 1)
}

// TestPartitionedDriverCrossDelivery runs a two-partition ping-pong and
// checks message arrival times and the window accounting.
func TestPartitionedDriverCrossDelivery(t *testing.T) {
	d := NewPartitionedDriver(1, 2)
	look := 10 * time.Millisecond
	e01, _ := d.Connect(0, 1, look)
	e10, _ := d.Connect(1, 0, look)

	type rec struct {
		part int
		at   Time
		tag  string
	}
	var log []rec
	s0, s1 := d.Scheduler(0), d.Scheduler(1)
	// p1's own event at the same instant a cross message arrives: the
	// build-time event was scheduled first and must run first.
	s1.At(Time(int64(11*time.Millisecond)), func() {
		log = append(log, rec{1, s1.Now(), "own"})
	})
	s0.At(Time(int64(time.Millisecond)), func() {
		e01.Send(s0.Now().Add(look), func(any) {
			log = append(log, rec{1, s1.Now(), "ping"})
			e10.Send(s1.Now().Add(look), func(any) {
				log = append(log, rec{0, s0.Now(), "pong"})
			}, nil)
		}, nil)
	})
	d.Run(Time(int64(time.Second)), 1)

	want := []rec{
		{1, Time(int64(11 * time.Millisecond)), "own"},
		{1, Time(int64(11 * time.Millisecond)), "ping"},
		{0, Time(int64(21 * time.Millisecond)), "pong"},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("got %v, want %v", log, want)
	}
	if d.Now() != Time(int64(time.Second)) {
		t.Errorf("driver clock %v, want horizon", d.Now())
	}
	if d.Windows == 0 || d.Barriers == 0 {
		t.Errorf("no windows/barriers recorded: %d/%d", d.Windows, d.Barriers)
	}
	if d.Events() != 4 {
		t.Errorf("events = %d, want 4", d.Events())
	}
}

// TestPartitionedDriverGlobals pins the barrier ordering: a global at T
// runs after every event before T and before any event at or after T.
func TestPartitionedDriverGlobals(t *testing.T) {
	d := NewPartitionedDriver(3, 1)
	s := d.Scheduler(0)
	var log []string
	s.At(Time(int64(5*time.Millisecond)), func() { log = append(log, "ev5") })
	s.At(Time(int64(10*time.Millisecond)), func() { log = append(log, "ev10") })
	d.GlobalAt(Time(int64(10*time.Millisecond)), func(at Time) {
		if s.Now() != at {
			t.Errorf("partition clock %v at global %v", s.Now(), at)
		}
		log = append(log, "g10")
		// Globals may chain further globals.
		d.GlobalAt(at.Add(5*time.Millisecond), func(Time) { log = append(log, "g15") })
	})
	d.Run(Time(int64(20*time.Millisecond)), 1)
	want := []string{"ev5", "g10", "ev10", "g15"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("got %v, want %v", log, want)
	}
}

// fuzzRng is a tiny splitmix64 for deterministic workload derivation.
type fuzzRng uint64

func (r *fuzzRng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

type fuzzRec struct {
	at Time
	id int
}

// FuzzPartitionedDriver derives a random partition topology and workload
// from the fuzz input, runs it both under the PDES driver and on a single
// oracle scheduler, and asserts the safe-horizon invariant: every event
// executes at the same sim time in both engines, and no partition ever
// observes time running backwards. Cross sends always honor the edge
// lookahead, so any panic is a driver bug.
func FuzzPartitionedDriver(f *testing.F) {
	f.Add(uint64(1), uint8(3), []byte{0, 10, 5, 1, 20, 9, 2, 3, 200})
	f.Add(uint64(42), uint8(8), []byte{7, 1, 0, 6, 250, 255, 5, 128, 64, 4, 32, 16})
	f.Add(uint64(20260808), uint8(1), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, ops []byte) {
		n := int(nRaw)%8 + 1
		if len(ops) > 96 {
			ops = ops[:96]
		}
		horizon := Time(int64(2 * time.Second))

		// Random edge set with random positive lookaheads, identical for
		// both engines.
		type edgeSpec struct {
			src, dst int
			look     time.Duration
		}
		rng := fuzzRng(seed)
		var specs []edgeSpec
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if p == q || rng.next()%2 == 0 {
					continue
				}
				specs = append(specs, edgeSpec{p, q, time.Duration(1+rng.next()%20) * time.Millisecond})
			}
		}

		// The workload: ops bytes in triples (partition, start ms,
		// behavior). Each event records itself and may emit cross sends
		// stamped lookahead + extra past its own execution.
		type eventSpec struct {
			part  int
			at    Time
			sends []int // indexes into specs (out-edges of part)
			extra time.Duration
		}
		var events []eventSpec
		for i := 0; i+2 < len(ops); i += 3 {
			ev := eventSpec{
				part:  int(ops[i]) % n,
				at:    Time(int64(ops[i+1]) * int64(time.Millisecond)),
				extra: time.Duration(ops[i+2]>>4) * time.Millisecond,
			}
			nSends := int(ops[i+2]) % 3
			for s := range specs {
				if len(ev.sends) >= nSends {
					break
				}
				if specs[s].src == ev.part {
					ev.sends = append(ev.sends, s)
				}
			}
			events = append(events, ev)
		}

		// canonical sorts one partition's record log by (at, id): within
		// one timestamp, arrival order of messages from different source
		// partitions is genuinely unspecified, and both engines are free
		// to serialize it differently.
		canonical := func(logs [][]fuzzRec) [][]fuzzRec {
			for p := range logs {
				sort.Slice(logs[p], func(i, j int) bool {
					if logs[p][i].at != logs[p][j].at {
						return logs[p][i].at < logs[p][j].at
					}
					return logs[p][i].id < logs[p][j].id
				})
			}
			return logs
		}

		// PDES run.
		pdesLogs := make([][]fuzzRec, n)
		d := NewPartitionedDriver(seed, n)
		edges := make([]*CrossEdge, len(specs))
		for i, sp := range specs {
			e, err := d.Connect(sp.src, sp.dst, sp.look)
			if err != nil {
				t.Fatalf("connect %+v: %v", sp, err)
			}
			edges[i] = e
		}
		for id, ev := range events {
			id, ev := id, ev
			d.Scheduler(ev.part).At(ev.at, func() {
				now := d.Scheduler(ev.part).Now()
				pdesLogs[ev.part] = append(pdesLogs[ev.part], fuzzRec{now, id})
				for _, si := range ev.sends {
					sp, id := specs[si], id
					at := now.Add(sp.look + ev.extra)
					edges[si].Send(at, func(any) {
						pdesLogs[sp.dst] = append(pdesLogs[sp.dst], fuzzRec{d.Scheduler(sp.dst).Now(), 1000 + id})
					}, nil)
				}
			})
		}
		workers := int(seed%4) + 1
		d.Run(horizon, workers)

		// Safe-horizon invariant: every partition's raw execution order is
		// non-decreasing in time (checked before canonicalization).
		for p, log := range pdesLogs {
			for i := 1; i < len(log); i++ {
				if log[i].at < log[i-1].at {
					t.Fatalf("partition %d executed %v after %v", p, log[i], log[i-1])
				}
			}
		}

		// Oracle: one scheduler, same workload, cross sends become plain
		// schedules at the same stamps.
		oracleLogs := make([][]fuzzRec, n)
		os := NewScheduler(seed)
		for id, ev := range events {
			id, ev := id, ev
			os.At(ev.at, func() {
				now := os.Now()
				oracleLogs[ev.part] = append(oracleLogs[ev.part], fuzzRec{now, id})
				for _, si := range ev.sends {
					sp, id := specs[si], id
					os.AtFunc(now.Add(sp.look+ev.extra), func(any) {
						oracleLogs[sp.dst] = append(oracleLogs[sp.dst], fuzzRec{os.Now(), 1000 + id})
					}, nil)
				}
			})
		}
		os.RunBefore(horizon)

		if !reflect.DeepEqual(canonical(pdesLogs), canonical(oracleLogs)) {
			t.Fatalf("PDES diverges from oracle\npdes:   %v\noracle: %v", pdesLogs, oracleLogs)
		}
	})
}
