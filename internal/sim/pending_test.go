package sim

import (
	"testing"
	"time"
)

// TestRunBeforeHalfOpenWindow pins the PDES window semantics: RunBefore
// executes strictly below the horizon, leaves events at the horizon for
// the next window, and lands the clock exactly on it.
func TestRunBeforeHalfOpenWindow(t *testing.T) {
	s := NewScheduler(1)
	var log []Time
	for _, at := range []Time{Time(Millisecond), Time(Second), Time(2 * Second)} {
		at := at
		s.At(at, func() { log = append(log, at) })
	}
	s.RunBefore(Time(Second))
	if len(log) != 1 || log[0] != Time(Millisecond) {
		t.Fatalf("window ran %v, want only the 1ms event", log)
	}
	if s.Now() != Time(Second) {
		t.Fatalf("clock = %v, want exactly the horizon", s.Now())
	}
	// The event at the old horizon belongs to the next window.
	s.RunBefore(Time(Second) + 1)
	if len(log) != 2 || log[1] != Time(Second) {
		t.Fatalf("second window ran %v, want the 1s event", log)
	}
	// RunBefore never moves the clock backwards.
	s.RunBefore(0)
	if s.Now() != Time(Second)+1 {
		t.Fatalf("clock moved backwards to %v", s.Now())
	}
}

// TestPendingLiveCountAcrossCompaction is the regression pin for
// Pending's live-only semantics: stopped timers leave the count the
// moment Stop returns, and the lazy heap compaction that later reclaims
// their nodes must not change what Pending reports. The sizes are chosen
// to cross the compactMin threshold so the compaction path actually runs.
func TestPendingLiveCountAcrossCompaction(t *testing.T) {
	s := NewScheduler(1)
	n := 4 * compactMin
	handles := make([]TimerHandle, n)
	for i := 0; i < n; i++ {
		handles[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if got := s.Pending(); got != n {
		t.Fatalf("pending = %d, want %d", got, n)
	}
	// Stop three quarters: nstopped*2 > len(heap) holds, so the next
	// peek-driven operation compacts.
	stopped := 0
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			if !handles[i].Stop() {
				t.Fatalf("timer %d did not stop", i)
			}
			stopped++
			if got, want := s.Pending(), n-stopped; got != want {
				t.Fatalf("after %d stops: pending = %d, want %d", stopped, got, want)
			}
		}
	}
	live := n - stopped
	// Force compaction via a peek-driven path and re-check.
	if at, ok := s.NextEventTime(); !ok || at != Time(Millisecond) {
		t.Fatalf("next event = %v/%v, want 1ms", at, ok)
	}
	if got := s.Pending(); got != live {
		t.Fatalf("pending after compaction = %d, want %d", got, live)
	}
	// The live timers all still fire, exactly once each.
	prev := s.Processed
	s.Run()
	ran := int(s.Processed - prev)
	if ran != live {
		t.Fatalf("ran %d events, want %d", ran, live)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}
