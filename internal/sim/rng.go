package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source with support for derived named
// streams. Two simulation components that each derive their own stream
// ("leo.jitter", "netem.loss", ...) remain statistically independent and —
// critically — insensitive to each other's consumption order, which keeps
// experiments reproducible as the codebase evolves.
type RNG struct {
	seed uint64
	src  *rand.Rand
}

// NewRNG returns the root RNG for seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Stream derives an independent deterministic sub-stream identified by
// name. Deriving the same name from the same root always yields the same
// sequence.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	sub := r.seed ^ h.Sum64()
	return &RNG{seed: sub, src: rand.New(rand.NewPCG(sub, sub^0xdeadbeefcafef00d))}
}

// Derive returns a deterministic seed for the i-th shard of a named
// family ("latency", "speedtest", ...). Unlike Stream it hands back a raw
// seed rather than an RNG: the caller typically feeds it to a whole new
// simulation (e.g. a per-shard Testbed) so that shards are statistically
// independent yet fully reproducible. Derive never consumes state from r,
// so the result is insensitive to how much randomness has already been
// drawn.
func (r *RNG) Derive(name string, i int) uint64 {
	return DeriveSeed(r.seed, name, i)
}

// DeriveSeed is the underlying pure derivation used by Derive: it mixes a
// base seed with a shard family name and index. Identical inputs always
// produce identical seeds; distinct names or indices decorrelate.
func DeriveSeed(base uint64, name string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	h.Write(buf[:])
	// The extra odd constant separates Derive("x", 0) from Stream("x"),
	// which uses the bare name hash.
	return base ^ h.Sum64() ^ 0x6a09e667f3bcc909
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit sample.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform sample in [0,n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform sample in [0,n).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponentially distributed sample with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a log-normal sample parameterized by the mean and
// standard deviation of the underlying normal (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Exponential returns an exponential sample with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return mean * r.src.ExpFloat64()
}

// Pareto returns a (bounded-at-xm) Pareto sample with scale xm and shape
// alpha. Heavy-tailed web object sizes use this.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := 1 - r.src.Float64() // (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomly permutes n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
