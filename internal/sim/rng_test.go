package sim

import "testing"

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	r := NewRNG(42)
	seen := map[uint64]string{}
	for _, name := range []string{"latency", "speedtest", "web"} {
		for i := 0; i < 16; i++ {
			s := r.Derive(name, i)
			if prev, dup := seen[s]; dup {
				t.Errorf("Derive(%q,%d) collides with %s", name, i, prev)
			}
			seen[s] = name
			if s != DeriveSeed(42, name, i) {
				t.Errorf("Derive(%q,%d) != DeriveSeed with same base", name, i)
			}
		}
	}
	// Derivation never consumes generator state: draws in between change
	// nothing.
	before := r.Derive("x", 3)
	r.Float64()
	r.Uint64()
	if got := r.Derive("x", 3); got != before {
		t.Error("Derive is sensitive to prior consumption")
	}
	// Different bases decorrelate.
	if NewRNG(1).Derive("x", 0) == NewRNG(2).Derive("x", 0) {
		t.Error("different base seeds derived the same shard seed")
	}
	// Derive must not alias Stream's seed for the same name.
	r2 := NewRNG(9)
	streamSeed := r2.Stream("x").seed
	if r2.Derive("x", 0) == streamSeed {
		t.Error("Derive(name, 0) aliases Stream(name)")
	}
}

func TestDeriveSeedShardsReproduceSequences(t *testing.T) {
	// Two RNGs built from the same derived seed emit the same sequence;
	// sibling shards emit different ones.
	a := NewRNG(DeriveSeed(5, "shard", 2))
	b := NewRNG(DeriveSeed(5, "shard", 2))
	c := NewRNG(DeriveSeed(5, "shard", 3))
	same, diff := true, false
	for i := 0; i < 64; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			same = false
		}
		if av != c.Uint64() {
			diff = true
		}
	}
	if !same {
		t.Error("identical derived seeds produced different sequences")
	}
	if !diff {
		t.Error("sibling shards produced identical sequences")
	}
}
