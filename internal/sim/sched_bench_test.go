package sim

import (
	"testing"
	"time"
)

// churnConn mimics a TCP sender's timer life cycle: every data event
// stops the previous retransmit timer, re-arms it further out, and
// schedules the next data event — the arm/fire/re-arm churn that
// dominates scheduler traffic in the transfer campaigns.
type churnConn struct {
	s      *Scheduler
	retx   TimerHandle
	left   int
	period Duration
}

func churnNop(arg any) {}

func churnFire(arg any) {
	c := arg.(*churnConn)
	c.retx.Stop()
	c.retx = c.s.AfterFunc(10*c.period, churnNop, c)
	if c.left > 0 {
		c.left--
		c.s.AfterFunc(c.period, churnFire, c)
	}
}

func runChurn(b *testing.B, s *Scheduler) {
	c := &churnConn{s: s, period: Duration(time.Millisecond)}
	// Warm the freelist so the measurement sees steady state.
	c.left = 1024
	s.AfterFunc(c.period, churnFire, c)
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	c.left = b.N
	s.AfterFunc(c.period, churnFire, c)
	s.Run()
}

// BenchmarkSchedulerChurn must report 0 allocs/op: the retransmit
// pattern reuses pooled Timer nodes and schedules through package-level
// EventFuncs, so the steady-state event loop produces no garbage.
func BenchmarkSchedulerChurn(b *testing.B) {
	runChurn(b, NewScheduler(1))
}

// BenchmarkSchedulerChurnReference runs the identical workload on the
// seed container/heap queue for an honest before/after.
func BenchmarkSchedulerChurnReference(b *testing.B) {
	runChurn(b, NewReferenceScheduler(1))
}
