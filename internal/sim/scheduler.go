package sim

import (
	"fmt"
	"time"
)

// Event is a callback executed at a scheduled virtual time.
type Event func()

// EventFunc is the allocation-free event form: a package-level function
// receiving its state through arg. Because arg holds a pointer the call
// site already owns, scheduling with AtFunc/AfterFunc performs no
// closure allocation — the hot packet path (netem link transmit/arrival,
// TCP retransmit and delayed-ack timers, QUIC loss/PTO/pacing timers)
// schedules this way.
type EventFunc func(arg any)

// Timer is a pooled event-queue node. Nodes are owned by the Scheduler:
// once fired or compacted away they return to a freelist and are reused
// by later At/After calls, so steady-state scheduling allocates nothing.
// External code never holds a *Timer; it holds a TimerHandle, which
// carries the generation the node had when it was issued.
type Timer struct {
	s       *Scheduler
	at      Time
	seq     uint64
	fn      Event
	efn     EventFunc
	arg     any
	index   int32 // position in the heap, -1 when not queued
	gen     uint32
	stopped bool
}

// TimerHandle is the caller's reference to a scheduled event. The zero
// value is inert: Stop and Pending on it are safe no-ops. A handle
// outlives its timer harmlessly — the generation counter on the pooled
// node means a stale handle can never stop a recycled timer that now
// belongs to someone else.
type TimerHandle struct {
	t   *Timer
	gen uint32
}

// At returns the virtual time the timer is scheduled to fire, or 0 if
// the handle is stale (the timer fired, was stopped, or was recycled).
func (h TimerHandle) At() Time {
	if h.t == nil || h.t.gen != h.gen {
		return 0
	}
	return h.t.at
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the call prevented the event from running).
func (h TimerHandle) Stop() bool {
	t := h.t
	if t == nil || t.gen != h.gen || t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	s := t.s
	if s.ref == nil {
		s.nstopped++
		// Lazy compaction: once stopped timers outnumber live ones the
		// queue is mostly garbage — sweep them back to the freelist so
		// campaigns that cancel millions of retransmit timers keep a
		// bounded queue (and Pending() stays honest).
		if s.nstopped*2 > len(s.heap) && len(s.heap) >= compactMin {
			s.compact()
		}
	}
	return true
}

// Pending reports whether the timer is still queued and not stopped.
func (h TimerHandle) Pending() bool {
	t := h.t
	return t != nil && t.gen == h.gen && t.index >= 0 && !t.stopped
}

// Scheduler owns the virtual clock and the pending-event queue.
// It is not safe for concurrent use: the simulation is single-threaded by
// design, which is what makes it deterministic.
//
// The queue is a typed 4-ary min-heap ordered by (at, seq) — FIFO among
// equal timestamps — with no interface boxing. Fired and compacted
// timers are recycled through a freelist, so the steady-state event loop
// allocates nothing. NewReferenceScheduler builds the same Scheduler on
// the seed container/heap queue instead; both fire the identical
// (at, seq) sequence, which the equivalence suite in internal/core
// verifies campaign-by-campaign.
type Scheduler struct {
	now      Time
	seq      uint64
	heap     []*Timer
	nstopped int      // stopped timers still sitting in heap
	free     []*Timer // recycled nodes
	ref      *refQueue
	rng      *RNG
	running  bool
	stopped  bool
	// Processed counts events executed since construction; useful for
	// progress accounting and runaway detection in tests.
	Processed uint64
	// Skipped counts events a scenario-level analytic fast-forward
	// advanced in closed form instead of scheduling (see CreditSkipped).
	// Purely informational: Processed + Skipped is the work a full
	// emulation of the same scenario would have executed.
	Skipped uint64
}

// heapArity is the fan-out of the scheduler heap. 4 children per node
// halves the tree depth of a binary heap and keeps each sibling group in
// one or two cache lines, which is where sift-down spends its time.
const heapArity = 4

// compactMin is the queue length below which compaction is not worth
// the sweep.
const compactMin = 64

// NewScheduler returns a scheduler with its clock at zero and all RNG
// streams derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{rng: NewRNG(seed)}
}

// NewReferenceScheduler returns a scheduler driven by the seed
// container/heap event queue, kept in-tree as the correctness reference
// for the allocation-free fast path. It fires the same events in the
// same order and draws the same RNG sequence; it just allocates per
// event the way the seed did.
func NewReferenceScheduler(seed uint64) *Scheduler {
	return &Scheduler{rng: NewRNG(seed), ref: &refQueue{}}
}

// IsReference reports whether this scheduler runs on the reference
// container/heap queue rather than the allocation-free 4-ary heap.
func (s *Scheduler) IsReference() bool { return s.ref != nil }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// RNG returns the root RNG from which named deterministic streams are
// derived.
func (s *Scheduler) RNG() *RNG { return s.rng }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past (before Now) panics: it is always a logic error and silently
// reordering events would destroy causality.
func (s *Scheduler) At(at Time, fn Event) TimerHandle {
	if fn == nil {
		panic("sim: nil event")
	}
	return s.schedule(at, fn, nil, nil)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d Duration, fn Event) TimerHandle {
	return s.At(s.now.Add(d), fn)
}

// AtFunc schedules fn(arg) at the absolute virtual time at without
// allocating: fn is a package-level function and arg a pointer the
// caller already holds.
func (s *Scheduler) AtFunc(at Time, fn EventFunc, arg any) TimerHandle {
	if fn == nil {
		panic("sim: nil event")
	}
	return s.schedule(at, nil, fn, arg)
}

// AfterFunc schedules fn(arg) to run d after the current virtual time.
func (s *Scheduler) AfterFunc(d Duration, fn EventFunc, arg any) TimerHandle {
	return s.AtFunc(s.now.Add(d), fn, arg)
}

func (s *Scheduler) schedule(at Time, fn Event, efn EventFunc, arg any) TimerHandle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var t *Timer
	if s.ref != nil {
		// Reference path: fresh node per event, never recycled — the
		// seed's allocation behavior, preserved for honest comparison.
		t = &Timer{s: s}
	} else {
		t = s.alloc()
	}
	t.at, t.seq, t.fn, t.efn, t.arg = at, s.seq, fn, efn, arg
	s.seq++
	if s.ref != nil {
		s.ref.push(t)
	} else {
		s.heapPush(t)
	}
	return TimerHandle{t: t, gen: t.gen}
}

// Duration is the standard library duration; aliased so call sites read
// naturally as sched.After(10*sim.Millisecond, ...).
type Duration = time.Duration

// alloc takes a node from the freelist, or makes one.
func (s *Scheduler) alloc() *Timer {
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return t
	}
	return &Timer{s: s, index: -1}
}

// recycle returns a node to the freelist. Bumping the generation
// invalidates every handle issued for the node's previous life.
func (s *Scheduler) recycle(t *Timer) {
	t.gen++
	t.fn, t.efn, t.arg = nil, nil, nil
	t.index = -1
	t.stopped = false
	s.free = append(s.free, t)
}

// peek returns the earliest pending, non-stopped timer without removing
// it, discarding (and recycling) stopped timers it passes over. It never
// perturbs the firing order of live events.
func (s *Scheduler) peek() *Timer {
	if s.ref != nil {
		return s.ref.peek()
	}
	for len(s.heap) > 0 {
		t := s.heap[0]
		if !t.stopped {
			return t
		}
		s.heapPopMin()
		s.nstopped--
		s.recycle(t)
	}
	return nil
}

// pop removes and returns the earliest pending, non-stopped timer,
// or nil when the queue is exhausted.
func (s *Scheduler) pop() *Timer {
	t := s.peek()
	if t == nil {
		return nil
	}
	if s.ref != nil {
		s.ref.popMin()
	} else {
		s.heapPopMin()
	}
	return t
}

// fire recycles t and runs its callback. The callback fields are copied
// out first so the node can be handed to the freelist before user code
// runs: a callback that re-arms a timer (the retransmit pattern) gets
// this very node back with a fresh generation.
func (s *Scheduler) fire(t *Timer) {
	fn, efn, arg := t.fn, t.efn, t.arg
	if s.ref == nil {
		s.recycle(t)
	}
	if efn != nil {
		efn(arg)
	} else {
		fn()
	}
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	t := s.pop()
	if t == nil {
		return false
	}
	s.now = t.at
	s.Processed++
	s.fire(t)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.running = true
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline (even if no event fired there), so periodic
// samplers observe a full window.
func (s *Scheduler) RunUntil(deadline Time) {
	s.running = true
	s.stopped = false
	for !s.stopped {
		t := s.peek()
		if t == nil || t.at > deadline {
			break
		}
		if s.ref != nil {
			s.ref.popMin()
		} else {
			s.heapPopMin()
		}
		s.now = t.at
		s.Processed++
		s.fire(t)
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.running = false
}

// RunFor executes events for d of virtual time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// RunBefore executes events with timestamps strictly before horizon, then
// advances the clock to exactly horizon. The half-open window is what the
// conservative PDES driver needs: events at the horizon itself belong to
// the next window, after the barrier has delivered any cross-partition
// arrivals stamped exactly at it.
func (s *Scheduler) RunBefore(horizon Time) {
	s.running = true
	s.stopped = false
	for !s.stopped {
		t := s.peek()
		if t == nil || t.at >= horizon {
			break
		}
		if s.ref != nil {
			s.ref.popMin()
		} else {
			s.heapPopMin()
		}
		s.now = t.at
		s.Processed++
		s.fire(t)
	}
	if s.now < horizon {
		s.now = horizon
	}
	s.running = false
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of armed, un-stopped timers — live events
// only, never cancelled ones. The fast path keeps the count honest across
// its lazy compaction: a Stop() increments an internal stopped counter
// immediately (so the count drops the moment the timer is cancelled, not
// when the node is eventually swept), and compaction removes nodes and
// counter together. Callers must not infer queue memory from Pending():
// stopped nodes may sit in the heap until a sweep, and peek-driven
// operations (Step, NextEventTime) recycle stopped nodes they pass over.
// (The seed scheduler counted stopped-but-unpopped timers too; the
// reference queue preserves that for comparison, the fast path does not
// have them outlive compaction.)
func (s *Scheduler) Pending() int {
	if s.ref != nil {
		return s.ref.len()
	}
	return len(s.heap) - s.nstopped
}

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists. It is side-effect-free with respect to the firing
// order: the only mutation is sweeping already-stopped timers off the
// top of the queue (back to the freelist).
func (s *Scheduler) NextEventTime() (Time, bool) {
	if t := s.peek(); t != nil {
		return t.at, true
	}
	return 0, false
}

// CreditSkipped records that a scenario-level fast-forward advanced n
// would-have-been events in closed form instead of scheduling them. The
// scheduler takes no action — the caller already applied the events'
// net effect — it only keeps the ledger so engine introspection
// (Processed vs Skipped, PartitionedDriver.EventsSkipped) can report how
// much emulation the closed forms displaced.
func (s *Scheduler) CreditSkipped(n uint64) { s.Skipped += n }

// --- typed 4-ary min-heap ----------------------------------------------

// timerLess orders by (at, seq): earliest first, FIFO among equal
// timestamps. seq never repeats within a scheduler, so the order is
// total and firing is fully deterministic.
func timerLess(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) heapPush(t *Timer) {
	t.index = int32(len(s.heap))
	s.heap = append(s.heap, t)
	s.siftUp(int(t.index))
}

func (s *Scheduler) heapPopMin() *Timer {
	h := s.heap
	t := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.heap[0] = last
		last.index = 0
		s.siftDown(0)
	}
	t.index = -1
	return t
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	t := h[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !timerLess(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = t
	t.index = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	t := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if timerLess(h[c], h[best]) {
				best = c
			}
		}
		if !timerLess(h[best], t) {
			break
		}
		h[i] = h[best]
		h[i].index = int32(i)
		i = best
	}
	h[i] = t
	t.index = int32(i)
}

// compact sweeps stopped timers out of the heap into the freelist and
// re-establishes the heap property in place (Floyd heapify, O(n)).
// Relative order of the survivors is untouched: it is defined entirely
// by (at, seq), which compaction does not modify.
func (s *Scheduler) compact() {
	live := s.heap[:0]
	for _, t := range s.heap {
		if t.stopped {
			s.recycle(t)
		} else {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = nil
	}
	s.heap = live
	s.nstopped = 0
	for i, t := range live {
		t.index = int32(i)
	}
	for i := (len(live) - 2) / heapArity; i >= 0; i-- {
		s.siftDown(i)
	}
}
