package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback executed at a scheduled virtual time.
type Event func()

// Timer is a handle to a scheduled event. It can be stopped before it
// fires; a stopped or fired timer is inert.
type Timer struct {
	at      Time
	seq     uint64
	fn      Event
	index   int // position in the heap, -1 when not queued
	stopped bool
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() Time { return t.at }

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the call prevented the event from running).
func (t *Timer) Stop() bool {
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// Pending reports whether the timer is still queued and not stopped.
func (t *Timer) Pending() bool { return t.index >= 0 && !t.stopped }

type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among equal timestamps
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

// Scheduler owns the virtual clock and the pending-event queue.
// It is not safe for concurrent use: the simulation is single-threaded by
// design, which is what makes it deterministic.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *RNG
	running bool
	stopped bool
	// Processed counts events executed since construction; useful for
	// progress accounting and runaway detection in tests.
	Processed uint64
}

// NewScheduler returns a scheduler with its clock at zero and all RNG
// streams derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// RNG returns the root RNG from which named deterministic streams are
// derived.
func (s *Scheduler) RNG() *RNG { return s.rng }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past (before Now) panics: it is always a logic error and silently
// reordering events would destroy causality.
func (s *Scheduler) At(at Time, fn Event) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, t)
	return t
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d Duration, fn Event) *Timer {
	return s.At(s.now.Add(d), fn)
}

// Duration is the standard library duration; aliased so call sites read
// naturally as sched.After(10*sim.Millisecond, ...).
type Duration = time.Duration

// pop removes and returns the earliest pending, non-stopped timer,
// or nil when the queue is exhausted.
func (s *Scheduler) pop() *Timer {
	for s.queue.Len() > 0 {
		t := heap.Pop(&s.queue).(*Timer)
		if !t.stopped {
			return t
		}
	}
	return nil
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	t := s.pop()
	if t == nil {
		return false
	}
	s.now = t.at
	s.Processed++
	t.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.running = true
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline (even if no event fired there), so periodic
// samplers observe a full window.
func (s *Scheduler) RunUntil(deadline Time) {
	s.running = true
	s.stopped = false
	for !s.stopped {
		t := s.pop()
		if t == nil {
			break
		}
		if t.at > deadline {
			// Not due yet: push it back untouched.
			heap.Push(&s.queue, t)
			break
		}
		s.now = t.at
		s.Processed++
		t.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.running = false
}

// RunFor executes events for d of virtual time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued (possibly stopped) timers.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists.
func (s *Scheduler) NextEventTime() (Time, bool) {
	for s.queue.Len() > 0 {
		if t := s.queue[0]; !t.stopped {
			return t.at, true
		}
		heap.Pop(&s.queue)
	}
	return 0, false
}
