package sim

import (
	"math/rand"
	"testing"
	"time"
)

// checkHeap validates the 4-ary heap invariant and the index bookkeeping,
// and that nstopped matches the stopped timers actually in the heap.
func checkHeap(t *testing.T, s *Scheduler) {
	t.Helper()
	stopped := 0
	for i, tm := range s.heap {
		if int(tm.index) != i {
			t.Fatalf("heap[%d].index = %d", i, tm.index)
		}
		if tm.stopped {
			stopped++
		}
		if i > 0 {
			p := (i - 1) / heapArity
			if timerLess(tm, s.heap[p]) {
				t.Fatalf("heap violation: heap[%d]=(%v,%d) < parent heap[%d]=(%v,%d)",
					i, tm.at, tm.seq, p, s.heap[p].at, s.heap[p].seq)
			}
		}
	}
	if stopped != s.nstopped {
		t.Fatalf("nstopped = %d, heap holds %d stopped timers", s.nstopped, stopped)
	}
}

// The regression test for unbounded Stop() retention: a long campaign
// arming and cancelling a million retransmit timers must keep both the
// queue and Pending() bounded, with cancelled nodes recycled rather than
// accumulated.
func TestStoppedTimersCompacted(t *testing.T) {
	s := NewScheduler(1)
	sentinel := s.At(Time(2*Hour), func() {})
	const n = 1_000_000
	for i := 0; i < n; i++ {
		h := s.After(time.Hour, func() {})
		if !h.Stop() {
			t.Fatal("Stop on a fresh timer reported false")
		}
	}
	if got := len(s.heap); got > 2*compactMin {
		t.Errorf("heap length after %d arm/stop cycles = %d, want <= %d", n, got, 2*compactMin)
	}
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1 (the sentinel)", got)
	}
	if got := len(s.free); got > 2*compactMin {
		t.Errorf("freelist grew to %d nodes; recycling is not reusing them", got)
	}
	if !sentinel.Pending() {
		t.Error("sentinel lost across compactions")
	}
	checkHeap(t, s)
}

// NextEventTime must not perturb the firing order of live events, and
// the stopped timers it sweeps off the top must return to the freelist.
func TestNextEventTimeSideEffectFree(t *testing.T) {
	fires := func(probe bool) []Time {
		s := NewScheduler(1)
		var got []Time
		fn := func() { got = append(got, s.Now()) }
		var handles []TimerHandle
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			handles = append(handles, s.At(Time(r.Intn(50))*Time(Millisecond), fn))
		}
		for i := 0; i < len(handles); i += 3 {
			handles[i].Stop()
		}
		if probe {
			for i := 0; i < 100; i++ {
				s.NextEventTime()
			}
		}
		s.Run()
		return got
	}
	plain, probed := fires(false), fires(true)
	if len(plain) != len(probed) {
		t.Fatalf("probing NextEventTime changed fire count: %d vs %d", len(plain), len(probed))
	}
	for i := range plain {
		if plain[i] != probed[i] {
			t.Fatalf("fire %d at %v with probing, %v without", i, probed[i], plain[i])
		}
	}

	// Sweeping a stopped head must recycle it.
	s := NewScheduler(1)
	early := s.At(Time(Second), func() {})
	s.At(Time(2*Second), func() {})
	early.Stop()
	if at, ok := s.NextEventTime(); !ok || at != Time(2*Second) {
		t.Fatalf("NextEventTime = %v,%v want 2s,true", at, ok)
	}
	if len(s.free) != 1 {
		t.Errorf("swept stopped timer not recycled: freelist = %d", len(s.free))
	}
}

// FIFO-among-equal-timestamps property: random bursts of same-instant
// events must fire in schedule order, interleaved correctly with the
// other bursts.
func TestSchedulerFIFOBurstProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		s := NewScheduler(1)
		type tag struct {
			at  Time
			ord int // global schedule order
		}
		var want []tag
		var got []tag
		ord := 0
		for burst := 0; burst < 30; burst++ {
			at := Time(r.Intn(10)) * Time(Millisecond) // few distinct times => many collisions
			for k := 0; k < 1+r.Intn(8); k++ {
				tg := tag{at: at, ord: ord}
				ord++
				want = append(want, tg)
				s.At(at, func() { got = append(got, tg) })
			}
		}
		// Expected: stable sort by time, schedule order within a time.
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && (want[j].at < want[j-1].at); j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		s.Run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// Fuzz-style invariant check: after every random Push/Stop/Step the
// 4-ary heap must stay a valid min-heap with correct indices.
func TestSchedulerHeapInvariantFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewScheduler(1)
	var handles []TimerHandle
	nop := func() {}
	for op := 0; op < 20000; op++ {
		switch r.Intn(4) {
		case 0, 1: // push (biased so the queue actually grows)
			h := s.At(s.Now()+Time(r.Intn(1000)), nop)
			handles = append(handles, h)
		case 2: // stop a random handle (possibly stale — must be safe)
			if len(handles) > 0 {
				handles[r.Intn(len(handles))].Stop()
			}
		case 3: // fire the earliest
			s.Step()
		}
		checkHeap(t, s)
	}
	// Drain; every remaining live event fires in order.
	last := Time(-1)
	for s.Step() {
		if s.Now() < last {
			t.Fatalf("time went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
		checkHeap(t, s)
	}
}

// A stale handle from a fired timer must not be able to stop the
// recycled node's next life.
func TestTimerHandleGenerationSafety(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	h1 := s.After(time.Millisecond, func() {})
	s.Run()
	// The freelist now holds h1's node; the next After reuses it.
	h2 := s.After(time.Millisecond, func() { fired = true })
	if h2.t != h1.t {
		t.Fatal("test premise broken: node was not recycled")
	}
	if h1.Stop() {
		t.Fatal("stale handle stopped a recycled timer")
	}
	if h1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if h1.At() != 0 {
		t.Fatal("stale handle reports a fire time")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled timer did not fire")
	}
}

// randomWorkload drives one scheduler through a deterministic mix of
// scheduling, nested scheduling, stops and RunUntil windows, recording
// every fire as (now, id). Both implementations must produce the same
// trace and the same Processed count.
func randomWorkload(s *Scheduler, seed int64) (trace []int64, processed uint64) {
	r := rand.New(rand.NewSource(seed))
	id := 0
	var handles []TimerHandle
	var schedule func(depth int, at Time)
	schedule = func(depth int, at Time) {
		myID := id
		id++
		h := s.At(at, func() {
			trace = append(trace, int64(s.Now()), int64(myID))
			if depth < 3 && r.Intn(3) == 0 {
				schedule(depth+1, s.Now()+Time(r.Intn(5))*Time(Millisecond))
			}
			if len(handles) > 0 && r.Intn(4) == 0 {
				handles[r.Intn(len(handles))].Stop()
			}
		})
		handles = append(handles, h)
	}
	for i := 0; i < 300; i++ {
		schedule(0, Time(r.Intn(100))*Time(Millisecond))
	}
	for i := 0; i < len(handles); i += 5 {
		handles[i].Stop()
	}
	s.RunUntil(Time(40 * Millisecond))
	s.NextEventTime()
	s.RunUntil(Time(80 * Millisecond))
	s.Run()
	return trace, s.Processed
}

// The fast scheduler and the reference container/heap scheduler must be
// observationally identical: same fire trace, same event count.
func TestFastMatchesReferenceScheduler(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		fastTrace, fastN := randomWorkload(NewScheduler(uint64(seed)), seed)
		refTrace, refN := randomWorkload(NewReferenceScheduler(uint64(seed)), seed)
		if fastN != refN {
			t.Fatalf("seed %d: processed %d events fast, %d reference", seed, fastN, refN)
		}
		if len(fastTrace) != len(refTrace) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(fastTrace), len(refTrace))
		}
		for i := range fastTrace {
			if fastTrace[i] != refTrace[i] {
				t.Fatalf("seed %d: trace diverges at %d: %d vs %d", seed, i, fastTrace[i], refTrace[i])
			}
		}
	}
}
