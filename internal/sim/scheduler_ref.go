package sim

import "container/heap"

// This file preserves the seed event queue — container/heap over a boxed
// []*Timer — as the reference implementation the allocation-free 4-ary
// heap is proven against. NewReferenceScheduler builds a Scheduler on
// it; the equivalence suite in internal/core runs full quick campaigns
// on both and asserts bit-identical metrics, the way internal/leo keeps
// Terminal.ReferenceAssignmentAt in-tree for the geometry fast path.

// eventQueue is the seed heap.Interface implementation. Every Push boxes
// through any, every comparison goes through the interface, and stopped
// timers are retained until they reach the top — exactly the costs the
// typed heap removes.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among equal timestamps
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = int32(i)
	q[j].index = int32(j)
}
func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = int32(len(*q))
	*q = append(*q, t)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

// refQueue adapts eventQueue to the Scheduler's push/peek/popMin
// internals. Stopped timers discarded by peek are dropped for the
// garbage collector, never recycled — the seed's behavior.
type refQueue struct {
	q eventQueue
}

func (r *refQueue) push(t *Timer) { heap.Push(&r.q, t) }

func (r *refQueue) peek() *Timer {
	for r.q.Len() > 0 {
		if t := r.q[0]; !t.stopped {
			return t
		}
		heap.Pop(&r.q)
	}
	return nil
}

func (r *refQueue) popMin() *Timer { return heap.Pop(&r.q).(*Timer) }

func (r *refQueue) len() int { return r.q.Len() }
