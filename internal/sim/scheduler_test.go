package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30*Time(Millisecond), func() { got = append(got, 3) })
	s.At(10*Time(Millisecond), func() { got = append(got, 1) })
	s.At(20*Time(Millisecond), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Time(Millisecond) {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAmongEqualTimes(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(Second), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestSchedulerAfterNesting(t *testing.T) {
	s := NewScheduler(1)
	var fires []Time
	var tick func()
	n := 0
	tick = func() {
		fires = append(fires, s.Now())
		n++
		if n < 5 {
			s.After(100*time.Millisecond, tick)
		}
	}
	s.After(100*time.Millisecond, tick)
	s.Run()
	if len(fires) != 5 {
		t.Fatalf("got %d fires, want 5", len(fires))
	}
	for i, at := range fires {
		want := Time((i + 1) * 100 * int(time.Millisecond))
		if at != want {
			t.Errorf("fire %d at %v, want %v", i, at, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.After(time.Second, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before Run")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if ran {
		t.Fatal("stopped timer ran")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.At(Time(2*Second), func() { ran = true })
	s.RunUntil(Time(Second))
	if ran {
		t.Fatal("future event ran early")
	}
	if s.Now() != Time(Second) {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
	s.RunUntil(Time(3 * Second))
	if !ran {
		t.Fatal("due event did not run")
	}
	if s.Now() != Time(3*Second) {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(Time(Second), func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(Time(Millisecond), func() {})
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Time(Second), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	s := NewScheduler(1)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty scheduler reported a next event")
	}
	tm := s.At(Time(5*Second), func() {})
	s.At(Time(7*Second), func() {})
	if at, ok := s.NextEventTime(); !ok || at != Time(5*Second) {
		t.Fatalf("next = %v,%v want 5s,true", at, ok)
	}
	tm.Stop()
	if at, ok := s.NextEventTime(); !ok || at != Time(7*Second) {
		t.Fatalf("next after stop = %v,%v want 7s,true", at, ok)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("loss")
	b := NewRNG(42).Stream("loss")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+name streams diverged")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Stream("a")
	b := root.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'a' and 'b' coincide in %d/100 draws", same)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 50; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(9)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGParetoAtLeastScale(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(3.0, 1.2); v < 3.0 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(time.Second)
	if a != Time(Second) {
		t.Fatalf("Add: %v", a)
	}
	if d := a.Sub(Time(0)); d != time.Second {
		t.Fatalf("Sub: %v", d)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After broken")
	}
	if s := Time(1500 * Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("Seconds: %v", s)
	}
}
