// Package sim implements a deterministic discrete-event simulation kernel.
//
// All simulated components share a single virtual clock owned by a
// Scheduler. Events are callbacks scheduled at absolute virtual times; the
// scheduler runs them in time order (FIFO among equal timestamps) and the
// clock jumps instantaneously between events, so five months of simulated
// measurements execute in seconds of wall time.
//
// Determinism is a design requirement: every stochastic component draws
// from a named RNG stream derived from the scheduler seed, so a simulation
// is reproducible bit-for-bit from (seed, program). Nothing in this package
// reads wall-clock time.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, in nanoseconds since
// the start of the simulation. It is intentionally not time.Time: virtual
// time has no time zone, no wall-clock meaning, and arithmetic on it must
// be explicit.
type Time int64

// Common durations re-exported so simulation code does not need to import
// both sim and time for the usual units.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(1<<63 - 1)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant expressed in seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration returns the instant as a duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since simulation start, which is
// the most readable form for logs and test failures.
func (t Time) String() string {
	return fmt.Sprintf("T+%s", time.Duration(t))
}
