package stats

import "math"

// FixedDist is a fixed-width bucket histogram with deterministic
// quantiles: unlike Series it never stores samples, so campaigns with
// millions of observations (the fleet scenario's terminal-epochs) cost
// a few KB of fixed memory. Out-of-range values clamp into the edge
// buckets. The zero value is unusable; construct with NewFixedDist.
type FixedDist struct {
	width  float64
	counts []int64
	n      int64
}

// NewFixedDist returns a distribution of `buckets` buckets of `width`
// each, covering [0, width·buckets).
func NewFixedDist(width float64, buckets int) FixedDist {
	return FixedDist{width: width, counts: make([]int64, buckets)}
}

// Observe records one value.
func (d *FixedDist) Observe(v float64) {
	i := int(v / d.width)
	if i < 0 {
		i = 0
	}
	if i >= len(d.counts) {
		i = len(d.counts) - 1
	}
	d.counts[i]++
	d.n++
}

// ObserveN records n observations of the same value, bucketing exactly
// as n Observe(v) calls would — the bulk form the fleet fast-forward
// uses to credit a probe train's identical RTTs in one call.
func (d *FixedDist) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := int(v / d.width)
	if i < 0 {
		i = 0
	}
	if i >= len(d.counts) {
		i = len(d.counts) - 1
	}
	d.counts[i] += n
	d.n += n
}

// N returns the observation count.
func (d *FixedDist) N() int64 { return d.n }

// Merge adds another distribution's counts into this one. Both must have
// the same width and bucket count (they were built for the same metric).
// Merging is commutative and associative, so folding per-partition
// distributions in any order yields the same histogram as observing every
// value into one — the property the PDES traffic scenario's per-region
// merge relies on.
func (d *FixedDist) Merge(o *FixedDist) {
	if d.width != o.width || len(d.counts) != len(o.counts) {
		panic("stats: merging FixedDists with different geometry")
	}
	for i, c := range o.counts {
		d.counts[i] += c
	}
	d.n += o.n
}

// DrainInto merges this distribution into dst and resets the receiver to
// empty — the per-epoch scratch handoff the partitioned fleet campaign
// uses: each worker observes into its own FixedDist, then the merge pass
// drains every scratch into the long-lived accumulator, leaving the
// scratch ready for the next epoch without a separate reset walk.
func (d *FixedDist) DrainInto(dst *FixedDist) {
	if d.n == 0 {
		return
	}
	dst.Merge(d)
	for i := range d.counts {
		d.counts[i] = 0
	}
	d.n = 0
}

// Quantile returns the q-quantile (0 < q <= 1) as the midpoint of the
// bucket holding the ceil(q·n)-th observation — a pure function of the
// counts, so invariant to observation order and worker count. Returns 0
// on an empty distribution.
func (d *FixedDist) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(d.n)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range d.counts {
		cum += c
		if cum >= target {
			return (float64(i) + 0.5) * d.width
		}
	}
	return float64(len(d.counts)) * d.width
}
