package stats

import (
	"math"
	"reflect"
	"testing"
)

// Property tests for FixedDist at the 1M-terminal campaign regime: a
// million-plus observations per epoch, bulk ObserveN credits in the
// billions (a fast-forwarded probe train can collapse an entire epoch of
// a 1M fleet into one call), and per-worker scratch merged in arbitrary
// association. Counts are int64 and quantile targets go through float64,
// so the properties to pin are exact count/sum integrity, merge
// associativity, and that ceil(q·n) stays exact for n far beyond 2^32.

// propSplitmix is a deterministic value stream (splitmix64) so the
// properties run on an adversarially bucketed spread without test-order
// dependence.
func propSplitmix(i uint64) uint64 {
	z := i + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// propValue maps stream index i to an observation in [-50, 450) — wide
// enough to clamp into both edge buckets of a [0, 300) distribution.
func propValue(i uint64) float64 {
	return float64(propSplitmix(i)%5000)/10 - 50
}

// sumCounts recomputes N from the raw buckets.
func sumCounts(d *FixedDist) int64 {
	var n int64
	for _, c := range d.counts {
		n += c
	}
	return n
}

// TestFixedDistCountIntegrityAtScale observes 1.2e6 values and checks
// the invariant the merge machinery rests on: N() equals the bucket-count
// sum equals the observation count, with out-of-range values clamped
// (never dropped), and every quantile lands mid-bucket inside the range.
func TestFixedDistCountIntegrityAtScale(t *testing.T) {
	const n = 1_200_000
	d := NewFixedDist(0.5, 600)
	for i := uint64(0); i < n; i++ {
		d.Observe(propValue(i))
	}
	if d.N() != n {
		t.Fatalf("N() = %d after %d observations", d.N(), n)
	}
	if got := sumCounts(&d); got != n {
		t.Fatalf("bucket counts sum to %d, want %d", got, n)
	}
	if d.counts[0] == 0 || d.counts[len(d.counts)-1] == 0 {
		t.Fatal("edge buckets empty; the stream no longer exercises clamping")
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		v := d.Quantile(q)
		if v < 0 || v >= 300 {
			t.Fatalf("Quantile(%v) = %v outside the distribution range", q, v)
		}
	}
}

// TestFixedDistMergeAssociativity splits one 1.5e6-value stream across
// three distributions and checks (a⊕b)⊕c == a⊕(b⊕c) == direct
// observation — the property that makes per-worker scratch merge order
// (and partition merge order before it) invisible in every export.
func TestFixedDistMergeAssociativity(t *testing.T) {
	const n = 1_500_000
	build := func(lo, hi uint64) FixedDist {
		d := NewFixedDist(0.5, 600)
		for i := lo; i < hi; i++ {
			d.Observe(propValue(i))
		}
		return d
	}
	direct := build(0, n)

	left := build(0, n/3) // (a⊕b)⊕c
	b1 := build(n/3, 2*n/3)
	c1 := build(2*n/3, n)
	left.Merge(&b1)
	left.Merge(&c1)

	a2 := build(0, n/3) // a⊕(b⊕c)
	right := build(n/3, 2*n/3)
	c2 := build(2*n/3, n)
	right.Merge(&c2)
	a2.Merge(&right)

	if !reflect.DeepEqual(left, direct) {
		t.Fatal("(a merge b) merge c differs from direct observation")
	}
	if !reflect.DeepEqual(a2, direct) {
		t.Fatal("a merge (b merge c) differs from direct observation")
	}
}

// TestFixedDistObserveNLargeCounts pins the bulk form against the loop
// form and then pushes n into the regime where float64 quantile math
// could silently round: multi-billion counts per bucket. ceil(q·n) is
// exact as long as q·n stays under 2^53, which a 1M-terminal fleet
// (≤ ~5e11 terminal-epochs per campaign) never approaches — this test
// runs at 6e9 to prove the margin with room to spare.
func TestFixedDistObserveNLargeCounts(t *testing.T) {
	loop := NewFixedDist(0.5, 600)
	bulk := NewFixedDist(0.5, 600)
	for i := uint64(0); i < 2000; i++ {
		v := propValue(i)
		k := int64(propSplitmix(i)%700) - 100 // exercises the n <= 0 no-op too
		for j := int64(0); j < k; j++ {
			loop.Observe(v)
		}
		bulk.ObserveN(v, k)
	}
	if !reflect.DeepEqual(loop, bulk) {
		t.Fatal("ObserveN diverges from the equivalent Observe loop")
	}

	// Three buckets of 2e9 observations each: quantile targets must
	// resolve exactly at counts beyond int32 and beyond float32.
	big := NewFixedDist(1, 10)
	const per = 2_000_000_000
	big.ObserveN(1.5, per) // bucket 1, midpoint 1.5
	big.ObserveN(4.5, per) // bucket 4, midpoint 4.5
	big.ObserveN(8.5, per) // bucket 8, midpoint 8.5
	if big.N() != 3*per {
		t.Fatalf("N() = %d, want %d", big.N(), int64(3*per))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{1.0 / 3, 1.5}, // target exactly per: last observation of bucket 1
		{0.5, 4.5},
		{2.0 / 3, 4.5}, // target exactly 2·per: last observation of bucket 4
		{0.67, 8.5},
		{1, 8.5},
	}
	for _, tc := range cases {
		if got := big.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// The exactness precondition itself: q·n must be representable.
	if q := float64(big.N()); q >= math.Pow(2, 53) {
		t.Fatal("test regime exceeds float64 integer exactness; quantile math no longer proven")
	}
}

// TestFixedDistDrainInto checks the scratch-handoff form: counts move,
// the source resets to empty, and a second drain is a no-op.
func TestFixedDistDrainInto(t *testing.T) {
	acc := NewFixedDist(0.5, 600)
	scratch := NewFixedDist(0.5, 600)
	want := NewFixedDist(0.5, 600)
	for i := uint64(0); i < 10_000; i++ {
		v := propValue(i)
		want.Observe(v)
		if i%2 == 0 {
			acc.Observe(v)
		} else {
			scratch.Observe(v)
		}
	}
	scratch.DrainInto(&acc)
	if !reflect.DeepEqual(acc, want) {
		t.Fatal("drained accumulator differs from direct observation")
	}
	if scratch.N() != 0 || sumCounts(&scratch) != 0 {
		t.Fatal("scratch not empty after DrainInto")
	}
	scratch.DrainInto(&acc)
	if !reflect.DeepEqual(acc, want) {
		t.Fatal("draining an empty scratch changed the accumulator")
	}
}
