package stats

import "testing"

// TestFixedDistQuantile pins the quantile rule (midpoint of the bucket
// holding the ceil(q·n)-th observation) and the edge-bucket clamping.
func TestFixedDistQuantile(t *testing.T) {
	d := NewFixedDist(1, 10)
	if got := d.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	for _, v := range []float64{0.2, 1.2, 2.2, 3.2} {
		d.Observe(v)
	}
	if got := d.Quantile(0.5); got != 1.5 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	if got := d.Quantile(1); got != 3.5 {
		t.Errorf("p100 = %v, want 3.5", got)
	}
	// Clamping: out-of-range observations land in the edge buckets.
	d.Observe(-5)
	d.Observe(999)
	if d.N() != 6 {
		t.Fatalf("n = %d, want 6", d.N())
	}
	if got := d.Quantile(1); got != 9.5 {
		t.Errorf("p100 after overflow = %v, want 9.5", got)
	}
	if got := d.Quantile(0.001); got != 0.5 {
		t.Errorf("p0.1 after underflow = %v, want 0.5", got)
	}
}

// TestFixedDistOrderInvariance: quantiles depend only on counts, not on
// observation order — the property the fleet's worker-invariant exports
// rely on.
func TestFixedDistOrderInvariance(t *testing.T) {
	vals := []float64{7.3, 1.1, 4.4, 4.5, 9.9, 0.0, 2.8, 7.3}
	a := NewFixedDist(0.5, 40)
	b := NewFixedDist(0.5, 40)
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%v: %v (forward) != %v (reverse)", q, a.Quantile(q), b.Quantile(q))
		}
	}
}
