package stats

import "testing"

// TestFixedDistQuantile pins the quantile rule (midpoint of the bucket
// holding the ceil(q·n)-th observation) and the edge-bucket clamping.
func TestFixedDistQuantile(t *testing.T) {
	d := NewFixedDist(1, 10)
	if got := d.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	for _, v := range []float64{0.2, 1.2, 2.2, 3.2} {
		d.Observe(v)
	}
	if got := d.Quantile(0.5); got != 1.5 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	if got := d.Quantile(1); got != 3.5 {
		t.Errorf("p100 = %v, want 3.5", got)
	}
	// Clamping: out-of-range observations land in the edge buckets.
	d.Observe(-5)
	d.Observe(999)
	if d.N() != 6 {
		t.Fatalf("n = %d, want 6", d.N())
	}
	if got := d.Quantile(1); got != 9.5 {
		t.Errorf("p100 after overflow = %v, want 9.5", got)
	}
	if got := d.Quantile(0.001); got != 0.5 {
		t.Errorf("p0.1 after underflow = %v, want 0.5", got)
	}
}

// TestFixedDistOrderInvariance: quantiles depend only on counts, not on
// observation order — the property the fleet's worker-invariant exports
// rely on.
func TestFixedDistOrderInvariance(t *testing.T) {
	vals := []float64{7.3, 1.1, 4.4, 4.5, 9.9, 0.0, 2.8, 7.3}
	a := NewFixedDist(0.5, 40)
	b := NewFixedDist(0.5, 40)
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%v: %v (forward) != %v (reverse)", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// TestFixedDistMergeEdgeCases pins Merge on the degenerate shapes the
// per-partition fold actually produces: merging an empty distribution is
// the identity, a single sample transfers exactly, and disjoint
// distributions concatenate their counts without disturbing either
// side's quantiles.
func TestFixedDistMergeEdgeCases(t *testing.T) {
	// Empty into empty: still empty, quantiles stay 0.
	a := NewFixedDist(1, 10)
	b := NewFixedDist(1, 10)
	a.Merge(&b)
	if a.N() != 0 || a.Quantile(0.5) != 0 {
		t.Errorf("empty merge: n=%d p50=%v, want 0/0", a.N(), a.Quantile(0.5))
	}

	// Single sample through a merge chain: every quantile is its bucket.
	one := NewFixedDist(1, 10)
	one.Observe(3.2)
	a.Merge(&one)
	if a.N() != 1 {
		t.Fatalf("n = %d after single-sample merge, want 1", a.N())
	}
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := a.Quantile(q); got != 3.5 {
			t.Errorf("single sample q=%v = %v, want 3.5", q, got)
		}
	}
	// Merging an empty distribution into a populated one is the identity.
	a.Merge(&b)
	if a.N() != 1 || a.Quantile(0.5) != 3.5 {
		t.Errorf("identity merge changed the distribution: n=%d p50=%v", a.N(), a.Quantile(0.5))
	}

	// Disjoint supports: low holds buckets [0,2), high holds [8,10); the
	// merged median sits at the low side's top and p100 at the high end.
	low, high := NewFixedDist(1, 10), NewFixedDist(1, 10)
	for i := 0; i < 3; i++ {
		low.Observe(1.5)
		high.Observe(8.5)
	}
	low.Merge(&high)
	if low.N() != 6 {
		t.Fatalf("n = %d, want 6", low.N())
	}
	if got := low.Quantile(0.5); got != 1.5 {
		t.Errorf("disjoint merge p50 = %v, want 1.5", got)
	}
	if got := low.Quantile(1); got != 8.5 {
		t.Errorf("disjoint merge p100 = %v, want 8.5", got)
	}

	// Geometry mismatches are bugs, not silent corruption.
	other := NewFixedDist(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched geometry did not panic")
		}
	}()
	low.Merge(&other)
}

// TestFixedDistObserveN holds the bulk form to its definition: ObserveN
// must leave exactly the state of n repeated Observes — including the
// edge-bucket clamping — and ignore non-positive counts.
func TestFixedDistObserveN(t *testing.T) {
	bulk := NewFixedDist(0.5, 20)
	loop := NewFixedDist(0.5, 20)
	for _, c := range []struct {
		v float64
		n int64
	}{{3.3, 7}, {-2, 4}, {999, 2}, {0, 1}} {
		bulk.ObserveN(c.v, c.n)
		for i := int64(0); i < c.n; i++ {
			loop.Observe(c.v)
		}
	}
	bulk.ObserveN(5, 0)
	bulk.ObserveN(5, -3)
	if bulk.N() != loop.N() {
		t.Fatalf("n = %d, want %d", bulk.N(), loop.N())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if bulk.Quantile(q) != loop.Quantile(q) {
			t.Errorf("q=%v: bulk %v != looped %v", q, bulk.Quantile(q), loop.Quantile(q))
		}
	}
}
