package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// Property-style checks of the quantile estimators over randomized (but
// seeded) inputs: percentiles are monotone in p, bounded by the sample
// extremes, order-invariant, and internally consistent with Summarize and
// ECDF.

func randomSamples(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = r.NormFloat64() * 50
		case 1:
			xs[i] = r.Float64() * 1000
		default:
			xs[i] = math.Exp(r.NormFloat64()) // heavy tail
		}
	}
	return xs
}

func TestPercentileMonotoneAndBounded(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		xs := randomSamples(r, 1+r.IntN(400))
		lo, hi := Min(xs), Max(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := Percentile(xs, p)
			if v < prev {
				t.Fatalf("trial %d: Percentile not monotone: p=%v gives %v < %v", trial, p, v, prev)
			}
			if v < lo || v > hi {
				t.Fatalf("trial %d: Percentile(%v)=%v outside [min=%v, max=%v]", trial, p, v, lo, hi)
			}
			prev = v
		}
		if Percentile(xs, 0) != lo || Percentile(xs, 100) != hi {
			t.Fatalf("trial %d: endpoints must be min/max", trial)
		}
	}
}

func TestPercentileOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		xs := randomSamples(r, 2+r.IntN(100))
		shuffled := append([]float64(nil), xs...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, p := range []float64{5, 25, 50, 75, 95, 99} {
			if Percentile(xs, p) != Percentile(shuffled, p) {
				t.Fatalf("trial %d: Percentile(%v) depends on input order", trial, p)
			}
		}
		if Median(xs) != Percentile(xs, 50) {
			t.Fatalf("trial %d: Median != Percentile(50)", trial)
		}
	}
}

func TestSummarizeOrderingConsistent(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		xs := randomSamples(r, 1+r.IntN(300))
		s := Summarize(xs)
		seq := []struct {
			name string
			v    float64
		}{
			{"min", s.Min}, {"p5", s.P5}, {"p25", s.P25}, {"p50", s.P50},
			{"p75", s.P75}, {"p90", s.P90}, {"p95", s.P95}, {"p99", s.P99}, {"max", s.Max},
		}
		for i := 1; i < len(seq); i++ {
			if seq[i].v < seq[i-1].v {
				t.Fatalf("trial %d: %s=%v < %s=%v", trial, seq[i].name, seq[i].v, seq[i-1].name, seq[i-1].v)
			}
		}
		if s.N != len(xs) {
			t.Fatalf("trial %d: N=%d want %d", trial, s.N, len(xs))
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("trial %d: mean %v outside [min,max]", trial, s.Mean)
		}
		if s.P50 != Percentile(xs, 50) {
			t.Fatalf("trial %d: Summarize P50 disagrees with Percentile", trial)
		}
	}
}

func TestECDFQuantileConsistency(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		xs := randomSamples(r, 2+r.IntN(200))
		e := NewECDF(xs)
		lo, hi := Min(xs), Max(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := e.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: ECDF.Quantile not monotone at q=%v", trial, q)
			}
			if v < lo || v > hi {
				t.Fatalf("trial %d: Quantile(%v)=%v outside sample range", trial, q, v)
			}
			// Nearly a Galois connection: the interpolated (type-7)
			// quantile sits between two order statistics, so the mass at
			// or below it can undershoot q by at most one sample.
			if got := e.At(v); got+1.0/float64(e.N())+1e-12 < q {
				t.Fatalf("trial %d: At(Quantile(%v))=%v < q-1/n", trial, q, got)
			}
			prev = v
		}
		// At is a CDF: monotone, 0 below the support, 1 at the max.
		if e.At(lo-1) != 0 || e.At(hi) != 1 {
			t.Fatalf("trial %d: At endpoints wrong: At(min-1)=%v At(max)=%v", trial, e.At(lo-1), e.At(hi))
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prevF := 0.0
		for _, x := range sorted {
			f := e.At(x)
			if f < prevF {
				t.Fatalf("trial %d: ECDF.At not monotone", trial)
			}
			prevF = f
		}
	}
}
