package stats

import (
	"sort"
	"time"
)

// Sample is a timestamped measurement (time given as a duration since the
// start of the campaign), the record format produced by the long-running
// monitors (pings every five minutes for five months, speedtests every 30
// minutes, ...).
type Sample struct {
	At    time.Duration
	Value float64
}

// Series is an append-only collection of timestamped samples.
type Series struct {
	samples []Sample
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.samples = append(s.samples, Sample{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Values returns the raw values in insertion order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.samples))
	for i, smp := range s.samples {
		vs[i] = smp.Value
	}
	return vs
}

// Samples returns the underlying samples (shared, do not mutate).
func (s *Series) Samples() []Sample { return s.samples }

// Bin is the summary of a time window of a series: Figure 2's 6-hour bins.
type Bin struct {
	Start time.Duration
	Summary
}

// BinByTime splits the series into consecutive windows of the given width
// and summarizes each non-empty window.
func (s *Series) BinByTime(width time.Duration) []Bin {
	if width <= 0 || len(s.samples) == 0 {
		return nil
	}
	sorted := append([]Sample(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	var bins []Bin
	cur := sorted[0].At / width * width
	var buf []float64
	flush := func() {
		if len(buf) > 0 {
			bins = append(bins, Bin{Start: cur, Summary: Summarize(buf)})
			buf = buf[:0]
		}
	}
	for _, smp := range sorted {
		w := smp.At / width * width
		if w != cur {
			flush()
			cur = w
		}
		buf = append(buf, smp.Value)
	}
	flush()
	return bins
}

// GroupByHourOfDay partitions samples into 24 groups keyed by the hour of
// the (simulated) day, the input shape Mood's test needs for the paper's
// diurnal-cycle analysis.
func (s *Series) GroupByHourOfDay() [][]float64 {
	groups := make([][]float64, 24)
	for _, smp := range s.samples {
		h := int(smp.At/time.Hour) % 24
		if h < 0 {
			h += 24
		}
		groups[h] = append(groups[h], smp.Value)
	}
	return groups
}

// Window returns the values of samples with Start <= At < End.
func (s *Series) Window(start, end time.Duration) []float64 {
	var out []float64
	for _, smp := range s.samples {
		if smp.At >= start && smp.At < end {
			out = append(out, smp.Value)
		}
	}
	return out
}
